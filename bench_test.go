// Package ovlp's root benchmark harness regenerates every figure of
// the paper's evaluation (Figs. 3-20) as a testing.B target, reporting
// the figure's headline quantities as custom benchmark metrics:
//
//	go test -bench=. -benchmem
//
// Figure-to-benchmark map:
//
//	Fig 3-9   BenchmarkFigN...          microbenchmark sweeps
//	Fig 10-13 BenchmarkFig10NASBT etc.  NAS overlap characterizations
//	Fig 14-18 BenchmarkFig14to18SPStudy SP original vs modified
//	Fig 19    BenchmarkFig19MGARMCI     one-sided MG variants
//	Fig 20    BenchmarkFig20Overhead    instrumentation overhead
//
// The Ablation benchmarks quantify the design choices DESIGN.md calls
// out (monitor queue size, eager threshold, fragment size,
// registration cache); the Monitor benchmarks measure the real
// wall-clock cost of the instrumentation hot path itself.
package ovlp

import (
	"testing"
	"time"

	"ovlp/internal/armci"
	"ovlp/internal/calib"
	"ovlp/internal/cluster"
	"ovlp/internal/comb"
	"ovlp/internal/micro"
	"ovlp/internal/mpi"
	"ovlp/internal/nas"
	"ovlp/internal/overlap"
)

// benchReps keeps the microbenchmark sweeps quick under -bench.
const benchReps = 50

// runFigure executes one micro sweep and reports the endpoint's
// overlap bounds and wait time.
func runFigure(b *testing.B, fig int, sender bool) {
	b.Helper()
	var last micro.Point
	for i := 0; i < b.N; i++ {
		pts := micro.PaperFigure(fig, benchReps).Run()
		last = pts[len(pts)-1]
	}
	if sender {
		b.ReportMetric(last.SenderMin, "min%")
		b.ReportMetric(last.SenderMax, "max%")
		b.ReportMetric(float64(last.SenderWait.Microseconds()), "wait_µs")
	} else {
		b.ReportMetric(last.ReceiverMin, "min%")
		b.ReportMetric(last.ReceiverMax, "max%")
		b.ReportMetric(float64(last.ReceiverWait.Microseconds()), "wait_µs")
	}
}

func BenchmarkFig3EagerIsendIrecv(b *testing.B)     { runFigure(b, 3, true) }
func BenchmarkFig4PipelinedIsendRecv(b *testing.B)  { runFigure(b, 4, true) }
func BenchmarkFig5DirectIsendRecv(b *testing.B)     { runFigure(b, 5, true) }
func BenchmarkFig6PipelinedSendIrecv(b *testing.B)  { runFigure(b, 6, false) }
func BenchmarkFig7DirectSendIrecv(b *testing.B)     { runFigure(b, 7, false) }
func BenchmarkFig8PipelinedIsendIrecv(b *testing.B) { runFigure(b, 8, true) }
func BenchmarkFig9DirectIsendIrecv(b *testing.B)    { runFigure(b, 9, true) }

// benchNAS characterizes one NAS benchmark and reports its bounds.
func benchNAS(b *testing.B, name string, class nas.Class, procs int, proto mpi.LongProtocol) {
	b.Helper()
	var r nas.OverlapResult
	for i := 0; i < b.N; i++ {
		r = nas.Characterize(name, class, procs, proto, 3)
	}
	b.ReportMetric(r.MinPct, "min%")
	b.ReportMetric(r.MaxPct, "max%")
	b.ReportMetric(float64(r.Transfers), "xfers")
}

func BenchmarkFig10NASBT(b *testing.B) { benchNAS(b, nas.BT, nas.ClassA, 9, mpi.PipelinedRDMA) }
func BenchmarkFig11NASCG(b *testing.B) { benchNAS(b, nas.CG, nas.ClassA, 8, mpi.PipelinedRDMA) }
func BenchmarkFig12NASLU(b *testing.B) { benchNAS(b, nas.LU, nas.ClassA, 8, mpi.DirectRDMARead) }
func BenchmarkFig13NASFT(b *testing.B) { benchNAS(b, nas.FT, nas.ClassA, 8, mpi.DirectRDMARead) }

// BenchmarkFig14to18SPStudy runs the SP case study (class A, 9 procs
// — the paper's 98% configuration) and reports the section bounds and
// MPI-time change.
func BenchmarkFig14to18SPStudy(b *testing.B) {
	var orig, mod nas.SPResult
	for i := 0; i < b.N; i++ {
		orig = nas.CharacterizeSP(nas.ClassA, 9, false, 3)
		mod = nas.CharacterizeSP(nas.ClassA, 9, true, 3)
	}
	b.ReportMetric(orig.SectionMaxPct, "orig_max%")
	b.ReportMetric(mod.SectionMaxPct, "mod_max%")
	b.ReportMetric(mod.SectionMinPct, "mod_min%")
	b.ReportMetric(100*(float64(mod.MPITime)-float64(orig.MPITime))/float64(orig.MPITime), "mpi_change%")
}

// BenchmarkFig19MGARMCI reports the blocking/non-blocking contrast.
func BenchmarkFig19MGARMCI(b *testing.B) {
	var blk, nb nas.OverlapResult
	for i := 0; i < b.N; i++ {
		blk = nas.CharacterizeMGARMCI(nas.ClassA, 8, nas.MGBlocking, 2)
		nb = nas.CharacterizeMGARMCI(nas.ClassA, 8, nas.MGNonblocking, 2)
	}
	b.ReportMetric(blk.MaxPct, "blk_max%")
	b.ReportMetric(nb.MaxPct, "nb_max%")
	b.ReportMetric(nb.MinPct, "nb_min%")
}

// BenchmarkFig20Overhead reports the modelled instrumentation
// overhead for NAS LU (the paper's bound: <0.9%).
func BenchmarkFig20Overhead(b *testing.B) {
	var r nas.OverheadResult
	for i := 0; i < b.N; i++ {
		r = nas.MeasureOverhead(nas.LU, nas.ClassW, 4, mpi.DirectRDMARead, 3)
	}
	b.ReportMetric(r.OverheadPct, "overhead%")
}

// --- Instrumentation hot path (real wall-clock cost) ---------------

type nowClock struct{ t time.Duration }

func (c *nowClock) Now() time.Duration { c.t += 100 * time.Nanosecond; return c.t }

func benchTable(b *testing.B) *calib.Table {
	b.Helper()
	tbl, err := calib.NewTable([]calib.Point{
		{Size: 1, Time: 5 * time.Microsecond},
		{Size: 1 << 20, Time: 1200 * time.Microsecond},
	})
	if err != nil {
		b.Fatal(err)
	}
	return tbl
}

// BenchmarkMonitorCallPair measures the cost of one
// CALL_ENTER/CALL_EXIT pair — the instrumentation added to every
// library call.
func BenchmarkMonitorCallPair(b *testing.B) {
	m := overlap.NewMonitor(overlap.Config{Clock: &nowClock{}, Table: benchTable(b)})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.CallEnter()
		m.CallExit()
	}
}

// BenchmarkMonitorTransfer measures a full instrumented transfer:
// enter, begin, exit, enter, end, exit.
func BenchmarkMonitorTransfer(b *testing.B) {
	m := overlap.NewMonitor(overlap.Config{Clock: &nowClock{}, Table: benchTable(b)})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := uint64(i + 1)
		m.CallEnter()
		m.XferBegin(id, 64<<10)
		m.CallExit()
		m.CallEnter()
		m.XferEnd(id, 0)
		m.CallExit()
	}
}

// BenchmarkTableLookup measures the calibration-table interpolation on
// the processing path.
func BenchmarkTableLookup(b *testing.B) {
	tbl := benchTable(b)
	b.ReportAllocs()
	var sink time.Duration
	for i := 0; i < b.N; i++ {
		sink += tbl.XferTime(i % (2 << 20))
	}
	_ = sink
}

// --- Ablations ------------------------------------------------------

// BenchmarkAblationQueueSize compares tiny and large monitor queues on
// a fixed workload: the measures must match, only processing cadence
// differs.
func BenchmarkAblationQueueSize(b *testing.B) {
	for _, size := range []int{16, 4096} {
		b.Run(map[int]string{16: "queue16", 4096: "queue4096"}[size], func(b *testing.B) {
			var min float64
			for i := 0; i < b.N; i++ {
				res := cluster.Run(cluster.Config{
					Procs: 2,
					MPI: mpi.Config{
						Protocol:   mpi.DirectRDMARead,
						Instrument: &mpi.InstrumentConfig{QueueSize: size},
					},
				}, pingPongWorkload)
				min = res.Reports[0].Total().MinPercent()
			}
			b.ReportMetric(min, "min%")
		})
	}
}

// BenchmarkAblationEagerThreshold shows the protocol crossover: the
// same 32 KiB exchange under a threshold below and above the message
// size.
func BenchmarkAblationEagerThreshold(b *testing.B) {
	for _, thr := range []int{8 << 10, 64 << 10} {
		name := "rendezvous"
		if thr > 32<<10 {
			name = "eager"
		}
		b.Run(name, func(b *testing.B) {
			var maxPct float64
			for i := 0; i < b.N; i++ {
				res := cluster.Run(cluster.Config{
					Procs: 2,
					MPI: mpi.Config{
						Protocol:       mpi.DirectRDMARead,
						EagerThreshold: thr,
						Instrument:     &mpi.InstrumentConfig{},
					},
				}, pingPongWorkload)
				maxPct = res.Reports[0].Total().MaxPercent()
			}
			b.ReportMetric(maxPct, "max%")
		})
	}
}

// BenchmarkAblationFragmentSize varies the pipelined protocol's
// fragment size; smaller fragments mean more overlap opportunity for
// the first fragment but more per-fragment overhead.
func BenchmarkAblationFragmentSize(b *testing.B) {
	for _, frag := range []int{16 << 10, 256 << 10} {
		name := map[int]string{16 << 10: "frag16K", 256 << 10: "frag256K"}[frag]
		b.Run(name, func(b *testing.B) {
			var dur time.Duration
			for i := 0; i < b.N; i++ {
				res := cluster.Run(cluster.Config{
					Procs: 2,
					MPI: mpi.Config{
						Protocol:     mpi.PipelinedRDMA,
						FragmentSize: frag,
					},
				}, pingPongWorkload)
				dur = res.Duration
			}
			b.ReportMetric(float64(dur.Microseconds()), "vtime_µs")
		})
	}
}

// BenchmarkAblationRegistrationCache compares rendezvous with and
// without the leave_pinned registration cache.
func BenchmarkAblationRegistrationCache(b *testing.B) {
	for _, pinned := range []bool{false, true} {
		name := "pin-every-time"
		if pinned {
			name = "leave-pinned"
		}
		b.Run(name, func(b *testing.B) {
			var dur time.Duration
			for i := 0; i < b.N; i++ {
				res := cluster.Run(cluster.Config{
					Procs: 2,
					MPI: mpi.Config{
						Protocol:    mpi.DirectRDMARead,
						LeavePinned: pinned,
					},
				}, pingPongWorkload)
				dur = res.Duration
			}
			b.ReportMetric(float64(dur.Microseconds()), "vtime_µs")
		})
	}
}

// pingPongWorkload is the fixed workload the ablations run: 30
// Isend/Irecv exchanges of 32 KiB with computation between initiation
// and completion.
func pingPongWorkload(r *mpi.Rank) {
	peer := 1 - r.ID()
	for i := 0; i < 30; i++ {
		s := r.Isend(peer, 0, 32<<10)
		q := r.Irecv(peer, 0)
		r.Compute(200 * time.Microsecond)
		r.Iprobe(mpi.AnySource, mpi.AnyTag)
		r.Compute(200 * time.Microsecond)
		r.Waitall(s, q)
	}
}

// BenchmarkSimulatorEventRate measures the raw discrete-event
// throughput of the substrate (virtual-time events per second of wall
// time), the quantity that bounds how large a NAS configuration the
// harness can simulate.
func BenchmarkSimulatorEventRate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cluster.Run(cluster.Config{Procs: 4}, func(r *mpi.Rank) {
			for k := 0; k < 50; k++ {
				r.Allreduce(8)
			}
		})
	}
}

// --- Extensions beyond the paper ------------------------------------

// BenchmarkHWTimestampsBracketWidth contrasts the classical bounds
// bracket with the NIC-hardware-time-stamp mode (the paper's named
// future work): the width metric collapses to zero under hw mode.
func BenchmarkHWTimestampsBracketWidth(b *testing.B) {
	for _, hw := range []bool{false, true} {
		name := "classical"
		if hw {
			name = "hw-stamps"
		}
		b.Run(name, func(b *testing.B) {
			var width float64
			for i := 0; i < b.N; i++ {
				rep, _ := nas.CharacterizeReport(nas.LU, nas.ClassW, 4, nas.Options{
					Protocol:     mpi.DirectRDMARead,
					MaxIters:     3,
					HWTimestamps: hw,
				})
				tot := rep.Total()
				width = tot.MaxPercent() - tot.MinPercent()
			}
			b.ReportMetric(width, "bracket_width_pct")
		})
	}
}

// BenchmarkCOMBBaseline runs the related-work COMB suite (post-work-
// wait vs polling methods) at one representative point per method.
func BenchmarkCOMBBaseline(b *testing.B) {
	for _, method := range []comb.Method{comb.PostWorkWait, comb.Polling} {
		b.Run(method.String(), func(b *testing.B) {
			var eff float64
			for i := 0; i < b.N; i++ {
				pts := comb.Config{
					Method:   method,
					Protocol: mpi.DirectRDMARead,
					MsgSize:  1 << 20,
					Work:     []time.Duration{1500 * time.Microsecond},
					Reps:     20,
				}.Run()
				eff = pts[0].OverlapEfficiency
			}
			b.ReportMetric(eff*100, "overlap_eff_pct")
		})
	}
}

// BenchmarkStridedVsContiguous quantifies the per-segment cost of
// ARMCI strided puts against a contiguous put of the same volume.
func BenchmarkStridedVsContiguous(b *testing.B) {
	for _, strided := range []bool{false, true} {
		name := "contiguous"
		if strided {
			name = "strided256"
		}
		b.Run(name, func(b *testing.B) {
			var dur time.Duration
			for i := 0; i < b.N; i++ {
				res := cluster.RunARMCI(cluster.ARMCIConfig{Procs: 2}, func(p *armci.Proc) {
					if p.ID() == 0 {
						for k := 0; k < 20; k++ {
							if strided {
								p.PutStrided(1, 256, 1024)
							} else {
								p.Put(1, 256<<10)
							}
						}
					}
					p.Barrier()
				})
				dur = res.Duration
			}
			b.ReportMetric(float64(dur.Microseconds()), "vtime_µs")
		})
	}
}
