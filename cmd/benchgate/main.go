// Benchgate is the benchmark-regression gate: it runs the fixed
// measurement suites of internal/regress and either writes fresh
// baseline files or compares against committed ones, exiting non-zero
// on any violation — the CI hook that keeps wall time, overlap bounds
// and critical-path length from drifting unnoticed.
//
// Usage:
//
//	benchgate [-dir results] [-suites overlap,nas,coll] [-tol 2] [-write]
//
// Baselines live at <dir>/BENCH_<suite>.json. -write regenerates them
// (commit the result); without it the gate compares and reports. The
// workloads run on the virtual-time simulator, so an unchanged tree
// reproduces its baselines byte for byte and the default tolerance
// exists only to absorb deliberate small model adjustments.
//
// -inject-pct inflates the measured wall time and critical path by the
// given percentage before comparing — a self-test hook proving the
// gate trips (see the CI job and internal/regress tests).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"ovlp/internal/regress"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgate: ")
	dir := flag.String("dir", "results", "directory holding BENCH_<suite>.json baselines")
	suitesFlag := flag.String("suites", "overlap,nas,coll", "comma-separated suites to run")
	tol := flag.Float64("tol", 2, "tolerance: percent for durations, percentage points for overlap bounds")
	write := flag.Bool("write", false, "write fresh baselines instead of comparing")
	inject := flag.Float64("inject-pct", 0, "inflate measured durations by this percent (gate self-test)")
	flag.Parse()

	runners := regress.Suites()
	failed := false
	for _, name := range strings.Split(*suitesFlag, ",") {
		name = strings.TrimSpace(name)
		run, ok := runners[name]
		if !ok {
			log.Fatalf("unknown suite %q (have: overlap, nas, coll)", name)
		}
		path := filepath.Join(*dir, "BENCH_"+name+".json")
		got := run()
		if *inject != 0 {
			for i := range got.Entries {
				e := &got.Entries[i]
				e.WallNS += int64(float64(e.WallNS) * *inject / 100)
				e.CritPathNS += int64(float64(e.CritPathNS) * *inject / 100)
			}
		}
		if *write {
			if err := got.Save(path); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s (%d entries)\n", path, len(got.Entries))
			continue
		}
		want, err := regress.Load(path)
		if err != nil {
			log.Fatalf("reading baseline: %v (run benchgate -write and commit)", err)
		}
		bad := regress.Compare(got, want, *tol)
		if len(bad) == 0 {
			fmt.Printf("%s: ok (%d entries within %g%%)\n", name, len(got.Entries), *tol)
			continue
		}
		failed = true
		fmt.Printf("%s: FAIL\n", name)
		for _, m := range bad {
			fmt.Printf("  %s\n", m)
		}
	}
	if failed {
		os.Exit(1)
	}
}
