// Benchgate is the benchmark-regression gate: it runs the fixed
// measurement suites of internal/regress and either writes fresh
// baseline files or compares against committed ones, exiting non-zero
// on any violation — the CI hook that keeps wall time, overlap bounds
// and critical-path length from drifting unnoticed.
//
// Usage:
//
//	benchgate [-dir results] [-suites overlap,nas,coll] [-tol 2] [-write] [-explain]
//
// Baselines live at <dir>/BENCH_<suite>.json. -write regenerates them
// (commit the result); without it the gate compares and reports. The
// workloads run on the virtual-time simulator, so an unchanged tree
// reproduces its baselines byte for byte and the default tolerance
// exists only to absorb deliberate small model adjustments.
//
// Every violation prints as one machine-parseable line,
//
//	gate suite=<s> entry=<e> metric=<m> want=<w> got=<g> delta=<d> tol=<t>: <detail>
//
// so CI scripts can grep a failed run by suite/entry/metric without
// parsing the human sentence at the end.
//
// -explain hands a regression to the diagnosis engine: the suites run
// with artifact capture (blame profile + windowed snapshot per entry),
// and every regressed entry gets an "explain <suite>/<entry>: ..."
// line naming the dominant blame cause behind its bound gap plus the
// engine's ranked findings. The capture is a pure observer — the
// measured numbers are identical either way.
//
// -inject-pct inflates the measured wall time and critical path by the
// given percentage before comparing — a self-test hook proving the
// gate trips (see the CI job and internal/regress tests).
//
// Exit status: 0 gate passes, 1 violations or a missing/unreadable
// baseline, 2 bad flags or an unknown suite name.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"ovlp/internal/diagnose"
	"ovlp/internal/regress"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "results", "directory holding BENCH_<suite>.json baselines")
	suitesFlag := fs.String("suites", "overlap,nas,coll", "comma-separated suites to run")
	tol := fs.Float64("tol", 2, "tolerance: percent for durations, percentage points for overlap bounds")
	write := fs.Bool("write", false, "write fresh baselines instead of comparing")
	explain := fs.Bool("explain", false, "diagnose regressed entries (dominant blame cause + ranked findings)")
	inject := fs.Float64("inject-pct", 0, "inflate measured durations by this percent (gate self-test)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	runners := regress.Suites()
	traced := regress.SuitesTraced()
	// Validate every suite name before any measurement runs.
	var names []string
	for _, name := range strings.Split(*suitesFlag, ",") {
		name = strings.TrimSpace(name)
		if _, ok := runners[name]; !ok {
			fmt.Fprintf(stderr, "benchgate: unknown suite %q (have: overlap, nas, coll)\n", name)
			return 2
		}
		names = append(names, name)
	}

	failed := false
	for _, name := range names {
		path := filepath.Join(*dir, "BENCH_"+name+".json")
		var got *regress.Baseline
		var arts []regress.Artifact
		if *explain {
			got, arts = traced[name]()
		} else {
			got = runners[name]()
		}
		if *inject != 0 {
			for i := range got.Entries {
				e := &got.Entries[i]
				e.WallNS += int64(float64(e.WallNS) * *inject / 100)
				e.CritPathNS += int64(float64(e.CritPathNS) * *inject / 100)
			}
		}
		if *write {
			if err := got.Save(path); err != nil {
				fmt.Fprintf(stderr, "benchgate: %v\n", err)
				return 1
			}
			fmt.Fprintf(stdout, "wrote %s (%d entries)\n", path, len(got.Entries))
			continue
		}
		want, err := regress.Load(path)
		if err != nil {
			fmt.Fprintf(stderr, "benchgate: reading baseline: %v (run benchgate -write and commit)\n", err)
			return 1
		}
		bad := regress.Compare(got, want, *tol)
		if len(bad) == 0 {
			fmt.Fprintf(stdout, "%s: ok (%d entries within %g%%)\n", name, len(got.Entries), *tol)
			continue
		}
		failed = true
		fmt.Fprintf(stdout, "%s: FAIL\n", name)
		for _, v := range bad {
			fmt.Fprintf(stdout, "  %s\n", v)
		}
		if *explain {
			explainSuite(stdout, name, bad, arts)
		}
	}
	if failed {
		return 1
	}
	return 0
}

// explainSuite diagnoses every regressed entry from the captured
// artifacts: one line naming the dominant blame cause behind the
// entry's bound gap, then the diagnosis engine's ranked findings.
func explainSuite(stdout io.Writer, suite string, bad []regress.Violation, arts []regress.Artifact) {
	regressed := map[string]bool{}
	all := false
	for _, v := range bad {
		if v.Entry == "" {
			all = true // suite-level mismatch: explain everything
			continue
		}
		regressed[v.Entry] = true
	}
	for _, a := range arts {
		if !all && !regressed[a.Entry] {
			continue
		}
		story := diagnose.Explain(a.Profile)
		if story == "" {
			story = "no bound gap to explain"
		}
		fmt.Fprintf(stdout, "explain %s/%s: %s\n", suite, a.Entry, story)
		rep := diagnose.Analyze(diagnose.Input{
			Profile:  a.Profile,
			TimeRes:  a.TimeRes,
			Duration: a.Profile.Duration,
			Procs:    a.Profile.Ranks,
		})
		if err := diagnose.WriteText(stdout, rep); err != nil {
			fmt.Fprintf(stdout, "  (diagnosis unavailable: %v)\n", err)
		}
	}
}
