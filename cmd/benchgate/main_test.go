package main

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// gate runs the command with the overlap suite only (the cheapest) and
// returns its exit code and combined output.
func gate(t *testing.T, args ...string) (int, string) {
	t.Helper()
	var out bytes.Buffer
	code := run(args, &out, &out)
	return code, out.String()
}

// TestGateRoundTrip pins the exit-code contract end to end: write
// baselines (0), compare clean (0), injected regression trips the gate
// (1) with machine-parseable violation lines, and -explain names the
// dominant blame cause behind the regressed entries.
func TestGateRoundTrip(t *testing.T) {
	dir := t.TempDir()

	code, out := gate(t, "-dir", dir, "-suites", "overlap", "-write")
	if code != 0 {
		t.Fatalf("-write exit %d:\n%s", code, out)
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_overlap.json")); err != nil {
		t.Fatalf("baseline not written: %v", err)
	}

	code, out = gate(t, "-dir", dir, "-suites", "overlap")
	if code != 0 {
		t.Fatalf("clean compare exit %d:\n%s", code, out)
	}

	code, out = gate(t, "-dir", dir, "-suites", "overlap", "-inject-pct", "10")
	if code != 1 {
		t.Fatalf("injected regression exit %d, want 1:\n%s", code, out)
	}
	line := regexp.MustCompile(`(?m)^  gate suite=overlap entry=[\w-]+ metric=wall_ns want=\d+.* delta=\+10\.00 tol=2:`)
	if !line.MatchString(out) {
		t.Fatalf("no structured wall_ns violation line in:\n%s", out)
	}

	code, out = gate(t, "-dir", dir, "-suites", "overlap", "-inject-pct", "10", "-explain")
	if code != 1 {
		t.Fatalf("-explain exit %d, want 1:\n%s", code, out)
	}
	explain := regexp.MustCompile(`(?m)^explain overlap/eager-10KiB: [\d.]+% of the \S+ bound gap is [a-z-]+`)
	if !explain.MatchString(out) {
		t.Fatalf("no dominant-cause explain line in:\n%s", out)
	}
	if !strings.Contains(out, "findings") {
		t.Fatalf("-explain printed no findings block:\n%s", out)
	}
}

// TestGateUsageErrors: bad flags and unknown suites exit 2 before any
// measurement; a missing baseline exits 1 with a -write hint.
func TestGateUsageErrors(t *testing.T) {
	if code, _ := gate(t, "-nope"); code != 2 {
		t.Errorf("bad flag exit %d, want 2", code)
	}
	if code, out := gate(t, "-suites", "overlap,warp"); code != 2 || !strings.Contains(out, `unknown suite "warp"`) {
		t.Errorf("unknown suite exit %d, want 2 (%s)", code, out)
	}
	if code, out := gate(t, "-dir", t.TempDir(), "-suites", "overlap"); code != 1 || !strings.Contains(out, "-write") {
		t.Errorf("missing baseline exit %d, want 1 with -write hint (%s)", code, out)
	}
}
