// Calibrate measures the interconnect's transfer time for a ladder of
// message sizes and writes the table the overlap instrumentation loads
// at startup — the analogue of running the vendor's perf_main utility
// before an instrumented application run (paper Sec. 3.1).
//
// Usage:
//
//	calibrate [-out calib.table] [-reps 5] [-backend virtual|real]
//
// -backend virtual (the default) measures the deterministic simulated
// fabric; -backend real times actual goroutine transfers on the wall
// clock. The resulting table is stamped with its clock domain, and
// runs reject a table measured on the other kind of clock — virtual
// transfer costs say nothing about the machine's real wire, and vice
// versa.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ovlp/internal/calib"
	"ovlp/internal/cluster"
	"ovlp/internal/cmdutil"
	"ovlp/internal/fabric"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("calibrate: ")
	out := flag.String("out", "calib.table", "output file for the transfer-time table")
	reps := flag.Int("reps", 5, "repetitions per message size")
	bf := cmdutil.RegisterBackend(nil)
	flag.Parse()

	cost := fabric.DefaultCostModel()
	table := cluster.CalibrateBackend(bf.Backend(), nil, cost, calib.StandardSizes(), *reps)
	if err := table.Save(*out); err != nil {
		log.Fatal(err)
	}
	points := table.Points()
	fmt.Printf("calibrated %d message sizes (%d reps each, %s clock) -> %s\n",
		len(points), *reps, table.Domain(), *out)
	for _, p := range points {
		if p.Size == 1 || p.Size&(p.Size-1) == 0 && p.Size >= 1<<10 {
			fmt.Printf("  %9d B  %12v\n", p.Size, p.Time)
		}
	}
	_ = os.Stdout.Sync()
}
