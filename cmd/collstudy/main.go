// Collstudy characterizes the nonblocking collectives: for each
// schedule algorithm and progress mode it runs a compute-overlapped
// collective and prints process 0's certified min/max overlap bounds,
// the time spent blocked in WaitColl, and the virtual run time — the
// subsystem's analogue of the paper's microbenchmark sweeps, showing
// how much overlap each progress strategy actually recovers.
//
// Usage:
//
//	collstudy [-op iallreduce] [-procs 8] [-sizes 4K,64K,1M]
//	          [-algos auto] [-modes manual,piggyback,thread]
//	          [-compute 500us] [-polls 0] [-reps 10] [-coll-chunk 0]
//	          [-progress-quantum 10us] [-fault-seed N -drop P ...]
//	          [-trace out.json] [-metrics] [-profile out.txt] [-diagnose -]
//
// Each rep starts the collective, computes -compute of application
// work (optionally interspersed with -polls TestColl calls — the
// manual-progress poll budget), then waits. With -polls 0 the manual
// row shows what the paper's same-call case certifies (nothing), and
// the thread row what a progress thread recovers from identical code.
//
// -version prints the build identity and exits. Bad flags or invalid
// sweep/fault configuration exit 2 before any simulation starts; a
// failed observability output exits 1.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/cmdutil"
	"ovlp/internal/coll"
	"ovlp/internal/faultflag"
	"ovlp/internal/mpi"
	"ovlp/internal/progress"
	"ovlp/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected: exit status 0 on
// success, 1 on a run or output failure, 2 on bad flags or
// sweep/fault configuration that fails validation.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("collstudy", flag.ContinueOnError)
	fs.SetOutput(stderr)
	opFlag := fs.String("op", "iallreduce", "collective to study: ibcast, ireduce, iallreduce, ialltoall or ibarrier")
	procs := fs.Int("procs", 8, "number of processes")
	sizesFlag := fs.String("sizes", "4K,64K,1M", "comma-separated payload sizes (K/M suffixes)")
	algosFlag := fs.String("algos", "auto", "comma-separated schedule algorithms (auto, binomial, ring, recdouble)")
	modesFlag := fs.String("modes", "manual,piggyback,thread", "comma-separated progress modes")
	compute := fs.Duration("compute", 500*time.Microsecond, "application computation per rep")
	polls := fs.Int("polls", 0, "TestColl polls interspersed in each rep's computation")
	reps := fs.Int("reps", 10, "repetitions per configuration")
	chunk := fs.Int("coll-chunk", 0, "pipeline collective payloads in chunks of this many bytes (0 = unchunked)")
	quantum := fs.Duration("progress-quantum", progress.DefaultQuantum, "wake quantum of the thread progress engine")
	ff := cmdutil.RegisterFaults(fs)
	obs := cmdutil.RegisterObs(fs)
	bf := cmdutil.RegisterBackend(fs)
	ver := cmdutil.RegisterVersion(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *ver {
		fmt.Fprintln(stdout, cmdutil.Version())
		return 0
	}
	fail2 := func(err error) int {
		fmt.Fprintf(stderr, "collstudy: %v\n", err)
		return 2
	}

	if *procs < 1 {
		return fail2(fmt.Errorf("bad processor count %d", *procs))
	}
	faults, err := ff.Plan()
	if err != nil {
		return fail2(err)
	}
	if err := cmdutil.CheckFaultNodes(faults, []int{*procs}); err != nil {
		return fail2(err)
	}
	if bf.Real() && faults != nil {
		return fail2(fmt.Errorf("fault injection needs -backend virtual"))
	}
	if desc := faultflag.Describe(faults); desc != "" {
		fmt.Fprintf(stdout, "%s\n\n", desc)
	}
	op := strings.ToLower(strings.TrimSpace(*opFlag))
	if !knownOp(op) {
		return fail2(fmt.Errorf("unknown collective %q", op))
	}
	algos, err := parseAlgos(*algosFlag)
	if err != nil {
		return fail2(err)
	}
	modes, err := parseModes(*modesFlag)
	if err != nil {
		return fail2(err)
	}
	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		return fail2(err)
	}
	if obs.Enabled() && (len(algos) != 1 || len(modes) != 1 || len(sizes) != 1) {
		return fail2(fmt.Errorf("-trace/-metrics/-profile need a single run: pass one -algos, one -modes and one -sizes value"))
	}

	title := fmt.Sprintf("Nonblocking %s on %d procs — %v compute, %d polls, %d reps",
		op, *procs, *compute, *polls, *reps)
	t := report.NewTable(title,
		"algo", "mode", "size", "min%", "max%", "wait", "MPI time", "run time")
	start := time.Now()
	for _, algo := range algos {
		for _, mode := range modes {
			for _, size := range sizes {
				var wait time.Duration
				res := cluster.Run(cluster.Config{
					Procs:   *procs,
					Backend: bf.Backend(),
					MPI: mpi.Config{
						CollAlgo:   algo,
						CollChunk:  *chunk,
						Progress:   progress.Config{Mode: mode, Quantum: *quantum},
						Instrument: &mpi.InstrumentConfig{},
					},
					Faults: faults,
					Trace:  obs.Tracer(),
				}, func(r *mpi.Rank) {
					for i := 0; i < *reps; i++ {
						cr := startOp(r, op, size)
						slice := *compute / time.Duration(*polls+1)
						for k := 0; k <= *polls; k++ {
							r.Compute(slice)
							if k < *polls {
								r.TestColl(cr)
							}
						}
						r.WaitColl(cr)
					}
					if r.ID() == 0 {
						wait = r.CallTimes()["WaitColl"]
					}
				})
				obs.SetRun(res.Calib, res.Reports)
				tot := res.Reports[0].Total()
				t.AddRow(algo, mode, sizeLabel(size),
					tot.MinPercent(), tot.MaxPercent(),
					wait.Round(time.Microsecond),
					res.MPITimes[0].Round(time.Microsecond),
					res.Duration.Round(time.Microsecond))
			}
		}
	}
	t.Render(stdout)
	fmt.Fprintf(stdout, "  (%v)\n\n", time.Since(start).Round(time.Millisecond))
	if obs.Enabled() {
		if err := obs.Finish(stdout); err != nil {
			fmt.Fprintf(stderr, "collstudy: %v\n", err)
			return 1
		}
	}
	return 0
}

func knownOp(op string) bool {
	switch op {
	case "ibcast", "ireduce", "iallreduce", "ialltoall", "ibarrier":
		return true
	}
	return false
}

// startOp launches the studied collective; op was validated up front.
func startOp(r *mpi.Rank, op string, size int) *mpi.CollRequest {
	switch op {
	case "ibcast":
		return r.Ibcast(0, size)
	case "ireduce":
		return r.Ireduce(0, size)
	case "iallreduce":
		return r.Iallreduce(size)
	case "ialltoall":
		return r.Ialltoall(size)
	default:
		return r.Ibarrier()
	}
}

func parseAlgos(s string) ([]coll.Algo, error) {
	var out []coll.Algo
	for _, part := range strings.Split(s, ",") {
		a, err := coll.ParseAlgo(part)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

func parseModes(s string) ([]progress.Mode, error) {
	var out []progress.Mode
	for _, part := range strings.Split(s, ",") {
		m, err := progress.ParseMode(part)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.ToUpper(strings.TrimSpace(part))
		mult := 1
		switch {
		case strings.HasSuffix(part, "M"):
			mult, part = 1<<20, strings.TrimSuffix(part, "M")
		case strings.HasSuffix(part, "K"):
			mult, part = 1<<10, strings.TrimSuffix(part, "K")
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n*mult)
	}
	return out, nil
}

func sizeLabel(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
