package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestBadFlagsExitTwo: validation failures exit 2 with a message on
// stderr, before any simulation starts.
func TestBadFlagsExitTwo(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // stderr substring
	}{
		{"malformed-procs", []string{"-procs", "x"}, "-procs"},
		{"nonpositive-procs", []string{"-procs", "0"}, "bad processor count"},
		{"unknown-op", []string{"-op", "igather"}, `unknown collective "igather"`},
		{"bad-size", []string{"-sizes", "4Q"}, "bad size"},
		{"scenario-and-legacy", []string{"-scenario", "x.yaml", "-drop", "0.1"}, "mutually exclusive"},
		{"trace-needs-single", []string{"-trace", "out.json", "-modes", "manual,thread"}, "single run"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, _, stderr := runCmd(t, c.args...)
			if code != 2 {
				t.Fatalf("exit = %d, want 2 (stderr: %s)", code, stderr)
			}
			if !strings.Contains(stderr, c.want) {
				t.Fatalf("stderr = %q, want substring %q", stderr, c.want)
			}
		})
	}
}

func TestVersionFlag(t *testing.T) {
	code, stdout, _ := runCmd(t, "-version")
	if code != 0 {
		t.Fatalf("-version exit = %d, want 0", code)
	}
	if !strings.HasPrefix(stdout, "ovlp ") {
		t.Fatalf("-version output = %q", stdout)
	}
}

// TestQuickStudyRuns: a minimal configuration exits 0 and prints its
// table.
func TestQuickStudyRuns(t *testing.T) {
	code, stdout, stderr := runCmd(t,
		"-op", "iallreduce", "-procs", "2", "-sizes", "4K",
		"-algos", "ring", "-modes", "manual", "-reps", "2")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "Nonblocking iallreduce") {
		t.Fatalf("no table in output:\n%s", stdout)
	}
}
