// Comb runs the COMB-style system-level overlap-capability baseline
// (related work the paper contrasts its application-level framework
// with): a two-rank exchange with a sweep of inserted work, under the
// post-work-wait and polling methods, for both long-message protocols.
//
// Usage:
//
//	comb [-size 1048576] [-reps 50]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/cmdutil"
	"ovlp/internal/comb"
	"ovlp/internal/mpi"
	"ovlp/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("comb: ")
	size := flag.Int("size", 1<<20, "message size in bytes")
	reps := flag.Int("reps", 50, "iterations per point")
	bf := cmdutil.RegisterBackend(nil)
	flag.Parse()

	work := []time.Duration{
		0, 250 * time.Microsecond, 500 * time.Microsecond,
		1 * time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
	}
	for _, proto := range []mpi.LongProtocol{mpi.PipelinedRDMA, mpi.DirectRDMARead} {
		for _, method := range []comb.Method{comb.PostWorkWait, comb.Polling} {
			pts := comb.Config{
				Method:   method,
				Protocol: proto,
				MsgSize:  *size,
				Work:     work[1:], // base measured internally
				Reps:     *reps,
				Cluster:  cluster.Config{Backend: bf.Backend()},
			}.Run()
			t := report.NewTable(
				fmt.Sprintf("COMB %s, %s, %d KiB messages", method, proto, *size>>10),
				"work", "elapsed", "availability", "overlap eff.")
			for _, p := range pts {
				t.AddRow(p.Work, p.Elapsed.Round(time.Microsecond),
					fmt.Sprintf("%.2f", p.Availability),
					fmt.Sprintf("%.2f", p.OverlapEfficiency))
			}
			t.Render(os.Stdout)
			fmt.Println()
		}
	}
}
