// Faultstudy sweeps a fault-injection parameter over a fixed
// two-process exchange workload and prints how the overlap bounds,
// wait time and repair traffic respond — the experiment no real
// instrumentation deployment could run, because it needs a network
// whose loss is exactly reproducible.
//
// Each drop rate reruns the same seeded workload: non-blocking
// exchanges with computation sized to hide one clean transfer. As loss
// grows, retransmissions stretch the library's detection window; the
// wait time and the min/max gap widen while the instrumentation's
// bounds stay valid against the simulator's ground truth (the property
// internal/cluster's fault-oracle tests assert).
//
// Usage:
//
//	faultstudy [-rates 0,0.01,0.05,0.1,0.2] [-fault-seed 1] [-reps 200]
//	           [-scenario file.yaml] [-stall "1@2ms+500us"]
//	           [-csv] [-trace out.json] [-metrics] [-profile out.txt]
//
// -scenario layers a declarative chaos schedule (the scenario file's
// chaos, stalls and seed; its workload section is ignored here) under
// the swept drop rate. All fault configuration is validated before any
// rank is spawned: a plan naming nodes this two-process machine does
// not have exits with status 2 and the validation message, instead of
// panicking mid-sweep.
//
// -csv replaces the table with machine-readable CSV on stdout (times
// in nanoseconds), for plotting the sweep. -trace exports the final
// rate point as Chrome trace-event JSON; -metrics prints its counters,
// and -profile runs the critical-path/blame profiler over it — on a
// faulted sweep the fault-retransmit blame column shows what the
// repair traffic cost. -diagnose runs the diagnosis engine over the
// same traced point and emits its ranked findings (a lossy sweep's
// dominant finding is the retransmit storm). -version prints the
// build identity and exits.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/cmdutil"
	"ovlp/internal/fabric"
	"ovlp/internal/mpi"
	"ovlp/internal/report"
	"ovlp/internal/trace"
)

const (
	msgSize    = 64 << 10 // rendezvous-range messages: retransmits hurt
	studyProcs = 2
	compute    = 200 * time.Microsecond
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected: exit status 0 on
// success, 1 on a run failure, 2 on bad flags or a fault plan that
// fails validation (reported before any rank is spawned).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("faultstudy", flag.ContinueOnError)
	fs.SetOutput(stderr)
	ratesFlag := fs.String("rates", "0,0.01,0.05,0.1,0.2", "comma-separated drop rates to sweep")
	reps := fs.Int("reps", 200, "exchanges per drop rate")
	csvOut := fs.Bool("csv", false, "emit machine-readable CSV instead of the table (times in ns)")
	ff := cmdutil.RegisterFaults(fs)
	obs := cmdutil.RegisterObs(fs)
	bf := cmdutil.RegisterBackend(fs)
	ver := cmdutil.RegisterVersion(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *ver {
		fmt.Fprintln(stdout, cmdutil.Version())
		return 0
	}

	fail2 := func(err error) int {
		fmt.Fprintf(stderr, "faultstudy: %v\n", err)
		return 2
	}
	if bf.Real() {
		// The whole study is fault injection, which needs deterministic
		// virtual-time scheduling.
		return fail2(fmt.Errorf("faultstudy is virtual-only: fault injection needs -backend virtual"))
	}
	rates, err := parseRates(*ratesFlag)
	if err != nil {
		return fail2(err)
	}
	// Validate the full fault configuration up front — scenario compile
	// errors and node-range mistakes must surface as a clean exit, not
	// as a panic from inside the simulation.
	base, err := ff.Plan()
	if err != nil {
		return fail2(err)
	}
	if err := cmdutil.CheckFaultNodes(base, []int{studyProcs}); err != nil {
		return fail2(err)
	}

	var rows []point
	for i, rate := range rates {
		// Only the final rate point is traced: one trace file holds one
		// run, and the last point is the sweep's most faulted.
		var tr *trace.Tracer
		if i == len(rates)-1 {
			tr = obs.Tracer()
		}
		row, err := runPoint(rate, base, ff.Seed(), *reps, tr, obs)
		if err != nil {
			fmt.Fprintf(stderr, "faultstudy: drop rate %g: %v\n", rate, err)
			return 1
		}
		rows = append(rows, row)
	}

	if *csvOut {
		writeCSV(stdout, rates, rows)
	} else {
		writeTable(stdout, rates, rows, ff.Seed(), *reps)
	}
	if obs.Enabled() {
		if err := obs.Finish(stdout); err != nil {
			fmt.Fprintf(stderr, "faultstudy: %v\n", err)
			return 1
		}
	}
	return 0
}

func writeTable(w io.Writer, rates []float64, rows []point, seed int64, reps int) {
	t := report.NewTable(
		fmt.Sprintf("Overlap bounds vs drop rate — 2 procs, Isend/Irecv %d KiB x %d, %v compute (seed %d)",
			msgSize>>10, reps, compute, seed),
		"drop", "min%", "max%", "avg wait", "dropped", "retransmits", "run time")
	for i, row := range rows {
		t.AddRow(fmt.Sprintf("%.2f", rates[i]), row.minPct, row.maxPct,
			row.wait.Round(time.Microsecond), row.dropped, row.retransmits,
			row.duration.Round(time.Microsecond))
	}
	t.Render(w)
	fmt.Fprintln(w, "\n  retransmitted attempts count as library time, never as extra transfers,")
	fmt.Fprintln(w, "  so rising loss squeezes the achievable overlap instead of inflating it.")
}

// writeCSV emits one row per rate point with durations as integer
// nanoseconds, the plotting-friendly twin of the table.
func writeCSV(w io.Writer, rates []float64, rows []point) {
	cw := csv.NewWriter(w)
	cw.Write([]string{"drop_rate", "min_pct", "max_pct", "avg_wait_ns", "dropped", "retransmits", "run_ns"})
	for i, row := range rows {
		cw.Write([]string{
			strconv.FormatFloat(rates[i], 'g', -1, 64),
			strconv.FormatFloat(row.minPct, 'f', 2, 64),
			strconv.FormatFloat(row.maxPct, 'f', 2, 64),
			strconv.FormatInt(int64(row.wait), 10),
			strconv.Itoa(row.dropped),
			strconv.Itoa(row.retransmits),
			strconv.FormatInt(int64(row.duration), 10),
		})
	}
	cw.Flush()
}

type point struct {
	minPct, maxPct float64
	wait           time.Duration
	dropped        int
	retransmits    int
	duration       time.Duration
}

// pointPlan layers the swept drop rate over the base plan (nil base,
// zero rate → no faults, preserving the sweep's fault-free row).
func pointPlan(rate float64, base *fabric.FaultPlan, seed int64) *fabric.FaultPlan {
	if base == nil {
		if rate == 0 {
			return nil
		}
		return &fabric.FaultPlan{Seed: seed, Default: fabric.LinkFaults{DropRate: rate}}
	}
	p := *base // shallow copy: only Default is adjusted
	p.Default.DropRate = rate
	return &p
}

func runPoint(rate float64, base *fabric.FaultPlan, seed int64, reps int, tr *trace.Tracer, obs *cmdutil.Obs) (point, error) {
	cfg := cluster.Config{
		Procs: studyProcs,
		MPI: mpi.Config{
			Protocol:   mpi.DirectRDMARead,
			Instrument: &mpi.InstrumentConfig{},
		},
		Faults: pointPlan(rate, base, seed),
		Trace:  tr,
	}
	var waits [2]time.Duration
	res, err := cluster.RunE(cfg, func(r *mpi.Rank) {
		peer := 1 - r.ID()
		for i := 0; i < reps; i++ {
			sq := r.Isend(peer, 0, msgSize)
			rq := r.Irecv(peer, 0)
			r.Compute(compute)
			start := r.Now()
			r.Waitall(sq, rq)
			waits[r.ID()] += r.Now() - start
		}
	})
	if err != nil {
		return point{}, err
	}
	if tr != nil {
		obs.SetRun(res.Calib, res.Reports)
	}
	tot := res.Reports[0].Total()
	out := point{
		minPct:   tot.MinPercent(),
		maxPct:   tot.MaxPercent(),
		wait:     (waits[0] + waits[1]) / time.Duration(2*reps),
		dropped:  res.FaultStats.Dropped,
		duration: res.Duration,
	}
	for _, rs := range res.RelStats {
		out.retransmits += rs.Retransmits + rs.Reposts
	}
	return out, nil
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || r < 0 || r > 1 {
			return nil, fmt.Errorf("bad drop rate %q (want a number in [0,1])", part)
		}
		out = append(out, r)
	}
	return out, nil
}
