// Faultstudy sweeps a fault-injection parameter over a fixed
// two-process exchange workload and prints how the overlap bounds,
// wait time and repair traffic respond — the experiment no real
// instrumentation deployment could run, because it needs a network
// whose loss is exactly reproducible.
//
// Each drop rate reruns the same seeded workload: non-blocking
// exchanges with computation sized to hide one clean transfer. As loss
// grows, retransmissions stretch the library's detection window; the
// wait time and the min/max gap widen while the instrumentation's
// bounds stay valid against the simulator's ground truth (the property
// internal/cluster's fault-oracle tests assert).
//
// Usage:
//
//	faultstudy [-rates 0,0.01,0.05,0.1,0.2] [-fault-seed 1] [-reps 200]
//	           [-csv] [-trace out.json] [-metrics] [-profile out.txt]
//
// -csv replaces the table with machine-readable CSV on stdout (times
// in nanoseconds), for plotting the sweep. -trace exports the final
// rate point as Chrome trace-event JSON; -metrics prints its counters,
// and -profile runs the critical-path/blame profiler over it — on a
// faulted sweep the fault-retransmit blame column shows what the
// repair traffic cost.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/cmdutil"
	"ovlp/internal/fabric"
	"ovlp/internal/mpi"
	"ovlp/internal/report"
	"ovlp/internal/trace"
)

const (
	msgSize = 64 << 10 // rendezvous-range messages: retransmits hurt
	compute = 200 * time.Microsecond
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("faultstudy: ")
	ratesFlag := flag.String("rates", "0,0.01,0.05,0.1,0.2", "comma-separated drop rates to sweep")
	seed := flag.Int64("fault-seed", 1, "fault-injection PRNG seed")
	reps := flag.Int("reps", 200, "exchanges per drop rate")
	csvOut := flag.Bool("csv", false, "emit machine-readable CSV instead of the table (times in ns)")
	obs := cmdutil.RegisterObs(nil)
	flag.Parse()

	rates, err := parseRates(*ratesFlag)
	if err != nil {
		log.Fatal(err)
	}

	var rows []point
	for i, rate := range rates {
		// Only the final rate point is traced: one trace file holds one
		// run, and the last point is the sweep's most faulted.
		var tr *trace.Tracer
		if i == len(rates)-1 {
			tr = obs.Tracer()
		}
		row, err := runPoint(rate, *seed, *reps, tr, obs)
		if err != nil {
			log.Fatalf("drop rate %g: %v", rate, err)
		}
		rows = append(rows, row)
	}

	if *csvOut {
		writeCSV(os.Stdout, rates, rows)
	} else {
		writeTable(os.Stdout, rates, rows, *seed, *reps)
	}
	if obs.Enabled() {
		if err := obs.Finish(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

func writeTable(w *os.File, rates []float64, rows []point, seed int64, reps int) {
	t := report.NewTable(
		fmt.Sprintf("Overlap bounds vs drop rate — 2 procs, Isend/Irecv %d KiB x %d, %v compute (seed %d)",
			msgSize>>10, reps, compute, seed),
		"drop", "min%", "max%", "avg wait", "dropped", "retransmits", "run time")
	for i, row := range rows {
		t.AddRow(fmt.Sprintf("%.2f", rates[i]), row.minPct, row.maxPct,
			row.wait.Round(time.Microsecond), row.dropped, row.retransmits,
			row.duration.Round(time.Microsecond))
	}
	t.Render(w)
	fmt.Fprintln(w, "\n  retransmitted attempts count as library time, never as extra transfers,")
	fmt.Fprintln(w, "  so rising loss squeezes the achievable overlap instead of inflating it.")
}

// writeCSV emits one row per rate point with durations as integer
// nanoseconds, the plotting-friendly twin of the table.
func writeCSV(w *os.File, rates []float64, rows []point) {
	cw := csv.NewWriter(w)
	cw.Write([]string{"drop_rate", "min_pct", "max_pct", "avg_wait_ns", "dropped", "retransmits", "run_ns"})
	for i, row := range rows {
		cw.Write([]string{
			strconv.FormatFloat(rates[i], 'g', -1, 64),
			strconv.FormatFloat(row.minPct, 'f', 2, 64),
			strconv.FormatFloat(row.maxPct, 'f', 2, 64),
			strconv.FormatInt(int64(row.wait), 10),
			strconv.Itoa(row.dropped),
			strconv.Itoa(row.retransmits),
			strconv.FormatInt(int64(row.duration), 10),
		})
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		log.Fatal(err)
	}
}

type point struct {
	minPct, maxPct float64
	wait           time.Duration
	dropped        int
	retransmits    int
	duration       time.Duration
}

func runPoint(rate float64, seed int64, reps int, tr *trace.Tracer, obs *cmdutil.Obs) (point, error) {
	cfg := cluster.Config{
		Procs: 2,
		MPI: mpi.Config{
			Protocol:   mpi.DirectRDMARead,
			Instrument: &mpi.InstrumentConfig{},
		},
		Trace: tr,
	}
	if rate > 0 {
		cfg.Faults = &fabric.FaultPlan{
			Seed:    seed,
			Default: fabric.LinkFaults{DropRate: rate},
		}
	}
	var waits [2]time.Duration
	res, err := cluster.RunE(cfg, func(r *mpi.Rank) {
		peer := 1 - r.ID()
		for i := 0; i < reps; i++ {
			sq := r.Isend(peer, 0, msgSize)
			rq := r.Irecv(peer, 0)
			r.Compute(compute)
			start := r.Now()
			r.Waitall(sq, rq)
			waits[r.ID()] += r.Now() - start
		}
	})
	if err != nil {
		return point{}, err
	}
	if tr != nil {
		obs.SetRun(res.Calib, res.Reports)
	}
	tot := res.Reports[0].Total()
	out := point{
		minPct:   tot.MinPercent(),
		maxPct:   tot.MaxPercent(),
		wait:     (waits[0] + waits[1]) / time.Duration(2*reps),
		dropped:  res.FaultStats.Dropped,
		duration: res.Duration,
	}
	for _, rs := range res.RelStats {
		out.retransmits += rs.Retransmits + rs.Reposts
	}
	return out, nil
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || r < 0 || r > 1 {
			return nil, fmt.Errorf("bad drop rate %q (want a number in [0,1])", part)
		}
		out = append(out, r)
	}
	return out, nil
}
