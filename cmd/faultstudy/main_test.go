package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCmd captures run()'s streams and exit status.
func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestVersionFlag(t *testing.T) {
	code, stdout, _ := runCmd(t, "-version")
	if code != 0 {
		t.Fatalf("-version exit = %d, want 0", code)
	}
	if !strings.HasPrefix(stdout, "ovlp ") {
		t.Fatalf("-version output = %q", stdout)
	}
}

// TestDiagnoseFlag: -diagnose - appends the ranked findings to stdout;
// a lossy sweep must at least produce the findings header.
func TestDiagnoseFlag(t *testing.T) {
	code, stdout, stderr := runCmd(t, "-rates", "0.2", "-reps", "10", "-diagnose", "-")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "findings") {
		t.Fatalf("no findings block in output:\n%s", stdout)
	}
}

func TestBadFaultFlagsExitTwoBeforeRunning(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // stderr substring
	}{
		{"stall-node-range", []string{"-stall", "5@1ms+2ms"}, "names node 5"},
		{"bad-stall-syntax", []string{"-stall", "nope"}, "bad stall"},
		{"bad-rate", []string{"-rates", "2.0"}, "bad drop rate"},
		{"scenario-missing", []string{"-scenario", "no-such-file.yaml"}, "no-such-file.yaml"},
		{"scenario-and-legacy", []string{"-scenario", "x.yaml", "-drop", "0.1"}, "mutually exclusive"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, stdout, stderr := runCmd(t, c.args...)
			if code != 2 {
				t.Fatalf("exit = %d, want 2 (stderr: %s)", code, stderr)
			}
			if !strings.Contains(stderr, c.want) {
				t.Fatalf("stderr = %q, want substring %q", stderr, c.want)
			}
			if stdout != "" {
				t.Fatalf("bad flags must not produce output, got %q", stdout)
			}
		})
	}
}

func TestScenarioValidationMessageIsGolden(t *testing.T) {
	// A scenario whose chaos schedule names a node beyond the study's
	// two-process machine must fail validation with the exact message —
	// before any rank is spawned.
	dir := t.TempDir()
	path := filepath.Join(dir, "wide.yaml")
	src := `
name: wide
seed: 1
procs: 4
workload:
  kind: exchange
  size: 16K
  reps: 2
chaos:
  - at: 0s
    drop: 0.2
    nodes: [3]
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runCmd(t, "-scenario", path)
	if code != 2 {
		t.Fatalf("exit = %d, want 2 (stderr: %s)", code, stderr)
	}
	want := "faultstudy: faultflag: schedule event 0 names node 3 but the run uses 2 process(es) (nodes 0-1)\n"
	if stderr != want {
		t.Fatalf("stderr = %q\nwant     %q", stderr, want)
	}
}

func TestScenarioScheduleDrivesSweep(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spike.yaml")
	src := `
name: spike
seed: 5
procs: 2
workload:
  kind: exchange
  size: 16K
  reps: 2
chaos:
  - label: burst
    at: 0s
    clear: 50ms
    drop: 0.3
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runCmd(t, "-scenario", path, "-rates", "0", "-reps", "20", "-csv")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	// Even with the swept rate at 0, the scenario's schedule must have
	// injected drops (the "dropped" CSV column, field 5 of row 2).
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv output = %q", stdout)
	}
	fields := strings.Split(lines[1], ",")
	if len(fields) != 7 {
		t.Fatalf("csv row = %q", lines[1])
	}
	if fields[4] == "0" {
		t.Fatalf("scenario chaos schedule injected nothing: %q", lines[1])
	}
}

func TestCleanSweepStillWorks(t *testing.T) {
	code, stdout, stderr := runCmd(t, "-rates", "0,0.05", "-reps", "10", "-csv")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows, got %q", stdout)
	}
}
