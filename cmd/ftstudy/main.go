// Ftstudy measures what a crash-stop rank failure costs: it runs the
// fault-tolerant ring exchange twice — once failure-free, once under
// the -crash plan — and prints how the overlap bounds and the
// recovery blame (detect, agree, rollback, recompute) respond, plus
// the per-epoch overlap accounting of the crashed run. It is the
// experiment the in-situ instrumentation exists for: same workload,
// same seed, the only difference being the declared failure.
//
// Usage:
//
//	ftstudy -crash "2@800us" [-recover shrink-continue] [-checkpoint-every 1]
//	        [-heartbeat 0] [-procs 4] [-size 1048576] [-steps 10]
//	        [-compute 200us] [-retries 3]
//	        [-trace out.json] [-metrics] [-profile out.txt] [-diagnose -]
//
// -crash declares the kill plan (see internal/cmdutil); without it
// only the baseline row is printed. -recover picks what the survivors
// do after the agreed failure, and -retries bounds the reliable
// transport's retry budget — the crash detector primitive — so a
// smaller budget means faster detection and more truncated in-flight
// transfers at the epoch cut. The observability flags export the
// crashed run (the baseline when no crash was declared).
//
// -version prints the build identity and exits. Bad flags or an
// invalid crash plan exit 2 before any simulation starts; a failed
// run exits 1.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/cmdutil"
	"ovlp/internal/fabric"
	"ovlp/internal/micro"
	"ovlp/internal/mpi"
	"ovlp/internal/overlap"
	"ovlp/internal/profile"
	"ovlp/internal/report"
	"ovlp/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected: exit status 0 on
// success, 1 on a run failure, 2 on bad flags or a crash plan that
// fails validation.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ftstudy", flag.ContinueOnError)
	fs.SetOutput(stderr)
	procs := fs.Int("procs", 4, "ranks in the exchange ring")
	size := fs.Int("size", 1<<20, "exchanged message size in bytes")
	steps := fs.Int("steps", 10, "exchange steps (the recoverable work units)")
	compute := fs.Duration("compute", 200*time.Microsecond, "computation inserted per step")
	retries := fs.Int("retries", 3, "reliable-transport retry budget (smaller = faster crash detection)")
	ft := cmdutil.RegisterFT(fs)
	obs := cmdutil.RegisterObs(fs)
	bf := cmdutil.RegisterBackend(fs)
	ver := cmdutil.RegisterVersion(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *ver {
		fmt.Fprintln(stdout, cmdutil.Version())
		return 0
	}
	fail2 := func(err error) int {
		fmt.Fprintf(stderr, "ftstudy: %v\n", err)
		return 2
	}
	if bf.Real() {
		// Crash-stop failures and recovery need deterministic
		// virtual-time scheduling.
		return fail2(fmt.Errorf("ftstudy is virtual-only: crash injection needs -backend virtual"))
	}
	if *procs < 2 || *size <= 0 || *steps <= 0 || *compute < 0 || *retries == 0 {
		return fail2(fmt.Errorf("need -procs >= 2, positive -size/-steps, non-negative -compute and a non-zero -retries"))
	}
	plan, err := ft.Plan()
	if err != nil {
		return fail2(err)
	}
	if err := ft.CheckNodes(plan, *procs); err != nil {
		return fail2(err)
	}
	opt, err := ft.Options()
	if err != nil {
		return fail2(err)
	}
	if desc := ft.Describe(); desc != "" {
		fmt.Fprintf(stdout, "%s\n\n", desc)
	}

	wl := &micro.ExchangeWorkload{MsgSize: *size, Compute: *compute, StepCount: *steps}
	runs := []struct {
		label string
		plan  *fabric.CrashPlan
	}{{"baseline", nil}}
	if ft.Active() {
		runs = append(runs, struct {
			label string
			plan  *fabric.CrashPlan
		}{"crashed", plan})
	}

	t := report.NewTable(
		fmt.Sprintf("Recovery cost — %d-rank ring exchange, %d B x %d steps, %v compute",
			*procs, *size, *steps, *compute),
		"run", "min%", "max%", "epochs", "ckpts", "replayed",
		"detect", "agree", "rollback", "recompute", "run time")
	var crashed *profile.Profile
	var crashedRes *cluster.FTResult
	for i, r := range runs {
		// The observability flags export the last (most interesting) run:
		// one trace file holds one run.
		var tr *trace.Tracer
		if i == len(runs)-1 {
			tr = obs.Tracer()
		}
		if tr == nil {
			tr = trace.New(trace.Options{Generator: cmdutil.Version()})
		}
		res, p, err := runPoint(r.plan, opt, wl, *procs, *retries, tr)
		if err != nil {
			fmt.Fprintf(stderr, "ftstudy: %s run: %v\n", r.label, err)
			return 1
		}
		if i == len(runs)-1 {
			obs.SetRun(res.Calib, res.Reports)
			obs.SetFT(r.plan, opt.Mode, res)
		}
		if r.plan != nil {
			crashed, crashedRes = p, res
		}
		addRow(t, r.label, res, p)
	}
	t.Render(stdout)
	if crashedRes != nil {
		fmt.Fprintf(stdout, "  failed ranks %v, survivors %v, completed %v\n",
			crashedRes.Failed, crashedRes.Survivors, crashedRes.Completed)
	}
	fmt.Fprintln(stdout)
	if crashed != nil && len(crashed.Epochs) > 1 {
		renderEpochs(stdout, crashed)
	}
	if obs.Enabled() {
		if err := obs.Finish(stdout); err != nil {
			fmt.Fprintf(stderr, "ftstudy: %v\n", err)
			return 1
		}
	}
	return 0
}

// runPoint executes one fault-tolerant run and profiles its trace for
// the recovery blame columns. A nil profile (a stream too short to
// analyze) leaves the blame columns empty rather than failing the run.
func runPoint(plan *fabric.CrashPlan, opt cluster.FTOptions, wl cluster.Checkpointable,
	procs, retries int, tr *trace.Tracer) (*cluster.FTResult, *profile.Profile, error) {
	cfg := cluster.Config{
		Procs: procs,
		MPI: mpi.Config{
			Protocol:   mpi.PipelinedRDMA,
			Instrument: &mpi.InstrumentConfig{},
			Reliable:   &fabric.ReliableParams{MaxRetries: retries},
		},
		Crashes:  plan,
		Deadline: 30 * time.Second,
		Trace:    tr,
	}
	res, err := cluster.RunFT(cfg, opt, wl)
	if err != nil {
		return nil, nil, err
	}
	p, perr := profile.Analyze(profile.FromTracer(tr, res.Calib, res.Reports))
	if perr != nil {
		p = nil
	}
	return &res, p, nil
}

func addRow(t *report.Table, label string, res *cluster.FTResult, p *profile.Profile) {
	var tot overlap.Measures
	for _, rep := range res.Reports {
		if rep != nil {
			tot.Add(rep.Total())
		}
	}
	var b profile.Blame
	if p != nil {
		b = p.Totals.Blame
	}
	us := func(d time.Duration) string { return d.Round(time.Microsecond).String() }
	t.AddRow(label, tot.MinPercent(), tot.MaxPercent(),
		res.Epochs, res.Checkpoints, res.ReplayedSteps,
		us(b.Detect), us(b.Agree), us(b.Rollback), us(b.Recompute),
		res.Duration.Round(time.Microsecond))
}

// renderEpochs prints the crashed run's per-epoch overlap accounting:
// the same totals the whole-run row sums, sliced at the epoch cuts so
// pre-failure overlap is not smeared across the recovery.
func renderEpochs(w io.Writer, p *profile.Profile) {
	t := report.NewTable("  Per-epoch accounting (crashed run)",
		"epoch", "xfers", "data xfer", "min%", "max%", "gap")
	pct := func(part, whole time.Duration) string {
		if whole == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f", 100*float64(part)/float64(whole))
	}
	for _, e := range p.Epochs {
		t.AddRow(e.Epoch, e.Transfers,
			e.DataTransferTime.Round(time.Microsecond),
			pct(e.MinOverlapped, e.DataTransferTime),
			pct(e.MaxOverlapped, e.DataTransferTime),
			e.Gap.Round(time.Microsecond))
	}
	t.Render(w)
	fmt.Fprintln(w)
}
