package main

import (
	"bytes"
	"strings"
	"testing"
)

// runCmd captures run()'s streams and exit status.
func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestVersionFlag(t *testing.T) {
	code, stdout, _ := runCmd(t, "-version")
	if code != 0 {
		t.Fatalf("-version exit = %d, want 0", code)
	}
	if !strings.HasPrefix(stdout, "ovlp ") {
		t.Fatalf("-version output = %q", stdout)
	}
}

func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-crash", "nonsense"},
		{"-crash", "9@1ms"},                       // node 9 on a 4-rank machine
		{"-crash", "1@1ms,2@2ms", "-procs", "3"},  // fewer than two survivors
		{"-crash", "1@1ms", "-recover", "resume"}, // unknown mode
		{"-procs", "1"},
	} {
		code, _, stderr := runCmd(t, args...)
		if code != 2 {
			t.Errorf("%v: exit = %d, want 2 (stderr: %s)", args, code, stderr)
		}
	}
}

// TestCrashedRun: the crashed run must recover, name the dead rank and
// show per-epoch accounting; the baseline row stays failure-free.
func TestCrashedRun(t *testing.T) {
	code, stdout, stderr := runCmd(t,
		"-crash", "2@800us", "-steps", "6", "-size", "262144")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{
		"crashes: node 2 @ 800µs (shrink-continue recovery)",
		"baseline", "crashed",
		"failed ranks [2]", "completed true",
		"Per-epoch accounting",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output missing %q:\n%s", want, stdout)
		}
	}
}

// TestCheckpointRestart: -recover checkpoint-restart commits
// checkpoints and the diagnosis flag reports the rank failure.
func TestCheckpointRestart(t *testing.T) {
	code, stdout, stderr := runCmd(t,
		"-crash", "2@1ms", "-recover", "checkpoint-restart",
		"-steps", "6", "-size", "262144", "-diagnose", "-")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "checkpoint-restart recovery") {
		t.Errorf("header missing recovery mode:\n%s", stdout)
	}
	if !strings.Contains(stdout, "findings") {
		t.Errorf("no findings block in output:\n%s", stdout)
	}
	if !strings.Contains(stdout, "rank-failure") {
		t.Errorf("-diagnose must cite the declared crash:\n%s", stdout)
	}
}
