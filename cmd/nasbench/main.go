// Nasbench regenerates the paper's NAS benchmark characterizations:
// Figs. 10-13 (BT and CG under the pipelined-RDMA library as with Open
// MPI; LU and FT under direct RDMA read as with MVAPICH2) and Fig. 19
// (the ARMCI MG variants). For each benchmark it sweeps problem
// classes and processor counts and prints process 0's min/max overlap
// percentages, as the paper reports.
//
// Usage:
//
//	nasbench [-bench all] [-classes S,W,A,B] [-procs ...] [-iters 10]
//	         [-overlap] [-coll-algo auto] [-coll-chunk 0]
//	         [-progress manual] [-progress-quantum 10us]
//	         [-trace out.json] [-metrics] [-profile out.txt] [-diagnose -]
//
// -overlap runs the overlapped-collective variants of CG, FT and MG
// (nonblocking schedules advanced by the -progress engine); the
// -coll-* flags pick the schedule algorithm and pipelining chunk.
//
// -iters truncates each benchmark's time-stepping loop; overlap
// percentages converge within a few iterations, so the default keeps
// runs quick. Pass -iters 0 for the full NPB iteration counts.
// -trace/-metrics/-profile/-diagnose (which need a single
// bench/class/procs selection) export the run as Chrome trace-event
// JSON, print its counters, run the critical-path/blame profiler over
// it, and emit the diagnosis engine's ranked findings.
//
// -version prints the build identity and exits. Bad flags or invalid
// sweep/fault configuration exit 2 before any simulation starts; a
// failed run or output exits 1.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ovlp/internal/cmdutil"
	"ovlp/internal/fabric"
	"ovlp/internal/faultflag"
	"ovlp/internal/mpi"
	"ovlp/internal/nas"
	"ovlp/internal/overlap"
	"ovlp/internal/report"
)

// paperProtocol maps each benchmark to the library the paper pairs it
// with (Sec. 4: BT, CG with Open MPI; LU, FT, SP with MVAPICH2).
var paperProtocol = map[string]mpi.LongProtocol{
	nas.BT: mpi.PipelinedRDMA,
	nas.CG: mpi.PipelinedRDMA,
	nas.LU: mpi.DirectRDMARead,
	nas.FT: mpi.DirectRDMARead,
	nas.SP: mpi.DirectRDMARead,
	nas.MG: mpi.DirectRDMARead,
	nas.IS: mpi.DirectRDMARead,
	nas.EP: mpi.DirectRDMARead,
}

// figure numbers for the table titles.
var paperFigure = map[string]string{
	nas.BT: "Fig. 10",
	nas.CG: "Fig. 11",
	nas.LU: "Fig. 12",
	nas.FT: "Fig. 13",
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected: exit status 0 on
// success, 1 on a run or output failure, 2 on bad flags or
// sweep/fault configuration that fails validation.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nasbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	benchFlag := fs.String("bench", "all", "comma-separated benchmarks (BT,CG,LU,FT,SP,MG,IS,EP,MG-ARMCI) or 'all'/'paper'")
	classFlag := fs.String("classes", "S,W,A,B", "comma-separated problem classes")
	procsFlag := fs.String("procs", "", "comma-separated processor counts (default per benchmark)")
	iters := fs.Int("iters", 10, "iteration cap (0 = full NPB iteration counts)")
	bins := fs.Bool("bins", false, "also print process 0's per-message-size-bin breakdown")
	hw := fs.Bool("hw", false, "use NIC hardware time-stamps (precise mode: min == max)")
	jsonDir := fs.String("json", "", "directory to write per-rank JSON reports into (inspect with ovlpreport)")
	overlapped := fs.Bool("overlap", false, "run the overlapped-collective variants of CG, FT and MG")
	cf := cmdutil.RegisterColl(fs)
	ff := cmdutil.RegisterFaults(fs)
	obs := cmdutil.RegisterObs(fs)
	bf := cmdutil.RegisterBackend(fs)
	ver := cmdutil.RegisterVersion(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *ver {
		fmt.Fprintln(stdout, cmdutil.Version())
		return 0
	}
	fail2 := func(err error) int {
		fmt.Fprintf(stderr, "nasbench: %v\n", err)
		return 2
	}
	faults, err := ff.Plan()
	if err != nil {
		return fail2(err)
	}
	if bf.Real() && faults != nil {
		return fail2(fmt.Errorf("fault injection needs -backend virtual"))
	}
	// Validate the whole sweep configuration before any simulation: a
	// malformed -procs or -classes exits 2 up front, not mid-sweep.
	if _, err := cmdutil.ParseProcs(*procsFlag, nil); err != nil {
		return fail2(err)
	}
	classes, err := parseClasses(*classFlag)
	if err != nil {
		return fail2(err)
	}
	if desc := faultflag.Describe(faults); desc != "" {
		fmt.Fprintf(stdout, "%s\n\n", desc)
	}

	var benches []string
	switch *benchFlag {
	case "all":
		benches = append(nas.Names(), "MG-ARMCI")
	case "paper":
		benches = []string{nas.BT, nas.CG, nas.LU, nas.FT, "MG-ARMCI"}
	default:
		benches = strings.Split(*benchFlag, ",")
	}
	if obs.Enabled() && (len(benches) != 1 || len(classes) != 1) {
		return fail2(fmt.Errorf("-trace/-metrics need a single run: pass one -bench, one -classes and one -procs value"))
	}

	for _, b := range benches {
		b = strings.ToUpper(strings.TrimSpace(b))
		var err error
		if b == "MG-ARMCI" {
			err = runMGARMCI(stdout, classes, defProcs(*procsFlag, []int{2, 4, 8}), *iters, faults, bf, obs)
		} else {
			dp := []int{4, 8, 16}
			if b == nas.BT || b == nas.SP {
				dp = []int{4, 9, 16}
			}
			err = runBench(stdout, b, classes, defProcs(*procsFlag, dp), *iters, *bins, *hw, *overlapped, cf, *jsonDir, faults, bf, obs)
		}
		if err != nil {
			return fail2(err)
		}
	}
	if obs.Enabled() {
		if err := obs.Finish(stdout); err != nil {
			fmt.Fprintf(stderr, "nasbench: %v\n", err)
			return 1
		}
	}
	return 0
}

// defProcs resolves the -procs flag against a benchmark's default
// sweep; the flag's syntax was validated up front, so this cannot fail.
func defProcs(s string, def []int) []int {
	procs, _ := cmdutil.ParseProcs(s, def)
	return procs
}

// checkTraceable rejects -trace/-metrics on a processor-count sweep:
// one trace file holds one run.
func checkTraceable(obs *cmdutil.Obs, procs []int) error {
	if obs.Enabled() && len(procs) != 1 {
		return fmt.Errorf("-trace/-metrics need a single run: pass one -bench, one -classes and one -procs value")
	}
	return nil
}

func runBench(w io.Writer, name string, classes []nas.Class, procs []int, iters int, bins, hw, overlapped bool, cf *cmdutil.Coll, jsonDir string, faults *fabric.FaultPlan, bf *cmdutil.BackendFlag, obs *cmdutil.Obs) error {
	if err := cmdutil.CheckFaultNodes(faults, procs); err != nil {
		return err
	}
	if err := checkTraceable(obs, procs); err != nil {
		return err
	}
	title := fmt.Sprintf("Overlap characterization — NAS %s (%s protocol)", name, paperProtocol[name])
	if f, ok := paperFigure[name]; ok {
		title = fmt.Sprintf("%s — paper %s", title, f)
	}
	if hw {
		title += " [NIC hardware time-stamps]"
	}
	if overlapped {
		title += fmt.Sprintf(" [overlapped collectives: %s algo, %s progress]", cf.Algo, cf.Mode)
	}
	t := report.NewTable(title,
		"class", "procs", "min%", "max%", "xfers", "data xfer", "MPI time", "run time")
	var binTables []*report.Table
	start := time.Now()
	for _, class := range classes {
		for _, p := range procs {
			reports, r := nas.CharacterizeAllReports(name, class, p, nas.Options{
				Protocol:     paperProtocol[name],
				MaxIters:     iters,
				HWTimestamps: hw,
				Faults:       faults,
				Trace:        obs.Tracer(),
				Overlap:      overlapped,
				CollAlgo:     cf.Algo,
				CollChunk:    cf.Chunk,
				Progress:     cf.Progress(),
			})
			obs.SetRun(nil, reports)
			rep := reports[0]
			if jsonDir != "" {
				if err := saveReports(jsonDir, name, class, reports); err != nil {
					return err
				}
			}
			t.AddRow(class, p, r.MinPct, r.MaxPct, r.Transfers,
				r.DataTransferTime.Round(time.Microsecond),
				r.MPITime.Round(time.Microsecond),
				r.Duration.Round(time.Microsecond))
			if bins {
				binTables = append(binTables, binTable(name, class, p, rep))
			}
		}
	}
	t.Render(w)
	fmt.Fprintf(w, "  (%v)\n\n", time.Since(start).Round(time.Millisecond))
	for _, bt := range binTables {
		bt.Render(w)
		fmt.Fprintln(w)
	}
	return nil
}

// saveReports writes one JSON report file per rank.
func saveReports(dir, name string, class nas.Class, reports []*overlap.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, rep := range reports {
		path := filepath.Join(dir, fmt.Sprintf("%s-%s-p%d-rank%d.json",
			strings.ToLower(name), class, len(reports), rep.Rank))
		if err := rep.SaveJSON(path); err != nil {
			return err
		}
	}
	return nil
}

// binTable renders process 0's per-message-size breakdown — the
// "short versus long" detail the paper uses to attribute
// non-overlapped time to particular transfers.
func binTable(name string, class nas.Class, procs int, rep *overlap.Report) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("  %s class %s, %d procs — message-size breakdown (process 0)", name, class, procs),
		"size bin", "xfers", "data xfer", "min%", "max%", "non-overlapped")
	agg := make([]overlap.Measures, len(rep.BinBounds)+1)
	for _, reg := range rep.Regions {
		for i, b := range reg.Bins {
			agg[i].Add(b)
		}
	}
	for i, b := range agg {
		if b.Count == 0 {
			continue
		}
		t.AddRow(overlap.BinLabel(rep.BinBounds, i), b.Count,
			b.DataTransferTime.Round(time.Microsecond),
			b.MinPercent(), b.MaxPercent(),
			b.NonOverlapped().Round(time.Microsecond))
	}
	return t
}

func runMGARMCI(w io.Writer, classes []nas.Class, procs []int, iters int, faults *fabric.FaultPlan, bf *cmdutil.BackendFlag, obs *cmdutil.Obs) error {
	if err := cmdutil.CheckFaultNodes(faults, procs); err != nil {
		return err
	}
	if err := checkTraceable(obs, procs); err != nil {
		return err
	}
	t := report.NewTable("Overlap characterization — ARMCI MG, blocking vs non-blocking — paper Fig. 19",
		"class", "procs", "blk min%", "blk max%", "nb min%", "nb max%")
	start := time.Now()
	for _, class := range classes {
		for _, p := range procs {
			opt := nas.Options{MaxIters: iters, Faults: faults}
			b := nas.CharacterizeMGARMCIOpts(class, p, nas.MGBlocking, opt)
			// Only the non-blocking variant is traced: one trace file
			// holds one run, and that variant is the one whose overlap
			// the figure is about.
			opt.Trace = obs.Tracer()
			n := nas.CharacterizeMGARMCIOpts(class, p, nas.MGNonblocking, opt)
			t.AddRow(class, p, b.MinPct, b.MaxPct, n.MinPct, n.MaxPct)
		}
	}
	t.Render(w)
	fmt.Fprintf(w, "  (%v)\n\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func parseClasses(s string) ([]nas.Class, error) {
	var out []nas.Class
	for _, part := range strings.Split(s, ",") {
		part = strings.ToUpper(strings.TrimSpace(part))
		if len(part) != 1 {
			return nil, fmt.Errorf("bad class %q", part)
		}
		out = append(out, nas.Class(part[0]))
	}
	return out, nil
}
