// Nasbench regenerates the paper's NAS benchmark characterizations:
// Figs. 10-13 (BT and CG under the pipelined-RDMA library as with Open
// MPI; LU and FT under direct RDMA read as with MVAPICH2) and Fig. 19
// (the ARMCI MG variants). For each benchmark it sweeps problem
// classes and processor counts and prints process 0's min/max overlap
// percentages, as the paper reports.
//
// Usage:
//
//	nasbench [-bench all] [-classes S,W,A,B] [-procs ...] [-iters 10]
//	         [-overlap] [-coll-algo auto] [-coll-chunk 0]
//	         [-progress manual] [-progress-quantum 10us]
//	         [-trace out.json] [-metrics] [-profile out.txt]
//
// -overlap runs the overlapped-collective variants of CG, FT and MG
// (nonblocking schedules advanced by the -progress engine); the
// -coll-* flags pick the schedule algorithm and pipelining chunk.
//
// -iters truncates each benchmark's time-stepping loop; overlap
// percentages converge within a few iterations, so the default keeps
// runs quick. Pass -iters 0 for the full NPB iteration counts.
// -trace/-metrics/-profile (which need a single bench/class/procs
// selection) export the run as Chrome trace-event JSON, print its
// counters, and run the critical-path/blame profiler over it.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ovlp/internal/cmdutil"
	"ovlp/internal/fabric"
	"ovlp/internal/faultflag"
	"ovlp/internal/mpi"
	"ovlp/internal/nas"
	"ovlp/internal/overlap"
	"ovlp/internal/report"
)

// paperProtocol maps each benchmark to the library the paper pairs it
// with (Sec. 4: BT, CG with Open MPI; LU, FT, SP with MVAPICH2).
var paperProtocol = map[string]mpi.LongProtocol{
	nas.BT: mpi.PipelinedRDMA,
	nas.CG: mpi.PipelinedRDMA,
	nas.LU: mpi.DirectRDMARead,
	nas.FT: mpi.DirectRDMARead,
	nas.SP: mpi.DirectRDMARead,
	nas.MG: mpi.DirectRDMARead,
	nas.IS: mpi.DirectRDMARead,
	nas.EP: mpi.DirectRDMARead,
}

// figure numbers for the table titles.
var paperFigure = map[string]string{
	nas.BT: "Fig. 10",
	nas.CG: "Fig. 11",
	nas.LU: "Fig. 12",
	nas.FT: "Fig. 13",
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("nasbench: ")
	benchFlag := flag.String("bench", "all", "comma-separated benchmarks (BT,CG,LU,FT,SP,MG,IS,EP,MG-ARMCI) or 'all'/'paper'")
	classFlag := flag.String("classes", "S,W,A,B", "comma-separated problem classes")
	procsFlag := flag.String("procs", "", "comma-separated processor counts (default per benchmark)")
	iters := flag.Int("iters", 10, "iteration cap (0 = full NPB iteration counts)")
	bins := flag.Bool("bins", false, "also print process 0's per-message-size-bin breakdown")
	hw := flag.Bool("hw", false, "use NIC hardware time-stamps (precise mode: min == max)")
	jsonDir := flag.String("json", "", "directory to write per-rank JSON reports into (inspect with ovlpreport)")
	overlapped := flag.Bool("overlap", false, "run the overlapped-collective variants of CG, FT and MG")
	cf := cmdutil.RegisterColl(nil)
	ff := cmdutil.RegisterFaults(nil)
	obs := cmdutil.RegisterObs(nil)
	flag.Parse()
	faults, err := ff.Plan()
	if err != nil {
		log.Fatal(err)
	}
	if desc := faultflag.Describe(faults); desc != "" {
		fmt.Printf("%s\n\n", desc)
	}

	var benches []string
	switch *benchFlag {
	case "all":
		benches = append(nas.Names(), "MG-ARMCI")
	case "paper":
		benches = []string{nas.BT, nas.CG, nas.LU, nas.FT, "MG-ARMCI"}
	default:
		benches = strings.Split(*benchFlag, ",")
	}
	classes := parseClasses(*classFlag)
	if obs.Enabled() && (len(benches) != 1 || len(classes) != 1) {
		log.Fatal("-trace/-metrics need a single run: pass one -bench, one -classes and one -procs value")
	}

	for _, b := range benches {
		b = strings.ToUpper(strings.TrimSpace(b))
		if b == "MG-ARMCI" {
			runMGARMCI(classes, mustProcs(*procsFlag, []int{2, 4, 8}), *iters, faults, obs)
			continue
		}
		defProcs := []int{4, 8, 16}
		if b == nas.BT || b == nas.SP {
			defProcs = []int{4, 9, 16}
		}
		runBench(b, classes, mustProcs(*procsFlag, defProcs), *iters, *bins, *hw, *overlapped, cf, *jsonDir, faults, obs)
	}
	if obs.Enabled() {
		if err := obs.Finish(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

// mustProcs parses the -procs flag, defaulting per benchmark.
func mustProcs(s string, def []int) []int {
	procs, err := cmdutil.ParseProcs(s, def)
	if err != nil {
		log.Fatal(err)
	}
	return procs
}

// checkTraceable rejects -trace/-metrics on a processor-count sweep:
// one trace file holds one run.
func checkTraceable(obs *cmdutil.Obs, procs []int) {
	if obs.Enabled() && len(procs) != 1 {
		log.Fatal("-trace/-metrics need a single run: pass one -bench, one -classes and one -procs value")
	}
}

func runBench(name string, classes []nas.Class, procs []int, iters int, bins, hw, overlapped bool, cf *cmdutil.Coll, jsonDir string, faults *fabric.FaultPlan, obs *cmdutil.Obs) {
	checkFaultNodes(faults, procs)
	checkTraceable(obs, procs)
	title := fmt.Sprintf("Overlap characterization — NAS %s (%s protocol)", name, paperProtocol[name])
	if f, ok := paperFigure[name]; ok {
		title = fmt.Sprintf("%s — paper %s", title, f)
	}
	if hw {
		title += " [NIC hardware time-stamps]"
	}
	if overlapped {
		title += fmt.Sprintf(" [overlapped collectives: %s algo, %s progress]", cf.Algo, cf.Mode)
	}
	t := report.NewTable(title,
		"class", "procs", "min%", "max%", "xfers", "data xfer", "MPI time", "run time")
	var binTables []*report.Table
	start := time.Now()
	for _, class := range classes {
		for _, p := range procs {
			reports, r := nas.CharacterizeAllReports(name, class, p, nas.Options{
				Protocol:     paperProtocol[name],
				MaxIters:     iters,
				HWTimestamps: hw,
				Faults:       faults,
				Trace:        obs.Tracer(),
				Overlap:      overlapped,
				CollAlgo:     cf.Algo,
				CollChunk:    cf.Chunk,
				Progress:     cf.Progress(),
			})
			obs.SetRun(nil, reports)
			rep := reports[0]
			if jsonDir != "" {
				saveReports(jsonDir, name, class, reports)
			}
			t.AddRow(class, p, r.MinPct, r.MaxPct, r.Transfers,
				r.DataTransferTime.Round(time.Microsecond),
				r.MPITime.Round(time.Microsecond),
				r.Duration.Round(time.Microsecond))
			if bins {
				binTables = append(binTables, binTable(name, class, p, rep))
			}
		}
	}
	t.Render(os.Stdout)
	fmt.Printf("  (%v)\n\n", time.Since(start).Round(time.Millisecond))
	for _, bt := range binTables {
		bt.Render(os.Stdout)
		fmt.Println()
	}
}

// saveReports writes one JSON report file per rank.
func saveReports(dir, name string, class nas.Class, reports []*overlap.Report) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, rep := range reports {
		path := filepath.Join(dir, fmt.Sprintf("%s-%s-p%d-rank%d.json",
			strings.ToLower(name), class, len(reports), rep.Rank))
		if err := rep.SaveJSON(path); err != nil {
			log.Fatal(err)
		}
	}
}

// binTable renders process 0's per-message-size breakdown — the
// "short versus long" detail the paper uses to attribute
// non-overlapped time to particular transfers.
func binTable(name string, class nas.Class, procs int, rep *overlap.Report) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("  %s class %s, %d procs — message-size breakdown (process 0)", name, class, procs),
		"size bin", "xfers", "data xfer", "min%", "max%", "non-overlapped")
	agg := make([]overlap.Measures, len(rep.BinBounds)+1)
	for _, reg := range rep.Regions {
		for i, b := range reg.Bins {
			agg[i].Add(b)
		}
	}
	for i, b := range agg {
		if b.Count == 0 {
			continue
		}
		t.AddRow(overlap.BinLabel(rep.BinBounds, i), b.Count,
			b.DataTransferTime.Round(time.Microsecond),
			b.MinPercent(), b.MaxPercent(),
			b.NonOverlapped().Round(time.Microsecond))
	}
	return t
}

// checkFaultNodes rejects a plan naming nodes beyond the smallest
// processor count in the sweep, before any simulation starts.
func checkFaultNodes(faults *fabric.FaultPlan, procs []int) {
	if err := cmdutil.CheckFaultNodes(faults, procs); err != nil {
		log.Fatal(err)
	}
}

func runMGARMCI(classes []nas.Class, procs []int, iters int, faults *fabric.FaultPlan, obs *cmdutil.Obs) {
	checkFaultNodes(faults, procs)
	checkTraceable(obs, procs)
	t := report.NewTable("Overlap characterization — ARMCI MG, blocking vs non-blocking — paper Fig. 19",
		"class", "procs", "blk min%", "blk max%", "nb min%", "nb max%")
	start := time.Now()
	for _, class := range classes {
		for _, p := range procs {
			opt := nas.Options{MaxIters: iters, Faults: faults}
			b := nas.CharacterizeMGARMCIOpts(class, p, nas.MGBlocking, opt)
			// Only the non-blocking variant is traced: one trace file
			// holds one run, and that variant is the one whose overlap
			// the figure is about.
			opt.Trace = obs.Tracer()
			n := nas.CharacterizeMGARMCIOpts(class, p, nas.MGNonblocking, opt)
			t.AddRow(class, p, b.MinPct, b.MaxPct, n.MinPct, n.MaxPct)
		}
	}
	t.Render(os.Stdout)
	fmt.Printf("  (%v)\n\n", time.Since(start).Round(time.Millisecond))
}

func parseClasses(s string) []nas.Class {
	var out []nas.Class
	for _, part := range strings.Split(s, ",") {
		part = strings.ToUpper(strings.TrimSpace(part))
		if len(part) != 1 {
			log.Fatalf("bad class %q", part)
		}
		out = append(out, nas.Class(part[0]))
	}
	return out
}
