package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestBadFlagsExitTwo: sweep and fault validation failures exit 2
// before any simulation starts.
func TestBadFlagsExitTwo(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // stderr substring
	}{
		{"bad-flag", []string{"-nope"}, "-nope"},
		{"malformed-procs", []string{"-procs", "4,x"}, "bad processor count"},
		{"bad-class", []string{"-classes", "SS"}, "bad class"},
		{"scenario-and-legacy", []string{"-scenario", "x.yaml", "-drop", "0.1"}, "mutually exclusive"},
		{"trace-needs-single", []string{"-trace", "out.json"}, "single run"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, _, stderr := runCmd(t, c.args...)
			if code != 2 {
				t.Fatalf("exit = %d, want 2 (stderr: %s)", code, stderr)
			}
			if !strings.Contains(stderr, c.want) {
				t.Fatalf("stderr = %q, want substring %q", stderr, c.want)
			}
		})
	}
}

func TestVersionFlag(t *testing.T) {
	code, stdout, _ := runCmd(t, "-version")
	if code != 0 {
		t.Fatalf("-version exit = %d, want 0", code)
	}
	if !strings.HasPrefix(stdout, "ovlp ") {
		t.Fatalf("-version output = %q", stdout)
	}
}

// TestQuickBenchRuns: a minimal single-benchmark sweep exits 0 and
// prints its characterization table.
func TestQuickBenchRuns(t *testing.T) {
	code, stdout, stderr := runCmd(t, "-bench", "EP", "-classes", "S", "-procs", "2", "-iters", "1")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "NAS EP") {
		t.Fatalf("no characterization table in output:\n%s", stdout)
	}
}
