// Overhead regenerates the paper's instrumentation-overhead experiment
// (Sec. 4.5, Fig. 20): each NAS benchmark runs once uninstrumented and
// once with the instrumentation's modelled CPU costs charged to the
// ranks, and the run-time difference is reported. The paper measures
// under 0.9% for all test cases.
//
// Usage:
//
//	overhead [-benches BT,CG,LU,FT,SP,MG] [-class A] [-procs 4] [-iters 10]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"ovlp/internal/cmdutil"
	"ovlp/internal/mpi"
	"ovlp/internal/nas"
	"ovlp/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("overhead: ")
	benchFlag := flag.String("benches", "BT,CG,LU,FT,SP,MG", "comma-separated benchmarks")
	classFlag := flag.String("class", "A", "problem class")
	procs := flag.Int("procs", 4, "processor count")
	iters := flag.Int("iters", 10, "iteration cap (0 = full)")
	bf := cmdutil.RegisterBackend(nil)
	flag.Parse()

	class := nas.Class(strings.ToUpper(*classFlag)[0])
	t := report.NewTable(
		fmt.Sprintf("Instrumentation overhead — class %s, %d procs (paper Fig. 20: <0.9%%)", class, *procs),
		"benchmark", "plain", "instrumented", "overhead%")
	for _, b := range strings.Split(*benchFlag, ",") {
		b = strings.ToUpper(strings.TrimSpace(b))
		proto := mpi.DirectRDMARead
		if b == nas.BT || b == nas.CG {
			proto = mpi.PipelinedRDMA
		}
		r := nas.MeasureOverheadOpts(b, class, *procs, *iters, nas.Options{Protocol: proto, Backend: bf.Backend()})
		t.AddRow(b, r.Plain.Round(time.Microsecond),
			r.Instrumented.Round(time.Microsecond),
			fmt.Sprintf("%.3f", r.OverheadPct))
	}
	t.Render(os.Stdout)
}
