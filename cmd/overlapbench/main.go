// Overlapbench regenerates the paper's microbenchmark figures
// (Figs. 3-9): two processes exchanging messages under each
// point-to-point call combination and long-message protocol, with
// increasing computation inserted on the non-blocking side(s). For
// each computation length it prints the average MPI_Wait time and the
// min/max overlap percentages from the instrumentation.
//
// Usage:
//
//	overlapbench [-fig 0] [-reps 1000] [-backend virtual|real]
//	            [-fault-seed N -drop P -stall ...]
//	            [-coll-algo auto] [-progress manual]
//	            [-trace out.json] [-metrics] [-profile out.txt] [-diagnose -]
//
// -fig 0 (the default) runs every figure. -backend real executes the
// exchanges as concurrent goroutines with the fabric sleeping actual
// wire time, so the printed bounds are wall-clock measurements (use
// small -reps; fault injection is virtual-only). The fault flags (see
// internal/faultflag) rerun the figures on a deterministically lossy
// network: the library retransmits behind the instrumentation's back,
// and the printed wait times and bounds show what the repair traffic
// costs. With -trace (which needs a single -fig), the figure's final
// computation point is rerun once more under the tracer and exported
// as Chrome trace-event JSON; -metrics prints the run's counters,
// -profile runs the critical-path/blame profiler over it (see
// internal/profile; "-profile -" prints the text report), and
// -diagnose runs the diagnosis engine and prints its ranked findings.
//
// -version prints the build identity and exits. Bad flags or invalid
// fault configuration exit 2 before any simulation starts; a failed
// traced run exits 1.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/cmdutil"
	"ovlp/internal/fabric"
	"ovlp/internal/faultflag"
	"ovlp/internal/micro"
	"ovlp/internal/report"
)

var figureNotes = map[int]string{
	3: "eager protocol, 10 KiB: short messages exhibit full overlap ability",
	4: "pipelined RDMA overlaps only the first fragment: flat sender curves",
	5: "direct RDMA read: sender overlap grows with computation, wait time drops",
	6: "pipelined, Send-Irecv: receiver overlaps only the first fragment",
	7: "direct, Send-Irecv: polling misses the request - zero receiver overlap",
	8: "pipelined, Isend-Irecv: first fragment only on both sides",
	9: "direct, Isend-Irecv: complete overlap possible for the sender",
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected: exit status 0 on
// success, 1 on a run failure, 2 on bad flags or fault configuration
// that fails validation.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("overlapbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fig := fs.Int("fig", 0, "paper figure to regenerate (3-9; 0 = all)")
	reps := fs.Int("reps", 1000, "transfers per computation point (paper uses 1000)")
	cf := cmdutil.RegisterColl(fs)
	ff := cmdutil.RegisterFaults(fs)
	obs := cmdutil.RegisterObs(fs)
	bf := cmdutil.RegisterBackend(fs)
	ver := cmdutil.RegisterVersion(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *ver {
		fmt.Fprintln(stdout, cmdutil.Version())
		return 0
	}
	fail2 := func(err error) int {
		fmt.Fprintf(stderr, "overlapbench: %v\n", err)
		return 2
	}
	faults, err := ff.Plan()
	if err != nil {
		return fail2(err)
	}
	if err := cmdutil.CheckFaultNodes(faults, []int{2}); err != nil {
		return fail2(err) // microbenchmarks always run 2 processes
	}
	if bf.Real() && faults != nil {
		return fail2(fmt.Errorf("fault injection needs -backend virtual"))
	}
	if desc := faultflag.Describe(faults); desc != "" {
		fmt.Fprintf(stdout, "%s\n\n", desc)
	}

	figs := []int{3, 4, 5, 6, 7, 8, 9}
	if *fig != 0 {
		if *fig < 3 || *fig > 9 {
			return fail2(fmt.Errorf("no paper figure %d (want 3-9)", *fig))
		}
		figs = []int{*fig}
	}
	if obs.Enabled() && *fig == 0 {
		return fail2(fmt.Errorf("-trace/-metrics need a single figure: pass -fig 3..9"))
	}
	for _, f := range figs {
		runFigure(stdout, f, *reps, faults, cf, bf)
	}
	if obs.Enabled() {
		if err := runTraced(stdout, *fig, *reps, faults, cf, bf, obs); err != nil {
			fmt.Fprintf(stderr, "overlapbench: %v\n", err)
			return 1
		}
	}
	return 0
}

// runTraced reruns the selected figure's final computation point once
// more with the tracer attached, so the exported timeline shows one
// fully-overlapping exchange pattern rather than the whole sweep.
func runTraced(w io.Writer, fig, reps int, faults *fabric.FaultPlan, cf *cmdutil.Coll, bf *cmdutil.BackendFlag, obs *cmdutil.Obs) error {
	e := micro.PaperFigure(fig, reps)
	e.Config.Faults = faults
	e.Config.Trace = obs.Tracer()
	bf.Apply(&e.Config)
	cf.Apply(&e.Config.MPI)
	e.Observe = func(res cluster.Result) { obs.SetRun(res.Calib, res.Reports) }
	e.ComputePoints = e.ComputePoints[len(e.ComputePoints)-1:]
	e.Run()
	fmt.Fprintf(w, "traced figure %d at compute %v, %d reps\n", fig, e.ComputePoints[0], e.Reps)
	return obs.Finish(w)
}

func runFigure(w io.Writer, fig, reps int, faults *fabric.FaultPlan, cf *cmdutil.Coll, bf *cmdutil.BackendFlag) {
	e := micro.PaperFigure(fig, reps)
	e.Config.Faults = faults
	bf.Apply(&e.Config)
	cf.Apply(&e.Config.MPI)
	start := time.Now()
	points := e.Run()

	title := fmt.Sprintf("Figure %d: %v, %v, %s x %d reps — %s",
		fig, e.Pair, e.Protocol, sizeLabel(e.MsgSize), e.Reps, figureNotes[fig])
	t := report.NewTable(title,
		"compute", "sender wait", "recv wait",
		"s.min%", "s.max%", "r.min%", "r.max%")
	for _, p := range points {
		t.AddRow(p.Compute, p.SenderWait, p.ReceiverWait,
			p.SenderMin, p.SenderMax, p.ReceiverMin, p.ReceiverMax)
	}
	t.Render(w)
	fmt.Fprintf(w, "  (%d points, %v)\n\n", len(points), time.Since(start).Round(time.Millisecond))
}

func sizeLabel(n int) string {
	if n >= 1<<20 && n%(1<<20) == 0 {
		return fmt.Sprintf("%d MiB", n>>20)
	}
	if n >= 1<<10 {
		return fmt.Sprintf("%d KiB", n>>10)
	}
	return fmt.Sprintf("%d B", n)
}
