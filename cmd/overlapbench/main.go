// Overlapbench regenerates the paper's microbenchmark figures
// (Figs. 3-9): two processes exchanging messages under each
// point-to-point call combination and long-message protocol, with
// increasing computation inserted on the non-blocking side(s). For
// each computation length it prints the average MPI_Wait time and the
// min/max overlap percentages from the instrumentation.
//
// Usage:
//
//	overlapbench [-fig 0] [-reps 1000] [-fault-seed N -drop P -stall ...]
//	            [-coll-algo auto] [-progress manual]
//	            [-trace out.json] [-metrics] [-profile out.txt]
//
// -fig 0 (the default) runs every figure. The fault flags (see
// internal/faultflag) rerun the figures on a deterministically lossy
// network: the library retransmits behind the instrumentation's back,
// and the printed wait times and bounds show what the repair traffic
// costs. With -trace (which needs a single -fig), the figure's final
// computation point is rerun once more under the tracer and exported
// as Chrome trace-event JSON; -metrics prints the run's counters, and
// -profile runs the critical-path/blame profiler over it (see
// internal/profile; "-profile -" prints the text report).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/cmdutil"
	"ovlp/internal/fabric"
	"ovlp/internal/faultflag"
	"ovlp/internal/micro"
	"ovlp/internal/report"
)

var figureNotes = map[int]string{
	3: "eager protocol, 10 KiB: short messages exhibit full overlap ability",
	4: "pipelined RDMA overlaps only the first fragment: flat sender curves",
	5: "direct RDMA read: sender overlap grows with computation, wait time drops",
	6: "pipelined, Send-Irecv: receiver overlaps only the first fragment",
	7: "direct, Send-Irecv: polling misses the request - zero receiver overlap",
	8: "pipelined, Isend-Irecv: first fragment only on both sides",
	9: "direct, Isend-Irecv: complete overlap possible for the sender",
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("overlapbench: ")
	fig := flag.Int("fig", 0, "paper figure to regenerate (3-9; 0 = all)")
	reps := flag.Int("reps", 1000, "transfers per computation point (paper uses 1000)")
	cf := cmdutil.RegisterColl(nil)
	ff := cmdutil.RegisterFaults(nil)
	obs := cmdutil.RegisterObs(nil)
	flag.Parse()
	faults, err := ff.Plan()
	if err != nil {
		log.Fatal(err)
	}
	if err := cmdutil.CheckFaultNodes(faults, []int{2}); err != nil {
		log.Fatal(err) // microbenchmarks always run 2 processes
	}
	if desc := faultflag.Describe(faults); desc != "" {
		fmt.Printf("%s\n\n", desc)
	}

	figs := []int{3, 4, 5, 6, 7, 8, 9}
	if *fig != 0 {
		if *fig < 3 || *fig > 9 {
			log.Fatalf("no paper figure %d (want 3-9)", *fig)
		}
		figs = []int{*fig}
	}
	if obs.Enabled() && *fig == 0 {
		log.Fatal("-trace/-metrics need a single figure: pass -fig 3..9")
	}
	for _, f := range figs {
		runFigure(f, *reps, faults, cf)
	}
	if obs.Enabled() {
		runTraced(*fig, *reps, faults, cf, obs)
	}
}

// runTraced reruns the selected figure's final computation point once
// more with the tracer attached, so the exported timeline shows one
// fully-overlapping exchange pattern rather than the whole sweep.
func runTraced(fig, reps int, faults *fabric.FaultPlan, cf *cmdutil.Coll, obs *cmdutil.Obs) {
	e := micro.PaperFigure(fig, reps)
	e.Config.Faults = faults
	e.Config.Trace = obs.Tracer()
	cf.Apply(&e.Config.MPI)
	e.Observe = func(res cluster.Result) { obs.SetRun(res.Calib, res.Reports) }
	e.ComputePoints = e.ComputePoints[len(e.ComputePoints)-1:]
	e.Run()
	fmt.Printf("traced figure %d at compute %v, %d reps\n", fig, e.ComputePoints[0], e.Reps)
	if err := obs.Finish(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func runFigure(fig, reps int, faults *fabric.FaultPlan, cf *cmdutil.Coll) {
	e := micro.PaperFigure(fig, reps)
	e.Config.Faults = faults
	cf.Apply(&e.Config.MPI)
	start := time.Now()
	points := e.Run()

	title := fmt.Sprintf("Figure %d: %v, %v, %s x %d reps — %s",
		fig, e.Pair, e.Protocol, sizeLabel(e.MsgSize), e.Reps, figureNotes[fig])
	t := report.NewTable(title,
		"compute", "sender wait", "recv wait",
		"s.min%", "s.max%", "r.min%", "r.max%")
	for _, p := range points {
		t.AddRow(p.Compute, p.SenderWait, p.ReceiverWait,
			p.SenderMin, p.SenderMax, p.ReceiverMin, p.ReceiverMax)
	}
	t.Render(os.Stdout)
	fmt.Printf("  (%d points, %v)\n\n", len(points), time.Since(start).Round(time.Millisecond))
}

func sizeLabel(n int) string {
	if n >= 1<<20 && n%(1<<20) == 0 {
		return fmt.Sprintf("%d MiB", n>>20)
	}
	if n >= 1<<10 {
		return fmt.Sprintf("%d KiB", n>>10)
	}
	return fmt.Sprintf("%d B", n)
}
