package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestBadFlagsExitTwo: validation failures exit 2 with a message on
// stderr, before any simulation starts.
func TestBadFlagsExitTwo(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // stderr substring
	}{
		{"bad-flag", []string{"-nope"}, "-nope"},
		{"bad-figure", []string{"-fig", "12"}, "no paper figure 12"},
		{"scenario-and-legacy", []string{"-scenario", "x.yaml", "-drop", "0.1"}, "mutually exclusive"},
		{"fault-node-range", []string{"-stall", "5@1ms+2ms"}, "names node 5"},
		{"trace-needs-fig", []string{"-trace", "out.json"}, "single figure"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, _, stderr := runCmd(t, c.args...)
			if code != 2 {
				t.Fatalf("exit = %d, want 2 (stderr: %s)", code, stderr)
			}
			if !strings.Contains(stderr, c.want) {
				t.Fatalf("stderr = %q, want substring %q", stderr, c.want)
			}
		})
	}
}

func TestVersionFlag(t *testing.T) {
	code, stdout, _ := runCmd(t, "-version")
	if code != 0 {
		t.Fatalf("-version exit = %d, want 0", code)
	}
	if !strings.HasPrefix(stdout, "ovlp ") {
		t.Fatalf("-version output = %q", stdout)
	}
}

// TestSingleFigureWithDiagnose: a quick single-figure run succeeds and
// -diagnose prints the findings block for the traced point.
func TestSingleFigureWithDiagnose(t *testing.T) {
	code, stdout, stderr := runCmd(t, "-fig", "3", "-reps", "5", "-diagnose", "-")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "findings") {
		t.Fatalf("no findings block in output:\n%s", stdout)
	}
}
