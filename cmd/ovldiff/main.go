// Ovldiff is the run-to-run differential profiler: it takes two
// exported Chrome trace files of the same workload (different seed,
// config, or commit), replays each through the blame profiler and the
// time-resolved analyzer, aligns them site-by-site and window-by-
// window, and attributes the bound-gap delta per blame cause — then
// explains the movement with structured findings ("regression
// explained: +38% bound gap from fault-retransmit at exchange/Isend").
// See internal/diagnose (diff.go).
//
// Usage:
//
//	ovldiff [-calib table.txt] [-window 100us] [-csv|-json] a.json b.json
//
// a.json is the baseline, b.json the candidate; deltas are B − A.
// Per-cause deltas always sum exactly to the total max−min bound-gap
// delta (the profiler conserves blame, the diff inherits it), and
// diffing a trace against itself reports zero deltas and zero
// findings. Transfer times are priced from a calibration table: pass
// the runs' own with -calib or omit it to calibrate the default cost
// model. -csv emits one machine-parseable section,key,a,b,delta table;
// -json the full schema-versioned document; default is text.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ovlp/internal/calib"
	"ovlp/internal/cluster"
	"ovlp/internal/diagnose"
	"ovlp/internal/fabric"
	"ovlp/internal/profile"
	"ovlp/internal/timeres"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ovldiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	calibPath := fs.String("calib", "", "calibration table file (default: calibrate on the default cost model)")
	window := fs.Duration("window", timeres.DefaultWindow, "rolling-window length for window alignment")
	csvOut := fs.Bool("csv", false, "emit the delta table as CSV")
	jsonOut := fs.Bool("json", false, "emit the full diff document as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "ovldiff: %v\n", err)
		return 1
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: ovldiff [flags] a.json b.json (baseline first)")
		return 2
	}
	if *csvOut && *jsonOut {
		fmt.Fprintln(stderr, "ovldiff: pass at most one of -csv, -json")
		return 2
	}

	var table *calib.Table
	if *calibPath == "" {
		table = cluster.Calibrate(fabric.CostModel{}, nil, 0)
	} else {
		t, err := calib.Load(*calibPath)
		if err != nil {
			return fail(fmt.Errorf("reading calibration table: %w", err))
		}
		table = t
	}

	sides := [2]diagnose.Run{}
	for i, path := range []string{fs.Arg(0), fs.Arg(1)} {
		r, err := loadRun(path, table, *window)
		if err != nil {
			return fail(err)
		}
		sides[i] = r
	}

	d, err := diagnose.Diff(sides[0], sides[1])
	if err != nil {
		return fail(err)
	}
	switch {
	case *csvOut:
		err = diagnose.WriteDiffCSV(stdout, d)
	case *jsonOut:
		err = diagnose.WriteDiffJSON(stdout, d)
	default:
		err = diagnose.WriteDiffText(stdout, d)
	}
	if err != nil {
		return fail(err)
	}
	return 0
}

// loadRun replays one trace file into the diff's per-side artifacts:
// the blame profile and the windowed efficiency snapshot.
func loadRun(path string, table *calib.Table, window time.Duration) (diagnose.Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return diagnose.Run{}, err
	}
	defer f.Close()
	in, err := profile.FromChromeJSON(f, table)
	if err != nil {
		return diagnose.Run{}, fmt.Errorf("%s: %w", path, err)
	}
	if err := in.CheckNonEmpty(); err != nil {
		return diagnose.Run{}, fmt.Errorf("%s: %w", path, err)
	}
	p, err := profile.Analyze(in)
	if err != nil {
		return diagnose.Run{}, fmt.Errorf("%s: %w", path, err)
	}
	s, err := timeres.FromInput(in, timeres.Options{Window: window})
	if err != nil {
		return diagnose.Run{}, fmt.Errorf("%s: %w", path, err)
	}
	return diagnose.Run{Label: path, Profile: p, TimeRes: s}, nil
}
