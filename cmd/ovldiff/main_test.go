package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/fabric"
	"ovlp/internal/mpi"
	"ovlp/internal/trace"
)

// tracedRun exports one small exchange run to a Chrome trace file,
// optionally under fault injection so the two sides of a diff differ
// by a known cause.
func tracedRun(t *testing.T, faults *fabric.FaultPlan) string {
	t.Helper()
	tr := trace.New(trace.Options{})
	cfg := cluster.Config{
		Procs:  2,
		MPI:    mpi.Config{Instrument: &mpi.InstrumentConfig{}},
		Trace:  tr,
		Faults: faults,
	}
	cluster.Run(cfg, func(r *mpi.Rank) {
		peer := 1 - r.ID()
		for i := 0; i < 4; i++ {
			var q *mpi.Request
			if r.ID() == 0 {
				q = r.Isend(peer, i, 64<<10)
			} else {
				q = r.Irecv(peer, i)
			}
			r.Compute(100 * time.Microsecond)
			r.Wait(q)
		}
	})
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChrome(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSelfDiffIsZero(t *testing.T) {
	path := tracedRun(t, nil)
	var out, errb bytes.Buffer
	if code := run([]string{"-json", path, path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	var doc struct {
		WallDelta int64             `json:"wall_delta_ns"`
		GapDelta  int64             `json:"gap_delta_ns"`
		Causes    []json.RawMessage `json:"causes"`
		Sites     []json.RawMessage `json:"sites"`
		Windows   []json.RawMessage `json:"windows"`
		Findings  []json.RawMessage `json:"findings"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if doc.WallDelta != 0 || doc.GapDelta != 0 {
		t.Errorf("self-diff deltas: wall %d gap %d", doc.WallDelta, doc.GapDelta)
	}
	if len(doc.Causes)+len(doc.Sites)+len(doc.Windows)+len(doc.Findings) != 0 {
		t.Errorf("self-diff not empty: causes=%d sites=%d windows=%d findings=%d",
			len(doc.Causes), len(doc.Sites), len(doc.Windows), len(doc.Findings))
	}
}

func TestFaultedDiffConserves(t *testing.T) {
	clean := tracedRun(t, nil)
	faulted := tracedRun(t, &fabric.FaultPlan{Seed: 7, Default: fabric.LinkFaults{DropRate: 0.3}})
	var out, errb bytes.Buffer
	if code := run([]string{"-csv", clean, faulted}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	// Parse the CSV: cause deltas and site deltas must each sum to the
	// total gap delta — conservation end to end through real traces.
	var gapDelta, causeSum, siteSum int64
	sawRetrans := false
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n")[1:] {
		f := strings.Split(line, ",")
		d, err := strconv.ParseInt(f[len(f)-1], 10, 64)
		if err != nil {
			continue // window rows carry float deltas
		}
		switch {
		case f[0] == "total" && f[1] == "gap_ns":
			gapDelta = d
		case f[0] == "cause":
			causeSum += d
			if f[1] == "fault-retransmit" && d > 0 {
				sawRetrans = true
			}
		case f[0] == "site":
			siteSum += d
		}
	}
	if gapDelta == 0 {
		t.Fatalf("fault injection moved nothing:\n%s", out.String())
	}
	if causeSum != gapDelta {
		t.Errorf("cause deltas sum %d != gap delta %d", causeSum, gapDelta)
	}
	if siteSum != gapDelta {
		t.Errorf("site deltas sum %d != gap delta %d", siteSum, gapDelta)
	}
	if !sawRetrans {
		t.Errorf("drop-faulted diff shows no positive fault-retransmit delta:\n%s", out.String())
	}
}

func TestTextOutputAndDeterminism(t *testing.T) {
	clean := tracedRun(t, nil)
	faulted := tracedRun(t, &fabric.FaultPlan{Seed: 7, Default: fabric.LinkFaults{DropRate: 0.3}})
	render := func() string {
		var out, errb bytes.Buffer
		if code := run([]string{clean, faulted}, &out, &errb); code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, errb.String())
		}
		return out.String()
	}
	a, b := render(), render()
	if a != b {
		t.Error("text diff not deterministic across reruns")
	}
	for _, want := range []string{"diff:", "wall:", "gap:"} {
		if !strings.Contains(a, want) {
			t.Errorf("text output missing %q:\n%s", want, a)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"only-one.json"}, &out, &errb); code != 2 {
		t.Errorf("one arg exited %d, want 2", code)
	}
	if code := run([]string{"-csv", "-json", "a.json", "b.json"}, &out, &errb); code != 2 {
		t.Errorf("-csv -json exited %d, want 2", code)
	}
	if code := run([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Errorf("bad flag exited %d, want 2", code)
	}
	if code := run([]string{"/nonexistent/a.json", "/nonexistent/b.json"}, &out, &errb); code != 1 {
		t.Errorf("missing file exited %d, want 1", code)
	}
}
