// Ovlpreport inspects and merges the per-process JSON report files the
// instrumentation writes (one per rank, as in the paper's per-process
// output files): it prints each rank's summary and the whole-job
// aggregate, with optional per-region detail.
//
// Usage:
//
//	ovlpreport [-regions] rank0.json rank1.json ...
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"ovlp/internal/overlap"
	"ovlp/internal/report"
	"ovlp/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ovlpreport: ")
	regions := flag.Bool("regions", false, "print per-region detail for the aggregate")
	flag.Parse()
	if flag.NArg() == 0 {
		log.Fatal("usage: ovlpreport [-regions] report.json ...")
	}

	var reps []*overlap.Report
	for _, path := range flag.Args() {
		rep, err := overlap.LoadJSON(path)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		reps = append(reps, rep)
	}

	t := report.NewTable("Per-rank overlap summary",
		"rank", "run time", "compute", "comm calls", "data xfer", "min%", "max%")
	var mins, maxs []float64
	for _, rep := range reps {
		tot := rep.Total()
		mins = append(mins, tot.MinPercent())
		maxs = append(maxs, tot.MaxPercent())
		t.AddRow(rep.Rank, rep.Duration.Round(time.Microsecond),
			rep.UserComputeTime().Round(time.Microsecond),
			rep.CommCallTime().Round(time.Microsecond),
			tot.DataTransferTime.Round(time.Microsecond),
			tot.MinPercent(), tot.MaxPercent())
	}
	t.Render(os.Stdout)

	agg := overlap.Aggregate(reps)
	tot := agg.Total()
	fmt.Printf("\naggregate: %d transfers, data %v, overlap min %.1f%% max %.1f%%\n",
		tot.Count, tot.DataTransferTime.Round(time.Microsecond),
		tot.MinPercent(), tot.MaxPercent())
	fmt.Printf("across ranks: min%% mean %.1f (spread %.1f..%.1f), max%% mean %.1f (spread %.1f..%.1f)\n",
		stats.Mean(mins), stats.Min(mins), stats.Max(mins),
		stats.Mean(maxs), stats.Min(maxs), stats.Max(maxs))

	if *regions {
		rt := report.NewTable("\nAggregate per-region detail",
			"region", "xfers", "data xfer", "min%", "max%", "non-overlapped")
		for _, reg := range agg.Regions {
			if reg.Total.Count == 0 {
				continue
			}
			name := reg.Name
			if name == "" {
				name = "(root)"
			}
			rt.AddRow(name, reg.Total.Count,
				reg.Total.DataTransferTime.Round(time.Microsecond),
				reg.Total.MinPercent(), reg.Total.MaxPercent(),
				reg.Total.NonOverlapped().Round(time.Microsecond))
		}
		rt.Render(os.Stdout)
	}
}
