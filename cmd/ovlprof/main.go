// Ovlprof analyzes an exported Chrome trace-event file offline: it
// replays the overlap instrumentation's event stream, attributes every
// non-overlapped microsecond of each call site to a blame category
// (late initiation, early wait, protocol choice, progress starvation,
// fault retransmits), and extracts the run's critical path through the
// cross-rank happens-before graph. See internal/profile.
//
// Usage:
//
//	ovlprof [-calib table.txt] [-top 10] [-csv|-folded|-json] trace.json
//
// The trace file must come from this repo's exporter (cluster runs
// with -trace, or cmd/tracecat merges). Transfer times are interpolated
// from a calibration table: pass the run's own table with -calib
// (cluster.Calibrate + calib.Table.Save), or omit it to calibrate one
// on the default cost model — exact for every run that used the
// default model, which all shipped drivers do.
//
// -csv emits one row per call site with the full blame breakdown;
// -folded emits folded-stack lines for flamegraph.pl (blame stacks and
// critical-path stacks); -json the full profile document. The default
// is a human-readable text report; -top caps its call-site table.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"ovlp/internal/calib"
	"ovlp/internal/cluster"
	"ovlp/internal/fabric"
	"ovlp/internal/profile"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ovlprof: ")
	calibPath := flag.String("calib", "", "calibration table file (default: calibrate on the default cost model)")
	top := flag.Int("top", 10, "call sites to list in the text report (0 = all)")
	csvOut := flag.Bool("csv", false, "emit per-site CSV instead of the text report")
	folded := flag.Bool("folded", false, "emit folded-stack lines (flamegraph.pl input)")
	jsonOut := flag.Bool("json", false, "emit the full profile as JSON")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: ovlprof [flags] trace.json (\"-\" for stdin)")
	}
	if n := count(*csvOut, *folded, *jsonOut); n > 1 {
		log.Fatal("pass at most one of -csv, -folded, -json")
	}

	table, err := loadTable(*calibPath)
	if err != nil {
		log.Fatal(err)
	}
	in, err := readInput(flag.Arg(0), table)
	if err != nil {
		log.Fatal(err)
	}
	p, err := profile.Analyze(in)
	if err != nil {
		log.Fatal(err)
	}

	switch {
	case *csvOut:
		err = p.WriteCSV(os.Stdout)
	case *folded:
		err = p.WriteFolded(os.Stdout)
	case *jsonOut:
		err = p.EncodeJSON(os.Stdout)
	default:
		err = p.WriteText(os.Stdout, *top)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func count(bs ...bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

func loadTable(path string) (*calib.Table, error) {
	if path == "" {
		return cluster.Calibrate(fabric.CostModel{}, nil, 0), nil
	}
	t, err := calib.Load(path)
	if err != nil {
		return nil, fmt.Errorf("reading calibration table: %w", err)
	}
	return t, nil
}

func readInput(path string, table *calib.Table) (profile.Input, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return profile.Input{}, err
		}
		defer f.Close()
		r = f
	}
	in, err := profile.FromChromeJSON(r, table)
	if err != nil {
		return profile.Input{}, fmt.Errorf("%s: %w", path, err)
	}
	return in, nil
}
