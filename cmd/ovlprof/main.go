// Ovlprof analyzes an exported Chrome trace-event file offline: it
// replays the overlap instrumentation's event stream, attributes every
// non-overlapped microsecond of each call site to a blame category
// (late initiation, early wait, protocol choice, progress starvation,
// fault retransmits), and extracts the run's critical path through the
// cross-rank happens-before graph. See internal/profile.
//
// Usage:
//
//	ovlprof [-calib table.txt] [-top 10] [-csv|-folded|-json] trace.json
//	ovlprof -timeresolved [-window 100us] [-csv|-json] trace.json
//	ovlprof -diagnose [-window 100us] [-json] trace.json
//
// The trace file must come from this repo's exporter (cluster runs
// with -trace, or cmd/tracecat merges). Transfer times are interpolated
// from a calibration table: pass the run's own table with -calib
// (cluster.Calibrate + calib.Table.Save), or omit it to calibrate one
// on the default cost model — exact for every run that used the
// default model, which all shipped drivers do.
//
// -csv emits one row per call site with the full blame breakdown;
// -folded emits folded-stack lines for flamegraph.pl (blame stacks and
// critical-path stacks); -json the full profile document. The default
// is a human-readable text report; -top caps its call-site table.
//
// -timeresolved switches to the windowed efficiency view (see
// internal/timeres): rolling-window and per-phase parallel/load-
// balance/communication/transfer/serialization efficiencies with
// per-window overlap bounds; -csv and -json select the deterministic
// machine formats, the default is text tables. An empty or span-free
// trace exits non-zero with a named error instead of emitting an
// empty report.
//
// -diagnose runs the automated diagnosis engine (internal/diagnose)
// over the profile and the windowed efficiencies and prints the ranked
// findings — straggler ranks, retransmit storms, progress starvation,
// phase collapse, serialization hotspots, idle tails — instead of the
// raw tables.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ovlp/internal/calib"
	"ovlp/internal/cluster"
	"ovlp/internal/diagnose"
	"ovlp/internal/fabric"
	"ovlp/internal/profile"
	"ovlp/internal/timeres"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ovlprof", flag.ContinueOnError)
	fs.SetOutput(stderr)
	calibPath := fs.String("calib", "", "calibration table file (default: calibrate on the default cost model)")
	top := fs.Int("top", 10, "call sites to list in the text report (0 = all)")
	csvOut := fs.Bool("csv", false, "emit CSV instead of the text report")
	folded := fs.Bool("folded", false, "emit folded-stack lines (flamegraph.pl input)")
	jsonOut := fs.Bool("json", false, "emit the full document as JSON")
	timeResolved := fs.Bool("timeresolved", false, "emit time-resolved windowed efficiency metrics instead of the blame profile")
	diagnoseOut := fs.Bool("diagnose", false, "emit ranked diagnosis findings (see internal/diagnose) instead of the raw profile")
	window := fs.Duration("window", timeres.DefaultWindow, "rolling-window length for -timeresolved and -diagnose")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "ovlprof: %v\n", err)
		return 1
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: ovlprof [flags] trace.json (\"-\" for stdin)")
		return 2
	}
	if n := count(*csvOut, *folded, *jsonOut); n > 1 {
		fmt.Fprintln(stderr, "ovlprof: pass at most one of -csv, -folded, -json")
		return 2
	}
	if *timeResolved && *folded {
		fmt.Fprintln(stderr, "ovlprof: -folded does not apply to -timeresolved")
		return 2
	}
	if *diagnoseOut && (*folded || *csvOut || *timeResolved) {
		fmt.Fprintln(stderr, "ovlprof: -diagnose combines only with -json")
		return 2
	}

	table, err := loadTable(*calibPath)
	if err != nil {
		return fail(err)
	}
	in, err := readInput(fs.Arg(0), table)
	if err != nil {
		return fail(err)
	}
	if err := in.CheckNonEmpty(); err != nil {
		return fail(fmt.Errorf("%s: %w", fs.Arg(0), err))
	}

	if *diagnoseOut {
		p, err := profile.Analyze(in)
		if err != nil {
			return fail(err)
		}
		s, err := timeres.FromInput(in, timeres.Options{Window: *window})
		if err != nil {
			return fail(err)
		}
		rep := diagnose.Analyze(diagnose.Input{
			Profile: p, TimeRes: s, Duration: p.Duration, Procs: p.Ranks,
		})
		if *jsonOut {
			err = diagnose.WriteJSON(stdout, rep)
		} else {
			err = diagnose.WriteText(stdout, rep)
		}
		if err != nil {
			return fail(err)
		}
		return 0
	}

	if *timeResolved {
		s, err := timeres.FromInput(in, timeres.Options{Window: *window})
		if err != nil {
			return fail(err)
		}
		switch {
		case *csvOut:
			err = s.WriteCSV(stdout)
		case *jsonOut:
			err = s.WriteJSON(stdout)
		default:
			err = s.WriteText(stdout)
		}
		if err != nil {
			return fail(err)
		}
		return 0
	}

	p, err := profile.Analyze(in)
	if err != nil {
		return fail(err)
	}
	switch {
	case *csvOut:
		err = p.WriteCSV(stdout)
	case *folded:
		err = p.WriteFolded(stdout)
	case *jsonOut:
		err = p.EncodeJSON(stdout)
	default:
		err = p.WriteText(stdout, *top)
	}
	if err != nil {
		return fail(err)
	}
	return 0
}

func count(bs ...bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

func loadTable(path string) (*calib.Table, error) {
	if path == "" {
		return cluster.Calibrate(fabric.CostModel{}, nil, 0), nil
	}
	t, err := calib.Load(path)
	if err != nil {
		return nil, fmt.Errorf("reading calibration table: %w", err)
	}
	return t, nil
}

func readInput(path string, table *calib.Table) (profile.Input, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return profile.Input{}, err
		}
		defer f.Close()
		r = f
	}
	in, err := profile.FromChromeJSON(r, table)
	if err != nil {
		return profile.Input{}, fmt.Errorf("%s: %w", path, err)
	}
	return in, nil
}
