package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/mpi"
	"ovlp/internal/profile"
	"ovlp/internal/trace"
	"ovlp/internal/vtime"
)

// writeTrace exports a tracer to a temp Chrome file.
func writeTrace(t *testing.T, tr *trace.Tracer) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChrome(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func tracedRun(t *testing.T) string {
	t.Helper()
	tr := trace.New(trace.Options{})
	cluster.Run(cluster.Config{
		Procs: 2,
		MPI:   mpi.Config{Instrument: &mpi.InstrumentConfig{}},
		Trace: tr,
	}, func(r *mpi.Rank) {
		peer := 1 - r.ID()
		var q *mpi.Request
		if r.ID() == 0 {
			q = r.Isend(peer, 0, 64<<10)
		} else {
			q = r.Irecv(peer, 0)
		}
		r.Compute(100 * time.Microsecond)
		r.Wait(q)
	})
	return writeTrace(t, tr)
}

func TestEmptyTraceExitsNonZero(t *testing.T) {
	path := writeTrace(t, trace.New(trace.Options{}))
	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code == 0 {
		t.Fatalf("empty trace exited 0; stdout:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), profile.ErrEmptyTrace.Error()) {
		t.Errorf("stderr %q does not name the empty-trace error", errb.String())
	}
}

func TestSpanFreeTraceExitsNonZero(t *testing.T) {
	tr := trace.New(trace.Options{})
	tk := tr.Track(trace.GroupHost, 0, "rank0")
	tk.Instant("overlap", "xfer-begin", vtime.Time(time.Microsecond), trace.Args{Peer: trace.NoPeer, ID: 1})
	path := writeTrace(t, tr)
	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code == 0 {
		t.Fatal("span-free trace exited 0")
	}
	if !strings.Contains(errb.String(), "empty trace") {
		t.Errorf("stderr %q does not name the empty-trace error", errb.String())
	}
}

func TestProfileText(t *testing.T) {
	path := tracedRun(t)
	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "critical path") && !strings.Contains(out.String(), "blame") {
		t.Errorf("text report unexpectedly bare:\n%s", out.String())
	}
}

func TestTimeResolvedCSVDeterministic(t *testing.T) {
	path := tracedRun(t)
	render := func() string {
		var out, errb bytes.Buffer
		if code := run([]string{"-timeresolved", "-csv", path}, &out, &errb); code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, errb.String())
		}
		return out.String()
	}
	a, b := render(), render()
	if a != b {
		t.Error("-timeresolved -csv output not deterministic")
	}
	if !strings.HasPrefix(a, "# ovlp time-resolved metrics v1") {
		t.Errorf("CSV header missing:\n%.120s", a)
	}
	if !strings.Contains(a, "phase,kind,") || !strings.Contains(a, "cell,rank,") {
		t.Error("CSV missing phase or cell sections")
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{}, &out, &errb); code != 2 {
		t.Errorf("no args exited %d, want 2", code)
	}
	if code := run([]string{"-timeresolved", "-folded", "x.json"}, &out, &errb); code != 2 {
		t.Errorf("-timeresolved -folded exited %d, want 2", code)
	}
	if code := run([]string{"-csv", "-json", "x.json"}, &out, &errb); code != 2 {
		t.Errorf("-csv -json exited %d, want 2", code)
	}
}

func TestDiagnoseModes(t *testing.T) {
	path := tracedRun(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-diagnose", path}, &out, &errb); code != 0 {
		t.Fatalf("-diagnose exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "findings:") {
		t.Errorf("-diagnose text missing findings header:\n%s", out.String())
	}
	out.Reset()
	if code := run([]string{"-diagnose", "-json", path}, &out, &errb); code != 0 {
		t.Fatalf("-diagnose -json exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), `"schema": 1`) || !strings.Contains(out.String(), `"findings"`) {
		t.Errorf("-diagnose -json missing schema/findings:\n%s", out.String())
	}
	if code := run([]string{"-diagnose", "-csv", path}, &out, &errb); code != 2 {
		t.Errorf("-diagnose -csv exited %d, want 2", code)
	}
	if code := run([]string{"-diagnose", "-timeresolved", path}, &out, &errb); code != 2 {
		t.Errorf("-diagnose -timeresolved exited %d, want 2", code)
	}
}
