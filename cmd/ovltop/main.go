// Ovltop is the live view over the time-resolved efficiency metrics:
// it runs a chaos scenario (see internal/scenario) with the
// internal/timeres analyzer attached as a streaming trace sink and
// renders the rolling-window POP-style efficiencies — parallel, load
// balance, communication, transfer, serialization — while the run
// progresses, top-style in the terminal.
//
// Usage:
//
//	ovltop [-refresh 250ms] [-window 100us] [-rows 12] [-smoke]
//	       [-http :8080] scenario.yaml
//
// Every -refresh interval the screen is redrawn with the most recent
// windows (bars scale with parallel efficiency) and the detected
// compute/exchange phases; when the run finishes the full final
// tables render once. -refresh 0 skips the live redraws and prints
// only the final tables — the mode the tests pin.
//
// When the run lands, the final render also includes the diagnosis
// engine's ranked findings (internal/diagnose) — the same report
// `scenario -findings` and the drivers' -diagnose flag write.
//
// -http serves a minimal self-contained web view: "/" is a single
// embedded HTML page whose script polls /data.json (the analyzer's
// snapshot, same schema as ovlprof -timeresolved -json) and
// /findings.json (the post-run diagnosis; null while the run is
// still in flight) and renders efficiency bars plus the findings
// panel client-side. The server keeps running after the scenario
// completes so the final state can be inspected; interrupt to exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/diagnose"
	"ovlp/internal/fabric"
	"ovlp/internal/scenario"
	"ovlp/internal/timeres"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ovltop", flag.ContinueOnError)
	fs.SetOutput(stderr)
	refresh := fs.Duration("refresh", 250*time.Millisecond, "redraw interval (0 = final tables only)")
	window := fs.Duration("window", timeres.DefaultWindow, "metric window length")
	rows := fs.Int("rows", 12, "windows shown per live redraw")
	smoke := fs.Bool("smoke", false, "run the scenario at smoke size")
	httpAddr := fs.String("http", "", `serve the web view on this address (e.g. ":8080")`)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: ovltop [flags] scenario.yaml")
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "ovltop: %v\n", err)
		return 1
	}

	s, err := scenario.LoadFile(fs.Arg(0))
	if err != nil {
		return fail(err)
	}

	// Pre-calibrate on the default cost model so live snapshots price
	// overlap bounds from the first window; the run's own table (the
	// same model) replaces it at the end.
	an := timeres.New(timeres.Options{
		Window: *window,
		Table:  cluster.Calibrate(fabric.CostModel{}, nil, 0),
	})

	type outcome struct {
		rr  *scenario.RunResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		rr, err := scenario.Run(s, scenario.Opts{Smoke: *smoke, Findings: true, Sink: an})
		done <- outcome{rr, err}
	}()

	var fh findingsHolder
	var srv *http.Server
	if *httpAddr != "" {
		srv = &http.Server{Addr: *httpAddr, Handler: newHandler(an, s.Name, &fh)}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(stderr, "ovltop: http: %v\n", err)
			}
		}()
		fmt.Fprintf(stdout, "web view on http://localhost%s/\n", *httpAddr)
	}

	// Live loop: redraw until the run lands. The simulation runs in
	// virtual time — small scenarios finish before the first tick, and
	// the final render below still shows everything.
	var out outcome
	if *refresh > 0 {
		tick := time.NewTicker(*refresh)
	live:
		for {
			select {
			case out = <-done:
				tick.Stop()
				break live
			case <-tick.C:
				fmt.Fprint(stdout, "\x1b[2J\x1b[H")
				renderLive(stdout, s.Name, an.Snapshot(), *rows)
			}
		}
	} else {
		out = <-done
	}
	if out.err != nil {
		return fail(out.err)
	}
	rr := out.rr

	// The scenario engine calibrated and finished; settle our analyzer
	// the same way so the final tables carry exact per-window bounds.
	an.SetTable(rr.Res.Calib)
	an.Finalize(rr.Res.Duration)
	if err := an.Err(); err != nil {
		return fail(fmt.Errorf("replay: %w", err))
	}

	if *refresh > 0 {
		fmt.Fprint(stdout, "\x1b[2J\x1b[H")
	}
	snap := an.Snapshot()
	fmt.Fprintf(stdout, "ovltop — scenario %s  procs %d  t=%v  windows %d  phases %d\n\n",
		s.Name, rr.Procs, rr.Res.Duration, len(snap.Windows), len(snap.Phases))
	if err := snap.WriteText(stdout); err != nil {
		return fail(err)
	}
	if rr.Err != nil {
		fmt.Fprintf(stdout, "run error: %v\n", rr.Err)
	}
	if violations := scenario.Evaluate(rr); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(stdout, "VIOLATION %s\n", v)
		}
	}

	fmt.Fprintln(stdout)
	if rr.Findings != nil {
		fh.set(rr.Findings)
		if err := diagnose.WriteText(stdout, rr.Findings); err != nil {
			return fail(err)
		}
	} else {
		fmt.Fprintln(stdout, "findings: no diagnosis (trace stream not replayable)")
	}

	if srv != nil {
		fmt.Fprintf(stdout, "serving web view on %s — interrupt to exit\n", *httpAddr)
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		<-ctx.Done()
		stop()
		srv.Close()
	}
	return 0
}

// renderLive draws the compact top-style view: one line per recent
// window with a parallel-efficiency bar, then the phase strip.
func renderLive(w io.Writer, name string, s *timeres.Snapshot, rows int) {
	fmt.Fprintf(w, "ovltop — %s   t=%v   ranks %d   window %v\n\n",
		name, s.Duration, len(s.Ranks), s.Window)
	fmt.Fprintf(w, "%8s %12s  %-22s %6s %6s %6s %6s %6s\n",
		"window", "start", "PE bar", "PE", "LB", "CE", "TE", "SE")
	wins := s.Windows
	if rows > 0 && len(wins) > rows {
		wins = wins[len(wins)-rows:]
	}
	for _, sl := range wins {
		e := sl.Eff
		fmt.Fprintf(w, "%8d %12v  %-22s %6.2f %6.2f %6.2f %6.2f %6.2f\n",
			sl.Index, sl.Start, bar(e.Parallel, 20), e.Parallel,
			e.LoadBalance, e.Comm, e.Transfer, e.Serialization)
	}
	if len(s.Phases) > 0 {
		fmt.Fprintf(w, "\nphases: %s\n", phaseStrip(s.Phases, 60))
	}
}

// bar renders v in [0,1] as a fixed-width block bar.
func bar(v float64, width int) string {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	n := int(v*float64(width) + 0.5)
	return strings.Repeat("█", n) + strings.Repeat("·", width-n)
}

// phaseStrip compresses the phase sequence into a width-bounded strip:
// C for compute, X for exchange, each phase at least one cell wide.
func phaseStrip(phases []timeres.Slice, width int) string {
	total := time.Duration(0)
	for _, p := range phases {
		total += p.End - p.Start
	}
	if total <= 0 {
		return ""
	}
	var b strings.Builder
	for _, p := range phases {
		n := int(float64(p.End-p.Start) / float64(total) * float64(width))
		if n < 1 {
			n = 1
		}
		c := "C"
		if p.Kind == "exchange" {
			c = "X"
		}
		b.WriteString(strings.Repeat(c, n))
	}
	return b.String()
}
