package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ovlp/internal/diagnose"
	"ovlp/internal/timeres"
)

const testScenario = `name: top-test
seed: 7
procs: 2
deadline: 2s
workload:
  kind: exchange
  size: 64K
  reps: 4
  compute: 200us
`

func writeScenario(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "top-test.yaml")
	if err := os.WriteFile(path, []byte(testScenario), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestFinalRender pins the -refresh 0 mode: no live redraws, one full
// table render after the run, exit 0.
func TestFinalRender(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-refresh", "0", writeScenario(t)}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	s := out.String()
	if strings.Contains(s, "\x1b[2J") {
		t.Error("-refresh 0 cleared the screen")
	}
	for _, want := range []string{"scenario top-test", "windows", "phases", "PE", "findings"} {
		if !strings.Contains(s, want) {
			t.Errorf("final render missing %q:\n%s", want, s)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no args exited %d, want 2", code)
	}
	if code := run([]string{"no-such-file.yaml"}, &out, &errb); code != 1 {
		t.Errorf("missing scenario exited %d, want 1", code)
	}
}

// TestWebHandler drives the embedded view's endpoints.
func TestWebHandler(t *testing.T) {
	an := timeres.New(timeres.Options{})
	var fh findingsHolder
	srv := httptest.NewServer(newHandler(an, "top-test", &fh))
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	var page bytes.Buffer
	if _, err := page.ReadFrom(res.Body); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	html := page.String()
	for _, want := range []string{"<!doctype html", "ovltop — top-test", "data.json"} {
		if !strings.Contains(html, want) {
			t.Errorf("page missing %q", want)
		}
	}

	res, err = srv.Client().Get(srv.URL + "/data.json")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var snap struct {
		Schema int   `json:"schema"`
		Ranks  []int `json:"ranks"`
	}
	if err := json.NewDecoder(res.Body).Decode(&snap); err != nil {
		t.Fatalf("data.json not valid JSON: %v", err)
	}
	if snap.Schema != timeres.Schema {
		t.Errorf("schema = %d, want %d", snap.Schema, timeres.Schema)
	}

	// findings.json is null until the run lands, then the holder's
	// report verbatim.
	fetchFindings := func() string {
		t.Helper()
		res, err := srv.Client().Get(srv.URL + "/findings.json")
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		var body bytes.Buffer
		if _, err := body.ReadFrom(res.Body); err != nil {
			t.Fatal(err)
		}
		return body.String()
	}
	if got := strings.TrimSpace(fetchFindings()); got != "null" {
		t.Errorf("findings.json before run = %q, want null", got)
	}
	fh.set(&diagnose.Report{Schema: 1, Findings: []diagnose.Finding{
		{Kind: "straggler-rank", Severity: "warn", Summary: "rank 1 lags"},
	}})
	var rep diagnose.Report
	if err := json.Unmarshal([]byte(fetchFindings()), &rep); err != nil {
		t.Fatalf("findings.json not valid JSON: %v", err)
	}
	if len(rep.Findings) != 1 || rep.Findings[0].Kind != "straggler-rank" {
		t.Errorf("findings.json = %+v", rep)
	}

	res, err = srv.Client().Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 404 {
		t.Errorf("unknown path returned %d", res.StatusCode)
	}
}

// TestBarAndStrip pin the tiny render helpers.
func TestBarAndStrip(t *testing.T) {
	if got := bar(0, 4); got != "····" {
		t.Errorf("bar(0) = %q", got)
	}
	if got := bar(1, 4); got != "████" {
		t.Errorf("bar(1) = %q", got)
	}
	if got := bar(0.5, 4); strings.Count(got, "█") != 2 {
		t.Errorf("bar(0.5) = %q", got)
	}
	strip := phaseStrip([]timeres.Slice{
		{Kind: "compute", Start: 0, End: 300},
		{Kind: "exchange", Start: 300, End: 400},
	}, 8)
	if !strings.Contains(strip, "C") || !strings.Contains(strip, "X") {
		t.Errorf("phase strip %q lacks both kinds", strip)
	}
}
