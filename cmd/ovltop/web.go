package main

import (
	"fmt"
	"net/http"
	"strings"
	"sync"

	"ovlp/internal/diagnose"
	"ovlp/internal/timeres"
)

// findingsHolder publishes the post-run diagnosis report to request
// goroutines; it stays empty (and /findings.json serves null) until
// the scenario lands.
type findingsHolder struct {
	mu sync.Mutex
	r  *diagnose.Report
}

func (h *findingsHolder) set(r *diagnose.Report) {
	h.mu.Lock()
	h.r = r
	h.mu.Unlock()
}

func (h *findingsHolder) get() *diagnose.Report {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.r
}

// newHandler serves the embedded web view: "/" is the self-contained
// page, "/data.json" the analyzer's current snapshot in the same
// schema ovlprof -timeresolved -json emits, "/findings.json" the
// post-run diagnosis (null while the run is in flight). Snapshots are
// safe to take from request goroutines — the analyzer carries its own
// mutex.
func newHandler(an *timeres.Analyzer, name string, fh *findingsHolder) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, strings.Replace(indexHTML, "{{NAME}}", name, 1))
	})
	mux.HandleFunc("/data.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := an.Snapshot().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/findings.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		rep := fh.get()
		if rep == nil {
			fmt.Fprintln(w, "null")
			return
		}
		if err := diagnose.WriteJSON(w, rep); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

// indexHTML is the whole dashboard: no build step, no external assets,
// one page polling /data.json and drawing efficiency bars.
const indexHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>ovltop — {{NAME}}</title>
<style>
  body { font: 13px/1.5 ui-monospace, monospace; background: #111; color: #ddd;
         margin: 1.5em auto; max-width: 72em; padding: 0 1em; }
  h1 { font-size: 1.1em; color: #fff; }
  table { border-collapse: collapse; width: 100%; margin-bottom: 1.5em; }
  th, td { padding: 2px 8px; text-align: right; white-space: nowrap; }
  th { color: #888; border-bottom: 1px solid #333; }
  td.bar { width: 40%; text-align: left; }
  .track { background: #222; display: block; height: 10px; border-radius: 2px; }
  .fill  { background: #4a9; display: block; height: 10px; border-radius: 2px; }
  .fill.low { background: #c55; }
  .phase-compute { color: #4a9; } .phase-exchange { color: #c95; }
  #status { color: #888; margin-bottom: 1em; }
  .sev-info { color: #4a9; } .sev-warn { color: #c95; } .sev-critical { color: #c55; }
  .finding td { text-align: left; }
  .finding .cause { color: #888; }
</style>
</head>
<body>
<h1>ovltop — {{NAME}}</h1>
<div id="status">connecting…</div>
<div id="findings"></div>
<div id="windows"></div>
<div id="phases"></div>
<script>
function pct(v) { return (100 * v).toFixed(1) + "%"; }
function barCell(v) {
  var cls = v < 0.5 ? "fill low" : "fill";
  return '<td class="bar"><span class="track"><span class="' + cls +
         '" style="width:' + Math.max(0, Math.min(100, 100 * v)) + '%"></span></span></td>';
}
function effCols(e) {
  return barCell(e.par_eff) +
    ["par_eff", "load_bal", "comm_eff", "xfer_eff", "ser_eff"]
      .map(function (k) { return "<td>" + pct(e[k]) + "</td>"; }).join("");
}
function table(title, rows, label) {
  var h = "<h1>" + title + "</h1><table><tr><th>" + label +
    "</th><th>start</th><th>end</th><th>PE</th><th>PE</th><th>LB</th><th>CE</th><th>TE</th><th>SE</th></tr>";
  rows.forEach(function (s) {
    var tag = s.kind ? '<span class="phase-' + s.kind + '">' + s.kind + " " + s.index + "</span>" : s.index;
    h += "<tr><td>" + tag + "</td><td>" + (s.start_ns / 1e6).toFixed(2) + "ms</td><td>" +
      (s.end_ns / 1e6).toFixed(2) + "ms</td>" + effCols(s.eff) + "</tr>";
  });
  return h + "</table>";
}
function findingsPanel(rep) {
  if (!rep) { return "<h1>findings</h1><div id='status'>diagnosis pending — run in flight</div>"; }
  if (!rep.findings || !rep.findings.length) { return "<h1>findings</h1><div id='status'>none</div>"; }
  var h = "<h1>findings (" + rep.findings.length + ")</h1><table>" +
    "<tr><th>severity</th><th>kind</th><th>scope</th><th>score</th><th>summary</th></tr>";
  rep.findings.forEach(function (f) {
    h += '<tr class="finding"><td class="sev-' + f.severity + '">' + f.severity +
      "</td><td>" + f.kind + "</td><td>" + f.scope + "</td><td>" + f.score.toFixed(4) +
      "</td><td>" + f.summary +
      (f.suspected_cause ? '<br><span class="cause">cause: ' + f.suspected_cause + "</span>" : "") +
      "</td></tr>";
  });
  return h + "</table>";
}
function tick() {
  fetch("data.json").then(function (r) { return r.json(); }).then(function (d) {
    document.getElementById("status").textContent =
      d.ranks.length + " ranks · window " + (d.window_ns / 1e3) + "µs · t=" +
      (d.duration_ns / 1e6).toFixed(3) + "ms · " + (d.priced ? "priced" : "unpriced");
    document.getElementById("windows").innerHTML = table("windows", d.windows || [], "window");
    document.getElementById("phases").innerHTML = table("phases", d.phases || [], "phase");
  }).catch(function (e) {
    document.getElementById("status").textContent = "poll failed: " + e;
  });
  fetch("findings.json").then(function (r) { return r.json(); }).then(function (rep) {
    document.getElementById("findings").innerHTML = findingsPanel(rep);
  }).catch(function () {});
}
tick();
setInterval(tick, 500);
</script>
</body>
</html>
`
