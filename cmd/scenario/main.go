// Scenario runs declarative chaos scenarios: YAML/JSON files that
// pick a topology and workload, schedule correlated faults over
// virtual time, and assert machine-checkable expectations on the
// outcome — overlap-bound ranges, blame shares, expected structured
// errors, oracle validity, and determinism hashes.
//
// Usage:
//
//	scenario [flags] <file-or-dir>...
//	scenario -gen 5 -gen-seed 42 -gen-out scenarios/
//
// Each argument is one scenario file or a directory of them (sorted
// by file name). Every scenario is simulated and its assertions
// evaluated; violations print as
//
//	VIOLATION <scenario>: <check>: expected <...>, observed <...>
//
// and make the exit status 1. Bad flags or invalid scenario files
// exit 2 before any simulation starts.
//
//	-smoke        shrink runs for CI (procs <= 4, reps <= 5, iters <= 2;
//	              golden-hash and time_resolved assertions are skipped)
//	-backend B    execution backend: virtual (default) or real. Real
//	              runs execute on the wall clock, so the determinism,
//	              trace_hash and report_hash assertions are skipped,
//	              each printing a named "SKIP <check>: <reason>" line
//	              under the scenario's summary rather than passing
//	              silently; chaos/crash scenarios are rejected (fault
//	              injection is virtual-only)
//	-report DIR   write each scenario's run-report JSON into DIR
//	-golden DIR   byte-compare each report against DIR/<name>.json
//	-write-golden (re)write the golden files instead of comparing
//	-timeresolved DIR  write each scenario's windowed efficiency CSV
//	              (internal/timeres) into DIR as <name>.timeres.csv
//	-findings DIR write each scenario's diagnosis findings JSON
//	              (internal/diagnose) into DIR as <name>.findings.json
//	-gen N        generate N seeded stress scenarios and exit
//	-list-checks  print the assertion-check catalogue (every check with
//	              its fields and the closed vocabularies) and exit
//
// Determinism is the engine's contract: the same scenario file always
// produces byte-identical trace and report, so golden files are exact
// and a mismatch means behaviour actually changed.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"ovlp/internal/cmdutil"
	"ovlp/internal/diagnose"
	"ovlp/internal/scenario"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scenario", flag.ContinueOnError)
	fs.SetOutput(stderr)
	smoke := fs.Bool("smoke", false, "shrink runs for CI; golden-hash assertions are skipped")
	reportDir := fs.String("report", "", "write each scenario's run-report JSON into this directory")
	goldenDir := fs.String("golden", "", "byte-compare each run report against <dir>/<name>.json")
	writeGolden := fs.Bool("write-golden", false, "write the golden files under -golden instead of comparing")
	timeresDir := fs.String("timeresolved", "", "write each scenario's windowed time-resolved CSV into this directory")
	findingsDir := fs.String("findings", "", "write each scenario's diagnosis findings JSON into this directory")
	listChecks := fs.Bool("list-checks", false, "print the assertion-check catalogue and exit")
	bf := cmdutil.RegisterBackend(fs)
	gen := fs.Int("gen", 0, "generate this many seeded stress scenarios and exit")
	genSeed := fs.Int64("gen-seed", 42, "generator seed (same seed, same scenarios)")
	genOut := fs.String("gen-out", ".", "directory the generated scenario files are written into")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail2 := func(err error) int {
		fmt.Fprintf(stderr, "scenario: %v\n", err)
		return 2
	}

	if *listChecks {
		if err := scenario.WriteChecks(stdout); err != nil {
			return fail2(err)
		}
		return 0
	}
	if *gen > 0 {
		return generate(*gen, *genSeed, *genOut, stdout, stderr)
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "scenario: no scenario files given (pass files or directories, or -gen N)")
		return 2
	}
	if *goldenDir != "" && *smoke {
		return fail2(fmt.Errorf("-golden needs full-size runs; drop -smoke"))
	}
	if *goldenDir != "" && bf.Real() {
		return fail2(fmt.Errorf("-golden needs deterministic bytes; drop -backend real"))
	}
	if *writeGolden && *goldenDir == "" {
		return fail2(fmt.Errorf("-write-golden needs -golden DIR"))
	}

	// Load everything first: an invalid corpus exits 2 before any
	// simulation runs.
	var scens []*scenario.Scenario
	seen := map[string]bool{}
	for _, arg := range fs.Args() {
		st, err := os.Stat(arg)
		if err != nil {
			return fail2(err)
		}
		var batch []*scenario.Scenario
		if st.IsDir() {
			batch, err = scenario.LoadDir(arg)
		} else {
			var s *scenario.Scenario
			s, err = scenario.LoadFile(arg)
			batch = []*scenario.Scenario{s}
		}
		if err != nil {
			return fail2(err)
		}
		for _, s := range batch {
			if seen[s.Name] {
				return fail2(fmt.Errorf("duplicate scenario name %q", s.Name))
			}
			seen[s.Name] = true
			scens = append(scens, s)
		}
	}
	for _, dir := range []string{*reportDir, *goldenDir, *timeresDir, *findingsDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return fail2(err)
			}
		}
	}

	failed := 0
	opts := scenario.Opts{Smoke: *smoke, TimeRes: *timeresDir != "", Findings: *findingsDir != "", Backend: bf.Backend()}
	for _, s := range scens {
		rr, err := scenario.Run(s, opts)
		if err != nil {
			return fail2(err)
		}
		violations := scenario.Evaluate(rr)
		if *goldenDir != "" {
			violations = append(violations, checkGolden(rr, *goldenDir, *writeGolden, stdout, stderr)...)
		}
		scenario.WriteText(stdout, rr, violations)
		if len(violations) > 0 {
			failed++
			for _, v := range violations {
				fmt.Fprintf(stderr, "VIOLATION %s\n", v)
			}
		}
		if *reportDir != "" {
			path := filepath.Join(*reportDir, s.Name+".json")
			if err := os.WriteFile(path, rr.ReportBytes, 0o644); err != nil {
				return fail2(err)
			}
		}
		if *timeresDir != "" {
			if rr.TimeRes == nil {
				fmt.Fprintf(stderr, "scenario: %s: no time-resolved snapshot (stream not replayable)\n", s.Name)
			} else {
				var buf bytes.Buffer
				if err := rr.TimeRes.WriteCSV(&buf); err != nil {
					return fail2(err)
				}
				path := filepath.Join(*timeresDir, s.Name+".timeres.csv")
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					return fail2(err)
				}
			}
		}
		if *findingsDir != "" {
			if rr.Findings == nil {
				fmt.Fprintf(stderr, "scenario: %s: no diagnosis (stream not replayable)\n", s.Name)
			} else {
				var buf bytes.Buffer
				if err := diagnose.WriteJSON(&buf, rr.Findings); err != nil {
					return fail2(err)
				}
				path := filepath.Join(*findingsDir, s.Name+".findings.json")
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					return fail2(err)
				}
			}
		}
	}
	fmt.Fprintf(stdout, "%d scenario(s), %d failed\n", len(scens), failed)
	if failed > 0 {
		return 1
	}
	return 0
}

// checkGolden byte-compares (or rewrites) the scenario's golden run
// report; a mismatch is reported as a violation so it shares the
// structured failure path.
func checkGolden(rr *scenario.RunResult, dir string, write bool, stdout, stderr io.Writer) []scenario.Violation {
	path := filepath.Join(dir, rr.Scenario.Name+".json")
	if write {
		if err := os.WriteFile(path, rr.ReportBytes, 0o644); err != nil {
			fmt.Fprintf(stderr, "scenario: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(stdout, "wrote golden %s\n", path)
		return nil
	}
	want, err := os.ReadFile(path)
	if err != nil {
		return []scenario.Violation{{
			Scenario: rr.Scenario.Name, Check: "golden",
			Expected: "a golden report at " + path,
			Observed: err.Error(),
		}}
	}
	if string(want) != string(rr.ReportBytes) {
		return []scenario.Violation{{
			Scenario: rr.Scenario.Name, Check: "golden",
			Expected: fmt.Sprintf("report bytes matching %s (%d bytes)", path, len(want)),
			Observed: fmt.Sprintf("%d bytes, hash %s", len(rr.ReportBytes), rr.ReportHash),
		}}
	}
	return nil
}

func generate(n int, seed int64, outDir string, stdout, stderr io.Writer) int {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		fmt.Fprintf(stderr, "scenario: %v\n", err)
		return 2
	}
	for _, s := range scenario.Generate(seed, n) {
		b, err := s.EncodeJSON()
		if err != nil {
			fmt.Fprintf(stderr, "scenario: %v\n", err)
			return 2
		}
		path := filepath.Join(outDir, s.Name+".json")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			fmt.Fprintf(stderr, "scenario: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "wrote %s\n", path)
	}
	return 0
}
