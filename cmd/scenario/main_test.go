package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func writeScenario(t *testing.T, dir, name, src string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const passingYAML = `
name: pass-demo
seed: 11
procs: 2
deadline: 2s
workload:
  kind: exchange
  size: 32K
  reps: 4
  compute: 200us
assert:
  - check: bounds_valid
  - check: error_absent
`

const failingYAML = `
name: fail-demo
seed: 11
procs: 2
deadline: 2s
workload:
  kind: exchange
  size: 32K
  reps: 4
  compute: 200us
assert:
  - check: overlap
    min_pct: 99.9
`

func TestPassingScenarioExitsZero(t *testing.T) {
	dir := t.TempDir()
	path := writeScenario(t, dir, "pass.yaml", passingYAML)
	code, stdout, stderr := runCmd(t, path)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "pass-demo") || !strings.Contains(stdout, "PASS") {
		t.Fatalf("stdout = %q", stdout)
	}
	if !strings.Contains(stdout, "1 scenario(s), 0 failed") {
		t.Fatalf("missing summary: %q", stdout)
	}
}

func TestViolationExitsOneAndNamesEverything(t *testing.T) {
	dir := t.TempDir()
	path := writeScenario(t, dir, "fail.yaml", failingYAML)
	code, stdout, stderr := runCmd(t, path)
	if code != 1 {
		t.Fatalf("exit = %d, stdout: %s", code, stdout)
	}
	// The structured failure names scenario, assertion, expected and
	// observed.
	if !strings.Contains(stderr, "VIOLATION fail-demo: overlap:") {
		t.Fatalf("stderr = %q", stderr)
	}
	if !strings.Contains(stderr, "expected overlap >= 99.9%") || !strings.Contains(stderr, "observed") {
		t.Fatalf("stderr = %q", stderr)
	}
}

func TestInvalidScenarioExitsTwo(t *testing.T) {
	dir := t.TempDir()
	path := writeScenario(t, dir, "bad.yaml", "name: bad\nprocs: 1\nworkload:\n  kind: exchange\n  size: 1K\n  reps: 1\n")
	code, _, stderr := runCmd(t, path)
	if code != 2 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(stderr, "at least 2") {
		t.Fatalf("stderr = %q", stderr)
	}
}

func TestDirectoryRunAndReports(t *testing.T) {
	dir := t.TempDir()
	writeScenario(t, dir, "a.yaml", passingYAML)
	writeScenario(t, dir, "b.yaml", strings.Replace(passingYAML, "pass-demo", "pass-two", 1))
	repDir := filepath.Join(dir, "reports")
	code, stdout, stderr := runCmd(t, "-report", repDir, dir)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "2 scenario(s), 0 failed") {
		t.Fatalf("stdout = %q", stdout)
	}
	for _, name := range []string{"pass-demo.json", "pass-two.json"} {
		b, err := os.ReadFile(filepath.Join(repDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(b), `"schema": 1`) {
			t.Fatalf("report %s = %q", name, b)
		}
	}
}

func TestGoldenWriteThenVerifyThenMismatch(t *testing.T) {
	dir := t.TempDir()
	path := writeScenario(t, dir, "pass.yaml", passingYAML)
	golden := filepath.Join(dir, "golden")

	code, _, stderr := runCmd(t, "-golden", golden, "-write-golden", path)
	if code != 0 {
		t.Fatalf("write-golden exit = %d, stderr: %s", code, stderr)
	}
	code, _, stderr = runCmd(t, "-golden", golden, path)
	if code != 0 {
		t.Fatalf("verify exit = %d, stderr: %s", code, stderr)
	}
	// Changing the seed changes the bytes; the golden comparison must
	// catch it.
	changed := strings.Replace(passingYAML, "seed: 11", "seed: 12", 1)
	writeScenario(t, dir, "pass.yaml", changed)
	code, _, stderr = runCmd(t, "-golden", golden, path)
	if code != 1 {
		t.Fatalf("mismatch exit = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "golden") {
		t.Fatalf("stderr = %q", stderr)
	}
}

func TestGoldenRejectsSmoke(t *testing.T) {
	code, _, stderr := runCmd(t, "-golden", "g", "-smoke", "x.yaml")
	if code != 2 || !strings.Contains(stderr, "full-size") {
		t.Fatalf("exit = %d, stderr = %q", code, stderr)
	}
}

func TestGenerateWritesRunnableCorpus(t *testing.T) {
	dir := t.TempDir()
	code, stdout, stderr := runCmd(t, "-gen", "3", "-gen-seed", "9", "-gen-out", dir)
	if code != 0 {
		t.Fatalf("gen exit = %d, stderr: %s", code, stderr)
	}
	if strings.Count(stdout, "wrote ") != 3 {
		t.Fatalf("stdout = %q", stdout)
	}
	// The generated corpus must load and pass in smoke mode.
	code, stdout, stderr = runCmd(t, "-smoke", dir)
	if code != 0 {
		t.Fatalf("smoke run exit = %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "3 scenario(s), 0 failed") {
		t.Fatalf("stdout = %q", stdout)
	}
}

func TestNoArgsExitsTwo(t *testing.T) {
	code, _, stderr := runCmd(t)
	if code != 2 || !strings.Contains(stderr, "no scenario files") {
		t.Fatalf("exit = %d, stderr = %q", code, stderr)
	}
}

// TestListChecksGolden: the -list-checks catalogue is byte-pinned, so
// adding a check or a vocabulary entry shows up in review. Regenerate
// with: go run ./cmd/scenario -list-checks > cmd/scenario/testdata/list-checks.golden
func TestListChecksGolden(t *testing.T) {
	code, stdout, stderr := runCmd(t, "-list-checks")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "list-checks.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if stdout != string(want) {
		t.Errorf("-list-checks drifted from the golden; regenerate it if the change is intended.\ngot:\n%s\nwant:\n%s", stdout, want)
	}
}
