// Spstudy regenerates the paper's NAS SP case study (Sec. 4.3,
// Figs. 14-18): overlap bounds over the explicit overlapping section
// and over the complete code, original versus Iprobe-modified, plus
// the total MPI times — all under the direct-RDMA-read library
// (MVAPICH2), as in the paper.
//
// Usage:
//
//	spstudy [-classes A,B] [-procs 4,9,16] [-iters 10]
//	        [-trace out.json] [-metrics] [-profile out.txt]
//
// -trace/-metrics/-profile (which need a single class and processor
// count) export the modified run — the one whose Iprobe calls create
// the overlap the case study is about — as Chrome trace-event JSON,
// print its counters, and run the critical-path/blame profiler over
// it.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"ovlp/internal/cmdutil"
	"ovlp/internal/nas"
	"ovlp/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spstudy: ")
	classFlag := flag.String("classes", "A,B", "comma-separated problem classes")
	procsFlag := flag.String("procs", "4,9,16", "comma-separated processor counts (squares)")
	iters := flag.Int("iters", 10, "iteration cap (0 = full NPB count)")
	obs := cmdutil.RegisterObs(nil)
	bf := cmdutil.RegisterBackend(nil)
	ver := cmdutil.RegisterVersion(nil)
	flag.Parse()
	if *ver {
		fmt.Println(cmdutil.Version())
		return
	}

	var classes []nas.Class
	for _, part := range strings.Split(*classFlag, ",") {
		part = strings.ToUpper(strings.TrimSpace(part))
		classes = append(classes, nas.Class(part[0]))
	}
	procs, err := cmdutil.ParseProcs(*procsFlag, []int{4, 9, 16})
	if err != nil {
		log.Fatal(err)
	}
	if obs.Enabled() && (len(classes) != 1 || len(procs) != 1) {
		log.Fatal("-trace/-metrics need a single run: pass one -classes and one -procs value")
	}

	for _, class := range classes {
		section := report.NewTable(
			fmt.Sprintf("SP class %s — overlapping section, original vs modified (paper Figs. 14/15)", class),
			"procs", "orig min%", "orig max%", "mod min%", "mod max%")
		whole := report.NewTable(
			fmt.Sprintf("SP class %s — complete code (paper Figs. 16/17)", class),
			"procs", "orig min%", "orig max%", "mod min%", "mod max%")
		mpiT := report.NewTable(
			fmt.Sprintf("SP class %s — total MPI time (paper Fig. 18)", class),
			"procs", "orig", "modified", "change%")
		for _, p := range procs {
			orig := nas.CharacterizeSPOpts(class, p, false, nas.Options{
				MaxIters: *iters,
				Backend:  bf.Backend(),
			})
			mod := nas.CharacterizeSPOpts(class, p, true, nas.Options{
				MaxIters: *iters,
				Trace:    obs.Tracer(),
				Backend:  bf.Backend(),
			})
			obs.SetRun(nil, mod.Reports)
			section.AddRow(p, orig.SectionMinPct, orig.SectionMaxPct,
				mod.SectionMinPct, mod.SectionMaxPct)
			whole.AddRow(p, orig.TotalMinPct, orig.TotalMaxPct,
				mod.TotalMinPct, mod.TotalMaxPct)
			change := 100 * (float64(mod.MPITime) - float64(orig.MPITime)) / float64(orig.MPITime)
			mpiT.AddRow(p, orig.MPITime.Round(time.Microsecond),
				mod.MPITime.Round(time.Microsecond), change)
		}
		section.Render(os.Stdout)
		fmt.Println()
		whole.Render(os.Stdout)
		fmt.Println()
		mpiT.Render(os.Stdout)
		fmt.Println()
	}
	if obs.Enabled() {
		if err := obs.Finish(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
