// Timeline renders an ASCII activity chart of a small instrumented
// run: per rank, one lane showing library-versus-compute occupancy and
// one showing when that rank's NIC had data on the wire (ground
// truth). Wire activity above compute is hidden communication; above
// library time it is exposed — achieved overlap, visible directly.
//
// Usage:
//
//	timeline [-scenario ring|ring-probe|sp] [-procs 4] [-width 100]
//	         [-trace out.json] [-metrics]
//
// -trace exports the same run as Chrome trace-event JSON — the
// zoomable twin of the ASCII chart — and -metrics prints its counters.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/cmdutil"
	"ovlp/internal/mpi"
	"ovlp/internal/nas"
	"ovlp/internal/overlap"
	"ovlp/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("timeline: ")
	scenario := flag.String("scenario", "ring", "ring, ring-probe, or sp")
	procs := flag.Int("procs", 4, "number of ranks")
	width := flag.Int("width", 100, "chart width in columns")
	obs := cmdutil.RegisterObs(nil)
	bf := cmdutil.RegisterBackend(nil)
	ver := cmdutil.RegisterVersion(nil)
	flag.Parse()
	if *ver {
		fmt.Println(cmdutil.Version())
		return
	}

	traces := make([][]overlap.Event, *procs)
	cfg := cluster.Config{
		Procs:   *procs,
		Backend: bf.Backend(),
		MPI: mpi.Config{
			Protocol: mpi.DirectRDMARead,
			Instrument: &mpi.InstrumentConfig{
				TraceSinkFor: func(rank int) func(overlap.Event) {
					return func(e overlap.Event) { traces[rank] = append(traces[rank], e) }
				},
			},
		},
		RecordTruth: true,
		Trace:       obs.Tracer(),
	}

	var main func(r *mpi.Rank)
	switch *scenario {
	case "ring", "ring-probe":
		probe := *scenario == "ring-probe"
		main = func(r *mpi.Rank) {
			right := (r.ID() + 1) % r.Size()
			left := (r.ID() - 1 + r.Size()) % r.Size()
			for step := 0; step < 4; step++ {
				s := r.Isend(right, step, 512<<10)
				q := r.Irecv(left, step)
				r.Compute(400 * time.Microsecond)
				if probe {
					r.Iprobe(mpi.AnySource, mpi.AnyTag)
				}
				r.Compute(400 * time.Microsecond)
				r.Waitall(s, q)
			}
		}
	case "sp":
		main = func(r *mpi.Rank) {
			nas.RunSP(r, nas.SPParams{
				Params:   nas.Params{Class: nas.ClassS, MaxIters: 1},
				Modified: true,
			})
		}
	default:
		log.Fatalf("unknown scenario %q", *scenario)
	}

	res := cluster.Run(cfg, main)
	if err := report.RenderTimeline(os.Stdout, traces, res.Transfers,
		report.TimelineConfig{Width: *width, Duration: res.Duration}); err != nil {
		log.Fatal(err)
	}
	if err := obs.Finish(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
