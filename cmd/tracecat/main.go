// Tracecat merges, filters and summarizes the Chrome trace-event JSON
// files the benchmarks write with -trace. Merging offsets each file's
// process ids so two runs land side by side in one Perfetto view;
// filtering cuts a big trace down to the categories, names or span
// lengths of interest; -summary prints per-category event counts and
// durations plus the embedded metrics without opening a UI at all.
//
// Usage:
//
//	tracecat [-o merged.json] [-cat mpi,overlap] [-name Wait] \
//	         [-min-dur 10us] [-summary] trace.json...
//
// Filters compose: an event survives if its category is in -cat (when
// set), its name contains -name (when set), and — for spans — its
// duration is at least -min-dur. Metadata events for surviving tracks
// are always kept. With -min-dur set, instants are dropped (they have
// no duration to clear the bar).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"ovlp/internal/report"
	"ovlp/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracecat: ")
	out := flag.String("o", "", "write the merged/filtered trace to this file (default stdout unless -summary)")
	cats := flag.String("cat", "", "keep only these comma-separated categories (e.g. mpi,overlap,wire)")
	name := flag.String("name", "", "keep only events whose name contains this substring")
	minDur := flag.Duration("min-dur", 0, "keep only spans at least this long (drops instants)")
	summary := flag.Bool("summary", false, "print per-category counts/durations and the embedded metrics")
	flag.Parse()
	if flag.NArg() == 0 {
		log.Fatal("no input files (want: tracecat [flags] trace.json...)")
	}

	keep := filter{name: *name, minDur: *minDur}
	if *cats != "" {
		keep.cats = make(map[string]bool)
		for _, c := range strings.Split(*cats, ",") {
			keep.cats[strings.TrimSpace(c)] = true
		}
	}

	var files []*traceFile
	for _, path := range flag.Args() {
		f, err := readTrace(path)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		f.apply(keep)
		files = append(files, f)
	}
	merged := merge(files)

	if *summary {
		for _, f := range files {
			f.summarize(os.Stdout)
		}
	}
	if *out != "" {
		w, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := merged.write(w); err != nil {
			log.Fatal(err)
		}
		if err := w.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d events from %d file(s))\n", *out, len(merged.Events), len(files))
	} else if !*summary {
		if err := merged.write(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

// event is one trace-event record; ts/dur stay json.Number so the
// exporter's exact decimal microseconds survive a round trip, and args
// pass through untouched as raw JSON.
type event struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat"`
	Ph   string          `json:"ph"`
	S    string          `json:"s"`
	Ts   json.Number     `json:"ts"`
	Dur  json.Number     `json:"dur"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	Args json.RawMessage `json:"args"`
}

type traceFile struct {
	Path    string
	Events  []event
	Metrics *trace.Snapshot
}

func readTrace(path string) (*traceFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var raw struct {
		TraceEvents []event         `json:"traceEvents"`
		Metrics     json.RawMessage `json:"metrics"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("not a trace-event file: %v", err)
	}
	// A truncated or unrelated JSON document unmarshals cleanly into
	// nothing; treat the absence of the traceEvents array as the error
	// it is rather than emitting a silently empty merge.
	if raw.TraceEvents == nil {
		return nil, fmt.Errorf("not a trace-event file: no traceEvents array")
	}
	f := &traceFile{Path: path, Events: raw.TraceEvents}
	if len(raw.Metrics) > 0 {
		f.Metrics = &trace.Snapshot{}
		if err := json.Unmarshal(raw.Metrics, f.Metrics); err != nil {
			return nil, fmt.Errorf("bad metrics block: %v", err)
		}
	}
	return f, nil
}

type filter struct {
	cats   map[string]bool
	name   string
	minDur time.Duration
}

func (fl filter) empty() bool {
	return fl.cats == nil && fl.name == "" && fl.minDur == 0
}

// keeps decides one non-metadata event's fate.
func (fl filter) keeps(e event) bool {
	if fl.cats != nil && !fl.cats[e.Cat] {
		return false
	}
	if fl.name != "" && !strings.Contains(e.Name, fl.name) {
		return false
	}
	if fl.minDur > 0 {
		if e.Ph != "X" {
			return false
		}
		if parseUsec(e.Dur) < int64(fl.minDur) {
			return false
		}
	}
	return true
}

// apply filters the file's events, keeping metadata ("M") rows only
// for tracks that still have at least one surviving event.
func (f *traceFile) apply(fl filter) {
	if fl.empty() {
		return
	}
	type track struct{ pid, tid int }
	alive := make(map[track]bool)
	var kept []event
	for _, e := range f.Events {
		if e.Ph == "M" {
			continue
		}
		if fl.keeps(e) {
			kept = append(kept, e)
			alive[track{e.Pid, e.Tid}] = true
		}
	}
	var out []event
	for _, e := range f.Events {
		if e.Ph != "M" {
			break // exporter writes all metadata first
		}
		// process-level metadata has tid 0; keep it if any of the
		// process's tracks survived.
		ok := alive[track{e.Pid, e.Tid}]
		if !ok && (e.Name == "process_name" || e.Name == "process_sort_index") {
			for t := range alive {
				if t.pid == e.Pid {
					ok = true
					break
				}
			}
		}
		if ok {
			out = append(out, e)
		}
	}
	f.Events = append(out, kept...)
}

// merged is the output document: events from every file with per-file
// pid offsets, plus the summed metrics.
type merged struct {
	Events  []event
	Metrics *trace.Snapshot
}

// merge concatenates the files in argument order. Each file's process
// ids are offset past the previous files' so same-numbered ranks from
// different runs stay distinct tracks; metrics counters sum, gauges
// keep the maximum, and histograms with matching bounds add up.
func merge(files []*traceFile) *merged {
	m := &merged{}
	offset := 0
	for _, f := range files {
		maxPid := 0
		for _, e := range f.Events {
			e.Pid += offset
			if e.Pid > maxPid {
				maxPid = e.Pid
			}
			m.Events = append(m.Events, e)
		}
		if maxPid >= offset {
			offset = maxPid + 1
		}
		m.Metrics = mergeMetrics(m.Metrics, f.Metrics)
	}
	return m
}

func mergeMetrics(a, b *trace.Snapshot) *trace.Snapshot {
	if b == nil {
		return a
	}
	if a == nil {
		return b
	}
	out := &trace.Snapshot{}
	cs := make(map[string]int64)
	for _, c := range append(append([]trace.CounterSnap{}, a.Counters...), b.Counters...) {
		cs[c.Name] += c.Value
	}
	for _, name := range sortedKeys(cs) {
		out.Counters = append(out.Counters, trace.CounterSnap{Name: name, Value: cs[name]})
	}
	gs := make(map[string]trace.GaugeSnap)
	for _, g := range append(append([]trace.GaugeSnap{}, a.Gauges...), b.Gauges...) {
		cur, ok := gs[g.Name]
		if !ok || g.Max > cur.Max {
			cur.Max = g.Max
		}
		cur.Name, cur.Value = g.Name, g.Value // last writer wins on level
		gs[g.Name] = cur
	}
	for _, name := range sortedGaugeKeys(gs) {
		out.Gauges = append(out.Gauges, gs[name])
	}
	hs := make(map[string]trace.HistogramSnap)
	for _, h := range append(append([]trace.HistogramSnap{}, a.Histograms...), b.Histograms...) {
		cur, ok := hs[h.Name]
		if !ok {
			hs[h.Name] = h
			continue
		}
		if !equalInts(cur.Bounds, h.Bounds) {
			continue // incompatible shapes: keep the first
		}
		for i := range cur.Buckets {
			cur.Buckets[i] += h.Buckets[i]
		}
		cur.Sum += h.Sum
		if h.Count > 0 && (cur.Count == 0 || h.Min < cur.Min) {
			cur.Min = h.Min
		}
		if h.Count > 0 && (cur.Count == 0 || h.Max > cur.Max) {
			cur.Max = h.Max
		}
		cur.Count += h.Count
		hs[h.Name] = cur
	}
	for _, name := range sortedHistKeys(hs) {
		out.Histograms = append(out.Histograms, hs[name])
	}
	return out
}

// write re-encodes the merged document with the exporter's fixed field
// order, so tracecat output is deterministic too.
func (m *merged) write(w *os.File) error {
	var b bytes.Buffer
	b.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`)
	for i, e := range m.Events {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteByte('\n')
		fmt.Fprintf(&b, `{"name":%s`, quote(e.Name))
		if e.Cat != "" {
			fmt.Fprintf(&b, `,"cat":%s`, quote(e.Cat))
		}
		fmt.Fprintf(&b, `,"ph":%s`, quote(e.Ph))
		if e.S != "" {
			fmt.Fprintf(&b, `,"s":%s`, quote(e.S))
		}
		if e.Ts != "" {
			fmt.Fprintf(&b, `,"ts":%s`, e.Ts)
		}
		if e.Dur != "" {
			fmt.Fprintf(&b, `,"dur":%s`, e.Dur)
		}
		fmt.Fprintf(&b, `,"pid":%d,"tid":%d`, e.Pid, e.Tid)
		if len(e.Args) > 0 {
			fmt.Fprintf(&b, `,"args":%s`, e.Args)
		}
		b.WriteByte('}')
	}
	b.WriteString("\n]")
	if m.Metrics != nil && !m.Metrics.Empty() {
		b.WriteString(`,"metrics":`)
		if err := m.Metrics.WriteJSON(&b); err != nil {
			return err
		}
	}
	b.WriteString("}\n")
	_, err := w.Write(b.Bytes())
	return err
}

// summarize prints one file's shape: track and event counts, the time
// span covered, a per-category/name table, and the metrics block.
func (f *traceFile) summarize(w *os.File) {
	type key struct{ cat, name string }
	type stat struct {
		count int
		total int64 // summed span durations, ns
	}
	stats := make(map[key]stat)
	tracks := make(map[[2]int]bool)
	var spans, instants int
	var end int64
	for _, e := range f.Events {
		switch e.Ph {
		case "M":
			continue
		case "X":
			spans++
		case "i":
			instants++
		}
		tracks[[2]int{e.Pid, e.Tid}] = true
		s := stats[key{e.Cat, e.Name}]
		s.count++
		at := parseUsec(e.Ts)
		if e.Ph == "X" {
			d := parseUsec(e.Dur)
			s.total += d
			at += d
		}
		if at > end {
			end = at
		}
		stats[key{e.Cat, e.Name}] = s
	}

	fmt.Fprintf(w, "%s: %d track(s), %d span(s), %d instant(s), %v covered\n",
		f.Path, len(tracks), spans, instants, time.Duration(end))
	keys := make([]key, 0, len(stats))
	for k := range stats {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].cat != keys[j].cat {
			return keys[i].cat < keys[j].cat
		}
		return keys[i].name < keys[j].name
	})
	t := report.NewTable("  events by category", "cat", "name", "count", "total dur")
	for _, k := range keys {
		s := stats[k]
		t.AddRow(k.cat, k.name, s.count, time.Duration(s.total).Round(time.Microsecond))
	}
	t.Render(w)
	warnSpills(w, f.Metrics)
	if f.Metrics != nil && !f.Metrics.Empty() {
		fmt.Fprintln(w, "metrics:")
		if err := f.Metrics.WriteText(w); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Fprintln(w)
}

// warnSpills surfaces per-track ring-buffer spills recorded in the
// embedded metrics block: a spilled track allocated during
// steady-state emission, which biases any overhead-sensitive
// post-hoc analysis of the trace.
func warnSpills(w io.Writer, m *trace.Snapshot) {
	if m == nil {
		return
	}
	var total int64
	for _, c := range m.Counters {
		switch {
		case c.Name == "trace.spills":
			total = c.Value
		case strings.HasPrefix(c.Name, "trace.spills."):
			fmt.Fprintf(w, "  WARNING: track %s spilled its hot ring %d time(s) — emission allocated; consider a larger ring\n",
				strings.TrimPrefix(c.Name, "trace.spills."), c.Value)
		}
	}
	if total > 0 {
		fmt.Fprintf(w, "  WARNING: %d ring spill(s) total across tracks\n", total)
	}
}

// parseUsec converts the spec's decimal-microsecond timestamp to
// integer nanoseconds without a float round trip, truncating past the
// third fractional digit (the exporter never emits more).
func parseUsec(n json.Number) int64 {
	s := string(n)
	if s == "" {
		return 0
	}
	neg := false
	if s[0] == '-' {
		neg, s = true, s[1:]
	}
	whole, frac, _ := strings.Cut(s, ".")
	var ns int64
	for i := 0; i < len(whole); i++ {
		if whole[i] < '0' || whole[i] > '9' {
			return 0
		}
		ns = ns*10 + int64(whole[i]-'0')
	}
	ns *= 1000
	scale := int64(100)
	for i := 0; i < len(frac) && i < 3; i++ {
		if frac[i] < '0' || frac[i] > '9' {
			return 0
		}
		ns += int64(frac[i]-'0') * scale
		scale /= 10
	}
	if neg {
		return -ns
	}
	return ns
}

func quote(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

func equalInts(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedGaugeKeys(m map[string]trace.GaugeSnap) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedHistKeys(m map[string]trace.HistogramSnap) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
