package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestReadTraceRejectsCorruptInput: malformed or truncated input must
// surface a clear error (main turns it into a non-zero exit), never a
// silently empty merge.
func TestReadTraceRejectsCorruptInput(t *testing.T) {
	valid := `{"traceEvents":[{"name":"x","cat":"mpi","ph":"X","ts":1,"dur":2,"pid":1,"tid":1}],"metrics":{}}`
	cases := []struct {
		name, content string
	}{
		{"garbage", "not json at all"},
		{"truncated", valid[:len(valid)/2]},
		{"empty-file", ""},
		{"no-trace-events", `{}`},
		{"wrong-document", `{"metrics":{}}`},
		{"events-not-array", `{"traceEvents":42}`},
	}
	dir := t.TempDir()
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join(dir, c.name+".json")
			if err := os.WriteFile(path, []byte(c.content), 0o644); err != nil {
				t.Fatal(err)
			}
			f, err := readTrace(path)
			if err == nil {
				t.Fatalf("corrupt input accepted: %+v", f)
			}
			if !strings.Contains(err.Error(), "trace-event") {
				t.Errorf("error %q does not say what was wrong with the file", err)
			}
		})
	}
}

// TestReadTraceAcceptsValidInput: the fixed inputs still load,
// including an empty-but-present traceEvents array.
func TestReadTraceAcceptsValidInput(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"one-event": `{"traceEvents":[{"name":"x","cat":"mpi","ph":"X","ts":1,"dur":2,"pid":1,"tid":1}]}`,
		"empty":     `{"traceEvents":[]}`,
	} {
		path := filepath.Join(dir, name+".json")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		f, err := readTrace(path)
		if err != nil {
			t.Errorf("%s: valid input rejected: %v", name, err)
			continue
		}
		if name == "one-event" && len(f.Events) != 1 {
			t.Errorf("%s: want 1 event, got %d", name, len(f.Events))
		}
	}
}
