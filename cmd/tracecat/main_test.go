package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ovlp/internal/trace"
)

// TestReadTraceRejectsCorruptInput: malformed or truncated input must
// surface a clear error (main turns it into a non-zero exit), never a
// silently empty merge.
func TestReadTraceRejectsCorruptInput(t *testing.T) {
	valid := `{"traceEvents":[{"name":"x","cat":"mpi","ph":"X","ts":1,"dur":2,"pid":1,"tid":1}],"metrics":{}}`
	cases := []struct {
		name, content string
	}{
		{"garbage", "not json at all"},
		{"truncated", valid[:len(valid)/2]},
		{"empty-file", ""},
		{"no-trace-events", `{}`},
		{"wrong-document", `{"metrics":{}}`},
		{"events-not-array", `{"traceEvents":42}`},
	}
	dir := t.TempDir()
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join(dir, c.name+".json")
			if err := os.WriteFile(path, []byte(c.content), 0o644); err != nil {
				t.Fatal(err)
			}
			f, err := readTrace(path)
			if err == nil {
				t.Fatalf("corrupt input accepted: %+v", f)
			}
			if !strings.Contains(err.Error(), "trace-event") {
				t.Errorf("error %q does not say what was wrong with the file", err)
			}
		})
	}
}

// TestReadTraceAcceptsValidInput: the fixed inputs still load,
// including an empty-but-present traceEvents array.
func TestReadTraceAcceptsValidInput(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"one-event": `{"traceEvents":[{"name":"x","cat":"mpi","ph":"X","ts":1,"dur":2,"pid":1,"tid":1}]}`,
		"empty":     `{"traceEvents":[]}`,
	} {
		path := filepath.Join(dir, name+".json")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		f, err := readTrace(path)
		if err != nil {
			t.Errorf("%s: valid input rejected: %v", name, err)
			continue
		}
		if name == "one-event" && len(f.Events) != 1 {
			t.Errorf("%s: want 1 event, got %d", name, len(f.Events))
		}
	}
}

// TestWarnSpills: a metrics block carrying spill counters surfaces a
// per-track warning plus a total; a spill-free block stays silent.
func TestWarnSpills(t *testing.T) {
	var buf bytes.Buffer
	warnSpills(&buf, &trace.Snapshot{Counters: []trace.CounterSnap{
		{Name: "mpi.calls", Value: 12},
		{Name: "trace.spills", Value: 3},
		{Name: "trace.spills.hosts.rank1", Value: 2},
		{Name: "trace.spills.nic.nic0", Value: 1},
	}})
	out := buf.String()
	for _, want := range []string{
		"track hosts.rank1 spilled its hot ring 2 time(s)",
		"track nic.nic0 spilled its hot ring 1 time(s)",
		"3 ring spill(s) total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("warning output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	warnSpills(&buf, &trace.Snapshot{Counters: []trace.CounterSnap{{Name: "mpi.calls", Value: 12}}})
	if buf.Len() != 0 {
		t.Errorf("spill-free metrics produced warnings: %s", buf.String())
	}
	warnSpills(&buf, nil)
	if buf.Len() != 0 {
		t.Error("nil metrics produced warnings")
	}
}
