// Onesided: overlap with one-sided (ARMCI-style) communication —
// blocking versus non-blocking puts, the contrast of the paper's
// Sec. 4.4 (ARMCI MG study, Fig. 19).
//
// Each process streams blocks to its right neighbour while computing
// on the next block. With blocking Put, every transfer begins and ends
// inside one library call and the instrumentation proves zero overlap;
// with NbPut + deferred WaitHandle, the NIC moves data underneath the
// computation and the bounds approach 100%.
//
// Run with: go run ./examples/onesided
package main

import (
	"fmt"
	"os"
	"time"

	"ovlp/internal/armci"
	"ovlp/internal/cluster"
	"ovlp/internal/report"
)

func main() {
	const (
		procs  = 4
		block  = 512 << 10
		steps  = 30
		crunch = 800 * time.Microsecond
	)

	run := func(nonblocking bool) cluster.ARMCIResult {
		return cluster.RunARMCI(cluster.ARMCIConfig{
			Procs: procs,
			ARMCI: armci.Config{Instrument: &armci.InstrumentConfig{}},
		}, func(p *armci.Proc) {
			right := (p.ID() + 1) % p.Size()
			for s := 0; s < steps; s++ {
				if nonblocking {
					h := p.NbPut(right, block)
					p.Compute(crunch) // produce the next block meanwhile
					p.WaitHandle(h)
				} else {
					p.Put(right, block)
					p.Compute(crunch)
				}
			}
			p.Barrier()
		})
	}

	t := report.NewTable("one-sided streaming pipeline — blocking vs non-blocking puts",
		"variant", "min overlap%", "max overlap%", "lib time", "run time")
	for _, nb := range []bool{false, true} {
		name := "Put (blocking)"
		if nb {
			name = "NbPut + WaitHandle"
		}
		res := run(nb)
		tot := res.Reports[0].Total()
		t.AddRow(name, tot.MinPercent(), tot.MaxPercent(),
			res.LibTimes[0].Round(time.Microsecond),
			res.Duration.Round(time.Microsecond))
	}
	t.Render(os.Stdout)
	fmt.Println("\nOne-sided operations complete asynchronously on the NIC, so simply")
	fmt.Println("splitting initiation from completion converts all of the transfer")
	fmt.Println("time into hidden time — the effect the paper measures at 99% for the")
	fmt.Println("non-blocking ARMCI port of NAS MG.")
}
