// Quickstart: instrument a small message-passing program and read the
// overlap report.
//
// Four ranks run a ring pipeline: each forwards a 256 KiB block to its
// right neighbour, computes on the previous block while the transfer
// is (hopefully) in flight, and waits. The per-rank reports show how
// much of the transfer time the instrumentation can prove was hidden
// (the minimum bound) and how much could at best have been hidden (the
// maximum bound).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/mpi"
)

func main() {
	const (
		ranks  = 4
		block  = 256 << 10 // 256 KiB per step: a rendezvous message
		steps  = 20
		crunch = 600 * time.Microsecond // per-step computation
	)

	res := cluster.Run(cluster.Config{
		Procs: ranks,
		MPI: mpi.Config{
			Protocol:   mpi.DirectRDMARead,
			Instrument: &mpi.InstrumentConfig{}, // table auto-calibrated
		},
	}, func(r *mpi.Rank) {
		right := (r.ID() + 1) % r.Size()
		left := (r.ID() - 1 + r.Size()) % r.Size()
		for step := 0; step < steps; step++ {
			send := r.Isend(right, step, block)
			recv := r.Irecv(left, step)
			// Compute while the NIC moves data. Without progress
			// nudges a polling library may still serialize — exactly
			// what the report below reveals.
			r.Compute(crunch)
			r.Iprobe(mpi.AnySource, mpi.AnyTag) // nudge the progress engine
			r.Compute(crunch)
			r.Waitall(send, recv)
		}
		r.Barrier()
	})

	fmt.Printf("ring pipeline finished in %v of virtual time\n\n", res.Duration)
	for _, rep := range res.Reports {
		if _, err := rep.WriteTo(os.Stdout); err != nil {
			panic(err)
		}
	}
	tot := res.Reports[0].Total()
	fmt.Printf("\nrank 0 verdict: of %v spent moving data, at least %v (%.0f%%) "+
		"and at most %v (%.0f%%) was hidden behind computation.\n",
		tot.DataTransferTime, tot.MinOverlapped, tot.MinPercent(),
		tot.MaxOverlapped, tot.MaxPercent())
}
