// Stencil: use the overlap bounds to tune a halo-exchange application,
// the way the paper tunes NAS SP (Sec. 4.3).
//
// A 2-D Jacobi stencil on a process grid exchanges four halos per
// sweep. Three structures of the same numerical work are compared:
//
//	naive     — exchange completely, then compute (no overlap
//	            attempted);
//	split     — post halo receives, compute the interior (which needs
//	            no halos), then wait and compute the boundary: the
//	            textbook overlap structure;
//	split+probe — the same, with Iprobe calls inside the interior
//	            computation to force library progress, the paper's SP
//	            fix.
//
// The instrumentation shows why "split" alone often fails on a
// polling library and what the probe calls buy.
//
// Run with: go run ./examples/stencil
package main

import (
	"fmt"
	"os"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/mpi"
	"ovlp/internal/report"
)

const (
	procs    = 4    // 2x2 grid
	n        = 1536 // global grid edge
	sweeps   = 25
	flopRate = 1e9 // flops/sec, for converting stencil work to time
)

type variant struct {
	name   string
	probes int  // Iprobes per interior computation
	split  bool // interior/boundary split with late Wait
}

func main() {
	variants := []variant{
		{name: "naive"},
		{name: "split", split: true},
		{name: "split+probe", split: true, probes: 3},
	}
	t := report.NewTable("2-D Jacobi halo exchange on a 2x2 grid — three code structures",
		"variant", "min overlap%", "max overlap%", "MPI time", "run time")
	for _, v := range variants {
		res := run(v)
		tot := res.Reports[0].Total()
		t.AddRow(v.name, tot.MinPercent(), tot.MaxPercent(),
			res.MPITimes[0].Round(time.Microsecond),
			res.Duration.Round(time.Microsecond))
	}
	t.Render(os.Stdout)
	fmt.Println("\nThe split structure only pays off once the library makes progress")
	fmt.Println("during the interior computation — the probe calls supply that, just")
	fmt.Println("as the paper's Iprobe insertion does for NAS SP.")
}

func run(v variant) cluster.Result {
	return cluster.Run(cluster.Config{
		Procs: procs,
		MPI: mpi.Config{
			Protocol:   mpi.DirectRDMARead,
			Instrument: &mpi.InstrumentConfig{},
		},
	}, func(r *mpi.Rank) {
		local := n / 2 // 2x2 grid
		haloBytes := 8 * local
		_ = haloBytes
		interior := time.Duration(float64(5*local*local) / flopRate * 1e9)
		boundary := time.Duration(float64(5*4*local) / flopRate * 1e9)

		row, col := r.ID()/2, r.ID()%2
		north := ((row+1)%2)*2 + col
		south := ((row+1)%2)*2 + col // 2-row torus: same peer both ways
		west := row*2 + (col+1)%2
		east := row*2 + (col+1)%2

		// Halos are ~12 KiB each: rendezvous territory where overlap
		// is won or lost.
		halo := 16 << 10

		for s := 0; s < sweeps; s++ {
			recvs := []*mpi.Request{
				r.Irecv(north, 4*s+0), r.Irecv(south, 4*s+1),
				r.Irecv(west, 4*s+2), r.Irecv(east, 4*s+3),
			}
			sends := []*mpi.Request{
				r.Isend(south, 4*s+0, halo), r.Isend(north, 4*s+1, halo),
				r.Isend(east, 4*s+2, halo), r.Isend(west, 4*s+3, halo),
			}
			if !v.split {
				// Naive: finish communication first, then compute.
				r.Waitall(append(recvs, sends...)...)
				r.Compute(interior + boundary)
				continue
			}
			// Split: interior needs no halos — compute it while the
			// exchange is in flight, optionally nudging progress.
			slices := v.probes + 1
			for k := 0; k < slices; k++ {
				r.Compute(interior / time.Duration(slices))
				if k < v.probes {
					r.Iprobe(mpi.AnySource, mpi.AnyTag)
				}
			}
			r.Waitall(append(recvs, sends...)...)
			r.Compute(boundary)
		}
		r.Barrier()
	})
}
