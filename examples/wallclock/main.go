// Wallclock: the instrumentation framework on real code, real time.
//
// Everything else in this repository runs in simulated virtual time,
// but the overlap monitor itself is substrate-independent: it needs
// only a Clock and the four events. This example instruments a real
// Go producer/consumer pipeline in which "communication" is an
// asynchronous buffer copy performed by a background goroutine (the
// role the DMA engine plays on a real NIC) and "computation" is an
// actual checksum loop.
//
// Two pipeline structures are compared, mirroring the paper's
// blocking-versus-nonblocking story: waiting for each copy before
// computing, versus starting the copy and computing while it runs.
//
// Run with: go run ./examples/wallclock
package main

import (
	"fmt"
	"time"

	"ovlp/internal/calib"
	"ovlp/internal/overlap"
)

const (
	blockWords = 1 << 21 // 16 MiB of int64s per block
	rounds     = 24
)

// copier is the "NIC": it copies blocks in the background and posts a
// completion when done.
type copier struct {
	src, dst []int64
	done     chan struct{}
}

func newCopier() *copier {
	return &copier{
		src:  make([]int64, blockWords),
		dst:  make([]int64, blockWords),
		done: make(chan struct{}, 1),
	}
}

// start launches the asynchronous copy.
func (c *copier) start() {
	go func() {
		copy(c.dst, c.src)
		c.done <- struct{}{}
	}()
}

// wait blocks until the in-flight copy completes.
func (c *copier) wait() { <-c.done }

// compute is the real computation overlapped with the copy: a checksum
// over an unrelated buffer.
func compute(buf []int64) int64 {
	var sum int64
	for i := range buf {
		sum += buf[i] ^ int64(i)
	}
	return sum
}

// calibrate measures the a-priori "transfer time" of one block copy —
// the analogue of running perf_main before the application.
func calibrate(c *copier) *calib.Table {
	const reps = 5
	var total time.Duration
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		c.start()
		c.wait()
		total += time.Since(t0)
	}
	table, err := calib.NewTable([]calib.Point{
		{Size: blockWords * 8, Time: total / reps},
	})
	if err != nil {
		panic(err)
	}
	return table
}

// run executes the pipeline, instrumented, and returns the report.
func run(table *calib.Table, overlapped bool) *overlap.Report {
	c := newCopier()
	work := make([]int64, blockWords)
	mon := overlap.NewMonitor(overlap.Config{
		Clock: overlap.NewWallClock(),
		Table: table,
	})

	var sink int64
	for i := 0; i < rounds; i++ {
		id := uint64(i + 1)
		mon.CallEnter() // "Isend": post the copy
		mon.XferBegin(id, blockWords*8)
		c.start()
		mon.CallExit()

		if overlapped {
			sink += compute(work) // compute while the copy runs
		}

		mon.CallEnter() // "Wait"
		c.wait()
		mon.XferEnd(id, 0)
		mon.CallExit()

		if !overlapped {
			sink += compute(work) // compute after the copy
		}
	}
	_ = sink
	return mon.Finalize()
}

func main() {
	c := newCopier()
	table := calibrate(c)
	fmt.Printf("calibrated: one %d MiB copy takes %v\n\n",
		blockWords*8>>20, table.XferTime(blockWords*8).Round(time.Microsecond))

	for _, overlapped := range []bool{false, true} {
		name := "copy-then-compute"
		if overlapped {
			name = "copy-while-computing"
		}
		rep := run(table, overlapped)
		tot := rep.Total()
		fmt.Printf("%-20s  wall %8v   data %8v   overlap min %5.1f%%  max %5.1f%%\n",
			name,
			rep.Duration.Round(time.Millisecond),
			tot.DataTransferTime.Round(time.Millisecond),
			tot.MinPercent(), tot.MaxPercent())
	}
	fmt.Println("\nThe same bounds algorithm that characterized the simulated MPI")
	fmt.Println("libraries measures a live Go pipeline: the overlapped structure's")
	fmt.Println("minimum bound certifies how much copy time was genuinely hidden.")
}
