module ovlp

go 1.22
