// Package armci implements a one-sided communication library in the
// style of ARMCI 1.1, the third system the paper instruments.
//
// ARMCI's remote memory access operations (Put/Get and their
// non-blocking forms) are inherently non-blocking and complete
// asynchronously: once posted, the NIC moves the data with no
// involvement from either host's application thread. This is the
// architectural contrast to the polling MPI implementations — and the
// reason the paper's ARMCI experiments (NAS MG, Sec. 4.4) report up to
// 99% maximum overlap for the non-blocking variant.
//
// The same overlap instrumentation is embedded: blocking calls stamp
// XFER_BEGIN and XFER_END inside one library call (case 1: zero
// overlap), while a non-blocking operation stamps XFER_BEGIN in the
// initiating call and XFER_END where completion is detected, letting
// interleaved computation count toward the bounds.
package armci

import (
	"errors"
	"fmt"
	"time"

	"ovlp/internal/calib"
	"ovlp/internal/fabric"
	"ovlp/internal/overlap"
	"ovlp/internal/trace"
	"ovlp/internal/vtime"
)

// Sentinel errors for communication failures under an active fault
// plan, wrapped in a *CommError (match with errors.Is).
var (
	ErrTimeout         = errors.New("armci: communication timed out")
	ErrPeerUnreachable = errors.New("armci: peer unreachable")
)

// CommError is the structured failure of a one-sided operation,
// raised as a panic from the failing call and recovered into an
// ordinary error by cluster.RunARMCIE.
type CommError struct {
	Proc     int
	Peer     int
	Op       string
	Attempts int
	err      error
}

func (e *CommError) Error() string {
	return fmt.Sprintf("armci: proc %d: %s to proc %d failed after %d attempt(s): %v",
		e.Proc, e.Op, e.Peer, e.Attempts, e.err)
}

func (e *CommError) Unwrap() error { return e.err }

// InstrumentConfig enables the overlap instrumentation (see the mpi
// package's equivalent).
type InstrumentConfig struct {
	Table        *calib.Table
	QueueSize    int
	BinBounds    []int
	ModelCost    bool
	TraceSinkFor func(rank int) func(overlap.Event)
}

// Config parameterizes a World.
type Config struct {
	// Instrument enables instrumentation; nil runs uninstrumented.
	Instrument *InstrumentConfig
	// Reliable enables the software reliable-delivery layer (see the
	// mpi package's equivalent). Required under an active fault plan.
	Reliable *fabric.ReliableParams
	// Tracer, if non-nil, receives structured trace records (see the
	// mpi package's equivalent): one span per outermost library call
	// plus the overlap monitor's event stream.
	Tracer *trace.Tracer
}

// World is a set of ARMCI processes over one fabric.
type World struct {
	sim     *vtime.Sim
	fab     *fabric.Fabric
	cfg     Config
	procs   []*Proc
	reports []*overlap.Report
	errs    []error
}

// NewWorld creates a world spanning every fabric node.
func NewWorld(sim *vtime.Sim, fab *fabric.Fabric, cfg Config) *World {
	w := &World{sim: sim, fab: fab, cfg: cfg,
		reports: make([]*overlap.Report, fab.Nodes()),
		errs:    make([]error, fab.Nodes())}
	for i := 0; i < fab.Nodes(); i++ {
		w.procs = append(w.procs, &Proc{
			w:     w,
			id:    i,
			nic:   fab.NIC(fabric.NodeID(i)),
			wrMap: make(map[uint64]*Handle),
		})
	}
	return w
}

// Size returns the number of processes.
func (w *World) Size() int { return len(w.procs) }

// Start spawns one proc per process executing main; run the simulation
// afterwards.
func (w *World) Start(main func(p *Proc)) {
	for _, pr := range w.procs {
		pr := pr
		w.sim.Spawn(fmt.Sprintf("armci%d", pr.id), func(vp *vtime.Proc) {
			pr.attach(vp)
			defer pr.recoverAbort()
			main(pr)
			pr.finalizeReport()
		})
	}
}

// RankErrors returns each process's recovered structured failure, nil
// entries for processes that finished cleanly; valid after the
// simulation has run. See mpi.World.RankErrors for the semantics.
func (w *World) RankErrors() []error { return w.errs }

// Reports returns per-process reports after the run.
func (w *World) Reports() []*overlap.Report { return w.reports }

// Handle identifies an outstanding non-blocking operation.
type Handle struct {
	done   bool
	xferID uint64
	size   int

	// repost parameters, kept so a failed completion can reissue the op
	dst, block, count int
	get               bool
	attempts          int
}

// Done reports completion without making progress.
func (h *Handle) Done() bool { return h.done }

// barrierToken synchronizes Barrier rounds.
type barrierToken struct {
	seq, round int
}

// Proc is one process's handle to the library.
type Proc struct {
	w    *World
	id   int
	proc *vtime.Proc
	nic  *fabric.NIC
	rel  *fabric.Reliable // reliable delivery, nil unless Config.Reliable
	mon  *overlap.Monitor

	wrMap       map[uint64]*Handle
	outstanding int // incomplete non-blocking ops (for Fence)
	tokens      map[barrierToken]int
	barrierSeq  int

	depth   int
	enterAt vtime.Time
	curOp   string
	curPeer int
	curSize int64
	libTime time.Duration
	waiting bool

	trk       *trace.Track  // nil when untraced
	traceCost time.Duration // modelled cost per call-span emission
}

type procClock struct{ p *vtime.Proc }

func (c procClock) Now() time.Duration { return c.p.Now().Duration() }

func (p *Proc) attach(vp *vtime.Proc) {
	p.proc = vp
	p.tokens = make(map[barrierToken]int)
	p.nic.SetNotify(func() { p.proc.Unpark() })
	if rp := p.w.cfg.Reliable; rp != nil {
		p.rel = fabric.NewReliable(p.nic, *rp, func() { p.proc.Unpark() })
	}
	if tr := p.w.cfg.Tracer; tr != nil {
		p.trk = tr.Track(trace.GroupHost, vp.ID(), vp.Name())
		p.trk.Instant("armci", "attach", vp.Now(), trace.None)
	}
	if ic := p.w.cfg.Instrument; ic != nil {
		mc := overlap.Config{
			Clock:       procClock{vp},
			Table:       ic.Table,
			QueueSize:   ic.QueueSize,
			BinBounds:   ic.BinBounds,
			ClockDomain: string(vp.Sim().ClockDomain()),
		}
		if ic.ModelCost {
			mc.Charge = func(d time.Duration) { vp.Compute(d) }
			mc.EventCost = 40 * time.Nanosecond
			mc.DrainCostPerEvent = 25 * time.Nanosecond
			if p.trk != nil {
				p.traceCost = mc.EventCost
			}
		}
		if ic.TraceSinkFor != nil {
			mc.TraceSink = ic.TraceSinkFor(p.id)
		}
		if p.trk != nil {
			mc.Sink = trace.OverlapSink(p.trk, 0, func(idx int32) string { return p.mon.RegionName(idx) })
			m := p.w.cfg.Tracer.Metrics()
			drains := m.Counter("overlap.drains")
			drained := m.Counter("overlap.drained_events")
			batch := m.Gauge("overlap.drain_batch")
			trk := p.trk
			mc.OnDrain = func(n int) {
				drains.Inc()
				drained.Add(int64(n))
				batch.Set(int64(n))
				trk.Instant("overlap", "queue-drain", vp.Now(), trace.Args{Peer: trace.NoPeer, Size: int64(n)})
			}
		}
		p.mon = overlap.NewMonitor(mc)
	}
}

func (p *Proc) finalizeReport() {
	if p.rel != nil {
		// Quiesce unacknowledged sequenced sends (barrier tokens) before
		// exiting, so their retransmission timers are never stranded
		// without a progress engine.
		p.enter("Finalize")
		p.waitUntil(func() bool { return p.rel.Outstanding() == 0 })
		p.exit()
	}
	if p.mon != nil {
		rep := p.mon.Finalize()
		rep.Rank = p.id
		p.w.reports[p.id] = rep
	}
}

// recoverAbort intercepts the process's structured failure panic (a
// spent retry budget): the error is recorded for World.RankErrors, the
// interrupted call's accounting is unwound without quiescing, and the
// report is still produced. Non-error panics are bugs and propagate.
func (p *Proc) recoverAbort() {
	v := recover()
	if v == nil {
		return
	}
	err, ok := v.(error)
	if !ok {
		panic(v)
	}
	p.w.errs[p.id] = err
	if p.depth > 0 {
		for p.depth > 0 {
			p.mon.CallExit()
			p.depth--
		}
		p.libTime += p.proc.Now().Sub(p.enterAt)
	}
	if p.mon != nil {
		rep := p.mon.Finalize()
		rep.Rank = p.id
		p.w.reports[p.id] = rep
	}
}

// ID returns the process id.
func (p *Proc) ID() int { return p.id }

// Size returns the number of processes.
func (p *Proc) Size() int { return p.w.Size() }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.proc.Now().Duration() }

// Compute models d of user computation.
func (p *Proc) Compute(d time.Duration) { p.proc.Compute(d) }

// LibTime returns the aggregate time spent inside library calls.
func (p *Proc) LibTime() time.Duration { return p.libTime }

// RelStats returns the proc's reliable-delivery counters (zero value
// when the reliability layer is disabled).
func (p *Proc) RelStats() fabric.RelStats {
	if p.rel == nil {
		return fabric.RelStats{}
	}
	return p.rel.Stats()
}

// PushRegion and PopRegion delimit a monitored section.
func (p *Proc) PushRegion(name string) { p.mon.PushRegion(name) }

// PopRegion closes the innermost monitored section.
func (p *Proc) PopRegion() { p.mon.PopRegion() }

func (p *Proc) enter(op string) {
	p.enterPS(op, -1, -1)
}

// enterPS is enter carrying the call's peer and transfer size for the
// trace span; calls without them pass -1.
func (p *Proc) enterPS(op string, peer int, size int64) {
	p.depth++
	if p.depth == 1 {
		p.enterAt = p.proc.Now()
		p.curOp = op
		p.curPeer = peer
		p.curSize = size
	}
	p.mon.CallEnter()
}

func (p *Proc) exit() {
	p.mon.CallExit()
	p.depth--
	if p.depth == 0 {
		if p.trk != nil {
			// Charge the span's modelled emission cost before reading the
			// clock, so the span includes its own overhead (as in mpi).
			if p.traceCost > 0 {
				p.proc.Compute(p.traceCost)
			}
			p.trk.Span("armci", p.curOp, p.enterAt, p.proc.Now(),
				trace.Args{Peer: p.curPeer, Size: p.curSize})
		}
		p.libTime += p.proc.Now().Sub(p.enterAt)
	}
}

// progress drains completions and packets; returns whether anything
// advanced. Unlike the MPI library there is no protocol to pump: data
// movement needs no host participation, so "progress" only means
// noticing completions.
func (p *Proc) progress() bool {
	did := false
	for {
		cqe := p.nic.PollCQ(p.proc)
		if cqe == nil {
			break
		}
		did = true
		if p.rel != nil && p.rel.TakeWR(cqe.WRID) {
			continue // reliable token send; ack-driven
		}
		h, ok := p.wrMap[cqe.WRID]
		if !ok {
			continue
		}
		delete(p.wrMap, cqe.WRID)
		if cqe.Status != fabric.StatusOK {
			p.handleFailedCQE(h, cqe)
			continue
		}
		p.mon.XferEnd(h.xferID, h.size)
		h.done = true
		p.outstanding--
	}
	for {
		pkt := p.nic.PollInbox(p.proc)
		if pkt == nil {
			break
		}
		did = true
		if p.rel != nil {
			if a, ok := pkt.Payload.(fabric.Ack); ok {
				p.rel.HandleAck(a)
				continue
			}
			p.rel.NotePeerAlive(pkt.From)
			if p.rel.Duplicate(pkt) {
				continue
			}
		}
		tok := pkt.Payload.(barrierToken)
		p.tokens[tok]++
	}
	if p.rel != nil {
		d, err := p.rel.RunDue(p.proc)
		if err != nil {
			p.commFail(err)
		}
		if d {
			did = true
		}
	}
	return did
}

// commFail converts a delivery failure into the library's structured
// error and aborts the proc with it (recovered by cluster.RunARMCIE).
func (p *Proc) commFail(err error) {
	var de *fabric.DeliveryError
	if errors.As(err, &de) {
		base := ErrTimeout
		if de.PeerSilent {
			base = ErrPeerUnreachable
		}
		panic(&CommError{Proc: p.id, Peer: int(de.Dst), Op: de.Op, Attempts: de.Attempts, err: base})
	}
	panic(err)
}

// handleFailedCQE reposts a failed one-sided operation with backoff, or
// fails the proc once the retry budget is spent.
func (p *Proc) handleFailedCQE(h *Handle, cqe *fabric.CQE) {
	attempts := h.attempts + 1
	if p.rel == nil {
		p.commFail(&fabric.DeliveryError{Dst: fabric.NodeID(h.dst), Op: cqe.Kind.String(), Attempts: attempts})
	}
	err := p.rel.Repost(fabric.NodeID(h.dst), cqe.Kind.String(), h.xferID, attempts, func(vp *vtime.Proc) {
		h.attempts = attempts
		var wr uint64
		switch {
		case h.get:
			wr = p.nic.RDMARead(vp, fabric.NodeID(h.dst), h.size, h.xferID)
		case h.count > 1:
			wr = p.nic.RDMAWriteStrided(vp, fabric.NodeID(h.dst), h.count, h.block, h.xferID, nil)
		default:
			wr = p.nic.RDMAWrite(vp, fabric.NodeID(h.dst), h.size, h.xferID, nil)
		}
		p.wrMap[wr] = h
	})
	if err != nil {
		p.commFail(err)
	}
}

func (p *Proc) waitUntil(cond func() bool) {
	for !cond() {
		if p.progress() {
			continue
		}
		if cond() || p.nic.Pending() || (p.rel != nil && p.rel.HasDue()) {
			continue
		}
		p.waiting = true
		p.proc.Park("armci.waitUntil")
		p.waiting = false
	}
}

// post issues the one-sided operation and returns its handle. count>1
// makes it a strided (vectored) put of count segments of size bytes.
func (p *Proc) post(dst, size, count int, get bool) *Handle {
	if count < 1 {
		panic("armci: strided operation needs at least one segment")
	}
	xid := p.w.fab.NewXferID()
	switch {
	case get:
		p.w.fab.TagXfer(xid, "get")
	case count > 1:
		p.w.fab.TagXfer(xid, "put-strided")
	default:
		p.w.fab.TagXfer(xid, "put")
	}
	h := &Handle{xferID: xid, size: size * count, dst: dst, block: size, count: count, get: get}
	p.mon.XferBegin(xid, size*count)
	var wr uint64
	switch {
	case get:
		wr = p.nic.RDMARead(p.proc, fabric.NodeID(dst), size*count, xid)
	case count > 1:
		wr = p.nic.RDMAWriteStrided(p.proc, fabric.NodeID(dst), count, size, xid, nil)
	default:
		wr = p.nic.RDMAWrite(p.proc, fabric.NodeID(dst), size, xid, nil)
	}
	p.wrMap[wr] = h
	p.outstanding++
	return h
}

// NbPut starts a non-blocking contiguous put of size bytes to dst.
func (p *Proc) NbPut(dst, size int) *Handle {
	p.enterPS("NbPut", dst, int64(size))
	defer p.exit()
	return p.post(dst, size, 1, false)
}

// NbPutStrided starts a non-blocking strided put of count segments of
// block bytes each — ARMCI's vectored remote update (ARMCI_NbPutS).
// Each segment pays its own per-packet wire cost.
func (p *Proc) NbPutStrided(dst, count, block int) *Handle {
	p.enterPS("NbPutStrided", dst, int64(count)*int64(block))
	defer p.exit()
	return p.post(dst, block, count, false)
}

// NbGet starts a non-blocking contiguous get of size bytes from dst.
func (p *Proc) NbGet(dst, size int) *Handle {
	p.enterPS("NbGet", dst, int64(size))
	defer p.exit()
	return p.post(dst, size, 1, true)
}

// WaitHandle blocks until the operation completes.
func (p *Proc) WaitHandle(h *Handle) {
	p.enter("WaitHandle")
	defer p.exit()
	p.waitUntil(func() bool { return h.done })
}

// Put is the blocking put: initiation and completion inside one
// library call, so the instrumentation correctly reports zero overlap.
func (p *Proc) Put(dst, size int) {
	p.enterPS("Put", dst, int64(size))
	defer p.exit()
	h := p.post(dst, size, 1, false)
	p.waitUntil(func() bool { return h.done })
}

// PutStrided is the blocking strided put (ARMCI_PutS).
func (p *Proc) PutStrided(dst, count, block int) {
	p.enterPS("PutStrided", dst, int64(count)*int64(block))
	defer p.exit()
	h := p.post(dst, block, count, false)
	p.waitUntil(func() bool { return h.done })
}

// Get is the blocking get.
func (p *Proc) Get(dst, size int) {
	p.enterPS("Get", dst, int64(size))
	defer p.exit()
	h := p.post(dst, size, 1, true)
	p.waitUntil(func() bool { return h.done })
}

// FenceAll blocks until every outstanding one-sided operation issued
// by this process has completed.
func (p *Proc) FenceAll() {
	p.enter("FenceAll")
	defer p.exit()
	p.waitUntil(func() bool { return p.outstanding == 0 })
}

// Barrier synchronizes all processes (dissemination over message-layer
// tokens; tokens are control traffic and do not appear as data
// transfers in the instrumentation). It implies FenceAll, like
// ARMCI_Barrier.
func (p *Proc) Barrier() {
	p.enter("Barrier")
	defer p.exit()
	p.waitUntil(func() bool { return p.outstanding == 0 })
	seq := p.barrierSeq
	p.barrierSeq++
	n := p.Size()
	for k, round := 1, 0; k < n; k, round = k<<1, round+1 {
		dst := (p.id + k) % n
		tok := barrierToken{seq: seq, round: round}
		if p.rel != nil {
			p.rel.Send(p.proc, fabric.NodeID(dst), 0, 0, tok, "barrier", nil)
		} else {
			p.nic.Send(p.proc, fabric.NodeID(dst), 0, 0, tok)
		}
		p.waitUntil(func() bool { return p.tokens[tok] > 0 })
		p.tokens[tok]--
		if p.tokens[tok] == 0 {
			delete(p.tokens, tok)
		}
	}
	// Drain our token sends' completions so they never linger.
	p.progress()
}
