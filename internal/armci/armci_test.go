package armci_test

import (
	"testing"
	"time"

	"ovlp/internal/armci"
	"ovlp/internal/cluster"
)

func runA(t *testing.T, n int, main func(p *armci.Proc)) cluster.ARMCIResult {
	t.Helper()
	return cluster.RunARMCI(cluster.ARMCIConfig{
		Procs:       n,
		ARMCI:       armci.Config{Instrument: &armci.InstrumentConfig{}},
		RecordTruth: true,
	}, main)
}

func TestBlockingPutZeroOverlap(t *testing.T) {
	res := runA(t, 2, func(p *armci.Proc) {
		if p.ID() == 0 {
			for i := 0; i < 10; i++ {
				p.Put(1, 256<<10)
				p.Compute(time.Millisecond)
			}
		}
		p.Barrier()
	})
	tot := res.Reports[0].Total()
	if tot.Count < 10 {
		t.Fatalf("expected >=10 transfers, got %d", tot.Count)
	}
	if tot.MaxOverlapped != 0 {
		t.Errorf("blocking puts reported max overlap %v, want 0 (same-call case)", tot.MaxOverlapped)
	}
}

func TestNonblockingPutHighOverlap(t *testing.T) {
	res := runA(t, 2, func(p *armci.Proc) {
		if p.ID() == 0 {
			for i := 0; i < 10; i++ {
				h := p.NbPut(1, 256<<10)
				p.Compute(time.Millisecond) // plenty to hide ~290us transfer
				p.WaitHandle(h)
			}
		}
		p.Barrier()
	})
	tot := res.Reports[0].Total()
	if tot.MaxPercent() < 95 {
		t.Errorf("non-blocking put max overlap %.1f%%, want ~100", tot.MaxPercent())
	}
	if tot.MinPercent() < 80 {
		t.Errorf("non-blocking put min overlap %.1f%%, want high", tot.MinPercent())
	}
}

func TestGetMovesDataFromRemote(t *testing.T) {
	res := runA(t, 2, func(p *armci.Proc) {
		if p.ID() == 0 {
			p.Get(1, 1<<20)
		}
		p.Barrier()
	})
	found := false
	for _, tr := range res.Transfers {
		if tr.Size == 1<<20 && tr.Src == 1 && tr.Dst == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("get did not source data from the remote node")
	}
}

func TestNbGetOverlap(t *testing.T) {
	res := runA(t, 2, func(p *armci.Proc) {
		if p.ID() == 0 {
			h := p.NbGet(1, 512<<10)
			p.Compute(2 * time.Millisecond)
			p.WaitHandle(h)
		}
		p.Barrier()
	})
	if tot := res.Reports[0].Total(); tot.MaxPercent() < 95 {
		t.Errorf("NbGet max overlap %.1f%%, want ~100", tot.MaxPercent())
	}
}

func TestFenceAllCompletesEverything(t *testing.T) {
	runA(t, 3, func(p *armci.Proc) {
		var hs []*armci.Handle
		for i := 0; i < 5; i++ {
			hs = append(hs, p.NbPut((p.ID()+1)%p.Size(), 64<<10))
		}
		p.FenceAll()
		for i, h := range hs {
			if !h.Done() {
				t.Errorf("proc %d handle %d not done after FenceAll", p.ID(), i)
			}
		}
		p.Barrier()
	})
}

func TestBarrierSynchronizesARMCI(t *testing.T) {
	var after [4]time.Duration
	runA(t, 4, func(p *armci.Proc) {
		if p.ID() == 3 {
			p.Compute(10 * time.Millisecond)
		}
		p.Barrier()
		after[p.ID()] = p.Now()
	})
	for i, ts := range after {
		if ts < 10*time.Millisecond {
			t.Errorf("proc %d left barrier at %v before slow proc arrived", i, ts)
		}
	}
}

func TestRepeatedBarriers(t *testing.T) {
	res := runA(t, 4, func(p *armci.Proc) {
		for i := 0; i < 50; i++ {
			p.Barrier()
		}
	})
	if res.Duration <= 0 {
		t.Fatal("no time elapsed")
	}
}

func TestLibTimeTracked(t *testing.T) {
	res := runA(t, 2, func(p *armci.Proc) {
		if p.ID() == 0 {
			p.Put(1, 1<<20) // >1ms of library time
		}
		p.Barrier()
	})
	if res.LibTimes[0] < time.Millisecond {
		t.Errorf("proc 0 lib time %v, want >1ms", res.LibTimes[0])
	}
}

func TestBarrierTokensAreNotDataTransfers(t *testing.T) {
	res := runA(t, 4, func(p *armci.Proc) {
		for i := 0; i < 10; i++ {
			p.Barrier()
		}
	})
	for i, rep := range res.Reports {
		if n := rep.Total().Count; n != 0 {
			t.Errorf("proc %d recorded %d data transfers from barriers alone", i, n)
		}
	}
}
