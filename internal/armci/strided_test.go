package armci_test

import (
	"testing"
	"time"

	"ovlp/internal/armci"
	"ovlp/internal/cluster"
)

func TestPutStridedMovesAllSegments(t *testing.T) {
	const count, block = 32, 4096
	res := runA(t, 2, func(p *armci.Proc) {
		if p.ID() == 0 {
			p.PutStrided(1, count, block)
		}
		p.Barrier()
	})
	found := false
	for _, tr := range res.Transfers {
		if tr.Size == count*block {
			found = true
		}
	}
	if !found {
		t.Fatalf("strided put of %d bytes missing from ground truth", count*block)
	}
	tot := res.Reports[0].Total()
	if tot.Count != 1 {
		t.Fatalf("strided put should be one instrumented transfer, got %d", tot.Count)
	}
}

func TestStridedSlowerThanContiguousSameBytes(t *testing.T) {
	run := func(strided bool) time.Duration {
		res := cluster.RunARMCI(cluster.ARMCIConfig{Procs: 2}, func(p *armci.Proc) {
			if p.ID() == 0 {
				for i := 0; i < 10; i++ {
					if strided {
						p.PutStrided(1, 256, 1024) // 256 KiB in 1 KiB segments
					} else {
						p.Put(1, 256<<10)
					}
				}
			}
			p.Barrier()
		})
		return res.Duration
	}
	contig, strided := run(false), run(true)
	if strided <= contig {
		t.Errorf("strided (%v) should pay per-segment overhead over contiguous (%v)", strided, contig)
	}
}

func TestNbPutStridedOverlaps(t *testing.T) {
	res := runA(t, 2, func(p *armci.Proc) {
		if p.ID() == 0 {
			for i := 0; i < 5; i++ {
				h := p.NbPutStrided(1, 64, 4096)
				p.Compute(2 * time.Millisecond)
				p.WaitHandle(h)
			}
		}
		p.Barrier()
	})
	if tot := res.Reports[0].Total(); tot.MaxPercent() < 90 {
		t.Errorf("non-blocking strided put max overlap %.1f%%, want high", tot.MaxPercent())
	}
}

func TestStridedRejectsZeroSegments(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cluster.RunARMCI(cluster.ARMCIConfig{Procs: 2}, func(p *armci.Proc) {
		if p.ID() == 0 {
			p.PutStrided(1, 0, 1024)
		}
	})
}
