// Package calib provides the a-priori transfer-time characterization
// the overlap bounds algorithm depends on.
//
// The paper measures data-transfer times for a ladder of message sizes
// with the perf_main utility before the application runs, stores them
// in a disk file, and loads the file into memory during MPI_Init. This
// package implements the table: construction from measured points,
// interpolated lookup, and a plain-text file format.
package calib

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

// Point is one measured (message size, transfer time) sample.
type Point struct {
	Size int           // message size in bytes
	Time time.Duration // one-way transfer time
}

// Table maps message sizes to transfer times. Lookups between sample
// points interpolate linearly; lookups beyond the largest sample
// extrapolate using the bandwidth implied by the last segment, and
// lookups below the smallest sample return the first sample's time
// (latency-bound regime).
type Table struct {
	points []Point
	// domain names the clock the samples were measured against
	// ("virtual", "real", "fake"); empty means virtual — tables
	// written before clock domains existed carry no marker. A table
	// is only valid for runs on the same kind of clock: virtual-time
	// transfer costs say nothing about a machine's real wire, and
	// vice versa.
	domain string
}

// NewTable builds a table from measured points. Points are sorted by
// size; duplicate sizes and non-positive times are rejected.
func NewTable(points []Point) (*Table, error) {
	if len(points) == 0 {
		return nil, errors.New("calib: empty table")
	}
	ps := append([]Point(nil), points...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Size < ps[j].Size })
	for i, p := range ps {
		if p.Size < 0 {
			return nil, fmt.Errorf("calib: negative size %d", p.Size)
		}
		if p.Time <= 0 {
			return nil, fmt.Errorf("calib: non-positive time %v for size %d", p.Time, p.Size)
		}
		if i > 0 && ps[i-1].Size == p.Size {
			return nil, fmt.Errorf("calib: duplicate size %d", p.Size)
		}
	}
	return &Table{points: ps}, nil
}

// Points returns a copy of the table's samples in increasing size
// order.
func (t *Table) Points() []Point { return append([]Point(nil), t.points...) }

// Domain returns the clock domain the table was measured in; the
// empty string (a pre-domain table) normalizes to "virtual".
func (t *Table) Domain() string {
	if t.domain == "" {
		return "virtual"
	}
	return t.domain
}

// SetDomain stamps the clock domain the table's samples were measured
// against. It is written as a header line by WriteTo and recovered by
// Read.
func (t *Table) SetDomain(d string) { t.domain = d }

// XferTime returns the estimated transfer time for a message of the
// given size.
func (t *Table) XferTime(size int) time.Duration {
	ps := t.points
	if size <= ps[0].Size {
		return ps[0].Time
	}
	last := ps[len(ps)-1]
	if size >= last.Size {
		if len(ps) == 1 {
			return last.Time
		}
		prev := ps[len(ps)-2]
		return last.Time + extrapolate(prev, last, size-last.Size)
	}
	i := sort.Search(len(ps), func(i int) bool { return ps[i].Size >= size })
	lo, hi := ps[i-1], ps[i]
	frac := float64(size-lo.Size) / float64(hi.Size-lo.Size)
	return lo.Time + time.Duration(frac*float64(hi.Time-lo.Time))
}

func extrapolate(prev, last Point, extra int) time.Duration {
	perByte := float64(last.Time-prev.Time) / float64(last.Size-prev.Size)
	if perByte < 0 {
		perByte = 0
	}
	return time.Duration(perByte * float64(extra))
}

// WriteTo writes the table in its text format: one "size time_ns" pair
// per line, '#' starting comments. A "# clock-domain: <d>" header line
// records the domain for non-virtual tables (virtual tables stay
// byte-identical to the pre-domain format). It implements io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var n int64
	k, err := fmt.Fprintf(w, "# calib transfer-time table: size_bytes time_ns\n")
	n += int64(k)
	if err != nil {
		return n, err
	}
	if d := t.Domain(); d != "virtual" {
		k, err := fmt.Fprintf(w, "# clock-domain: %s\n", d)
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	for _, p := range t.points {
		k, err := fmt.Fprintf(w, "%d %d\n", p.Size, p.Time.Nanoseconds())
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// Read parses a table from its text format, recovering the
// clock-domain header when present.
func Read(r io.Reader) (*Table, error) {
	sc := bufio.NewScanner(r)
	var points []Point
	domain := ""
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if d, ok := strings.CutPrefix(text, "# clock-domain:"); ok {
			domain = strings.TrimSpace(d)
			continue
		}
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var size, ns int64
		if _, err := fmt.Sscanf(text, "%d %d", &size, &ns); err != nil {
			return nil, fmt.Errorf("calib: line %d: %w", line, err)
		}
		points = append(points, Point{Size: int(size), Time: time.Duration(ns)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	t, err := NewTable(points)
	if err != nil {
		return nil, err
	}
	t.domain = domain
	return t, nil
}

// Save writes the table to a file.
func (t *Table) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := t.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a table from a file.
func Load(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// StandardSizes is the ladder of message sizes a calibration sweep
// measures: powers of two from 1 byte to 4 MiB plus intermediate
// 1.5x points for better interpolation.
func StandardSizes() []int {
	var sizes []int
	for s := 1; s <= 4<<20; s *= 2 {
		sizes = append(sizes, s)
		if mid := s + s/2; s >= 64 && mid < 4<<20 {
			sizes = append(sizes, mid)
		}
	}
	return sizes
}
