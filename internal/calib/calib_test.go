package calib

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func mustTable(t *testing.T, points ...Point) *Table {
	t.Helper()
	tbl, err := NewTable(points)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestLookupExactPoints(t *testing.T) {
	tbl := mustTable(t,
		Point{Size: 100, Time: 10 * time.Microsecond},
		Point{Size: 1000, Time: 40 * time.Microsecond},
	)
	if got := tbl.XferTime(100); got != 10*time.Microsecond {
		t.Errorf("XferTime(100) = %v", got)
	}
	if got := tbl.XferTime(1000); got != 40*time.Microsecond {
		t.Errorf("XferTime(1000) = %v", got)
	}
}

func TestLookupInterpolates(t *testing.T) {
	tbl := mustTable(t,
		Point{Size: 0, Time: 10 * time.Microsecond},
		Point{Size: 1000, Time: 30 * time.Microsecond},
	)
	if got := tbl.XferTime(500); got != 20*time.Microsecond {
		t.Errorf("midpoint = %v, want 20µs", got)
	}
	if got := tbl.XferTime(250); got != 15*time.Microsecond {
		t.Errorf("quarter = %v, want 15µs", got)
	}
}

func TestLookupBelowSmallestIsLatencyBound(t *testing.T) {
	tbl := mustTable(t,
		Point{Size: 64, Time: 5 * time.Microsecond},
		Point{Size: 128, Time: 6 * time.Microsecond},
	)
	if got := tbl.XferTime(1); got != 5*time.Microsecond {
		t.Errorf("below-range lookup = %v, want the first sample", got)
	}
}

func TestLookupExtrapolatesBandwidth(t *testing.T) {
	// Last segment: 1000B per 10µs => 10ns/B.
	tbl := mustTable(t,
		Point{Size: 1000, Time: 10 * time.Microsecond},
		Point{Size: 2000, Time: 20 * time.Microsecond},
	)
	if got := tbl.XferTime(3000); got != 30*time.Microsecond {
		t.Errorf("extrapolated = %v, want 30µs", got)
	}
}

func TestSinglePointTable(t *testing.T) {
	tbl := mustTable(t, Point{Size: 100, Time: time.Microsecond})
	for _, size := range []int{1, 100, 100000} {
		if got := tbl.XferTime(size); got != time.Microsecond {
			t.Errorf("XferTime(%d) = %v", size, got)
		}
	}
}

func TestNewTableValidation(t *testing.T) {
	cases := []struct {
		name   string
		points []Point
	}{
		{"empty", nil},
		{"duplicate", []Point{{1, time.Microsecond}, {1, 2 * time.Microsecond}}},
		{"zero time", []Point{{1, 0}}},
		{"negative size", []Point{{-1, time.Microsecond}}},
	}
	for _, c := range cases {
		if _, err := NewTable(c.points); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestNewTableSortsInput(t *testing.T) {
	tbl := mustTable(t,
		Point{Size: 1000, Time: 30 * time.Microsecond},
		Point{Size: 10, Time: 3 * time.Microsecond},
	)
	ps := tbl.Points()
	if !sort.SliceIsSorted(ps, func(i, j int) bool { return ps[i].Size < ps[j].Size }) {
		t.Fatalf("points not sorted: %v", ps)
	}
}

func TestRoundTripText(t *testing.T) {
	orig := mustTable(t,
		Point{Size: 1, Time: 4051 * time.Nanosecond},
		Point{Size: 1024, Time: 5187 * time.Nanosecond},
		Point{Size: 1 << 20, Time: 1200 * time.Microsecond},
	)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := orig.Points(), back.Points()
	if len(a) != len(b) {
		t.Fatalf("point count %d != %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d: %v != %v", i, a[i], b[i])
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n100 5000\n  # indented comment\n200 9000\n"
	tbl, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Points()) != 2 {
		t.Fatalf("got %d points", len(tbl.Points()))
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not numbers\n")); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "xfer.table")
	orig := mustTable(t, Point{Size: 8, Time: 3 * time.Microsecond})
	if err := orig.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.XferTime(8) != 3*time.Microsecond {
		t.Fatal("loaded table differs")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestStandardSizesShape(t *testing.T) {
	sizes := StandardSizes()
	if sizes[0] != 1 {
		t.Errorf("first size %d, want 1", sizes[0])
	}
	if last := sizes[len(sizes)-1]; last != 4<<20 {
		t.Errorf("last size %d, want 4MiB", last)
	}
	if !sort.IntsAreSorted(sizes) {
		t.Error("sizes not ascending")
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] == sizes[i-1] {
			t.Fatalf("duplicate size %d", sizes[i])
		}
	}
}

// Property: with monotone non-decreasing sample times, XferTime is
// monotone non-decreasing in size, and every lookup lies within the
// sample range (or extrapolates beyond the last point, never below
// the last sample).
func TestQuickLookupMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 2
		points := make([]Point, n)
		size := 1
		tm := time.Duration(rng.Intn(1000) + 1)
		for i := 0; i < n; i++ {
			points[i] = Point{Size: size, Time: tm}
			size += rng.Intn(10000) + 1
			tm += time.Duration(rng.Intn(100000))
		}
		tbl, err := NewTable(points)
		if err != nil {
			return false
		}
		prev := time.Duration(-1)
		for s := 0; s < size+20000; s += rng.Intn(777) + 1 {
			got := tbl.XferTime(s)
			if got < prev {
				return false
			}
			prev = got
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: text round-trip is the identity on tables.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 1
		points := make([]Point, n)
		size := 0
		for i := range points {
			size += rng.Intn(100000) + 1
			points[i] = Point{Size: size, Time: time.Duration(rng.Intn(1<<30)) + 1}
		}
		tbl, err := NewTable(points)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if _, err := tbl.WriteTo(&buf); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		a, b := tbl.Points(), back.Points()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClockDomainRoundTrip(t *testing.T) {
	tbl, err := NewTable([]Point{{Size: 1, Time: time.Microsecond}, {Size: 1024, Time: 5 * time.Microsecond}})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Domain() != "virtual" {
		t.Fatalf("default domain = %q, want virtual", tbl.Domain())
	}
	// Virtual tables stay byte-identical to the pre-domain format.
	var virt bytes.Buffer
	if _, err := tbl.WriteTo(&virt); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(virt.Bytes(), []byte("clock-domain")) {
		t.Fatalf("virtual table carries a domain header:\n%s", virt.String())
	}

	tbl.SetDomain("real")
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("# clock-domain: real\n")) {
		t.Fatalf("real table missing domain header:\n%s", buf.String())
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Domain() != "real" {
		t.Fatalf("round-tripped domain = %q, want real", back.Domain())
	}
}
