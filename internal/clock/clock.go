// Package clock abstracts the passage of time behind a small Clock
// interface so the same instrumentation stack runs in deterministic
// virtual time, on the machine's monotonic clock, or against a fake
// clock in tests.
//
// Three implementations exist:
//
//   - Real() — wall time with monotonic reads. Sleep uses a hybrid
//     coarse-sleep + spin tail so modelled costs in the hundreds of
//     nanoseconds land within a few microseconds of target.
//   - vtime's Sim.Clock() — the virtual-time kernel viewed through
//     this interface (lives in internal/vtime to keep this package
//     dependency-free).
//   - NewFake / NewFakeAuto — a test clock advanced manually (or
//     auto-advanced on Sleep) that fires timers in timestamp order.
//
// The Domain a Clock reports is threaded through calibration tables,
// trace exports, and overlap reports so an artifact always says which
// kind of time its numbers are denominated in.
package clock

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Domain names the kind of time a clock keeps. Artifacts derived from
// a run (calibration tables, traces, reports) carry the domain so a
// virtual-time table is never silently applied to a wall-clock run or
// vice versa.
type Domain string

const (
	// Virtual is deterministic simulated time (the vtime kernel).
	Virtual Domain = "virtual"
	// RealDomain is the machine's monotonic wall clock.
	RealDomain Domain = "real"
	// FakeDomain is a manually- or auto-advanced test clock.
	FakeDomain Domain = "fake"
)

// ParseDomain validates a domain string. The empty string means
// Virtual: artifacts written before domains existed carry no marker.
func ParseDomain(s string) (Domain, bool) {
	switch Domain(s) {
	case "":
		return Virtual, true
	case Virtual, RealDomain, FakeDomain:
		return Domain(s), true
	}
	return "", false
}

// Clock is a source of time plus the blocking primitives the fabric
// and kernel need. Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current time. Real clocks return monotonic
	// readings; fake clocks return their internal time.
	Now() time.Time
	// Since is Now().Sub(t), using the monotonic reading when the
	// clock has one.
	Since(t time.Time) time.Duration
	// Sleep blocks the caller for d. Non-positive d returns
	// immediately.
	Sleep(d time.Duration)
	// AfterFunc runs fn on its own goroutine once d has elapsed and
	// returns a Timer whose Stop prevents an unfired fn from running.
	AfterFunc(d time.Duration, fn func()) Timer
	// NewTimer returns a Timer that delivers the firing time on C
	// after d.
	NewTimer(d time.Duration) Timer
	// Domain names the kind of time this clock keeps.
	Domain() Domain
}

// Timer is a cancellable pending firing, mirroring time.Timer's
// contract: Stop reports whether it prevented the firing, Reset
// re-arms and reports whether the timer had been active.
type Timer interface {
	// C delivers the firing time for timers made with NewTimer; it is
	// nil for AfterFunc timers.
	C() <-chan time.Time
	// Stop cancels the pending firing. It returns false if the timer
	// already fired or was stopped; a false return from an AfterFunc
	// timer does not guarantee fn has finished.
	Stop() bool
	// Reset re-arms the timer to fire after d, returning whether the
	// timer was active.
	Reset(d time.Duration) bool
}

// spinThreshold is the tail of every real Sleep that busy-waits
// instead of calling time.Sleep: the scheduler routinely oversleeps by
// tens of microseconds, which would swamp the sub-microsecond costs
// the fabric models (PostOverhead 250ns, PollOverhead 100ns).
const spinThreshold = 100 * time.Microsecond

// realClock keeps wall time with monotonic readings.
type realClock struct{}

// Real returns the wall clock. All readings carry Go's monotonic
// component, so Since is immune to wall-clock steps.
func Real() Clock { return realClock{} }

func (realClock) Now() time.Time                  { return time.Now() }
func (realClock) Since(t time.Time) time.Duration { return time.Since(t) }
func (realClock) Domain() Domain                  { return RealDomain }

// Sleep blocks for d with a precise tail: the bulk of the wait uses
// time.Sleep, the last spinThreshold spins on the monotonic clock.
// Callers sleeping modelled protocol costs (sub-µs) therefore get
// durations accurate to the spin granularity rather than to the
// scheduler's wake-up slop.
func (realClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	target := time.Now().Add(d)
	if d > spinThreshold {
		time.Sleep(d - spinThreshold)
	}
	for {
		rem := time.Until(target)
		if rem <= 0 {
			return
		}
		if rem > 5*time.Microsecond {
			runtime.Gosched()
		}
	}
}

// realTimer backs both AfterFunc and NewTimer for the real clock.
// AfterFunc timers run a goroutine doing a precise Sleep and then a
// compare-and-swap on a generation counter, so callbacks fire with
// the same accuracy as Sleep; NewTimer delegates to time.Timer
// (channel waiters tolerate scheduler slop anyway — they pay it on
// wake-up regardless).
//
// The generation counter is even while a firing is armed and odd once
// it fired or was stopped; Stop and the run goroutine race on one CAS
// so exactly one of them wins.
type realTimer struct {
	t   *time.Timer // nil for AfterFunc timers
	c   <-chan time.Time
	fn  func()
	gen atomic.Int64
}

func (t *realTimer) C() <-chan time.Time { return t.c }

// disarm moves an even (armed) generation to odd, reporting whether
// it was the one to do so.
func (t *realTimer) disarm() bool {
	for {
		g := t.gen.Load()
		if g&1 == 1 {
			return false
		}
		if t.gen.CompareAndSwap(g, g+1) {
			return true
		}
	}
}

func (t *realTimer) Stop() bool {
	if t.t != nil {
		return t.t.Stop()
	}
	return t.disarm()
}

func (t *realTimer) Reset(d time.Duration) bool {
	if t.t != nil {
		return t.t.Reset(d)
	}
	active := t.disarm()
	g := t.gen.Add(1) // odd → even: newly armed generation
	go t.run(d, g)
	return active
}

func (t *realTimer) run(d time.Duration, g int64) {
	realClock{}.Sleep(d)
	if t.gen.CompareAndSwap(g, g+1) {
		t.fn()
	}
}

func (realClock) AfterFunc(d time.Duration, fn func()) Timer {
	t := &realTimer{fn: fn}
	go t.run(d, 0)
	return t
}

func (realClock) NewTimer(d time.Duration) Timer {
	tt := time.NewTimer(d)
	return &realTimer{t: tt, c: tt.C}
}
