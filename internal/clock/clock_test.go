package clock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestParseDomain(t *testing.T) {
	cases := []struct {
		in   string
		want Domain
		ok   bool
	}{
		{"", Virtual, true},
		{"virtual", Virtual, true},
		{"real", RealDomain, true},
		{"fake", FakeDomain, true},
		{"wall", "", false},
	}
	for _, c := range cases {
		got, ok := ParseDomain(c.in)
		if ok != c.ok || got != c.want {
			t.Errorf("ParseDomain(%q) = %q, %v; want %q, %v", c.in, got, ok, c.want, c.ok)
		}
	}
}

// Zero-duration timers are already due: AfterFunc(0) fires before
// returning, NewTimer(0) has the firing time waiting on C.
func TestFakeZeroDurationTimers(t *testing.T) {
	f := NewFake(t0)
	fired := false
	f.AfterFunc(0, func() { fired = true })
	if !fired {
		t.Fatal("AfterFunc(0) did not fire synchronously")
	}
	tm := f.NewTimer(0)
	select {
	case at := <-tm.C():
		if !at.Equal(t0) {
			t.Fatalf("NewTimer(0) delivered %v, want %v", at, t0)
		}
	default:
		t.Fatal("NewTimer(0) did not deliver immediately")
	}
	if n := f.PendingTimers(); n != 0 {
		t.Fatalf("PendingTimers = %d after zero-duration firings, want 0", n)
	}
	// A negative duration behaves like zero.
	fired = false
	f.AfterFunc(-time.Second, func() { fired = true })
	if !fired {
		t.Fatal("AfterFunc(-1s) did not fire synchronously")
	}
}

// Stop racing the firing: exactly one side wins. Either the callback
// ran and Stop reports false, or Stop reports true and the callback
// never runs.
func TestFakeAfterFuncStopRace(t *testing.T) {
	for i := 0; i < 200; i++ {
		f := NewFake(t0)
		var fired atomic.Int32
		tm := f.AfterFunc(time.Millisecond, func() { fired.Add(1) })
		var stopped atomic.Bool
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); stopped.Store(tm.Stop()) }()
		go func() { defer wg.Done(); f.Advance(time.Millisecond) }()
		wg.Wait()
		if stopped.Load() == (fired.Load() != 0) {
			t.Fatalf("iteration %d: stopped=%v fired=%d — exactly one side must win",
				i, stopped.Load(), fired.Load())
		}
		if fired.Load() > 1 {
			t.Fatalf("callback fired %d times", fired.Load())
		}
	}
}

func TestRealAfterFuncStopRace(t *testing.T) {
	clk := Real()
	for i := 0; i < 100; i++ {
		var fired atomic.Int32
		tm := clk.AfterFunc(50*time.Microsecond, func() { fired.Add(1) })
		time.Sleep(time.Duration(i) * time.Microsecond)
		stopped := tm.Stop()
		time.Sleep(200 * time.Microsecond) // let an unstopped firing land
		if stopped && fired.Load() != 0 {
			t.Fatalf("iteration %d: Stop returned true but callback fired", i)
		}
		if !stopped && fired.Load() != 1 {
			t.Fatalf("iteration %d: Stop returned false but callback fired %d times", i, fired.Load())
		}
	}
}

// Multiple concurrent sleepers with distinct targets must be released
// in timestamp order: each sleeper records its departure sequence and
// the order must match the target order even though the goroutines
// start in reverse.
func TestFakeWaitersReleasedInTimestampOrder(t *testing.T) {
	f := NewFake(t0)
	const n = 8
	var order [n]int
	var next atomic.Int32
	var wg sync.WaitGroup
	for i := n - 1; i >= 0; i-- {
		wg.Add(1)
		d := time.Duration(i+1) * time.Millisecond
		idx := i
		go func() {
			defer wg.Done()
			f.Sleep(d)
			order[idx] = int(next.Add(1))
		}()
		// Ensure sleeper idx is parked before starting the next, so
		// arrival order is the reverse of target order.
		f.BlockUntilWaiters(n - idx)
	}
	f.Advance(n * time.Millisecond)
	wg.Wait()
	for i := 0; i < n; i++ {
		if order[i] != i+1 {
			t.Fatalf("sleeper with target %dms departed %dth, want %dth (full order %v)",
				i+1, order[i], i+1, order)
		}
	}
	if got := f.Now(); !got.Equal(t0.Add(n * time.Millisecond)) {
		t.Fatalf("Now = %v after advance, want %v", got, t0.Add(n*time.Millisecond))
	}
}

// Advance past several pending timers fires them in due order with
// the clock reading each timer's due time during its callback — not
// the advance target.
func TestFakeAdvancePastSeveralTimers(t *testing.T) {
	f := NewFake(t0)
	type firing struct {
		label string
		at    time.Time
	}
	var fires []firing
	rec := func(label string) func() {
		return func() { fires = append(fires, firing{label, f.Now()}) }
	}
	// Armed out of order, including a tie (b1/b2 share a due time and
	// must fire in arming order).
	f.AfterFunc(3*time.Millisecond, rec("c"))
	f.AfterFunc(1*time.Millisecond, rec("a"))
	f.AfterFunc(2*time.Millisecond, rec("b1"))
	f.AfterFunc(2*time.Millisecond, rec("b2"))
	f.AfterFunc(10*time.Millisecond, rec("far")) // beyond the advance window
	if n := f.PendingTimers(); n != 5 {
		t.Fatalf("PendingTimers = %d, want 5", n)
	}
	f.Advance(5 * time.Millisecond)
	want := []firing{
		{"a", t0.Add(1 * time.Millisecond)},
		{"b1", t0.Add(2 * time.Millisecond)},
		{"b2", t0.Add(2 * time.Millisecond)},
		{"c", t0.Add(3 * time.Millisecond)},
	}
	if len(fires) != len(want) {
		t.Fatalf("fired %d timers, want %d: %v", len(fires), len(want), fires)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("firing %d = %+v, want %+v", i, fires[i], want[i])
		}
	}
	if got := f.Now(); !got.Equal(t0.Add(5 * time.Millisecond)) {
		t.Fatalf("Now = %v, want advance target %v", got, t0.Add(5*time.Millisecond))
	}
	if n := f.PendingTimers(); n != 1 {
		t.Fatalf("PendingTimers = %d after advance, want 1 (the far timer)", n)
	}
	f.Advance(5 * time.Millisecond)
	if len(fires) != 5 || fires[4].label != "far" {
		t.Fatalf("far timer did not fire on the second advance: %v", fires)
	}
}

// A callback arming a timer inside the advance window gets fired by
// the same Advance, at its own due time.
func TestFakeAdvanceFiresTimersArmedMidAdvance(t *testing.T) {
	f := NewFake(t0)
	var log []string
	f.AfterFunc(time.Millisecond, func() {
		log = append(log, "outer@"+f.Since(t0).String())
		f.AfterFunc(time.Millisecond, func() {
			log = append(log, "inner@"+f.Since(t0).String())
		})
	})
	f.Advance(5 * time.Millisecond)
	if len(log) != 2 || log[0] != "outer@1ms" || log[1] != "inner@2ms" {
		t.Fatalf("log = %v, want [outer@1ms inner@2ms]", log)
	}
}

func TestFakeAutoAdvanceSleep(t *testing.T) {
	f := NewFakeAuto(t0)
	var fired []time.Duration
	f.AfterFunc(2*time.Millisecond, func() { fired = append(fired, f.Since(t0)) })
	done := make(chan struct{})
	go func() {
		f.Sleep(5 * time.Millisecond) // must not block
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("auto-advance Sleep blocked")
	}
	if got := f.Since(t0); got != 5*time.Millisecond {
		t.Fatalf("clock advanced %v, want 5ms", got)
	}
	if len(fired) != 1 || fired[0] != 2*time.Millisecond {
		t.Fatalf("timer fired at %v, want [2ms]", fired)
	}
}

func TestFakeTimerReset(t *testing.T) {
	f := NewFake(t0)
	n := 0
	tm := f.AfterFunc(time.Millisecond, func() { n++ })
	if !tm.Reset(3 * time.Millisecond) {
		t.Fatal("Reset of an armed timer returned false")
	}
	f.Advance(2 * time.Millisecond)
	if n != 0 {
		t.Fatal("timer fired at its pre-Reset due time")
	}
	f.Advance(2 * time.Millisecond)
	if n != 1 {
		t.Fatalf("timer fired %d times after Reset, want 1", n)
	}
	if tm.Reset(time.Millisecond) {
		t.Fatal("Reset of a fired timer returned true")
	}
	f.Advance(time.Millisecond)
	if n != 2 {
		t.Fatalf("re-armed timer fired %d times, want 2", n)
	}
}

func TestRealClockBasics(t *testing.T) {
	clk := Real()
	if clk.Domain() != RealDomain {
		t.Fatalf("Domain = %q, want real", clk.Domain())
	}
	start := clk.Now()
	clk.Sleep(2 * time.Millisecond)
	if el := clk.Since(start); el < 2*time.Millisecond {
		t.Fatalf("Sleep(2ms) returned after %v", el)
	}
	clk.Sleep(0)
	clk.Sleep(-time.Second) // must not block

	ch := make(chan struct{})
	clk.AfterFunc(time.Millisecond, func() { close(ch) })
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("real AfterFunc never fired")
	}

	tm := clk.NewTimer(time.Millisecond)
	select {
	case <-tm.C():
	case <-time.After(2 * time.Second):
		t.Fatal("real NewTimer never delivered")
	}
}

// Short real sleeps should be far more accurate than the scheduler's
// wake-up slop thanks to the spin tail. Keep the bound loose enough
// for loaded CI machines.
func TestRealSleepPrecision(t *testing.T) {
	clk := Real()
	const d = 200 * time.Microsecond
	worst := time.Duration(0)
	for i := 0; i < 20; i++ {
		start := clk.Now()
		clk.Sleep(d)
		over := clk.Since(start) - d
		if over > worst {
			worst = over
		}
	}
	if worst > 20*time.Millisecond {
		t.Fatalf("worst oversleep %v for %v sleeps — spin tail not engaged?", worst, d)
	}
}
