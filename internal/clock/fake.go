package clock

import (
	"sort"
	"sync"
	"time"
)

// Fake is a test clock whose time moves only when told to. Sleepers
// block until Advance (or another sleeper under auto-advance) carries
// time past their target; timers fire in timestamp order, with the
// clock set to each firing's due time while its callback runs,
// exactly as a serial real clock would interleave them. Sleepers and
// timers share one timeline: when an Advance crosses several of them,
// each sleeper is released — and observed to depart — before the next
// firing happens, so release order is the timestamp order, not the
// scheduler's whim.
//
// With auto-advance on (NewFakeAuto, or SetAutoAdvance), Sleep does
// not block: it advances the clock to its own target — firing any
// timers due on the way — and returns. That makes code written
// against Clock run instantly in tests while preserving the order of
// observable events.
type Fake struct {
	mu   sync.Mutex
	cond *sync.Cond
	now  time.Time
	auto bool
	seq  int64

	timers   []*fakeTimer // armed, unsorted; scanned for earliest due
	sleepers []*sleeper   // blocked Sleep calls
}

// fakeTimer is one armed firing on a Fake clock.
type fakeTimer struct {
	clk   *Fake
	due   time.Time
	seq   int64 // FIFO tiebreak for equal due times
	fn    func()
	c     chan time.Time
	armed bool
}

// sleeper is one blocked Sleep call.
type sleeper struct {
	target   time.Time
	seq      int64
	released bool
	departed bool
}

// NewFake returns a manually-advanced fake clock starting at start.
func NewFake(start time.Time) *Fake {
	f := &Fake{now: start}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// NewFakeAuto returns a fake clock whose Sleep auto-advances: the
// clock for tests that should not really wait.
func NewFakeAuto(start time.Time) *Fake {
	f := NewFake(start)
	f.auto = true
	return f
}

// SetAutoAdvance toggles auto-advancing Sleep. Turning it on releases
// currently blocked sleepers by advancing to the latest target.
func (f *Fake) SetAutoAdvance(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.auto = on
	if on {
		var latest time.Time
		for _, s := range f.sleepers {
			if s.target.After(latest) {
				latest = s.target
			}
		}
		if latest.After(f.now) {
			f.advanceTo(latest)
		}
	}
}

func (f *Fake) Domain() Domain { return FakeDomain }

func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *Fake) Since(t time.Time) time.Duration { return f.Now().Sub(t) }

// Sleep blocks until the clock reaches now+d. Under auto-advance it
// instead moves the clock there itself (firing due timers en route)
// and returns immediately. A non-positive d never blocks.
func (f *Fake) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	target := f.now.Add(d)
	if f.auto {
		f.advanceTo(target)
		return
	}
	s := &sleeper{target: target, seq: f.seq}
	f.seq++
	f.sleepers = append(f.sleepers, s)
	for !s.released {
		f.cond.Wait()
	}
	s.departed = true
	for i, x := range f.sleepers {
		if x == s {
			f.sleepers = append(f.sleepers[:i], f.sleepers[i+1:]...)
			break
		}
	}
	f.cond.Broadcast() // let the advancer move to the next firing
}

// WaiterCount returns how many Sleep calls are currently blocked.
func (f *Fake) WaiterCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.sleepers)
}

// BlockUntilWaiters busy-waits (politely) until at least n sleepers
// are blocked — the standard fake-clock rendezvous for tests that
// spawn goroutines and then advance time.
func (f *Fake) BlockUntilWaiters(n int) {
	for {
		if f.WaiterCount() >= n {
			return
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// PendingTimers returns how many timers are armed.
func (f *Fake) PendingTimers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.timers)
}

// Advance moves the clock forward by d, firing every timer and
// releasing every sleeper due on the way in timestamp order (FIFO
// among equal timestamps), with the clock reading each firing's due
// time while it runs. Timers armed by callbacks during the advance
// fire too if they fall within the window.
func (f *Fake) Advance(d time.Duration) {
	if d < 0 {
		panic("clock: negative Advance")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.advanceTo(f.now.Add(d))
}

// advanceTo fires due work in (timestamp, seq) order and settles the
// clock at target. Caller holds f.mu.
func (f *Fake) advanceTo(target time.Time) {
	for {
		t := f.earliestTimer(target)
		s := f.earliestSleeper(target)
		if t == nil && s == nil {
			break
		}
		if s != nil && (t == nil || s.target.Before(t.due) ||
			(s.target.Equal(t.due) && s.seq < t.seq)) {
			if s.target.After(f.now) {
				f.now = s.target
			}
			s.released = true
			f.cond.Broadcast()
			for !s.departed {
				f.cond.Wait()
			}
			continue
		}
		f.disarmLocked(t)
		if t.due.After(f.now) {
			f.now = t.due
		}
		if t.fn != nil {
			// Callbacks run without the lock (they may use the clock)
			// but serially: the advance loop fires one at a time.
			f.mu.Unlock()
			t.fn()
			f.mu.Lock()
		} else {
			select {
			case t.c <- t.due:
			default:
			}
		}
	}
	if f.now.Before(target) {
		f.now = target
	}
	f.cond.Broadcast()
}

// earliestTimer returns the armed timer with the smallest (due, seq)
// not after target, or nil.
func (f *Fake) earliestTimer(target time.Time) *fakeTimer {
	var best *fakeTimer
	for _, t := range f.timers {
		if t.due.After(target) {
			continue
		}
		if best == nil || t.due.Before(best.due) ||
			(t.due.Equal(best.due) && t.seq < best.seq) {
			best = t
		}
	}
	return best
}

// earliestSleeper returns the unreleased sleeper with the smallest
// (target, seq) not after target, or nil.
func (f *Fake) earliestSleeper(target time.Time) *sleeper {
	var best *sleeper
	for _, s := range f.sleepers {
		if s.released || s.target.After(target) {
			continue
		}
		if best == nil || s.target.Before(best.target) ||
			(s.target.Equal(best.target) && s.seq < best.seq) {
			best = s
		}
	}
	return best
}

func (f *Fake) armLocked(t *fakeTimer) {
	t.armed = true
	f.timers = append(f.timers, t)
}

func (f *Fake) disarmLocked(t *fakeTimer) bool {
	if !t.armed {
		return false
	}
	t.armed = false
	for i, x := range f.timers {
		if x == t {
			f.timers = append(f.timers[:i], f.timers[i+1:]...)
			break
		}
	}
	return true
}

// AfterFunc arms fn to run when the clock reaches now+d. A
// non-positive d is already due, so it fires synchronously — in
// timestamp order with anything else due — before AfterFunc returns.
func (f *Fake) AfterFunc(d time.Duration, fn func()) Timer {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := &fakeTimer{clk: f, due: f.now.Add(d), seq: f.seq, fn: fn}
	f.seq++
	f.armLocked(t)
	if d <= 0 {
		f.advanceTo(f.now)
	}
	return t
}

// NewTimer arms a channel delivery at now+d. Zero-duration timers
// deliver immediately.
func (f *Fake) NewTimer(d time.Duration) Timer {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := &fakeTimer{clk: f, due: f.now.Add(d), seq: f.seq, c: make(chan time.Time, 1)}
	f.seq++
	f.armLocked(t)
	if d <= 0 {
		f.advanceTo(f.now)
	}
	return t
}

func (t *fakeTimer) C() <-chan time.Time { return t.c }

func (t *fakeTimer) Stop() bool {
	t.clk.mu.Lock()
	defer t.clk.mu.Unlock()
	return t.clk.disarmLocked(t)
}

func (t *fakeTimer) Reset(d time.Duration) bool {
	t.clk.mu.Lock()
	defer t.clk.mu.Unlock()
	active := t.clk.disarmLocked(t)
	t.due = t.clk.now.Add(d)
	t.seq = t.clk.seq
	t.clk.seq++
	t.clk.armLocked(t)
	if d <= 0 {
		t.clk.advanceTo(t.clk.now)
	}
	return active
}

// Timestamps returns the due times of armed timers, sorted — a
// debugging aid for tests asserting on pending work.
func (f *Fake) Timestamps() []time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]time.Time, len(f.timers))
	for i, t := range f.timers {
		out[i] = t.due
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}
