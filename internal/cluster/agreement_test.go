package cluster

import (
	"fmt"
	"testing"
	"time"

	"ovlp/internal/mpi"
	"ovlp/internal/overlap"
	"ovlp/internal/profile"
	"ovlp/internal/trace"
)

// The estimator-agreement test: the same Isend/Irecv+compute+Wait
// workload runs on the virtual kernel — whose min/max bounds the
// scenario oracle certifies against ground-truth wire intervals — and
// on the real backend, where the bounds come from actual wall-clock
// timestamps. The two estimates must agree within a documented
// tolerance band: the real fabric sleeps the same modelled wire and
// DMA times the virtual kernel advances past, so a systematic
// disagreement means one of the clock domains is measured wrong.
//
// Tolerances (percentage points of data-transfer time):
//
//   - bandTol 20: the real bounds band [min, max] must intersect the
//     virtual band widened by this much on each side. Wall-clock runs
//     carry scheduler jitter and lock-handoff slop the virtual kernel
//     does not model, which shifts both bounds by a few percent on a
//     quiet machine and more under -race or CI load.
//   - widthTol 25: the real band may be at most this much wider than
//     the virtual band. The width is the estimator's uncertainty;
//     jitter widens it but must not blow it up.
//   - shareTol 35: each blame category's share of the attributed gap
//     must match across domains within this much, when both runs have
//     a gap to attribute. Blame shares divide small numbers, so they
//     are the noisiest comparison.
const (
	agreeBandTol  = 20.0
	agreeWidthTol = 25.0
	agreeShareTol = 35.0
)

// runAgreement executes the fixed two-rank exchange on the given
// backend and returns each rank's exchange-region measures plus the
// run's blame profile (nil when analysis fails).
func runAgreement(t *testing.T, b Backend) ([2]overlap.Measures, *profile.Profile) {
	t.Helper()
	// A scaled-up Fig. 3 point: the eager path gives the sender a
	// *tight* virtual band (min == max), so the agreement assertion is
	// informative — a real band drifting away cannot hide inside
	// estimator slack. The message and compute are ~16x the paper's
	// 10 KiB / 10 µs so wall-clock jitter — a few µs per operation,
	// tens under the race detector — is small relative to the
	// quantities measured.
	const (
		msgSize = 192 << 10
		reps    = 12
		compute = 160 * time.Microsecond
	)
	tracer := trace.New(trace.Options{})
	res, err := RunE(Config{
		Procs:   2,
		Backend: b,
		Trace:   tracer,
		MPI: mpi.Config{
			Protocol:       mpi.PipelinedRDMA,
			EagerThreshold: 256 << 10,
			Instrument:     &mpi.InstrumentConfig{},
		},
	}, func(r *mpi.Rank) {
		peer := 1 - r.ID()
		for i := 0; i < reps; i++ {
			r.PushRegion("exchange")
			if r.ID() == 0 {
				q := r.Isend(peer, 0, msgSize)
				r.Compute(compute)
				r.Wait(q)
			} else {
				q := r.Irecv(peer, 0)
				r.Compute(compute)
				r.Wait(q)
			}
			r.PopRegion()
		}
	})
	if err != nil {
		t.Fatalf("%v run: %v", b, err)
	}
	var out [2]overlap.Measures
	for rank, rep := range res.Reports {
		reg := rep.Region("exchange")
		if reg == nil || reg.Total.Count == 0 {
			t.Fatalf("%v run: rank %d has no exchange-region transfers", b, rank)
		}
		out[rank] = reg.Total
	}
	p, perr := profile.Analyze(profile.FromTracer(tracer, res.Calib, res.Reports))
	if perr != nil {
		p = nil
	}
	return out, p
}

// shares converts a profile's blame columns into per-category
// percentages of the attributed gap.
func shares(p *profile.Profile) map[string]float64 {
	if p == nil || p.Totals.Gap <= 0 {
		return nil
	}
	out := map[string]float64{}
	names, vals := p.Totals.Blame.Columns()
	for i, n := range names {
		out[n] = 100 * float64(vals[i]) / float64(p.Totals.Gap)
	}
	return out
}

// agreementProblems compares one real-backend measurement against the
// certified virtual result and returns every tolerance violation (nil
// means the domains agree).
func agreementProblems(virt, wall [2]overlap.Measures, vprof, wprof *profile.Profile) []string {
	var probs []string
	side := [2]string{"sender", "receiver"}
	for rank := 0; rank < 2; rank++ {
		v, w := virt[rank], wall[rank]

		// The real band must intersect the tolerance-widened virtual
		// band: the virtual bounds bracket the true overlap, so a real
		// band entirely outside them misestimates the truth.
		if w.MinPercent() > v.MaxPercent()+agreeBandTol {
			probs = append(probs, fmt.Sprintf("%s: real lower bound %.1f%% exceeds virtual upper bound %.1f%% + %v pp tolerance",
				side[rank], w.MinPercent(), v.MaxPercent(), agreeBandTol))
		}
		if w.MaxPercent() < v.MinPercent()-agreeBandTol {
			probs = append(probs, fmt.Sprintf("%s: real upper bound %.1f%% is below virtual lower bound %.1f%% - %v pp tolerance",
				side[rank], w.MaxPercent(), v.MinPercent(), agreeBandTol))
		}

		vWidth := v.MaxPercent() - v.MinPercent()
		wWidth := w.MaxPercent() - w.MinPercent()
		if wWidth > vWidth+agreeWidthTol {
			probs = append(probs, fmt.Sprintf("%s: real bound width %.1f pp exceeds virtual width %.1f pp + %v pp tolerance",
				side[rank], wWidth, vWidth, agreeWidthTol))
		}
	}

	vs, ws := shares(vprof), shares(wprof)
	if vs == nil || ws == nil {
		return probs // nothing attributed in one domain: shares compare vacuously
	}
	for cat, vshare := range vs {
		wshare := ws[cat]
		if d := vshare - wshare; d > agreeShareTol || d < -agreeShareTol {
			probs = append(probs, fmt.Sprintf("blame %s: virtual share %.1f%% vs real share %.1f%% differ beyond %v pp",
				cat, vshare, wshare, agreeShareTol))
		}
	}
	for cat, wshare := range ws {
		if _, ok := vs[cat]; !ok && wshare > agreeShareTol {
			probs = append(probs, fmt.Sprintf("blame %s: %.1f%% of the real gap has no virtual counterpart", cat, wshare))
		}
	}
	return probs
}

func TestRealVirtualAgreement(t *testing.T) {
	virt, vprof := runAgreement(t, BackendVirtual)

	// The real measurement is a property of the machine, not just the
	// code: a CPU-starved run (race detector plus CI load) can
	// genuinely fail to achieve the modelled concurrency. Agreement is
	// asserted as achievable — best of three attempts — rather than on
	// every sample.
	const attempts = 3
	var probs []string
	for i := 0; i < attempts; i++ {
		wall, wprof := runAgreement(t, BackendReal)
		for rank, s := range [2]string{"sender", "receiver"} {
			t.Logf("attempt %d %s: virtual [%.1f%%, %.1f%%]  real [%.1f%%, %.1f%%]", i+1, s,
				virt[rank].MinPercent(), virt[rank].MaxPercent(),
				wall[rank].MinPercent(), wall[rank].MaxPercent())
		}
		if probs = agreementProblems(virt, wall, vprof, wprof); len(probs) == 0 {
			return
		}
	}
	for _, p := range probs {
		t.Error(p)
	}
}
