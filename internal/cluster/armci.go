package cluster

import (
	"time"

	"ovlp/internal/armci"
	"ovlp/internal/calib"
	"ovlp/internal/fabric"
	"ovlp/internal/overlap"
	"ovlp/internal/vtime"
)

// ARMCIConfig describes a one-sided (ARMCI) run.
type ARMCIConfig struct {
	// Procs is the number of processes (one per node).
	Procs int
	// Cost is the fabric cost model; zero selects the default.
	Cost fabric.CostModel
	// ARMCI configures the library; a nil Instrument.Table is filled
	// by calibration, as for MPI runs.
	ARMCI armci.Config
	// RecordTruth retains the ground-truth transfer log.
	RecordTruth bool
}

// ARMCIResult collects the observations of an ARMCI run.
type ARMCIResult struct {
	Reports   []*overlap.Report
	Duration  time.Duration
	LibTimes  []time.Duration
	Transfers []fabric.Transfer
}

// RunARMCI executes main on every process of a fresh machine using the
// one-sided library.
func RunARMCI(cfg ARMCIConfig, main func(p *armci.Proc)) ARMCIResult {
	if cfg.Procs <= 0 {
		panic("cluster: Procs must be positive")
	}
	if (cfg.Cost == fabric.CostModel{}) {
		cfg.Cost = fabric.DefaultCostModel()
	}
	if ic := cfg.ARMCI.Instrument; ic != nil && ic.Table == nil {
		ic.Table = Calibrate(cfg.Cost, calib.StandardSizes(), 5)
	}
	sim := vtime.NewSim()
	fab := fabric.New(sim, cfg.Procs, cfg.Cost)
	world := armci.NewWorld(sim, fab, cfg.ARMCI)

	procs := make([]*armci.Proc, 0, cfg.Procs)
	world.Start(func(p *armci.Proc) {
		procs = append(procs, p)
		main(p)
	})
	end := sim.Run()

	res := ARMCIResult{
		Reports:  world.Reports(),
		Duration: end.Duration(),
		LibTimes: make([]time.Duration, cfg.Procs),
	}
	for _, p := range procs {
		res.LibTimes[p.ID()] = p.LibTime()
	}
	if cfg.RecordTruth {
		res.Transfers = fab.Transfers()
	}
	return res
}
