package cluster

import (
	"time"

	"ovlp/internal/armci"
	"ovlp/internal/calib"
	"ovlp/internal/clock"
	"ovlp/internal/fabric"
	"ovlp/internal/overlap"
	"ovlp/internal/trace"
	"ovlp/internal/vtime"
)

// ARMCIConfig describes a one-sided (ARMCI) run.
type ARMCIConfig struct {
	// Procs is the number of processes (one per node).
	Procs int
	// Backend selects the execution substrate (see Config.Backend).
	// Real runs reject Faults and ARMCI.Reliable.
	Backend Backend
	// Clock drives a BackendReal run; nil selects clock.Real().
	Clock clock.Clock
	// Cost is the fabric cost model; zero selects the default.
	Cost fabric.CostModel
	// ARMCI configures the library; a nil Instrument.Table is filled
	// by calibration, as for MPI runs.
	ARMCI armci.Config
	// RecordTruth retains the ground-truth transfer log.
	RecordTruth bool
	// Faults optionally injects deterministic fabric faults; an
	// active plan fills a nil ARMCI.Reliable with defaults, as for
	// MPI runs.
	Faults *fabric.FaultPlan
	// Deadline, when positive, bounds the virtual run time (see
	// Config.Deadline).
	Deadline time.Duration
	// Trace, when non-nil, traces the whole run (see Config.Trace).
	Trace *trace.Tracer
}

// ARMCIResult collects the observations of an ARMCI run.
type ARMCIResult struct {
	Reports    []*overlap.Report
	Duration   time.Duration
	LibTimes   []time.Duration
	Transfers  []fabric.Transfer
	FaultStats fabric.FaultStats
	RelStats   []fabric.RelStats
	// Metrics is the end-of-run metrics snapshot (nil when untraced).
	Metrics *trace.Snapshot
	// RankErrors holds each process's recovered structured failure
	// (nil entries for processes that finished cleanly); see
	// Result.RankErrors.
	RankErrors []error
}

// RunARMCI executes main on every process of a fresh machine using the
// one-sided library. Errors panic; use RunARMCIE to receive them.
func RunARMCI(cfg ARMCIConfig, main func(p *armci.Proc)) ARMCIResult {
	res, err := RunARMCIE(cfg, main)
	if err != nil {
		panic(err)
	}
	return res
}

// RunARMCIE is RunARMCI returning simulation failures (retry
// exhaustion, deadlock) as errors instead of panicking.
func RunARMCIE(cfg ARMCIConfig, main func(p *armci.Proc)) (ARMCIResult, error) {
	if cfg.Procs <= 0 {
		panic("cluster: Procs must be positive")
	}
	if (cfg.Cost == fabric.CostModel{}) {
		cfg.Cost = fabric.DefaultCostModel()
	}
	if cfg.Backend == BackendReal {
		if cfg.Faults.Active() {
			return ARMCIResult{}, errRealFaults()
		}
		if cfg.ARMCI.Reliable != nil {
			return ARMCIResult{}, errRealReliable()
		}
	}
	if ic := cfg.ARMCI.Instrument; ic != nil {
		if err := checkTableDomain(ic.Table, cfg.Backend, cfg.Clock); err != nil {
			return ARMCIResult{}, err
		}
		if ic.Table == nil {
			ic.Table = CalibrateBackend(cfg.Backend, cfg.Clock, cfg.Cost, calib.StandardSizes(), 5)
		}
	}
	if cfg.Faults.Active() && cfg.ARMCI.Reliable == nil {
		cfg.ARMCI.Reliable = &fabric.ReliableParams{}
	}
	sim := newSim(cfg.Backend, cfg.Clock)
	fab := fabric.New(sim, cfg.Procs, cfg.Cost)
	defer fab.Shutdown()
	if cfg.Faults.Active() {
		if err := fab.SetFaults(cfg.Faults); err != nil {
			return ARMCIResult{}, err
		}
	}
	if cfg.Backend == BackendReal && cfg.Deadline == 0 {
		cfg.Deadline = DefaultRealDeadline
	}
	if cfg.Deadline > 0 {
		sim.SetDeadline(vtime.Time(cfg.Deadline))
	}
	if cfg.Trace != nil {
		sim.SetObserver(cfg.Trace.KernelObserver())
		fab.SetTrace(cfg.Trace)
		cfg.ARMCI.Tracer = cfg.Trace
		cfg.Trace.SetClockDomain(runDomain(cfg.Backend, cfg.Clock))
	}
	world := armci.NewWorld(sim, fab, cfg.ARMCI)

	procs := make([]*armci.Proc, 0, cfg.Procs)
	world.Start(func(p *armci.Proc) {
		procs = append(procs, p)
		main(p)
	})
	end, simErr := sim.RunE()
	rankErrs := world.RankErrors()
	err := combineErrors(rankErrs, simErr)

	res := ARMCIResult{
		Reports:    world.Reports(),
		Duration:   end.Duration(),
		LibTimes:   make([]time.Duration, cfg.Procs),
		FaultStats: fab.FaultStats(),
		RelStats:   make([]fabric.RelStats, cfg.Procs),
		RankErrors: rankErrs,
	}
	for _, p := range procs {
		res.LibTimes[p.ID()] = p.LibTime()
		res.RelStats[p.ID()] = p.RelStats()
	}
	if cfg.RecordTruth {
		res.Transfers = fab.Transfers()
	}
	res.Metrics = foldMetrics(cfg.Trace, res.Duration, res.FaultStats, res.RelStats, res.Reports)
	return res, err
}
