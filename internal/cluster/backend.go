package cluster

import (
	"fmt"
	"time"

	"ovlp/internal/calib"
	"ovlp/internal/clock"
	"ovlp/internal/fabric"
	"ovlp/internal/vtime"
)

// Backend selects the execution substrate of a run: the deterministic
// virtual-time kernel, or genuinely concurrent goroutines on a real
// (or fake) clock.
type Backend int

const (
	// BackendVirtual is the deterministic discrete-event simulation:
	// bit-for-bit reproducible, with ground-truth oracle access.
	BackendVirtual Backend = iota
	// BackendReal runs procs as concurrent goroutines against a
	// clock.Clock, with the fabric really sleeping wire and DMA times
	// on per-NIC goroutines. Nondeterministic by nature; fault/crash
	// injection, fault tolerance and reliable delivery are
	// virtual-only and rejected.
	BackendReal
)

func (b Backend) String() string {
	switch b {
	case BackendVirtual:
		return "virtual"
	case BackendReal:
		return "real"
	}
	return "invalid"
}

// ParseBackend parses a Backend's String form; "" selects the default
// BackendVirtual, so flag defaults and zero configs agree.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", BackendVirtual.String():
		return BackendVirtual, nil
	case BackendReal.String():
		return BackendReal, nil
	}
	return 0, fmt.Errorf("unknown backend %q (want %s or %s)", s, BackendVirtual, BackendReal)
}

// DefaultRealDeadline bounds real-clock runs that set no explicit
// deadline: unlike virtual mode, a wedged real run cannot be detected
// by event exhaustion, only by the watchdog.
const DefaultRealDeadline = 2 * time.Minute

// newSim builds the kernel for a backend. A nil clk on BackendReal
// selects the machine's monotonic clock.
func newSim(b Backend, clk clock.Clock) *vtime.Sim {
	if b == BackendReal {
		return vtime.NewRealSim(clk)
	}
	return vtime.NewSim()
}

// runDomain names the clock domain a (backend, clock) pair runs in,
// in the same vocabulary calibration tables are stamped with.
func runDomain(b Backend, clk clock.Clock) string {
	if b != BackendReal {
		return string(clock.Virtual)
	}
	if clk == nil {
		clk = clock.Real()
	}
	return string(clk.Domain())
}

// checkTableDomain rejects a calibration table measured on a
// different kind of clock than the run executes on: virtual-time
// transfer costs say nothing about the machine's real wire, and vice
// versa, so applying the wrong table silently corrupts every bound.
func checkTableDomain(t *calib.Table, b Backend, clk clock.Clock) error {
	if t == nil {
		return nil
	}
	want := runDomain(b, clk)
	if got := t.Domain(); got != want {
		return fmt.Errorf("cluster: calibration table is %s-clock but the run backend is %s; recalibrate with -backend %s", got, want, want)
	}
	return nil
}

func errRealFaults() error {
	return fmt.Errorf("cluster: fault injection needs -backend virtual (deterministic scheduling)")
}

func errRealReliable() error {
	return fmt.Errorf("cluster: reliable delivery needs -backend virtual (the real backend's wire is lossless)")
}

// validateBackend rejects configuration that only the virtual kernel
// supports.
func validateBackend(cfg *Config) error {
	if cfg.Backend != BackendReal {
		return nil
	}
	if cfg.Faults.Active() {
		return errRealFaults()
	}
	if cfg.Crashes.Active() {
		return fmt.Errorf("cluster: crash injection needs -backend virtual (deterministic scheduling)")
	}
	if cfg.MPI.FT != nil {
		return fmt.Errorf("cluster: fault tolerance needs -backend virtual (crash injection is virtual-only)")
	}
	if cfg.MPI.Reliable != nil {
		return errRealReliable()
	}
	return nil
}

// CalibrateBackend measures the transfer-time table on the given
// backend: the virtual fabric for BackendVirtual (identical to
// Calibrate), or real goroutine wire timings for BackendReal. The
// returned table is stamped with the clock domain it was measured in,
// so loaders can reject cross-domain use.
func CalibrateBackend(b Backend, clk clock.Clock, cost fabric.CostModel, sizes []int, reps int) *calib.Table {
	table := calibrate(newSim(b, clk), cost, sizes, reps)
	if d := runDomain(b, clk); d != string(clock.Virtual) {
		table.SetDomain(d)
	}
	return table
}
