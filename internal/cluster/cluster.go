// Package cluster assembles a complete simulated machine — virtual
// time kernel, RDMA fabric, and an instrumented communication library —
// and runs message-passing programs on it. It is the top-level entry
// point the examples, benchmarks and experiment binaries use.
package cluster

import (
	"time"

	"ovlp/internal/calib"
	"ovlp/internal/clock"
	"ovlp/internal/fabric"
	"ovlp/internal/mpi"
	"ovlp/internal/overlap"
	"ovlp/internal/trace"
	"ovlp/internal/vtime"
)

// Config describes the machine and library configuration for one run.
type Config struct {
	// Procs is the number of ranks (one per node).
	Procs int
	// Backend selects the execution substrate: BackendVirtual (the
	// default) runs the deterministic discrete-event kernel;
	// BackendReal runs ranks as concurrent goroutines with the fabric
	// sleeping real wire time. Real runs reject Faults, Crashes,
	// MPI.FT and MPI.Reliable.
	Backend Backend
	// Clock drives a BackendReal run; nil selects the machine's
	// monotonic clock (clock.Real()). Tests substitute a clock.Fake.
	// Ignored for BackendVirtual.
	Clock clock.Clock
	// Cost is the fabric cost model; the zero value selects
	// fabric.DefaultCostModel.
	Cost fabric.CostModel
	// MPI configures the message-passing library. If MPI.Instrument is
	// non-nil but its Table is nil, the table is produced by running
	// Calibrate on the same cost model first — exactly the paper's
	// a-priori characterization step.
	MPI mpi.Config
	// RecordTruth retains the fabric's ground-truth transfer log in
	// the result (costs memory proportional to message count).
	RecordTruth bool
	// Faults, when non-nil and active, injects deterministic link and
	// NIC faults (see fabric.FaultPlan). An active plan implies
	// reliable delivery: if MPI.Reliable is nil it is filled with
	// default fabric.ReliableParams so lost packets are retransmitted
	// rather than deadlocking the run.
	Faults *fabric.FaultPlan
	// Crashes, when non-nil and active, injects crash-stop node
	// failures (see fabric.CrashPlan): at each crash instant the node's
	// NIC goes dead and its rank is killed with a
	// *fabric.NodeCrashedError (recovered into Result.RankErrors). Like
	// Faults, an active plan implies reliable delivery. Without MPI.FT
	// the surviving ranks abort with retry-exhaustion errors when they
	// next need the dead node; with it they detect, agree and recover
	// (see RunFT).
	Crashes *fabric.CrashPlan
	// Deadline, when positive, bounds the run time: if the simulation
	// is still live at this (virtual or wall-clock, per Backend) time,
	// RunE returns a *vtime.DeadlockError describing every stuck
	// process instead of simulating forever. BackendReal runs with a
	// zero Deadline get DefaultRealDeadline — a wedged real run has no
	// event-exhaustion signal, only the watchdog.
	Deadline time.Duration
	// Trace, when non-nil, traces the whole run into the given tracer:
	// kernel scheduling spans, library call spans, overlap events,
	// ground-truth wire spans and fault/retransmit instants, plus the
	// metrics registry snapshotted into Result.Metrics. The tracer is
	// wired through every layer (sim observer, fabric, mpi.Config), so
	// callers set only this field.
	Trace *trace.Tracer
}

// Result collects everything observable after a run.
type Result struct {
	// Reports holds each rank's instrumentation report (nil entries
	// when uninstrumented).
	Reports []*overlap.Report
	// Duration is the total virtual run time.
	Duration time.Duration
	// MPITimes is each rank's aggregate time inside library calls.
	MPITimes []time.Duration
	// Transfers is the ground-truth transfer log (only when
	// Config.RecordTruth).
	Transfers []fabric.Transfer
	// FaultStats counts the faults the fabric actually injected
	// (zero value when Config.Faults is nil or inactive).
	FaultStats fabric.FaultStats
	// RelStats holds each rank's reliable-delivery counters (zero
	// values when the run is not configured for reliable delivery).
	RelStats []fabric.RelStats
	// Metrics is the end-of-run metrics snapshot (nil when the run is
	// untraced).
	Metrics *trace.Snapshot
	// Calib is the a-priori transfer-time table the instrumentation
	// used (nil when the run was uninstrumented). Offline analysis
	// (internal/profile) needs the same table to replay the bounds
	// algorithm.
	Calib *calib.Table
	// RankErrors holds each rank's recovered structured failure (nil
	// entries for ranks that finished cleanly). When any entry is
	// non-nil, RunE's error is a *RunErrors aggregating them all.
	RankErrors []error
}

// Run executes main on every rank of a freshly built machine and
// returns the observations. It is deterministic: identical
// configurations and programs produce identical results. Errors
// (deadlock, retry exhaustion) panic; use RunE to receive them as
// values.
func Run(cfg Config, main func(r *mpi.Rank)) Result {
	res, err := RunE(cfg, main)
	if err != nil {
		panic(err)
	}
	return res
}

// RunE is Run returning simulation failures — communication errors
// after retry exhaustion (mpi.ErrTimeout, mpi.ErrPeerUnreachable) and
// deadlocks (*vtime.DeadlockError) — as errors instead of panicking.
// The returned Result carries whatever was observable up to the
// failure (at minimum the virtual duration and fault counters).
//
// A rank that panics with an error value (the library's structured
// *mpi.CommError path) is recovered in place: the rank finishes, the
// simulation keeps running, and every failed rank's error is
// aggregated into Result.RankErrors and a returned *RunErrors — so a
// partition that times out five ranks reports all five, not just the
// first. Non-error panics (bugs) still abort the run.
func RunE(cfg Config, main func(r *mpi.Rank)) (Result, error) {
	if cfg.Procs <= 0 {
		panic("cluster: Procs must be positive")
	}
	if (cfg.Cost == fabric.CostModel{}) {
		cfg.Cost = fabric.DefaultCostModel()
	}
	if err := validateBackend(&cfg); err != nil {
		return Result{}, err
	}
	if ic := cfg.MPI.Instrument; ic != nil {
		if err := checkTableDomain(ic.Table, cfg.Backend, cfg.Clock); err != nil {
			return Result{}, err
		}
		if ic.Table == nil {
			ic.Table = CalibrateBackend(cfg.Backend, cfg.Clock, cfg.Cost, calib.StandardSizes(), 5)
		}
	}
	if (cfg.Faults.Active() || cfg.Crashes.Active()) && cfg.MPI.Reliable == nil {
		cfg.MPI.Reliable = &fabric.ReliableParams{}
	}
	sim := newSim(cfg.Backend, cfg.Clock)
	fab := fabric.New(sim, cfg.Procs, cfg.Cost)
	defer fab.Shutdown()
	if cfg.Faults.Active() {
		if err := fab.SetFaults(cfg.Faults); err != nil {
			return Result{}, err
		}
	}
	if cfg.Backend == BackendReal && cfg.Deadline == 0 {
		cfg.Deadline = DefaultRealDeadline
	}
	if cfg.Deadline > 0 {
		sim.SetDeadline(vtime.Time(cfg.Deadline))
	}
	if cfg.Trace != nil {
		sim.SetObserver(cfg.Trace.KernelObserver())
		fab.SetTrace(cfg.Trace)
		cfg.MPI.Tracer = cfg.Trace
		cfg.Trace.SetClockDomain(runDomain(cfg.Backend, cfg.Clock))
	}
	world := mpi.NewWorld(sim, fab, cfg.MPI)
	if cfg.Crashes.Active() {
		// After SetFaults, so crashes can anchor to labelled chaos
		// events; the callback kills the node's rank at the instant its
		// NIC dies.
		if err := fab.SetCrashes(cfg.Crashes); err != nil {
			return Result{}, err
		}
		fab.OnCrash(func(n fabric.NodeID) {
			world.KillRank(int(n), &fabric.NodeCrashedError{Node: n, At: sim.Now()})
		})
	}

	ranks := make([]*mpi.Rank, 0, cfg.Procs)
	world.Start(func(r *mpi.Rank) {
		ranks = append(ranks, r)
		main(r)
	})
	end, simErr := sim.RunE()
	rankErrs := world.RankErrors()
	err := combineErrors(rankErrs, simErr)

	res := Result{
		Reports:    world.Reports(),
		Duration:   end.Duration(),
		MPITimes:   make([]time.Duration, cfg.Procs),
		FaultStats: fab.FaultStats(),
		RelStats:   make([]fabric.RelStats, cfg.Procs),
		RankErrors: rankErrs,
	}
	for _, r := range ranks {
		res.MPITimes[r.ID()] = r.MPITime()
		res.RelStats[r.ID()] = r.RelStats()
	}
	if cfg.RecordTruth {
		res.Transfers = fab.Transfers()
	}
	res.Metrics = foldMetrics(cfg.Trace, res.Duration, res.FaultStats, res.RelStats, res.Reports)
	if ic := cfg.MPI.Instrument; ic != nil {
		res.Calib = ic.Table
	}
	return res, err
}

// Calibrate measures the fabric's transfer time for each message size
// by timing RDMA writes between two nodes, repeating reps times per
// size and averaging — the simulation analogue of characterizing the
// interconnect with the vendor's perf_main utility before the
// application runs. It always measures on the virtual backend; use
// CalibrateBackend for a wall-clock table.
func Calibrate(cost fabric.CostModel, sizes []int, reps int) *calib.Table {
	return calibrate(vtime.NewSim(), cost, sizes, reps)
}

// calibrate runs the ping-pong characterization on the given kernel.
// The same proc bodies work on both backends: on a real sim the fabric
// actually sleeps wire time and the shared posted/totals variables are
// serialized by the kernel lock.
func calibrate(sim *vtime.Sim, cost fabric.CostModel, sizes []int, reps int) *calib.Table {
	if (cost == fabric.CostModel{}) {
		cost = fabric.DefaultCostModel()
	}
	if len(sizes) == 0 {
		sizes = calib.StandardSizes()
	}
	if reps <= 0 {
		reps = 5
	}
	if sim.IsReal() {
		sim.SetDeadline(vtime.Time(DefaultRealDeadline))
	}
	fab := fabric.New(sim, 2, cost)
	defer fab.Shutdown()
	src, dst := fab.NIC(0), fab.NIC(1)

	type token struct{ seq int }
	totals := make([]time.Duration, len(sizes))
	var posted vtime.Time

	receiver := sim.Spawn("calib-recv", func(p *vtime.Proc) {
		for i := 0; i < len(sizes)*reps; i++ {
			var pkt *fabric.Packet
			for pkt == nil {
				if !dst.Pending() {
					p.Park("calib.recv")
					continue
				}
				if q := dst.PollInbox(p); q != nil {
					pkt = q
					break
				}
				dst.PollCQ(p) // drain completions of our own acks
			}
			arrival := p.Now()
			totals[pkt.Payload.(token).seq] += arrival.Sub(posted)
			// Acknowledge so the sender paces one transfer at a time.
			dst.Send(p, 0, 0, 0, token{})
		}
	})
	dst.SetNotify(func() { receiver.Unpark() })

	sender := sim.Spawn("calib-send", func(p *vtime.Proc) {
		for si, size := range sizes {
			for rep := 0; rep < reps; rep++ {
				posted = p.Now()
				src.RDMAWrite(p, 1, size, 0, token{seq: si})
				// Drain the local completion and the ack.
				got := 0
				for got < 2 {
					if src.Pending() {
						if cqe := src.PollCQ(p); cqe != nil {
							got++
							continue
						}
						if pkt := src.PollInbox(p); pkt != nil {
							got++
							continue
						}
					}
					p.Park("calib.send")
				}
			}
		}
	})
	src.SetNotify(func() { sender.Unpark() })

	sim.Run()
	points := make([]calib.Point, len(sizes))
	for i, size := range sizes {
		points[i] = calib.Point{Size: size, Time: totals[i] / time.Duration(reps)}
	}
	table, err := calib.NewTable(points)
	if err != nil {
		panic("cluster: calibration produced invalid table: " + err.Error())
	}
	return table
}
