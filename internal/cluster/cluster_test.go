package cluster_test

import (
	"testing"
	"time"

	"ovlp/internal/calib"
	"ovlp/internal/cluster"
	"ovlp/internal/fabric"
	"ovlp/internal/mpi"
)

func TestCalibrateMatchesCostModel(t *testing.T) {
	cost := fabric.DefaultCostModel()
	table := cluster.Calibrate(cost, []int{1, 1 << 10, 64 << 10, 1 << 20}, 3)
	for _, size := range []int{1, 1 << 10, 64 << 10, 1 << 20} {
		measured := table.XferTime(size)
		// Measured time = DMA startup + wire + latency; compare to the
		// analytic transfer time within the startup slack.
		analytic := cost.TransferTime(size)
		diff := measured - analytic
		if diff < 0 {
			diff = -diff
		}
		if diff > cost.DMAStartup+2*time.Microsecond {
			t.Errorf("size %d: measured %v vs analytic %v", size, measured, analytic)
		}
	}
}

func TestCalibrateMonotone(t *testing.T) {
	table := cluster.Calibrate(fabric.CostModel{}, nil, 0)
	points := table.Points()
	for i := 1; i < len(points); i++ {
		if points[i].Time < points[i-1].Time {
			t.Fatalf("calibration not monotone: %v then %v", points[i-1], points[i])
		}
	}
}

func TestCalibrateDeterministic(t *testing.T) {
	a := cluster.Calibrate(fabric.CostModel{}, []int{1 << 10, 1 << 16}, 4)
	b := cluster.Calibrate(fabric.CostModel{}, []int{1 << 10, 1 << 16}, 4)
	pa, pb := a.Points(), b.Points()
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("calibration nondeterministic: %v vs %v", pa[i], pb[i])
		}
	}
}

func TestRunAutoCalibratesTable(t *testing.T) {
	ic := &mpi.InstrumentConfig{}
	res := cluster.Run(cluster.Config{
		Procs: 2,
		MPI:   mpi.Config{Instrument: ic},
	}, func(r *mpi.Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, 1024)
		} else {
			r.Recv(0, 0)
		}
	})
	if ic.Table == nil {
		t.Fatal("Run did not fill the calibration table")
	}
	if res.Reports[0] == nil || res.Reports[1] == nil {
		t.Fatal("missing reports")
	}
}

func TestRunUninstrumented(t *testing.T) {
	res := cluster.Run(cluster.Config{Procs: 2}, func(r *mpi.Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, 4096)
		} else {
			r.Recv(0, 0)
		}
	})
	if res.Reports[0] != nil {
		t.Error("uninstrumented run should have nil reports")
	}
	if res.Duration <= 0 {
		t.Error("no time elapsed")
	}
	if res.MPITimes[1] <= 0 {
		t.Error("MPI time not tracked without instrumentation")
	}
}

func TestRunRejectsZeroProcs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cluster.Run(cluster.Config{}, func(r *mpi.Rank) {})
}

func TestExplicitTableIsUsed(t *testing.T) {
	// A deliberately wrong table (10x slower) should inflate the data
	// transfer time measure accordingly.
	cost := fabric.DefaultCostModel()
	honest := cluster.Calibrate(cost, nil, 0)
	var inflated []calib.Point
	for _, p := range honest.Points() {
		inflated = append(inflated, calib.Point{Size: p.Size, Time: 10 * p.Time})
	}
	slow, err := calib.NewTable(inflated)
	if err != nil {
		t.Fatal(err)
	}

	run := func(tbl *calib.Table) time.Duration {
		res := cluster.Run(cluster.Config{
			Procs: 2,
			MPI:   mpi.Config{Instrument: &mpi.InstrumentConfig{Table: tbl}},
		}, func(r *mpi.Rank) {
			if r.ID() == 0 {
				r.Send(1, 0, 64<<10)
			} else {
				r.Recv(0, 0)
			}
		})
		return res.Reports[0].Total().DataTransferTime
	}
	if a, b := run(honest), run(slow); b != 10*a {
		t.Errorf("inflated table: data %v vs %v, want exactly 10x", a, b)
	}
}
