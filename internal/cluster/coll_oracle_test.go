package cluster_test

import (
	"fmt"
	"testing"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/coll"
	"ovlp/internal/fabric"
	"ovlp/internal/mpi"
	"ovlp/internal/overlap"
	"ovlp/internal/progress"
)

// Nonblocking-collective oracle validation. Every schedule algorithm
// under every progress mode must produce per-transfer bounds that
// bracket the ground-truth overlap, and the monitor's incremental
// totals must match an independent trace replay — exactly the same
// contract oracle_test.go enforces for point-to-point traffic.

// collCase names one collective invocation in the workload.
type collCase struct {
	op   string
	size int
}

// collWorkload starts the collective, computes with a few interleaved
// TestColl polls, then waits. Root 1 exercises a non-zero root.
func collWorkload(c collCase, polls int, compute time.Duration) func(r *mpi.Rank) {
	return func(r *mpi.Rank) {
		var cr *mpi.CollRequest
		switch c.op {
		case "ibcast":
			cr = r.Ibcast(1%r.Size(), c.size)
		case "ireduce":
			cr = r.Ireduce(1%r.Size(), c.size)
		case "iallreduce":
			cr = r.Iallreduce(c.size)
		case "ialltoall":
			cr = r.Ialltoall(c.size)
		case "ibarrier":
			cr = r.Ibarrier()
		default:
			panic("unknown op " + c.op)
		}
		chunk := compute / time.Duration(polls+1)
		for k := 0; k <= polls; k++ {
			r.Compute(chunk)
			if k < polls {
				r.TestColl(cr)
			}
		}
		r.WaitColl(cr)
		r.Compute(20 * time.Microsecond)
	}
}

// checkCollBounds runs the workload under the given collective/progress
// configuration and applies both oracle checks to every rank.
func checkCollBounds(t *testing.T, procs int, algo coll.Algo, mode progress.Mode, chunk int, workload func(r *mpi.Rank)) {
	t.Helper()
	cost := fabric.DefaultCostModel()
	table := cluster.Calibrate(cost, nil, 0)

	traces := make([][]overlap.Event, procs)
	cfg := cluster.Config{
		Procs: procs,
		Cost:  cost,
		MPI: mpi.Config{
			CollAlgo:  algo,
			CollChunk: chunk,
			Progress:  progress.Config{Mode: mode},
			Instrument: &mpi.InstrumentConfig{
				Table:     table,
				QueueSize: 64,
				TraceSinkFor: func(rank int) func(overlap.Event) {
					return func(e overlap.Event) { traces[rank] = append(traces[rank], e) }
				},
			},
		},
		RecordTruth: true,
	}
	res := cluster.Run(cfg, workload)

	truth := make(map[uint64]fabric.Transfer, len(res.Transfers))
	for _, tr := range res.Transfers {
		truth[tr.XferID] = tr
	}
	eps := cost.LinkLatency + cost.DMAStartup + 2*time.Microsecond

	for rank := 0; rank < procs; rank++ {
		rep := res.Reports[rank]
		o := &traceOracle{table: table, open: map[uint64]oracleOpen{}}
		for _, e := range traces[rank] {
			o.apply(e)
		}
		o.finish(rep.Duration)

		tot := rep.Total()
		if o.sumMin != tot.MinOverlapped || o.sumMax != tot.MaxOverlapped ||
			o.sumData != tot.DataTransferTime || o.count != tot.Count {
			t.Fatalf("rank %d: oracle totals (n=%d min=%v max=%v data=%v) != monitor (n=%d min=%v max=%v data=%v)",
				rank, o.count, o.sumMin, o.sumMax, o.sumData,
				tot.Count, tot.MinOverlapped, tot.MaxOverlapped, tot.DataTransferTime)
		}

		for _, r := range o.results {
			tr, ok := truth[r.id]
			if !ok {
				continue
			}
			trueOv := o.overlapWith(tr.Start.Duration(), tr.End.Duration())
			if r.sameCall && trueOv > eps {
				t.Errorf("rank %d xfer %d (size %d): same-call transfer but true overlap %v > eps",
					rank, r.id, r.size, trueOv)
			}
			if r.minOv > trueOv+eps {
				t.Errorf("rank %d xfer %d (size %d): min bound %v exceeds true overlap %v (+eps %v)",
					rank, r.id, r.size, r.minOv, trueOv, eps)
			}
			fudge := eps + time.Duration(float64(tr.End-tr.Start)/20)
			if trueOv > r.maxOv+fudge {
				t.Errorf("rank %d xfer %d (size %d): true overlap %v exceeds max bound %v (+%v)",
					rank, r.id, r.size, trueOv, r.maxOv, fudge)
			}
		}
	}
}

// TestCollectiveBounds sweeps every nonblocking collective × schedule
// algorithm × progress mode on two message sizes straddling the
// 12 KiB eager/rendezvous threshold (power-of-two world).
func TestCollectiveBounds(t *testing.T) {
	ops := []string{"ibcast", "ireduce", "iallreduce", "ialltoall", "ibarrier"}
	algos := []coll.Algo{coll.Binomial, coll.Ring, coll.RecDouble}
	modes := []progress.Mode{progress.Manual, progress.Piggyback, progress.Thread}
	sizes := []int{4 << 10, 256 << 10}

	for _, op := range ops {
		for _, algo := range algos {
			for _, mode := range modes {
				for _, size := range sizes {
					op, algo, mode, size := op, algo, mode, size
					if op == "ibarrier" && size != sizes[0] {
						continue // barrier carries no payload
					}
					name := fmt.Sprintf("%s/%s/%s/%dKiB", op, algo, mode, size>>10)
					t.Run(name, func(t *testing.T) {
						t.Parallel()
						checkCollBounds(t, 4, algo, mode, 0,
							collWorkload(collCase{op, size}, 2, 400*time.Microsecond))
					})
				}
			}
		}
	}
}

// TestCollectiveBoundsNonPow2 repeats the sweep on a 3-rank world,
// where recursive doubling falls back per-operation.
func TestCollectiveBoundsNonPow2(t *testing.T) {
	ops := []string{"ibcast", "ireduce", "iallreduce", "ialltoall", "ibarrier"}
	for _, op := range ops {
		for _, algo := range []coll.Algo{coll.Binomial, coll.Ring, coll.RecDouble} {
			op, algo := op, algo
			t.Run(fmt.Sprintf("%s/%s", op, algo), func(t *testing.T) {
				t.Parallel()
				checkCollBounds(t, 3, algo, progress.Thread, 0,
					collWorkload(collCase{op, 32 << 10}, 2, 400*time.Microsecond))
			})
		}
	}
}

// TestCollectiveBoundsChunked validates pipelined (chunked) schedules:
// a 256 KiB payload split into 64 KiB chunks.
func TestCollectiveBoundsChunked(t *testing.T) {
	for _, op := range []string{"ibcast", "iallreduce"} {
		for _, mode := range []progress.Mode{progress.Manual, progress.Thread} {
			op, mode := op, mode
			t.Run(fmt.Sprintf("%s/%s", op, mode), func(t *testing.T) {
				t.Parallel()
				checkCollBounds(t, 4, coll.Auto, mode, 64<<10,
					collWorkload(collCase{op, 256 << 10}, 2, 500*time.Microsecond))
			})
		}
	}
}

// TestThreadProgressRecoversMinBound is the headline acceptance check:
// with an application that never polls, the progress thread must
// recover a substantially higher certified minimum overlap than manual
// progression, whose later rounds all complete inside WaitColl (the
// same-call case certifies zero).
func TestThreadProgressRecoversMinBound(t *testing.T) {
	minSum := map[progress.Mode]time.Duration{}
	dataSum := map[progress.Mode]time.Duration{}
	for _, mode := range []progress.Mode{progress.Manual, progress.Thread} {
		cfg := cluster.Config{
			Procs: 8,
			MPI: mpi.Config{
				CollAlgo: coll.Ring,
				Progress: progress.Config{Mode: mode},
				Instrument: &mpi.InstrumentConfig{
					Table: cluster.Calibrate(fabric.DefaultCostModel(), nil, 0),
				},
			},
		}
		res := cluster.Run(cfg, func(r *mpi.Rank) {
			cr := r.Iallreduce(256 << 10)
			r.Compute(4 * time.Millisecond) // no polls at all
			r.WaitColl(cr)
		})
		for _, rep := range res.Reports {
			tot := rep.Total()
			minSum[mode] += tot.MinOverlapped
			dataSum[mode] += tot.DataTransferTime
		}
	}
	if minSum[progress.Thread] <= 2*minSum[progress.Manual] {
		t.Fatalf("thread-mode min bound %v does not dominate manual %v",
			minSum[progress.Thread], minSum[progress.Manual])
	}
	if minSum[progress.Thread] < dataSum[progress.Thread]/4 {
		t.Fatalf("thread-mode min bound %v recovers under a quarter of transfer time %v",
			minSum[progress.Thread], dataSum[progress.Thread])
	}
}
