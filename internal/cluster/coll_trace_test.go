package cluster

import (
	"bytes"
	"testing"
	"time"

	"ovlp/internal/coll"
	"ovlp/internal/fabric"
	"ovlp/internal/mpi"
	"ovlp/internal/progress"
	"ovlp/internal/trace"
)

// TestCollTraceByteIdentical extends the determinism acceptance
// criterion to the worst-case configuration this repo can produce:
// a nonblocking ring Iallreduce progressed by the asynchronous thread
// engine over a lossy link with retransmission. Scheduler order,
// fault sampling, retransmit timers and progress-thread wakeups must
// all replay identically, so two runs export byte-identical traces.
func TestCollTraceByteIdentical(t *testing.T) {
	workload := func(r *mpi.Rank) {
		for i := 0; i < 10; i++ {
			cr := r.Iallreduce(64 << 10)
			r.Compute(150 * time.Microsecond)
			r.WaitColl(cr)
		}
	}
	var files [2][]byte
	for i := range files {
		tr := trace.New(trace.Options{})
		cfg := Config{
			Procs: 4,
			MPI: mpi.Config{
				Instrument: &mpi.InstrumentConfig{},
				Reliable:   &fabric.ReliableParams{},
				CollAlgo:   coll.Ring,
				Progress:   progress.Config{Mode: progress.Thread},
			},
			Faults: &fabric.FaultPlan{
				Seed:    7,
				Default: fabric.LinkFaults{DropRate: 0.1},
			},
			RecordTruth: true,
			Trace:       tr,
		}
		Run(cfg, workload)
		files[i] = export(t, tr)

		// The schedule-attribution instants must be present: every
		// schedule-issued transfer stamps its owning collective.
		sched := 0
		for _, tk := range tr.Tracks() {
			for _, rec := range tk.Recs() {
				if rec.Cat == "coll" && rec.Name == "sched" {
					sched++
					if rec.Args.Detail == "" {
						t.Fatal("sched instant with empty schedule label")
					}
				}
			}
		}
		if sched == 0 {
			t.Fatal("trace carries no collective schedule instants")
		}
	}
	if !bytes.Equal(files[0], files[1]) {
		t.Fatal("fixed-seed faulted collective runs exported different trace bytes")
	}
}
