package cluster

import (
	"fmt"
	"strings"
)

// RankError is one rank's structured failure: the rank that died and
// the error it died with (typically a *mpi.CommError or *armci.CommError
// carrying peer, call site and attempt count). It unwraps to the
// underlying error, so errors.Is/As see through it.
type RankError struct {
	Rank int
	Err  error
}

func (e RankError) Error() string { return fmt.Sprintf("rank %d: %v", e.Rank, e.Err) }

func (e RankError) Unwrap() error { return e.Err }

// RunErrors aggregates every failed rank's error from one run, plus
// the simulation-level error (deadlock, deadline expiry) if the run
// also wedged. It replaces the old first-error-wins behaviour: when
// several ranks fail — e.g. two ranks timing out simultaneously under
// a partition — every failure is reported, each tagged with its rank.
//
// errors.Is and errors.As traverse all contained errors, so existing
// checks like errors.Is(err, mpi.ErrTimeout) keep working.
type RunErrors struct {
	// Ranks lists each failed rank's error in rank order.
	Ranks []RankError
	// Sim is the simulation-level error (*vtime.DeadlockError or a
	// non-rank panic), nil when the simulation itself ran to
	// completion.
	Sim error
}

func (e *RunErrors) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: %d rank(s) failed", len(e.Ranks))
	for _, re := range e.Ranks {
		fmt.Fprintf(&b, "\n  %v", re)
	}
	if e.Sim != nil {
		fmt.Fprintf(&b, "\n  simulation: %v", e.Sim)
	}
	return b.String()
}

// Unwrap exposes every contained error to errors.Is/As.
func (e *RunErrors) Unwrap() []error {
	out := make([]error, 0, len(e.Ranks)+1)
	for _, re := range e.Ranks {
		out = append(out, re)
	}
	if e.Sim != nil {
		out = append(out, e.Sim)
	}
	return out
}

// ByRank returns the given rank's error, or nil if that rank finished
// cleanly.
func (e *RunErrors) ByRank(rank int) error {
	for _, re := range e.Ranks {
		if re.Rank == rank {
			return re.Err
		}
	}
	return nil
}

// combineErrors folds the per-rank recovered errors and the simulation
// error into the run's returned error: nil when nothing failed, the
// bare simulation error when no rank failed (the pre-aggregation
// shape), and a *RunErrors whenever at least one rank failed.
func combineErrors(rankErrs []error, simErr error) error {
	var failed []RankError
	for rank, err := range rankErrs {
		if err != nil {
			failed = append(failed, RankError{Rank: rank, Err: err})
		}
	}
	if len(failed) == 0 {
		return simErr
	}
	return &RunErrors{Ranks: failed, Sim: simErr}
}
