package cluster_test

import (
	"errors"
	"testing"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/fabric"
	"ovlp/internal/mpi"
)

// TestSimultaneousRankFailuresAggregated: two ranks timing out at the
// same time under total loss must both be reported — the old
// first-error-wins path dropped one of them.
func TestSimultaneousRankFailuresAggregated(t *testing.T) {
	res, err := cluster.RunE(cluster.Config{
		Procs: 2,
		MPI: mpi.Config{
			Reliable: &fabric.ReliableParams{Timeout: 20 * time.Microsecond, MaxRetries: 3},
		},
		Faults: &fabric.FaultPlan{
			Seed:    1,
			Default: fabric.LinkFaults{DropRate: 1.0},
		},
		Deadline: time.Second,
	}, func(r *mpi.Rank) {
		// Both ranks send into the void simultaneously; neither ever
		// sees an ack, so both exhaust their retry budget.
		r.Send(1-r.ID(), 0, 1024)
	})
	if err == nil {
		t.Fatal("want an aggregated error, got nil")
	}
	var re *cluster.RunErrors
	if !errors.As(err, &re) {
		t.Fatalf("want *cluster.RunErrors, got %T: %v", err, err)
	}
	if len(re.Ranks) != 2 {
		t.Fatalf("want both ranks reported, got %d: %v", len(re.Ranks), re)
	}
	for rank := 0; rank < 2; rank++ {
		rerr := re.ByRank(rank)
		if rerr == nil {
			t.Fatalf("rank %d missing from aggregate: %v", rank, re)
		}
		if !errors.Is(rerr, mpi.ErrPeerUnreachable) {
			t.Fatalf("rank %d: want ErrPeerUnreachable, got %v", rank, rerr)
		}
		var ce *mpi.CommError
		if !errors.As(rerr, &ce) {
			t.Fatalf("rank %d: want *mpi.CommError with call-site detail, got %v", rank, rerr)
		}
		if ce.Rank != rank || ce.Peer != 1-rank || ce.Op == "" {
			t.Fatalf("rank %d: bad CommError detail: %+v", rank, ce)
		}
		if res.RankErrors[rank] == nil {
			t.Fatalf("Result.RankErrors[%d] not populated", rank)
		}
	}
	// The whole-run error still satisfies sentinel matching.
	if !errors.Is(err, mpi.ErrPeerUnreachable) {
		t.Fatalf("aggregate loses sentinel matching: %v", err)
	}
}

// TestNoRetriesSentinelSurfacesUnreachable: the NoRetries sentinel
// must mean exactly zero retransmissions (MaxRetries: 0 selects the
// default budget, so "no retries" needs the sentinel), and the
// resulting retry exhaustion must surface as ErrPeerUnreachable
// through cluster.RunE's per-rank error aggregation, not just at the
// fabric layer.
func TestNoRetriesSentinelSurfacesUnreachable(t *testing.T) {
	res, err := cluster.RunE(cluster.Config{
		Procs: 2,
		MPI: mpi.Config{
			Reliable: &fabric.ReliableParams{Timeout: 20 * time.Microsecond, MaxRetries: fabric.NoRetries},
		},
		Faults: &fabric.FaultPlan{
			Seed:   1,
			Stalls: []fabric.StallWindow{{Node: 1, Start: 0, End: fabric.Forever}},
		},
		Deadline: time.Second,
	}, func(r *mpi.Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, 1024)
		} else {
			r.Recv(0, 0)
		}
	})
	if !errors.Is(err, mpi.ErrPeerUnreachable) {
		t.Fatalf("want ErrPeerUnreachable, got %v", err)
	}
	var re *cluster.RunErrors
	if !errors.As(err, &re) {
		t.Fatalf("want *cluster.RunErrors, got %T: %v", err, err)
	}
	rerr := re.ByRank(0)
	if rerr == nil {
		t.Fatalf("rank 0 failure missing from aggregate: %v", re)
	}
	var ce *mpi.CommError
	if !errors.As(rerr, &ce) {
		t.Fatalf("want *mpi.CommError, got %v", rerr)
	}
	if ce.Attempts != 1 {
		t.Fatalf("NoRetries must mean a single attempt, got %d", ce.Attempts)
	}
	if res.RankErrors[0] == nil {
		t.Fatalf("Result.RankErrors[0] not populated")
	}
	for rank, rs := range res.RelStats {
		if rs.Retransmits != 0 {
			t.Fatalf("NoRetries must suppress retransmission, rank %d resent %d times", rank, rs.Retransmits)
		}
	}
}

// TestSingleRankFailureKeepsShape: with exactly one failing rank the
// aggregate still reports it (as a *RunErrors) and sentinel matching
// is preserved; the healthy rank has no entry.
func TestSingleRankFailureKeepsShape(t *testing.T) {
	res, err := cluster.RunE(cluster.Config{
		Procs: 2,
		MPI: mpi.Config{
			Reliable: &fabric.ReliableParams{Timeout: 20 * time.Microsecond, MaxRetries: 2},
		},
		Faults: &fabric.FaultPlan{
			Seed:   1,
			Stalls: []fabric.StallWindow{{Node: 0, Start: 0, End: fabric.Forever}},
		},
		Deadline: time.Second,
	}, func(r *mpi.Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, 1024)
		} else {
			r.Recv(0, 0)
		}
	})
	if !errors.Is(err, mpi.ErrPeerUnreachable) {
		t.Fatalf("want ErrPeerUnreachable, got %v", err)
	}
	var re *cluster.RunErrors
	if !errors.As(err, &re) {
		t.Fatalf("want *cluster.RunErrors, got %T", err)
	}
	if re.ByRank(0) == nil {
		t.Fatalf("rank 0 failure missing: %v", re)
	}
	// Rank 1 blocks in Recv forever; its slot stays nil and the
	// simulation-level deadlock is carried alongside.
	if res.RankErrors[1] != nil {
		t.Fatalf("healthy-but-stuck rank 1 should have no rank error, got %v", res.RankErrors[1])
	}
	if re.Sim == nil {
		t.Fatalf("want the deadline/deadlock carried in Sim, got %v", re)
	}
}
