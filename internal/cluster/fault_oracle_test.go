package cluster_test

import (
	"encoding/json"
	"errors"
	"math/rand"
	"testing"
	"time"

	"ovlp/internal/armci"
	"ovlp/internal/cluster"
	"ovlp/internal/fabric"
	"ovlp/internal/mpi"
	"ovlp/internal/overlap"
	"ovlp/internal/vtime"
)

// The fault-oracle tests extend the ground-truth validation to
// misbehaving networks: under packet loss, duplication, jitter and
// finite DMA stalls, the reliable-delivery layer retransmits behind
// the instrumentation's back, and the derived bounds must still
// bracket the true overlap of every delivered transfer. Bandwidth
// degradation and large jitter are deliberately excluded — they break
// the a-priori calibration premise the bounds algorithm rests on, so
// no instrumentation-side guarantee exists there.

const faultJitterMax = 2 * time.Microsecond

// randomFaultPlan derives an oracle-safe fault plan from seed: drops,
// duplicates, small jitter, and (on some seeds) one finite stall.
func randomFaultPlan(seed int64, procs int) *fabric.FaultPlan {
	rng := rand.New(rand.NewSource(seed * 7919))
	plan := &fabric.FaultPlan{
		Seed: seed,
		Default: fabric.LinkFaults{
			DropRate:  0.02 + 0.10*rng.Float64(),
			DupRate:   0.10 * rng.Float64(),
			JitterMax: time.Duration(rng.Int63n(int64(faultJitterMax))),
		},
	}
	if rng.Intn(2) == 0 {
		start := vtime.Time(time.Duration(1+rng.Intn(500)) * time.Microsecond)
		plan.Stalls = []fabric.StallWindow{{
			Node:  fabric.NodeID(rng.Intn(procs)),
			Start: start,
			End:   start + vtime.Time(100*time.Microsecond),
		}}
	}
	return plan
}

func TestBoundsUnderRandomFaults(t *testing.T) {
	for _, proto := range []mpi.LongProtocol{mpi.PipelinedRDMA, mpi.DirectRDMARead} {
		for _, p := range []int{2, 4} {
			for seed := int64(1); seed <= 4; seed++ {
				proto, p, seed := proto, p, seed
				t.Run("", func(t *testing.T) {
					checkFaultyWorkload(t, proto, p, seed)
				})
			}
		}
	}
}

func checkFaultyWorkload(t *testing.T, proto mpi.LongProtocol, p int, seed int64) {
	t.Helper()
	cost := fabric.DefaultCostModel()
	table := cluster.Calibrate(cost, nil, 0)
	plan := randomFaultPlan(seed, p)

	traces := make([][]overlap.Event, p)
	cfg := cluster.Config{
		Procs: p,
		Cost:  cost,
		MPI: mpi.Config{
			Protocol: proto,
			Reliable: &fabric.ReliableParams{},
			Instrument: &mpi.InstrumentConfig{
				Table:     table,
				QueueSize: 64,
				TraceSinkFor: func(rank int) func(overlap.Event) {
					return func(e overlap.Event) { traces[rank] = append(traces[rank], e) }
				},
			},
		},
		RecordTruth: true,
		Faults:      plan,
		Deadline:    10 * time.Second,
	}
	res, err := cluster.RunE(cfg, randomWorkload(p, seed))
	if err != nil {
		t.Fatalf("proto %v p %d seed %d: run failed under faults: %v", proto, p, seed, err)
	}

	var retransmits int
	for _, rs := range res.RelStats {
		retransmits += rs.Retransmits + rs.Reposts
	}
	t.Logf("proto %v p %d seed %d: faults %+v, %d retransmit(s)/repost(s)",
		proto, p, seed, res.FaultStats, retransmits)

	truth := make(map[uint64]fabric.Transfer, len(res.Transfers))
	for _, tr := range res.Transfers {
		truth[tr.XferID] = tr
	}
	// Retransmission widens the library's detection window but the
	// wire-level transfer itself still matches calibration, so only the
	// jitter bound joins the usual library-view tolerance.
	eps := cost.LinkLatency + cost.DMAStartup + 2*time.Microsecond + faultJitterMax

	for rank := 0; rank < p; rank++ {
		rep := res.Reports[rank]
		o := &traceOracle{table: table, open: map[uint64]oracleOpen{}}
		for _, e := range traces[rank] {
			o.apply(e)
		}
		o.finish(rep.Duration)

		// (1) Internal consistency survives fault-induced event
		// orderings (spurious completions, late acks, drained queues).
		tot := rep.Total()
		if o.sumMin != tot.MinOverlapped || o.sumMax != tot.MaxOverlapped ||
			o.sumData != tot.DataTransferTime || o.count != tot.Count {
			t.Fatalf("rank %d (proto %v seed %d): oracle totals (n=%d min=%v max=%v data=%v) "+
				"!= monitor (n=%d min=%v max=%v data=%v)",
				rank, proto, seed, o.count, o.sumMin, o.sumMax, o.sumData,
				tot.Count, tot.MinOverlapped, tot.MaxOverlapped, tot.DataTransferTime)
		}

		// (2) Physical validity: retransmits must never inflate the
		// bounds past the truth.
		for _, r := range o.results {
			tr, ok := truth[r.id]
			if !ok {
				continue
			}
			trueOv := o.overlapWith(tr.Start.Duration(), tr.End.Duration())
			fudge := eps + time.Duration(float64(tr.End-tr.Start)/20)
			if r.sameCall && trueOv > fudge {
				t.Errorf("rank %d xfer %d (size %d): same-call transfer but true overlap %v > %v",
					rank, r.id, r.size, trueOv, fudge)
			}
			if r.minOv > trueOv+fudge {
				t.Errorf("rank %d xfer %d (size %d): min bound %v exceeds true overlap %v (+%v)",
					rank, r.id, r.size, r.minOv, trueOv, fudge)
			}
			if trueOv > r.maxOv+fudge {
				t.Errorf("rank %d xfer %d (size %d): true overlap %v exceeds max bound %v (+%v)",
					rank, r.id, r.size, trueOv, r.maxOv, fudge)
			}
		}
	}
}

// faultRunSignature reduces a run to comparable bytes: the per-rank
// reports plus every counter that fault injection touches.
func faultRunSignature(t *testing.T, res cluster.Result) []byte {
	t.Helper()
	sig, err := json.Marshal(struct {
		Reports    []*overlap.Report
		Duration   time.Duration
		MPITimes   []time.Duration
		FaultStats fabric.FaultStats
		RelStats   []fabric.RelStats
	}{res.Reports, res.Duration, res.MPITimes, res.FaultStats, res.RelStats})
	if err != nil {
		t.Fatalf("marshal run signature: %v", err)
	}
	return sig
}

func faultDeterminismRun(t *testing.T, seed int64) cluster.Result {
	t.Helper()
	res, err := cluster.RunE(cluster.Config{
		Procs: 4,
		MPI: mpi.Config{
			Protocol:   mpi.PipelinedRDMA,
			Instrument: &mpi.InstrumentConfig{},
		},
		Faults: randomFaultPlan(seed, 4),
	}, randomWorkload(4, seed))
	if err != nil {
		t.Fatalf("seed %d: run failed: %v", seed, err)
	}
	return res
}

// TestFaultPlanDeterminism: the same FaultPlan seed must reproduce the
// run bit for bit — reports, durations and every fault counter.
func TestFaultPlanDeterminism(t *testing.T) {
	a := faultRunSignature(t, faultDeterminismRun(t, 3))
	b := faultRunSignature(t, faultDeterminismRun(t, 3))
	if string(a) != string(b) {
		t.Fatalf("same seed, different runs:\n%s\nvs\n%s", a, b)
	}
	c := faultRunSignature(t, faultDeterminismRun(t, 4))
	if string(a) == string(c) {
		t.Fatal("different fault seeds produced identical runs")
	}
}

// TestInactivePlanIsByteIdentical: a nil or zero-rate plan must leave
// the run byte-for-byte identical to one with no plan at all.
func TestInactivePlanIsByteIdentical(t *testing.T) {
	run := func(plan *fabric.FaultPlan) []byte {
		res, err := cluster.RunE(cluster.Config{
			Procs: 2,
			MPI: mpi.Config{
				Protocol:   mpi.DirectRDMARead,
				Instrument: &mpi.InstrumentConfig{},
			},
			Faults: plan,
		}, randomWorkload(2, 5))
		if err != nil {
			t.Fatalf("run failed: %v", err)
		}
		return faultRunSignature(t, res)
	}
	bare := run(nil)
	zero := run(&fabric.FaultPlan{Seed: 99}) // seeded but all rates zero
	if string(bare) != string(zero) {
		t.Fatalf("inactive fault plan perturbed the run:\n%s\nvs\n%s", bare, zero)
	}
}

// TestRetryExhaustionPeerUnreachable: total loss toward a peer that
// never answers must surface as mpi.ErrPeerUnreachable from RunE, not
// as a panic or a hang.
func TestRetryExhaustionPeerUnreachable(t *testing.T) {
	_, err := cluster.RunE(cluster.Config{
		Procs: 2,
		MPI: mpi.Config{
			Reliable: &fabric.ReliableParams{Timeout: 20 * time.Microsecond, MaxRetries: 3},
		},
		Faults: &fabric.FaultPlan{
			Seed:    1,
			Default: fabric.LinkFaults{DropRate: 1.0},
		},
		Deadline: time.Second,
	}, func(r *mpi.Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, 1024)
		} else {
			r.Recv(0, 0)
		}
	})
	if !errors.Is(err, mpi.ErrPeerUnreachable) {
		t.Fatalf("want mpi.ErrPeerUnreachable, got %v", err)
	}
	var ce *mpi.CommError
	if !errors.As(err, &ce) {
		t.Fatalf("want *mpi.CommError in chain, got %v", err)
	}
	if ce.Rank != 0 || ce.Peer != 1 || ce.Attempts != 4 {
		t.Fatalf("bad CommError detail: %+v", ce)
	}
}

// TestRetryExhaustionTimeout: when the peer has answered before (so it
// is demonstrably alive) and retransmission is disabled, a lost packet
// must surface as mpi.ErrTimeout.
func TestRetryExhaustionTimeout(t *testing.T) {
	_, err := cluster.RunE(cluster.Config{
		Procs: 2,
		MPI: mpi.Config{
			// NoRetries: first timeout is fatal.
			Reliable: &fabric.ReliableParams{Timeout: 20 * time.Microsecond, MaxRetries: fabric.NoRetries},
		},
		Faults: &fabric.FaultPlan{
			Seed: 1,
			// Drop packets 2, 4, ... on every link: the first message
			// and its ack get through, the second message is lost.
			Default: fabric.LinkFaults{DropEvery: 2},
		},
		Deadline: time.Second,
	}, func(r *mpi.Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, 256)
			r.Send(1, 0, 256)
		} else {
			r.Recv(0, 0)
			r.Recv(0, 0)
		}
	})
	if !errors.Is(err, mpi.ErrTimeout) {
		t.Fatalf("want mpi.ErrTimeout, got %v", err)
	}
}

// TestPermanentStallSurfacesError: a NIC blackholed from t=0 makes its
// rank's traffic vanish without a trace; with reliable delivery the
// sender must give up with a structured error instead of deadlocking.
func TestPermanentStallSurfacesError(t *testing.T) {
	_, err := cluster.RunE(cluster.Config{
		Procs: 2,
		MPI: mpi.Config{
			Reliable: &fabric.ReliableParams{Timeout: 20 * time.Microsecond, MaxRetries: 2},
		},
		Faults: &fabric.FaultPlan{
			Seed:   1,
			Stalls: []fabric.StallWindow{{Node: 0, Start: 0, End: fabric.Forever}},
		},
		Deadline: time.Second,
	}, func(r *mpi.Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, 1024)
		} else {
			r.Recv(0, 0)
		}
	})
	if !errors.Is(err, mpi.ErrPeerUnreachable) {
		t.Fatalf("want mpi.ErrPeerUnreachable from a blackholed NIC, got %v", err)
	}
}

// TestDeadlockReturnsStructuredError: a genuinely stuck program (a
// receive nobody matches) must come back from RunE as a typed
// *vtime.DeadlockError naming the stuck process, not as a panic.
func TestDeadlockReturnsStructuredError(t *testing.T) {
	_, err := cluster.RunE(cluster.Config{Procs: 2}, func(r *mpi.Rank) {
		if r.ID() == 0 {
			r.Recv(1, 7) // never sent
		}
	})
	var de *vtime.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("want *vtime.DeadlockError, got %v", err)
	}
	if len(de.Procs) == 0 {
		t.Fatalf("deadlock report names no processes: %+v", de)
	}
}

// TestDeadlineExpiryReturnsError: Config.Deadline bounds runaway
// virtual time with the same structured error.
func TestDeadlineExpiryReturnsError(t *testing.T) {
	_, err := cluster.RunE(cluster.Config{
		Procs:    2,
		Deadline: 5 * time.Millisecond,
	}, func(r *mpi.Rank) {
		for {
			r.Compute(time.Millisecond)
		}
	})
	var de *vtime.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("want *vtime.DeadlockError on deadline expiry, got %v", err)
	}
}

// TestARMCIUnderFaults: the one-sided library recovers from loss too —
// puts, gets and barriers complete through retransmission and the
// repair work is visible in the counters.
func TestARMCIUnderFaults(t *testing.T) {
	res, err := cluster.RunARMCIE(cluster.ARMCIConfig{
		Procs: 2,
		ARMCI: armci.Config{Instrument: &armci.InstrumentConfig{}},
		Faults: &fabric.FaultPlan{
			Seed:    2,
			Default: fabric.LinkFaults{DropRate: 0.3, DupRate: 0.1},
		},
		Deadline: 10 * time.Second,
	}, func(p *armci.Proc) {
		if p.ID() == 0 {
			for i := 0; i < 8; i++ {
				h := p.NbPut(1, 64<<10)
				p.Compute(200 * time.Microsecond)
				p.WaitHandle(h)
			}
			p.Get(1, 32<<10)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatalf("ARMCI run failed under faults: %v", err)
	}
	if res.Reports[0].Total().Count < 9 {
		t.Fatalf("proc 0 completed %d transfers, want >=9", res.Reports[0].Total().Count)
	}
	var repairs int
	for _, rs := range res.RelStats {
		repairs += rs.Retransmits + rs.Reposts
	}
	if res.FaultStats.Dropped == 0 || repairs == 0 {
		t.Fatalf("expected injected drops and repairs, got faults %+v, %d repair(s)",
			res.FaultStats, repairs)
	}
}
