package cluster

// Fault-tolerant runs: crash-stop failures with detect→agree→recover
// epochs. RunFT drives a Checkpointable workload under a crash plan;
// when a rank dies, the survivors agree on the failure (mpi.Agree),
// abandon the failed epoch (mpi.EpochCut) and continue on the
// shrunken communicator — either from the earliest step every
// survivor completed (ShrinkContinue) or from the last committed
// in-memory checkpoint (CheckpointRestart). Recovery phases run inside
// dedicated monitored regions ("ft-agree", "ft-checkpoint",
// "ft-rollback", "ft-recompute"), which is how the offline profiler
// attributes recovery cost to the agree/rollback/recompute blame
// causes, and every epoch boundary is an instant on the rank's trace
// track.

import (
	"errors"
	"fmt"
	"time"

	"ovlp/internal/fabric"
	"ovlp/internal/mpi"
)

// RecoveryMode selects what the survivors do after an agreed failure.
type RecoveryMode int

const (
	// ShrinkContinue keeps the survivors' in-memory state and resumes
	// from the earliest step every survivor completed (degraded mode:
	// fewer ranks, no state restore).
	ShrinkContinue RecoveryMode = iota
	// CheckpointRestart restores from the last committed in-memory
	// checkpoint (neighbor-replicated at every checkpoint interval) and
	// replays from there.
	CheckpointRestart
)

func (m RecoveryMode) String() string {
	switch m {
	case ShrinkContinue:
		return "shrink-continue"
	case CheckpointRestart:
		return "checkpoint-restart"
	}
	return "invalid"
}

// ParseRecoveryMode parses a mode's String form; "" selects the
// default ShrinkContinue, so flag and scenario defaults agree.
func ParseRecoveryMode(s string) (RecoveryMode, error) {
	switch s {
	case "", ShrinkContinue.String():
		return ShrinkContinue, nil
	case CheckpointRestart.String():
		return CheckpointRestart, nil
	}
	return 0, fmt.Errorf("unknown recovery mode %q (want %s or %s)",
		s, ShrinkContinue, CheckpointRestart)
}

// Checkpointable is the workload contract the fault-tolerant runner
// drives: a stepwise computation that can rebuild its communication
// structure on a (possibly shrunken) communicator and whose per-rank
// state has a declared size, so checkpoint and restore traffic can be
// modelled faithfully.
type Checkpointable interface {
	// Name identifies the workload in results and traces.
	Name() string
	// Steps is the number of recoverable work units.
	Steps() int
	// StateBytes is the per-rank checkpoint payload when the workload
	// runs on procs ranks.
	StateBytes(procs int) int
	// Init prepares the workload on c — called once at start and again
	// after every shrink, so implementations must tolerate a changed
	// communicator size.
	Init(c *mpi.Comm)
	// Step runs one work unit on c. Steps replayed after a rollback are
	// re-invoked with the same index.
	Step(c *mpi.Comm, step int)
}

// Recovery-phase region names. internal/profile classifies transfers
// inside them as agree/rollback/recompute blame — keep in sync with
// the constants there.
const (
	regionAgree      = "ft-agree"
	regionCheckpoint = "ft-checkpoint"
	regionRollback   = "ft-rollback"
	regionRecompute  = "ft-recompute"
)

// checkpointTag is the reserved point-to-point tag of the neighbor
// replica exchange.
const checkpointTag = 911

// FTOptions parameterizes recovery policy.
type FTOptions struct {
	// Mode selects shrink-continue (default) or checkpoint-restart.
	Mode RecoveryMode
	// CheckpointEvery is the step interval between checkpoints in
	// CheckpointRestart mode; 0 means every step.
	CheckpointEvery int
	// CheckpointBandwidth models the local serialize/copy rate of
	// checkpoint state, in bytes per second; 0 means 4 GiB/s.
	CheckpointBandwidth float64
	// MinProcs aborts the run (ErrTooFewSurvivors) when an agreement
	// leaves fewer active ranks; 0 means 1.
	MinProcs int
	// Heartbeat overrides the failure detector's ping period (see
	// mpi.FTConfig); 0 keeps the default. Ignored when the cluster
	// Config already carries an MPI.FT configuration.
	Heartbeat time.Duration
}

func (o *FTOptions) fillDefaults() {
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 1
	}
	if o.CheckpointBandwidth <= 0 {
		o.CheckpointBandwidth = 4 << 30
	}
	if o.MinProcs <= 0 {
		o.MinProcs = 1
	}
}

// ErrTooFewSurvivors reports that an agreed failure left fewer active
// ranks than FTOptions.MinProcs, so the workload could not continue.
var ErrTooFewSurvivors = errors.New("cluster: too few survivors to continue")

// FTResult extends Result with what the recovery machinery observed.
type FTResult struct {
	Result
	// Epochs is the number of recovery epochs entered (0 for a
	// failure-free run: everything happened in epoch 0).
	Epochs int
	// Failed is the final agreed set of dead world ranks, ascending.
	Failed []int
	// Survivors is the active membership after the last agreement
	// (world ranks, ascending); nil for a failure-free run.
	Survivors []int
	// Checkpoints counts committed checkpoints (CheckpointRestart).
	Checkpoints int
	// ReplayedSteps counts work units re-executed after rollbacks,
	// summed over ranks.
	ReplayedSteps int
	// Completed reports whether the workload ran all its steps.
	Completed bool
}

// ftShared is the run-wide recovery bookkeeping. Ranks execute under
// the simulator's coroutine discipline, so plain fields suffice.
type ftShared struct {
	epochs      int
	failed      []int
	survivors   []int
	checkpoints int
	replayed    int
	completed   bool
	tooFew      bool
}

// RunFT executes a Checkpointable workload on a fault-tolerant
// machine and returns the observations. Crash-stop failures declared
// in cfg.Crashes are injected, detected, agreed and recovered; the
// planned crashes' rank errors are expected and filtered from the
// returned error, so a run that loses exactly the planned ranks and
// completes returns nil. MPI fault tolerance (cfg.MPI.FT) and reliable
// delivery are enabled automatically.
func RunFT(cfg Config, opt FTOptions, wl Checkpointable) (FTResult, error) {
	opt.fillDefaults()
	if wl == nil {
		panic("cluster: RunFT requires a workload")
	}
	if cfg.MPI.FT == nil {
		cfg.MPI.FT = &mpi.FTConfig{HeartbeatPeriod: opt.Heartbeat}
	}
	if cfg.MPI.Reliable == nil {
		cfg.MPI.Reliable = &fabric.ReliableParams{}
	}
	st := &ftShared{}
	res, err := RunE(cfg, ftMain(opt, wl, st))
	out := FTResult{
		Result:        res,
		Epochs:        st.epochs,
		Failed:        st.failed,
		Survivors:     st.survivors,
		Checkpoints:   st.checkpoints,
		ReplayedSteps: st.replayed,
		Completed:     st.completed,
	}
	err = filterExpectedCrashes(err, cfg.Crashes)
	if st.tooFew && err == nil {
		err = fmt.Errorf("%w: %d < %d after failure of ranks %v",
			ErrTooFewSurvivors, len(st.survivors), opt.MinProcs, st.failed)
	}
	return out, err
}

// ftMain is the per-rank driver: protected work segments with an
// agree→cut→shrink→rollback recovery loop between them.
func ftMain(opt FTOptions, wl Checkpointable, st *ftShared) func(r *mpi.Rank) {
	return func(r *mpi.Rank) {
		c := r.World()
		step := 0      // next work unit to run
		reached := 0   // highest step this rank ever completed
		committed := 0 // last committed checkpoint step (0 = initial state)
		needInit := true
		needRestore := false
		for {
			err := r.Protect(func() {
				if needInit {
					wl.Init(c)
					needInit = false
				}
				if needRestore {
					restoreCheckpoint(r, c, wl, opt)
					needRestore = false
				}
				for step < wl.Steps() {
					if opt.Mode == CheckpointRestart && step > committed && step%opt.CheckpointEvery == 0 {
						takeCheckpoint(r, c, wl, opt)
						committed = step
						if c.Rank() == 0 {
							st.checkpoints++
						}
					}
					if step < reached {
						r.PushRegion(regionRecompute)
						wl.Step(c, step)
						r.PopRegion()
						st.replayed++
					} else {
						wl.Step(c, step)
					}
					step++
					if step > reached {
						reached = step
					}
				}
			})
			if err == nil {
				st.completed = true
				return
			}
			// Recovery: agree on who died and where to resume, close the
			// failed epoch, and continue on the surviving ranks.
			vote := step
			if opt.Mode == CheckpointRestart {
				vote = committed
			}
			r.PushRegion(regionAgree)
			res := r.Agree(vote, step >= wl.Steps())
			r.EpochCut()
			c = r.Shrink()
			r.PopRegion()
			if ep := r.Epoch(); ep > st.epochs {
				st.epochs = ep
			}
			if len(res.Failed) > len(st.failed) {
				st.failed = res.Failed
				st.survivors = res.Active
			}
			if len(res.Active) < opt.MinProcs {
				st.tooFew = true
				return
			}
			if res.AllDone {
				// Every active survivor had already finished its steps;
				// nothing to resume.
				st.completed = true
				return
			}
			step = res.MinStep
			needInit = true
			if opt.Mode == CheckpointRestart {
				committed = res.MinStep
				needRestore = true
			}
		}
	}
}

// copyCost models the host-side serialize/copy time of a checkpoint
// payload.
func copyCost(bytes int, opt FTOptions) time.Duration {
	return time.Duration(float64(bytes) / opt.CheckpointBandwidth * float64(time.Second))
}

// takeCheckpoint commits one in-memory checkpoint: each rank copies
// its state and replicates it to its ring neighbor (buddy scheme), and
// a barrier marks the commit point — a crash mid-checkpoint rolls the
// run back to the previous committed step.
func takeCheckpoint(r *mpi.Rank, c *mpi.Comm, wl Checkpointable, opt FTOptions) {
	r.PushRegion(regionCheckpoint)
	defer r.PopRegion()
	bytes := wl.StateBytes(c.Size())
	if n := c.Size(); n > 1 {
		next, prev := (c.Rank()+1)%n, (c.Rank()+n-1)%n
		c.Sendrecv(next, checkpointTag, bytes, prev, checkpointTag)
	}
	r.Compute(copyCost(bytes, opt))
	c.Barrier()
}

// restoreCheckpoint is the rollback phase: survivors fetch the replica
// partition of their lost neighbor's state, copy their own back in,
// and resynchronize.
func restoreCheckpoint(r *mpi.Rank, c *mpi.Comm, wl Checkpointable, opt FTOptions) {
	r.PushRegion(regionRollback)
	defer r.PopRegion()
	bytes := wl.StateBytes(c.Size())
	if n := c.Size(); n > 1 {
		next, prev := (c.Rank()+1)%n, (c.Rank()+n-1)%n
		c.Sendrecv(prev, checkpointTag, bytes, next, checkpointTag)
	}
	r.Compute(copyCost(bytes, opt))
	c.Barrier()
}

// filterExpectedCrashes removes the planned crash-stop failures from a
// run's error: a rank that died because the crash plan said so is an
// injected condition, not a run failure. Unexpected rank errors and
// simulation-level errors (deadlock, deadline) survive the filter.
func filterExpectedCrashes(err error, plan *fabric.CrashPlan) error {
	if err == nil || !plan.Active() {
		return err
	}
	planned := make(map[int]bool, len(plan.Crashes))
	for _, cr := range plan.Crashes {
		planned[int(cr.Node)] = true
	}
	re, ok := err.(*RunErrors)
	if !ok {
		return err
	}
	var kept []RankError
	for _, r := range re.Ranks {
		var nce *fabric.NodeCrashedError
		if planned[r.Rank] && errors.As(r.Err, &nce) {
			continue
		}
		kept = append(kept, r)
	}
	if len(kept) == 0 && re.Sim == nil {
		return nil
	}
	if len(kept) == 0 {
		return re.Sim
	}
	return &RunErrors{Ranks: kept, Sim: re.Sim}
}
