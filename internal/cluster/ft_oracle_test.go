package cluster_test

import (
	"testing"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/fabric"
	"ovlp/internal/mpi"
	"ovlp/internal/overlap"
	"ovlp/internal/progress"
	"ovlp/internal/vtime"
)

// The crash-recovery oracle extends the ground-truth validation to
// runs that lose ranks: with epoch cuts splitting each rank's stream,
// the per-epoch measures must still be internally consistent with an
// independent replay of the event stream, the epochs must sum exactly
// to the whole-run totals, and the derived bounds must bracket the
// true overlap of every transfer the wire actually delivered — no
// matter whether the crash lands mid-rendezvous, mid-collective or
// inside a checkpoint, and regardless of who advances the progress
// engine.

// epochSums is one epoch's slice of the oracle's running totals.
type epochSums struct {
	sumMin, sumMax, sumData time.Duration
	count, truncated        int
}

// epochOracle replays one rank's event stream epoch by epoch,
// mirroring the monitor's bounds algorithm including cut-truncation.
type epochOracle struct {
	table interface {
		XferTime(int) time.Duration
	}

	lastStamp time.Duration
	inLib     bool
	callSeq   uint64
	cumUser   time.Duration
	cumLib    time.Duration

	open          map[uint64]oracleOpen
	results       []oracleResult
	userIntervals []interval
	lastExit      time.Duration

	epochs []epochSums
}

func newEpochOracle(table interface{ XferTime(int) time.Duration }) *epochOracle {
	return &epochOracle{table: table, open: map[uint64]oracleOpen{}, epochs: []epochSums{{}}}
}

func (o *epochOracle) cur() *epochSums { return &o.epochs[len(o.epochs)-1] }

func (o *epochOracle) advance(stamp time.Duration) {
	span := stamp - o.lastStamp
	if o.inLib {
		o.cumLib += span
	} else {
		o.cumUser += span
	}
	o.lastStamp = stamp
}

func (o *epochOracle) record(res oracleResult) {
	o.results = append(o.results, res)
	e := o.cur()
	e.sumMin += res.minOv
	e.sumMax += res.maxOv
	e.sumData += o.table.XferTime(int(res.size))
	e.count++
}

// truncateOpen resolves every in-flight transfer as single-stamped
// (zero min, full max) — what the monitor does at a cut or Finalize.
func (o *epochOracle) truncateOpen() {
	for id, rec := range o.open {
		o.record(oracleResult{id: id, size: rec.size, minOv: 0, maxOv: o.table.XferTime(int(rec.size))})
		o.cur().truncated++
		delete(o.open, id)
	}
}

func (o *epochOracle) apply(e overlap.Event) {
	o.advance(e.Stamp)
	switch e.Kind {
	case overlap.KindCallEnter:
		o.inLib = true
		o.callSeq++
		if e.Stamp > o.lastExit {
			o.userIntervals = append(o.userIntervals, interval{o.lastExit, e.Stamp})
		}
	case overlap.KindCallExit:
		o.inLib = false
		o.lastExit = e.Stamp
	case overlap.KindXferBegin:
		o.open[e.ID] = oracleOpen{size: e.Size, cumUser: o.cumUser, cumLib: o.cumLib, callSeq: o.callSeq}
	case overlap.KindXferEnd:
		xt := o.table.XferTime(int(e.Size))
		rec, seen := o.open[e.ID]
		if !seen {
			o.record(oracleResult{id: e.ID, size: e.Size, minOv: 0, maxOv: xt})
			return
		}
		delete(o.open, e.ID)
		xt = o.table.XferTime(int(rec.size))
		if rec.callSeq == o.callSeq && o.inLib {
			o.record(oracleResult{id: e.ID, size: rec.size, twoSided: true, sameCall: true})
			return
		}
		comp := o.cumUser - rec.cumUser
		noncomp := o.cumLib - rec.cumLib
		maxOv := min(comp, xt)
		minOv := max(0, xt-noncomp)
		minOv = min(minOv, maxOv)
		o.record(oracleResult{id: e.ID, size: rec.size, minOv: minOv, maxOv: maxOv, twoSided: true})
	case overlap.KindEpochCut:
		o.truncateOpen()
		o.epochs = append(o.epochs, epochSums{})
	}
}

func (o *epochOracle) finish(stamp time.Duration) {
	o.advance(stamp)
	if !o.inLib && stamp > o.lastExit {
		o.userIntervals = append(o.userIntervals, interval{o.lastExit, stamp})
	}
	o.truncateOpen()
}

func (o *epochOracle) overlapWith(start, end time.Duration) time.Duration {
	var total time.Duration
	for _, iv := range o.userIntervals {
		s, e := max(start, iv.start), min(end, iv.end)
		if e > s {
			total += e - s
		}
	}
	return total
}

// collWL stresses collectives: each step is mostly a mid-sized
// allreduce, so a crash lands inside one with high probability.
type collWL struct {
	steps   int
	bytes   int
	compute time.Duration
}

func (w *collWL) Name() string             { return "coll" }
func (w *collWL) Steps() int               { return w.steps }
func (w *collWL) StateBytes(procs int) int { return w.bytes }
func (w *collWL) Init(c *mpi.Comm)         { c.Bcast(0, 8) }
func (w *collWL) Step(c *mpi.Comm, step int) {
	c.Host().Compute(w.compute)
	c.Allreduce(w.bytes)
	c.Alltoall(w.bytes / c.Size())
}

// ftOracleCase is one cell of the crash matrix.
type ftOracleCase struct {
	name  string
	mode  cluster.RecoveryMode
	wl    cluster.Checkpointable
	crash time.Duration
	every int
}

func ftOracleCases() []ftOracleCase {
	return []ftOracleCase{
		// Large rendezvous messages in flight when the node dies.
		{"mid-rendezvous", cluster.ShrinkContinue,
			&ringWL{steps: 8, bytes: 1 << 20, compute: 300 * time.Microsecond},
			800 * time.Microsecond, 0},
		// Crash inside a collective.
		{"mid-collective", cluster.ShrinkContinue,
			&collWL{steps: 8, bytes: 256 << 10, compute: 100 * time.Microsecond},
			700 * time.Microsecond, 0},
		// Checkpoint every step with a large state: the crash lands in
		// or next to the replica exchange, and recovery adds rollback
		// and recompute traffic to later epochs.
		{"during-checkpoint", cluster.CheckpointRestart,
			&ringWL{steps: 8, bytes: 64 << 10, compute: 50 * time.Microsecond},
			900 * time.Microsecond, 1},
	}
}

// TestFTBoundsUnderCrash drives the crash matrix across all three
// progress modes and validates per-epoch consistency plus the
// min ≤ true ≤ max invariant on the delivered transfers.
func TestFTBoundsUnderCrash(t *testing.T) {
	for _, pm := range []progress.Mode{progress.Manual, progress.Piggyback, progress.Thread} {
		for _, tc := range ftOracleCases() {
			pm, tc := pm, tc
			t.Run(tc.name+"/"+pm.String(), func(t *testing.T) {
				checkFTOracle(t, pm, tc)
			})
		}
	}
}

func checkFTOracle(t *testing.T, pm progress.Mode, tc ftOracleCase) {
	t.Helper()
	const procs = 4
	cost := fabric.DefaultCostModel()
	table := cluster.Calibrate(cost, nil, 0)

	traces := make([][]overlap.Event, procs)
	cfg := cluster.Config{
		Procs: procs,
		Cost:  cost,
		MPI: mpi.Config{
			Progress: progress.Config{Mode: pm},
			Instrument: &mpi.InstrumentConfig{
				Table: table,
				TraceSinkFor: func(rank int) func(overlap.Event) {
					return func(e overlap.Event) { traces[rank] = append(traces[rank], e) }
				},
			},
		},
		RecordTruth: true,
		Crashes: &fabric.CrashPlan{Crashes: []fabric.Crash{
			{Node: 2, At: vtime.Time(tc.crash)},
		}},
		Deadline: 10 * time.Second,
	}
	res, err := cluster.RunFT(cfg, cluster.FTOptions{
		Mode:            tc.mode,
		CheckpointEvery: tc.every,
		// Large modelled state so checkpoint traffic is substantial.
		CheckpointBandwidth: 1 << 30,
	}, tc.wl)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if !res.Completed || res.Epochs == 0 {
		t.Fatalf("recovery did not happen: completed=%v epochs=%d", res.Completed, res.Epochs)
	}

	truth := make(map[uint64]fabric.Transfer, len(res.Transfers))
	for _, tr := range res.Transfers {
		truth[tr.XferID] = tr
	}
	eps := cost.LinkLatency + cost.DMAStartup + 2*time.Microsecond

	for rank := 0; rank < procs; rank++ {
		rep := res.Reports[rank]
		if rep == nil {
			t.Fatalf("rank %d has no report", rank)
		}
		o := newEpochOracle(table)
		for _, e := range traces[rank] {
			o.apply(e)
		}
		o.finish(rep.Duration)

		// (1) Whole-run internal consistency.
		var sumMin, sumMax, sumData time.Duration
		var count int
		for _, e := range o.epochs {
			sumMin += e.sumMin
			sumMax += e.sumMax
			sumData += e.sumData
			count += e.count
		}
		tot := rep.Total()
		if sumMin != tot.MinOverlapped || sumMax != tot.MaxOverlapped ||
			sumData != tot.DataTransferTime || count != tot.Count {
			t.Fatalf("rank %d: oracle totals (n=%d min=%v max=%v data=%v) != monitor (n=%d min=%v max=%v data=%v)",
				rank, count, sumMin, sumMax, sumData,
				tot.Count, tot.MinOverlapped, tot.MaxOverlapped, tot.DataTransferTime)
		}

		// (2) Per-epoch consistency: the report's epoch breakdown must
		// match the oracle's epoch slices entry for entry (survivors
		// only: the dead rank never cuts, so its report has no epochs).
		if len(rep.Epochs) > 0 {
			if len(rep.Epochs) != len(o.epochs) {
				t.Fatalf("rank %d: report has %d epochs, oracle %d", rank, len(rep.Epochs), len(o.epochs))
			}
			for i, er := range rep.Epochs {
				oe := o.epochs[i]
				if er.Total.MinOverlapped != oe.sumMin || er.Total.MaxOverlapped != oe.sumMax ||
					er.Total.DataTransferTime != oe.sumData || er.Total.Count != oe.count ||
					er.Truncated != oe.truncated {
					t.Errorf("rank %d epoch %d: report (n=%d min=%v max=%v data=%v trunc=%d) != oracle (n=%d min=%v max=%v data=%v trunc=%d)",
						rank, i, er.Total.Count, er.Total.MinOverlapped, er.Total.MaxOverlapped,
						er.Total.DataTransferTime, er.Truncated,
						oe.count, oe.sumMin, oe.sumMax, oe.sumData, oe.truncated)
				}
			}
		}

		// (3) Physical validity: bounds bracket the true overlap of every
		// transfer the wire completed.
		for _, r := range o.results {
			tr, ok := truth[r.id]
			if !ok {
				continue // swallowed by the crash: never delivered
			}
			trueOv := o.overlapWith(tr.Start.Duration(), tr.End.Duration())
			fudge := eps + time.Duration(float64(tr.End-tr.Start)/20)
			if r.minOv > trueOv+fudge {
				t.Errorf("rank %d xfer %d (size %d): min bound %v exceeds true overlap %v (+%v)",
					rank, r.id, r.size, r.minOv, trueOv, fudge)
			}
			if trueOv > r.maxOv+fudge {
				t.Errorf("rank %d xfer %d (size %d): true overlap %v exceeds max bound %v (+%v)",
					rank, r.id, r.size, trueOv, r.maxOv, fudge)
			}
		}
	}
}
