package cluster_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/fabric"
	"ovlp/internal/micro"
	"ovlp/internal/mpi"
	"ovlp/internal/nas"
	"ovlp/internal/trace"
	"ovlp/internal/vtime"
)

// ringWL is a minimal Checkpointable: a ring sendrecv plus an
// allreduce per step, with declared state.
type ringWL struct {
	steps   int
	bytes   int
	compute time.Duration
}

func (w *ringWL) Name() string             { return "ring" }
func (w *ringWL) Steps() int               { return w.steps }
func (w *ringWL) StateBytes(procs int) int { return w.bytes }
func (w *ringWL) Init(c *mpi.Comm)         { c.Bcast(0, 8) }
func (w *ringWL) Step(c *mpi.Comm, step int) {
	r := c.Host()
	if n := c.Size(); n > 1 {
		next, prev := (c.Rank()+1)%n, (c.Rank()+n-1)%n
		c.Sendrecv(next, 5, w.bytes, prev, 5)
	}
	r.Compute(w.compute)
	c.Allreduce(8)
}

func crashPlan(ranks ...int) *fabric.CrashPlan {
	p := &fabric.CrashPlan{}
	for i, rk := range ranks {
		p.Crashes = append(p.Crashes, fabric.Crash{
			Node: fabric.NodeID(rk),
			At:   vtime.Time((300 + 400*time.Duration(i)) * time.Microsecond),
		})
	}
	return p
}

func ftConfig(procs int, plan *fabric.CrashPlan) cluster.Config {
	return cluster.Config{
		Procs:    procs,
		MPI:      mpi.Config{Instrument: &mpi.InstrumentConfig{}},
		Crashes:  plan,
		Deadline: 5 * time.Second,
	}
}

// TestRunFTShrinkContinue: one crash mid-run, survivors detect, agree,
// shrink and finish on three ranks in a new epoch.
func TestRunFTShrinkContinue(t *testing.T) {
	wl := &ringWL{steps: 6, bytes: 64 << 10, compute: 20 * time.Microsecond}
	res, err := cluster.RunFT(ftConfig(4, crashPlan(2)), cluster.FTOptions{Mode: cluster.ShrinkContinue}, wl)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Error("workload did not complete")
	}
	if res.Epochs != 1 {
		t.Errorf("epochs = %d, want 1", res.Epochs)
	}
	if len(res.Failed) != 1 || res.Failed[0] != 2 {
		t.Errorf("failed = %v, want [2]", res.Failed)
	}
	if len(res.Survivors) != 3 {
		t.Errorf("survivors = %v, want 3 ranks", res.Survivors)
	}
	// The dead rank's recovered error names the planned crash.
	var nce *fabric.NodeCrashedError
	if !errors.As(res.RankErrors[2], &nce) || nce.Node != 2 {
		t.Errorf("rank 2 error = %v, want NodeCrashedError{Node: 2}", res.RankErrors[2])
	}
	// Survivors' reports carry the per-epoch breakdown.
	for _, rk := range res.Survivors {
		rep := res.Reports[rk]
		if rep == nil || len(rep.Epochs) != 2 {
			t.Fatalf("rank %d: want 2 epoch reports, got %+v", rk, rep)
		}
	}
}

// TestRunFTCheckpointRestart: crash under periodic checkpoints rolls
// back to the last commit and replays.
func TestRunFTCheckpointRestart(t *testing.T) {
	wl := &ringWL{steps: 6, bytes: 64 << 10, compute: 20 * time.Microsecond}
	res, err := cluster.RunFT(ftConfig(4, crashPlan(1)),
		cluster.FTOptions{Mode: cluster.CheckpointRestart, CheckpointEvery: 2}, wl)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Epochs != 1 {
		t.Fatalf("completed=%v epochs=%d, want true/1", res.Completed, res.Epochs)
	}
	if res.Checkpoints == 0 {
		t.Error("no checkpoints committed")
	}
	if res.ReplayedSteps == 0 {
		t.Error("no steps replayed after rollback")
	}
}

// TestRunFTFailureFree: without a crash plan RunFT is a plain run —
// no epochs, no survivors list, nil error.
func TestRunFTFailureFree(t *testing.T) {
	wl := &ringWL{steps: 4, bytes: 16 << 10, compute: 10 * time.Microsecond}
	res, err := cluster.RunFT(ftConfig(3, nil), cluster.FTOptions{}, wl)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Epochs != 0 || res.Failed != nil || res.Survivors != nil {
		t.Fatalf("failure-free run misreported: %+v", res)
	}
	for rk, rep := range res.Reports {
		if len(rep.Epochs) != 0 {
			t.Errorf("rank %d: failure-free report has epoch breakdown", rk)
		}
	}
}

// TestRunFTTwoFailures: two crashes far enough apart produce two
// recovery generations and two epoch cuts. The retry budget is
// shortened so the first failure is detected and recovered well before
// the second crash fires.
func TestRunFTTwoFailures(t *testing.T) {
	wl := &ringWL{steps: 10, bytes: 64 << 10, compute: 200 * time.Microsecond}
	cfg := ftConfig(5, &fabric.CrashPlan{Crashes: []fabric.Crash{
		{Node: 1, At: vtime.Time(300 * time.Microsecond)},
		{Node: 3, At: vtime.Time(3 * time.Millisecond)},
	}})
	cfg.MPI.Reliable = &fabric.ReliableParams{MaxRetries: 3}
	res, err := cluster.RunFT(cfg, cluster.FTOptions{}, wl)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Error("workload did not complete")
	}
	if res.Epochs != 2 {
		t.Errorf("epochs = %d, want 2", res.Epochs)
	}
	if len(res.Failed) != 2 {
		t.Errorf("failed = %v, want two ranks", res.Failed)
	}
	if len(res.Survivors) != 3 {
		t.Errorf("survivors = %v, want 3 ranks", res.Survivors)
	}
}

// TestRunFTMinProcs: a crash that leaves fewer survivors than MinProcs
// surfaces ErrTooFewSurvivors instead of continuing degraded.
func TestRunFTMinProcs(t *testing.T) {
	wl := &ringWL{steps: 6, bytes: 32 << 10, compute: 20 * time.Microsecond}
	_, err := cluster.RunFT(ftConfig(4, crashPlan(2)), cluster.FTOptions{MinProcs: 4}, wl)
	if !errors.Is(err, cluster.ErrTooFewSurvivors) {
		t.Fatalf("want ErrTooFewSurvivors, got %v", err)
	}
}

// TestRunFTNASWorkloads: the fault-tolerant NAS variants survive a
// crash in both recovery modes — including shrinking to a
// non-power-of-two size no fixed-grid kernel could run at.
func TestRunFTNASWorkloads(t *testing.T) {
	for _, name := range []string{"cg", "ft", "mg"} {
		for _, mode := range []cluster.RecoveryMode{cluster.ShrinkContinue, cluster.CheckpointRestart} {
			name, mode := name, mode
			t.Run(name+"/"+mode.String(), func(t *testing.T) {
				wl, ok := nas.CheckpointableKernel(name, nas.Params{Class: nas.ClassS, MaxIters: 3})
				if !ok {
					t.Fatalf("no checkpointable %s", name)
				}
				cfg := ftConfig(4, crashPlan(2))
				cfg.Deadline = 30 * time.Second
				res, err := cluster.RunFT(cfg, cluster.FTOptions{Mode: mode, CheckpointEvery: 2}, wl)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Completed || res.Epochs != 1 {
					t.Fatalf("completed=%v epochs=%d, want true/1", res.Completed, res.Epochs)
				}
			})
		}
	}
}

// TestRunFTExchangeMicro: the microbenchmark's ring-exchange workload
// recovers too.
func TestRunFTExchangeMicro(t *testing.T) {
	wl := &micro.ExchangeWorkload{MsgSize: 1 << 20, Compute: 200 * time.Microsecond, StepCount: 8}
	res, err := cluster.RunFT(ftConfig(4, crashPlan(3)), cluster.FTOptions{}, wl)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Epochs != 1 {
		t.Fatalf("completed=%v epochs=%d, want true/1", res.Completed, res.Epochs)
	}
}

// TestRunFTUnplannedErrorSurvivesFilter: only planned crashes are
// filtered from the error — a deadline expiry still surfaces.
func TestRunFTUnplannedErrorSurvivesFilter(t *testing.T) {
	wl := &ringWL{steps: 1 << 20, bytes: 1 << 10, compute: time.Millisecond}
	cfg := ftConfig(3, crashPlan(1))
	cfg.Deadline = 2 * time.Millisecond
	_, err := cluster.RunFT(cfg, cluster.FTOptions{}, wl)
	if err == nil {
		t.Fatal("deadline expiry was swallowed by the crash filter")
	}
	var de *vtime.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("want *vtime.DeadlockError in chain, got %v", err)
	}
}

// ftTraceBytes runs the recovery scenario traced and returns the
// exported Chrome trace.
func ftTraceBytes(t *testing.T, mode cluster.RecoveryMode) []byte {
	t.Helper()
	wl := &ringWL{steps: 8, bytes: 128 << 10, compute: 50 * time.Microsecond}
	cfg := ftConfig(4, crashPlan(2))
	cfg.Trace = trace.New(trace.Options{})
	cfg.RecordTruth = true
	res, err := cluster.RunFT(cfg, cluster.FTOptions{Mode: mode, CheckpointEvery: 2}, wl)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("workload did not complete")
	}
	var buf bytes.Buffer
	if err := cfg.Trace.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunFTDeterminism: the same crash plan reproduces the whole run —
// detection, agreement, epoch cuts and recovery — byte for byte in the
// exported trace.
func TestRunFTDeterminism(t *testing.T) {
	for _, mode := range []cluster.RecoveryMode{cluster.ShrinkContinue, cluster.CheckpointRestart} {
		a := ftTraceBytes(t, mode)
		b := ftTraceBytes(t, mode)
		if !bytes.Equal(a, b) {
			t.Errorf("mode %v: same crash plan produced different traces (%d vs %d bytes)",
				mode, len(a), len(b))
		}
	}
}
