package cluster_test

import (
	"math/rand"
	"testing"
	"time"

	"ovlp/internal/armci"
	"ovlp/internal/cluster"
	"ovlp/internal/fabric"
	"ovlp/internal/overlap"
)

// The ARMCI variant of the ground-truth oracle: one-sided traffic with
// randomized blocking/non-blocking structure must produce bounds that
// replay exactly and bracket the physical overlap.

func randomARMCIWorkload(p int, seed int64) func(pr *armci.Proc) {
	type step struct {
		kind    int // 0 NbPut, 1 Put, 2 NbGet, 3 strided NbPut, 4 barrier
		size    int
		count   int
		compute time.Duration
		defer_  bool // wait late (after compute) vs immediately
	}
	rng := rand.New(rand.NewSource(seed))
	steps := make([]step, 10+rng.Intn(10))
	for i := range steps {
		steps[i] = step{
			kind:    rng.Intn(5),
			size:    1 + rng.Intn(1<<20),
			count:   1 + rng.Intn(32),
			compute: time.Duration(rng.Intn(1_500_000)),
			defer_:  rng.Intn(2) == 0,
		}
	}
	return func(pr *armci.Proc) {
		right := (pr.ID() + 1) % pr.Size()
		for _, s := range steps {
			switch s.kind {
			case 0, 2, 3:
				var h *armci.Handle
				switch s.kind {
				case 0:
					h = pr.NbPut(right, s.size)
				case 2:
					h = pr.NbGet(right, s.size)
				default:
					h = pr.NbPutStrided(right, s.count, s.size/s.count+1)
				}
				if s.defer_ {
					pr.Compute(s.compute)
					pr.WaitHandle(h)
				} else {
					pr.WaitHandle(h)
					pr.Compute(s.compute)
				}
			case 1:
				pr.Put(right, s.size)
				pr.Compute(s.compute / 2)
			case 4:
				pr.Compute(s.compute / 3)
				pr.Barrier()
			}
		}
		pr.FenceAll()
		pr.Barrier()
	}
}

func TestARMCIBoundsAgainstGroundTruth(t *testing.T) {
	for _, p := range []int{2, 4} {
		for seed := int64(1); seed <= 5; seed++ {
			p, seed := p, seed
			t.Run("", func(t *testing.T) {
				cost := fabric.DefaultCostModel()
				table := cluster.Calibrate(cost, nil, 0)
				traces := make([][]overlap.Event, p)
				res := cluster.RunARMCI(cluster.ARMCIConfig{
					Procs: p,
					Cost:  cost,
					ARMCI: armci.Config{Instrument: &armci.InstrumentConfig{
						Table:     table,
						QueueSize: 32,
						TraceSinkFor: func(rank int) func(overlap.Event) {
							return func(e overlap.Event) { traces[rank] = append(traces[rank], e) }
						},
					}},
					RecordTruth: true,
				}, randomARMCIWorkload(p, seed))

				truth := make(map[uint64]fabric.Transfer, len(res.Transfers))
				for _, tr := range res.Transfers {
					truth[tr.XferID] = tr
				}
				eps := cost.LinkLatency + cost.DMAStartup + 2*time.Microsecond

				for rank := 0; rank < p; rank++ {
					rep := res.Reports[rank]
					o := &traceOracle{table: table, open: map[uint64]oracleOpen{}}
					for _, e := range traces[rank] {
						o.apply(e)
					}
					o.finish(rep.Duration)

					tot := rep.Total()
					if o.sumMin != tot.MinOverlapped || o.sumMax != tot.MaxOverlapped ||
						o.count != tot.Count {
						t.Fatalf("rank %d seed %d: oracle (n=%d %v/%v) != monitor (n=%d %v/%v)",
							rank, seed, o.count, o.sumMin, o.sumMax,
							tot.Count, tot.MinOverlapped, tot.MaxOverlapped)
					}
					for _, r := range o.results {
						tr, ok := truth[r.id]
						if !ok {
							continue
						}
						trueOv := o.overlapWith(tr.Start.Duration(), tr.End.Duration())
						if r.minOv > trueOv+eps {
							t.Errorf("rank %d xfer %d: min %v > true %v (+%v)",
								rank, r.id, r.minOv, trueOv, eps)
						}
						fudge := eps + time.Duration(float64(tr.End-tr.Start)/20)
						if trueOv > r.maxOv+fudge {
							t.Errorf("rank %d xfer %d: true %v > max %v (+%v)",
								rank, r.id, trueOv, r.maxOv, fudge)
						}
					}
				}
			})
		}
	}
}
