package cluster_test

import (
	"math/rand"
	"testing"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/fabric"
	"ovlp/internal/mpi"
	"ovlp/internal/overlap"
)

// The oracle validates the instrumentation two ways no real system
// can:
//
//  1. Internal consistency — replaying each rank's raw event trace
//     through an independent, straightforward implementation of the
//     paper's three-case bounds algorithm must reproduce the monitor's
//     incrementally aggregated totals exactly (this exercises the
//     circular queue and drain machinery).
//  2. Physical validity — for every transfer the library double-
//     stamped, the derived bounds must bracket the true overlap
//     computed from the fabric's ground-truth transfer intervals and
//     the rank's actual computation intervals, within a tolerance that
//     reflects the library's inherently approximate view (completions
//     are detected at the CQ, not on the wire).

// traceOracle replays one rank's event stream.
type traceOracle struct {
	table interface {
		XferTime(int) time.Duration
	}

	lastStamp time.Duration
	inLib     bool
	callSeq   uint64
	cumUser   time.Duration
	cumLib    time.Duration

	open map[uint64]oracleOpen
	// per-transfer outcomes for the physical check
	results []oracleResult
	// computed user intervals [start, end)
	userIntervals []interval
	lastExit      time.Duration

	sumMin, sumMax, sumData time.Duration
	count                   int
}

type oracleOpen struct {
	size    int64
	cumUser time.Duration
	cumLib  time.Duration
	callSeq uint64
}

type oracleResult struct {
	id       uint64
	size     int64
	minOv    time.Duration
	maxOv    time.Duration
	twoSided bool
	sameCall bool
}

type interval struct{ start, end time.Duration }

func (o *traceOracle) advance(stamp time.Duration) {
	span := stamp - o.lastStamp
	if o.inLib {
		o.cumLib += span
	} else {
		o.cumUser += span
	}
	o.lastStamp = stamp
}

func (o *traceOracle) apply(e overlap.Event) {
	o.advance(e.Stamp)
	switch e.Kind {
	case overlap.KindCallEnter:
		o.inLib = true
		o.callSeq++
		if e.Stamp > o.lastExit {
			o.userIntervals = append(o.userIntervals, interval{o.lastExit, e.Stamp})
		}
	case overlap.KindCallExit:
		o.inLib = false
		o.lastExit = e.Stamp
	case overlap.KindXferBegin:
		o.open[e.ID] = oracleOpen{size: e.Size, cumUser: o.cumUser, cumLib: o.cumLib, callSeq: o.callSeq}
	case overlap.KindXferEnd:
		xt := o.table.XferTime(int(e.Size))
		rec, seen := o.open[e.ID]
		if !seen {
			o.record(oracleResult{id: e.ID, size: e.Size, minOv: 0, maxOv: xt})
			return
		}
		delete(o.open, e.ID)
		xt = o.table.XferTime(int(rec.size))
		if rec.callSeq == o.callSeq && o.inLib {
			o.record(oracleResult{id: e.ID, size: rec.size, twoSided: true, sameCall: true})
			return
		}
		comp := o.cumUser - rec.cumUser
		noncomp := o.cumLib - rec.cumLib
		maxOv := min(comp, xt)
		minOv := max(0, xt-noncomp)
		minOv = min(minOv, maxOv)
		o.record(oracleResult{id: e.ID, size: rec.size, minOv: minOv, maxOv: maxOv, twoSided: true})
	}
}

func (o *traceOracle) record(res oracleResult) {
	o.results = append(o.results, res)
	o.sumMin += res.minOv
	o.sumMax += res.maxOv
	o.sumData += o.table.XferTime(int(res.size))
	o.count++
}

func (o *traceOracle) finish(stamp time.Duration) {
	o.advance(stamp)
	if !o.inLib && stamp > o.lastExit {
		o.userIntervals = append(o.userIntervals, interval{o.lastExit, stamp})
	}
	for id, rec := range o.open {
		o.record(oracleResult{id: id, size: rec.size, minOv: 0, maxOv: o.table.XferTime(int(rec.size))})
		delete(o.open, id)
	}
}

// overlapWith returns how much of [start, end) falls inside the
// rank's user-computation intervals.
func (o *traceOracle) overlapWith(start, end time.Duration) time.Duration {
	var total time.Duration
	for _, iv := range o.userIntervals {
		s, e := max(start, iv.start), min(end, iv.end)
		if e > s {
			total += e - s
		}
	}
	return total
}

// randomWorkload builds a deadlock-free random message-passing
// program for p ranks from the given seed. All ranks share the
// schedule (derived from the same seed) so matching is guaranteed.
func randomWorkload(p int, seed int64) func(r *mpi.Rank) {
	type step struct {
		kind    int // 0 exchange, 1 allreduce, 2 barrier, 3 bcast
		size    int
		compute time.Duration
		iprobes int
	}
	rng := rand.New(rand.NewSource(seed))
	steps := make([]step, 12+rng.Intn(10))
	for i := range steps {
		steps[i] = step{
			kind:    rng.Intn(4),
			size:    1 + rng.Intn(2<<20),
			compute: time.Duration(rng.Intn(2_000_000)), // up to 2ms
			iprobes: rng.Intn(3),
		}
	}
	return func(r *mpi.Rank) {
		for _, s := range steps {
			switch s.kind {
			case 0: // pairwise non-blocking exchange with computation
				peer := r.ID() ^ 1
				if peer >= r.Size() { // odd world: pair with self -> skip
					r.Compute(s.compute)
					continue
				}
				sq := r.Isend(peer, 0, s.size)
				rq := r.Irecv(peer, 0)
				chunk := s.compute / time.Duration(s.iprobes+1)
				for k := 0; k <= s.iprobes; k++ {
					r.Compute(chunk)
					if k < s.iprobes {
						r.Iprobe(mpi.AnySource, mpi.AnyTag)
					}
				}
				r.Waitall(sq, rq)
			case 1:
				r.Compute(s.compute / 2)
				r.Allreduce(8 + s.size%1024)
			case 2:
				r.Compute(s.compute / 3)
				r.Barrier()
			case 3:
				r.Compute(s.compute / 4)
				r.Bcast(0, s.size%(64<<10)+1)
			}
		}
	}
}

func TestBoundsAgainstGroundTruth(t *testing.T) {
	for _, proto := range []mpi.LongProtocol{mpi.PipelinedRDMA, mpi.DirectRDMARead} {
		for _, p := range []int{2, 4} {
			for seed := int64(1); seed <= 6; seed++ {
				proto, p, seed := proto, p, seed
				t.Run("", func(t *testing.T) {
					checkWorkload(t, proto, p, seed)
				})
			}
		}
	}
}

func checkWorkload(t *testing.T, proto mpi.LongProtocol, p int, seed int64) {
	t.Helper()
	cost := fabric.DefaultCostModel()
	table := cluster.Calibrate(cost, nil, 0)

	traces := make([][]overlap.Event, p)
	cfg := cluster.Config{
		Procs: p,
		Cost:  cost,
		MPI: mpi.Config{
			Protocol: proto,
			Instrument: &mpi.InstrumentConfig{
				Table:     table,
				QueueSize: 64, // small queue: exercise many drains
				TraceSinkFor: func(rank int) func(overlap.Event) {
					return func(e overlap.Event) { traces[rank] = append(traces[rank], e) }
				},
			},
		},
		RecordTruth: true,
	}
	res := cluster.Run(cfg, randomWorkload(p, seed))

	truth := make(map[uint64]fabric.Transfer, len(res.Transfers))
	for _, tr := range res.Transfers {
		truth[tr.XferID] = tr
	}
	// Tolerance for the library-view vs wire-view mismatch.
	eps := cost.LinkLatency + cost.DMAStartup + 2*time.Microsecond

	for rank := 0; rank < p; rank++ {
		rep := res.Reports[rank]
		o := &traceOracle{table: table, open: map[uint64]oracleOpen{}}
		for _, e := range traces[rank] {
			o.apply(e)
		}
		o.finish(rep.Duration)

		// (1) Internal consistency: independent replay == monitor.
		tot := rep.Total()
		if o.sumMin != tot.MinOverlapped || o.sumMax != tot.MaxOverlapped ||
			o.sumData != tot.DataTransferTime || o.count != tot.Count {
			t.Fatalf("rank %d (proto %v seed %d): oracle totals (n=%d min=%v max=%v data=%v) "+
				"!= monitor (n=%d min=%v max=%v data=%v)",
				rank, proto, seed, o.count, o.sumMin, o.sumMax, o.sumData,
				tot.Count, tot.MinOverlapped, tot.MaxOverlapped, tot.DataTransferTime)
		}

		// (2) Physical validity per transfer.
		for _, r := range o.results {
			tr, ok := truth[r.id]
			if !ok {
				continue // library-internal id (e.g. receiver-side bulk view)
			}
			trueOv := o.overlapWith(tr.Start.Duration(), tr.End.Duration())
			if r.sameCall && trueOv > eps {
				t.Errorf("rank %d xfer %d (size %d): same-call transfer but true overlap %v > eps",
					rank, r.id, r.size, trueOv)
			}
			if r.minOv > trueOv+eps {
				t.Errorf("rank %d xfer %d (size %d): min bound %v exceeds true overlap %v (+eps %v)",
					rank, r.id, r.size, r.minOv, trueOv, eps)
			}
			fudge := eps + time.Duration(float64(tr.End-tr.Start)/20) // 5% calibration slack
			if trueOv > r.maxOv+fudge {
				t.Errorf("rank %d xfer %d (size %d): true overlap %v exceeds max bound %v (+%v)",
					rank, r.id, r.size, trueOv, r.maxOv, fudge)
			}
		}
	}
}
