package cluster

import (
	"time"

	"ovlp/internal/fabric"
	"ovlp/internal/overlap"
	"ovlp/internal/trace"
)

// foldMetrics folds a finished run's end-of-run observations into the
// tracer's registry — run duration, injected-fault counters, summed
// reliable-delivery counters, and the per-message-size-bin overlap
// measures — and returns the resulting snapshot. The fabric and
// libraries have already maintained their live counters (wire bytes,
// transfer counts, queue drains) during the run; this adds the
// quantities only known at the end. Returns nil for a nil tracer.
func foldMetrics(tr *trace.Tracer, dur time.Duration, fs fabric.FaultStats,
	rel []fabric.RelStats, reports []*overlap.Report) *trace.Snapshot {
	if tr == nil {
		return nil
	}
	m := tr.Metrics()
	m.Gauge("run.duration_ns").Set(int64(dur))

	if fs != (fabric.FaultStats{}) {
		m.Counter("fault.dropped").Add(int64(fs.Dropped))
		m.Counter("fault.duplicated").Add(int64(fs.Duplicated))
		m.Counter("fault.jittered").Add(int64(fs.Jittered))
		m.Counter("fault.stalled").Add(int64(fs.Stalled))
		m.Counter("fault.blackholed").Add(int64(fs.Blackholed))
	}

	var rs fabric.RelStats
	for _, r := range rel {
		rs.Sent += r.Sent
		rs.Retransmits += r.Retransmits
		rs.Reposts += r.Reposts
		rs.AcksReceived += r.AcksReceived
		rs.DupSuppressed += r.DupSuppressed
	}
	if rs != (fabric.RelStats{}) {
		m.Counter("rel.sent").Add(int64(rs.Sent))
		m.Counter("rel.retransmits").Add(int64(rs.Retransmits))
		m.Counter("rel.reposts").Add(int64(rs.Reposts))
		m.Counter("rel.acks_received").Add(int64(rs.AcksReceived))
		m.Counter("rel.dup_suppressed").Add(int64(rs.DupSuppressed))
	}

	var inst []*overlap.Report
	for _, r := range reports {
		if r != nil {
			inst = append(inst, r)
		}
	}
	if len(inst) > 0 {
		agg := overlap.Aggregate(inst)
		total := agg.Total()
		m.Counter("overlap.transfers").Add(int64(total.Count))
		m.Counter("overlap.xfer_ns").Add(int64(total.DataTransferTime))
		m.Counter("overlap.min_overlapped_ns").Add(int64(total.MinOverlapped))
		m.Counter("overlap.max_overlapped_ns").Add(int64(total.MaxOverlapped))
		binned := make([]overlap.Measures, len(agg.BinBounds)+1)
		for _, reg := range agg.Regions {
			for i, b := range reg.Bins {
				binned[i].Add(b)
			}
		}
		for i, b := range binned {
			if b.Count == 0 {
				continue
			}
			label := overlap.BinLabel(agg.BinBounds, i)
			m.Counter("overlap.bin." + label + ".count").Add(int64(b.Count))
			m.Counter("overlap.bin." + label + ".xfer_ns").Add(int64(b.DataTransferTime))
			m.Counter("overlap.bin." + label + ".min_ns").Add(int64(b.MinOverlapped))
			m.Counter("overlap.bin." + label + ".max_ns").Add(int64(b.MaxOverlapped))
		}
	}
	return m.Snapshot()
}
