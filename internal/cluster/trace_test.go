package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"ovlp/internal/fabric"
	"ovlp/internal/mpi"
	"ovlp/internal/trace"
	"ovlp/internal/vtime"
)

// tracedConfig is the acceptance workload: a two-process non-blocking
// exchange loop on a lossy link, so the trace carries call spans, wire
// spans, fault instants and retransmit instants all at once.
func tracedConfig(tr *trace.Tracer) Config {
	return Config{
		Procs: 2,
		MPI: mpi.Config{
			Protocol:   mpi.DirectRDMARead,
			Instrument: &mpi.InstrumentConfig{},
		},
		Faults: &fabric.FaultPlan{
			Seed:    7,
			Default: fabric.LinkFaults{DropRate: 0.1},
		},
		RecordTruth: true,
		Trace:       tr,
	}
}

func exchangeLoop(reps int) func(r *mpi.Rank) {
	return func(r *mpi.Rank) {
		peer := 1 - r.ID()
		for i := 0; i < reps; i++ {
			s := r.Isend(peer, 0, 64<<10)
			q := r.Irecv(peer, 0)
			r.Compute(100 * time.Microsecond)
			r.Waitall(s, q)
		}
	}
}

func export(t *testing.T, tr *trace.Tracer) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestTraceByteIdentical is the determinism acceptance criterion: two
// runs of the same fixed-seed faulted workload export byte-identical
// trace files, and the bytes are valid JSON per the trace-event spec.
func TestTraceByteIdentical(t *testing.T) {
	var files [2][]byte
	for i := range files {
		tr := trace.New(trace.Options{})
		Run(tracedConfig(tr), exchangeLoop(20))
		files[i] = export(t, tr)
	}
	if !bytes.Equal(files[0], files[1]) {
		t.Fatal("fixed-seed runs exported different trace bytes")
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
		Metrics     json.RawMessage   `json:"metrics"`
	}
	if err := json.Unmarshal(files[0], &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 || len(doc.Metrics) == 0 {
		t.Fatalf("trace file empty: %d events, %d metric bytes",
			len(doc.TraceEvents), len(doc.Metrics))
	}
}

// TestWireSpansEqualOracle asserts the ground-truth criterion: the
// trace's NIC wire spans are exactly the fabric oracle's transfer
// intervals — same ids, endpoints, sizes and times, nothing extra.
func TestWireSpansEqualOracle(t *testing.T) {
	tr := trace.New(trace.Options{})
	res := Run(tracedConfig(tr), exchangeLoop(20))
	if len(res.Transfers) == 0 {
		t.Fatal("workload recorded no transfers")
	}

	type wire struct {
		src, dst   int
		size       int64
		start, end vtime.Time
	}
	got := make(map[uint64]wire)
	for _, tk := range tr.Tracks() {
		if tk.Group() != trace.GroupNIC {
			continue
		}
		for _, r := range tk.Recs() {
			if r.Cat != "wire" {
				continue
			}
			if r.Name != "xfer" {
				t.Fatalf("unexpected wire record %q", r.Name)
			}
			if _, dup := got[r.Args.ID]; dup {
				t.Fatalf("transfer %d has two wire spans", r.Args.ID)
			}
			got[r.Args.ID] = wire{
				src: tk.ID(), dst: r.Args.Peer, size: r.Args.Size,
				start: r.Start, end: r.End(),
			}
		}
	}
	if len(got) != len(res.Transfers) {
		t.Fatalf("%d wire spans for %d oracle transfers", len(got), len(res.Transfers))
	}
	for _, want := range res.Transfers {
		w, ok := got[want.XferID]
		if !ok {
			t.Fatalf("oracle transfer %d has no wire span", want.XferID)
		}
		if w.src != int(want.Src) || w.dst != int(want.Dst) ||
			w.size != int64(want.Size) || w.start != want.Start || w.end != want.End {
			t.Errorf("transfer %d: wire span %+v != oracle %+v", want.XferID, w, want)
		}
	}
}

// TestMetricsMatchResult cross-checks the live counters against the
// result structures the run already reports.
func TestMetricsMatchResult(t *testing.T) {
	tr := trace.New(trace.Options{})
	res := Run(tracedConfig(tr), exchangeLoop(20))
	if res.Metrics == nil {
		t.Fatal("traced run returned no metrics snapshot")
	}
	counters := make(map[string]int64)
	for _, c := range res.Metrics.Counters {
		counters[c.Name] = c.Value
	}
	if got := counters["fabric.transfers"]; got != int64(len(res.Transfers)) {
		t.Errorf("fabric.transfers = %d, oracle recorded %d", got, len(res.Transfers))
	}
	var bytesOnWire int64
	for _, x := range res.Transfers {
		bytesOnWire += int64(x.Size)
	}
	if got := counters["fabric.wire_bytes"]; got != bytesOnWire {
		t.Errorf("fabric.wire_bytes = %d, oracle says %d", got, bytesOnWire)
	}
	var rel fabric.RelStats
	for _, rs := range res.RelStats {
		rel.Sent += rs.Sent
		rel.Retransmits += rs.Retransmits
		rel.AcksReceived += rs.AcksReceived
	}
	if got := counters["rel.sent"]; got != int64(rel.Sent) {
		t.Errorf("rel.sent = %d, RelStats say %d", got, rel.Sent)
	}
	if got := counters["rel.retransmits"]; got != int64(rel.Retransmits) {
		t.Errorf("rel.retransmits = %d, RelStats say %d", got, rel.Retransmits)
	}
	if got := counters["fault.dropped"]; got != int64(res.FaultStats.Dropped) {
		t.Errorf("fault.dropped = %d, FaultStats say %d", got, res.FaultStats.Dropped)
	}
	var transfers int
	for _, rep := range res.Reports {
		transfers += rep.Total().Count
	}
	if got := counters["overlap.transfers"]; got != int64(transfers) {
		t.Errorf("overlap.transfers = %d, reports say %d", got, transfers)
	}
	var dur int64 = -1
	for _, g := range res.Metrics.Gauges {
		if g.Name == "run.duration_ns" {
			dur = g.Value
		}
	}
	if dur != int64(res.Duration) {
		t.Errorf("run.duration_ns = %d, result says %d", dur, int64(res.Duration))
	}
}

// TestTraceDeadlock asserts a wedged run still yields a usable trace:
// the deadlock instant lands on the stuck rank's track and the
// kernel.deadlocks counter records the diagnosis.
func TestTraceDeadlock(t *testing.T) {
	tr := trace.New(trace.Options{})
	cfg := Config{
		Procs:    2,
		MPI:      mpi.Config{Protocol: mpi.DirectRDMARead},
		Deadline: 10 * time.Millisecond,
		Trace:    tr,
	}
	_, err := RunE(cfg, func(r *mpi.Rank) {
		if r.ID() == 0 {
			r.Recv(1, 0) // rank 1 never sends
		}
	})
	var de *vtime.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	found := 0
	for _, tk := range tr.Tracks() {
		for _, r := range tk.Recs() {
			if r.Cat == "kernel" && r.Name == "deadlock" {
				found++
			}
		}
	}
	if found == 0 {
		t.Error("no deadlock instants in the trace")
	}
	var deadlocks int64 = -1
	for _, c := range tr.Metrics().Snapshot().Counters {
		if c.Name == "kernel.deadlocks" {
			deadlocks = c.Value
		}
	}
	if deadlocks != 1 {
		t.Errorf("kernel.deadlocks = %d, want 1", deadlocks)
	}
}

// TestUntracedRunHasNoMetrics pins the zero-cost default: without a
// tracer the result carries no snapshot.
func TestUntracedRunHasNoMetrics(t *testing.T) {
	res := Run(Config{Procs: 2, MPI: mpi.Config{}}, func(r *mpi.Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, 1024)
		} else {
			r.Recv(0, 0)
		}
	})
	if res.Metrics != nil {
		t.Error("untraced run must not produce a metrics snapshot")
	}
}
