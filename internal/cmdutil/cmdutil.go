// Package cmdutil collects the flag-handling chores the experiment
// binaries used to duplicate: parsing processor-count sweeps,
// validating a fault plan against the smallest machine in a sweep, and
// the shared -trace/-metrics observability flags that hand every
// driver the same trace.Tracer plumbing.
package cmdutil

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"ovlp/internal/calib"
	"ovlp/internal/cluster"
	"ovlp/internal/coll"
	"ovlp/internal/diagnose"
	"ovlp/internal/fabric"
	"ovlp/internal/faultflag"
	"ovlp/internal/mpi"
	"ovlp/internal/overlap"
	"ovlp/internal/profile"
	"ovlp/internal/progress"
	"ovlp/internal/scenario"
	"ovlp/internal/timeres"
	"ovlp/internal/trace"
)

// Version returns the binary's build identity from the embedded build
// info: module version, VCS revision (with a +dirty marker when the
// working tree was modified) and the Go toolchain. It never fails —
// a stripped binary reports "ovlp devel".
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "ovlp devel"
	}
	ver := bi.Main.Version
	if ver == "" || ver == "(devel)" {
		ver = "devel"
	}
	out := "ovlp " + ver
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev != "" {
		out += " " + rev + dirty
	}
	if bi.GoVersion != "" {
		out += " " + bi.GoVersion
	}
	return out
}

// RegisterVersion installs the -version flag on fs (the default
// command-line set when fs is nil). Drivers check the returned bool
// after parsing: when set, print Version() and exit 0 before doing any
// work.
func RegisterVersion(fs *flag.FlagSet) *bool {
	if fs == nil {
		fs = flag.CommandLine
	}
	return fs.Bool("version", false, "print the build identity and exit")
}

// ParseProcs parses a comma-separated list of processor counts,
// falling back to def when the flag was left empty.
func ParseProcs(s string, def []int) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return def, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad processor count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// CheckFaultNodes rejects a fault plan naming nodes beyond the
// smallest processor count in a sweep, before any simulation starts —
// every run in the sweep has at least that many nodes, so the smallest
// is the binding constraint.
func CheckFaultNodes(plan *fabric.FaultPlan, procs []int) error {
	if len(procs) == 0 {
		return nil
	}
	min := procs[0]
	for _, p := range procs[1:] {
		if p < min {
			min = p
		}
	}
	return faultflag.CheckNodes(plan, min)
}

// BackendFlag is the shared -backend flag state: which execution
// substrate (cluster.Backend) the driver's runs use.
type BackendFlag struct {
	b cluster.Backend
}

// RegisterBackend installs the -backend flag on fs (the default
// command-line set when fs is nil). The value is validated at parse
// time; the default is the virtual backend.
func RegisterBackend(fs *flag.FlagSet) *BackendFlag {
	if fs == nil {
		fs = flag.CommandLine
	}
	bf := &BackendFlag{}
	fs.Func("backend", "execution backend: virtual (deterministic simulation, default) or real (concurrent goroutines on the wall clock)", func(s string) error {
		b, err := cluster.ParseBackend(s)
		if err != nil {
			return err
		}
		bf.b = b
		return nil
	})
	return bf
}

// Backend returns the selected backend (BackendVirtual before parsing
// or when the flag was not given).
func (bf *BackendFlag) Backend() cluster.Backend { return bf.b }

// Real reports whether the real backend was selected.
func (bf *BackendFlag) Real() bool { return bf.b == cluster.BackendReal }

// Apply copies the selection into a cluster.Config.
func (bf *BackendFlag) Apply(cfg *cluster.Config) { cfg.Backend = bf.b }

// Faults is the shared fault-injection flag state: the legacy
// faultflag knobs (-drop/-dup/-jitter/-stall/-fault-seed, now sugar
// for a one-event chaos schedule) plus -scenario, which loads a
// declarative scenario file and uses its chaos schedule, stall list
// and seed. The two sources are mutually exclusive, so a flag typo
// cannot silently half-override a scenario.
type Faults struct {
	// ScenarioPath is the -scenario file ("" = none).
	ScenarioPath string

	fs     *flag.FlagSet
	legacy func() (*fabric.FaultPlan, error)
}

// RegisterFaults installs the fault-injection flags on fs (the default
// command-line set when fs is nil): everything faultflag.Register
// provides plus -scenario.
func RegisterFaults(fs *flag.FlagSet) *Faults {
	if fs == nil {
		fs = flag.CommandLine
	}
	f := &Faults{fs: fs, legacy: faultflag.Register(fs)}
	fs.StringVar(&f.ScenarioPath, "scenario", "",
		"load the chaos schedule (chaos, stalls, seed) from this scenario file instead of the legacy fault flags")
	return f
}

// Plan builds the fault plan from whichever source was used: the
// scenario file's compiled chaos schedule, or the legacy flags' sugar
// plan. Nil when neither asked for faults.
func (f *Faults) Plan() (*fabric.FaultPlan, error) {
	legacy, err := f.legacy()
	if err != nil {
		return nil, err
	}
	if f.ScenarioPath == "" {
		return legacy, nil
	}
	if legacy != nil {
		return nil, fmt.Errorf("-scenario and the legacy fault flags (-drop/-dup/-jitter/-stall) are mutually exclusive")
	}
	s, err := scenario.LoadFile(f.ScenarioPath)
	if err != nil {
		return nil, err
	}
	return s.FaultPlan()
}

// Seed returns the -fault-seed value (the default when the flag set
// has not been parsed yet).
func (f *Faults) Seed() int64 {
	if g, ok := f.fs.Lookup("fault-seed").Value.(flag.Getter); ok {
		if v, ok := g.Get().(int64); ok {
			return v
		}
	}
	return 1
}

// Coll holds the shared nonblocking-collective flag state: which
// schedule algorithm to build, the pipelining chunk, and which
// progress engine advances pending schedules.
type Coll struct {
	// Algo is the -coll-algo schedule algorithm.
	Algo coll.Algo
	// Chunk is the -coll-chunk pipelining size in bytes (0 = whole
	// payload in one stage).
	Chunk int
	// Mode is the -progress engine selection.
	Mode progress.Mode
	// Quantum is the -progress-quantum thread wake interval.
	Quantum time.Duration
}

// RegisterColl installs the -coll-algo, -coll-chunk, -progress and
// -progress-quantum flags on fs (the default command-line set when fs
// is nil). Values are validated at parse time.
func RegisterColl(fs *flag.FlagSet) *Coll {
	if fs == nil {
		fs = flag.CommandLine
	}
	c := &Coll{Quantum: progress.DefaultQuantum}
	fs.Func("coll-algo", "collective schedule algorithm: auto, binomial, ring or recdouble", func(s string) error {
		a, err := coll.ParseAlgo(s)
		if err != nil {
			return err
		}
		c.Algo = a
		return nil
	})
	fs.IntVar(&c.Chunk, "coll-chunk", 0, "pipeline collective payloads in chunks of this many bytes (0 = unchunked)")
	fs.Func("progress", "progress engine for nonblocking collectives: manual, piggyback or thread", func(s string) error {
		m, err := progress.ParseMode(s)
		if err != nil {
			return err
		}
		c.Mode = m
		return nil
	})
	fs.DurationVar(&c.Quantum, "progress-quantum", progress.DefaultQuantum, "wake quantum of the thread progress engine")
	return c
}

// Progress returns the selected engine configuration.
func (c *Coll) Progress() progress.Config {
	return progress.Config{Mode: c.Mode, Quantum: c.Quantum}
}

// Apply copies the collective selections into an mpi.Config.
func (c *Coll) Apply(cfg *mpi.Config) {
	cfg.CollAlgo = c.Algo
	cfg.CollChunk = c.Chunk
	cfg.Progress = c.Progress()
}

// Obs holds the observability flag state: -trace enables full
// span/instant collection and writes a Chrome trace-event file,
// -metrics prints the registry snapshot as text, -profile runs the
// critical-path/blame profiler over the collected events, and
// -diagnose feeds the profile and a windowed snapshot to the
// diagnosis engine and writes its ranked findings. Any of them alone
// works; -metrics without -trace, -profile or -diagnose runs the
// tracer in metrics-only mode so no ring memory is spent on events
// nobody will export.
type Obs struct {
	// TracePath is the -trace output file ("" = tracing off).
	TracePath string
	// Metrics is the -metrics switch.
	Metrics bool
	// ProfilePath is the -profile output ("" = profiling off). The
	// extension selects the format: .json, .csv, .folded, anything
	// else a text report; "-" prints the text report to the Finish
	// writer.
	ProfilePath string
	// ProfileTop caps the text report's call-site table (-profile-top).
	ProfileTop int
	// TimeResolvedPath is the -timeresolved output ("" = off). The
	// extension selects the format: .json, .csv, anything else a text
	// table; "-" prints the text table to the Finish writer. The
	// analyzer taps the trace stream live, so it works in metrics-only
	// mode too.
	TimeResolvedPath string
	// TimeResWindow is the -timeres-window rolling-window length.
	TimeResWindow time.Duration
	// DiagnosePath is the -diagnose output ("" = off): the diagnosis
	// engine (internal/diagnose) runs over the traced run's blame
	// profile and windowed snapshot and writes its ranked findings —
	// .json selects the schema-versioned JSON, anything else the text
	// report; "-" prints the text report to the Finish writer.
	DiagnosePath string

	tr       *trace.Tracer
	tres     *timeres.Analyzer
	table    *calib.Table
	reports  []*overlap.Report
	crashes  []diagnose.Crash
	recovery *diagnose.Recovery
}

// RegisterObs installs the -trace and -metrics flags on fs (the
// default command-line set when fs is nil).
func RegisterObs(fs *flag.FlagSet) *Obs {
	if fs == nil {
		fs = flag.CommandLine
	}
	o := &Obs{}
	fs.StringVar(&o.TracePath, "trace", "", "write a Chrome trace-event JSON file (open in Perfetto) to this path")
	fs.BoolVar(&o.Metrics, "metrics", false, "print the run's metrics registry after the sweep")
	fs.StringVar(&o.ProfilePath, "profile", "", "write a critical-path/blame profile to this path (.json/.csv/.folded by extension, text otherwise, \"-\" for stdout)")
	fs.IntVar(&o.ProfileTop, "profile-top", 10, "call sites to list in the text profile (0 = all)")
	fs.StringVar(&o.TimeResolvedPath, "timeresolved", "", "write time-resolved efficiency metrics to this path (.json/.csv by extension, text otherwise, \"-\" for stdout)")
	fs.DurationVar(&o.TimeResWindow, "timeres-window", timeres.DefaultWindow, "rolling-window length for -timeresolved")
	fs.StringVar(&o.DiagnosePath, "diagnose", "", "write the run's ranked diagnosis findings to this path (.json by extension, text otherwise, \"-\" for stdout)")
	return o
}

// Enabled reports whether any observability output was requested.
func (o *Obs) Enabled() bool {
	return o != nil && (o.TracePath != "" || o.Metrics || o.ProfilePath != "" ||
		o.TimeResolvedPath != "" || o.DiagnosePath != "")
}

// Tracer returns the tracer to hand to cluster.Config.Trace, creating
// it on first call, or nil when no observability flag was set (a nil
// tracer disables instrumentation everywhere).
func (o *Obs) Tracer() *trace.Tracer {
	if !o.Enabled() {
		return nil
	}
	if o.tr == nil {
		// The diagnosis engine replays the retained events through the
		// profiler, so -diagnose needs full retention just like -profile.
		o.tr = trace.New(trace.Options{
			MetricsOnly: o.TracePath == "" && o.ProfilePath == "" && o.DiagnosePath == "",
			Generator:   Version(),
		})
		if o.TimeResolvedPath != "" {
			o.tres = timeres.New(timeres.Options{Window: o.TimeResWindow})
			o.tr.AddSink(o.tres)
		}
	}
	return o.tr
}

// TimeRes returns the live time-resolved analyzer, non-nil once
// Tracer() has been called with -timeresolved set.
func (o *Obs) TimeRes() *timeres.Analyzer {
	if o == nil {
		return nil
	}
	return o.tres
}

// SetRun records the traced run's calibration table and reports, which
// the profiler needs for transfer times and region names. Drivers that
// cannot reach them may skip the call: Finish then calibrates a table
// on the default cost model (exact for runs that used it) and falls
// back to positional region labels.
func (o *Obs) SetRun(table *calib.Table, reports []*overlap.Report) {
	if o == nil {
		return
	}
	if table != nil {
		o.table = table
	}
	if reports != nil {
		o.reports = reports
	}
}

// Finish writes the requested outputs: the trace file (if -trace) and
// the metrics table on w (if -metrics). Call it once, after the
// traced run completes.
func (o *Obs) Finish(w io.Writer) error {
	if !o.Enabled() || o.tr == nil {
		return nil
	}
	if o.TracePath != "" {
		f, err := os.Create(o.TracePath)
		if err != nil {
			return err
		}
		if err := o.tr.WriteChrome(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote trace to %s (%d tracks)\n", o.TracePath, len(o.tr.Tracks()))
	}
	if o.Metrics {
		fmt.Fprintln(w, "metrics:")
		if err := o.tr.Metrics().Snapshot().WriteText(w); err != nil {
			return err
		}
	}
	if o.ProfilePath != "" {
		if err := o.writeProfile(w); err != nil {
			return fmt.Errorf("profile: %w", err)
		}
	}
	if o.TimeResolvedPath != "" && o.tres != nil {
		if err := o.writeTimeRes(w); err != nil {
			return fmt.Errorf("timeresolved: %w", err)
		}
	}
	if o.DiagnosePath != "" {
		if err := o.writeDiagnose(w); err != nil {
			return fmt.Errorf("diagnose: %w", err)
		}
	}
	return nil
}

// writeDiagnose runs the diagnosis engine over the traced run — the
// blame profile plus a windowed snapshot rebuilt from the same event
// stream — and writes the ranked findings.
func (o *Obs) writeDiagnose(w io.Writer) error {
	table := o.table
	if table == nil {
		table = cluster.Calibrate(fabric.CostModel{}, nil, 0)
	}
	in := profile.FromTracer(o.tr, table, o.reports)
	p, err := profile.Analyze(in)
	if err != nil {
		return err
	}
	din := diagnose.Input{
		Profile:  p,
		Duration: p.Duration,
		Procs:    p.Ranks,
		Crashes:  o.crashes,
		Recovery: o.recovery,
	}
	if snap, err := timeres.FromInput(in, timeres.Options{Window: o.TimeResWindow}); err == nil {
		din.TimeRes = snap
	}
	rep := diagnose.Analyze(din)
	if o.DiagnosePath == "-" {
		return diagnose.WriteText(w, rep)
	}
	f, err := os.Create(o.DiagnosePath)
	if err != nil {
		return err
	}
	if strings.HasSuffix(o.DiagnosePath, ".json") {
		err = diagnose.WriteJSON(f, rep)
	} else {
		err = diagnose.WriteText(f, rep)
	}
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote diagnosis to %s (%d findings)\n", o.DiagnosePath, len(rep.Findings))
	return nil
}

func (o *Obs) writeTimeRes(w io.Writer) error {
	table := o.table
	if table == nil {
		table = cluster.Calibrate(fabric.CostModel{}, nil, 0)
	}
	o.tres.SetTable(table)
	o.tres.Finalize(o.runDuration())
	if err := o.tres.Err(); err != nil {
		return err
	}
	s := o.tres.Snapshot()
	if o.TimeResolvedPath == "-" {
		return s.WriteText(w)
	}
	f, err := os.Create(o.TimeResolvedPath)
	if err != nil {
		return err
	}
	switch {
	case strings.HasSuffix(o.TimeResolvedPath, ".json"):
		err = s.WriteJSON(f)
	case strings.HasSuffix(o.TimeResolvedPath, ".csv"):
		err = s.WriteCSV(f)
	default:
		err = s.WriteText(f)
	}
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote time-resolved metrics to %s (%d windows, %d phases)\n",
		o.TimeResolvedPath, len(s.Windows), len(s.Phases))
	return nil
}

// runDuration recovers the run's virtual wall time from the metrics
// registry (cluster.RunE publishes run.duration_ns); zero lets the
// analyzer fall back to the largest stamp seen.
func (o *Obs) runDuration() time.Duration {
	snap := o.tr.Metrics().Snapshot()
	if snap == nil {
		return 0
	}
	for _, g := range snap.Gauges {
		if g.Name == "run.duration_ns" {
			return time.Duration(g.Value)
		}
	}
	return 0
}

func (o *Obs) writeProfile(w io.Writer) error {
	table := o.table
	if table == nil {
		table = cluster.Calibrate(fabric.CostModel{}, nil, 0)
	}
	p, err := profile.Analyze(profile.FromTracer(o.tr, table, o.reports))
	if err != nil {
		return err
	}
	if o.ProfilePath == "-" {
		return p.WriteText(w, o.ProfileTop)
	}
	f, err := os.Create(o.ProfilePath)
	if err != nil {
		return err
	}
	switch {
	case strings.HasSuffix(o.ProfilePath, ".json"):
		err = p.EncodeJSON(f)
	case strings.HasSuffix(o.ProfilePath, ".csv"):
		err = p.WriteCSV(f)
	case strings.HasSuffix(o.ProfilePath, ".folded"):
		err = p.WriteFolded(f)
	default:
		err = p.WriteText(f, o.ProfileTop)
	}
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote profile to %s (%d sites, critical path %v)\n",
		o.ProfilePath, len(p.Sites), p.Critical.Length)
	return nil
}
