package cmdutil

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/fabric"
	"ovlp/internal/trace"
	"ovlp/internal/vtime"
)

func TestParseProcs(t *testing.T) {
	def := []int{4, 8}
	if got, err := ParseProcs("", def); err != nil || !reflect.DeepEqual(got, def) {
		t.Errorf("empty flag: got %v, %v", got, err)
	}
	if got, err := ParseProcs(" 2, 9 ,16", nil); err != nil || !reflect.DeepEqual(got, []int{2, 9, 16}) {
		t.Errorf("list: got %v, %v", got, err)
	}
	for _, bad := range []string{"x", "0", "-1", "2,,4"} {
		if _, err := ParseProcs(bad, def); err == nil {
			t.Errorf("ParseProcs(%q) accepted", bad)
		}
	}
}

func TestCheckFaultNodes(t *testing.T) {
	plan := &fabric.FaultPlan{
		Seed:   1,
		Stalls: []fabric.StallWindow{{Node: 3, Start: 0, End: vtime.Time(1)}},
	}
	// Node 3 exists only on machines with >= 4 nodes; the smallest
	// count in the sweep is what binds.
	if err := CheckFaultNodes(plan, []int{8, 4}); err != nil {
		t.Errorf("valid sweep rejected: %v", err)
	}
	if err := CheckFaultNodes(plan, []int{8, 2}); err == nil {
		t.Error("sweep including a 2-node run must be rejected")
	}
	if err := CheckFaultNodes(nil, []int{1}); err != nil {
		t.Errorf("nil plan rejected: %v", err)
	}
	if err := CheckFaultNodes(plan, nil); err != nil {
		t.Errorf("empty sweep rejected: %v", err)
	}
}

func TestObsDisabled(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	o := RegisterObs(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if o.Enabled() || o.Tracer() != nil {
		t.Error("no flags must mean no tracer")
	}
	if err := o.Finish(os.Stdout); err != nil {
		t.Errorf("Finish on disabled obs: %v", err)
	}
}

func TestObsTraceAndMetrics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	o := RegisterObs(fs)
	if err := fs.Parse([]string{"-trace", path, "-metrics"}); err != nil {
		t.Fatal(err)
	}
	tr := o.Tracer()
	if tr == nil {
		t.Fatal("tracer must exist with -trace set")
	}
	if o.Tracer() != tr {
		t.Error("Tracer must be created once")
	}
	tr.Track(trace.GroupHost, 0, "rank0").Instant("c", "e", 0, trace.None)
	tr.Metrics().Counter("runs").Inc()

	var out bytes.Buffer
	if err := o.Finish(&out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file invalid JSON: %v", err)
	}
	if !strings.Contains(out.String(), "runs") {
		t.Errorf("-metrics output missing counter:\n%s", out.String())
	}
}

func TestObsMetricsOnly(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	o := RegisterObs(fs)
	if err := fs.Parse([]string{"-metrics"}); err != nil {
		t.Fatal(err)
	}
	tr := o.Tracer()
	tk := tr.Track(trace.GroupHost, 0, "r")
	tk.Instant("c", "e", 0, trace.None)
	if len(tk.Recs()) != 0 {
		t.Error("bare -metrics must run the tracer in metrics-only mode")
	}
	tr.Metrics().Counter("n").Add(3)
	var out bytes.Buffer
	if err := o.Finish(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "n") || !strings.Contains(out.String(), "3") {
		t.Errorf("metrics table missing:\n%s", out.String())
	}
}

func TestFTPlan(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := RegisterFT(fs)
	if err := fs.Parse([]string{"-crash", "2@800us, 0@3ms"}); err != nil {
		t.Fatal(err)
	}
	if !f.Active() {
		t.Fatal("crash plan declared but not Active")
	}
	plan, err := f.Plan()
	if err != nil {
		t.Fatal(err)
	}
	want := []fabric.Crash{
		{Node: 2, At: vtime.Time(800 * time.Microsecond)},
		{Node: 0, At: vtime.Time(3 * time.Millisecond)},
	}
	if !reflect.DeepEqual(plan.Crashes, want) {
		t.Errorf("Plan = %+v, want %+v", plan.Crashes, want)
	}
	if err := f.CheckNodes(plan, 4); err != nil {
		t.Errorf("valid machine rejected: %v", err)
	}
	if err := f.CheckNodes(plan, 3); err == nil {
		t.Error("node 2 crash on a 3-node run with node 0 also dead must leave < 2 survivors")
	}
	if err := f.CheckNodes(plan, 2); err == nil {
		t.Error("crash naming node 2 on a 2-node machine accepted")
	}
	if !strings.Contains(f.Describe(), "node 2 @ 800µs") {
		t.Errorf("Describe = %q", f.Describe())
	}
}

func TestFTPlanErrors(t *testing.T) {
	for _, bad := range []string{"x", "2", "2@", "@1ms", "2@-1ms", "2@0s", "1@1ms,1@2ms", " , "} {
		fs := flag.NewFlagSet("x", flag.ContinueOnError)
		f := RegisterFT(fs)
		if err := fs.Parse([]string{"-crash", bad}); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Plan(); err == nil {
			t.Errorf("-crash %q accepted", bad)
		}
	}
}

func TestFTOptions(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := RegisterFT(fs)
	if err := fs.Parse([]string{"-recover", "checkpoint-restart", "-checkpoint-every", "2"}); err != nil {
		t.Fatal(err)
	}
	opt, err := f.Options()
	if err != nil {
		t.Fatal(err)
	}
	if opt.Mode != cluster.CheckpointRestart || opt.CheckpointEvery != 2 {
		t.Errorf("Options = %+v", opt)
	}

	fs = flag.NewFlagSet("x", flag.ContinueOnError)
	f = RegisterFT(fs)
	if err := fs.Parse([]string{"-recover", "retry-harder"}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Options(); err == nil {
		t.Error("unknown -recover mode accepted")
	}
}

// TestFTInactive: no -crash means a nil plan and an untouched header.
func TestFTInactive(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := RegisterFT(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if f.Active() {
		t.Error("Active without -crash")
	}
	if plan, err := f.Plan(); plan != nil || err != nil {
		t.Errorf("Plan = %v, %v", plan, err)
	}
	if f.Describe() != "" {
		t.Errorf("Describe = %q, want empty", f.Describe())
	}
}
