package cmdutil

// Fault-tolerance flags: the -crash plan and the recovery-policy
// knobs, shared by every driver that can run a Checkpointable
// workload under cluster.RunFT. Mirrors the faultflag pattern — flags
// assemble into a fabric.CrashPlan + cluster.FTOptions, validated
// before any rank is spawned.

import (
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/diagnose"
	"ovlp/internal/fabric"
	"ovlp/internal/vtime"
)

// FT is the shared fault-tolerance flag state: which nodes crash and
// when, and what the survivors do about it.
type FT struct {
	crash     string
	mode      string
	every     int
	heartbeat time.Duration
}

// RegisterFT installs the crash-stop fault-tolerance flags on fs (the
// default command-line set when fs is nil): -crash declares the kill
// plan, -recover / -checkpoint-every / -heartbeat the recovery policy.
func RegisterFT(fs *flag.FlagSet) *FT {
	if fs == nil {
		fs = flag.CommandLine
	}
	f := &FT{}
	fs.StringVar(&f.crash, "crash", "",
		`crash-stop rank failures, comma-separated "node@time", e.g. "2@800us"`)
	fs.StringVar(&f.mode, "recover", "",
		"recovery mode after an agreed failure: shrink-continue (default) or checkpoint-restart")
	fs.IntVar(&f.every, "checkpoint-every", 1,
		"steps between committed checkpoints in checkpoint-restart mode")
	fs.DurationVar(&f.heartbeat, "heartbeat", 0,
		"failure-detector ping period (0 = the library default)")
	return f
}

// Active reports whether a crash plan was declared.
func (f *FT) Active() bool { return f != nil && f.crash != "" }

// Plan compiles the -crash list into a fabric plan, nil when the flag
// was left empty.
func (f *FT) Plan() (*fabric.CrashPlan, error) {
	if !f.Active() {
		return nil, nil
	}
	p := &fabric.CrashPlan{}
	seen := map[int]bool{}
	for _, part := range strings.Split(f.crash, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		cr, err := parseCrash(part)
		if err != nil {
			return nil, err
		}
		if seen[int(cr.Node)] {
			return nil, fmt.Errorf("cmdutil: -crash kills node %d twice", cr.Node)
		}
		seen[int(cr.Node)] = true
		p.Crashes = append(p.Crashes, cr)
	}
	if len(p.Crashes) == 0 {
		return nil, fmt.Errorf("cmdutil: -crash %q declares no crash", f.crash)
	}
	return p, nil
}

func parseCrash(s string) (fabric.Crash, error) {
	bad := func() (fabric.Crash, error) {
		return fabric.Crash{}, fmt.Errorf(
			`cmdutil: bad crash %q (want "node@time", e.g. "2@800us")`, s)
	}
	nodeStr, atStr, ok := strings.Cut(s, "@")
	if !ok {
		return bad()
	}
	node, err := strconv.Atoi(nodeStr)
	if err != nil || node < 0 {
		return bad()
	}
	at, err := time.ParseDuration(atStr)
	if err != nil || at <= 0 {
		return bad()
	}
	return fabric.Crash{Node: fabric.NodeID(node), At: vtime.Time(at)}, nil
}

// Options assembles the recovery policy from the mode/interval/ping
// flags. The mode string is validated here, so drivers can reject a
// typo with exit 2 before any simulation starts.
func (f *FT) Options() (cluster.FTOptions, error) {
	mode, err := cluster.ParseRecoveryMode(f.mode)
	if err != nil {
		return cluster.FTOptions{}, fmt.Errorf("cmdutil: -recover: %w", err)
	}
	if f.every < 0 {
		return cluster.FTOptions{}, fmt.Errorf("cmdutil: -checkpoint-every must be non-negative")
	}
	if f.heartbeat < 0 {
		return cluster.FTOptions{}, fmt.Errorf("cmdutil: -heartbeat must be non-negative")
	}
	return cluster.FTOptions{
		Mode:            mode,
		CheckpointEvery: f.every,
		Heartbeat:       f.heartbeat,
	}, nil
}

// CheckNodes rejects a crash plan that kills nodes a machine of the
// given size does not have, or that leaves fewer than two survivors —
// the shrunken run must still have someone to exchange with.
func (f *FT) CheckNodes(p *fabric.CrashPlan, procs int) error {
	if p == nil {
		return nil
	}
	for _, cr := range p.Crashes {
		if int(cr.Node) >= procs {
			return fmt.Errorf("cmdutil: -crash names node %d but the run uses %d process(es) (nodes 0-%d)",
				cr.Node, procs, procs-1)
		}
	}
	if len(p.Crashes) > procs-2 {
		return fmt.Errorf("cmdutil: -crash kills %d of %d ranks; at least two must survive",
			len(p.Crashes), procs)
	}
	return nil
}

// SetFT records a fault-tolerant run's declared crash plan and
// recovery outcome, so -diagnose cites the declared crashes (the
// rank-failure finding) instead of only what the blame profile shows.
// Call it after the traced run, alongside SetRun; any argument may be
// nil.
func (o *Obs) SetFT(plan *fabric.CrashPlan, mode cluster.RecoveryMode, ft *cluster.FTResult) {
	if o == nil {
		return
	}
	if plan != nil {
		o.crashes = nil
		for _, cr := range plan.Crashes {
			o.crashes = append(o.crashes, diagnose.Crash{Rank: int(cr.Node), At: time.Duration(cr.At)})
		}
	}
	if ft != nil {
		o.recovery = &diagnose.Recovery{
			Mode:          mode.String(),
			Epochs:        ft.Epochs,
			Failed:        ft.Failed,
			Survivors:     len(ft.Survivors),
			Checkpoints:   ft.Checkpoints,
			ReplayedSteps: ft.ReplayedSteps,
			Completed:     ft.Completed,
		}
	}
}

// Describe renders the crash plan and recovery policy for a driver's
// header line; "" when no crash was declared, so failure-free output
// stays untouched.
func (f *FT) Describe() string {
	if !f.Active() {
		return ""
	}
	p, err := f.Plan()
	if err != nil {
		return ""
	}
	var kills []string
	for _, cr := range p.Crashes {
		kills = append(kills, fmt.Sprintf("node %d @ %v", cr.Node, time.Duration(cr.At)))
	}
	mode, merr := cluster.ParseRecoveryMode(f.mode)
	desc := "crashes: " + strings.Join(kills, ", ")
	if merr == nil {
		desc += fmt.Sprintf(" (%s recovery)", mode)
	}
	return desc
}
