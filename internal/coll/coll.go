// Package coll builds explicit dataflow schedules for nonblocking
// collective operations: a per-rank list of sends, receives and local
// reduction/copy steps with dependency edges, to be executed lazily by
// a progress engine over a point-to-point layer.
//
// Representing a collective as a schedule — rather than as straight-
// line blocking code — is what makes it nonblocking: any engine that
// repeatedly starts ready actions and retires finished ones will drive
// the collective to completion, and *when* that engine runs (manual
// application polls, piggybacked progress on library calls, or a
// dedicated progress thread) determines how much of the collective's
// communication overlaps the application's computation. The package is
// pure scheduling: it knows nothing about the transport, so it can be
// validated exhaustively by abstract execution (see coll_test.go).
//
// Peer-to-peer matching contract: rank A's Send action with a given
// (Round, Chunk) pairs with the Recv action on A's peer carrying the
// same (Round, Chunk) and naming A as its peer. Builders guarantee the
// pairing is unique within one schedule.
package coll

import (
	"fmt"
	"strings"
)

// Op enumerates the collective operations the package can schedule.
type Op int

const (
	OpBcast Op = iota
	OpReduce
	OpAllreduce
	OpAlltoall
	OpBarrier
)

func (o Op) String() string {
	switch o {
	case OpBcast:
		return "bcast"
	case OpReduce:
		return "reduce"
	case OpAllreduce:
		return "allreduce"
	case OpAlltoall:
		return "alltoall"
	case OpBarrier:
		return "barrier"
	}
	return "invalid"
}

// Algo selects the algorithm family. Not every family applies to every
// operation; Build resolves Auto and substitutes a valid family when
// the requested one cannot serve the geometry (recursive doubling on a
// non-power-of-two world degrades to the binomial family).
type Algo int

const (
	// Auto picks the customary default per operation: binomial trees
	// for rooted operations, recursive doubling for allreduce and
	// barrier on power-of-two worlds, ring elsewhere.
	Auto Algo = iota
	// Binomial schedules tree algorithms (binomial broadcast/reduce,
	// gather-release barrier, Bruck-style log-round alltoall).
	Binomial
	// Ring schedules chain and ring algorithms (pipelined chain
	// broadcast/reduce, reduce-scatter+allgather ring allreduce,
	// pairwise-exchange alltoall, double-token-lap barrier).
	Ring
	// RecDouble schedules recursive doubling/halving algorithms
	// (scatter+allgather broadcast, recursive-halving reduce,
	// recursive-doubling allreduce, dissemination barrier, Bruck-style
	// alltoall).
	RecDouble
)

func (a Algo) String() string {
	switch a {
	case Auto:
		return "auto"
	case Binomial:
		return "binomial"
	case Ring:
		return "ring"
	case RecDouble:
		return "recdouble"
	}
	return "invalid"
}

// ParseAlgo parses an -coll-algo flag value.
func ParseAlgo(s string) (Algo, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return Auto, nil
	case "binomial", "tree":
		return Binomial, nil
	case "ring", "chain":
		return Ring, nil
	case "recdouble", "rec-dbl", "recursive-doubling":
		return RecDouble, nil
	}
	return Auto, fmt.Errorf("coll: unknown algorithm %q (want auto, binomial, ring or recdouble)", s)
}

// Kind enumerates schedule action types.
type Kind int

const (
	// Send posts a point-to-point send of Size bytes to Peer.
	Send Kind = iota
	// Recv posts a matching receive of Size bytes from Peer.
	Recv
	// Reduce applies the reduction operator over Size bytes locally.
	Reduce
	// Copy moves Size bytes locally (self blocks, Bruck rotations).
	Copy
)

func (k Kind) String() string {
	switch k {
	case Send:
		return "send"
	case Recv:
		return "recv"
	case Reduce:
		return "reduce"
	case Copy:
		return "copy"
	}
	return "invalid"
}

// TokenSize is the payload of synchronization-only messages (barrier
// tokens), matching the blocking collectives' convention.
const TokenSize = 4

// MaxChunks caps how many pipeline chunks a single logical transfer
// may be split into; Build clamps the chunk size upward to honour it,
// so executors can reserve a fixed tag field for the chunk index.
const MaxChunks = 64

// Action is one step of a rank's schedule.
type Action struct {
	Kind Kind
	// Peer is the world rank this action communicates with (-1 for
	// local Reduce/Copy steps).
	Peer int
	// Round and Chunk key the transfer for tag construction; together
	// with the (sender, receiver) pair they are unique in the schedule.
	Round int
	Chunk int
	// Size is the payload (Send/Recv) or operand (Reduce/Copy) bytes.
	Size int
	// Deps lists indices of actions in the same schedule that must
	// finish before this one may start.
	Deps []int32
}

// Params describes the collective to schedule from one rank's view.
type Params struct {
	Op   Op
	Algo Algo
	// Rank and Procs place the caller in the world.
	Rank, Procs int
	// Root is the root rank for OpBcast and OpReduce (ignored
	// otherwise).
	Root int
	// Size is the per-rank payload in bytes: the full message for
	// bcast/reduce/allreduce, the per-destination block for alltoall;
	// ignored for barrier.
	Size int
	// Chunk pipelines transfers in chunks of at most this many bytes
	// where the algorithm supports it (0 = whole-message transfers).
	Chunk int
}

// Schedule is the dataflow program for one rank's share of a
// collective.
type Schedule struct {
	Op Op
	// Algo is the resolved algorithm (never Auto).
	Algo Algo
	// Rounds is the highest Round used plus one.
	Rounds  int
	Actions []Action
}

// Resolve returns the algorithm Build will schedule for op on a
// procs-rank world when algo is requested — substituting a family that
// serves the geometry when the requested one cannot.
func Resolve(op Op, algo Algo, procs int) Algo {
	pow2 := procs&(procs-1) == 0
	if algo == Auto {
		switch op {
		case OpBcast, OpReduce:
			return Binomial
		case OpAllreduce:
			if pow2 {
				return RecDouble
			}
			return Ring
		case OpAlltoall:
			return Ring
		case OpBarrier:
			return RecDouble
		}
	}
	if algo == RecDouble && !pow2 {
		// Recursive doubling/halving needs a power of two for the data
		// operations; dissemination (barrier) and Bruck (alltoall)
		// handle any world size.
		switch op {
		case OpBcast, OpReduce, OpAllreduce:
			return Binomial
		}
	}
	return algo
}

// Build constructs the schedule for p.Rank's share of the collective.
func Build(p Params) (*Schedule, error) {
	if p.Procs < 1 {
		return nil, fmt.Errorf("coll: %d procs", p.Procs)
	}
	if p.Rank < 0 || p.Rank >= p.Procs {
		return nil, fmt.Errorf("coll: rank %d out of range [0,%d)", p.Rank, p.Procs)
	}
	switch p.Op {
	case OpBcast, OpReduce:
		if p.Root < 0 || p.Root >= p.Procs {
			return nil, fmt.Errorf("coll: root %d out of range [0,%d)", p.Root, p.Procs)
		}
		if p.Size < 1 {
			return nil, fmt.Errorf("coll: %s of %d bytes", p.Op, p.Size)
		}
	case OpAllreduce, OpAlltoall:
		if p.Size < 1 {
			return nil, fmt.Errorf("coll: %s of %d bytes", p.Op, p.Size)
		}
	case OpBarrier:
		// Size ignored.
	default:
		return nil, fmt.Errorf("coll: unknown op %d", p.Op)
	}
	algo := Resolve(p.Op, p.Algo, p.Procs)
	sch := &Schedule{Op: p.Op, Algo: algo}
	if p.Procs == 1 {
		// Degenerate world: nothing moves. Alltoall still copies the
		// self block, matching the blocking implementation.
		if p.Op == OpAlltoall {
			b := &builder{}
			b.add(Action{Kind: Copy, Peer: -1, Size: p.Size})
			sch.Actions, sch.Rounds = b.acts, b.rounds
		}
		return sch, nil
	}
	b := &builder{}
	switch p.Op {
	case OpBcast:
		switch algo {
		case Binomial:
			b.bcastBinomial(p, 0, -1)
		case Ring:
			b.bcastChain(p)
		case RecDouble:
			b.bcastScatterAllgather(p)
		}
	case OpReduce:
		switch algo {
		case Binomial:
			b.reduceBinomial(p, 0, -1)
		case Ring:
			b.reduceChain(p)
		case RecDouble:
			b.reduceRecHalving(p)
		}
	case OpAllreduce:
		switch algo {
		case Binomial:
			// Composed trees: binomial reduce to rank 0, then binomial
			// broadcast back out, serialized per rank.
			rp := p
			rp.Root = 0
			last := b.reduceBinomial(rp, 0, -1)
			b.bcastBinomial(rp, 1, last)
		case Ring:
			b.allreduceRing(p)
		case RecDouble:
			b.allreduceRecDouble(p)
		}
	case OpAlltoall:
		if algo == Ring {
			b.alltoallPairwise(p)
		} else {
			b.alltoallBruck(p)
		}
	case OpBarrier:
		switch algo {
		case Binomial:
			b.barrierTree(p)
		case Ring:
			b.barrierRing(p)
		case RecDouble:
			b.barrierDissemination(p)
		}
	}
	sch.Actions, sch.Rounds = b.acts, b.rounds
	return sch, nil
}

// builder accumulates actions; add returns the new action's index for
// dependency wiring. Negative dep indices are ignored, so "no
// dependency" threads through as -1.
type builder struct {
	acts   []Action
	rounds int
}

func (b *builder) add(a Action, deps ...int) int {
	if a.Round >= b.rounds {
		b.rounds = a.Round + 1
	}
	for _, d := range deps {
		if d >= 0 {
			a.Deps = append(a.Deps, int32(d))
		}
	}
	b.acts = append(b.acts, a)
	return len(b.acts) - 1
}

// chunkSizes splits size into pipeline chunks of at most chunk bytes,
// capped at MaxChunks pieces (the chunk size grows to fit).
func chunkSizes(size, chunk int) []int {
	if chunk <= 0 || chunk >= size {
		return []int{size}
	}
	if n := (size + chunk - 1) / chunk; n > MaxChunks {
		chunk = (size + MaxChunks - 1) / MaxChunks
	}
	var out []int
	for off := 0; off < size; off += chunk {
		c := chunk
		if size-off < c {
			c = size - off
		}
		out = append(out, c)
	}
	return out
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// vrPeer maps a virtual rank (root-relative numbering) back to a world
// rank.
func vrPeer(vr, root, procs int) int { return (vr + root) % procs }

// bcastBinomial schedules the binomial-tree broadcast, pipelined per
// chunk: a child forwards chunk c as soon as chunk c has arrived. The
// round parameter offsets the tag round (so composed schedules keep
// phases apart) and entryDep serializes the whole phase after a prior
// one; the return value is unused.
func (b *builder) bcastBinomial(p Params, round, entryDep int) {
	procs := p.Procs
	vr := (p.Rank - p.Root + procs) % procs
	cs := chunkSizes(p.Size, p.Chunk)
	recv := make([]int, len(cs))
	for i := range recv {
		recv[i] = entryDep
	}
	mask := 1
	for mask < procs {
		if vr&mask != 0 {
			src := vrPeer(vr-mask, p.Root, procs)
			for c, sz := range cs {
				recv[c] = b.add(Action{Kind: Recv, Peer: src, Round: round, Chunk: c, Size: sz}, entryDep)
			}
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if vr+mask < procs {
			dst := vrPeer(vr+mask, p.Root, procs)
			for c, sz := range cs {
				b.add(Action{Kind: Send, Peer: dst, Round: round, Chunk: c, Size: sz}, recv[c])
			}
		}
	}
}

// bcastChain schedules the pipelined chain broadcast: root-relative
// rank k receives from k-1 and forwards to k+1, chunk by chunk.
func (b *builder) bcastChain(p Params) {
	procs := p.Procs
	vr := (p.Rank - p.Root + procs) % procs
	cs := chunkSizes(p.Size, p.Chunk)
	recv := make([]int, len(cs))
	for i := range recv {
		recv[i] = -1
	}
	if vr > 0 {
		src := vrPeer(vr-1, p.Root, procs)
		for c, sz := range cs {
			recv[c] = b.add(Action{Kind: Recv, Peer: src, Round: 0, Chunk: c, Size: sz})
		}
	}
	if vr < procs-1 {
		dst := vrPeer(vr+1, p.Root, procs)
		for c, sz := range cs {
			b.add(Action{Kind: Send, Peer: dst, Round: 0, Chunk: c, Size: sz}, recv[c])
		}
	}
}

// bcastScatterAllgather schedules the large-message broadcast of van
// de Geijn: a binomial scatter of message blocks followed by a
// recursive-doubling allgather. Requires a power-of-two world.
func (b *builder) bcastScatterAllgather(p Params) {
	procs := p.Procs
	vr := (p.Rank - p.Root + procs) % procs
	blk := ceilDiv(p.Size, procs)
	round := 0
	myRecv := -1
	var phase []int // every scatter action of this rank
	for mask := procs >> 1; mask >= 1; mask >>= 1 {
		switch {
		case vr%(2*mask) == 0:
			idx := b.add(Action{Kind: Send, Peer: vrPeer(vr+mask, p.Root, procs),
				Round: round, Size: mask * blk}, myRecv)
			phase = append(phase, idx)
		case vr%(2*mask) == mask:
			myRecv = b.add(Action{Kind: Recv, Peer: vrPeer(vr-mask, p.Root, procs),
				Round: round, Size: mask * blk})
			phase = append(phase, myRecv)
		}
		round++
	}
	prev := phase
	own := blk
	for k := 1; k < procs; k <<= 1 {
		partner := vrPeer(vr^k, p.Root, procs)
		s := b.add(Action{Kind: Send, Peer: partner, Round: round, Size: own}, prev...)
		q := b.add(Action{Kind: Recv, Peer: partner, Round: round, Size: own}, prev...)
		prev = []int{s, q}
		own *= 2
		round++
	}
}

// reduceBinomial schedules the binomial-tree reduction: children send
// up, parents fold each contribution as it arrives. Returns the index
// of the rank's last action, so composed schedules (allreduce) can
// serialize a following phase on it.
func (b *builder) reduceBinomial(p Params, round, entryDep int) int {
	procs := p.Procs
	vr := (p.Rank - p.Root + procs) % procs
	last := entryDep
	for mask := 1; mask < procs; mask <<= 1 {
		if vr&mask != 0 {
			dst := vrPeer(vr-mask, p.Root, procs)
			return b.add(Action{Kind: Send, Peer: dst, Round: round, Size: p.Size}, last)
		}
		if vr+mask < procs {
			src := vrPeer(vr+mask, p.Root, procs)
			q := b.add(Action{Kind: Recv, Peer: src, Round: round, Size: p.Size}, entryDep)
			last = b.add(Action{Kind: Reduce, Peer: -1, Round: round, Size: p.Size}, q, last)
		}
	}
	return last
}

// reduceChain schedules the pipelined chain reduction: the reversed
// broadcast chain, folding chunk by chunk toward the root.
func (b *builder) reduceChain(p Params) {
	procs := p.Procs
	vr := (p.Rank - p.Root + procs) % procs
	cs := chunkSizes(p.Size, p.Chunk)
	red := make([]int, len(cs))
	for i := range red {
		red[i] = -1
	}
	if vr < procs-1 {
		src := vrPeer(vr+1, p.Root, procs)
		for c, sz := range cs {
			q := b.add(Action{Kind: Recv, Peer: src, Round: 0, Chunk: c, Size: sz})
			red[c] = b.add(Action{Kind: Reduce, Peer: -1, Round: 0, Chunk: c, Size: sz}, q)
		}
	}
	if vr > 0 {
		dst := vrPeer(vr-1, p.Root, procs)
		for c, sz := range cs {
			b.add(Action{Kind: Send, Peer: dst, Round: 0, Chunk: c, Size: sz}, red[c])
		}
	}
}

// reduceRecHalving schedules a recursive-halving reduce-scatter (log P
// rounds of shrinking exchanges, each followed by a local fold) and a
// final block gather to the root. Requires a power-of-two world.
func (b *builder) reduceRecHalving(p Params) {
	procs := p.Procs
	vr := (p.Rank - p.Root + procs) % procs
	round := 0
	last := -1
	sz := p.Size
	for k := 1; k < procs; k <<= 1 {
		sz = ceilDiv(sz, 2)
		partner := vrPeer(vr^k, p.Root, procs)
		s := b.add(Action{Kind: Send, Peer: partner, Round: round, Size: sz}, last)
		q := b.add(Action{Kind: Recv, Peer: partner, Round: round, Size: sz}, last)
		last = b.add(Action{Kind: Reduce, Peer: -1, Round: round, Size: sz}, s, q)
		round++
	}
	if vr != 0 {
		b.add(Action{Kind: Send, Peer: p.Root, Round: round, Size: sz}, last)
		return
	}
	for i := 1; i < procs; i++ {
		b.add(Action{Kind: Recv, Peer: vrPeer(i, p.Root, procs), Round: round, Size: sz}, last)
	}
}

// allreduceRecDouble schedules the recursive-doubling allreduce: log P
// rounds of full-size exchange and fold, pipelined per chunk within
// each round. Requires a power-of-two world.
func (b *builder) allreduceRecDouble(p Params) {
	procs := p.Procs
	cs := chunkSizes(p.Size, p.Chunk)
	var prev []int
	round := 0
	for k := 1; k < procs; k <<= 1 {
		partner := p.Rank ^ k
		var cur []int
		for c, sz := range cs {
			s := b.add(Action{Kind: Send, Peer: partner, Round: round, Chunk: c, Size: sz}, prev...)
			q := b.add(Action{Kind: Recv, Peer: partner, Round: round, Chunk: c, Size: sz}, prev...)
			red := b.add(Action{Kind: Reduce, Peer: -1, Round: round, Chunk: c, Size: sz}, q)
			cur = append(cur, s, red)
		}
		prev = cur
		round++
	}
}

// allreduceRing schedules the bandwidth-optimal ring allreduce: P-1
// reduce-scatter steps followed by P-1 allgather steps, each moving
// one message block around the ring.
func (b *builder) allreduceRing(p Params) {
	procs := p.Procs
	blk := ceilDiv(p.Size, procs)
	next := (p.Rank + 1) % procs
	prevR := (p.Rank - 1 + procs) % procs
	round := 0
	lastRed := -1
	for s := 0; s < procs-1; s++ {
		b.add(Action{Kind: Send, Peer: next, Round: round, Size: blk}, lastRed)
		q := b.add(Action{Kind: Recv, Peer: prevR, Round: round, Size: blk})
		lastRed = b.add(Action{Kind: Reduce, Peer: -1, Round: round, Size: blk}, q)
		round++
	}
	lastFwd := lastRed
	for s := 0; s < procs-1; s++ {
		b.add(Action{Kind: Send, Peer: next, Round: round, Size: blk}, lastFwd)
		lastFwd = b.add(Action{Kind: Recv, Peer: prevR, Round: round, Size: blk})
		round++
	}
}

// alltoallPairwise schedules the pairwise-exchange alltoall: the self
// block copies locally, then P-1 rounds each exchange one block with a
// rotating partner, serialized round to round like the blocking
// implementation.
func (b *builder) alltoallPairwise(p Params) {
	procs := p.Procs
	prev := []int{b.add(Action{Kind: Copy, Peer: -1, Size: p.Size})}
	for i := 1; i < procs; i++ {
		dst := (p.Rank + i) % procs
		src := (p.Rank - i + procs) % procs
		s := b.add(Action{Kind: Send, Peer: dst, Round: i, Size: p.Size}, prev...)
		q := b.add(Action{Kind: Recv, Peer: src, Round: i, Size: p.Size}, prev...)
		prev = []int{s, q}
	}
}

// alltoallBruck schedules the Bruck log-round alltoall: an initial
// local rotation, ceil(log2 P) rounds each bundling the blocks whose
// destination index has the round's bit set, and a final inverse
// rotation.
func (b *builder) alltoallBruck(p Params) {
	procs := p.Procs
	prev := []int{b.add(Action{Kind: Copy, Peer: -1, Size: procs * p.Size})}
	round := 0
	for k := 1; k < procs; k <<= 1 {
		cnt := 0
		for j := 1; j < procs; j++ {
			if j&k != 0 {
				cnt++
			}
		}
		dst := (p.Rank + k) % procs
		src := (p.Rank - k + procs) % procs
		s := b.add(Action{Kind: Send, Peer: dst, Round: round, Size: cnt * p.Size}, prev...)
		q := b.add(Action{Kind: Recv, Peer: src, Round: round, Size: cnt * p.Size}, prev...)
		prev = []int{s, q}
		round++
	}
	b.add(Action{Kind: Copy, Peer: -1, Size: procs * p.Size}, prev...)
}

// barrierDissemination schedules the dissemination barrier: round k
// exchanges tokens at distance 2^k, any world size, ceil(log2 P)
// rounds.
func (b *builder) barrierDissemination(p Params) {
	procs := p.Procs
	var prev []int
	round := 0
	for k := 1; k < procs; k <<= 1 {
		s := b.add(Action{Kind: Send, Peer: (p.Rank + k) % procs, Round: round, Size: TokenSize}, prev...)
		q := b.add(Action{Kind: Recv, Peer: (p.Rank - k + procs) % procs, Round: round, Size: TokenSize}, prev...)
		prev = []int{s, q}
		round++
	}
}

// barrierTree schedules the gather-release barrier on a binomial tree
// rooted at rank 0: tokens flow up (round 0), then the release flows
// back down (round 1).
func (b *builder) barrierTree(p Params) {
	procs := p.Procs
	vr := p.Rank
	lim := procs
	if vr != 0 {
		lim = vr & -vr // lowest set bit: the subtree this rank roots
	}
	var gathers []int
	for m := 1; m < lim && vr+m < procs; m <<= 1 {
		gathers = append(gathers, b.add(Action{Kind: Recv, Peer: vr + m, Round: 0, Size: TokenSize}))
	}
	if vr == 0 {
		for m := 1; m < lim && vr+m < procs; m <<= 1 {
			b.add(Action{Kind: Send, Peer: vr + m, Round: 1, Size: TokenSize}, gathers...)
		}
		return
	}
	parent := vr - lim
	b.add(Action{Kind: Send, Peer: parent, Round: 0, Size: TokenSize}, gathers...)
	rel := b.add(Action{Kind: Recv, Peer: parent, Round: 1, Size: TokenSize})
	for m := 1; m < lim && vr+m < procs; m <<= 1 {
		b.add(Action{Kind: Send, Peer: vr + m, Round: 1, Size: TokenSize}, rel)
	}
}

// barrierRing schedules the two-lap token ring barrier: rank 0
// originates a token that circles the ring twice; the second lap's
// arrival tells each rank that everyone has entered.
func (b *builder) barrierRing(p Params) {
	procs := p.Procs
	next := (p.Rank + 1) % procs
	prevR := (p.Rank - 1 + procs) % procs
	if p.Rank == 0 {
		b.add(Action{Kind: Send, Peer: next, Round: 0, Size: TokenSize})
		q0 := b.add(Action{Kind: Recv, Peer: prevR, Round: 0, Size: TokenSize})
		b.add(Action{Kind: Send, Peer: next, Round: 1, Size: TokenSize}, q0)
		b.add(Action{Kind: Recv, Peer: prevR, Round: 1, Size: TokenSize})
		return
	}
	q0 := b.add(Action{Kind: Recv, Peer: prevR, Round: 0, Size: TokenSize})
	b.add(Action{Kind: Send, Peer: next, Round: 0, Size: TokenSize}, q0)
	q1 := b.add(Action{Kind: Recv, Peer: prevR, Round: 1, Size: TokenSize})
	b.add(Action{Kind: Send, Peer: next, Round: 1, Size: TokenSize}, q1)
}
