package coll

import (
	"fmt"
	"testing"
)

// execute runs one schedule per rank through an abstract executor: a
// ready action (all deps finished) runs immediately; a Send deposits a
// message keyed by (src, dst, round, chunk); a Recv completes once the
// matching message is present and its size agrees. The executor loops
// until a full pass makes no progress, then reports whether every
// action on every rank finished and no message went unconsumed —
// i.e. the schedule set is deadlock-free and matching is consistent.
func execute(t *testing.T, scheds []*Schedule) {
	t.Helper()
	type key struct{ src, dst, round, chunk int }
	bag := map[key][]int{} // in-flight message sizes, FIFO per key
	procs := len(scheds)
	done := make([][]bool, procs)
	left := 0
	for r, sch := range scheds {
		done[r] = make([]bool, len(sch.Actions))
		left += len(sch.Actions)
		for i, a := range sch.Actions {
			if a.Round < 0 || a.Round >= 1024 {
				t.Fatalf("rank %d action %d: round %d out of tag range", r, i, a.Round)
			}
			if a.Chunk < 0 || a.Chunk >= MaxChunks {
				t.Fatalf("rank %d action %d: chunk %d out of tag range", r, i, a.Chunk)
			}
			if (a.Kind == Send || a.Kind == Recv) && (a.Peer < 0 || a.Peer >= procs || a.Peer == r) {
				t.Fatalf("rank %d action %d: bad peer %d", r, i, a.Peer)
			}
			for _, d := range a.Deps {
				if int(d) >= i {
					t.Fatalf("rank %d action %d: forward dep %d", r, i, d)
				}
			}
		}
	}
	for left > 0 {
		moved := false
		for r, sch := range scheds {
			for i, a := range sch.Actions {
				if done[r][i] {
					continue
				}
				ready := true
				for _, d := range a.Deps {
					if !done[r][d] {
						ready = false
						break
					}
				}
				if !ready {
					continue
				}
				switch a.Kind {
				case Send:
					bag[key{r, a.Peer, a.Round, a.Chunk}] = append(bag[key{r, a.Peer, a.Round, a.Chunk}], a.Size)
				case Recv:
					k := key{a.Peer, r, a.Round, a.Chunk}
					q := bag[k]
					if len(q) == 0 {
						continue
					}
					if q[0] != a.Size {
						t.Fatalf("rank %d action %d: recv size %d, message size %d", r, i, a.Size, q[0])
					}
					if bag[k] = q[1:]; len(bag[k]) == 0 {
						delete(bag, k)
					}
				case Reduce, Copy:
					if a.Peer != -1 {
						t.Fatalf("rank %d action %d: local action with peer %d", r, i, a.Peer)
					}
				}
				done[r][i] = true
				left--
				moved = true
			}
		}
		if !moved {
			t.Fatalf("deadlock: %d actions stuck, %d messages in flight", left, len(bag))
		}
	}
	if len(bag) != 0 {
		t.Fatalf("%d unconsumed messages: %v", len(bag), bag)
	}
}

func buildAll(t *testing.T, op Op, algo Algo, procs, size, chunk int) []*Schedule {
	t.Helper()
	scheds := make([]*Schedule, procs)
	root := 0
	if (op == OpBcast || op == OpReduce) && procs > 2 {
		root = 1 // exercise the virtual-rank remapping
	}
	for r := 0; r < procs; r++ {
		sch, err := Build(Params{Op: op, Algo: algo, Rank: r, Procs: procs,
			Root: root, Size: size, Chunk: chunk})
		if err != nil {
			t.Fatalf("Build rank %d: %v", r, err)
		}
		if sch.Algo == Auto {
			t.Fatalf("rank %d: unresolved algorithm", r)
		}
		scheds[r] = sch
	}
	return scheds
}

// TestSchedulesComplete abstractly executes every op x algorithm x
// world-size x chunking combination and checks deadlock-freedom and
// matching consistency.
func TestSchedulesComplete(t *testing.T) {
	ops := []Op{OpBcast, OpReduce, OpAllreduce, OpAlltoall, OpBarrier}
	algos := []Algo{Auto, Binomial, Ring, RecDouble}
	for _, op := range ops {
		for _, algo := range algos {
			for _, procs := range []int{1, 2, 3, 4, 5, 8} {
				for _, chunk := range []int{0, 1000} {
					name := fmt.Sprintf("%s/%s/p%d/chunk%d", op, algo, procs, chunk)
					t.Run(name, func(t *testing.T) {
						execute(t, buildAll(t, op, algo, procs, 4096, chunk))
					})
				}
			}
		}
	}
}

// TestChunkingSplitsTransfers checks that a chunked binomial broadcast
// actually pipelines and respects the MaxChunks clamp.
func TestChunkingSplitsTransfers(t *testing.T) {
	sch, err := Build(Params{Op: OpBcast, Algo: Binomial, Rank: 0, Procs: 2, Size: 4096, Chunk: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(sch.Actions) != 4 {
		t.Fatalf("want 4 chunked sends, got %d actions", len(sch.Actions))
	}
	// A tiny chunk size must clamp so no action exceeds MaxChunks.
	sch, err = Build(Params{Op: OpBcast, Algo: Binomial, Rank: 1, Procs: 2, Size: 1 << 20, Chunk: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sch.Actions) > MaxChunks {
		t.Fatalf("chunk clamp failed: %d actions", len(sch.Actions))
	}
	total := 0
	for _, a := range sch.Actions {
		if a.Kind != Recv {
			t.Fatalf("leaf rank got %v action", a.Kind)
		}
		total += a.Size
	}
	if total != 1<<20 {
		t.Fatalf("chunk sizes sum to %d, want %d", total, 1<<20)
	}
}

// TestConservation checks byte conservation for the data collectives:
// summed over all ranks, sends equal recvs.
func TestConservation(t *testing.T) {
	for _, algo := range []Algo{Binomial, Ring, RecDouble} {
		for _, procs := range []int{2, 4, 8} {
			for _, op := range []Op{OpBcast, OpReduce, OpAllreduce, OpAlltoall} {
				scheds := buildAll(t, op, algo, procs, 8192, 0)
				sent, recvd := 0, 0
				for _, sch := range scheds {
					for _, a := range sch.Actions {
						switch a.Kind {
						case Send:
							sent += a.Size
						case Recv:
							recvd += a.Size
						}
					}
				}
				if sent != recvd {
					t.Errorf("%s/%s/p%d: sent %d != recvd %d", op, algo, procs, sent, recvd)
				}
				if sent == 0 {
					t.Errorf("%s/%s/p%d: no traffic", op, algo, procs)
				}
			}
		}
	}
}

func TestParseAlgo(t *testing.T) {
	for _, a := range []Algo{Auto, Binomial, Ring, RecDouble} {
		got, err := ParseAlgo(a.String())
		if err != nil || got != a {
			t.Errorf("ParseAlgo(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseAlgo("quantum"); err == nil {
		t.Error("ParseAlgo accepted garbage")
	}
}

// TestResolveNonPow2 checks the documented degradations.
func TestResolveNonPow2(t *testing.T) {
	if got := Resolve(OpAllreduce, RecDouble, 6); got != Binomial {
		t.Errorf("allreduce recdouble on 6 procs resolved to %v", got)
	}
	if got := Resolve(OpBarrier, RecDouble, 6); got != RecDouble {
		t.Errorf("dissemination barrier should handle any size, got %v", got)
	}
	if got := Resolve(OpAlltoall, RecDouble, 6); got != RecDouble {
		t.Errorf("bruck alltoall should handle any size, got %v", got)
	}
	if got := Resolve(OpAllreduce, Auto, 8); got != RecDouble {
		t.Errorf("auto allreduce pow2 resolved to %v", got)
	}
	if got := Resolve(OpAllreduce, Auto, 6); got != Ring {
		t.Errorf("auto allreduce non-pow2 resolved to %v", got)
	}
}
