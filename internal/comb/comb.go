// Package comb implements a baseline in the spirit of the COMB
// benchmark suite (Lawry et al., IEEE Cluster 2002), which the paper's
// related-work section contrasts itself with: COMB assesses a
// *system's* ability to overlap MPI communication and computation,
// while the paper's framework measures the overlap an *application*
// actually achieved.
//
// Two methods are implemented:
//
//   - PostWorkWait: post non-blocking operations, perform a fixed
//     amount of work, wait; sweeping the work reveals how much
//     communication the system can hide behind it.
//   - Polling: slice the work into quanta separated by Test calls
//     (progress opportunities) — the structure that rescues overlap on
//     polling-progress libraries, foreshadowing the paper's SP fix.
//
// For each configuration the benchmark reports CPU availability — the
// fraction of wall time during the exchange that the application spent
// computing — and the overlap efficiency — the fraction of the
// hideable communication time that was actually hidden.
package comb

import (
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/mpi"
)

// Method selects the COMB measurement structure.
type Method int

const (
	// PostWorkWait posts the exchange, computes one solid block, then
	// waits.
	PostWorkWait Method = iota
	// Polling slices the work into quanta separated by Test calls.
	Polling
)

func (m Method) String() string {
	if m == PostWorkWait {
		return "post-work-wait"
	}
	return "polling"
}

// Config describes one COMB sweep.
type Config struct {
	Method   Method
	Protocol mpi.LongProtocol
	MsgSize  int
	// Work values to sweep (computation per exchange).
	Work []time.Duration
	// Quantum is the polling method's compute slice between Test
	// calls (default 20µs).
	Quantum time.Duration
	// Reps per point (default 50).
	Reps int
	// Cluster overrides the machine configuration.
	Cluster cluster.Config
}

// Point is one measured sweep entry.
type Point struct {
	Work time.Duration
	// Elapsed is the mean wall time of one exchange+work iteration.
	Elapsed time.Duration
	// Base is the exchange time with zero work (measured once per
	// sweep).
	Base time.Duration
	// Availability is work / elapsed: the CPU fraction the
	// application kept for itself.
	Availability float64
	// OverlapEfficiency is (base + work - elapsed) / min(base, work):
	// the fraction of the hideable time actually hidden, clamped to
	// [0, 1].
	OverlapEfficiency float64
}

// Run executes the sweep.
func (c Config) Run() []Point {
	if c.MsgSize <= 0 {
		panic("comb: MsgSize must be positive")
	}
	if c.Reps == 0 {
		c.Reps = 50
	}
	if c.Quantum == 0 {
		c.Quantum = 20 * time.Microsecond
	}
	base := c.measure(0)
	points := make([]Point, 0, len(c.Work))
	for _, w := range c.Work {
		elapsed := c.measure(w)
		p := Point{Work: w, Elapsed: elapsed, Base: base}
		if elapsed > 0 {
			p.Availability = float64(w) / float64(elapsed)
		}
		hideable := base
		if w < hideable {
			hideable = w
		}
		if hideable > 0 {
			eff := float64(base+w-elapsed) / float64(hideable)
			if eff < 0 {
				eff = 0
			}
			if eff > 1 {
				eff = 1
			}
			p.OverlapEfficiency = eff
		}
		points = append(points, p)
	}
	return points
}

// measure times the per-iteration cost of the exchange with the given
// work inserted, on a fresh deterministic cluster.
func (c Config) measure(work time.Duration) time.Duration {
	cfg := c.Cluster
	cfg.Procs = 2
	cfg.MPI.Protocol = c.Protocol
	var total time.Duration
	cluster.Run(cfg, func(r *mpi.Rank) {
		peer := 1 - r.ID()
		start := r.Now()
		for i := 0; i < c.Reps; i++ {
			s := r.Isend(peer, 0, c.MsgSize)
			q := r.Irecv(peer, 0)
			c.doWork(r, work, s, q)
			r.Waitall(s, q)
		}
		if r.ID() == 0 {
			total = r.Now() - start
		}
	})
	return total / time.Duration(c.Reps)
}

// doWork performs the method's computation structure.
func (c Config) doWork(r *mpi.Rank, work time.Duration, s, q *mpi.Request) {
	if work <= 0 {
		return
	}
	if c.Method == PostWorkWait {
		r.Compute(work)
		return
	}
	remaining := work
	for remaining > 0 {
		slice := c.Quantum
		if slice > remaining {
			slice = remaining
		}
		r.Compute(slice)
		remaining -= slice
		if remaining > 0 {
			r.Test(s)
			r.Test(q)
		}
	}
}
