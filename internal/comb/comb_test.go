package comb

import (
	"testing"
	"time"

	"ovlp/internal/mpi"
)

func sweep() []time.Duration {
	return []time.Duration{
		250 * time.Microsecond,
		500 * time.Microsecond,
		1000 * time.Microsecond,
		2000 * time.Microsecond,
	}
}

func TestDirectReadPWWCannotHideRendezvous(t *testing.T) {
	// Under post-work-wait the polling library never notices the
	// rendezvous request until Wait, so the read cannot start during
	// the work block: poor overlap no matter how much work is
	// inserted. This is COMB's system-level view of exactly the
	// failure the paper diagnoses in NAS SP.
	pts := Config{
		Method:   PostWorkWait,
		Protocol: mpi.DirectRDMARead,
		MsgSize:  1 << 20,
		Work:     sweep(),
		Reps:     20,
	}.Run()
	last := pts[len(pts)-1]
	if last.OverlapEfficiency > 0.4 {
		t.Errorf("direct read PWW efficiency %.2f at w=%v; the read should not start until Wait",
			last.OverlapEfficiency, last.Work)
	}
	// Availability still grows with work (the denominator grows).
	if pts[0].Availability >= last.Availability {
		t.Errorf("availability should grow with work: %.2f -> %.2f",
			pts[0].Availability, last.Availability)
	}
}

func TestPollingBeatsPWWOnPollingLibrary(t *testing.T) {
	// Slicing the work with Test calls gives the polling progress
	// engine opportunities it otherwise lacks — COMB's system-level
	// view of the same effect the paper exploits with Iprobe in SP.
	run := func(m Method) float64 {
		pts := Config{
			Method:   m,
			Protocol: mpi.DirectRDMARead,
			MsgSize:  1 << 20,
			Work:     []time.Duration{1500 * time.Microsecond},
			Reps:     20,
		}.Run()
		return pts[0].OverlapEfficiency
	}
	pww, polling := run(PostWorkWait), run(Polling)
	if polling < pww+0.3 {
		t.Errorf("polling method efficiency %.2f should far exceed post-work-wait's %.2f",
			polling, pww)
	}
	if polling < 0.7 {
		t.Errorf("polling method efficiency %.2f, want high", polling)
	}
}

func TestPipelinedShowsPoorOverlapCapability(t *testing.T) {
	pts := Config{
		Method:   PostWorkWait,
		Protocol: mpi.PipelinedRDMA,
		MsgSize:  1 << 20,
		Work:     sweep(),
		Reps:     20,
	}.Run()
	for _, p := range pts {
		if p.OverlapEfficiency > 0.35 {
			t.Errorf("pipelined PWW efficiency %.2f at w=%v; only the first fragment should hide",
				p.OverlapEfficiency, p.Work)
		}
	}
}

func TestEagerSmallMessagesLargelyHidden(t *testing.T) {
	// The eager wire time hides behind the work; only the bounce-
	// buffer copies and post overheads remain exposed, so efficiency
	// is substantial but bounded away from 1.
	pts := Config{
		Method:   PostWorkWait,
		Protocol: mpi.PipelinedRDMA,
		MsgSize:  8 << 10,
		Work:     []time.Duration{200 * time.Microsecond},
		Reps:     20,
	}.Run()
	if eff := pts[0].OverlapEfficiency; eff < 0.4 {
		t.Errorf("eager exchange efficiency %.2f, want substantial", eff)
	}
	// And it must beat the rendezvous PWW case by a wide margin.
	rndv := Config{
		Method:   PostWorkWait,
		Protocol: mpi.DirectRDMARead,
		MsgSize:  1 << 20,
		Work:     []time.Duration{1500 * time.Microsecond},
		Reps:     20,
	}.Run()
	if pts[0].OverlapEfficiency < rndv[0].OverlapEfficiency+0.2 {
		t.Errorf("eager efficiency %.2f should far exceed rendezvous PWW %.2f",
			pts[0].OverlapEfficiency, rndv[0].OverlapEfficiency)
	}
}

func TestBaseConsistency(t *testing.T) {
	pts := Config{
		Method:   PostWorkWait,
		Protocol: mpi.DirectRDMARead,
		MsgSize:  256 << 10,
		Work:     sweep()[:2],
		Reps:     10,
	}.Run()
	for _, p := range pts {
		if p.Base <= 0 || p.Elapsed <= 0 {
			t.Fatalf("degenerate timing: %+v", p)
		}
		if p.Elapsed+time.Microsecond < p.Work {
			t.Fatalf("elapsed %v below inserted work %v", p.Elapsed, p.Work)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero message size")
		}
	}()
	Config{}.Run()
}
