// Package diagnose is the automated diagnosis engine over the
// observability artifacts the rest of the stack produces: it consumes
// a run's blame profile (internal/profile), its time-resolved
// efficiency snapshot (internal/timeres) and the run-level evidence a
// driver or the scenario engine can attach (per-rank retransmit
// counts, structured errors, the declared fault schedule, the progress
// mode), and emits a ranked, schema-versioned list of structured
// findings — straggler ranks, retransmit storms, progress starvation,
// phase collapse, serialization hotspots, idle-tail imbalance. Each
// finding names its kind, a severity, a scope (rank / site / window
// range), the metric evidence it was derived from, a suspected cause
// and a suggested knob, so the framework answers "why was this run
// slow" instead of leaving a human to read tables.
//
// Diagnosis is deterministic: the same artifacts produce byte-identical
// findings JSON (every float is rounded before it is stored, findings
// sort by a total order), and every evidence value is re-derivable
// from the artifact it cites — the tests recompute them.
//
// The same package also hosts the run-to-run differential profiler
// (diff.go) cmd/ovldiff builds on.
package diagnose

import (
	"fmt"
	"sort"
	"time"

	"ovlp/internal/profile"
	"ovlp/internal/timeres"
)

// Schema versions the findings JSON. Bump it whenever a field changes
// meaning, so stale golden files fail loudly instead of drifting.
const Schema = 1

// Severity levels, weakest first. The JSON carries the string form.
const (
	SevInfo     = "info"
	SevWarn     = "warn"
	SevCritical = "critical"
)

// SeverityRank orders severities for ranking and min_severity checks:
// info < warn < critical. Unknown strings rank below info.
func SeverityRank(s string) int {
	switch s {
	case SevInfo:
		return 1
	case SevWarn:
		return 2
	case SevCritical:
		return 3
	}
	return 0
}

// Finding kinds. Kinds() lists them for validation messages.
const (
	KindStraggler     = "straggler-rank"
	KindRetransStorm  = "retransmit-storm"
	KindStarvation    = "progress-starvation"
	KindPhaseCollapse = "phase-collapse"
	KindSerHotspot    = "serialization-hotspot"
	KindIdleTail      = "idle-tail"
	// Recovery kinds, fed by the fault-tolerant runner's evidence.
	KindRankFailure  = "rank-failure"
	KindSlowRecovery = "slow-recovery"
	KindCkptOverhead = "checkpoint-overhead"
	// Diff-only kinds (emitted by Diff, never by Analyze).
	KindGapRegression  = "gap-regression"
	KindWallRegression = "wall-regression"
	KindEffRegression  = "efficiency-regression"
	KindImprovement    = "improvement"
)

// Kinds returns every finding kind the engine can emit, in fixed
// order.
func Kinds() []string {
	return []string{
		KindStraggler, KindRetransStorm, KindStarvation, KindPhaseCollapse,
		KindSerHotspot, KindIdleTail,
		KindRankFailure, KindSlowRecovery, KindCkptOverhead,
		KindGapRegression, KindWallRegression, KindEffRegression, KindImprovement,
	}
}

// AnalyzeKinds returns the kinds Analyze itself can emit — the
// diff-only kinds excluded. The scenario engine validates `finding`
// assertions against this list: asserting a kind only Diff produces
// would never fire.
func AnalyzeKinds() []string {
	return []string{
		KindStraggler, KindRetransStorm, KindStarvation, KindPhaseCollapse,
		KindSerHotspot, KindIdleTail,
		KindRankFailure, KindSlowRecovery, KindCkptOverhead,
	}
}

// Scope pins a finding to the place in the run it explains. Unset
// fields mean "whole run" on that axis. Site is "region/op", matching
// the profiler's call-site naming.
type Scope struct {
	Rank   *int   `json:"rank,omitempty"`
	Site   string `json:"site,omitempty"`
	Window *int   `json:"window,omitempty"`
	// FromNS/ToNS bound the virtual-time interval the finding covers
	// (both zero = whole run).
	FromNS int64 `json:"from_ns,omitempty"`
	ToNS   int64 `json:"to_ns,omitempty"`
}

func (s Scope) String() string {
	out := ""
	if s.Rank != nil {
		out += fmt.Sprintf("rank %d", *s.Rank)
	}
	if s.Site != "" {
		if out != "" {
			out += " "
		}
		out += "site " + s.Site
	}
	if s.Window != nil {
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("window %d", *s.Window)
	}
	if s.ToNS > 0 {
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("@ %v..%v", time.Duration(s.FromNS), time.Duration(s.ToNS))
	}
	if out == "" {
		out = "run"
	}
	return out
}

// Evidence is one metric the finding was derived from. Value is
// rounded to four decimals before storage so the JSON is
// byte-deterministic; Threshold is the rule's trip point (zero when
// the metric is descriptive rather than gating).
type Evidence struct {
	Metric    string  `json:"metric"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold,omitempty"`
	Unit      string  `json:"unit,omitempty"`
}

// Finding is one diagnosed condition.
type Finding struct {
	Kind     string `json:"kind"`
	Severity string `json:"severity"`
	// Score ranks findings of equal severity (larger = worse); its
	// meaning is rule-specific (a share, an efficiency deficit).
	Score    float64    `json:"score"`
	Scope    Scope      `json:"scope"`
	Summary  string     `json:"summary"`
	Cause    string     `json:"suspected_cause"`
	Knob     string     `json:"suggested_knob,omitempty"`
	Evidence []Evidence `json:"evidence"`
}

// Report is the engine's complete output, findings ranked most severe
// first.
type Report struct {
	Schema   int       `json:"schema"`
	Findings []Finding `json:"findings"`
}

// Interval is one declared fault-active window (a chaos-schedule
// entry), used to tie efficiency cliffs to their cause. End zero means
// "until the run ends".
type Interval struct {
	Label      string
	Start, End time.Duration
}

// Input is the evidence Analyze consumes. Profile and TimeRes are each
// optional — rules that need a missing artifact simply do not fire —
// but a fully wired caller (the scenario engine, cmdutil -diagnose)
// provides both.
type Input struct {
	Profile  *profile.Profile
	TimeRes  *timeres.Snapshot
	Duration time.Duration
	Procs    int
	// Retransmits counts retransmitted+reposted attempts per rank
	// (optional; sharpens straggler/storm causality).
	Retransmits []int
	// Errors holds per-rank structured error strings ("" = clean).
	Errors []string
	// ProgressMode is the run's progress engine ("manual", "piggyback",
	// "thread", or "" when unknown).
	ProgressMode string
	// Faults lists the declared fault-active intervals, so cliffs can
	// be pinned to them.
	Faults []Interval
	// Crashes lists the declared crash-stop rank failures, so recovery
	// findings can name the dead ranks and their kill times.
	Crashes []Crash
	// Recovery carries the fault-tolerant runner's outcome summary (nil
	// when the run was not fault-tolerant).
	Recovery *Recovery
}

// Crash is one declared crash-stop failure.
type Crash struct {
	Rank int
	At   time.Duration
}

// Recovery distills a fault-tolerant run's outcome (cluster.FTResult)
// to what diagnosis needs.
type Recovery struct {
	Mode          string // "shrink-continue" or "checkpoint-restart"
	Epochs        int
	Failed        []int
	Survivors     int
	Checkpoints   int
	ReplayedSteps int
	Completed     bool
}

// Rule thresholds, exported so DESIGN.md and the tests share one
// source of truth.
const (
	// StragglerLB: a window whose load balance falls below this is
	// collapsed; the rank with the least compute in it is the suspect.
	StragglerLB = 0.5
	// StragglerMinWindows: a rank must be the suspect in at least this
	// many collapsed windows (and in at least half of them) to be named.
	StragglerMinWindows = 2
	// StormShare / StarveShare: the blame share (of the total bound
	// gap) at which fault-retransmit / progress findings fire.
	StormShare  = 0.20
	StarveShare = 0.25
	// CriticalShare upgrades a share-based finding to critical.
	CriticalShare = 0.50
	// CollapseTE: a window whose transfer efficiency falls below this,
	// while the run median stays above CollapseMedianTE, is a cliff.
	CollapseTE       = 0.30
	CollapseMedianTE = 0.50
	// SerHotspotFrac: windows whose serialization-wait fraction of
	// rank-time exceeds this form a hotspot.
	SerHotspotFrac = 0.35
	// IdleTailFrac / IdleTailSpread: trailing windows with at least
	// this idle fraction and at least this max−min per-rank idle-share
	// spread are an imbalanced tail.
	IdleTailFrac   = 0.40
	IdleTailSpread = 0.30
	// RecoveryShare: the detect+agree blame share of the gap at which a
	// slow-recovery finding fires.
	RecoveryShare = 0.15
	// CkptShare: the rollback+recompute blame share at which a
	// checkpoint-overhead finding fires.
	CkptShare = 0.15
)

// Analyze runs every diagnosis rule over the input and returns the
// ranked report. It never fails: missing artifacts just silence the
// rules that need them, so callers can diagnose partial evidence.
func Analyze(in Input) *Report {
	var fs []Finding
	fs = append(fs, stragglerFindings(&in)...)
	fs = append(fs, blameShareFindings(&in)...)
	fs = append(fs, phaseCollapseFindings(&in)...)
	fs = append(fs, serHotspotFindings(&in)...)
	fs = append(fs, idleTailFindings(&in)...)
	fs = append(fs, rankFailureFindings(&in)...)
	fs = append(fs, slowRecoveryFindings(&in)...)
	fs = append(fs, ckptOverheadFindings(&in)...)
	return &Report{Schema: Schema, Findings: rank(fs)}
}

// Explain summarizes a profile's bound gap in one sentence: the
// dominant blame cause, its share of the gap, and the hottest site
// under that cause. Empty when the profile carries no gap to explain
// — callers (cmd/benchgate -explain) print it verbatim next to the
// violation that triggered the diagnosis.
func Explain(p *profile.Profile) string {
	if p == nil || p.Totals.Gap <= 0 {
		return ""
	}
	names, vals := p.Totals.Blame.Columns()
	best := 0
	for i := range vals {
		if vals[i] > vals[best] {
			best = i
		}
	}
	if vals[best] <= 0 {
		return ""
	}
	s := fmt.Sprintf("%.1f%% of the %v bound gap is %s",
		100*frac(vals[best], p.Totals.Gap), p.Totals.Gap, names[best])
	site, _ := worstSite(p, func(b profile.Blame) time.Duration {
		_, vs := b.Columns()
		return vs[best]
	})
	if site != "" {
		s += ", hottest at " + site
	}
	return s
}

// rank orders findings most severe first with a deterministic total
// order: severity desc, score desc, kind asc, scope string asc.
func rank(fs []Finding) []Finding {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := &fs[i], &fs[j]
		if ra, rb := SeverityRank(a.Severity), SeverityRank(b.Severity); ra != rb {
			return ra > rb
		}
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Scope.String() < b.Scope.String()
	})
	if fs == nil {
		fs = []Finding{}
	}
	return fs
}

// round4 rounds to four decimals — the only float precision the JSON
// ever carries, so re-derived evidence compares exactly.
func round4(f float64) float64 {
	if f < 0 {
		return -round4(-f)
	}
	return float64(int64(f*10000+0.5)) / 10000
}

// shareSeverity maps a blame share to warn/critical.
func shareSeverity(share float64) string {
	if share >= CriticalShare {
		return SevCritical
	}
	return SevWarn
}

// faultAt returns the declared fault interval overlapping [lo, hi), if
// any (first by schedule order), for cause attribution.
func faultAt(in *Input, lo, hi time.Duration) (Interval, bool) {
	for _, iv := range in.Faults {
		end := iv.End
		if end <= 0 {
			end = in.Duration
			if end <= 0 {
				end = hi
			}
		}
		if iv.Start < hi && end > lo {
			return iv, true
		}
	}
	return Interval{}, false
}
