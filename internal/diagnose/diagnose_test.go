package diagnose

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ovlp/internal/profile"
	"ovlp/internal/timeres"
)

const ms = time.Millisecond

// mkSnapshot builds a consistent synthetic snapshot: n ranks, 1ms
// windows, cells and efficiencies supplied per window.
func mkSnapshot(ranks int, windows []timeres.Slice) *timeres.Snapshot {
	ids := make([]int, ranks)
	for i := range ids {
		ids[i] = i
	}
	for i := range windows {
		windows[i].Index = i
		windows[i].Start = time.Duration(i) * ms
		windows[i].End = time.Duration(i+1) * ms
	}
	dur := time.Duration(len(windows)) * ms
	return &timeres.Snapshot{Schema: 1, Ranks: ids, Window: ms, Duration: dur, Windows: windows}
}

func cells(per ...timeres.Cell) []timeres.Cell {
	for i := range per {
		per[i].Rank = i
	}
	return per
}

// balancedWindow is a healthy window: equal compute, good efficiencies.
func balancedWindow(ranks int) timeres.Slice {
	cs := make([]timeres.Cell, ranks)
	for i := range cs {
		cs[i] = timeres.Cell{Rank: i, Compute: 900 * time.Microsecond, LibActive: 100 * time.Microsecond}
	}
	return timeres.Slice{Cells: cs, Eff: timeres.Efficiency{Parallel: 0.9, LoadBalance: 0.95, Comm: 0.95, Transfer: 0.9, Serialization: 0.9}}
}

func TestStragglerRule(t *testing.T) {
	us := time.Microsecond
	lag := func() timeres.Slice {
		w := timeres.Slice{
			Cells: cells(
				timeres.Cell{Compute: 900 * us, LibActive: 100 * us},
				timeres.Cell{Compute: 900 * us, LibActive: 100 * us},
				timeres.Cell{Compute: 100 * us, WireWait: 800 * us, SerWait: 50 * us, Idle: 50 * us},
				timeres.Cell{Compute: 900 * us, LibActive: 100 * us},
			),
			Eff: timeres.Efficiency{LoadBalance: 0.4, Comm: 0.5, Transfer: 0.6, Parallel: 0.5},
		}
		return w
	}
	snap := mkSnapshot(4, []timeres.Slice{
		balancedWindow(4), lag(), lag(), lag(), balancedWindow(4),
	})
	rep := Analyze(Input{TimeRes: snap, Duration: snap.Duration, Procs: 4})
	var f *Finding
	for i := range rep.Findings {
		if rep.Findings[i].Kind == KindStraggler {
			f = &rep.Findings[i]
		}
	}
	if f == nil {
		t.Fatalf("no straggler finding in %+v", rep.Findings)
	}
	if f.Scope.Rank == nil || *f.Scope.Rank != 2 {
		t.Fatalf("straggler pinned to %v, want rank 2", f.Scope)
	}
	if f.Severity != SevWarn {
		t.Fatalf("severity %q, want warn (min LB 0.4 > 0.25)", f.Severity)
	}
	// Evidence re-derivation: every value must match what we compute
	// from the snapshot with the same rounding.
	want := map[string]float64{
		"collapsed_windows":   3,
		"min_load_bal":        round4(0.4),
		"rank_wire_wait_frac": round4(float64(3*800*us) / float64(3*ms)),
		"rank_ser_wait_frac":  round4(float64(3*50*us) / float64(3*ms)),
		"rank_compute_ratio":  round4(float64(100*us) / float64(900*us)),
	}
	for _, e := range f.Evidence {
		if w, ok := want[e.Metric]; ok && e.Value != w {
			t.Errorf("evidence %s = %v, want %v", e.Metric, e.Value, w)
		}
	}
	if !strings.Contains(f.Cause, "DMA stall") && !strings.Contains(f.Cause, "wire") {
		t.Errorf("cause %q does not name the wire-wait evidence", f.Cause)
	}
}

func TestStragglerNeedsRepetition(t *testing.T) {
	// A single collapsed window must not name a straggler.
	us := time.Microsecond
	one := timeres.Slice{
		Cells: cells(
			timeres.Cell{Compute: 900 * us}, timeres.Cell{Compute: 100 * us, WireWait: 800 * us},
		),
		Eff: timeres.Efficiency{LoadBalance: 0.3, Comm: 0.5},
	}
	snap := mkSnapshot(2, []timeres.Slice{balancedWindow(2), one, balancedWindow(2)})
	rep := Analyze(Input{TimeRes: snap})
	for _, f := range rep.Findings {
		if f.Kind == KindStraggler {
			t.Fatalf("straggler fired on a single window: %+v", f)
		}
	}
}

// mkProfile builds a profile whose conservation invariants hold:
// per-site Blame sums to the site Gap, totals sum over sites.
func mkProfile(dur time.Duration, sites []profile.Site) *profile.Profile {
	p := &profile.Profile{Schema: 1, Ranks: 2, Duration: dur, Sites: sites}
	for i := range sites {
		sites[i].Gap = sites[i].Blame.Total()
		sites[i].MaxOverlapped = sites[i].MinOverlapped + sites[i].Gap
		p.Totals.Gap += sites[i].Gap
		p.Totals.Blame.Add(sites[i].Blame)
		p.Totals.Transfers += sites[i].Count
	}
	p.Totals.MinOverlapped = 0
	p.Totals.MaxOverlapped = p.Totals.Gap
	return p
}

func TestBlameShareRules(t *testing.T) {
	p := mkProfile(10*ms, []profile.Site{
		{Region: "exchange", Op: "Isend", Count: 8, Blame: profile.Blame{FaultRetransmit: 200 * time.Microsecond, Progress: 250 * time.Microsecond}},
		{Region: "exchange", Op: "Wait", Count: 8, Blame: profile.Blame{FaultRetransmit: 100 * time.Microsecond, EarlyWait: 450 * time.Microsecond}},
	})
	// Gap total = 1ms; fault-retransmit share 0.3, progress share 0.25.
	in := Input{Profile: p, Duration: 10 * ms, Procs: 2, ProgressMode: "manual", Retransmits: []int{5, 3}}
	rep := Analyze(in)
	var storm, starve *Finding
	for i := range rep.Findings {
		switch rep.Findings[i].Kind {
		case KindRetransStorm:
			storm = &rep.Findings[i]
		case KindStarvation:
			starve = &rep.Findings[i]
		}
	}
	if storm == nil || starve == nil {
		t.Fatalf("want storm+starvation, got %+v", rep.Findings)
	}
	if storm.Scope.Site != "exchange/Isend" {
		t.Errorf("storm site %q, want exchange/Isend", storm.Scope.Site)
	}
	if storm.Score != round4(0.3) {
		t.Errorf("storm score %v, want 0.3", storm.Score)
	}
	if starve.Score != round4(0.25) {
		t.Errorf("starvation score %v, want 0.25", starve.Score)
	}

	// The thread engine owns progress: starvation must not fire.
	in.ProgressMode = "thread"
	rep = Analyze(in)
	for _, f := range rep.Findings {
		if f.Kind == KindStarvation {
			t.Fatalf("starvation fired under -progress thread")
		}
	}
}

func TestPhaseCollapseRule(t *testing.T) {
	te := func(v float64) timeres.Slice {
		w := balancedWindow(2)
		w.Eff.Transfer = v
		return w
	}
	snap := mkSnapshot(2, []timeres.Slice{te(0.9), te(0.9), te(0.05), te(0.15), te(0.9), te(0.9)})
	in := Input{
		TimeRes: snap, Duration: snap.Duration,
		Faults: []Interval{{Label: "bw-hammer", Start: 2 * ms, End: 4 * ms}},
	}
	rep := Analyze(in)
	var f *Finding
	for i := range rep.Findings {
		if rep.Findings[i].Kind == KindPhaseCollapse {
			if f != nil {
				t.Fatalf("consecutive cliff windows must merge into one finding")
			}
			f = &rep.Findings[i]
		}
	}
	if f == nil {
		t.Fatalf("no phase-collapse finding: %+v", rep.Findings)
	}
	if f.Scope.Window == nil || *f.Scope.Window != 2 {
		t.Errorf("cliff scope %v, want window 2", f.Scope)
	}
	if f.Severity != SevCritical {
		t.Errorf("severity %q, want critical (min TE 0.05 < %v)", f.Severity, CollapseTE/3)
	}
	if !strings.Contains(f.Cause, "bw-hammer") {
		t.Errorf("cause %q does not cite the overlapping fault interval", f.Cause)
	}
	for _, e := range f.Evidence {
		switch e.Metric {
		case "min_xfer_eff":
			if e.Value != round4(0.05) {
				t.Errorf("min_xfer_eff %v, want 0.05", e.Value)
			}
		case "median_xfer_eff":
			if e.Value != round4(0.9) {
				t.Errorf("median_xfer_eff %v, want 0.9", e.Value)
			}
		case "cliff_windows":
			if e.Value != 2 {
				t.Errorf("cliff_windows %v, want 2", e.Value)
			}
		}
	}
}

func TestPhaseCollapseNeedsHealthyMedian(t *testing.T) {
	te := func(v float64) timeres.Slice {
		w := balancedWindow(2)
		w.Eff.Transfer = v
		return w
	}
	// Whole run sick: every window below the cliff line → no finding.
	snap := mkSnapshot(2, []timeres.Slice{te(0.1), te(0.1), te(0.1), te(0.1)})
	rep := Analyze(Input{TimeRes: snap})
	for _, f := range rep.Findings {
		if f.Kind == KindPhaseCollapse {
			t.Fatalf("phase-collapse fired with median TE 0.1")
		}
	}
}

func TestSerHotspotRule(t *testing.T) {
	us := time.Microsecond
	hot := timeres.Slice{
		Cells: cells(
			timeres.Cell{Compute: 600 * us, SerWait: 400 * us},
			timeres.Cell{Compute: 600 * us, SerWait: 400 * us},
		),
		Eff: timeres.Efficiency{LoadBalance: 0.9, Comm: 0.9, Transfer: 0.9},
	}
	snap := mkSnapshot(2, []timeres.Slice{balancedWindow(2), hot, balancedWindow(2)})
	p := mkProfile(3*ms, []profile.Site{
		{Region: "exchange", Op: "Wait", Count: 4, Blame: profile.Blame{EarlyWait: 700 * us}},
	})
	rep := Analyze(Input{TimeRes: snap, Profile: p})
	var f *Finding
	for i := range rep.Findings {
		if rep.Findings[i].Kind == KindSerHotspot {
			f = &rep.Findings[i]
		}
	}
	if f == nil {
		t.Fatalf("no serialization-hotspot finding: %+v", rep.Findings)
	}
	if f.Scope.Site != "exchange/Wait" {
		t.Errorf("hotspot site %q, want exchange/Wait (top early-wait site)", f.Scope.Site)
	}
	if f.Score != round4(0.4) {
		t.Errorf("score %v, want 0.4 (ser fraction)", f.Score)
	}
}

func TestIdleTailRule(t *testing.T) {
	us := time.Microsecond
	tail := func() timeres.Slice {
		return timeres.Slice{
			Cells: cells(
				timeres.Cell{Idle: 900 * us, Compute: 100 * us},
				timeres.Cell{Idle: 900 * us, Compute: 100 * us},
				timeres.Cell{Compute: 900 * us, Idle: 100 * us},
				timeres.Cell{Compute: 900 * us, Idle: 100 * us},
			),
			Eff: timeres.Efficiency{LoadBalance: 0.6, Comm: 0.9},
		}
	}
	snap := mkSnapshot(4, []timeres.Slice{balancedWindow(4), balancedWindow(4), tail(), tail()})
	rep := Analyze(Input{TimeRes: snap})
	var f *Finding
	for i := range rep.Findings {
		if rep.Findings[i].Kind == KindIdleTail {
			f = &rep.Findings[i]
		}
	}
	if f == nil {
		t.Fatalf("no idle-tail finding: %+v", rep.Findings)
	}
	if f.Scope.Rank == nil || *f.Scope.Rank != 0 {
		t.Errorf("idlest rank %v, want 0", f.Scope.Rank)
	}
	// spread: ranks 0,1 idle 1.8ms of the 2ms tail (0.9), ranks 2,3
	// idle 0.2ms (0.1) → spread 0.8 ≥ 2×0.3 → critical.
	if f.Severity != SevCritical {
		t.Errorf("severity %q, want critical (spread 0.8)", f.Severity)
	}
	if f.Score != round4(0.8) {
		t.Errorf("score %v, want 0.8", f.Score)
	}
}

func TestIdleTailBalancedIsSilent(t *testing.T) {
	us := time.Microsecond
	tail := timeres.Slice{
		Cells: cells(
			timeres.Cell{Idle: 500 * us, Compute: 500 * us},
			timeres.Cell{Idle: 500 * us, Compute: 500 * us},
		),
		Eff: timeres.Efficiency{LoadBalance: 1, Comm: 0.9},
	}
	snap := mkSnapshot(2, []timeres.Slice{balancedWindow(2), tail})
	rep := Analyze(Input{TimeRes: snap})
	for _, f := range rep.Findings {
		if f.Kind == KindIdleTail {
			t.Fatalf("idle-tail fired on a balanced tail (spread 0)")
		}
	}
}

func TestEmptyInputIsClean(t *testing.T) {
	rep := Analyze(Input{})
	if len(rep.Findings) != 0 {
		t.Fatalf("empty input produced findings: %+v", rep.Findings)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"findings": []`) {
		t.Fatalf("empty findings must marshal as [], got:\n%s", buf.String())
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	mk := func() Input {
		us := time.Microsecond
		lag := timeres.Slice{
			Cells: cells(
				timeres.Cell{Compute: 900 * us}, timeres.Cell{Compute: 100 * us, WireWait: 800 * us},
			),
			Eff: timeres.Efficiency{LoadBalance: 0.3, Comm: 0.5, Transfer: 0.2},
		}
		snap := mkSnapshot(2, []timeres.Slice{balancedWindow(2), lag, lag, balancedWindow(2)})
		p := mkProfile(4*ms, []profile.Site{
			{Region: "exchange", Op: "Isend", Count: 4, Blame: profile.Blame{FaultRetransmit: 300 * us, Progress: 300 * us}},
			{Region: "exchange", Op: "Wait", Count: 4, Blame: profile.Blame{EarlyWait: 400 * us}},
		})
		return Input{Profile: p, TimeRes: snap, Duration: 4 * ms, Procs: 2,
			ProgressMode: "manual", Retransmits: []int{2, 9},
			Faults: []Interval{{Label: "storm", Start: ms, End: 3 * ms}}}
	}
	var a, b bytes.Buffer
	if err := WriteJSON(&a, Analyze(mk())); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&b, Analyze(mk())); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("findings JSON not byte-identical across reruns:\n%s\n---\n%s", a.String(), b.String())
	}
	if len(Analyze(mk()).Findings) == 0 {
		t.Fatalf("determinism fixture produced no findings — weak test")
	}
}

func TestRankTotalOrder(t *testing.T) {
	w1, w2 := 1, 2
	fs := []Finding{
		{Kind: "b", Severity: SevWarn, Score: 0.5},
		{Kind: "a", Severity: SevCritical, Score: 0.1},
		{Kind: "a", Severity: SevWarn, Score: 0.5, Scope: Scope{Window: &w2}},
		{Kind: "a", Severity: SevWarn, Score: 0.5, Scope: Scope{Window: &w1}},
		{Kind: "c", Severity: SevInfo, Score: 0.9},
	}
	got := rank(fs)
	order := make([]string, len(got))
	for i, f := range got {
		order[i] = f.Severity + "/" + f.Kind + "/" + f.Scope.String()
	}
	want := []string{
		"critical/a/run",
		"warn/a/window 1", "warn/a/window 2", "warn/b/run",
		"info/c/run",
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("rank order[%d] = %q, want %q (full: %v)", i, order[i], want[i], order)
		}
	}
}

func TestRound4(t *testing.T) {
	for _, tc := range []struct{ in, want float64 }{
		{0.123456, 0.1235}, {0.99995, 1}, {-0.123449, -0.1234}, {0, 0}, {2, 2},
	} {
		if got := round4(tc.in); got != tc.want {
			t.Errorf("round4(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
