package diagnose

import (
	"fmt"
	"sort"
	"time"

	"ovlp/internal/profile"
	"ovlp/internal/timeres"
)

// Run is one side of a differential comparison: the artifacts of a
// single run plus a label for rendering ("baseline", a commit, a
// filename).
type Run struct {
	Label   string
	Profile *profile.Profile
	TimeRes *timeres.Snapshot
}

// CauseDelta is one blame cause's contribution to the bound-gap delta.
// Because every profile conserves blame (per-site Blame sums exactly to
// the site's gap, sites sum to the totals), the cause deltas sum
// exactly to GapDelta — the diff inherits conservation instead of
// re-deriving it.
type CauseDelta struct {
	Cause   string `json:"cause"`
	ANS     int64  `json:"a_ns"`
	BNS     int64  `json:"b_ns"`
	DeltaNS int64  `json:"delta_ns"`
}

// SiteDelta aligns one call site ("region/op") across the two runs.
// A site missing on one side contributes zero there. Only sites with a
// non-zero gap delta appear in the report, so a self-diff has none.
type SiteDelta struct {
	Site     string       `json:"site"`
	GapANS   int64        `json:"gap_a_ns"`
	GapBNS   int64        `json:"gap_b_ns"`
	DeltaNS  int64        `json:"delta_ns"`
	Dominant string       `json:"dominant_cause,omitempty"`
	Causes   []CauseDelta `json:"causes,omitempty"`
}

// WindowDelta aligns one time window across the runs and carries the
// per-metric efficiency deltas (B − A, rounded). Only windows where at
// least one metric moved appear.
type WindowDelta struct {
	Index    int     `json:"window"`
	StartNS  int64   `json:"start_ns"`
	EndNS    int64   `json:"end_ns"`
	DParal   float64 `json:"d_parallel_eff"`
	DLoadBal float64 `json:"d_load_bal"`
	DComm    float64 `json:"d_comm_eff"`
	DXfer    float64 `json:"d_xfer_eff"`
	DSer     float64 `json:"d_ser_eff"`
}

// DiffReport is the complete output of Diff: totals, the per-cause
// conservation ledger, aligned sites and windows, and the findings
// that explain the movement.
type DiffReport struct {
	Schema      int           `json:"schema"`
	ALabel      string        `json:"a"`
	BLabel      string        `json:"b"`
	WallANS     int64         `json:"wall_a_ns"`
	WallBNS     int64         `json:"wall_b_ns"`
	WallDeltaNS int64         `json:"wall_delta_ns"`
	GapANS      int64         `json:"gap_a_ns"`
	GapBNS      int64         `json:"gap_b_ns"`
	GapDeltaNS  int64         `json:"gap_delta_ns"`
	WindowSkew  string        `json:"window_skew,omitempty"`
	Causes      []CauseDelta  `json:"causes"`
	Sites       []SiteDelta   `json:"sites"`
	Windows     []WindowDelta `json:"windows"`
	Findings    []Finding     `json:"findings"`
}

// Diff thresholds: the relative movement at which a diff finding fires.
const (
	// DiffWallPct: wall-time movement (vs A) that is a regression or an
	// improvement.
	DiffWallPct = 0.05
	// DiffGapPct: bound-gap movement (vs A's gap) that warrants a
	// gap-regression finding.
	DiffGapPct = 0.10
	// DiffEffDrop: per-window efficiency drop that flags the window.
	DiffEffDrop = 0.15
	// DiffMaxWindowFindings caps the per-window efficiency-regression
	// findings at the worst offenders; long runs have tens of thousands
	// of windows, and a thousand near-identical findings would bury the
	// gap explanation. The remainder collapses into one summary finding.
	DiffMaxWindowFindings = 8
)

// Diff aligns run b against run a and attributes the movement. Both
// profiles are required; timeres snapshots are optional (no windows
// section without them). Diffing a run against itself yields zero
// deltas, no sites, no windows and no findings.
func Diff(a, b Run) (*DiffReport, error) {
	if a.Profile == nil || b.Profile == nil {
		return nil, fmt.Errorf("diagnose: diff needs a profile on both sides")
	}
	r := &DiffReport{
		Schema: Schema,
		ALabel: a.Label, BLabel: b.Label,
		WallANS: int64(a.Profile.Duration), WallBNS: int64(b.Profile.Duration),
		GapANS: int64(a.Profile.Totals.Gap), GapBNS: int64(b.Profile.Totals.Gap),
	}
	r.WallDeltaNS = r.WallBNS - r.WallANS
	r.GapDeltaNS = r.GapBNS - r.GapANS
	r.Causes = causeDeltas(a.Profile.Totals.Blame, b.Profile.Totals.Blame)
	r.Sites = siteDeltas(a.Profile, b.Profile)
	r.Windows, r.WindowSkew = windowDeltas(a.TimeRes, b.TimeRes)
	r.Findings = rank(diffFindings(r))
	return r, nil
}

func causeDeltas(a, b profile.Blame) []CauseDelta {
	names, av := a.Columns()
	_, bv := b.Columns()
	out := []CauseDelta{}
	for i, name := range names {
		if av[i] == bv[i] {
			continue
		}
		out = append(out, CauseDelta{
			Cause: name, ANS: int64(av[i]), BNS: int64(bv[i]),
			DeltaNS: int64(bv[i]) - int64(av[i]),
		})
	}
	return out
}

// siteDeltas aligns the union of call sites by "region/op" name,
// keeping source order: every site of A in A's order, then B-only
// sites in B's order. Zero-delta sites are dropped.
func siteDeltas(a, b *profile.Profile) []SiteDelta {
	bByName := map[string]*profile.Site{}
	for i := range b.Sites {
		s := &b.Sites[i]
		bByName[s.Region+"/"+s.Op] = s
	}
	seen := map[string]bool{}
	out := []SiteDelta{}
	add := func(name string, as, bs *profile.Site) {
		seen[name] = true
		var ab, bb profile.Blame
		var ag, bg time.Duration
		if as != nil {
			ab, ag = as.Blame, as.Gap
		}
		if bs != nil {
			bb, bg = bs.Blame, bs.Gap
		}
		if ag == bg && ab == bb {
			return
		}
		sd := SiteDelta{
			Site: name, GapANS: int64(ag), GapBNS: int64(bg),
			DeltaNS: int64(bg) - int64(ag),
			Causes:  causeDeltas(ab, bb),
		}
		best := int64(0)
		for _, c := range sd.Causes {
			d := c.DeltaNS
			if d < 0 {
				d = -d
			}
			if d > best {
				best, sd.Dominant = d, c.Cause
			}
		}
		out = append(out, sd)
	}
	for i := range a.Sites {
		s := &a.Sites[i]
		name := s.Region + "/" + s.Op
		add(name, s, bByName[name])
	}
	for i := range b.Sites {
		s := &b.Sites[i]
		name := s.Region + "/" + s.Op
		if !seen[name] {
			add(name, nil, s)
		}
	}
	return out
}

func windowDeltas(a, b *timeres.Snapshot) ([]WindowDelta, string) {
	if a == nil || b == nil {
		return []WindowDelta{}, ""
	}
	if a.Window != b.Window {
		return []WindowDelta{}, fmt.Sprintf(
			"window sizes differ (%v vs %v); window alignment skipped", a.Window, b.Window)
	}
	n := len(a.Windows)
	skew := ""
	if len(b.Windows) < n {
		n = len(b.Windows)
	}
	if len(a.Windows) != len(b.Windows) {
		skew = fmt.Sprintf("window counts differ (%d vs %d); comparing the first %d",
			len(a.Windows), len(b.Windows), n)
	}
	out := []WindowDelta{}
	for i := 0; i < n; i++ {
		wa, wb := &a.Windows[i], &b.Windows[i]
		d := WindowDelta{
			Index: i, StartNS: int64(wa.Start), EndNS: int64(wa.End),
			DParal:   round4(wb.Eff.Parallel - wa.Eff.Parallel),
			DLoadBal: round4(wb.Eff.LoadBalance - wa.Eff.LoadBalance),
			DComm:    round4(wb.Eff.Comm - wa.Eff.Comm),
			DXfer:    round4(wb.Eff.Transfer - wa.Eff.Transfer),
			DSer:     round4(wb.Eff.Serialization - wa.Eff.Serialization),
		}
		if d.DParal == 0 && d.DLoadBal == 0 && d.DComm == 0 && d.DXfer == 0 && d.DSer == 0 {
			continue
		}
		out = append(out, d)
	}
	return out, skew
}

// diffFindings explains the report's movement: wall regressions and
// improvements, gap regressions pinned to the dominant cause and the
// site that moved most under it, and per-window efficiency cliffs.
func diffFindings(r *DiffReport) []Finding {
	var out []Finding

	if r.WallANS > 0 {
		rel := float64(r.WallDeltaNS) / float64(r.WallANS)
		if rel >= DiffWallPct {
			sev := SevWarn
			if rel >= 2*DiffWallPct {
				sev = SevCritical
			}
			out = append(out, Finding{
				Kind: KindWallRegression, Severity: sev, Score: round4(rel),
				Summary: fmt.Sprintf("wall time regressed %+.1f%%: %v → %v",
					round4(rel)*100, time.Duration(r.WallANS), time.Duration(r.WallBNS)),
				Cause: "see the gap/cause breakdown below",
				Evidence: []Evidence{
					{Metric: "wall_delta_rel", Value: round4(rel), Threshold: DiffWallPct},
					{Metric: "wall_delta_ns", Value: float64(r.WallDeltaNS), Unit: "ns"},
				},
			})
		} else if rel <= -DiffWallPct {
			out = append(out, Finding{
				Kind: KindImprovement, Severity: SevInfo, Score: round4(-rel),
				Summary: fmt.Sprintf("wall time improved %.1f%%: %v → %v",
					round4(-rel)*100, time.Duration(r.WallANS), time.Duration(r.WallBNS)),
				Evidence: []Evidence{
					{Metric: "wall_delta_rel", Value: round4(rel), Threshold: DiffWallPct},
				},
			})
		}
	}

	if r.GapDeltaNS != 0 {
		base := r.GapANS
		if base <= 0 {
			base = r.WallANS
		}
		if base > 0 {
			rel := float64(r.GapDeltaNS) / float64(base)
			if rel >= DiffGapPct {
				// Dominant cause over the totals ledger, then the site
				// that moved the most under that cause.
				cause, causeNS := "", int64(0)
				for _, c := range r.Causes {
					if c.DeltaNS > causeNS {
						cause, causeNS = c.Cause, c.DeltaNS
					}
				}
				site, siteNS := "", int64(0)
				for _, s := range r.Sites {
					for _, c := range s.Causes {
						if c.Cause == cause && c.DeltaNS > siteNS {
							site, siteNS = s.Site, c.DeltaNS
						}
					}
				}
				sev := SevWarn
				if rel >= 2*DiffGapPct {
					sev = SevCritical
				}
				share := 0.0
				if r.GapDeltaNS > 0 {
					share = float64(causeNS) / float64(r.GapDeltaNS)
				}
				sum := fmt.Sprintf("regression explained: %+.1f%% bound gap", round4(rel)*100)
				if cause != "" {
					sum += " from " + cause
				}
				if site != "" {
					sum += " at " + site
				}
				f := Finding{
					Kind: KindGapRegression, Severity: sev, Score: round4(rel),
					Scope:   Scope{Site: site},
					Summary: sum,
					Cause:   causeStory(cause),
					Knob:    causeKnob(cause),
					Evidence: []Evidence{
						{Metric: "gap_delta_rel", Value: round4(rel), Threshold: DiffGapPct},
						{Metric: "gap_delta_ns", Value: float64(r.GapDeltaNS), Unit: "ns"},
						{Metric: "dominant_cause_share", Value: round4(share)},
					},
				}
				out = append(out, f)
			} else if rel <= -DiffGapPct {
				out = append(out, Finding{
					Kind: KindImprovement, Severity: SevInfo, Score: round4(-rel),
					Summary: fmt.Sprintf("bound gap improved %.1f%%: %v → %v",
						round4(-rel)*100, time.Duration(r.GapANS), time.Duration(r.GapBNS)),
					Evidence: []Evidence{
						{Metric: "gap_delta_rel", Value: round4(rel), Threshold: DiffGapPct},
					},
				})
			}
		}
	}

	var winFs []Finding
	for _, w := range r.Windows {
		worst, metric := 0.0, ""
		for _, m := range []struct {
			name string
			d    float64
		}{
			{"parallel_eff", w.DParal}, {"load_bal", w.DLoadBal},
			{"comm_eff", w.DComm}, {"xfer_eff", w.DXfer}, {"ser_eff", w.DSer},
		} {
			if -m.d > worst {
				worst, metric = -m.d, m.name
			}
		}
		if worst < DiffEffDrop {
			continue
		}
		wi := w.Index
		winFs = append(winFs, Finding{
			Kind: KindEffRegression, Severity: SevWarn, Score: round4(worst),
			Scope: Scope{Window: &wi, FromNS: w.StartNS, ToNS: w.EndNS},
			Summary: fmt.Sprintf("window %d: %s drops %.4f between the runs",
				w.Index, metric, round4(worst)),
			Cause: "localized efficiency loss — compare this window's chaos schedule and site activity",
			Evidence: []Evidence{
				{Metric: "d_" + metric, Value: round4(-worst), Threshold: DiffEffDrop},
			},
		})
	}
	// Keep the worst DiffMaxWindowFindings windows (score desc, index
	// asc — deterministic) and fold the rest into one summary finding.
	if len(winFs) > DiffMaxWindowFindings {
		sort.SliceStable(winFs, func(i, j int) bool {
			if winFs[i].Score != winFs[j].Score {
				return winFs[i].Score > winFs[j].Score
			}
			return *winFs[i].Scope.Window < *winFs[j].Scope.Window
		})
		omitted := winFs[DiffMaxWindowFindings:]
		winFs = winFs[:DiffMaxWindowFindings]
		winFs = append(winFs, Finding{
			Kind: KindEffRegression, Severity: SevWarn, Score: omitted[0].Score,
			Summary: fmt.Sprintf("%d more windows regressed ≥ %.2f on some efficiency (worst shown above)",
				len(omitted), DiffEffDrop),
			Cause: "widespread efficiency loss — the gap-regression finding carries the cause",
			Evidence: []Evidence{
				{Metric: "omitted_windows", Value: float64(len(omitted))},
				{Metric: "omitted_worst_drop", Value: omitted[0].Score, Threshold: DiffEffDrop},
			},
		})
	}
	return append(out, winFs...)
}

// causeStory/causeKnob turn a blame-cause name into the prose a diff
// finding carries.
func causeStory(cause string) string {
	switch cause {
	case "fault-retransmit":
		return "the reliable layer spent more time retransmitting — the B run saw more fabric loss"
	case "late-init":
		return "transfers were initiated later relative to the data's availability"
	case "early-wait":
		return "ranks entered Wait earlier relative to transfer completion, shrinking the overlap window"
	case "protocol":
		return "protocol phases (rendezvous handshakes) grew between the runs"
	case "progress":
		return "more transfer time sat unprogressed outside library calls"
	case "truncated":
		return "more transfers were cut off by the end of the observation window"
	case "":
		return "the movement is spread across causes with no dominant one"
	}
	return "uncategorized bound-gap movement"
}

func causeKnob(cause string) string {
	switch cause {
	case "fault-retransmit":
		return "compare fault schedules; raise reliable timeout/backoff"
	case "late-init":
		return "start transfers as soon as data is ready"
	case "early-wait":
		return "push Wait later; insert compute between init and Wait"
	case "protocol":
		return "check eager/rendezvous threshold against message sizes"
	case "progress":
		return "-progress thread, or poll with Test/TestColl during compute"
	}
	return ""
}
