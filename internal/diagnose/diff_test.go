package diagnose

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ovlp/internal/profile"
	"ovlp/internal/timeres"
)

func diffFixtures() (Run, Run) {
	us := time.Microsecond
	a := Run{
		Label: "a",
		Profile: mkProfile(10*ms, []profile.Site{
			{Region: "exchange", Op: "Isend", Count: 8, Blame: profile.Blame{FaultRetransmit: 600 * us, EarlyWait: 400 * us}},
			{Region: "halo", Op: "Wait", Count: 4, Blame: profile.Blame{Progress: 500 * us}},
		}),
	}
	b := Run{
		Label: "b",
		Profile: mkProfile(12*ms, []profile.Site{
			{Region: "exchange", Op: "Isend", Count: 8, Blame: profile.Blame{FaultRetransmit: 1500 * us, EarlyWait: 500 * us}},
			{Region: "coll", Op: "Iallreduce[ring]", Count: 2, Blame: profile.Blame{Protocol: 300 * us}},
		}),
	}
	return a, b
}

func TestDiffSelfIsZero(t *testing.T) {
	a, _ := diffFixtures()
	us := time.Microsecond
	lag := timeres.Slice{
		Cells: cells(timeres.Cell{Compute: 500 * us, WireWait: 500 * us}, timeres.Cell{Compute: 900 * us, Idle: 100 * us}),
		Eff:   timeres.Efficiency{Parallel: 0.7, LoadBalance: 0.6, Comm: 0.8, Transfer: 0.5, Serialization: 0.9},
	}
	a.TimeRes = mkSnapshot(2, []timeres.Slice{balancedWindow(2), lag})
	r, err := Diff(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if r.WallDeltaNS != 0 || r.GapDeltaNS != 0 {
		t.Fatalf("self-diff deltas: wall %d gap %d, want 0 0", r.WallDeltaNS, r.GapDeltaNS)
	}
	if len(r.Causes) != 0 || len(r.Sites) != 0 || len(r.Windows) != 0 {
		t.Fatalf("self-diff kept rows: causes=%d sites=%d windows=%d", len(r.Causes), len(r.Sites), len(r.Windows))
	}
	if len(r.Findings) != 0 {
		t.Fatalf("self-diff produced findings: %+v", r.Findings)
	}
}

func TestDiffConservation(t *testing.T) {
	a, b := diffFixtures()
	r, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	wantGapDelta := int64(b.Profile.Totals.Gap - a.Profile.Totals.Gap)
	if r.GapDeltaNS != wantGapDelta {
		t.Fatalf("gap delta %d, want %d", r.GapDeltaNS, wantGapDelta)
	}
	// Per-cause deltas must sum exactly to the total max−min bound
	// delta — the diff's conservation law.
	var causeSum int64
	for _, c := range r.Causes {
		causeSum += c.DeltaNS
	}
	if causeSum != r.GapDeltaNS {
		t.Fatalf("cause deltas sum to %d, gap delta is %d", causeSum, r.GapDeltaNS)
	}
	// Site deltas conserve too, and each site's cause deltas sum to
	// the site's own delta.
	var siteSum int64
	for _, s := range r.Sites {
		siteSum += s.DeltaNS
		var cs int64
		for _, c := range s.Causes {
			cs += c.DeltaNS
		}
		if cs != s.DeltaNS {
			t.Errorf("site %s: cause deltas sum %d != site delta %d", s.Site, cs, s.DeltaNS)
		}
	}
	if siteSum != r.GapDeltaNS {
		t.Fatalf("site deltas sum to %d, gap delta is %d", siteSum, r.GapDeltaNS)
	}
	// Union alignment: the A-only site appears with GapB 0, the B-only
	// site with GapA 0.
	bySite := map[string]SiteDelta{}
	for _, s := range r.Sites {
		bySite[s.Site] = s
	}
	if s := bySite["halo/Wait"]; s.GapBNS != 0 || s.DeltaNS != -int64(500*time.Microsecond) {
		t.Errorf("A-only site halo/Wait = %+v", s)
	}
	if s := bySite["coll/Iallreduce[ring]"]; s.GapANS != 0 || s.DeltaNS != int64(300*time.Microsecond) {
		t.Errorf("B-only site coll/Iallreduce[ring] = %+v", s)
	}
}

func TestDiffExplainsRegression(t *testing.T) {
	a, b := diffFixtures()
	r, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	var gap *Finding
	for i := range r.Findings {
		if r.Findings[i].Kind == KindGapRegression {
			gap = &r.Findings[i]
		}
	}
	if gap == nil {
		t.Fatalf("no gap-regression finding: %+v", r.Findings)
	}
	// Dominant cause is fault-retransmit (+900µs of the +800µs net),
	// and the site that moved most under it is exchange/Isend.
	if !strings.Contains(gap.Summary, "fault-retransmit") {
		t.Errorf("summary %q does not name the dominant cause", gap.Summary)
	}
	if gap.Scope.Site != "exchange/Isend" {
		t.Errorf("scope site %q, want exchange/Isend", gap.Scope.Site)
	}
	var wall *Finding
	for i := range r.Findings {
		if r.Findings[i].Kind == KindWallRegression {
			wall = &r.Findings[i]
		}
	}
	if wall == nil {
		t.Fatalf("wall regressed 20%% but no wall-regression finding")
	}
}

func TestDiffImprovement(t *testing.T) {
	a, b := diffFixtures()
	r, err := Diff(b, a) // reversed: a is the faster run
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range r.Findings {
		if f.Kind == KindImprovement {
			found = true
		}
		if f.Kind == KindGapRegression || f.Kind == KindWallRegression {
			t.Fatalf("reversed diff reported a regression: %+v", f)
		}
	}
	if !found {
		t.Fatalf("reversed diff reported no improvement: %+v", r.Findings)
	}
}

func TestDiffWindowAlignment(t *testing.T) {
	a, b := diffFixtures()
	mkTR := func(te float64) *timeres.Snapshot {
		w := balancedWindow(2)
		w.Eff.Transfer = te
		return mkSnapshot(2, []timeres.Slice{balancedWindow(2), w})
	}
	a.TimeRes, b.TimeRes = mkTR(0.9), mkTR(0.4)
	r, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Windows) != 1 || r.Windows[0].Index != 1 {
		t.Fatalf("windows = %+v, want exactly window 1", r.Windows)
	}
	if r.Windows[0].DXfer != round4(-0.5) {
		t.Errorf("d_xfer_eff %v, want -0.5", r.Windows[0].DXfer)
	}
	var eff *Finding
	for i := range r.Findings {
		if r.Findings[i].Kind == KindEffRegression {
			eff = &r.Findings[i]
		}
	}
	if eff == nil {
		t.Fatalf("0.5 TE drop produced no efficiency-regression finding")
	}

	// Mismatched window sizes: alignment skipped, note recorded.
	b.TimeRes.Window = 2 * ms
	r, err = Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Windows) != 0 || r.WindowSkew == "" {
		t.Fatalf("mismatched windows: got %d rows, skew %q", len(r.Windows), r.WindowSkew)
	}
}

func TestDiffDeterministicJSON(t *testing.T) {
	run := func() []byte {
		a, b := diffFixtures()
		r, err := Diff(a, b)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteDiffJSON(&buf, r); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("diff JSON not byte-identical across reruns")
	}
}

func TestDiffWriters(t *testing.T) {
	a, b := diffFixtures()
	r, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	var txt, csv bytes.Buffer
	if err := WriteDiffText(&txt, r); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"diff: a → b", "causes", "exchange/Isend", "findings:"} {
		if !strings.Contains(txt.String(), want) {
			t.Errorf("text output missing %q:\n%s", want, txt.String())
		}
	}
	if err := WriteDiffCSV(&csv, r); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if lines[0] != "section,key,a,b,delta" {
		t.Fatalf("csv header %q", lines[0])
	}
	if !strings.Contains(csv.String(), "cause,fault-retransmit,") {
		t.Fatalf("csv missing cause row:\n%s", csv.String())
	}
}
