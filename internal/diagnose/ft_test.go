package diagnose

import (
	"strings"
	"testing"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/fabric"
	"ovlp/internal/mpi"
	"ovlp/internal/profile"
	"ovlp/internal/trace"
	"ovlp/internal/vtime"
)

func findKind(rep *Report, kind string) *Finding {
	for i := range rep.Findings {
		if rep.Findings[i].Kind == kind {
			return &rep.Findings[i]
		}
	}
	return nil
}

// TestRankFailureRule: a declared crash always surfaces as a
// rank-failure finding — critical without recovery evidence, warn with
// a completed recovery attached.
func TestRankFailureRule(t *testing.T) {
	in := Input{
		Duration: 10 * ms,
		Procs:    4,
		Crashes:  []Crash{{Rank: 2, At: 2 * ms}},
	}
	rep := Analyze(in)
	f := findKind(rep, KindRankFailure)
	if f == nil {
		t.Fatalf("no rank-failure finding: %+v", rep.Findings)
	}
	if f.Severity != SevCritical {
		t.Errorf("unrecovered crash severity %q, want critical", f.Severity)
	}
	if f.Scope.Rank == nil || *f.Scope.Rank != 2 {
		t.Errorf("scope %v, want rank 2", f.Scope)
	}
	if f.Score != round4(1-0.2) {
		t.Errorf("score %v, want 0.8 (crash at 20%% of the run)", f.Score)
	}

	in.Recovery = &Recovery{Mode: "shrink-continue", Epochs: 1, Failed: []int{2}, Survivors: 3, Completed: true}
	rep = Analyze(in)
	f = findKind(rep, KindRankFailure)
	if f == nil {
		t.Fatal("no rank-failure finding with recovery evidence")
	}
	if f.Severity != SevWarn {
		t.Errorf("recovered crash severity %q, want warn", f.Severity)
	}
	if !strings.Contains(f.Cause, "shrink-continue") {
		t.Errorf("cause %q does not name the recovery mode", f.Cause)
	}
}

// TestRecoveryShareRules: detect+agree blame trips slow-recovery,
// rollback+recompute trips checkpoint-overhead, each scoped to the
// site owning the most of its category.
func TestRecoveryShareRules(t *testing.T) {
	p := mkProfile(10*ms, []profile.Site{
		{Region: "exchange", Op: "Sendrecv", Count: 6, Blame: profile.Blame{Detect: 300 * time.Microsecond}},
		{Region: "ft-agree", Op: "Allreduce", Count: 2, Blame: profile.Blame{Agree: 100 * time.Microsecond}},
		{Region: "ft-checkpoint", Op: "Sendrecv", Count: 4, Blame: profile.Blame{Rollback: 350 * time.Microsecond}},
		{Region: "ft-recompute", Op: "Allreduce", Count: 4, Blame: profile.Blame{Recompute: 250 * time.Microsecond}},
	})
	// Gap total 1ms: recovery share 0.4, checkpoint share 0.6.
	in := Input{Profile: p, Duration: 10 * ms, Procs: 4,
		Recovery: &Recovery{Mode: "checkpoint-restart", Epochs: 1, Survivors: 3, Checkpoints: 3, ReplayedSteps: 2, Completed: true}}
	rep := Analyze(in)

	slow := findKind(rep, KindSlowRecovery)
	if slow == nil {
		t.Fatalf("no slow-recovery finding: %+v", rep.Findings)
	}
	if slow.Score != round4(0.4) {
		t.Errorf("slow-recovery score %v, want 0.4", slow.Score)
	}
	if slow.Severity != SevWarn {
		t.Errorf("slow-recovery severity %q, want warn (0.4 < critical 0.5)", slow.Severity)
	}
	if slow.Scope.Site != "exchange/Sendrecv" {
		t.Errorf("slow-recovery site %q, want exchange/Sendrecv", slow.Scope.Site)
	}

	ck := findKind(rep, KindCkptOverhead)
	if ck == nil {
		t.Fatalf("no checkpoint-overhead finding: %+v", rep.Findings)
	}
	if ck.Score != round4(0.6) {
		t.Errorf("checkpoint-overhead score %v, want 0.6", ck.Score)
	}
	if ck.Severity != SevCritical {
		t.Errorf("checkpoint-overhead severity %q, want critical (0.6 >= 0.5)", ck.Severity)
	}
	if ck.Scope.Site != "ft-checkpoint/Sendrecv" {
		t.Errorf("checkpoint-overhead site %q, want ft-checkpoint/Sendrecv", ck.Scope.Site)
	}
}

// TestRecoveryRulesStayQuiet: a clean profile with no recovery blame
// and no declared crashes produces none of the recovery kinds.
func TestRecoveryRulesStayQuiet(t *testing.T) {
	p := mkProfile(10*ms, []profile.Site{
		{Region: "exchange", Op: "Wait", Count: 8, Blame: profile.Blame{Progress: 100 * time.Microsecond}},
	})
	rep := Analyze(Input{Profile: p, Duration: 10 * ms, Procs: 4, ProgressMode: "thread"})
	for _, k := range []string{KindRankFailure, KindSlowRecovery, KindCkptOverhead} {
		if f := findKind(rep, k); f != nil {
			t.Errorf("%s fired on a failure-free run: %+v", k, f)
		}
	}
}

// TestRecoveryFindingsEndToEnd drives a real crash through RunFT, the
// profiler and the diagnosis engine: the rank-failure finding names
// the dead rank, and the detect blame the truncated transfers produce
// surfaces as slow-recovery.
func TestRecoveryFindingsEndToEnd(t *testing.T) {
	tr := trace.New(trace.Options{})
	cfg := cluster.Config{
		Procs: 4,
		MPI:   mpi.Config{Instrument: &mpi.InstrumentConfig{}},
		Crashes: &fabric.CrashPlan{Crashes: []fabric.Crash{
			{Node: 2, At: vtime.Time(800 * time.Microsecond)},
		}},
		Deadline: 10 * time.Second,
		Trace:    tr,
	}
	// A short retry budget makes detection fast enough that the large
	// in-flight rendezvous transfers are still open at the epoch cut,
	// so their truncation carries visible detect blame.
	cfg.MPI.Reliable = &fabric.ReliableParams{MaxRetries: 3}
	wl := &ftWL{steps: 8, bytes: 2 << 20, compute: 100 * time.Microsecond}
	res, err := cluster.RunFT(cfg, cluster.FTOptions{}, wl)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Epochs != 1 {
		t.Fatalf("recovery did not happen: completed=%v epochs=%d", res.Completed, res.Epochs)
	}
	p, err := profile.Analyze(profile.FromTracer(tr, res.Calib, res.Reports))
	if err != nil {
		t.Fatal(err)
	}
	in := Input{
		Profile:  p,
		Duration: res.Duration,
		Procs:    4,
		Crashes:  []Crash{{Rank: 2, At: 800 * time.Microsecond}},
		Recovery: &Recovery{
			Mode: cluster.ShrinkContinue.String(), Epochs: res.Epochs,
			Failed: res.Failed, Survivors: len(res.Survivors),
			Completed: res.Completed,
		},
	}
	rep := Analyze(in)
	rf := findKind(rep, KindRankFailure)
	if rf == nil {
		t.Fatalf("no rank-failure finding: %+v", rep.Findings)
	}
	if rf.Severity != SevWarn || rf.Scope.Rank == nil || *rf.Scope.Rank != 2 {
		t.Errorf("rank-failure = %+v, want warn at rank 2", rf)
	}
	if sr := findKind(rep, KindSlowRecovery); sr == nil {
		t.Errorf("no slow-recovery finding despite detect blame %v of gap %v",
			p.Totals.Blame.Detect, p.Totals.Gap)
	}
}

// ftWL is a Checkpointable ring workload for the end-to-end test.
type ftWL struct {
	steps   int
	bytes   int
	compute time.Duration
}

func (w *ftWL) Name() string             { return "ring" }
func (w *ftWL) Steps() int               { return w.steps }
func (w *ftWL) StateBytes(procs int) int { return w.bytes }
func (w *ftWL) Init(c *mpi.Comm)         { c.Bcast(0, 8) }
func (w *ftWL) Step(c *mpi.Comm, step int) {
	r := c.Host()
	if n := c.Size(); n > 1 {
		next, prev := (c.Rank()+1)%n, (c.Rank()+n-1)%n
		c.Sendrecv(next, 5, w.bytes, prev, 5)
	}
	r.Compute(w.compute)
	c.Allreduce(8)
}
