package diagnose

import (
	"fmt"
	"time"

	"ovlp/internal/profile"
)

// rankFailureFindings reports every declared crash-stop rank failure.
// The finding is critical when the run never recovered (no
// fault-tolerant runner, or it could not complete) and informational
// warn-level when the survivors shrank or rolled back and finished —
// the point being that the crash is visible in the findings either
// way, with its recovery story attached.
func rankFailureFindings(in *Input) []Finding {
	if len(in.Crashes) == 0 {
		return nil
	}
	rec := in.Recovery
	recovered := rec != nil && rec.Completed
	var out []Finding
	for _, cr := range in.Crashes {
		sev := SevCritical
		cause := "the declared crash plan kills this node; without a fault-tolerant runner the survivors park on its silence"
		knob := "run fault-tolerant (cluster.RunFT): shrink-continue or checkpoint-restart"
		summary := fmt.Sprintf("rank %d crash-stops at %v and the run does not recover", cr.Rank, cr.At)
		if recovered {
			sev = SevWarn
			cause = fmt.Sprintf("declared crash of rank %d; survivors detected the failure, agreed on the dead set and continued in %s mode", cr.Rank, rec.Mode)
			knob = "none required — recovery completed; tune detection latency via the reliable retry budget"
			summary = fmt.Sprintf("rank %d crash-stops at %v; %d survivors recover across %d epoch cut(s)",
				cr.Rank, cr.At, rec.Survivors, rec.Epochs)
		}
		// Earlier crashes waste more of the run: score by the remaining
		// fraction of the run at the kill time.
		score := 1.0
		if in.Duration > 0 && cr.At > 0 && cr.At < in.Duration {
			score = round4(1 - float64(cr.At)/float64(in.Duration))
		}
		r := cr.Rank
		f := Finding{
			Kind:     KindRankFailure,
			Severity: sev,
			Score:    score,
			Scope:    Scope{Rank: &r, FromNS: int64(cr.At), ToNS: int64(in.Duration)},
			Summary:  summary,
			Cause:    cause,
			Knob:     knob,
			Evidence: []Evidence{
				{Metric: "crash_at_ns", Value: float64(cr.At), Unit: "ns"},
			},
		}
		if rec != nil {
			f.Evidence = append(f.Evidence,
				Evidence{Metric: "recovery_epochs", Value: float64(rec.Epochs)},
				Evidence{Metric: "survivors", Value: float64(rec.Survivors)},
			)
		}
		out = append(out, f)
	}
	return out
}

// slowRecoveryFindings fires when failure detection and agreement own a
// substantial share of the bound gap: the survivors spent that time
// parked on transfers to a dead node, burning the reliable layer's
// retry budget before the failure could be agreed.
func slowRecoveryFindings(in *Input) []Finding {
	p := in.Profile
	if p == nil || p.Totals.Gap <= 0 {
		return nil
	}
	detect := float64(p.Totals.Blame.Detect) / float64(p.Totals.Gap)
	agree := float64(p.Totals.Blame.Agree) / float64(p.Totals.Gap)
	share := detect + agree
	if share < RecoveryShare {
		return nil
	}
	site, siteShare := worstSite(p, func(b profile.Blame) time.Duration { return b.Detect + b.Agree })
	f := Finding{
		Kind:     KindSlowRecovery,
		Severity: shareSeverity(share),
		Score:    round4(share),
		Scope:    Scope{Site: site},
		Summary: fmt.Sprintf("failure detection and agreement own %.1f%% of the %v bound gap (worst site %s)",
			round4(share)*100, p.Totals.Gap, site),
		Cause: "detection is paced by the reliable retry budget: in-flight transfers to the dead node must exhaust retries before the failure is agreed, and every open transfer at the cut is truncated",
		Knob:  "shorten fabric.ReliableParams retries/timeout or mpi.FTConfig.HeartbeatPeriod so detection converges sooner",
		Evidence: []Evidence{
			{Metric: "recovery_share", Value: round4(share), Threshold: RecoveryShare},
			{Metric: "detect_share", Value: round4(detect)},
			{Metric: "agree_share", Value: round4(agree)},
		},
	}
	if site != "" {
		f.Evidence = append(f.Evidence, Evidence{Metric: "site_share", Value: round4(siteShare)})
	}
	return []Finding{f}
}

// ckptOverheadFindings fires when checkpoint replication, rollback
// restore traffic and post-rollback replay own a substantial share of
// the bound gap — resilience is being bought with bandwidth and
// recomputed steps that contribute nothing to forward progress.
func ckptOverheadFindings(in *Input) []Finding {
	p := in.Profile
	if p == nil || p.Totals.Gap <= 0 {
		return nil
	}
	roll := float64(p.Totals.Blame.Rollback) / float64(p.Totals.Gap)
	recomp := float64(p.Totals.Blame.Recompute) / float64(p.Totals.Gap)
	share := roll + recomp
	if share < CkptShare {
		return nil
	}
	site, siteShare := worstSite(p, func(b profile.Blame) time.Duration { return b.Rollback + b.Recompute })
	f := Finding{
		Kind:     KindCkptOverhead,
		Severity: shareSeverity(share),
		Score:    round4(share),
		Scope:    Scope{Site: site},
		Summary: fmt.Sprintf("checkpoint/rollback/replay traffic owns %.1f%% of the %v bound gap (worst site %s)",
			round4(share)*100, p.Totals.Gap, site),
		Cause: "buddy replication and post-rollback replay repeat work and move state that a failure-free run never would",
		Knob:  "lengthen FTOptions.CheckpointEvery, shrink the workload's declared StateBytes, or raise CheckpointBandwidth",
		Evidence: []Evidence{
			{Metric: "ckpt_share", Value: round4(share), Threshold: CkptShare},
			{Metric: "rollback_share", Value: round4(roll)},
			{Metric: "recompute_share", Value: round4(recomp)},
		},
	}
	if site != "" {
		f.Evidence = append(f.Evidence, Evidence{Metric: "site_share", Value: round4(siteShare)})
	}
	if rec := in.Recovery; rec != nil {
		f.Evidence = append(f.Evidence,
			Evidence{Metric: "checkpoints", Value: float64(rec.Checkpoints)},
			Evidence{Metric: "replayed_steps", Value: float64(rec.ReplayedSteps)},
		)
	}
	return []Finding{f}
}
