package diagnose

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// WriteJSON renders a findings report as indented JSON. Output is
// byte-deterministic: every float was rounded at construction and the
// findings carry a total order.
func WriteJSON(w io.Writer, r *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders a findings report for a terminal.
func WriteText(w io.Writer, r *Report) error {
	if len(r.Findings) == 0 {
		_, err := fmt.Fprintln(w, "findings: none")
		return err
	}
	if _, err := fmt.Fprintf(w, "findings: %d\n", len(r.Findings)); err != nil {
		return err
	}
	for i, f := range r.Findings {
		fmt.Fprintf(w, "%3d. [%s] %s  (%s, score %.4f)\n", i+1, f.Severity, f.Kind, f.Scope, f.Score)
		fmt.Fprintf(w, "     %s\n", f.Summary)
		if f.Cause != "" {
			fmt.Fprintf(w, "     cause: %s\n", f.Cause)
		}
		if f.Knob != "" {
			fmt.Fprintf(w, "     try:   %s\n", f.Knob)
		}
		for _, e := range f.Evidence {
			line := fmt.Sprintf("       - %s = %g", e.Metric, e.Value)
			if e.Unit != "" {
				line += " " + e.Unit
			}
			if e.Threshold != 0 {
				line += fmt.Sprintf(" (threshold %g)", e.Threshold)
			}
			fmt.Fprintln(w, line)
		}
	}
	return nil
}

// WriteDiffJSON renders a differential report as indented JSON.
func WriteDiffJSON(w io.Writer, r *DiffReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteDiffText renders a differential report for a terminal: totals,
// the cause ledger, the moved sites and windows, then the findings.
func WriteDiffText(w io.Writer, r *DiffReport) error {
	fmt.Fprintf(w, "diff: %s → %s\n", r.ALabel, r.BLabel)
	fmt.Fprintf(w, "wall: %v → %v (%+v)\n",
		time.Duration(r.WallANS), time.Duration(r.WallBNS), time.Duration(r.WallDeltaNS))
	fmt.Fprintf(w, "gap:  %v → %v (%+v)\n",
		time.Duration(r.GapANS), time.Duration(r.GapBNS), time.Duration(r.GapDeltaNS))
	if r.WindowSkew != "" {
		fmt.Fprintf(w, "note: %s\n", r.WindowSkew)
	}
	if len(r.Causes) > 0 {
		fmt.Fprintln(w, "\ncauses (delta of bound gap):")
		for _, c := range r.Causes {
			fmt.Fprintf(w, "  %-16s %12v → %-12v %+v\n", c.Cause,
				time.Duration(c.ANS), time.Duration(c.BNS), time.Duration(c.DeltaNS))
		}
	}
	if len(r.Sites) > 0 {
		fmt.Fprintln(w, "\nsites (gap delta, dominant cause):")
		for _, s := range r.Sites {
			dom := s.Dominant
			if dom == "" {
				dom = "-"
			}
			fmt.Fprintf(w, "  %-28s %+12v  %s\n", s.Site, time.Duration(s.DeltaNS), dom)
		}
	}
	if len(r.Windows) > 0 {
		// The text view is for a terminal; long runs move thousands of
		// windows, so show the first few and the count. -csv/-json carry
		// the full list.
		const maxRows = 12
		fmt.Fprintln(w, "\nwindows (efficiency deltas B−A):")
		fmt.Fprintln(w, "  win       start    d_par    d_lb     d_ce     d_te     d_se")
		for i, d := range r.Windows {
			if i == maxRows {
				fmt.Fprintf(w, "  … %d more moved windows (use -csv or -json for all)\n",
					len(r.Windows)-maxRows)
				break
			}
			fmt.Fprintf(w, "  %3d %11v %+8.4f %+8.4f %+8.4f %+8.4f %+8.4f\n",
				d.Index, time.Duration(d.StartNS), d.DParal, d.DLoadBal, d.DComm, d.DXfer, d.DSer)
		}
	}
	fmt.Fprintln(w)
	return WriteText(w, &Report{Schema: r.Schema, Findings: r.Findings})
}

// WriteDiffCSV renders a differential report as one machine-parseable
// CSV: a section column disambiguates totals, causes, sites and
// windows; a/b/delta are ns for time rows and dimensionless (already
// rounded) for window efficiency rows.
func WriteDiffCSV(w io.Writer, r *DiffReport) error {
	if _, err := fmt.Fprintln(w, "section,key,a,b,delta"); err != nil {
		return err
	}
	fmt.Fprintf(w, "total,wall_ns,%d,%d,%d\n", r.WallANS, r.WallBNS, r.WallDeltaNS)
	fmt.Fprintf(w, "total,gap_ns,%d,%d,%d\n", r.GapANS, r.GapBNS, r.GapDeltaNS)
	for _, c := range r.Causes {
		fmt.Fprintf(w, "cause,%s,%d,%d,%d\n", c.Cause, c.ANS, c.BNS, c.DeltaNS)
	}
	for _, s := range r.Sites {
		fmt.Fprintf(w, "site,%s,%d,%d,%d\n", s.Site, s.GapANS, s.GapBNS, s.DeltaNS)
	}
	for _, d := range r.Windows {
		for _, m := range []struct {
			name string
			v    float64
		}{
			{"parallel_eff", d.DParal}, {"load_bal", d.DLoadBal},
			{"comm_eff", d.DComm}, {"xfer_eff", d.DXfer}, {"ser_eff", d.DSer},
		} {
			if m.v == 0 {
				continue
			}
			fmt.Fprintf(w, "window,%d/%s,,,%g\n", d.Index, m.name, m.v)
		}
	}
	return nil
}
