package diagnose

import (
	"fmt"
	"sort"
	"time"

	"ovlp/internal/profile"
	"ovlp/internal/timeres"
)

// stragglerFindings scans the windowed load balance for collapse and
// pins it to the rank with the least compute in the collapsed windows,
// then argues causality from that rank's own wait composition and
// retransmit counter.
func stragglerFindings(in *Input) []Finding {
	s := in.TimeRes
	if s == nil || len(s.Ranks) < 2 || len(s.Windows) == 0 {
		return nil
	}
	type accum struct {
		windows            int
		minLB              float64
		first, last        time.Duration
		compute, wireWait  time.Duration
		serWait, span      time.Duration
		othersCompute      time.Duration
		othersComputeSpans int
	}
	byRank := map[int]*accum{}
	collapsed := 0
	for wi := range s.Windows {
		w := &s.Windows[wi]
		if w.Eff.LoadBalance >= StragglerLB || w.Eff.Comm <= 0 {
			continue
		}
		collapsed++
		// The straggler of this window: least compute, ties to the
		// lower rank id (Cells are in ascending rank order).
		min := 0
		for i := range w.Cells {
			if w.Cells[i].Compute < w.Cells[min].Compute {
				min = i
			}
		}
		c := &w.Cells[min]
		a := byRank[c.Rank]
		if a == nil {
			a = &accum{minLB: 1, first: w.Start}
			byRank[c.Rank] = a
		}
		if a.windows == 0 {
			a.first = w.Start
		}
		a.windows++
		if w.Eff.LoadBalance < a.minLB {
			a.minLB = w.Eff.LoadBalance
		}
		a.last = w.End
		a.compute += c.Compute
		a.wireWait += c.WireWait
		a.serWait += c.SerWait
		a.span += w.End - w.Start
		for i := range w.Cells {
			if i != min {
				a.othersCompute += w.Cells[i].Compute
				a.othersComputeSpans++
			}
		}
	}
	if collapsed == 0 {
		return nil
	}
	// The suspect must own the collapse: most collapsed windows, and at
	// least StragglerMinWindows / half of them.
	suspect, best := -1, (*accum)(nil)
	for rank, a := range byRank {
		if best == nil || a.windows > best.windows || (a.windows == best.windows && rank < suspect) {
			suspect, best = rank, a
		}
	}
	if best == nil || best.windows < StragglerMinWindows || best.windows*2 < collapsed {
		return nil
	}

	wireFrac := frac(best.wireWait, best.span)
	serFrac := frac(best.serWait, best.span)
	computeRatio := 0.0
	if best.othersComputeSpans > 0 && best.othersCompute > 0 {
		avgOthers := float64(best.othersCompute) / float64(best.othersComputeSpans)
		computeRatio = float64(best.compute) / float64(best.windows) / avgOthers
	}

	cause := "serialization: the rank waits on peers with no own wire traffic"
	knob := "inspect the dependency structure feeding rank " + fmt.Sprint(suspect)
	if retransHot(in, suspect) {
		cause = fmt.Sprintf("fault retransmits concentrated on rank %d stretch its transfer windows", suspect)
		knob = "check the fabric loss scoped at this rank's links; raise reliable timeout/backoff"
	} else if wireFrac > serFrac {
		cause = fmt.Sprintf("rank %d sits parked on in-flight wire traffic — a DMA stall or bandwidth fault on its NIC", suspect)
		knob = fmt.Sprintf("inspect NIC stalls / link bandwidth at node %d", suspect)
		if iv, ok := faultAt(in, best.first, best.last); ok && iv.Label != "" {
			cause += fmt.Sprintf(" (declared fault %q overlaps)", iv.Label)
		}
	}

	sev := SevWarn
	if best.minLB < StragglerLB/2 {
		sev = SevCritical
	}
	r := suspect
	return []Finding{{
		Kind:     KindStraggler,
		Severity: sev,
		Score:    round4(1 - best.minLB),
		Scope:    Scope{Rank: &r, FromNS: int64(best.first), ToNS: int64(best.last)},
		Summary: fmt.Sprintf("rank %d drags load balance to %.4f over %d of %d collapsed windows",
			suspect, round4(best.minLB), best.windows, collapsed),
		Cause: cause,
		Knob:  knob,
		Evidence: []Evidence{
			{Metric: "collapsed_windows", Value: float64(best.windows), Threshold: StragglerMinWindows},
			{Metric: "min_load_bal", Value: round4(best.minLB), Threshold: StragglerLB},
			{Metric: "rank_compute_ratio", Value: round4(computeRatio)},
			{Metric: "rank_wire_wait_frac", Value: round4(wireFrac)},
			{Metric: "rank_ser_wait_frac", Value: round4(serFrac)},
		},
	}}
}

// retransHot reports whether the rank's retransmit counter is at least
// twice the mean of the other ranks' (and non-trivial).
func retransHot(in *Input, rank int) bool {
	if rank >= len(in.Retransmits) || in.Retransmits[rank] < 4 {
		return false
	}
	sum, n := 0, 0
	for r, c := range in.Retransmits {
		if r != rank {
			sum, n = sum+c, n+1
		}
	}
	if n == 0 {
		return false
	}
	return float64(in.Retransmits[rank]) >= 2*(float64(sum)/float64(n)+1)
}

// blameShareFindings covers the profile-driven rules: retransmit
// storms and progress starvation, each scoped to the call site owning
// the most of that category's blame.
func blameShareFindings(in *Input) []Finding {
	p := in.Profile
	if p == nil || p.Totals.Gap <= 0 {
		return nil
	}
	gap := float64(p.Totals.Gap)
	var out []Finding

	if share := float64(p.Totals.Blame.FaultRetransmit) / gap; share >= StormShare {
		site, siteShare := worstSite(p, func(b profile.Blame) time.Duration { return b.FaultRetransmit })
		total := 0
		for _, c := range in.Retransmits {
			total += c
		}
		cause := "fabric loss forced the reliable layer to retransmit, stretching detection windows"
		if iv, ok := faultAt(in, 0, in.Duration); ok && iv.Label != "" {
			cause = fmt.Sprintf("declared fault %q forced retransmissions that stretch detection windows", iv.Label)
		}
		out = append(out, Finding{
			Kind:     KindRetransStorm,
			Severity: shareSeverity(share),
			Score:    round4(share),
			Scope:    Scope{Site: site},
			Summary: fmt.Sprintf("fault-retransmit owns %.1f%% of the %v bound gap (worst site %s)",
				round4(share)*100, p.Totals.Gap, site),
			Cause: cause,
			Knob:  "raise reliable timeout/backoff, or scope the chaos schedule away from hot links",
			Evidence: []Evidence{
				{Metric: "fault_retransmit_share", Value: round4(share), Threshold: StormShare},
				{Metric: "site_share", Value: round4(siteShare)},
				{Metric: "retransmits", Value: float64(total)},
			},
		})
	}

	if in.ProgressMode != "thread" {
		if share := float64(p.Totals.Blame.Progress) / gap; share >= StarveShare {
			site, siteShare := worstSite(p, func(b profile.Blame) time.Duration { return b.Progress })
			out = append(out, Finding{
				Kind:     KindStarvation,
				Severity: shareSeverity(share),
				Score:    round4(share),
				Scope:    Scope{Site: site},
				Summary: fmt.Sprintf("progress starvation owns %.1f%% of the %v bound gap at Wait-heavy site %s",
					round4(share)*100, p.Totals.Gap, site),
				Cause: "the library only progresses inside calls; compute periods leave pending transfers unpolled",
				Knob:  "-progress thread (dedicated progress engine), or intersperse TestColl/Test polls",
				Evidence: []Evidence{
					{Metric: "progress_share", Value: round4(share), Threshold: StarveShare},
					{Metric: "site_share", Value: round4(siteShare)},
				},
			})
		}
	}
	return out
}

// worstSite returns "region/op" of the site owning the most of the
// category selected by pick, and that site's share of the category.
func worstSite(p *profile.Profile, pick func(profile.Blame) time.Duration) (string, float64) {
	best, total := -1, time.Duration(0)
	for i := range p.Sites {
		v := pick(p.Sites[i].Blame)
		total += v
		if best < 0 || v > pick(p.Sites[best].Blame) {
			best = i
		}
	}
	if best < 0 || total <= 0 {
		return "", 0
	}
	s := &p.Sites[best]
	return s.Region + "/" + s.Op, float64(pick(s.Blame)) / float64(total)
}

// phaseCollapseFindings finds transfer-efficiency cliffs: windows
// whose TE craters while the run median stays healthy, each maximal
// run of consecutive cliff windows one finding, tied to a declared
// fault interval when one overlaps.
func phaseCollapseFindings(in *Input) []Finding {
	s := in.TimeRes
	if s == nil || len(s.Windows) < 2 {
		return nil
	}
	med := medianTE(s.Windows)
	if med < CollapseMedianTE {
		return nil // the whole run is sick; a cliff needs healthy surroundings
	}
	var out []Finding
	for wi := 0; wi < len(s.Windows); {
		if s.Windows[wi].Eff.Transfer >= CollapseTE {
			wi++
			continue
		}
		lo := wi
		minTE := s.Windows[wi].Eff.Transfer
		for wi < len(s.Windows) && s.Windows[wi].Eff.Transfer < CollapseTE {
			if s.Windows[wi].Eff.Transfer < minTE {
				minTE = s.Windows[wi].Eff.Transfer
			}
			wi++
		}
		hi := wi - 1
		start, end := s.Windows[lo].Start, s.Windows[hi].End
		cause := "wire time ballooned in this interval with no declared fault — suspect contention or protocol change"
		knob := "inspect the fabric state in this interval"
		if iv, ok := faultAt(in, start, end); ok {
			label := iv.Label
			if label == "" {
				label = "unlabeled"
			}
			cause = fmt.Sprintf("declared fault interval %q is active across the cliff", label)
			knob = "shorten or re-scope that chaos event; raise bandwidth floor"
		}
		sev := SevWarn
		if minTE < CollapseTE/3 {
			sev = SevCritical
		}
		w := lo
		out = append(out, Finding{
			Kind:     KindPhaseCollapse,
			Severity: sev,
			Score:    round4(med - minTE),
			Scope:    Scope{Window: &w, FromNS: int64(start), ToNS: int64(end)},
			Summary: fmt.Sprintf("transfer efficiency craters to %.4f in windows %d..%d (run median %.4f)",
				round4(minTE), lo, hi, round4(med)),
			Cause: cause,
			Knob:  knob,
			Evidence: []Evidence{
				{Metric: "min_xfer_eff", Value: round4(minTE), Threshold: CollapseTE},
				{Metric: "median_xfer_eff", Value: round4(med), Threshold: CollapseMedianTE},
				{Metric: "cliff_windows", Value: float64(hi - lo + 1)},
			},
		})
	}
	return out
}

func medianTE(ws []timeres.Slice) float64 {
	vals := make([]float64, len(ws))
	for i := range ws {
		vals[i] = ws[i].Eff.Transfer
	}
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}

// serHotspotFindings flags maximal window runs whose serialization
// wait (parked with no own wire traffic) dominates rank time, and
// names the profiler's worst early-wait site as the likely code.
func serHotspotFindings(in *Input) []Finding {
	s := in.TimeRes
	if s == nil || len(s.Windows) == 0 {
		return nil
	}
	serFrac := func(w *timeres.Slice) float64 {
		var ser, span time.Duration
		for i := range w.Cells {
			ser += w.Cells[i].SerWait
			span += w.End - w.Start
		}
		return frac(ser, span)
	}
	var out []Finding
	for wi := 0; wi < len(s.Windows); {
		if serFrac(&s.Windows[wi]) < SerHotspotFrac {
			wi++
			continue
		}
		lo := wi
		maxFrac := 0.0
		for wi < len(s.Windows) {
			f := serFrac(&s.Windows[wi])
			if f < SerHotspotFrac {
				break
			}
			if f > maxFrac {
				maxFrac = f
			}
			wi++
		}
		hi := wi - 1
		site := ""
		siteShare := 0.0
		if in.Profile != nil {
			site, siteShare = worstSite(in.Profile, func(b profile.Blame) time.Duration { return b.EarlyWait })
		}
		sev := SevWarn
		if maxFrac >= SerHotspotFrac*2 {
			sev = SevCritical
		}
		w := lo
		f := Finding{
			Kind:     KindSerHotspot,
			Severity: sev,
			Score:    round4(maxFrac),
			Scope:    Scope{Site: site, Window: &w, FromNS: int64(s.Windows[lo].Start), ToNS: int64(s.Windows[hi].End)},
			Summary: fmt.Sprintf("serialization wait owns %.1f%% of rank time in windows %d..%d",
				round4(maxFrac)*100, lo, hi),
			Cause: "ranks park in blocking calls with no own wire traffic — dependency order, not bandwidth, serializes them",
			Knob:  "restructure the exchange to keep computation pending, or start transfers earlier",
			Evidence: []Evidence{
				{Metric: "max_ser_wait_frac", Value: round4(maxFrac), Threshold: SerHotspotFrac},
				{Metric: "hotspot_windows", Value: float64(hi - lo + 1)},
			},
		}
		if site != "" {
			f.Evidence = append(f.Evidence, Evidence{Metric: "early_wait_site_share", Value: round4(siteShare)})
		}
		out = append(out, f)
	}
	return out
}

// idleTailFindings looks at the trailing windows for an imbalanced
// idle tail: some ranks done and idling while others still work. The
// trigger is the per-rank idle-share spread, not idleness itself — a
// run where everyone finishes together has a short balanced tail.
func idleTailFindings(in *Input) []Finding {
	s := in.TimeRes
	if s == nil || len(s.Windows) < 2 || len(s.Ranks) < 2 {
		return nil
	}
	idleFrac := func(w *timeres.Slice) float64 {
		var idle, span time.Duration
		for i := range w.Cells {
			idle += w.Cells[i].Idle
			span += w.End - w.Start
		}
		return frac(idle, span)
	}
	// Walk the tail back while windows stay idle-heavy.
	lo := len(s.Windows)
	for lo > 0 && idleFrac(&s.Windows[lo-1]) >= IdleTailFrac {
		lo--
	}
	if lo == len(s.Windows) || lo == 0 {
		return nil // no tail, or the whole run idles (not a tail problem)
	}
	// Per-rank idle share over the tail, and its spread.
	tailSpan := s.Windows[len(s.Windows)-1].End - s.Windows[lo].Start
	idleBy := make(map[int]time.Duration, len(s.Ranks))
	for wi := lo; wi < len(s.Windows); wi++ {
		for i := range s.Windows[wi].Cells {
			c := &s.Windows[wi].Cells[i]
			idleBy[c.Rank] += c.Idle
		}
	}
	minFrac, maxFrac, idlest := 1.0, 0.0, -1
	for _, rank := range s.Ranks {
		f := frac(idleBy[rank], tailSpan)
		if f < minFrac {
			minFrac = f
		}
		if f > maxFrac || (f == maxFrac && (idlest < 0 || rank < idlest)) {
			maxFrac, idlest = f, rank
		}
	}
	spread := maxFrac - minFrac
	if spread < IdleTailSpread {
		return nil
	}
	sev := SevWarn
	if spread >= 2*IdleTailSpread {
		sev = SevCritical
	}
	r := idlest
	return []Finding{{
		Kind:     KindIdleTail,
		Severity: sev,
		Score:    round4(spread),
		Scope:    Scope{Rank: &r, FromNS: int64(s.Windows[lo].Start), ToNS: int64(s.Windows[len(s.Windows)-1].End)},
		Summary: fmt.Sprintf("imbalanced idle tail over the last %d window(s): rank %d idles %.1f%% while the busiest idles %.1f%%",
			len(s.Windows)-lo, idlest, round4(maxFrac)*100, round4(minFrac)*100),
		Cause: "work is unevenly tailed: some ranks finish and park while others still drain communication",
		Knob:  "rebalance the final iterations, or overlap the drain with the tail ranks' remaining work",
		Evidence: []Evidence{
			{Metric: "tail_windows", Value: float64(len(s.Windows) - lo)},
			{Metric: "idle_spread", Value: round4(spread), Threshold: IdleTailSpread},
			{Metric: "max_idle_frac", Value: round4(maxFrac), Threshold: IdleTailFrac},
			{Metric: "min_idle_frac", Value: round4(minFrac)},
		},
	}}
}

func frac(num, den time.Duration) float64 {
	if den <= 0 {
		return 0
	}
	return float64(num) / float64(den)
}
