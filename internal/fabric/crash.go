package fabric

import (
	"fmt"
	"time"

	"ovlp/internal/trace"
	"ovlp/internal/vtime"
)

// This file implements crash-stop node failures. A CrashPlan names
// nodes that die at a virtual time (absolute, or anchored to a labelled
// chaos event from the FaultPlan schedule so outages and crashes
// correlate). From its crash instant a node's NIC is dead: posted work
// requests are swallowed (no CQE, nothing leaves the node), packets
// addressed to it vanish at the NIC, and — crucially — it stops
// generating hardware acknowledgments, so the software reliability
// layer's retry exhaustion becomes the failure-detection primitive.
// Packets already in flight when the node dies still deliver (the
// network does not recall them), which is exactly the ambiguity a
// real detector faces.

// Crash describes the crash-stop death of one node.
type Crash struct {
	// Node is the node that dies.
	Node NodeID
	// At is the absolute crash time. Ignored when OnEvent is set.
	At vtime.Time
	// OnEvent, when non-empty, anchors the crash to the activation time
	// of the FaultPlan schedule event with that Label, so a crash can be
	// correlated with an existing chaos event (a rack outage that also
	// takes a node down). The fault plan must be installed first.
	OnEvent string
	// Delay is added to the anchor time (At or the event activation).
	Delay time.Duration
}

// CrashPlan is a complete description of crash-stop failures for one
// run. The zero value (and nil) kills nothing.
type CrashPlan struct {
	Crashes []Crash
}

// Active reports whether the plan kills any node.
func (p *CrashPlan) Active() bool { return p != nil && len(p.Crashes) > 0 }

// Validate checks the plan's internal consistency (node bounds are
// checked against the fabric in SetCrashes).
func (p *CrashPlan) Validate() error {
	if p == nil {
		return nil
	}
	seen := make(map[NodeID]bool)
	for i, c := range p.Crashes {
		if c.OnEvent == "" && c.At < 0 {
			return fmt.Errorf("fabric: crash %d: negative time %v", i, c.At)
		}
		if c.Delay < 0 {
			return fmt.Errorf("fabric: crash %d: negative delay %v", i, c.Delay)
		}
		if seen[c.Node] {
			return fmt.Errorf("fabric: crash %d: node %d crashes twice", i, c.Node)
		}
		seen[c.Node] = true
	}
	return nil
}

// CrashStats counts the effects of crash-stop failures during a run.
type CrashStats struct {
	// Crashed is the number of nodes that died.
	Crashed int
	// SwallowedTx counts work requests posted by a dead NIC (no CQE,
	// nothing transmitted).
	SwallowedTx int
	// DroppedRx counts packets that arrived at a dead NIC and vanished
	// unacknowledged.
	DroppedRx int
}

// NodeCrashedError reports that a node suffered a crash-stop failure.
// It is the panic value delivered to the node's procs (via
// vtime.Proc.Kill) so a library's abort handler can distinguish a
// modelled crash from a software failure.
type NodeCrashedError struct {
	Node NodeID
	At   vtime.Time
}

func (e *NodeCrashedError) Error() string {
	return fmt.Sprintf("fabric: node %d crashed at t=%v", e.Node, e.At)
}

// SetCrashes installs a crash plan; call before the simulation starts,
// and after SetFaults when crashes anchor to labelled chaos events. At
// each crash instant the fabric marks the NIC dead, emits a "crash"
// trace instant on its track, and invokes the OnCrash callback (in
// event context) so the hosting layer can kill the node's procs.
func (f *Fabric) SetCrashes(plan *CrashPlan) error {
	if !plan.Active() {
		return nil
	}
	if f.sim.IsReal() {
		return fmt.Errorf("fabric: crash injection needs a virtual-clock run (deterministic scheduling); use -backend virtual")
	}
	if err := plan.Validate(); err != nil {
		return err
	}
	if f.crashAt == nil {
		f.crashAt = make(map[NodeID]vtime.Time)
	}
	for i, c := range plan.Crashes {
		if int(c.Node) < 0 || int(c.Node) >= len(f.nics) {
			return fmt.Errorf("fabric: crash %d names node %d outside [0, %d)", i, c.Node, len(f.nics))
		}
		at := c.At
		if c.OnEvent != "" {
			at = -1
			if f.faults != nil {
				for j := range f.faults.plan.Schedule {
					if f.faults.plan.Schedule[j].Label == c.OnEvent {
						at = f.faults.plan.Schedule[j].At
						break
					}
				}
			}
			if at < 0 {
				return fmt.Errorf("fabric: crash %d: no schedule event labelled %q (install the fault plan first)", i, c.OnEvent)
			}
		}
		at = at.Add(c.Delay)
		node := c.Node
		f.crashAt[node] = at
		f.sim.After(at.Sub(f.sim.Now()), func() {
			f.crashStats.Crashed++
			f.nicTrack(node).Instant("crash", "node-dead", f.sim.Now(), trace.Args{ID: uint64(node)})
			if f.tr != nil {
				f.tr.Metrics().Counter("fabric.crashes").Inc()
			}
			if f.onCrash != nil {
				f.onCrash(node)
			}
		})
	}
	return nil
}

// OnCrash registers fn to be invoked, in simulation event context, at
// the instant each crashed node dies. The hosting layer uses it to kill
// the node's procs. fn must not block.
func (f *Fabric) OnCrash(fn func(NodeID)) { f.onCrash = fn }

// CrashStats returns the crash-effect counters.
func (f *Fabric) CrashStats() CrashStats { return f.crashStats }

// CrashTimes returns the resolved crash instant of every node the plan
// kills (nil when no plan is active). The map is shared; do not modify.
func (f *Fabric) CrashTimes() map[NodeID]vtime.Time { return f.crashAt }

// crashed reports whether node n is dead at time t.
func (f *Fabric) crashed(n NodeID, t vtime.Time) bool {
	if f.crashAt == nil {
		return false
	}
	at, ok := f.crashAt[n]
	return ok && t >= at
}
