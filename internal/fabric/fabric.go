// Package fabric models a user-level networking fabric in the style of
// InfiniBand verbs, on top of the vtime simulation kernel.
//
// Each node owns a NIC with a DMA engine, a completion queue (CQ) and
// an inbox of arrived packets. The defining property reproduced here —
// the one the paper's measurement framework exists to cope with — is
// that data transfer is initiated and progressed by the NIC, not the
// host: once a work request is posted, the wire transfer proceeds in
// the background in virtual time, and the host learns about it only by
// polling the CQ or inbox.
//
// Three operations are provided, mirroring the primitives the paper's
// protocols are built from:
//
//   - Send: a channel send carrying a library-defined payload,
//     delivered to the destination inbox (used for control packets and
//     eager data).
//   - RDMAWrite: one-sided write; the destination host is not involved
//     unless an immediate payload is attached, which lands in its inbox
//     after the data.
//   - RDMARead: one-sided read; the remote NIC serves the data without
//     any remote host involvement.
//
// The fabric keeps a ground-truth log of the physical transfer
// interval of every user-data operation. Real hardware cannot offer
// this; the simulator uses it to validate the instrumentation's
// min/max overlap bounds in tests.
package fabric

import (
	"fmt"
	"sync"
	"time"

	"ovlp/internal/trace"
	"ovlp/internal/vtime"
)

// NodeID identifies a node (and its NIC) in the fabric.
type NodeID int

// OpKind distinguishes the verb that produced a completion.
type OpKind int

const (
	OpSend OpKind = iota
	OpRDMAWrite
	OpRDMARead
)

func (k OpKind) String() string {
	switch k {
	case OpSend:
		return "send"
	case OpRDMAWrite:
		return "rdma-write"
	case OpRDMARead:
		return "rdma-read"
	}
	return "invalid"
}

// CQStatus is the completion status of a work request.
type CQStatus int

const (
	// StatusOK means the request completed successfully.
	StatusOK CQStatus = iota
	// StatusRetryExceeded means a reliable-transport operation (RDMA
	// read/write) failed after the HCA's link-level retries; no data
	// moved. Surfaced only under an active FaultPlan.
	StatusRetryExceeded
)

func (s CQStatus) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusRetryExceeded:
		return "retry-exceeded"
	}
	return "invalid"
}

// CQE is a completion-queue entry: the NIC's notification that a
// locally posted work request has completed.
//
// Start and End carry the NIC's hardware time-stamps for the physical
// transfer interval. Real HCAs of the paper's era could not expose
// these (the gap the bounds algorithm exists to bridge); libraries
// built for precise characterization may consume them (see
// mpi.Config.HWTimestamps), implementing the refinement the paper
// names as future work.
type CQE struct {
	WRID   uint64 // work-request id returned by the posting call
	Kind   OpKind
	Status CQStatus
	XferID uint64 // transfer id given at post time (0 if none)
	Size   int    // payload bytes
	Start  vtime.Time
	End    vtime.Time
}

// Packet is a message that arrived at a node: a Send payload or the
// immediate notification of a remote RDMA write. Start and End are the
// NIC's hardware time-stamps of the physical transfer (see CQE).
type Packet struct {
	From    NodeID
	Kind    OpKind // OpSend or OpRDMAWrite (immediate)
	Size    int    // payload bytes carried
	XferID  uint64
	Seq     uint64 // reliable-delivery sequence number (0 = unsequenced)
	Payload any    // library-defined header or body descriptor
	Start   vtime.Time
	End     vtime.Time
}

// CostModel parameterizes the timing of the fabric. The defaults
// returned by DefaultCostModel approximate the paper's platform: an
// 8 Gbit/s InfiniBand network with Mellanox MT23108 HCAs on PCI-X and
// 2.4 GHz Xeon hosts.
type CostModel struct {
	// LinkLatency is the one-way wire + switch propagation delay.
	LinkLatency time.Duration
	// Bandwidth is the per-link bandwidth in bytes per second.
	Bandwidth float64
	// PostOverhead is the host CPU cost of posting one work request.
	PostOverhead time.Duration
	// PollOverhead is the host CPU cost of one CQ/inbox poll.
	PollOverhead time.Duration
	// DMAStartup is the NIC-side delay between a post and the wire
	// transfer beginning (descriptor fetch, doorbell processing).
	DMAStartup time.Duration
	// PacketOverhead is the fixed per-message wire cost (headers,
	// CRC), added to the serialization time of every transfer.
	PacketOverhead time.Duration
	// MemCopyBandwidth is the host memcpy bandwidth in bytes per
	// second, used by libraries for bounce-buffer copies.
	MemCopyBandwidth float64
	// RegBase and RegPerPage model memory registration (pinning):
	// a fixed cost plus a per-4KiB-page cost, charged to the host by
	// libraries that pin buffers on the fly.
	RegBase    time.Duration
	RegPerPage time.Duration
}

// DefaultCostModel returns parameters approximating the paper's
// testbed (see package comment).
func DefaultCostModel() CostModel {
	return CostModel{
		LinkLatency:      3 * time.Microsecond,
		Bandwidth:        900e6, // ~7.2 Gbit/s effective on the 8 Gbit/s link
		PostOverhead:     250 * time.Nanosecond,
		PollOverhead:     100 * time.Nanosecond,
		DMAStartup:       500 * time.Nanosecond,
		PacketOverhead:   200 * time.Nanosecond,
		MemCopyBandwidth: 1.5e9,
		RegBase:          25 * time.Microsecond,
		RegPerPage:       700 * time.Nanosecond,
	}
}

// Wire returns the serialization time of size bytes on the link.
func (c CostModel) Wire(size int) time.Duration {
	return c.PacketOverhead + time.Duration(float64(size)/c.Bandwidth*1e9)
}

// Copy returns the host memcpy time for size bytes.
func (c CostModel) Copy(size int) time.Duration {
	return time.Duration(float64(size) / c.MemCopyBandwidth * 1e9)
}

// RegCost returns the cost of registering (pinning) size bytes.
func (c CostModel) RegCost(size int) time.Duration {
	pages := (size + 4095) / 4096
	return c.RegBase + time.Duration(pages)*c.RegPerPage
}

// TransferTime returns the end-to-end time of moving size bytes
// between two hosts once the transfer starts: serialization plus
// propagation. This is what an a-priori ping-pong characterization
// observes per direction.
func (c CostModel) TransferTime(size int) time.Duration {
	return c.Wire(size) + c.LinkLatency
}

// Transfer is a ground-truth record of one physical user-data
// transfer: the interval during which the payload actually occupied
// the wire, as only the simulator can know it.
type Transfer struct {
	XferID uint64
	Src    NodeID // node whose NIC sourced the data
	Dst    NodeID
	Size   int
	Start  vtime.Time // wire transfer begins
	End    vtime.Time // last byte arrives at Dst
	// Phase is the protocol-phase tag the communication library
	// attached via TagXfer ("" when untagged).
	Phase string
}

// Fabric is a set of NICs connected by a full-crossbar switch with
// per-NIC egress serialization: a NIC transmits one payload at a time,
// so concurrent transfers from one node queue behind each other, while
// transfers from different nodes proceed in parallel.
type Fabric struct {
	sim   *vtime.Sim
	cost  CostModel
	nics  []*NIC
	xseq  uint64
	wrseq uint64
	truth []Transfer

	faults    *faultState       // nil on a perfect network
	truthSeen map[seenKey]bool  // sequenced deliveries already recorded
	phases    map[uint64]string // xfer id -> protocol-phase tag

	crashAt    map[NodeID]vtime.Time // crash-stop plan: node -> death instant
	crashStats CrashStats
	onCrash    func(NodeID)

	tr *trace.Tracer // nil = untraced

	// Real-clock backend (see real.go): per-NIC egress goroutines,
	// nil on virtual sims.
	rnics  []*realNIC
	realWG sync.WaitGroup
}

// New creates a fabric of n nodes. On a real-clock sim the fabric
// starts one egress goroutine per NIC; call Shutdown when the run is
// over to stop them.
func New(sim *vtime.Sim, n int, cost CostModel) *Fabric {
	f := &Fabric{sim: sim, cost: cost, truthSeen: make(map[seenKey]bool)}
	f.nics = make([]*NIC, n)
	for i := range f.nics {
		f.nics[i] = &NIC{fab: f, id: NodeID(i)}
	}
	if sim.IsReal() {
		f.startReal()
	}
	return f
}

// Cost returns the fabric's cost model.
func (f *Fabric) Cost() CostModel { return f.cost }

// SetFaults installs a fault plan; call before the simulation starts.
// A nil or inactive plan leaves the fabric perfect (and on the exact
// pre-fault code path). The plan is validated, including that every
// configured link and stall names an existing node.
func (f *Fabric) SetFaults(plan *FaultPlan) error {
	if !plan.Active() {
		return nil
	}
	if f.sim.IsReal() {
		return fmt.Errorf("fabric: fault injection needs a virtual-clock run (deterministic scheduling); use -backend virtual")
	}
	if err := plan.Validate(); err != nil {
		return err
	}
	for l := range plan.Links {
		if int(l.Src) < 0 || int(l.Src) >= len(f.nics) || int(l.Dst) < 0 || int(l.Dst) >= len(f.nics) {
			return fmt.Errorf("fabric: fault link %d->%d names a node outside [0, %d)", l.Src, l.Dst, len(f.nics))
		}
	}
	for i, w := range plan.Stalls {
		if int(w.Node) < 0 || int(w.Node) >= len(f.nics) {
			return fmt.Errorf("fabric: stall window %d names node %d outside [0, %d)", i, w.Node, len(f.nics))
		}
	}
	for i := range plan.Schedule {
		ev := &plan.Schedule[i]
		for l := range ev.Links {
			if int(l.Src) < 0 || int(l.Src) >= len(f.nics) || int(l.Dst) < 0 || int(l.Dst) >= len(f.nics) {
				return fmt.Errorf("fabric: %s link %d->%d names a node outside [0, %d)",
					ev.name(i), l.Src, l.Dst, len(f.nics))
			}
		}
		for _, n := range ev.Nodes {
			if int(n) < 0 || int(n) >= len(f.nics) {
				return fmt.Errorf("fabric: %s names node %d outside [0, %d)", ev.name(i), n, len(f.nics))
			}
		}
	}
	f.faults = newFaultState(*plan)
	return nil
}

// FaultStats returns the injected-fault counters (zero value when no
// plan is active).
func (f *Fabric) FaultStats() FaultStats {
	if f.faults == nil {
		return FaultStats{}
	}
	return f.faults.stats
}

// SetTrace attaches a tracer (nil to detach). Every ground-truth
// transfer then emits a wire span on the source NIC's track — exactly
// the oracle intervals, so a trace shows true wire activity against
// host-observed call time — and fault injections and reliable-delivery
// activity emit instants. NIC-side emissions cost nothing in virtual
// time: they model the free visibility only the simulator has.
func (f *Fabric) SetTrace(t *trace.Tracer) { f.tr = t }

// nicTrack returns node id's trace track (nil when untraced).
func (f *Fabric) nicTrack(id NodeID) *trace.Track {
	if f.tr == nil {
		return nil
	}
	return f.tr.Track(trace.GroupNIC, int(id), fmt.Sprintf("nic%d", id))
}

// Nodes returns the number of nodes.
func (f *Fabric) Nodes() int { return len(f.nics) }

// NIC returns node id's network interface.
func (f *Fabric) NIC(id NodeID) *NIC {
	if int(id) < 0 || int(id) >= len(f.nics) {
		panic(fmt.Sprintf("fabric: no such node %d (valid nodes are 0..%d)", id, len(f.nics)-1))
	}
	return f.nics[id]
}

// NewXferID allocates a fresh nonzero transfer id, used to correlate
// library instrumentation with ground truth.
func (f *Fabric) NewXferID() uint64 {
	f.xseq++
	return f.xseq
}

// TagXfer labels transfer id with the protocol phase that produced it
// ("eager", "pipelined-frag", "direct-read", ...). The tag rides on
// the ground-truth log entries and the exported wire spans; tagging an
// id that never reaches the wire (a receiver-side virtual transfer) is
// harmless.
func (f *Fabric) TagXfer(id uint64, phase string) {
	if id == 0 || phase == "" {
		return
	}
	if f.phases == nil {
		f.phases = make(map[uint64]string)
	}
	f.phases[id] = phase
}

// XferPhase returns the phase tag for transfer id ("" when untagged).
func (f *Fabric) XferPhase(id uint64) string { return f.phases[id] }

// Transfers returns the ground-truth log of all user-data transfers
// recorded so far, in completion order.
func (f *Fabric) Transfers() []Transfer { return f.truth }

func (f *Fabric) record(t Transfer) {
	if t.XferID != 0 {
		t.Phase = f.phases[t.XferID]
		f.truth = append(f.truth, t)
		if f.tr != nil {
			// The wire span is the oracle interval verbatim; tests assert
			// the trace's NIC spans equal Transfers() exactly.
			f.nicTrack(t.Src).Span("wire", "xfer", t.Start, t.End,
				trace.Args{Peer: int(t.Dst), Size: int64(t.Size), ID: t.XferID, Phase: t.Phase})
			m := f.tr.Metrics()
			m.Counter("fabric.transfers").Inc()
			m.Counter("fabric.wire_bytes").Add(int64(t.Size))
			m.Histogram("fabric.xfer_size", xferSizeBounds()).Observe(int64(t.Size))
		}
	}
}

// xferSizeBounds are the transfer-size histogram buckets, matching the
// default overlap bin bounds so the two views line up.
func xferSizeBounds() []int64 {
	return []int64{1 << 10, 8 << 10, 64 << 10, 512 << 10, 4 << 20}
}

// NIC is one node's network interface: a DMA engine plus completion
// and receive queues. All posting and polling methods must be called
// from the owning node's proc; they charge the corresponding host
// overheads to that proc.
type NIC struct {
	fab *Fabric
	id  NodeID

	cq    []CQE
	inbox []Packet

	// egressFree is the time at which the NIC's transmit engine
	// becomes idle; transfers posted earlier queue until then.
	egressFree vtime.Time

	notify func() // invoked (in event context) when cq or inbox gains an entry
}

// ID returns the NIC's node id.
func (n *NIC) ID() NodeID { return n.id }

// SetNotify registers fn to be called, in simulation event context,
// whenever a CQE or packet arrives at this NIC. Libraries use it to
// unpark a rank blocked inside a library call. fn must not block.
func (n *NIC) SetNotify(fn func()) { n.notify = fn }

func (n *NIC) wake() {
	if n.notify != nil {
		n.notify()
	}
}

func (n *NIC) pushCQE(e CQE) {
	n.cq = append(n.cq, e)
	n.wake()
}

func (n *NIC) pushPacket(p Packet) {
	n.inbox = append(n.inbox, p)
	n.wake()
}

// PollCQ charges one poll overhead to p and returns the oldest
// completion, or nil if the CQ is empty.
func (n *NIC) PollCQ(p *vtime.Proc) *CQE {
	p.Compute(n.fab.cost.PollOverhead)
	if len(n.cq) == 0 {
		return nil
	}
	e := n.cq[0]
	n.cq = n.cq[1:]
	return &e
}

// PollInbox charges one poll overhead to p and returns the oldest
// arrived packet, or nil if none.
func (n *NIC) PollInbox(p *vtime.Proc) *Packet {
	p.Compute(n.fab.cost.PollOverhead)
	if len(n.inbox) == 0 {
		return nil
	}
	pk := n.inbox[0]
	n.inbox = n.inbox[1:]
	return &pk
}

// Pending reports whether the NIC holds undelivered completions or
// packets; it costs nothing (used by wait loops before parking).
func (n *NIC) Pending() bool { return len(n.cq) > 0 || len(n.inbox) > 0 }

// reserveEgress occupies this NIC's transmit engine for the given wire
// time starting no earlier than earliest, and returns the interval
// during which the data is on the wire.
func (n *NIC) reserveEgress(earliest vtime.Time, wire time.Duration) (start, end vtime.Time) {
	start = earliest
	if n.egressFree > start {
		start = n.egressFree
	}
	end = start.Add(wire)
	n.egressFree = end
	return start, end
}

// Send posts a channel send of size payload bytes to dst. The host is
// charged PostOverhead. The payload lands in dst's inbox one link
// latency after serialization finishes; a CQE appears locally when the
// data has left the NIC. Returns the work-request id.
func (n *NIC) Send(p *vtime.Proc, dst NodeID, size int, xferID uint64, payload any) uint64 {
	return n.transmit(p, dst, OpSend, size, n.fab.cost.Wire(size), xferID, payload, true)
}

// RDMAWrite posts a one-sided write of size bytes to dst. If payload
// is non-nil it is delivered to dst's inbox as an immediate
// notification after the data arrives; otherwise the remote host
// observes nothing. Returns the work-request id.
func (n *NIC) RDMAWrite(p *vtime.Proc, dst NodeID, size int, xferID uint64, payload any) uint64 {
	return n.transmit(p, dst, OpRDMAWrite, size, n.fab.cost.Wire(size), xferID, payload, payload != nil)
}

// RDMAWriteStrided posts a vectored one-sided write of count segments
// of block bytes each: one work request, but each segment pays its own
// per-packet wire overhead, as non-unit-stride transfers do on real
// HCAs. Returns the work-request id.
func (n *NIC) RDMAWriteStrided(p *vtime.Proc, dst NodeID, count, block int, xferID uint64, payload any) uint64 {
	if count < 1 {
		panic("fabric: strided write needs at least one segment")
	}
	wire := time.Duration(count) * n.fab.cost.Wire(block)
	return n.transmit(p, dst, OpRDMAWrite, count*block, wire, xferID, payload, payload != nil)
}

func (n *NIC) transmit(p *vtime.Proc, dst NodeID, kind OpKind, size int, wire time.Duration, xferID uint64, payload any, deliver bool) uint64 {
	return n.transmitSeq(p, dst, kind, size, wire, xferID, payload, deliver, 0)
}

// transmitSeq is transmit with a reliable-delivery sequence number
// (0 = unsequenced). With no active fault plan it follows the exact
// pre-fault code path. Under faults: the egress start honours stall
// windows (a permanent stall swallows the request — no CQE, no
// delivery); the wire time honours degraded bandwidth; a dropped
// Send-class packet vanishes silently after an OK completion, while a
// dropped RDMA op surfaces as a StatusRetryExceeded completion;
// duplicates and jitter perturb delivery. Sequenced packets are
// acknowledged by the destination NIC hardware on every delivery.
func (n *NIC) transmitSeq(p *vtime.Proc, dst NodeID, kind OpKind, size int, wire time.Duration, xferID uint64, payload any, deliver bool, seq uint64) uint64 {
	f := n.fab
	p.Compute(f.cost.PostOverhead)
	f.wrseq++
	wr := f.wrseq
	if f.crashed(n.id, f.sim.Now()) {
		// Dead NIC: the post is swallowed — no CQE, nothing on the wire.
		f.crashStats.SwallowedTx++
		return wr
	}
	if f.rnics != nil {
		// Real clock: the transfer runs on goroutines really sleeping
		// the modelled times (faults and crashes are virtual-only and
		// were rejected at install).
		return n.transmitReal(dst, kind, size, wire, xferID, payload, deliver, seq, wr)
	}
	target := f.NIC(dst)
	earliest := f.sim.Now().Add(f.cost.DMAStartup)
	var drop, dup bool
	var jitter time.Duration
	if fs := f.faults; fs != nil {
		var blackhole bool
		earliest, blackhole = fs.stallAdjust(n.id, earliest)
		if blackhole {
			f.nicTrack(n.id).Instant("fault", "blackhole", f.sim.Now(),
				trace.Args{Peer: int(dst), Size: int64(size), ID: xferID})
			return wr
		}
		drop, dup, jitter = fs.decide(n.id, dst, kind == OpSend, f.sim.Now())
		wire = fs.scaleWire(n.id, dst, wire, f.sim.Now())
		if f.tr != nil {
			if drop {
				f.nicTrack(n.id).Instant("fault", "drop", f.sim.Now(),
					trace.Args{Peer: int(dst), Size: int64(size), ID: xferID})
			}
			if dup {
				f.nicTrack(n.id).Instant("fault", "dup", f.sim.Now(),
					trace.Args{Peer: int(dst), Size: int64(size), ID: xferID})
			}
			if jitter > 0 {
				f.nicTrack(n.id).Instant("fault", "jitter", f.sim.Now(),
					trace.Args{Peer: int(dst), Size: int64(size), ID: xferID, Detail: jitter.String()})
			}
		}
	}
	start, end := n.reserveEgress(earliest, wire)
	arrive := end.Add(f.cost.LinkLatency + jitter)
	src := n.id
	if drop && kind != OpSend {
		// Reliable-transport op: the HCA's retries are exhausted; the
		// failure surfaces as an error completion when the transfer
		// would have arrived. No data moved.
		f.sim.After(arrive.Sub(f.sim.Now()), func() {
			n.pushCQE(CQE{WRID: wr, Kind: kind, Status: StatusRetryExceeded,
				XferID: xferID, Size: size, Start: start, End: arrive})
		})
		return wr
	}
	f.sim.After(end.Sub(f.sim.Now()), func() {
		n.pushCQE(CQE{WRID: wr, Kind: kind, XferID: xferID, Size: size, Start: start, End: arrive})
	})
	if drop {
		// Unreliable datagram loss: the data left the NIC (hence the OK
		// completion above) and vanished in the network.
		return wr
	}
	f.sim.After(arrive.Sub(f.sim.Now()), func() {
		f.deliverAt(src, dst, target, kind, size, xferID, payload, deliver, seq, true, start, arrive)
	})
	if dup {
		// The copy trails the original by one link latency.
		dupArrive := arrive.Add(f.cost.LinkLatency)
		f.sim.After(dupArrive.Sub(f.sim.Now()), func() {
			f.deliverAt(src, dst, target, kind, size, xferID, payload, deliver, seq, false, start, dupArrive)
		})
	}
	return wr
}

// deliverAt runs at a packet's arrival instant on the destination:
// ground-truth recording (first delivery of a given (src, seq) only),
// inbox delivery, and hardware acknowledgment of sequenced packets.
func (f *Fabric) deliverAt(src, dst NodeID, target *NIC, kind OpKind, size int, xferID uint64, payload any, deliver bool, seq uint64, original bool, start, arrive vtime.Time) {
	if f.crashed(dst, arrive) {
		// The destination died: the bytes vanish at the dead NIC —
		// no ground truth (the data was never received), no inbox
		// delivery, and no hardware acknowledgment. The sender's
		// reliability layer will time out, which is how failures are
		// detected.
		f.crashStats.DroppedRx++
		return
	}
	first := original
	if seq != 0 {
		k := seenKey{src, seq}
		if f.truthSeen[k] {
			first = false
		} else {
			f.truthSeen[k] = true
		}
	}
	if first {
		f.record(Transfer{XferID: xferID, Src: src, Dst: dst, Size: size, Start: start, End: arrive})
	}
	if deliver {
		target.pushPacket(Packet{From: src, Kind: kind, Size: size, XferID: xferID, Seq: seq,
			Payload: payload, Start: start, End: arrive})
	}
	if seq != 0 {
		f.sendAck(dst, src, seq, start, arrive)
	}
}

// sendAck transmits the destination NIC's hardware acknowledgment of a
// sequenced packet back to the sender. Acks are tiny control frames:
// they bypass egress serialization, but they do cross the reverse link
// and are subject to its loss and jitter (an ack lost to the network is
// what forces a spurious — duplicate-suppressed — retransmission).
func (f *Fabric) sendAck(from, to NodeID, seq uint64, start, end vtime.Time) {
	var jitter time.Duration
	if fs := f.faults; fs != nil {
		if _, blackhole := fs.stallAdjust(from, f.sim.Now()); blackhole {
			return
		}
		var drop bool
		drop, _, jitter = fs.decide(from, to, false, f.sim.Now())
		if drop {
			f.nicTrack(from).Instant("fault", "ack-drop", f.sim.Now(),
				trace.Args{Peer: int(to), ID: seq})
			return
		}
	}
	arrive := f.sim.Now().Add(f.cost.Wire(0) + f.cost.LinkLatency + jitter)
	ackSrc := from
	f.sim.After(arrive.Sub(f.sim.Now()), func() {
		if f.crashed(to, arrive) {
			return // the original sender died before the ack landed
		}
		f.nics[to].pushPacket(Packet{From: ackSrc, Kind: OpSend,
			Payload: Ack{Seq: seq, Start: start, End: end}})
	})
}

// RDMARead posts a one-sided read of size bytes from src into local
// memory. The request travels to src, whose NIC serves the data with
// no host involvement there; a CQE appears locally when the last byte
// has arrived. Returns the work-request id.
func (n *NIC) RDMARead(p *vtime.Proc, src NodeID, size int, xferID uint64) uint64 {
	f := n.fab
	p.Compute(f.cost.PostOverhead)
	f.wrseq++
	wr := f.wrseq
	if f.crashed(n.id, f.sim.Now()) {
		f.crashStats.SwallowedTx++
		return wr
	}
	if f.rnics != nil {
		return n.rdmaReadReal(src, size, xferID, wr)
	}
	remote := f.NIC(src)
	// Request packet: DMA startup + a header-sized hop to src.
	reqArrive := f.sim.Now().Add(f.cost.DMAStartup + f.cost.Wire(0) + f.cost.LinkLatency)
	dst := n.id
	f.sim.After(reqArrive.Sub(f.sim.Now()), func() {
		if f.crashed(src, f.sim.Now()) {
			// The serving node is dead: the transport's retries exhaust
			// and the failure surfaces as an error completion at the
			// requester after a round trip. No data moved.
			f.crashStats.DroppedRx++
			errAt := f.sim.Now().Add(f.cost.Wire(0) + f.cost.LinkLatency)
			f.sim.After(errAt.Sub(f.sim.Now()), func() {
				n.pushCQE(CQE{WRID: wr, Kind: OpRDMARead, Status: StatusRetryExceeded,
					XferID: xferID, Size: size, Start: f.sim.Now(), End: f.sim.Now()})
			})
			return
		}
		// The remote NIC sources the data on its egress link. Faults are
		// modelled on this serve leg (the data direction src→dst): stall
		// windows on the serving NIC, degraded bandwidth and jitter on
		// the link, and loss as a reliable-transport failure —
		// StatusRetryExceeded at the requester, no data movement.
		serve := f.sim.Now()
		wire := f.cost.Wire(size)
		var drop bool
		var jitter time.Duration
		if fs := f.faults; fs != nil {
			var blackhole bool
			serve, blackhole = fs.stallAdjust(src, serve)
			if blackhole {
				f.nicTrack(src).Instant("fault", "blackhole", f.sim.Now(),
					trace.Args{Peer: int(dst), Size: int64(size), ID: xferID})
				return
			}
			drop, _, jitter = fs.decide(src, dst, false, f.sim.Now())
			wire = fs.scaleWire(src, dst, wire, f.sim.Now())
			if drop {
				f.nicTrack(src).Instant("fault", "drop", f.sim.Now(),
					trace.Args{Peer: int(dst), Size: int64(size), ID: xferID})
			}
		}
		start, end := remote.reserveEgress(serve, wire)
		arrive := end.Add(f.cost.LinkLatency + jitter)
		f.sim.After(arrive.Sub(f.sim.Now()), func() {
			if f.crashed(dst, arrive) {
				f.crashStats.DroppedRx++
				return // the requester died before the data landed
			}
			if drop {
				n.pushCQE(CQE{WRID: wr, Kind: OpRDMARead, Status: StatusRetryExceeded,
					XferID: xferID, Size: size, Start: start, End: arrive})
				return
			}
			f.record(Transfer{XferID: xferID, Src: src, Dst: dst, Size: size, Start: start, End: arrive})
			n.pushCQE(CQE{WRID: wr, Kind: OpRDMARead, XferID: xferID, Size: size, Start: start, End: arrive})
		})
	})
	return wr
}
