package fabric

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"ovlp/internal/vtime"
)

func twoNodes(t *testing.T) (*vtime.Sim, *Fabric) {
	t.Helper()
	sim := vtime.NewSim()
	return sim, New(sim, 2, DefaultCostModel())
}

func TestSendDeliversPayload(t *testing.T) {
	sim, f := twoNodes(t)
	src, dst := f.NIC(0), f.NIC(1)

	var got *Packet
	receiver := sim.Spawn("recv", func(p *vtime.Proc) {
		for got == nil {
			if q := dst.PollInbox(p); q != nil {
				got = q
				return
			}
			p.Park("recv")
		}
	})
	dst.SetNotify(func() { receiver.Unpark() })

	sim.Spawn("send", func(p *vtime.Proc) {
		src.Send(p, 1, 4096, f.NewXferID(), "hello")
	})
	sim.Run()

	if got == nil {
		t.Fatal("nothing delivered")
	}
	if got.Payload.(string) != "hello" || got.From != 0 || got.Size != 4096 {
		t.Fatalf("bad packet %+v", got)
	}
}

func TestSendLocalCompletionBeforeRemoteArrival(t *testing.T) {
	sim, f := twoNodes(t)
	src, dst := f.NIC(0), f.NIC(1)
	var cqeAt, arriveAt vtime.Time

	receiver := sim.Spawn("recv", func(p *vtime.Proc) {
		for {
			if q := dst.PollInbox(p); q != nil {
				arriveAt = p.Now()
				return
			}
			p.Park("recv")
		}
	})
	dst.SetNotify(func() { receiver.Unpark() })

	sender := sim.Spawn("send", func(p *vtime.Proc) {
		src.Send(p, 1, 64<<10, 0, struct{}{})
		for {
			if c := src.PollCQ(p); c != nil {
				cqeAt = p.Now()
				return
			}
			p.Park("send")
		}
	})
	src.SetNotify(func() { sender.Unpark() })
	sim.Run()

	if cqeAt == 0 || arriveAt == 0 {
		t.Fatal("events did not fire")
	}
	if cqeAt >= arriveAt {
		t.Errorf("local CQE at %v should precede remote arrival at %v (link latency)", cqeAt, arriveAt)
	}
}

func TestRDMAWriteWithoutImmediateIsInvisibleRemotely(t *testing.T) {
	sim, f := twoNodes(t)
	src, dst := f.NIC(0), f.NIC(1)
	sim.Spawn("send", func(p *vtime.Proc) {
		src.RDMAWrite(p, 1, 1<<20, f.NewXferID(), nil)
		for src.PollCQ(p) == nil {
			p.Sleep(10 * time.Microsecond)
		}
	})
	sim.Run()
	if dst.Pending() {
		t.Error("plain RDMA write must not notify the remote host")
	}
	if len(f.Transfers()) != 1 {
		t.Fatalf("ground truth has %d transfers, want 1", len(f.Transfers()))
	}
}

func TestRDMAReadPullsFromRemote(t *testing.T) {
	sim, f := twoNodes(t)
	reader := f.NIC(0)
	var doneAt vtime.Time
	sim.Spawn("read", func(p *vtime.Proc) {
		reader.RDMARead(p, 1, 512<<10, f.NewXferID())
		for {
			if c := reader.PollCQ(p); c != nil {
				if c.Kind != OpRDMARead {
					t.Errorf("completion kind %v", c.Kind)
				}
				doneAt = p.Now()
				return
			}
			p.Sleep(5 * time.Microsecond)
		}
	})
	sim.Run()

	cost := f.Cost()
	// Read needs request propagation + data serialization + return.
	minimum := cost.Wire(512<<10) + 2*cost.LinkLatency
	if doneAt.Duration() < minimum {
		t.Errorf("read completed in %v, physically needs at least %v", doneAt.Duration(), minimum)
	}
	tr := f.Transfers()[0]
	if tr.Src != 1 || tr.Dst != 0 {
		t.Errorf("truth direction wrong: %+v", tr)
	}
}

func TestEgressSerialization(t *testing.T) {
	// Two back-to-back sends from one NIC must serialize on its
	// egress: the second transfer starts no earlier than the first
	// ends.
	sim, f := twoNodes(t)
	src := f.NIC(0)
	sim.Spawn("send", func(p *vtime.Proc) {
		src.Send(p, 1, 256<<10, f.NewXferID(), nil)
		src.Send(p, 1, 256<<10, f.NewXferID(), nil)
	})
	sim.Run()
	trs := f.Transfers()
	if len(trs) != 2 {
		t.Fatalf("want 2 transfers, got %d", len(trs))
	}
	a, b := trs[0], trs[1]
	if a.Start > b.Start {
		a, b = b, a
	}
	if b.Start < a.End-vtime.Time(f.Cost().LinkLatency) {
		t.Errorf("second transfer started at %v before first left the wire at %v", b.Start, a.End)
	}
}

func TestDistinctSourcesDoNotSerialize(t *testing.T) {
	sim := vtime.NewSim()
	f := New(sim, 3, DefaultCostModel())
	for i := 0; i < 2; i++ {
		nic := f.NIC(NodeID(i))
		sim.Spawn("send", func(p *vtime.Proc) {
			nic.Send(p, 2, 1<<20, f.NewXferID(), nil)
		})
	}
	sim.Run()
	trs := f.Transfers()
	if len(trs) != 2 {
		t.Fatalf("want 2 transfers, got %d", len(trs))
	}
	// Both should be in flight concurrently: each starts before the
	// other ends.
	if trs[0].Start >= trs[1].End || trs[1].Start >= trs[0].End {
		t.Errorf("transfers from different NICs serialized: %+v / %+v", trs[0], trs[1])
	}
}

func TestCostModelArithmetic(t *testing.T) {
	c := CostModel{
		LinkLatency:      time.Microsecond,
		Bandwidth:        1e9, // 1 GB/s
		PacketOverhead:   100 * time.Nanosecond,
		MemCopyBandwidth: 2e9,
		RegBase:          10 * time.Microsecond,
		RegPerPage:       time.Microsecond,
	}
	if got := c.Wire(1000); got != 100*time.Nanosecond+time.Microsecond {
		t.Errorf("Wire(1000) = %v", got)
	}
	if got := c.Copy(2000); got != time.Microsecond {
		t.Errorf("Copy(2000) = %v", got)
	}
	if got := c.RegCost(4096); got != 11*time.Microsecond {
		t.Errorf("RegCost(4096) = %v", got)
	}
	if got := c.RegCost(4097); got != 12*time.Microsecond {
		t.Errorf("RegCost(4097) = %v (two pages)", got)
	}
	if got := c.TransferTime(1000); got != c.Wire(1000)+c.LinkLatency {
		t.Errorf("TransferTime = %v", got)
	}
}

func TestPollChargesOverhead(t *testing.T) {
	sim, f := twoNodes(t)
	nic := f.NIC(0)
	var elapsed time.Duration
	sim.Spawn("poll", func(p *vtime.Proc) {
		start := p.Now()
		for i := 0; i < 10; i++ {
			nic.PollCQ(p)
		}
		elapsed = p.Now().Sub(start)
	})
	sim.Run()
	if want := 10 * f.Cost().PollOverhead; elapsed != want {
		t.Errorf("10 polls took %v, want %v", elapsed, want)
	}
}

func TestOpKindStrings(t *testing.T) {
	if OpSend.String() != "send" || OpRDMAWrite.String() != "rdma-write" || OpRDMARead.String() != "rdma-read" {
		t.Fatal("OpKind labels wrong")
	}
}

func TestBadNodePanics(t *testing.T) {
	_, f := twoNodes(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range node")
		}
	}()
	f.NIC(7)
}

// Property: every recorded transfer has a positive-duration interval
// of at least the wire time, arrival order is causally consistent, and
// transfers sourced by one NIC never overlap each other on its egress
// link.
func TestQuickTruthIntervals(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sim := vtime.NewSim()
		nodes := rng.Intn(4) + 2
		fab := New(sim, nodes, DefaultCostModel())
		for n := 0; n < nodes; n++ {
			nic := fab.NIC(NodeID(n))
			count := rng.Intn(8)
			gaps := make([]time.Duration, count)
			sizes := make([]int, count)
			dsts := make([]int, count)
			for i := range gaps {
				gaps[i] = time.Duration(rng.Intn(1000)) * time.Microsecond
				sizes[i] = rng.Intn(1 << 20)
				dsts[i] = rng.Intn(nodes)
			}
			n := n
			sim.Spawn("sender", func(p *vtime.Proc) {
				for i := range gaps {
					p.Compute(gaps[i])
					dst := dsts[i]
					if dst == n {
						dst = (dst + 1) % nodes
					}
					nic.RDMAWrite(p, NodeID(dst), sizes[i], fab.NewXferID(), nil)
				}
			})
		}
		sim.Run()

		cost := fab.Cost()
		bySource := map[NodeID][]Transfer{}
		for _, tr := range fab.Transfers() {
			if tr.End <= tr.Start {
				return false
			}
			if tr.End.Sub(tr.Start) < cost.Wire(tr.Size) {
				return false
			}
			bySource[tr.Src] = append(bySource[tr.Src], tr)
		}
		for _, list := range bySource {
			for i := 0; i < len(list); i++ {
				for j := i + 1; j < len(list); j++ {
					a, b := list[i], list[j]
					aEnd := a.End - vtime.Time(cost.LinkLatency) // wire occupancy excludes propagation
					bEnd := b.End - vtime.Time(cost.LinkLatency)
					if a.Start < bEnd && b.Start < aEnd {
						return false // egress overlap
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
