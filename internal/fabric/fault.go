package fabric

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"ovlp/internal/vtime"
)

// This file implements deterministic fault injection. A FaultPlan
// describes, per directed link and per NIC, how the fabric misbehaves:
// packet loss, duplication, delivery jitter, degraded bandwidth, and
// DMA-engine stall windows. All randomness comes from one PRNG seeded
// by the plan, consumed in simulation event order, so a given (plan,
// program) pair reproduces the same run bit-for-bit.
//
// Faults manifest according to the op class:
//
//   - Send-class packets behave like unreliable datagrams: a dropped
//     packet vanishes silently (the sender's CQE still reports OK — the
//     data did leave the NIC), and a duplicated packet arrives twice.
//     Recovering is the job of the software reliability layer
//     (Reliable), exactly as on a lossy fabric.
//   - RDMA data operations model a reliable-connected transport: the
//     HCA's own link-level retries are outside the simulation, so a
//     "dropped" RDMA op surfaces as a completion with
//     StatusRetryExceeded and no data movement; the library reposts
//     with backoff.
//   - Stalls freeze a NIC's DMA egress engine for a window of virtual
//     time: transfers posted during the window start late. A window
//     ending at Forever blackholes the NIC — posted work requests
//     never complete and nothing leaves the node.

// Link identifies a directed src→dst link in the full crossbar.
type Link struct {
	Src, Dst NodeID
}

// Forever marks a stall window that never ends: the NIC is wedged from
// the window's start for the rest of the run.
const Forever = vtime.Time(math.MaxInt64)

// LinkFaults configures misbehaviour of one directed link.
type LinkFaults struct {
	// DropRate is the probability in [0,1] that a packet is lost.
	DropRate float64
	// DupRate is the probability in [0,1] that a delivered packet
	// arrives a second time (Send-class packets only).
	DupRate float64
	// DropEvery, when positive, overrides DropRate with a deterministic
	// pattern: every DropEvery-th packet on the link is dropped
	// (counting from 1, so DropEvery=2 drops packets 2, 4, 6, ...).
	// Useful for tests that need an exact loss schedule.
	DropEvery int
	// JitterMax adds a uniform extra delivery delay in [0, JitterMax)
	// to each packet.
	JitterMax time.Duration
	// BandwidthFactor scales the link's effective bandwidth: 0.5 halves
	// it (doubling serialization time). Zero or 1 leaves it nominal.
	BandwidthFactor float64
}

func (l LinkFaults) active() bool {
	return l.DropRate > 0 || l.DupRate > 0 || l.DropEvery > 0 ||
		l.JitterMax > 0 || (l.BandwidthFactor != 0 && l.BandwidthFactor != 1)
}

func (l LinkFaults) validate(what string) error {
	if l.DropRate < 0 || l.DropRate > 1 {
		return fmt.Errorf("fabric: %s: DropRate %v outside [0, 1]", what, l.DropRate)
	}
	if l.DupRate < 0 || l.DupRate > 1 {
		return fmt.Errorf("fabric: %s: DupRate %v outside [0, 1]", what, l.DupRate)
	}
	if l.DropEvery < 0 {
		return fmt.Errorf("fabric: %s: DropEvery %d is negative", what, l.DropEvery)
	}
	if l.JitterMax < 0 {
		return fmt.Errorf("fabric: %s: JitterMax %v is negative", what, l.JitterMax)
	}
	if l.BandwidthFactor < 0 || l.BandwidthFactor > 1 {
		return fmt.Errorf("fabric: %s: BandwidthFactor %v outside [0, 1] (0 means nominal)", what, l.BandwidthFactor)
	}
	return nil
}

// StallWindow freezes one NIC's DMA egress engine during [Start, End):
// work posted inside the window begins transmitting only at End. An End
// of Forever blackholes the NIC from Start on.
type StallWindow struct {
	Node       NodeID
	Start, End vtime.Time
}

// FaultEvent is one timed entry of a chaos schedule: a fault
// configuration that activates at virtual time At and (optionally)
// clears at Clear. While active, the event overlays the plan's static
// configuration — later schedule entries overlay earlier ones — so
// cascading failures, correlated rack outages and recovery windows are
// all expressible as sequences of events.
//
// Scope: an event must name at least one of Default, Links or Nodes.
// An overlay *replaces* the link's whole LinkFaults while active, so an
// event carrying a zero configuration models a repair window (the
// scoped links go back to a perfect network until Clear).
type FaultEvent struct {
	// Label names the event in descriptions and scenario reports
	// ("rack0-outage", "cascade-2"). Optional.
	Label string
	// At is the activation time. Events with At == 0 are active from
	// the first instant of the run.
	At vtime.Time
	// Clear, when positive, deactivates the event at that time; zero
	// means the event stays active for the rest of the run. Clear must
	// be strictly after At (Validate rejects clear-before-activate).
	Clear vtime.Time
	// Ramp, when positive, fades the event's bandwidth degradation in
	// linearly over [At, At+Ramp): the effective BandwidthFactor moves
	// from nominal (1) at At to the configured value at At+Ramp. The
	// other knobs (drop, dup, jitter) switch on at At regardless.
	Ramp time.Duration
	// Default, when non-nil, replaces the plan's Default link faults
	// while the event is active.
	Default *LinkFaults
	// Links replaces the configuration of specific directed links
	// while the event is active.
	Links map[Link]LinkFaults
	// Nodes lists a correlated outage group — the nodes behind one
	// rack or switch. While the event is active, NodeFaults applies to
	// every link whose source or destination is in the group, so the
	// whole group fails and recovers together.
	Nodes []NodeID
	// NodeFaults is the configuration applied to the group's links.
	NodeFaults LinkFaults
}

// activeAt reports whether the event is live at time t.
func (e *FaultEvent) activeAt(t vtime.Time) bool {
	if t < e.At {
		return false
	}
	return e.Clear == 0 || t < e.Clear
}

// name renders the event for error messages.
func (e *FaultEvent) name(i int) string {
	if e.Label != "" {
		return fmt.Sprintf("schedule event %d (%s)", i, e.Label)
	}
	return fmt.Sprintf("schedule event %d", i)
}

func (e *FaultEvent) validate(i int) error {
	what := e.name(i)
	if e.At < 0 {
		return fmt.Errorf("fabric: %s: negative activation time %v", what, e.At)
	}
	if e.Clear != 0 && e.Clear <= e.At {
		return fmt.Errorf("fabric: %s: clears at %v, not after activation %v (clear-before-activate)",
			what, e.Clear, e.At)
	}
	if e.Ramp < 0 {
		return fmt.Errorf("fabric: %s: negative ramp %v", what, e.Ramp)
	}
	if e.Default == nil && len(e.Links) == 0 && len(e.Nodes) == 0 {
		return fmt.Errorf("fabric: %s: configures nothing (need Default, Links or Nodes)", what)
	}
	if e.Default != nil {
		if err := e.Default.validate(what + " Default"); err != nil {
			return err
		}
	}
	for l, lf := range e.Links {
		if err := lf.validate(fmt.Sprintf("%s link %d->%d", what, l.Src, l.Dst)); err != nil {
			return err
		}
		if l.Src == l.Dst {
			return fmt.Errorf("fabric: %s: link %d->%d is a self-loop", what, l.Src, l.Dst)
		}
	}
	if len(e.Nodes) > 0 {
		for _, n := range e.Nodes {
			if n < 0 {
				return fmt.Errorf("fabric: %s: negative node %d in group", what, n)
			}
		}
		if err := e.NodeFaults.validate(what + " NodeFaults"); err != nil {
			return err
		}
	}
	return nil
}

// FaultPlan is a complete, seeded description of fabric misbehaviour
// for one run. The zero value (and nil) is a perfect network.
type FaultPlan struct {
	// Seed seeds the fault PRNG; runs with equal seeds and plans are
	// bit-for-bit identical.
	Seed int64
	// Default applies to every link without a Links override.
	Default LinkFaults
	// Links overrides Default for specific directed links.
	Links map[Link]LinkFaults
	// Stalls lists DMA-engine stall windows.
	Stalls []StallWindow
	// Schedule is the timed chaos schedule: fault events that activate
	// and clear at virtual times, overlaying the static configuration
	// above while active.
	Schedule []FaultEvent
}

// Active reports whether the plan can perturb anything; an inactive
// plan leaves the fabric on the exact pre-fault code path (no PRNG
// draws, no acknowledgments, byte-identical results).
func (p *FaultPlan) Active() bool {
	if p == nil {
		return false
	}
	if p.Default.active() || len(p.Stalls) > 0 || len(p.Schedule) > 0 {
		return true
	}
	for _, lf := range p.Links {
		if lf.active() {
			return true
		}
	}
	return false
}

// Validate checks rates, factors and windows, returning a descriptive
// error for the first invalid parameter.
func (p *FaultPlan) Validate() error {
	if p == nil {
		return nil
	}
	if err := p.Default.validate("Default"); err != nil {
		return err
	}
	for l, lf := range p.Links {
		if err := lf.validate(fmt.Sprintf("link %d->%d", l.Src, l.Dst)); err != nil {
			return err
		}
		if l.Src == l.Dst {
			return fmt.Errorf("fabric: link %d->%d is a self-loop", l.Src, l.Dst)
		}
	}
	for i, w := range p.Stalls {
		if w.Start < 0 {
			return fmt.Errorf("fabric: stall window %d: negative start %v", i, w.Start)
		}
		if w.End <= w.Start {
			return fmt.Errorf("fabric: stall window %d: end %v not after start %v (use Forever for a permanent stall)", i, w.End, w.Start)
		}
	}
	for i := range p.Schedule {
		if err := p.Schedule[i].validate(i); err != nil {
			return err
		}
	}
	return nil
}

// FaultStats counts the faults actually injected during a run.
type FaultStats struct {
	Dropped    int // packets and RDMA ops lost
	Duplicated int // extra deliveries injected
	Jittered   int // packets delayed by jitter
	Stalled    int // transfers delayed by a finite stall window
	Blackholed int // work requests swallowed by a permanent stall
}

// faultState is the runtime form of a FaultPlan: the PRNG, per-link
// packet counters and injection statistics.
type faultState struct {
	plan      FaultPlan
	rng       *rand.Rand
	linkCount map[Link]int
	stats     FaultStats
}

func newFaultState(plan FaultPlan) *faultState {
	return &faultState{
		plan:      plan,
		rng:       rand.New(rand.NewSource(plan.Seed)),
		linkCount: make(map[Link]int),
	}
}

// effective resolves the src→dst link's fault configuration at time
// now: the base plan's per-link override or default, then every
// schedule event active at now overlays it in declaration order (later
// events win). The returned event index is the winning overlay (-1
// when the base configuration applies), so ramp scaling can find its
// activation time.
func (fs *faultState) effective(src, dst NodeID, now vtime.Time) (LinkFaults, int) {
	lf, ok := fs.plan.Links[Link{src, dst}]
	if !ok {
		lf = fs.plan.Default
	}
	win := -1
	for i := range fs.plan.Schedule {
		ev := &fs.plan.Schedule[i]
		if !ev.activeAt(now) {
			continue
		}
		if o, ok := ev.Links[Link{src, dst}]; ok {
			lf, win = o, i
			continue
		}
		if ev.touches(src, dst) {
			lf, win = ev.NodeFaults, i
			continue
		}
		if ev.Default != nil {
			lf, win = *ev.Default, i
		}
	}
	return lf, win
}

// touches reports whether the event's correlated node group contains
// either endpoint of the link.
func (e *FaultEvent) touches(src, dst NodeID) bool {
	for _, n := range e.Nodes {
		if n == src || n == dst {
			return true
		}
	}
	return false
}

// decide draws this packet's fate on the src→dst link at time now. The
// draws consumed depend only on the link's effective configuration —
// never on dupOK or the packet's kind — and calls happen in simulation
// event order, so the PRNG stream is reproducible. dupOK is false for
// reliable-transport ops (RDMA, acks): their hardware dedups in the
// transport layer, so an injected duplicate can never reach the
// application.
func (fs *faultState) decide(src, dst NodeID, dupOK bool, now vtime.Time) (drop, dup bool, jitter time.Duration) {
	lf, _ := fs.effective(src, dst, now)
	l := Link{src, dst}
	fs.linkCount[l]++
	if lf.DropEvery > 0 {
		drop = fs.linkCount[l]%lf.DropEvery == 0
	} else if lf.DropRate > 0 {
		drop = fs.rng.Float64() < lf.DropRate
	}
	if lf.DupRate > 0 {
		dup = fs.rng.Float64() < lf.DupRate && dupOK
	}
	if lf.JitterMax > 0 {
		jitter = time.Duration(fs.rng.Int63n(int64(lf.JitterMax)))
	}
	if drop {
		fs.stats.Dropped++
		dup = false
	} else if dup {
		fs.stats.Duplicated++
	}
	if jitter > 0 && !drop {
		fs.stats.Jittered++
	}
	return drop, dup, jitter
}

// scaleWire stretches a serialization time by the link's degraded
// bandwidth factor at time now. When the winning configuration comes
// from a ramping schedule event still inside its ramp, the factor is
// interpolated linearly from nominal toward the configured value.
func (fs *faultState) scaleWire(src, dst NodeID, wire time.Duration, now vtime.Time) time.Duration {
	lf, win := fs.effective(src, dst, now)
	f := lf.BandwidthFactor
	if f == 0 || f == 1 {
		return wire
	}
	if win >= 0 {
		if ev := &fs.plan.Schedule[win]; ev.Ramp > 0 {
			elapsed := now.Sub(ev.At)
			if elapsed < ev.Ramp {
				frac := float64(elapsed) / float64(ev.Ramp)
				f = 1 - (1-f)*frac
			}
		}
	}
	if f <= 0 || f >= 1 {
		return wire
	}
	return time.Duration(float64(wire) / f)
}

// stallAdjust returns the earliest time node's egress engine can start
// a transfer wanted at time t, and whether the engine is permanently
// wedged at t (blackholed).
func (fs *faultState) stallAdjust(node NodeID, t vtime.Time) (vtime.Time, bool) {
	// A finite window can push the start time into a later window, so
	// iterate to a fixpoint; windows are finitely many.
	for moved := true; moved; {
		moved = false
		for _, w := range fs.plan.Stalls {
			if w.Node != node || t < w.Start || t >= w.End {
				continue
			}
			if w.End == Forever {
				fs.stats.Blackholed++
				return t, true
			}
			t = w.End
			fs.stats.Stalled++
			moved = true
		}
	}
	return t, false
}
