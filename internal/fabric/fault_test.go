package fabric

import (
	"errors"
	"strings"
	"testing"
	"time"

	"ovlp/internal/vtime"
)

func TestFaultPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan FaultPlan
		want string
	}{
		{"negative drop", FaultPlan{Default: LinkFaults{DropRate: -0.1}}, "DropRate"},
		{"drop above one", FaultPlan{Default: LinkFaults{DropRate: 1.5}}, "DropRate"},
		{"negative dup", FaultPlan{Default: LinkFaults{DupRate: -1}}, "DupRate"},
		{"negative jitter", FaultPlan{Default: LinkFaults{JitterMax: -time.Microsecond}}, "JitterMax"},
		{"bandwidth above one", FaultPlan{Default: LinkFaults{BandwidthFactor: 2}}, "BandwidthFactor"},
		{"self loop", FaultPlan{Links: map[Link]LinkFaults{{1, 1}: {DropRate: 0.5}}}, "self-loop"},
		{"inverted window", FaultPlan{Stalls: []StallWindow{{Node: 0, Start: 100, End: 50}}}, "not after start"},
		{"negative window start", FaultPlan{Stalls: []StallWindow{{Node: 0, Start: -1, End: 50}}}, "negative start"},
	}
	for _, c := range cases {
		err := c.plan.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Validate() = %v, want error mentioning %q", c.name, err, c.want)
		}
	}
	good := FaultPlan{Seed: 1, Default: LinkFaults{DropRate: 0.1, JitterMax: time.Microsecond}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestFaultPlanActive(t *testing.T) {
	var nilPlan *FaultPlan
	if nilPlan.Active() {
		t.Fatal("nil plan is active")
	}
	if (&FaultPlan{Seed: 42}).Active() {
		t.Fatal("zero-rate plan is active")
	}
	if !(&FaultPlan{Default: LinkFaults{DropRate: 0.01}}).Active() {
		t.Fatal("dropping plan is inactive")
	}
	if !(&FaultPlan{Stalls: []StallWindow{{Node: 0, Start: 0, End: 10}}}).Active() {
		t.Fatal("stalling plan is inactive")
	}
}

func TestSetFaultsRejectsUnknownNodes(t *testing.T) {
	sim := vtime.NewSim()
	f := New(sim, 2, DefaultCostModel())
	err := f.SetFaults(&FaultPlan{Links: map[Link]LinkFaults{{0, 5}: {DropRate: 0.5}}})
	if err == nil || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("SetFaults = %v, want node-range error", err)
	}
	err = f.SetFaults(&FaultPlan{Stalls: []StallWindow{{Node: 9, Start: 0, End: 10}}})
	if err == nil || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("SetFaults = %v, want node-range error", err)
	}
}

func TestNICPanicNamesValidRange(t *testing.T) {
	sim := vtime.NewSim()
	f := New(sim, 4, DefaultCostModel())
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic for unknown node")
		}
		if s := r.(string); !strings.Contains(s, "0..3") {
			t.Fatalf("panic %q does not name the valid range", s)
		}
	}()
	f.NIC(7)
}

// TestDropEveryIsDeterministic checks the counter-based loss schedule:
// every 2nd packet on the link vanishes, with OK completions throughout
// (Send-class loss is silent).
func TestDropEveryIsDeterministic(t *testing.T) {
	sim := vtime.NewSim()
	f := New(sim, 2, DefaultCostModel())
	if err := f.SetFaults(&FaultPlan{Default: LinkFaults{DropEvery: 2}}); err != nil {
		t.Fatal(err)
	}
	var got []int
	rx := sim.Spawn("rx", func(p *vtime.Proc) {
		for p.Now() < vtime.Time(2*time.Millisecond) {
			for pkt := f.NIC(1).PollInbox(p); pkt != nil; pkt = f.NIC(1).PollInbox(p) {
				got = append(got, pkt.Payload.(int))
			}
			p.Sleep(100 * time.Microsecond)
		}
	})
	_ = rx
	sim.Spawn("tx", func(p *vtime.Proc) {
		for i := 1; i <= 6; i++ {
			f.NIC(0).Send(p, 1, 64, 0, i)
		}
	})
	sim.Run()
	want := []int{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered %v, want %v", got, want)
		}
	}
	if s := f.FaultStats(); s.Dropped != 3 {
		t.Fatalf("Dropped = %d, want 3", s.Dropped)
	}
}

// TestReliableRecoversFromLoss drives the reliability layer directly
// over a lossy link: every sequenced message must be delivered exactly
// once and acknowledged, with retransmissions making up for the drops.
func TestReliableRecoversFromLoss(t *testing.T) {
	sim := vtime.NewSim()
	f := New(sim, 2, DefaultCostModel())
	if err := f.SetFaults(&FaultPlan{Seed: 7, Default: LinkFaults{DropRate: 0.3, DupRate: 0.2}}); err != nil {
		t.Fatal(err)
	}
	const msgs = 20
	acked := 0
	var delivered []int

	var txProc, rxProc *vtime.Proc
	var txRel, rxRel *Reliable

	sim.Spawn("rx", func(p *vtime.Proc) {
		rxProc = p
		rxRel = NewReliable(f.NIC(1), ReliableParams{}, func() { p.Unpark() })
		f.NIC(1).SetNotify(func() { p.Unpark() })
		for len(delivered) < msgs {
			progressed := false
			for pkt := f.NIC(1).PollInbox(p); pkt != nil; pkt = f.NIC(1).PollInbox(p) {
				progressed = true
				if a, ok := pkt.Payload.(Ack); ok {
					rxRel.HandleAck(a)
					continue
				}
				if rxRel.Duplicate(pkt) {
					continue
				}
				delivered = append(delivered, pkt.Payload.(int))
			}
			for cqe := f.NIC(1).PollCQ(p); cqe != nil; cqe = f.NIC(1).PollCQ(p) {
				progressed = true
				rxRel.TakeWR(cqe.WRID)
			}
			if !progressed && !f.NIC(1).Pending() {
				p.Park("rx")
			}
		}
	})
	sim.Spawn("tx", func(p *vtime.Proc) {
		txProc = p
		txRel = NewReliable(f.NIC(0), ReliableParams{}, func() { p.Unpark() })
		f.NIC(0).SetNotify(func() { p.Unpark() })
		for i := 1; i <= msgs; i++ {
			txRel.Send(p, 1, 64, 0, i, "send", func(start, end vtime.Time) {
				if end <= start {
					t.Errorf("ack carries inverted interval [%v, %v]", start, end)
				}
				acked++
			})
		}
		for acked < msgs {
			progressed := false
			for pkt := f.NIC(0).PollInbox(p); pkt != nil; pkt = f.NIC(0).PollInbox(p) {
				progressed = true
				if a, ok := pkt.Payload.(Ack); ok {
					txRel.HandleAck(a)
				}
			}
			for cqe := f.NIC(0).PollCQ(p); cqe != nil; cqe = f.NIC(0).PollCQ(p) {
				progressed = true
				txRel.TakeWR(cqe.WRID)
			}
			if did, err := txRel.RunDue(p); err != nil {
				t.Errorf("RunDue: %v", err)
				return
			} else if did {
				progressed = true
			}
			if !progressed && !f.NIC(0).Pending() && !txRel.HasDue() {
				p.Park("tx")
			}
		}
	})
	_, _ = txProc, rxProc
	if _, err := sim.RunE(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if acked != msgs {
		t.Fatalf("acked %d/%d", acked, msgs)
	}
	if len(delivered) != msgs {
		t.Fatalf("delivered %d messages, want %d (dups not suppressed or losses not recovered)", len(delivered), msgs)
	}
	seen := make(map[int]bool)
	for _, v := range delivered {
		if seen[v] {
			t.Fatalf("message %d delivered twice", v)
		}
		seen[v] = true
	}
	st := txRel.Stats()
	if st.Retransmits == 0 {
		t.Fatal("expected retransmissions under 30% loss")
	}
}

// TestReliableGivesUpOnDeadPeer: with every packet on the forward link
// dropped, the sender must exhaust its retries and report the peer
// unreachable rather than hang.
func TestReliableGivesUpOnDeadPeer(t *testing.T) {
	sim := vtime.NewSim()
	f := New(sim, 2, DefaultCostModel())
	if err := f.SetFaults(&FaultPlan{Default: LinkFaults{DropEvery: 1}}); err != nil {
		t.Fatal(err)
	}
	var got error
	sim.Spawn("tx", func(p *vtime.Proc) {
		rel := NewReliable(f.NIC(0), ReliableParams{MaxRetries: 3}, func() { p.Unpark() })
		rel.Send(p, 1, 64, 0, "hello", "send", nil)
		for got == nil {
			for cqe := f.NIC(0).PollCQ(p); cqe != nil; cqe = f.NIC(0).PollCQ(p) {
				rel.TakeWR(cqe.WRID)
			}
			if _, err := rel.RunDue(p); err != nil {
				got = err
				return
			}
			if !f.NIC(0).Pending() && !rel.HasDue() {
				p.Park("tx")
			}
		}
	})
	if _, err := sim.RunE(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	var de *DeliveryError
	if !errors.As(got, &de) {
		t.Fatalf("got %v (%T), want *DeliveryError", got, got)
	}
	if !de.PeerSilent {
		t.Fatal("peer never acked anything; PeerSilent should be true")
	}
	if de.Attempts != 4 {
		t.Fatalf("Attempts = %d, want 4 (1 try + 3 retries)", de.Attempts)
	}
}

// TestStallWindowDelaysTransfer: a transfer posted inside a stall
// window begins only when the window ends.
func TestStallWindowDelaysTransfer(t *testing.T) {
	cost := DefaultCostModel()
	stallEnd := vtime.Time(500 * time.Microsecond)
	run := func(stall bool) vtime.Time {
		sim := vtime.NewSim()
		f := New(sim, 2, cost)
		if stall {
			if err := f.SetFaults(&FaultPlan{Stalls: []StallWindow{{Node: 0, Start: 0, End: stallEnd}}}); err != nil {
				t.Fatal(err)
			}
		}
		var arrived vtime.Time
		rx := sim.Spawn("rx", func(p *vtime.Proc) {
			for arrived == 0 {
				if pkt := f.NIC(1).PollInbox(p); pkt != nil {
					arrived = p.Now()
					return
				}
				p.Park("rx")
			}
		})
		f.NIC(1).SetNotify(func() { rx.Unpark() })
		sim.Spawn("tx", func(p *vtime.Proc) { f.NIC(0).Send(p, 1, 1024, 0, "x") })
		if _, err := sim.RunE(); err != nil {
			t.Fatal(err)
		}
		return arrived
	}
	clean, stalled := run(false), run(true)
	if stalled < stallEnd {
		t.Fatalf("stalled transfer arrived at %v, before the window end %v", stalled, stallEnd)
	}
	if stalled <= clean {
		t.Fatalf("stall did not delay the transfer (clean %v, stalled %v)", clean, stalled)
	}
}

// TestPermanentStallBlackholes: a Forever stall swallows work requests;
// a receiver waiting on the data wedges, and the kernel diagnoses it as
// a structured deadlock.
func TestPermanentStallBlackholes(t *testing.T) {
	sim := vtime.NewSim()
	f := New(sim, 2, DefaultCostModel())
	if err := f.SetFaults(&FaultPlan{Stalls: []StallWindow{{Node: 0, Start: 0, End: Forever}}}); err != nil {
		t.Fatal(err)
	}
	rx := sim.Spawn("rx", func(p *vtime.Proc) {
		for {
			if pkt := f.NIC(1).PollInbox(p); pkt != nil {
				t.Error("packet escaped a blackholed NIC")
				return
			}
			p.Park("rx")
		}
	})
	f.NIC(1).SetNotify(func() { rx.Unpark() })
	sim.Spawn("tx", func(p *vtime.Proc) { f.NIC(0).Send(p, 1, 64, 0, "x") })
	_, err := sim.RunE()
	var dl *vtime.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want *vtime.DeadlockError", err)
	}
	if f.FaultStats().Blackholed == 0 {
		t.Fatal("Blackholed counter not incremented")
	}
}

// TestDegradedBandwidthStretchesWire: halving the bandwidth factor must
// lengthen the recorded transfer interval.
func TestDegradedBandwidthStretchesWire(t *testing.T) {
	run := func(factor float64) time.Duration {
		sim := vtime.NewSim()
		f := New(sim, 2, DefaultCostModel())
		if factor != 0 {
			if err := f.SetFaults(&FaultPlan{Default: LinkFaults{BandwidthFactor: factor}}); err != nil {
				t.Fatal(err)
			}
		}
		sim.Spawn("tx", func(p *vtime.Proc) { f.NIC(0).RDMAWrite(p, 1, 1<<20, f.NewXferID(), nil) })
		sim.Run()
		tr := f.Transfers()
		if len(tr) != 1 {
			t.Fatalf("recorded %d transfers, want 1", len(tr))
		}
		return tr[0].End.Sub(tr[0].Start)
	}
	nominal, degraded := run(0), run(0.5)
	if degraded < 2*nominal-time.Millisecond {
		t.Fatalf("half bandwidth: interval %v, want roughly 2x the nominal %v", degraded, nominal)
	}
}

// TestSameSeedSameRun: an identical plan and program reproduce the
// ground-truth log bit-for-bit; a different seed perturbs it.
func TestSameSeedSameRun(t *testing.T) {
	run := func(seed int64) []Transfer {
		sim := vtime.NewSim()
		f := New(sim, 2, DefaultCostModel())
		if err := f.SetFaults(&FaultPlan{Seed: seed, Default: LinkFaults{DropRate: 0.3, JitterMax: 2 * time.Microsecond}}); err != nil {
			t.Fatal(err)
		}
		sim.Spawn("tx", func(p *vtime.Proc) {
			for i := 0; i < 30; i++ {
				f.NIC(0).RDMAWrite(p, 1, 4096, f.NewXferID(), nil)
				p.Compute(10 * time.Microsecond)
			}
		})
		sim.Run()
		return append([]Transfer(nil), f.Transfers()...)
	}
	a, b := run(11), run(11)
	if len(a) != len(b) {
		t.Fatalf("same seed, different transfer counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, transfer %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := run(12)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical runs (PRNG not wired through)")
	}
}
