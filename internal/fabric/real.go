package fabric

import (
	"sync"
	"time"

	"ovlp/internal/vtime"
)

// Real-clock fabric backend.
//
// On a real-clock sim (vtime.NewRealSim) the fabric stops scheduling
// virtual events and instead runs one egress goroutine per NIC: posts
// enqueue a job, the goroutine really sleeps the DMA startup and wire
// serialization times on the sim's clock (naturally serializing the
// NIC's transmit engine, which is what reserveEgress models in
// virtual mode), and a per-transfer delivery goroutine sleeps the
// link propagation delay before handing the packet to the destination
// inbox. All mutation of shared state — completion queues, inboxes,
// the ground-truth log, trace spans — happens inside sim.Enter, i.e.
// under the kernel lock, so the unchanged mpi/armci progress engines
// poll the same structures they poll in virtual mode.
//
// Fault and crash injection are virtual-only: they rely on the
// omniscient scheduling only a virtual clock provides. SetFaults and
// SetCrashes reject active plans on a real sim.

// egressJob is one queued transmit on a NIC's real egress engine.
type egressJob struct {
	wire    time.Duration
	readyAt vtime.Time // post time + DMA startup; the wire starts no earlier
	// onSent runs under the kernel lock when the last byte has left
	// the NIC (nil for jobs with no source-side completion).
	onSent func(start, end, arrive vtime.Time)
	// onArrive runs under the kernel lock when the last byte reaches
	// the destination.
	onArrive func(start, arrive vtime.Time)
}

// realNIC is the real-mode side of a NIC: an unbounded egress queue
// drained by one goroutine. Its mutex is leaf-level: posting holds
// the kernel lock and briefly takes rn.mu; the egress goroutine takes
// rn.mu alone to dequeue and the kernel lock alone to deliver — the
// two are never nested in that direction, so no deadlock.
type realNIC struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []egressJob
	closed bool
}

// startReal launches the per-NIC egress goroutines. Called from New
// when the sim is real-clock.
func (f *Fabric) startReal() {
	f.rnics = make([]*realNIC, len(f.nics))
	for i := range f.rnics {
		rn := &realNIC{}
		rn.cond = sync.NewCond(&rn.mu)
		f.rnics[i] = rn
		f.realWG.Add(1)
		go f.egressLoop(f.nics[i], rn)
	}
}

// Shutdown stops the real-mode egress goroutines and waits for
// in-flight deliveries to land (their effects after RunE are
// discarded by the kernel). A no-op on virtual fabrics, and
// idempotent.
func (f *Fabric) Shutdown() {
	if f.rnics == nil {
		return
	}
	for _, rn := range f.rnics {
		rn.mu.Lock()
		rn.closed = true
		rn.cond.Broadcast()
		rn.mu.Unlock()
	}
	f.realWG.Wait()
}

// post enqueues a job on node id's egress engine. Caller is in
// simulation context (holds the kernel lock).
func (f *Fabric) post(id NodeID, job egressJob) {
	rn := f.rnics[id]
	rn.mu.Lock()
	if !rn.closed {
		rn.queue = append(rn.queue, job)
		rn.cond.Signal()
	}
	rn.mu.Unlock()
}

// egressLoop is node n's transmit engine: it drains the queue one job
// at a time, really occupying the wire for each serialization.
func (f *Fabric) egressLoop(n *NIC, rn *realNIC) {
	defer f.realWG.Done()
	clk := f.sim.Clock()
	for {
		rn.mu.Lock()
		for len(rn.queue) == 0 && !rn.closed {
			rn.cond.Wait()
		}
		if rn.closed {
			rn.mu.Unlock()
			return
		}
		job := rn.queue[0]
		rn.queue = rn.queue[1:]
		rn.mu.Unlock()

		if d := job.readyAt.Sub(f.sim.Now()); d > 0 {
			clk.Sleep(d) // DMA startup (descriptor fetch, doorbell)
		}
		start := f.sim.Now()
		clk.Sleep(job.wire) // the payload occupies the egress link
		end := f.sim.Now()
		arrive := end.Add(f.cost.LinkLatency)
		if job.onSent != nil {
			f.sim.Enter(func() { job.onSent(start, end, arrive) })
		}
		// Propagation proceeds in the background; the egress engine is
		// already free for the next job.
		f.realWG.Add(1)
		go func(job egressJob, start vtime.Time) {
			defer f.realWG.Done()
			clk.Sleep(f.cost.LinkLatency)
			f.sim.Enter(func() { job.onArrive(start, f.sim.Now()) })
		}(job, start)
	}
}

// transmitReal is the real-mode tail of transmitSeq: everything after
// post overhead and work-request allocation. Caller is the posting
// proc, holding the kernel lock.
func (n *NIC) transmitReal(dst NodeID, kind OpKind, size int, wire time.Duration, xferID uint64, payload any, deliver bool, seq uint64, wr uint64) uint64 {
	f := n.fab
	src := n.id
	target := f.NIC(dst)
	f.post(src, egressJob{
		wire:    wire,
		readyAt: f.sim.Now().Add(f.cost.DMAStartup),
		onSent: func(start, end, arrive vtime.Time) {
			n.pushCQE(CQE{WRID: wr, Kind: kind, XferID: xferID, Size: size, Start: start, End: arrive})
		},
		onArrive: func(start, arrive vtime.Time) {
			f.deliverAt(src, dst, target, kind, size, xferID, payload, deliver, seq, true, start, arrive)
		},
	})
	return wr
}

// rdmaReadReal is the real-mode tail of RDMARead: a goroutine models
// the request hop to the serving node, then the data leg queues on
// the remote NIC's real egress engine like any other transmit; the
// completion (with the ground-truth record) lands at the requester.
func (n *NIC) rdmaReadReal(src NodeID, size int, xferID uint64, wr uint64) uint64 {
	f := n.fab
	dst := n.id
	clk := f.sim.Clock()
	reqHop := f.cost.DMAStartup + f.cost.Wire(0) + f.cost.LinkLatency
	f.realWG.Add(1)
	go func() {
		defer f.realWG.Done()
		clk.Sleep(reqHop)
		f.sim.Enter(func() {
			f.post(src, egressJob{
				wire:    f.cost.Wire(size),
				readyAt: f.sim.Now(),
				onArrive: func(start, arrive vtime.Time) {
					f.record(Transfer{XferID: xferID, Src: src, Dst: dst, Size: size, Start: start, End: arrive})
					n.pushCQE(CQE{WRID: wr, Kind: OpRDMARead, XferID: xferID, Size: size, Start: start, End: arrive})
				},
			})
		})
	}()
	return wr
}
