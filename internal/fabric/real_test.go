package fabric

import (
	"testing"
	"time"

	"ovlp/internal/vtime"
)

// A two-node exchange over the real backend: send, RDMA write with
// immediate, RDMA read. Completions and packets must arrive, ground
// truth must record every tagged transfer, and the whole thing must
// be race-clean (this test is the fabric's -race gate).
func TestRealFabricExchange(t *testing.T) {
	sim := vtime.NewRealSim(nil)
	sim.SetDeadline(vtime.Time(30 * time.Second))
	f := New(sim, 2, DefaultCostModel())
	defer f.Shutdown()

	const size = 64 << 10
	var gotPackets []Packet
	var gotCQEs []CQE

	sender := sim.Spawn("sender", func(p *vtime.Proc) {
		nic := f.NIC(0)
		id1 := f.NewXferID()
		f.TagXfer(id1, "eager")
		nic.Send(p, 1, size, id1, "hello")
		id2 := f.NewXferID()
		f.TagXfer(id2, "pipelined-frag")
		nic.RDMAWrite(p, 1, size, id2, "fin")
		id3 := f.NewXferID()
		f.TagXfer(id3, "direct-read")
		nic.RDMARead(p, 1, size, id3)
		for len(gotCQEs) < 3 {
			if e := nic.PollCQ(p); e != nil {
				gotCQEs = append(gotCQEs, *e)
				continue
			}
			if nic.Pending() {
				continue
			}
			p.Park("test.sender")
		}
	})
	receiver := sim.Spawn("receiver", func(p *vtime.Proc) {
		nic := f.NIC(1)
		for len(gotPackets) < 2 {
			if pk := nic.PollInbox(p); pk != nil {
				gotPackets = append(gotPackets, *pk)
				continue
			}
			if nic.Pending() {
				continue
			}
			p.Park("test.receiver")
		}
	})
	f.NIC(0).SetNotify(func() { sender.Unpark() })
	f.NIC(1).SetNotify(func() { receiver.Unpark() })
	if _, err := sim.RunE(); err != nil {
		t.Fatal(err)
	}

	if len(gotCQEs) != 3 {
		t.Fatalf("sender saw %d completions, want 3", len(gotCQEs))
	}
	if len(gotPackets) != 2 {
		t.Fatalf("receiver saw %d packets, want 2", len(gotPackets))
	}
	tr := f.Transfers()
	if len(tr) != 3 {
		t.Fatalf("ground truth has %d transfers, want 3: %+v", len(tr), tr)
	}
	for _, x := range tr {
		if x.Size != size {
			t.Fatalf("transfer %d size %d, want %d", x.XferID, x.Size, size)
		}
		if x.End <= x.Start {
			t.Fatalf("transfer %d has non-positive wire interval [%v, %v]", x.XferID, x.Start, x.End)
		}
		// The wire interval must be at least the serialization time of
		// the payload — the egress goroutine really slept it.
		if got, min := x.End.Sub(x.Start), f.Cost().Wire(size); got < min {
			t.Fatalf("transfer %d wire interval %v shorter than serialization %v", x.XferID, got, min)
		}
	}
}

// Serialization: two back-to-back sends from one NIC must not overlap
// on the wire — the second's start is at or after the first's end.
func TestRealFabricEgressSerializes(t *testing.T) {
	sim := vtime.NewRealSim(nil)
	sim.SetDeadline(vtime.Time(30 * time.Second))
	f := New(sim, 2, DefaultCostModel())
	defer f.Shutdown()

	const size = 256 << 10
	sim.Spawn("sender", func(p *vtime.Proc) {
		nic := f.NIC(0)
		for i := 0; i < 2; i++ {
			id := f.NewXferID()
			f.TagXfer(id, "eager")
			nic.Send(p, 1, size, id, i)
		}
		seen := 0
		for seen < 2 {
			if e := nic.PollCQ(p); e != nil {
				seen++
				continue
			}
			p.Compute(10 * time.Microsecond)
		}
	})
	sim.Spawn("receiver", func(p *vtime.Proc) {
		nic := f.NIC(1)
		seen := 0
		for seen < 2 {
			if pk := nic.PollInbox(p); pk != nil {
				seen++
				continue
			}
			p.Compute(10 * time.Microsecond)
		}
	})
	if _, err := sim.RunE(); err != nil {
		t.Fatal(err)
	}
	tr := f.Transfers()
	if len(tr) != 2 {
		t.Fatalf("ground truth has %d transfers, want 2", len(tr))
	}
	a, b := tr[0], tr[1]
	if b.Start < a.Start {
		a, b = b, a
	}
	// The egress engine slept the first payload's full serialization
	// before starting the second, so the starts are at least one wire
	// time apart. (Transfer.End also includes delivery-side lock
	// acquisition, so it is not a tight wire-release bound here.)
	if gap, wire := b.Start.Sub(a.Start), f.Cost().Wire(size); gap < wire {
		t.Fatalf("egress overlap: second start only %v after first, want >= serialization %v", gap, wire)
	}
}

func TestRealFabricRejectsFaultsAndCrashes(t *testing.T) {
	sim := vtime.NewRealSim(nil)
	f := New(sim, 2, DefaultCostModel())
	defer f.Shutdown()
	if err := f.SetFaults(&FaultPlan{Seed: 1, Default: LinkFaults{DropRate: 0.5}}); err == nil {
		t.Fatal("SetFaults accepted a plan on a real sim")
	}
	if err := f.SetCrashes(&CrashPlan{Crashes: []Crash{{Node: 0, At: 1}}}); err == nil {
		t.Fatal("SetCrashes accepted a plan on a real sim")
	}
}
