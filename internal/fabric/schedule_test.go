package fabric

import (
	"strings"
	"testing"
	"time"

	"ovlp/internal/vtime"
)

func TestScheduleValidate(t *testing.T) {
	drop := LinkFaults{DropEvery: 1}
	cases := []struct {
		name string
		plan FaultPlan
		want string
	}{
		{"clear before activate", FaultPlan{Schedule: []FaultEvent{
			{At: vtime.Time(2 * time.Millisecond), Clear: vtime.Time(time.Millisecond), Default: &drop},
		}}, "clear-before-activate"},
		{"clear at activate", FaultPlan{Schedule: []FaultEvent{
			{Label: "outage", At: vtime.Time(time.Millisecond), Clear: vtime.Time(time.Millisecond), Default: &drop},
		}}, "clear-before-activate"},
		{"negative at", FaultPlan{Schedule: []FaultEvent{
			{At: -1, Default: &drop},
		}}, "negative activation"},
		{"empty scope", FaultPlan{Schedule: []FaultEvent{
			{At: 0},
		}}, "configures nothing"},
		{"negative ramp", FaultPlan{Schedule: []FaultEvent{
			{At: 0, Ramp: -time.Microsecond, Default: &drop},
		}}, "negative ramp"},
		{"bad event default", FaultPlan{Schedule: []FaultEvent{
			{At: 0, Default: &LinkFaults{DropRate: 2}},
		}}, "DropRate"},
		{"bad group faults", FaultPlan{Schedule: []FaultEvent{
			{At: 0, Nodes: []NodeID{1}, NodeFaults: LinkFaults{BandwidthFactor: -1}},
		}}, "BandwidthFactor"},
		{"event self loop", FaultPlan{Schedule: []FaultEvent{
			{At: 0, Links: map[Link]LinkFaults{{2, 2}: drop}},
		}}, "self-loop"},
		{"negative group node", FaultPlan{Schedule: []FaultEvent{
			{At: 0, Nodes: []NodeID{-3}, NodeFaults: drop},
		}}, "negative node"},
	}
	for _, c := range cases {
		err := c.plan.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Validate() = %v, want error mentioning %q", c.name, err, c.want)
		}
	}

	good := FaultPlan{Seed: 9, Schedule: []FaultEvent{
		{At: 0, Default: &drop}, // activation at t=0 is a valid edge
		{Label: "rack", At: vtime.Time(time.Millisecond), Clear: vtime.Time(2 * time.Millisecond),
			Nodes: []NodeID{0, 1}, NodeFaults: LinkFaults{DropRate: 1}},
		{Label: "ramp", At: 0, Ramp: time.Millisecond, Default: &LinkFaults{BandwidthFactor: 0.25}},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	if !(&FaultPlan{Schedule: good.Schedule}).Active() {
		t.Fatal("plan with a schedule reports inactive")
	}
}

func TestSetFaultsRejectsScheduleUnknownNodes(t *testing.T) {
	for _, plan := range []*FaultPlan{
		{Schedule: []FaultEvent{{At: 0, Nodes: []NodeID{7}, NodeFaults: LinkFaults{DropRate: 1}}}},
		{Schedule: []FaultEvent{{At: 0, Links: map[Link]LinkFaults{{0, 9}: {DropRate: 1}}}}},
	} {
		sim := vtime.NewSim()
		f := New(sim, 2, DefaultCostModel())
		if err := f.SetFaults(plan); err == nil || !strings.Contains(err.Error(), "outside") {
			t.Fatalf("SetFaults = %v, want node-range error", err)
		}
	}
}

// scheduleRun posts one 100-byte Send from each (src, at) pair and
// returns the delivered ground-truth transfers plus the fault counters.
// Each sender proc sleeps to its post time, so activation windows are
// probed at exact virtual instants (modulo the post overhead).
func scheduleRun(t *testing.T, nodes int, plan *FaultPlan, posts []struct {
	src, dst NodeID
	at       time.Duration
}) ([]Transfer, FaultStats) {
	t.Helper()
	sim := vtime.NewSim()
	fab := New(sim, nodes, DefaultCostModel())
	if err := fab.SetFaults(plan); err != nil {
		t.Fatalf("SetFaults: %v", err)
	}
	for _, post := range posts {
		post := post
		sim.Spawn("sender", func(p *vtime.Proc) {
			if d := post.at - p.Now().Duration(); d > 0 {
				p.Sleep(d)
			}
			fab.NIC(post.src).Send(p, post.dst, 100, fab.NewXferID(), "payload")
		})
	}
	sim.Run()
	return fab.Transfers(), fab.FaultStats()
}

type postSpec = struct {
	src, dst NodeID
	at       time.Duration
}

// TestScheduleWindowEdges probes a drop-all window's edges: an event
// active from t=0, a bounded window, and an overlapping heal event
// that restores the network mid-outage (the later overlay wins).
func TestScheduleWindowEdges(t *testing.T) {
	dropAll := LinkFaults{DropEvery: 1}

	// Event at t=0 with no Clear: every packet is lost.
	got, stats := scheduleRun(t, 2, &FaultPlan{Schedule: []FaultEvent{{At: 0, Default: &dropAll}}},
		[]postSpec{{0, 1, 0}, {0, 1, time.Millisecond}})
	if len(got) != 0 || stats.Dropped != 2 {
		t.Fatalf("t=0 event: %d delivered, %+v; want everything dropped", len(got), stats)
	}

	// Bounded window [1ms, 2ms): only the mid-window packet is lost.
	window := &FaultPlan{Schedule: []FaultEvent{{
		At: vtime.Time(time.Millisecond), Clear: vtime.Time(2 * time.Millisecond), Default: &dropAll,
	}}}
	got, stats = scheduleRun(t, 2, window, []postSpec{
		{0, 1, 500 * time.Microsecond},  // before activation
		{0, 1, 1500 * time.Microsecond}, // inside
		{0, 1, 2500 * time.Microsecond}, // after clear
	})
	if len(got) != 2 || stats.Dropped != 1 {
		t.Fatalf("bounded window: %d delivered, %+v; want 2 delivered / 1 dropped", len(got), stats)
	}

	// Overlapping windows: outage [1ms, 5ms) with a heal overlay
	// [2ms, 3ms) declared later — packets land only during the heal.
	overlap := &FaultPlan{Schedule: []FaultEvent{
		{Label: "outage", At: vtime.Time(time.Millisecond), Clear: vtime.Time(5 * time.Millisecond), Default: &dropAll},
		{Label: "heal", At: vtime.Time(2 * time.Millisecond), Clear: vtime.Time(3 * time.Millisecond), Default: &LinkFaults{}},
	}}
	got, stats = scheduleRun(t, 2, overlap, []postSpec{
		{0, 1, 1500 * time.Microsecond}, // outage only
		{0, 1, 2500 * time.Microsecond}, // heal overlays the outage
		{0, 1, 3500 * time.Microsecond}, // outage again
	})
	if len(got) != 1 || stats.Dropped != 2 {
		t.Fatalf("overlapping windows: %d delivered, %+v; want only the healed packet through", len(got), stats)
	}
}

// TestScheduleCorrelatedGroup: a rack outage event must fail every
// link touching the group while active and roll the group back to the
// base configuration at Clear, deterministically under a fixed seed.
func TestScheduleCorrelatedGroup(t *testing.T) {
	plan := func() *FaultPlan {
		return &FaultPlan{
			Seed: 17,
			Schedule: []FaultEvent{{
				Label: "rack0", At: vtime.Time(time.Millisecond), Clear: vtime.Time(3 * time.Millisecond),
				Nodes: []NodeID{0, 1}, NodeFaults: LinkFaults{DropRate: 1},
			}},
		}
	}
	posts := []postSpec{
		{0, 1, 500 * time.Microsecond},  // before the outage: delivered
		{0, 1, 1500 * time.Microsecond}, // inside, src in group: dropped
		{2, 1, 1500 * time.Microsecond}, // inside, dst in group: dropped
		{2, 3, 1500 * time.Microsecond}, // inside, outside the group: delivered
		{0, 1, 3500 * time.Microsecond}, // after rollback: delivered
	}
	got, stats := scheduleRun(t, 4, plan(), posts)
	if len(got) != 3 || stats.Dropped != 2 {
		t.Fatalf("group outage: %d delivered, %+v; want 3 delivered / 2 dropped", len(got), stats)
	}

	// Same seed, same plan: byte-identical transfer log and counters.
	again, statsAgain := scheduleRun(t, 4, plan(), posts)
	if len(again) != len(got) || statsAgain != stats {
		t.Fatalf("rerun diverged: %d vs %d transfers, %+v vs %+v", len(again), len(got), statsAgain, stats)
	}
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("transfer %d diverged: %+v vs %+v", i, got[i], again[i])
		}
	}
}

// TestScheduleBandwidthRamp: a ramping degradation must stretch wire
// time progressively — early transfers near nominal, late transfers at
// the configured factor.
func TestScheduleBandwidthRamp(t *testing.T) {
	const factor = 0.25
	plan := &FaultPlan{Schedule: []FaultEvent{{
		Label: "ramp", At: 0, Ramp: 10 * time.Millisecond,
		Default: &LinkFaults{BandwidthFactor: factor},
	}}}
	posts := []postSpec{
		{0, 1, 100 * time.Microsecond}, // ~1% into the ramp
		{0, 1, 5 * time.Millisecond},   // midway
		{0, 1, 20 * time.Millisecond},  // past the ramp: full degradation
	}
	got, _ := scheduleRun(t, 2, plan, posts)
	if len(got) != 3 {
		t.Fatalf("ramp run delivered %d transfers, want 3", len(got))
	}
	nominal := DefaultCostModel().Wire(100)
	durs := make([]time.Duration, 3)
	for i, tr := range got {
		durs[i] = (tr.End - tr.Start).Duration() - DefaultCostModel().LinkLatency
	}
	if !(durs[0] < durs[1] && durs[1] < durs[2]) {
		t.Fatalf("ramp not monotone: %v", durs)
	}
	if durs[0] > 2*nominal {
		t.Fatalf("early-ramp wire %v far above nominal %v", durs[0], nominal)
	}
	want := time.Duration(float64(nominal) / factor)
	if durs[2] != want {
		t.Fatalf("post-ramp wire %v, want fully degraded %v", durs[2], want)
	}
}
