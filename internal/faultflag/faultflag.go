// Package faultflag gives the experiment binaries a shared
// command-line vocabulary for fault injection: a handful of flags that
// assemble into a fabric.FaultPlan, so every benchmark can be rerun on
// a deterministically misbehaving network without per-binary plumbing.
package faultflag

import (
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"

	"ovlp/internal/fabric"
	"ovlp/internal/vtime"
)

// values holds the raw flag state between Register and Plan.
type values struct {
	seed   int64
	drop   float64
	dup    float64
	jitter time.Duration
	stall  string
}

// Register installs the fault-injection flags on fs (the default
// command-line set when fs is nil) and returns a builder that turns
// the parsed values into a plan. The builder returns a nil plan when
// no fault option was used, so callers can hand its result straight to
// cluster.Config.Faults without changing fault-free behaviour.
func Register(fs *flag.FlagSet) func() (*fabric.FaultPlan, error) {
	if fs == nil {
		fs = flag.CommandLine
	}
	v := &values{}
	fs.Int64Var(&v.seed, "fault-seed", 1, "seed for the fault-injection PRNG (same seed, same run)")
	fs.Float64Var(&v.drop, "drop", 0, "per-packet drop probability on every link [0,1] (sugar for a one-event -scenario chaos schedule)")
	fs.Float64Var(&v.dup, "dup", 0, "per-packet duplication probability on every link [0,1] (sugar for a one-event -scenario chaos schedule)")
	fs.DurationVar(&v.jitter, "jitter", 0, "maximum extra per-packet delivery delay, uniform in [0,jitter) (sugar for a one-event -scenario chaos schedule)")
	fs.StringVar(&v.stall, "stall", "", `DMA stall windows, comma-separated "node@start+dur" (dur may be "forever"), e.g. "1@2ms+500us"`)
	return v.plan
}

// plan assembles the FaultPlan, or nil when every knob is at rest.
//
// The link knobs (-drop/-dup/-jitter) are deprecated sugar: they
// compile to a single schedule event active from t=0 over every link —
// exactly the plan a one-event scenario file would declare — so the
// legacy flags and the scenario engine share one runtime path. The
// injected faults are bit-for-bit what the old always-on Default
// produced.
func (v *values) plan() (*fabric.FaultPlan, error) {
	p := &fabric.FaultPlan{Seed: v.seed}
	lf := fabric.LinkFaults{
		DropRate:  v.drop,
		DupRate:   v.dup,
		JitterMax: v.jitter,
	}
	if lf != (fabric.LinkFaults{}) {
		p.Schedule = []fabric.FaultEvent{{Label: "faultflag", Default: &lf}}
	}
	if v.stall != "" {
		stalls, err := ParseStalls(v.stall)
		if err != nil {
			return nil, err
		}
		p.Stalls = stalls
	}
	if !p.Active() {
		return nil, nil
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// ParseStalls parses a comma-separated list of "node@start+dur" stall
// windows; dur may be "forever" for a permanent blackhole.
func ParseStalls(s string) ([]fabric.StallWindow, error) {
	var out []fabric.StallWindow
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		w, err := parseStall(part)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

func parseStall(s string) (fabric.StallWindow, error) {
	bad := func() (fabric.StallWindow, error) {
		return fabric.StallWindow{}, fmt.Errorf(
			`faultflag: bad stall %q (want "node@start+dur", e.g. "1@2ms+500us" or "0@1ms+forever")`, s)
	}
	nodeStr, rest, ok := strings.Cut(s, "@")
	if !ok {
		return bad()
	}
	node, err := strconv.Atoi(nodeStr)
	if err != nil || node < 0 {
		return bad()
	}
	startStr, durStr, ok := strings.Cut(rest, "+")
	if !ok {
		return bad()
	}
	start, err := time.ParseDuration(startStr)
	if err != nil || start < 0 {
		return bad()
	}
	w := fabric.StallWindow{Node: fabric.NodeID(node), Start: vtime.Time(start)}
	if durStr == "forever" {
		w.End = fabric.Forever
		return w, nil
	}
	dur, err := time.ParseDuration(durStr)
	if err != nil || dur <= 0 {
		return bad()
	}
	w.End = w.Start + vtime.Time(dur)
	return w, nil
}

// CheckNodes verifies that every node a plan names exists on a
// machine of the given size, so a binary can reject a bad -stall
// before the run harness panics mid-sweep.
func CheckNodes(p *fabric.FaultPlan, procs int) error {
	if !p.Active() {
		return nil
	}
	for _, w := range p.Stalls {
		if int(w.Node) >= procs {
			return fmt.Errorf("faultflag: -stall names node %d but the run uses %d process(es) (nodes 0-%d)",
				w.Node, procs, procs-1)
		}
	}
	for l := range p.Links {
		if int(l.Src) >= procs || int(l.Dst) >= procs {
			return fmt.Errorf("faultflag: fault plan names link %d->%d but the run uses %d process(es)",
				l.Src, l.Dst, procs)
		}
	}
	for i := range p.Schedule {
		ev := &p.Schedule[i]
		for l := range ev.Links {
			if int(l.Src) >= procs || int(l.Dst) >= procs {
				return fmt.Errorf("faultflag: schedule event %d names link %d->%d but the run uses %d process(es)",
					i, l.Src, l.Dst, procs)
			}
		}
		for _, n := range ev.Nodes {
			if int(n) >= procs {
				return fmt.Errorf("faultflag: schedule event %d names node %d but the run uses %d process(es) (nodes 0-%d)",
					i, n, procs, procs-1)
			}
		}
	}
	return nil
}

// Describe renders a plan for a benchmark header line; it returns ""
// for a nil plan so fault-free output stays untouched.
func Describe(p *fabric.FaultPlan) string {
	if !p.Active() {
		return ""
	}
	parts := []string{fmt.Sprintf("seed %d", p.Seed)}
	lf := p.Default
	sched := p.Schedule
	if len(sched) == 1 && sched[0].At == 0 && sched[0].Clear == 0 &&
		sched[0].Ramp == 0 && sched[0].Default != nil && len(sched[0].Links) == 0 &&
		len(sched[0].Nodes) == 0 {
		// The always-on one-event shape the legacy flags compile to:
		// render it like the old Default so header lines stay stable.
		lf, sched = *sched[0].Default, nil
	}
	if lf.DropRate > 0 {
		parts = append(parts, fmt.Sprintf("drop %.2g", lf.DropRate))
	}
	if lf.DupRate > 0 {
		parts = append(parts, fmt.Sprintf("dup %.2g", lf.DupRate))
	}
	if lf.JitterMax > 0 {
		parts = append(parts, fmt.Sprintf("jitter %v", lf.JitterMax))
	}
	if n := len(sched); n > 0 {
		parts = append(parts, fmt.Sprintf("%d chaos event(s)", n))
	}
	if n := len(p.Stalls); n > 0 {
		parts = append(parts, fmt.Sprintf("%d stall window(s)", n))
	}
	return "faults: " + strings.Join(parts, ", ")
}
