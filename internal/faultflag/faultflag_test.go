package faultflag

import (
	"flag"
	"testing"
	"time"

	"ovlp/internal/fabric"
	"ovlp/internal/vtime"
)

func parse(t *testing.T, args ...string) (*fabric.FaultPlan, error) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	build := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("flag parse: %v", err)
	}
	return build()
}

func TestNoFlagsMeansNoPlan(t *testing.T) {
	p, err := parse(t)
	if err != nil || p != nil {
		t.Fatalf("want nil plan without fault flags, got %v, %v", p, err)
	}
	// A bare seed still means "no faults": nothing to reproduce.
	p, err = parse(t, "-fault-seed", "7")
	if err != nil || p != nil {
		t.Fatalf("seed alone should not activate faults, got %v, %v", p, err)
	}
}

func TestDropAndStallParse(t *testing.T) {
	p, err := parse(t, "-fault-seed", "3", "-drop", "0.1", "-jitter", "2us",
		"-stall", "1@2ms+500us, 0@1ms+forever")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 3 || p.Default.DropRate != 0.1 || p.Default.JitterMax != 2*time.Microsecond {
		t.Fatalf("bad plan: %+v", p)
	}
	want := []fabric.StallWindow{
		{Node: 1, Start: vtime.Time(2 * time.Millisecond), End: vtime.Time(2*time.Millisecond + 500*time.Microsecond)},
		{Node: 0, Start: vtime.Time(time.Millisecond), End: fabric.Forever},
	}
	if len(p.Stalls) != 2 || p.Stalls[0] != want[0] || p.Stalls[1] != want[1] {
		t.Fatalf("stalls = %+v, want %+v", p.Stalls, want)
	}
}

func TestBadInputsRejected(t *testing.T) {
	for _, args := range [][]string{
		{"-drop", "1.5"},                         // rate out of range -> plan validation
		{"-stall", "zero@1ms+1ms"},               // unparsable node
		{"-stall", "0@1ms"},                      // missing duration
		{"-stall", "0@1ms+never"},                // bad duration word
		{"-drop", "0.1", "-stall", "0@-1ms+1ms"}, // negative start
	} {
		if _, err := parse(t, args...); err == nil {
			t.Errorf("args %v: want error, got none", args)
		}
	}
}
