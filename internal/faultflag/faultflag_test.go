package faultflag

import (
	"flag"
	"testing"
	"time"

	"ovlp/internal/fabric"
	"ovlp/internal/vtime"
)

func parse(t *testing.T, args ...string) (*fabric.FaultPlan, error) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	build := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("flag parse: %v", err)
	}
	return build()
}

func TestNoFlagsMeansNoPlan(t *testing.T) {
	p, err := parse(t)
	if err != nil || p != nil {
		t.Fatalf("want nil plan without fault flags, got %v, %v", p, err)
	}
	// A bare seed still means "no faults": nothing to reproduce.
	p, err = parse(t, "-fault-seed", "7")
	if err != nil || p != nil {
		t.Fatalf("seed alone should not activate faults, got %v, %v", p, err)
	}
}

func TestDropAndStallParse(t *testing.T) {
	p, err := parse(t, "-fault-seed", "3", "-drop", "0.1", "-jitter", "2us",
		"-stall", "1@2ms+500us, 0@1ms+forever")
	if err != nil {
		t.Fatal(err)
	}
	// The link knobs compile to a single always-on schedule event (the
	// one-event-scenario sugar), not the legacy Default field.
	if p.Seed != 3 || len(p.Schedule) != 1 || p.Schedule[0].Default == nil {
		t.Fatalf("bad plan: %+v", p)
	}
	if ev := p.Schedule[0]; ev.At != 0 || ev.Clear != 0 ||
		ev.Default.DropRate != 0.1 || ev.Default.JitterMax != 2*time.Microsecond {
		t.Fatalf("bad sugar event: %+v", ev)
	}
	if p.Default != (fabric.LinkFaults{}) {
		t.Fatalf("legacy Default should stay zero, got %+v", p.Default)
	}
	if d := Describe(p); d != "faults: seed 3, drop 0.1, jitter 2µs, 2 stall window(s)" {
		t.Fatalf("Describe = %q", d)
	}
	want := []fabric.StallWindow{
		{Node: 1, Start: vtime.Time(2 * time.Millisecond), End: vtime.Time(2*time.Millisecond + 500*time.Microsecond)},
		{Node: 0, Start: vtime.Time(time.Millisecond), End: fabric.Forever},
	}
	if len(p.Stalls) != 2 || p.Stalls[0] != want[0] || p.Stalls[1] != want[1] {
		t.Fatalf("stalls = %+v, want %+v", p.Stalls, want)
	}
}

func TestBadInputsRejected(t *testing.T) {
	for _, args := range [][]string{
		{"-drop", "1.5"},                         // rate out of range -> plan validation
		{"-stall", "zero@1ms+1ms"},               // unparsable node
		{"-stall", "0@1ms"},                      // missing duration
		{"-stall", "0@1ms+never"},                // bad duration word
		{"-drop", "0.1", "-stall", "0@-1ms+1ms"}, // negative start
	} {
		if _, err := parse(t, args...); err == nil {
			t.Errorf("args %v: want error, got none", args)
		}
	}
}
