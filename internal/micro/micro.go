// Package micro implements the paper's Sec. 3 microbenchmark: two
// processes exchange a message through different combinations of
// point-to-point calls, with increasing computation inserted between
// the initiating and wait calls of the non-blocking side(s). For each
// computation length it reports the average time spent in MPI_Wait and
// the minimum and maximum overlap percentages measured by the
// instrumentation — the series plotted in Figs. 3-9.
package micro

import (
	"fmt"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/mpi"
	"ovlp/internal/overlap"
)

// CallPair enumerates the sender/receiver call combinations of the
// experiment.
type CallPair int

const (
	// IsendRecv: sender Isend+compute+Wait, receiver blocking Recv.
	IsendRecv CallPair = iota
	// SendIrecv: sender blocking Send, receiver Irecv+compute+Wait.
	SendIrecv
	// IsendIrecv: both sides non-blocking with inserted computation.
	IsendIrecv
)

func (cp CallPair) String() string {
	switch cp {
	case IsendRecv:
		return "Isend-Recv"
	case SendIrecv:
		return "Send-Irecv"
	case IsendIrecv:
		return "Isend-Irecv"
	}
	return "invalid"
}

// regionName labels the monitored section around each exchange, so the
// overlap percentages exclude the pacing traffic outside it.
const regionName = "exchange"

// Experiment describes one microbenchmark sweep.
type Experiment struct {
	Pair     CallPair
	Protocol mpi.LongProtocol
	// MsgSize is the message size in bytes: 10 KiB selects the eager
	// path, 1 MiB the rendezvous path, as in the paper.
	MsgSize int
	// Reps is the number of transfers per computation point (the paper
	// uses 1000).
	Reps int
	// ComputePoints are the inserted computation lengths to sweep.
	ComputePoints []time.Duration
	// Config overrides the machine configuration; zero uses defaults.
	Config cluster.Config
	// Observe, when non-nil, receives each sweep point's raw cluster
	// result (reports, calibration table, fault statistics) after the
	// run — the hook drivers use to feed the profiler.
	Observe func(cluster.Result)
}

// Point is one measured sweep point.
type Point struct {
	Compute time.Duration
	// SenderWait and ReceiverWait are the average per-iteration times
	// spent in the final blocking call of each side (MPI_Wait for
	// non-blocking sides, Send/Recv for blocking ones).
	SenderWait   time.Duration
	ReceiverWait time.Duration
	// Overlap bounds, as percentages of data transfer time, for each
	// side's transfers inside the monitored exchange region.
	SenderMin, SenderMax     float64
	ReceiverMin, ReceiverMax float64
}

// Run executes the sweep and returns one Point per computation length.
func (e Experiment) Run() []Point {
	if e.MsgSize <= 0 {
		panic("micro: MsgSize must be positive")
	}
	if e.Reps <= 0 {
		e.Reps = 1000
	}
	if e.Config.MPI.Instrument == nil {
		// Share one instrument config across the sweep so the
		// auto-calibrated table is measured once, not per point —
		// material when the real backend calibrates in wall-clock time.
		e.Config.MPI.Instrument = &mpi.InstrumentConfig{}
	}
	points := make([]Point, 0, len(e.ComputePoints))
	for _, c := range e.ComputePoints {
		points = append(points, e.runPoint(c))
	}
	return points
}

func (e Experiment) runPoint(c time.Duration) Point {
	cfg := e.Config
	cfg.Procs = 2
	cfg.MPI.Protocol = e.Protocol
	if cfg.MPI.Instrument == nil {
		cfg.MPI.Instrument = &mpi.InstrumentConfig{}
	}

	var waits [2]time.Duration
	res := cluster.Run(cfg, func(r *mpi.Rank) {
		peer := 1 - r.ID()
		for i := 0; i < e.Reps; i++ {
			r.PushRegion(regionName)
			start := time.Duration(0)
			if r.ID() == 0 {
				switch e.Pair {
				case IsendRecv, IsendIrecv:
					q := r.Isend(peer, 0, e.MsgSize)
					r.Compute(c)
					start = r.Now()
					r.Wait(q)
				case SendIrecv:
					start = r.Now()
					r.Send(peer, 0, e.MsgSize)
				}
			} else {
				switch e.Pair {
				case IsendRecv:
					start = r.Now()
					r.Recv(peer, 0)
				case SendIrecv, IsendIrecv:
					q := r.Irecv(peer, 0)
					r.Compute(c)
					start = r.Now()
					r.Wait(q)
				}
			}
			waits[r.ID()] += r.Now() - start
			r.PopRegion()
		}
	})

	if e.Observe != nil {
		e.Observe(res)
	}
	p := Point{
		Compute:      c,
		SenderWait:   waits[0] / time.Duration(e.Reps),
		ReceiverWait: waits[1] / time.Duration(e.Reps),
	}
	if reg := regionMeasures(res.Reports[0]); reg != nil {
		p.SenderMin, p.SenderMax = reg.MinPercent(), reg.MaxPercent()
	}
	if reg := regionMeasures(res.Reports[1]); reg != nil {
		p.ReceiverMin, p.ReceiverMax = reg.MinPercent(), reg.MaxPercent()
	}
	return p
}

func regionMeasures(rep *overlap.Report) *overlap.Measures {
	if rep == nil {
		return nil
	}
	reg := rep.Region(regionName)
	if reg == nil {
		return nil
	}
	return &reg.Total
}

// Figure identifies the paper figures reproducible by this package.
type Figure int

// PaperFigure returns the experiment matching the given paper figure
// number (3-9), with the paper's message size and computation sweep.
func PaperFigure(fig int, reps int) Experiment {
	eagerSweep := sweep(0, 30*time.Microsecond, 13)
	rndvSweep := sweep(0, 1750*time.Microsecond, 15)
	e := Experiment{Reps: reps}
	switch fig {
	case 3:
		e.Pair, e.Protocol, e.MsgSize = IsendIrecv, mpi.PipelinedRDMA, 10<<10
		e.ComputePoints = eagerSweep
	case 4:
		e.Pair, e.Protocol, e.MsgSize = IsendRecv, mpi.PipelinedRDMA, 1<<20
		e.ComputePoints = rndvSweep
	case 5:
		e.Pair, e.Protocol, e.MsgSize = IsendRecv, mpi.DirectRDMARead, 1<<20
		e.ComputePoints = rndvSweep
	case 6:
		e.Pair, e.Protocol, e.MsgSize = SendIrecv, mpi.PipelinedRDMA, 1<<20
		e.ComputePoints = rndvSweep
	case 7:
		e.Pair, e.Protocol, e.MsgSize = SendIrecv, mpi.DirectRDMARead, 1<<20
		e.ComputePoints = rndvSweep
	case 8:
		e.Pair, e.Protocol, e.MsgSize = IsendIrecv, mpi.PipelinedRDMA, 1<<20
		e.ComputePoints = rndvSweep
	case 9:
		e.Pair, e.Protocol, e.MsgSize = IsendIrecv, mpi.DirectRDMARead, 1<<20
		e.ComputePoints = rndvSweep
	default:
		panic(fmt.Sprintf("micro: no paper figure %d", fig))
	}
	return e
}

// sweep returns n evenly spaced durations from lo to hi inclusive.
func sweep(lo, hi time.Duration, n int) []time.Duration {
	if n < 2 {
		panic("micro: sweep needs at least 2 points")
	}
	out := make([]time.Duration, n)
	step := (hi - lo) / time.Duration(n-1)
	for i := range out {
		out[i] = lo + time.Duration(i)*step
	}
	return out
}

// ExchangeWorkload is the microbenchmark's fault-tolerant form: a ring
// neighbour exchange with inserted computation, as a
// cluster.Checkpointable the recovery experiments can crash and
// resume. State is the rank's message buffer.
type ExchangeWorkload struct {
	// MsgSize is the exchanged message size in bytes.
	MsgSize int
	// Compute is the computation inserted between initiation and wait.
	Compute time.Duration
	// StepCount is the number of exchange steps.
	StepCount int
}

func (w *ExchangeWorkload) Name() string { return "exchange" }

func (w *ExchangeWorkload) Steps() int { return w.StepCount }

func (w *ExchangeWorkload) StateBytes(procs int) int { return w.MsgSize }

func (w *ExchangeWorkload) Init(c *mpi.Comm) {}

func (w *ExchangeWorkload) Step(c *mpi.Comm, step int) {
	r := c.Host()
	r.PushRegion(regionName)
	defer r.PopRegion()
	n := c.Size()
	if n == 1 {
		r.Compute(w.Compute)
		return
	}
	next, prev := (c.Rank()+1)%n, (c.Rank()+n-1)%n
	rq := c.Irecv(prev, 0)
	sq := c.Isend(next, 0, w.MsgSize)
	r.Compute(w.Compute)
	r.Waitall(rq, sq)
}
