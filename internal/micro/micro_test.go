package micro

import (
	"testing"
	"time"

	"ovlp/internal/mpi"
)

const testReps = 40

// last returns the final sweep point.
func last(pts []Point) Point { return pts[len(pts)-1] }

func TestFig3EagerFullOverlapAbility(t *testing.T) {
	pts := PaperFigure(3, testReps).Run()
	first, end := pts[0], last(pts)
	// Sender: overlap grows from ~0 to ~100% as computation grows.
	if first.SenderMax > 5 {
		t.Errorf("sender max overlap at c=0 is %.1f%%, want ~0", first.SenderMax)
	}
	if end.SenderMax < 95 || end.SenderMin < 90 {
		t.Errorf("sender overlap at max compute is min %.1f / max %.1f, want ~100",
			end.SenderMin, end.SenderMax)
	}
	// Receiver: initiation invisible, so min 0 and max 100, flat.
	for _, p := range pts {
		if p.ReceiverMin != 0 || p.ReceiverMax < 95 {
			t.Fatalf("receiver bounds at c=%v are %.1f/%.1f, want 0/100",
				p.Compute, p.ReceiverMin, p.ReceiverMax)
		}
	}
	// Sender wait time drops to its floor once overlap saturates.
	if end.SenderWait >= first.SenderWait/4 {
		t.Errorf("sender wait did not drop: %v -> %v", first.SenderWait, end.SenderWait)
	}
}

// pipelinedFlat asserts the pipelined-protocol signature: only the
// first fragment can be overlapped, so the curves stay flat and small
// regardless of computation.
func pipelinedFlat(t *testing.T, pts []Point, side string, sel func(Point) (float64, float64)) {
	t.Helper()
	for _, p := range pts {
		minOv, maxOv := sel(p)
		if maxOv > 10 {
			t.Fatalf("%s max overlap at c=%v is %.1f%%, want flat and small (first fragment only)",
				side, p.Compute, maxOv)
		}
		if minOv > maxOv+0.01 {
			t.Fatalf("%s min %.1f%% exceeds max %.1f%%", side, minOv, maxOv)
		}
	}
	// And not identically zero at high compute: the first fragment is
	// overlappable.
	if _, maxOv := sel(last(pts)); maxOv <= 0 {
		t.Errorf("%s max overlap stuck at zero; first fragment should overlap", side)
	}
}

func TestFig4PipelinedIsendRecvSenderFlat(t *testing.T) {
	pts := PaperFigure(4, testReps).Run()
	pipelinedFlat(t, pts, "sender", func(p Point) (float64, float64) { return p.SenderMin, p.SenderMax })
	// Wait time stays high: the bulk cannot be hidden.
	if w := last(pts).SenderWait; w < 500*time.Microsecond {
		t.Errorf("sender wait %v at max compute; pipelined should stay high", w)
	}
}

func TestFig5DirectIsendRecvSenderOverlaps(t *testing.T) {
	pts := PaperFigure(5, testReps).Run()
	first, end := pts[0], last(pts)
	if first.SenderMax > 5 {
		t.Errorf("sender max at c=0 = %.1f%%, want ~0", first.SenderMax)
	}
	if end.SenderMax < 95 || end.SenderMin < 90 {
		t.Errorf("sender bounds at max compute = %.1f/%.1f, want ~100", end.SenderMin, end.SenderMax)
	}
	// "the progressive drop in wait time further confirms this trend"
	if end.SenderWait > first.SenderWait/10 {
		t.Errorf("sender wait should collapse with full overlap: %v -> %v",
			first.SenderWait, end.SenderWait)
	}
	// Monotone non-increasing wait as compute grows.
	for i := 1; i < len(pts); i++ {
		if pts[i].SenderWait > pts[i-1].SenderWait+time.Microsecond {
			t.Errorf("sender wait rose from %v to %v at c=%v",
				pts[i-1].SenderWait, pts[i].SenderWait, pts[i].Compute)
		}
	}
}

func TestFig6PipelinedSendIrecvReceiverFirstFragmentOnly(t *testing.T) {
	pts := PaperFigure(6, testReps).Run()
	pipelinedFlat(t, pts, "receiver", func(p Point) (float64, float64) { return p.ReceiverMin, p.ReceiverMax })
}

func TestFig7DirectSendIrecvZeroReceiverOverlap(t *testing.T) {
	pts := PaperFigure(7, testReps).Run()
	for _, p := range pts {
		if p.ReceiverMin != 0 || p.ReceiverMax > 1 {
			t.Fatalf("receiver bounds at c=%v are %.1f/%.1f, want 0/0 (polling misses the request)",
				p.Compute, p.ReceiverMin, p.ReceiverMax)
		}
	}
	// Receiver wait stays high and roughly unchanged.
	w0, wn := pts[1].ReceiverWait, last(pts).ReceiverWait
	if wn < w0/2 || wn < 500*time.Microsecond {
		t.Errorf("receiver wait should stay high: %v -> %v", w0, wn)
	}
}

func TestFig8PipelinedIsendIrecvBothFlat(t *testing.T) {
	pts := PaperFigure(8, testReps).Run()
	pipelinedFlat(t, pts, "sender", func(p Point) (float64, float64) { return p.SenderMin, p.SenderMax })
	pipelinedFlat(t, pts, "receiver", func(p Point) (float64, float64) { return p.ReceiverMin, p.ReceiverMax })
}

func TestFig9DirectIsendIrecvSenderMaxRises(t *testing.T) {
	pts := PaperFigure(9, testReps).Run()
	if first := pts[0]; first.SenderMax > 5 {
		t.Errorf("sender max at c=0 = %.1f%%", first.SenderMax)
	}
	if end := last(pts); end.SenderMax < 95 {
		t.Errorf("sender max at full compute = %.1f%%, want ~100 (complete overlap possible)",
			end.SenderMax)
	}
	for _, p := range pts {
		if p.ReceiverMax > 1 {
			t.Errorf("receiver max at c=%v = %.1f%%, want ~0", p.Compute, p.ReceiverMax)
		}
	}
}

func TestSweepSpacing(t *testing.T) {
	pts := sweep(0, 100*time.Microsecond, 5)
	want := []time.Duration{0, 25 * time.Microsecond, 50 * time.Microsecond,
		75 * time.Microsecond, 100 * time.Microsecond}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("sweep = %v, want %v", pts, want)
		}
	}
}

func TestPaperFigureRejectsUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for figure 42")
		}
	}()
	PaperFigure(42, 1)
}

func TestCallPairStrings(t *testing.T) {
	if IsendRecv.String() != "Isend-Recv" || SendIrecv.String() != "Send-Irecv" ||
		IsendIrecv.String() != "Isend-Irecv" {
		t.Fatal("CallPair String labels wrong")
	}
	if mpi.PipelinedRDMA.String() != "pipelined-rdma" {
		t.Fatal("protocol label wrong")
	}
}
