package mpi

import "fmt"

// Cart is a Cartesian process topology in the style of
// MPI_Cart_create: it maps ranks to grid coordinates and answers the
// neighbour queries stencil codes need (MPI_Cart_shift).
type Cart struct {
	dims     []int
	periodic []bool
	rank     int
}

// NewCart builds a topology of the given dimensions over nranks
// processes; the product of dims must equal nranks. periodic marks
// wraparound per dimension (nil means all non-periodic).
func NewCart(rank, nranks int, dims []int, periodic []bool) *Cart {
	prod := 1
	for _, d := range dims {
		if d < 1 {
			panic("mpi: cart dimensions must be positive")
		}
		prod *= d
	}
	if prod != nranks {
		panic(fmt.Sprintf("mpi: cart dims %v hold %d ranks, world has %d", dims, prod, nranks))
	}
	if rank < 0 || rank >= nranks {
		panic("mpi: cart rank out of range")
	}
	if periodic == nil {
		periodic = make([]bool, len(dims))
	}
	if len(periodic) != len(dims) {
		panic("mpi: cart periodic length mismatch")
	}
	return &Cart{
		dims:     append([]int(nil), dims...),
		periodic: append([]bool(nil), periodic...),
		rank:     rank,
	}
}

// CartDims factors nranks into ndims balanced dimensions, largest
// first (MPI_Dims_create).
func CartDims(nranks, ndims int) []int {
	if ndims < 1 || nranks < 1 {
		panic("mpi: CartDims needs positive arguments")
	}
	dims := make([]int, ndims)
	for i := range dims {
		dims[i] = 1
	}
	// Collect prime factors, then assign them largest-first onto the
	// currently smallest dimension — this keeps the result balanced.
	var factors []int
	n := nranks
	for f := 2; n > 1; {
		if n%f == 0 {
			factors = append(factors, f)
			n /= f
		} else {
			f++
		}
	}
	for i := len(factors) - 1; i >= 0; i-- {
		small := 0
		for j := 1; j < ndims; j++ {
			if dims[j] < dims[small] {
				small = j
			}
		}
		dims[small] *= factors[i]
	}
	// Largest first, as MPI_Dims_create specifies.
	for i := 0; i < ndims; i++ {
		for j := i + 1; j < ndims; j++ {
			if dims[j] > dims[i] {
				dims[i], dims[j] = dims[j], dims[i]
			}
		}
	}
	return dims
}

// Ndims returns the number of dimensions.
func (c *Cart) Ndims() int { return len(c.dims) }

// Dims returns a copy of the grid dimensions.
func (c *Cart) Dims() []int { return append([]int(nil), c.dims...) }

// Coords returns the calling rank's grid coordinates (row-major
// order, first dimension varying slowest — MPI's convention).
func (c *Cart) Coords() []int { return c.CoordsOf(c.rank) }

// CoordsOf returns the coordinates of an arbitrary rank.
func (c *Cart) CoordsOf(rank int) []int {
	coords := make([]int, len(c.dims))
	for i := len(c.dims) - 1; i >= 0; i-- {
		coords[i] = rank % c.dims[i]
		rank /= c.dims[i]
	}
	return coords
}

// RankOf returns the rank at the given coordinates, applying
// periodicity; it returns -1 (like MPI_PROC_NULL) if a non-periodic
// coordinate is out of range.
func (c *Cart) RankOf(coords []int) int {
	if len(coords) != len(c.dims) {
		panic("mpi: cart coordinate arity mismatch")
	}
	rank := 0
	for i, x := range coords {
		d := c.dims[i]
		if c.periodic[i] {
			x = ((x % d) + d) % d
		} else if x < 0 || x >= d {
			return ProcNull
		}
		rank = rank*d + x
	}
	return rank
}

// ProcNull is the null neighbour rank for non-periodic boundaries
// (MPI_PROC_NULL).
const ProcNull = -2

// Shift returns the source and destination ranks displacement steps
// away along dim (MPI_Cart_shift): recvFrom is the neighbour that
// would send to this rank, sendTo the one this rank sends to.
func (c *Cart) Shift(dim, displacement int) (recvFrom, sendTo int) {
	coords := c.Coords()
	coords[dim] += displacement
	sendTo = c.RankOf(coords)
	coords[dim] -= 2 * displacement
	recvFrom = c.RankOf(coords)
	return recvFrom, sendTo
}
