package mpi_test

import (
	"testing"
	"testing/quick"

	"ovlp/internal/cluster"
	"ovlp/internal/mpi"
)

func TestCartDimsBalanced(t *testing.T) {
	cases := []struct {
		n, nd int
		want  []int
	}{
		{16, 2, []int{4, 4}},
		{12, 2, []int{4, 3}},
		{8, 3, []int{2, 2, 2}},
		{24, 3, []int{4, 3, 2}},
		{7, 2, []int{7, 1}},
		{1, 3, []int{1, 1, 1}},
	}
	for _, c := range cases {
		got := mpi.CartDims(c.n, c.nd)
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("CartDims(%d,%d) = %v, want %v", c.n, c.nd, got, c.want)
				break
			}
		}
	}
}

func TestCartCoordsRoundTrip(t *testing.T) {
	f := func(seed uint8) bool {
		n := int(seed)%60 + 1
		dims := mpi.CartDims(n, 3)
		for rank := 0; rank < n; rank++ {
			c := mpi.NewCart(rank, n, dims, nil)
			if got := c.RankOf(c.Coords()); got != rank {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCartShiftPeriodic(t *testing.T) {
	c := mpi.NewCart(0, 4, []int{2, 2}, []bool{true, true})
	from, to := c.Shift(0, 1)
	// Rank 0 is (0,0); +1 along dim 0 wraps to (1,0)=rank 2 both ways.
	if to != 2 || from != 2 {
		t.Errorf("Shift = (%d, %d), want (2, 2)", from, to)
	}
}

func TestCartShiftNonPeriodicBoundary(t *testing.T) {
	c := mpi.NewCart(0, 4, []int{2, 2}, nil)
	from, to := c.Shift(0, 1)
	if from != mpi.ProcNull {
		t.Errorf("rank 0 has no -1 neighbour, got %d", from)
	}
	if to != 2 {
		t.Errorf("sendTo = %d, want 2", to)
	}
}

func TestCartValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"bad product": func() { mpi.NewCart(0, 5, []int{2, 2}, nil) },
		"bad rank":    func() { mpi.NewCart(9, 4, []int{2, 2}, nil) },
		"zero dim":    func() { mpi.NewCart(0, 0, []int{0}, nil) },
		"bad arity": func() {
			c := mpi.NewCart(0, 4, []int{2, 2}, nil)
			c.RankOf([]int{1})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestCartHaloExchange uses the topology for a real exchange: every
// rank sendrecvs with its four periodic neighbours.
func TestCartHaloExchange(t *testing.T) {
	cluster.Run(cluster.Config{Procs: 6}, func(r *mpi.Rank) {
		cart := mpi.NewCart(r.ID(), r.Size(), mpi.CartDims(r.Size(), 2), []bool{true, true})
		for dim := 0; dim < 2; dim++ {
			from, to := cart.Shift(dim, 1)
			st := r.Sendrecv(to, dim, 4096, from, dim)
			if st.Size != 4096 {
				t.Errorf("rank %d dim %d: size %d", r.ID(), dim, st.Size)
			}
		}
	})
}

func TestNewCollectives(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7} {
		res := cluster.Run(cluster.Config{Procs: n}, func(r *mpi.Rank) {
			r.Scan(1024)
			r.Exscan(1024)
			r.ReduceScatter(2048)
			sizes := make([]int, r.Size())
			for i := range sizes {
				sizes[i] = 512 * (i + 1)
			}
			r.Allgatherv(sizes)
			r.Gatherv(0, sizes)
			r.Barrier()
		})
		if res.Duration <= 0 {
			t.Fatalf("n=%d: no time elapsed", n)
		}
	}
}

func TestScanIsChained(t *testing.T) {
	// Rank i cannot leave Scan before rank i-1 contributed: completion
	// times must be non-decreasing in rank.
	const n = 5
	var done [n]int64
	cluster.Run(cluster.Config{Procs: n}, func(r *mpi.Rank) {
		r.Compute(100) // tiny skew
		r.Scan(4096)
		done[r.ID()] = int64(r.Now())
	})
	for i := 1; i < n; i++ {
		if done[i] < done[i-1] {
			t.Errorf("rank %d finished Scan at %d before rank %d at %d",
				i, done[i], i-1, done[i-1])
		}
	}
}
