package mpi

import "time"

// Collective operations, built on the library's own point-to-point
// protocols with an internal message context so they can never match
// user wildcard receives. Each collective counts as a single library
// call for the instrumentation (enter/exit nesting).
//
// Every rank must invoke collectives in the same order; the per-rank
// collective sequence number, embedded in the internal tags, keeps
// rounds of successive collectives apart even when fast ranks run
// ahead.

// colTag builds an internal tag from the collective sequence number
// and the round within the operation.
func colTag(seq, round int) int { return seq<<8 | round }

// nextColSeq advances the rank's collective counter.
func (r *Rank) nextColSeq() int {
	s := r.colSeq
	r.colSeq++
	return s
}

// isendCol and sendrecvCol are the internal building blocks; they run
// inside an already-entered collective and so skip enter/exit.
func (r *Rank) isendCol(dst, tag, size int) *Request {
	req := r.newReq(reqSend, dst, tag, size)
	r.startSend(req, ctxCollective, false)
	return req
}

func (r *Rank) irecvCol(src, tag int) *Request {
	return r.postRecv(src, tag, ctxCollective)
}

func (r *Rank) waitBoth(a, b *Request) {
	r.waitUntil(func() bool { return a.done && b.done })
}

// tokenSize is the payload of synchronization-only internal messages.
const tokenSize = 4

// reduceCost models applying the reduction operator to size bytes.
func (r *Rank) reduceCost(size int) time.Duration {
	return time.Duration(float64(size) / r.w.cfg.ReduceBandwidth * 1e9)
}

// Barrier blocks until all ranks have entered it (dissemination
// algorithm: ceil(log2 P) rounds of token exchange).
func (r *Rank) Barrier() {
	r.enterOp("Barrier")
	defer r.exit()
	seq := r.nextColSeq()
	p := r.Size()
	for k, round := 1, 0; k < p; k, round = k<<1, round+1 {
		dst := (r.id + k) % p
		src := (r.id - k + p) % p
		s := r.isendCol(dst, colTag(seq, round), tokenSize)
		q := r.irecvCol(src, colTag(seq, round))
		r.waitBoth(s, q)
	}
}

// Bcast broadcasts size bytes from root to all ranks (binomial tree).
func (r *Rank) Bcast(root, size int) {
	r.enterOp("Bcast")
	defer r.exit()
	seq := r.nextColSeq()
	p := r.Size()
	vr := (r.id - root + p) % p
	mask := 1
	for mask < p {
		if vr&mask != 0 {
			src := (vr - mask + root) % p
			q := r.irecvCol(src, colTag(seq, 0))
			r.waitUntil(func() bool { return q.done })
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vr+mask < p {
			dst := (vr + mask + root) % p
			s := r.isendCol(dst, colTag(seq, 0), size)
			r.waitUntil(func() bool { return s.done })
		}
		mask >>= 1
	}
}

// Reduce combines size bytes from every rank onto root (binomial
// tree); the reduction-operator cost is charged per received
// contribution.
func (r *Rank) Reduce(root, size int) {
	r.enterOp("Reduce")
	defer r.exit()
	seq := r.nextColSeq()
	p := r.Size()
	vr := (r.id - root + p) % p
	mask := 1
	for mask < p {
		if vr&mask == 0 {
			if vr+mask < p {
				src := (vr + mask + root) % p
				q := r.irecvCol(src, colTag(seq, 0))
				r.waitUntil(func() bool { return q.done })
				r.proc.Compute(r.reduceCost(size))
			}
		} else {
			dst := (vr - mask + root) % p
			s := r.isendCol(dst, colTag(seq, 0), size)
			r.waitUntil(func() bool { return s.done })
			break
		}
		mask <<= 1
	}
}

// Allreduce combines size bytes across all ranks, leaving the result
// everywhere. Power-of-two worlds use recursive doubling; others fall
// back to Reduce followed by Bcast.
func (r *Rank) Allreduce(size int) {
	p := r.Size()
	if p&(p-1) != 0 {
		r.Reduce(0, size)
		r.Bcast(0, size)
		return
	}
	r.enterOp("Allreduce")
	defer r.exit()
	seq := r.nextColSeq()
	for mask, round := 1, 0; mask < p; mask, round = mask<<1, round+1 {
		partner := r.id ^ mask
		s := r.isendCol(partner, colTag(seq, round), size)
		q := r.irecvCol(partner, colTag(seq, round))
		r.waitBoth(s, q)
		r.proc.Compute(r.reduceCost(size))
	}
}

// Alltoall exchanges size bytes between every pair of ranks (pairwise
// exchange over P-1 rounds, plus the local copy).
func (r *Rank) Alltoall(size int) {
	r.enterOp("Alltoall")
	defer r.exit()
	seq := r.nextColSeq()
	p := r.Size()
	r.proc.Compute(r.cost().Copy(size)) // self block
	for i := 1; i < p; i++ {
		dst := (r.id + i) % p
		src := (r.id - i + p) % p
		s := r.isendCol(dst, colTag(seq, i), size)
		q := r.irecvCol(src, colTag(seq, i))
		r.waitBoth(s, q)
	}
}

// Alltoallv exchanges sizes[i] bytes with rank i (pairwise exchange).
// sizes must have one entry per rank; the entry for the caller itself
// is copied locally.
func (r *Rank) Alltoallv(sizes []int) {
	r.enterOp("Alltoallv")
	defer r.exit()
	if len(sizes) != r.Size() {
		panic("mpi: Alltoallv needs one size per rank")
	}
	seq := r.nextColSeq()
	p := r.Size()
	r.proc.Compute(r.cost().Copy(sizes[r.id]))
	for i := 1; i < p; i++ {
		dst := (r.id + i) % p
		src := (r.id - i + p) % p
		s := r.isendCol(dst, colTag(seq, i), sizes[dst])
		q := r.irecvCol(src, colTag(seq, i))
		r.waitBoth(s, q)
	}
}

// Allgather collects size bytes from every rank on every rank (ring
// algorithm: P-1 steps).
func (r *Rank) Allgather(size int) {
	r.enterOp("Allgather")
	defer r.exit()
	seq := r.nextColSeq()
	p := r.Size()
	next := (r.id + 1) % p
	prev := (r.id - 1 + p) % p
	for step := 0; step < p-1; step++ {
		s := r.isendCol(next, colTag(seq, step), size)
		q := r.irecvCol(prev, colTag(seq, step))
		r.waitBoth(s, q)
	}
}

// Gather collects size bytes from every rank onto root (linear).
func (r *Rank) Gather(root, size int) {
	r.enterOp("Gather")
	defer r.exit()
	seq := r.nextColSeq()
	if r.id == root {
		var reqs []*Request
		for i := 0; i < r.Size(); i++ {
			if i == root {
				continue
			}
			reqs = append(reqs, r.irecvCol(i, colTag(seq, 0)))
		}
		r.waitUntil(func() bool {
			for _, q := range reqs {
				if !q.done {
					return false
				}
			}
			return true
		})
		return
	}
	s := r.isendCol(root, colTag(seq, 0), size)
	r.waitUntil(func() bool { return s.done })
}

// Scatter distributes size bytes from root to every rank (linear).
func (r *Rank) Scatter(root, size int) {
	r.enterOp("Scatter")
	defer r.exit()
	seq := r.nextColSeq()
	if r.id == root {
		var reqs []*Request
		for i := 0; i < r.Size(); i++ {
			if i == root {
				continue
			}
			reqs = append(reqs, r.isendCol(i, colTag(seq, 0), size))
		}
		r.waitUntil(func() bool {
			for _, q := range reqs {
				if !q.done {
					return false
				}
			}
			return true
		})
		return
	}
	q := r.irecvCol(root, colTag(seq, 0))
	r.waitUntil(func() bool { return q.done })
}
