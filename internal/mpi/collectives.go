package mpi

import "time"

// Collective operations, built on the library's own point-to-point
// protocols with an internal message context so they can never match
// user wildcard receives. Each collective counts as a single library
// call for the instrumentation (enter/exit nesting).
//
// Every rank must invoke collectives in the same order; the per-rank
// collective sequence number, embedded in the internal tags, keeps
// rounds of successive collectives apart even when fast ranks run
// ahead.
//
// The single implementation lives on Comm (comm.go); the Rank-level
// calls below delegate to the world communicator, whose tag and
// sequence spaces are identical to the historical Rank-level ones
// (communicator id 0 contributes nothing to ctag, and the world
// communicator shares the rank's collective sequence counter), so the
// delegation is wire-compatible with prior releases.

// colTag builds an internal tag from the collective sequence number
// and the round within the operation.
func colTag(seq, round int) int { return seq<<8 | round }

// nextColSeq advances the rank's collective counter.
func (r *Rank) nextColSeq() int {
	s := r.colSeq
	r.colSeq++
	return s
}

// isendCol and irecvCol are the internal building blocks; they run
// inside an already-entered collective and so skip enter/exit.
func (r *Rank) isendCol(dst, tag, size int) *Request {
	req := r.newReq(reqSend, dst, tag, size)
	r.startSend(req, ctxCollective, false)
	return req
}

func (r *Rank) irecvCol(src, tag int) *Request {
	return r.postRecv(src, tag, ctxCollective)
}

func (r *Rank) waitBoth(a, b *Request) {
	r.waitUntil(func() bool { return a.done && b.done })
}

func (r *Rank) waitAll(reqs []*Request) {
	r.waitUntil(func() bool {
		for _, q := range reqs {
			if !q.done {
				return false
			}
		}
		return true
	})
}

// tokenSize is the payload of synchronization-only internal messages.
const tokenSize = 4

// reduceCost models applying the reduction operator to size bytes.
func (r *Rank) reduceCost(size int) time.Duration {
	return time.Duration(float64(size) / r.w.cfg.ReduceBandwidth * 1e9)
}

// Barrier blocks until all ranks have entered it (dissemination
// algorithm: ceil(log2 P) rounds of token exchange).
func (r *Rank) Barrier() { r.World().Barrier() }

// Bcast broadcasts size bytes from root to all ranks (binomial tree).
func (r *Rank) Bcast(root, size int) { r.World().Bcast(root, size) }

// Reduce combines size bytes from every rank onto root (binomial
// tree); the reduction-operator cost is charged per received
// contribution.
func (r *Rank) Reduce(root, size int) { r.World().Reduce(root, size) }

// Allreduce combines size bytes across all ranks, leaving the result
// everywhere. Power-of-two worlds use recursive doubling; others fall
// back to Reduce followed by Bcast.
func (r *Rank) Allreduce(size int) { r.World().Allreduce(size) }

// Alltoall exchanges size bytes between every pair of ranks (pairwise
// exchange over P-1 rounds, plus the local copy).
func (r *Rank) Alltoall(size int) { r.World().Alltoall(size) }

// Alltoallv exchanges sizes[i] bytes with rank i (pairwise exchange).
// sizes must have one entry per rank; the entry for the caller itself
// is copied locally.
func (r *Rank) Alltoallv(sizes []int) { r.World().Alltoallv(sizes) }

// Allgather collects size bytes from every rank on every rank (ring
// algorithm: P-1 steps).
func (r *Rank) Allgather(size int) { r.World().Allgather(size) }

// Gather collects size bytes from every rank onto root (linear).
func (r *Rank) Gather(root, size int) { r.World().Gather(root, size) }

// Scatter distributes size bytes from root to every rank (linear).
func (r *Rank) Scatter(root, size int) { r.World().Scatter(root, size) }
