package mpi

// Additional collective operations; like collectives.go, these are
// world-communicator delegates of the single Comm implementation.

// Scan computes an inclusive prefix reduction over size bytes: rank i
// ends with the combination of contributions from ranks 0..i (linear
// chain, as small-world MPIs implement MPI_Scan).
func (r *Rank) Scan(size int) { r.World().Scan(size) }

// Exscan computes an exclusive prefix reduction: rank i ends with the
// combination of ranks 0..i-1 (rank 0's result is undefined, as in
// MPI_Exscan).
func (r *Rank) Exscan(size int) { r.World().Exscan(size) }

// ReduceScatter combines per-rank blocks of blockSize bytes and leaves
// each rank with its own combined block (pairwise-exchange algorithm:
// each rank receives every other rank's contribution to its block).
func (r *Rank) ReduceScatter(blockSize int) { r.World().ReduceScatter(blockSize) }

// Allgatherv collects sizes[i] bytes from rank i on every rank (ring
// algorithm; step k forwards the block originated by rank id-k).
func (r *Rank) Allgatherv(sizes []int) { r.World().Allgatherv(sizes) }

// Gatherv collects sizes[i] bytes from rank i onto root (linear).
func (r *Rank) Gatherv(root int, sizes []int) { r.World().Gatherv(root, sizes) }
