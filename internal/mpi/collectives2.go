package mpi

// Additional collective operations (same internal-context machinery as
// collectives.go).

// Scan computes an inclusive prefix reduction over size bytes: rank i
// ends with the combination of contributions from ranks 0..i (linear
// chain, as small-world MPIs implement MPI_Scan).
func (r *Rank) Scan(size int) {
	r.enterOp("Scan")
	defer r.exit()
	seq := r.nextColSeq()
	if r.id > 0 {
		q := r.irecvCol(r.id-1, colTag(seq, 0))
		r.waitUntil(func() bool { return q.done })
		r.proc.Compute(r.reduceCost(size))
	}
	if r.id < r.Size()-1 {
		s := r.isendCol(r.id+1, colTag(seq, 0), size)
		r.waitUntil(func() bool { return s.done })
	}
}

// Exscan computes an exclusive prefix reduction: rank i ends with the
// combination of ranks 0..i-1 (rank 0's result is undefined, as in
// MPI_Exscan).
func (r *Rank) Exscan(size int) {
	r.enterOp("Exscan")
	defer r.exit()
	seq := r.nextColSeq()
	// Chain: receive the prefix, forward prefix+own.
	if r.id > 0 {
		q := r.irecvCol(r.id-1, colTag(seq, 0))
		r.waitUntil(func() bool { return q.done })
	}
	if r.id < r.Size()-1 {
		if r.id > 0 {
			r.proc.Compute(r.reduceCost(size))
		}
		s := r.isendCol(r.id+1, colTag(seq, 0), size)
		r.waitUntil(func() bool { return s.done })
	}
}

// ReduceScatter combines per-rank blocks of blockSize bytes and leaves
// each rank with its own combined block (pairwise-exchange algorithm:
// each rank receives every other rank's contribution to its block).
func (r *Rank) ReduceScatter(blockSize int) {
	r.enterOp("ReduceScatter")
	defer r.exit()
	seq := r.nextColSeq()
	p := r.Size()
	for i := 1; i < p; i++ {
		dst := (r.id + i) % p
		src := (r.id - i + p) % p
		s := r.isendCol(dst, colTag(seq, i), blockSize)
		q := r.irecvCol(src, colTag(seq, i))
		r.waitBoth(s, q)
		r.proc.Compute(r.reduceCost(blockSize))
	}
}

// Allgatherv collects sizes[i] bytes from rank i on every rank (ring
// algorithm; step k forwards the block originated by rank id-k).
func (r *Rank) Allgatherv(sizes []int) {
	r.enterOp("Allgatherv")
	defer r.exit()
	if len(sizes) != r.Size() {
		panic("mpi: Allgatherv needs one size per rank")
	}
	seq := r.nextColSeq()
	p := r.Size()
	next := (r.id + 1) % p
	prev := (r.id - 1 + p) % p
	for step := 0; step < p-1; step++ {
		outOrigin := (r.id - step + p) % p
		s := r.isendCol(next, colTag(seq, step), sizes[outOrigin])
		q := r.irecvCol(prev, colTag(seq, step))
		r.waitBoth(s, q)
	}
}

// Gatherv collects sizes[i] bytes from rank i onto root (linear).
func (r *Rank) Gatherv(root int, sizes []int) {
	r.enterOp("Gatherv")
	defer r.exit()
	if len(sizes) != r.Size() {
		panic("mpi: Gatherv needs one size per rank")
	}
	seq := r.nextColSeq()
	if r.id == root {
		var reqs []*Request
		for i := 0; i < r.Size(); i++ {
			if i == root {
				continue
			}
			reqs = append(reqs, r.irecvCol(i, colTag(seq, 0)))
		}
		r.waitUntil(func() bool {
			for _, q := range reqs {
				if !q.done {
					return false
				}
			}
			return true
		})
		return
	}
	s := r.isendCol(root, colTag(seq, 0), sizes[r.id])
	r.waitUntil(func() bool { return s.done })
}
