package mpi

import (
	"fmt"
	"sort"
)

// Comm is a communicator: an ordered group of world ranks with its own
// rank numbering, isolated point-to-point tag space and collective
// context — the MPI_Comm_split machinery NPB codes use for row/column
// reductions and transposes.
//
// Communicators are created with Rank.World (the world communicator)
// and Comm.Split. As in MPI, Split is collective: every member of the
// parent must call it, and members choosing the same color form a new
// communicator ordered by (key, world rank).
type Comm struct {
	r       *Rank
	id      int   // globally agreed communicator id
	members []int // world ranks, index = communicator rank
	myIdx   int
	colSeq  int
}

// maxUserTag bounds user tags on communicator point-to-point calls so
// the communicator id can share the tag space.
const maxUserTag = 1 << 20

// commKey identifies a Split group for id agreement.
type commKey struct {
	parent, seq, color int
}

// commID returns the agreed id for a split group, assigning a fresh
// one on first request. The world's registry is shared state, but the
// simulator's coroutine discipline serializes access, and ids only
// need to be agreed upon, not dense or ordered.
func (w *World) commID(k commKey) int {
	if w.commIDs == nil {
		w.commIDs = make(map[commKey]int)
	}
	id, ok := w.commIDs[k]
	if !ok {
		w.nextCommID++
		id = w.nextCommID
		w.commIDs[k] = id
	}
	return id
}

// World returns the communicator spanning all ranks, with communicator
// ranks equal to world ranks.
func (r *Rank) World() *Comm {
	if r.worldComm == nil {
		members := make([]int, r.Size())
		for i := range members {
			members[i] = i
		}
		r.worldComm = &Comm{r: r, id: 0, members: members, myIdx: r.id}
	}
	return r.worldComm
}

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.myIdx }

// Host returns the underlying rank, for non-communicator operations
// (Compute, monitored regions, nonblocking request waits) interleaved
// with communicator traffic.
func (c *Comm) Host() *Rank { return c.r }

// Size returns the number of members.
func (c *Comm) Size() int { return len(c.members) }

// WorldRank translates a communicator rank to a world rank.
func (c *Comm) WorldRank(commRank int) int { return c.members[commRank] }

// tag scopes a user tag to this communicator.
func (c *Comm) tag(t int) int {
	if t != AnyTag && (t < 0 || t >= maxUserTag) {
		panic(fmt.Sprintf("mpi: communicator tags must be in [0, %d)", maxUserTag))
	}
	if t == AnyTag {
		return AnyTag
	}
	return c.id*maxUserTag + t
}

// ctag scopes an internal collective tag to this communicator.
func (c *Comm) ctag(seq, round int) int {
	return c.id*maxUserTag + colTag(seq, round)
}

func (c *Comm) nextSeq() int {
	// The world communicator shares the rank's collective sequence so
	// Rank-level collectives (r.Barrier()) and world-communicator
	// collectives (r.World().Barrier()) can be freely interleaved
	// without tag collisions.
	if c.id == 0 {
		return c.r.nextColSeq()
	}
	s := c.colSeq
	c.colSeq++
	return s
}

// peekSeq returns the sequence number the next collective will use,
// without consuming it.
func (c *Comm) peekSeq() int {
	if c.id == 0 {
		return c.r.colSeq
	}
	return c.colSeq
}

// translateSrc maps a communicator source (or AnySource) to the world
// rank for matching.
func (c *Comm) translateSrc(src int) int {
	if src == AnySource {
		return AnySource
	}
	return c.members[src]
}

// commStatus rewrites a status's source into communicator ranks.
func (c *Comm) commStatus(st Status) Status {
	for i, wr := range c.members {
		if wr == st.Source {
			st.Source = i
			break
		}
	}
	if st.Tag != AnyTag && st.Tag >= 0 {
		st.Tag -= c.id * maxUserTag
	}
	return st
}

// Send transmits size bytes to communicator rank dst.
func (c *Comm) Send(dst, tag, size int) {
	c.r.Send(c.members[dst], c.tag(tag), size)
}

// Recv receives a message from communicator rank src (or AnySource).
func (c *Comm) Recv(src, tag int) Status {
	return c.commStatus(c.r.Recv(c.translateSrc(src), c.tag(tag)))
}

// Isend starts a non-blocking send to communicator rank dst.
func (c *Comm) Isend(dst, tag, size int) *Request {
	return c.r.Isend(c.members[dst], c.tag(tag), size)
}

// Irecv posts a non-blocking receive from communicator rank src.
func (c *Comm) Irecv(src, tag int) *Request {
	return c.r.Irecv(c.translateSrc(src), c.tag(tag))
}

// Sendrecv exchanges with communicator ranks dst and src.
func (c *Comm) Sendrecv(dst, sendTag, sendSize, src, recvTag int) Status {
	return c.commStatus(c.r.Sendrecv(
		c.members[dst], c.tag(sendTag), sendSize,
		c.translateSrc(src), c.tag(recvTag)))
}

// splitMsg is one member's contribution to a Split.
type splitMsg struct {
	color, key, worldRank int
}

// splitGather collects contributions for one Split instance in the
// world registry; reads counts consumers so the entry can be reclaimed
// once every member has built its communicator.
type splitGather struct {
	contrib []splitMsg
	reads   int
}

// Split partitions the communicator: members passing the same color
// form a new communicator, ordered by (key, world rank). Every member
// must call Split; a member passing a negative color receives nil
// (MPI_UNDEFINED).
//
// The grouping metadata moves through the world's shared registry (the
// simulator's equivalent of the payload bytes a real MPI would carry),
// while an Allgather of the 12-byte (color, key, rank) triples models
// the traffic and provides the required synchronization: a member's
// ring allgather cannot complete until every member has entered — and
// therefore deposited.
func (c *Comm) Split(color, key int) *Comm {
	r := c.r
	seq := c.peekSeq() // the sequence the Allgather below will consume
	k := commKey{parent: c.id, seq: seq, color: 0}
	w := r.w
	if w.splitBuf == nil {
		w.splitBuf = make(map[commKey]*splitGather)
	}
	g := w.splitBuf[k]
	if g == nil {
		g = &splitGather{}
		w.splitBuf[k] = g
	}
	g.contrib = append(g.contrib, splitMsg{color, key, r.id})

	c.Allgather(12)

	groups := groupByColor(g.contrib)
	myGroup := groups[color]
	g.reads++
	if g.reads == len(c.members) {
		delete(w.splitBuf, k)
	}
	if color < 0 {
		return nil
	}
	return c.buildComm(seq, color, myGroup)
}

// groupByColor partitions contributions, ordering each group by
// (key, world rank). Negative colors are dropped (MPI_UNDEFINED).
func groupByColor(contrib []splitMsg) map[int][]splitMsg {
	groups := make(map[int][]splitMsg)
	for _, m := range contrib {
		if m.color < 0 {
			continue
		}
		groups[m.color] = append(groups[m.color], m)
	}
	for _, g := range groups {
		sort.Slice(g, func(i, j int) bool {
			if g[i].key != g[j].key {
				return g[i].key < g[j].key
			}
			return g[i].worldRank < g[j].worldRank
		})
	}
	return groups
}

// buildComm assembles the new communicator from a group.
func (c *Comm) buildComm(seq, color int, group []splitMsg) *Comm {
	if color < 0 {
		return nil
	}
	r := c.r
	members := make([]int, len(group))
	myIdx := -1
	for i, m := range group {
		members[i] = m.worldRank
		if m.worldRank == r.id {
			myIdx = i
		}
	}
	if myIdx < 0 {
		panic("mpi: split group does not contain the caller")
	}
	return &Comm{
		r:       r,
		id:      r.w.commID(commKey{parent: c.id, seq: seq, color: color}),
		members: members,
		myIdx:   myIdx,
	}
}

// --- Collectives over a communicator --------------------------------

// Barrier blocks until all members have entered it.
func (c *Comm) Barrier() {
	r := c.r
	r.enterOp("Barrier")
	defer r.exit()
	seq := c.nextSeq()
	p := c.Size()
	for k, round := 1, 0; k < p; k, round = k<<1, round+1 {
		dst := c.members[(c.myIdx+k)%p]
		src := c.members[(c.myIdx-k+p)%p]
		s := r.isendCol(dst, c.ctag(seq, round), tokenSize)
		q := r.irecvCol(src, c.ctag(seq, round))
		r.waitBoth(s, q)
	}
}

// Bcast broadcasts size bytes from communicator rank root (binomial).
func (c *Comm) Bcast(root, size int) {
	r := c.r
	r.enterOp("Bcast")
	defer r.exit()
	seq := c.nextSeq()
	p := c.Size()
	vr := (c.myIdx - root + p) % p
	mask := 1
	for mask < p {
		if vr&mask != 0 {
			src := c.members[(vr-mask+root)%p]
			q := r.irecvCol(src, c.ctag(seq, 0))
			r.waitUntil(func() bool { return q.done })
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vr+mask < p {
			dst := c.members[(vr+mask+root)%p]
			s := r.isendCol(dst, c.ctag(seq, 0), size)
			r.waitUntil(func() bool { return s.done })
		}
		mask >>= 1
	}
}

// Reduce combines size bytes onto communicator rank root (binomial).
func (c *Comm) Reduce(root, size int) {
	r := c.r
	r.enterOp("Reduce")
	defer r.exit()
	seq := c.nextSeq()
	p := c.Size()
	vr := (c.myIdx - root + p) % p
	mask := 1
	for mask < p {
		if vr&mask == 0 {
			if vr+mask < p {
				src := c.members[(vr+mask+root)%p]
				q := r.irecvCol(src, c.ctag(seq, 0))
				r.waitUntil(func() bool { return q.done })
				r.proc.Compute(r.reduceCost(size))
			}
		} else {
			dst := c.members[(vr-mask+root)%p]
			s := r.isendCol(dst, c.ctag(seq, 0), size)
			r.waitUntil(func() bool { return s.done })
			break
		}
		mask <<= 1
	}
}

// Allreduce combines size bytes across all members.
func (c *Comm) Allreduce(size int) {
	p := c.Size()
	if p&(p-1) != 0 {
		c.Reduce(0, size)
		c.Bcast(0, size)
		return
	}
	r := c.r
	r.enterOp("Allreduce")
	defer r.exit()
	seq := c.nextSeq()
	for mask, round := 1, 0; mask < p; mask, round = mask<<1, round+1 {
		partner := c.members[c.myIdx^mask]
		s := r.isendCol(partner, c.ctag(seq, round), size)
		q := r.irecvCol(partner, c.ctag(seq, round))
		r.waitBoth(s, q)
		r.proc.Compute(r.reduceCost(size))
	}
}

// Alltoall exchanges size bytes between every member pair.
func (c *Comm) Alltoall(size int) {
	r := c.r
	r.enterOp("Alltoall")
	defer r.exit()
	seq := c.nextSeq()
	p := c.Size()
	r.proc.Compute(r.cost().Copy(size))
	for i := 1; i < p; i++ {
		dst := c.members[(c.myIdx+i)%p]
		src := c.members[(c.myIdx-i+p)%p]
		s := r.isendCol(dst, c.ctag(seq, i), size)
		q := r.irecvCol(src, c.ctag(seq, i))
		r.waitBoth(s, q)
	}
}

// Allgather collects size bytes from every member on every member
// (ring).
func (c *Comm) Allgather(size int) {
	r := c.r
	r.enterOp("Allgather")
	defer r.exit()
	seq := c.nextSeq()
	p := c.Size()
	next := c.members[(c.myIdx+1)%p]
	prev := c.members[(c.myIdx-1+p)%p]
	for step := 0; step < p-1; step++ {
		s := r.isendCol(next, c.ctag(seq, step), size)
		q := r.irecvCol(prev, c.ctag(seq, step))
		r.waitBoth(s, q)
	}
}

// Alltoallv exchanges sizes[i] bytes with member i (pairwise
// exchange). sizes must have one entry per member; the caller's own
// entry is copied locally.
func (c *Comm) Alltoallv(sizes []int) {
	r := c.r
	r.enterOp("Alltoallv")
	defer r.exit()
	if len(sizes) != c.Size() {
		panic("mpi: Alltoallv needs one size per rank")
	}
	seq := c.nextSeq()
	p := c.Size()
	r.proc.Compute(r.cost().Copy(sizes[c.myIdx]))
	for i := 1; i < p; i++ {
		dstIdx := (c.myIdx + i) % p
		src := c.members[(c.myIdx-i+p)%p]
		s := r.isendCol(c.members[dstIdx], c.ctag(seq, i), sizes[dstIdx])
		q := r.irecvCol(src, c.ctag(seq, i))
		r.waitBoth(s, q)
	}
}

// Gather collects size bytes from every member onto root (linear).
func (c *Comm) Gather(root, size int) {
	r := c.r
	r.enterOp("Gather")
	defer r.exit()
	seq := c.nextSeq()
	if c.myIdx == root {
		var reqs []*Request
		for i := 0; i < c.Size(); i++ {
			if i == root {
				continue
			}
			reqs = append(reqs, r.irecvCol(c.members[i], c.ctag(seq, 0)))
		}
		r.waitAll(reqs)
		return
	}
	s := r.isendCol(c.members[root], c.ctag(seq, 0), size)
	r.waitUntil(func() bool { return s.done })
}

// Scatter distributes size bytes from root to every member (linear).
func (c *Comm) Scatter(root, size int) {
	r := c.r
	r.enterOp("Scatter")
	defer r.exit()
	seq := c.nextSeq()
	if c.myIdx == root {
		var reqs []*Request
		for i := 0; i < c.Size(); i++ {
			if i == root {
				continue
			}
			reqs = append(reqs, r.isendCol(c.members[i], c.ctag(seq, 0), size))
		}
		r.waitAll(reqs)
		return
	}
	q := r.irecvCol(c.members[root], c.ctag(seq, 0))
	r.waitUntil(func() bool { return q.done })
}

// Scan computes an inclusive prefix reduction over size bytes: member
// i ends with the combination of contributions from members 0..i
// (linear chain, as small-world MPIs implement MPI_Scan).
func (c *Comm) Scan(size int) {
	r := c.r
	r.enterOp("Scan")
	defer r.exit()
	seq := c.nextSeq()
	if c.myIdx > 0 {
		q := r.irecvCol(c.members[c.myIdx-1], c.ctag(seq, 0))
		r.waitUntil(func() bool { return q.done })
		r.proc.Compute(r.reduceCost(size))
	}
	if c.myIdx < c.Size()-1 {
		s := r.isendCol(c.members[c.myIdx+1], c.ctag(seq, 0), size)
		r.waitUntil(func() bool { return s.done })
	}
}

// Exscan computes an exclusive prefix reduction: member i ends with
// the combination of members 0..i-1 (member 0's result is undefined,
// as in MPI_Exscan).
func (c *Comm) Exscan(size int) {
	r := c.r
	r.enterOp("Exscan")
	defer r.exit()
	seq := c.nextSeq()
	// Chain: receive the prefix, forward prefix+own.
	if c.myIdx > 0 {
		q := r.irecvCol(c.members[c.myIdx-1], c.ctag(seq, 0))
		r.waitUntil(func() bool { return q.done })
	}
	if c.myIdx < c.Size()-1 {
		if c.myIdx > 0 {
			r.proc.Compute(r.reduceCost(size))
		}
		s := r.isendCol(c.members[c.myIdx+1], c.ctag(seq, 0), size)
		r.waitUntil(func() bool { return s.done })
	}
}

// ReduceScatter combines per-member blocks of blockSize bytes and
// leaves each member with its own combined block (pairwise-exchange
// algorithm: each member receives every other member's contribution to
// its block).
func (c *Comm) ReduceScatter(blockSize int) {
	r := c.r
	r.enterOp("ReduceScatter")
	defer r.exit()
	seq := c.nextSeq()
	p := c.Size()
	for i := 1; i < p; i++ {
		dst := c.members[(c.myIdx+i)%p]
		src := c.members[(c.myIdx-i+p)%p]
		s := r.isendCol(dst, c.ctag(seq, i), blockSize)
		q := r.irecvCol(src, c.ctag(seq, i))
		r.waitBoth(s, q)
		r.proc.Compute(r.reduceCost(blockSize))
	}
}

// Allgatherv collects sizes[i] bytes from member i on every member
// (ring algorithm; step k forwards the block originated by member
// myIdx-k).
func (c *Comm) Allgatherv(sizes []int) {
	r := c.r
	r.enterOp("Allgatherv")
	defer r.exit()
	if len(sizes) != c.Size() {
		panic("mpi: Allgatherv needs one size per rank")
	}
	seq := c.nextSeq()
	p := c.Size()
	next := c.members[(c.myIdx+1)%p]
	prev := c.members[(c.myIdx-1+p)%p]
	for step := 0; step < p-1; step++ {
		outOrigin := (c.myIdx - step + p) % p
		s := r.isendCol(next, c.ctag(seq, step), sizes[outOrigin])
		q := r.irecvCol(prev, c.ctag(seq, step))
		r.waitBoth(s, q)
	}
}

// Gatherv collects sizes[i] bytes from member i onto root (linear).
func (c *Comm) Gatherv(root int, sizes []int) {
	r := c.r
	r.enterOp("Gatherv")
	defer r.exit()
	if len(sizes) != c.Size() {
		panic("mpi: Gatherv needs one size per rank")
	}
	seq := c.nextSeq()
	if c.myIdx == root {
		var reqs []*Request
		for i := 0; i < c.Size(); i++ {
			if i == root {
				continue
			}
			reqs = append(reqs, r.irecvCol(c.members[i], c.ctag(seq, 0)))
		}
		r.waitAll(reqs)
		return
	}
	s := r.isendCol(c.members[root], c.ctag(seq, 0), sizes[c.myIdx])
	r.waitUntil(func() bool { return s.done })
}
