package mpi_test

import (
	"testing"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/mpi"
)

func TestWorldCommMirrorsWorld(t *testing.T) {
	cluster.Run(cluster.Config{Procs: 4}, func(r *mpi.Rank) {
		w := r.World()
		if w.Rank() != r.ID() || w.Size() != r.Size() {
			t.Errorf("world comm rank/size %d/%d != %d/%d", w.Rank(), w.Size(), r.ID(), r.Size())
		}
		if w.WorldRank(2) != 2 {
			t.Errorf("world comm translation broken")
		}
		w.Barrier()
		r.Barrier() // interleaving with rank-level collectives is safe
		w.Allreduce(8)
	})
}

func TestSplitRowsAndColumns(t *testing.T) {
	// A 2x3 grid: rows {0,1,2} {3,4,5}, columns {0,3} {1,4} {2,5}.
	cluster.Run(cluster.Config{Procs: 6}, func(r *mpi.Rank) {
		w := r.World()
		row := w.Split(r.ID()/3, r.ID()%3)
		col := w.Split(r.ID()%3, r.ID()/3)
		if row.Size() != 3 || col.Size() != 2 {
			t.Fatalf("rank %d: row size %d col size %d", r.ID(), row.Size(), col.Size())
		}
		if row.Rank() != r.ID()%3 || col.Rank() != r.ID()/3 {
			t.Errorf("rank %d: row rank %d col rank %d", r.ID(), row.Rank(), col.Rank())
		}
		if got := row.WorldRank(row.Rank()); got != r.ID() {
			t.Errorf("rank %d: row translation gives %d", r.ID(), got)
		}
		// Collectives within each sub-communicator.
		row.Allreduce(1024)
		col.Barrier()
		row.Bcast(0, 4096)
		col.Reduce(0, 512)
		row.Alltoall(256)
		col.Allgather(128)
	})
}

func TestSplitOrdersByKey(t *testing.T) {
	cluster.Run(cluster.Config{Procs: 4}, func(r *mpi.Rank) {
		// Reverse key: world rank 3 becomes comm rank 0.
		c := r.World().Split(0, -r.ID())
		if want := r.Size() - 1 - r.ID(); c.Rank() != want {
			t.Errorf("rank %d: comm rank %d, want %d", r.ID(), c.Rank(), want)
		}
	})
}

func TestSplitUndefinedColor(t *testing.T) {
	cluster.Run(cluster.Config{Procs: 4}, func(r *mpi.Rank) {
		var c *mpi.Comm
		if r.ID() == 3 {
			c = r.World().Split(-1, 0) // MPI_UNDEFINED
		} else {
			c = r.World().Split(0, r.ID())
		}
		if r.ID() == 3 {
			if c != nil {
				t.Error("undefined color should yield nil communicator")
			}
			return
		}
		if c.Size() != 3 {
			t.Errorf("rank %d: size %d, want 3", r.ID(), c.Size())
		}
		c.Barrier()
	})
}

func TestCommPointToPointIsolatedFromWorld(t *testing.T) {
	// The same (peer, tag) on a sub-communicator and on the world must
	// match independently.
	cluster.Run(cluster.Config{Procs: 2}, func(r *mpi.Rank) {
		c := r.World().Split(0, r.ID())
		if r.ID() == 0 {
			c.Send(1, 5, 100) // via comm
			r.Send(1, 5, 200) // via world
			return
		}
		// Receive the world one first, then the comm one: tags isolate
		// them even though both used tag 5.
		if st := r.Recv(0, 5); st.Size != 200 {
			t.Errorf("world recv got size %d, want 200", st.Size)
		}
		if st := c.Recv(0, 5); st.Size != 100 || st.Source != 0 {
			t.Errorf("comm recv got %+v, want size 100 from comm rank 0", st)
		}
	})
}

func TestCommSendrecvAndNonblocking(t *testing.T) {
	cluster.Run(cluster.Config{Procs: 4}, func(r *mpi.Rank) {
		c := r.World().Split(r.ID()%2, r.ID()) // evens and odds
		peer := 1 - c.Rank()
		st := c.Sendrecv(peer, 1, 2048, peer, 1)
		if st.Size != 2048 || st.Source != peer {
			t.Errorf("comm sendrecv %+v", st)
		}
		s := c.Isend(peer, 2, 64<<10)
		q := c.Irecv(peer, 2)
		r.Compute(100 * time.Microsecond)
		r.Waitall(s, q)
	})
}

func TestNestedSplit(t *testing.T) {
	cluster.Run(cluster.Config{Procs: 8}, func(r *mpi.Rank) {
		half := r.World().Split(r.ID()/4, r.ID())    // two halves of 4
		quarter := half.Split(half.Rank()/2, r.ID()) // pairs
		if quarter.Size() != 2 {
			t.Fatalf("rank %d: quarter size %d", r.ID(), quarter.Size())
		}
		quarter.Allreduce(8)
		half.Barrier()
		r.Barrier()
	})
}

func TestConcurrentSubCommCollectives(t *testing.T) {
	// Rows perform allreduces at the same time as other rows; tags are
	// comm-scoped so the traffic cannot cross.
	res := cluster.Run(cluster.Config{Procs: 8}, func(r *mpi.Rank) {
		row := r.World().Split(r.ID()/2, r.ID())
		for i := 0; i < 20; i++ {
			row.Allreduce(4096)
		}
		r.Barrier()
	})
	if res.Duration <= 0 {
		t.Fatal("no time elapsed")
	}
}

func TestCommTagValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversized tag")
		}
	}()
	cluster.Run(cluster.Config{Procs: 2}, func(r *mpi.Rank) {
		if r.ID() == 0 {
			r.World().Send(1, 1<<20, 10)
		} else {
			r.World().Recv(0, 1<<20)
		}
	})
}

func TestCGStyleRowReduction(t *testing.T) {
	// The NPB CG pattern expressed with communicators: a 2-D grid,
	// partial-sum reductions within rows, transpose via column comms.
	const procs = 8 // 2x4
	cluster.Run(cluster.Config{Procs: procs}, func(r *mpi.Rank) {
		const npcols = 4
		row := r.World().Split(r.ID()/npcols, r.ID()%npcols)
		col := r.World().Split(r.ID()%npcols, r.ID()/npcols)
		for iter := 0; iter < 5; iter++ {
			r.Compute(200 * time.Microsecond) // local matvec
			row.Allreduce(14000 / npcols * 8) // partial vector sums
			col.Allgather(14000 / npcols * 8 / 2)
			row.Allreduce(8) // dot product
		}
		r.Barrier()
	})
}
