package mpi

import (
	"errors"
	"fmt"

	"ovlp/internal/fabric"
)

// Sentinel errors for communication failures under an active fault
// plan. They are wrapped in a *CommError, so match with errors.Is.
var (
	// ErrTimeout means a message exhausted its retransmission budget
	// against a peer that has otherwise been responsive.
	ErrTimeout = errors.New("mpi: communication timed out")
	// ErrPeerUnreachable means a peer never acknowledged anything — it
	// looks dead, not just lossy.
	ErrPeerUnreachable = errors.New("mpi: peer unreachable")
	// ErrProcFailed means a peer process has been detected as failed
	// under fault tolerance (Config.FT): operations on revoked
	// communication abort with a *ProcFailedError wrapping this
	// sentinel until the application runs Rank.Agree.
	ErrProcFailed = errors.New("mpi: peer process failed")
)

// ProcFailedError is the fault-tolerance revocation abort: raised
// (as a panic, recoverable with Rank.Protect) from a library call on a
// rank that has learned of one or more peer failures. Failed lists the
// rank's current view of the dead set; Op names the interrupted call.
type ProcFailedError struct {
	Rank   int
	Failed []int
	Op     string
}

func (e *ProcFailedError) Error() string {
	return fmt.Sprintf("mpi: rank %d: %s aborted, failed ranks %v", e.Rank, e.Op, e.Failed)
}

func (e *ProcFailedError) Unwrap() error { return ErrProcFailed }

// isProcFailed reports whether err is (or wraps) the fault-tolerance
// revocation abort.
func isProcFailed(err error) bool { return errors.Is(err, ErrProcFailed) }

// asDeliveryError extracts a reliability-layer delivery failure.
func asDeliveryError(err error) (*fabric.DeliveryError, bool) {
	var de *fabric.DeliveryError
	ok := errors.As(err, &de)
	return de, ok
}

// CommError is the structured failure of a communication operation:
// which rank failed talking to which peer, doing what, after how many
// attempts. It wraps ErrTimeout or ErrPeerUnreachable and is raised as
// a panic from the failing library call; cluster.RunE recovers it into
// an ordinary returned error.
type CommError struct {
	Rank     int
	Peer     int
	Op       string
	Attempts int
	err      error
}

func (e *CommError) Error() string {
	return fmt.Sprintf("mpi: rank %d: %s to rank %d failed after %d attempt(s): %v",
		e.Rank, e.Op, e.Peer, e.Attempts, e.err)
}

func (e *CommError) Unwrap() error { return e.err }

// commFail converts a reliability-layer delivery failure into the
// library's structured error and aborts the rank with it. The panic
// unwinds through vtime (which wraps it, preserving errors.Is/As) and
// is surfaced as a returned error by cluster.RunE.
func (r *Rank) commFail(err error) {
	var de *fabric.DeliveryError
	if errors.As(err, &de) {
		base := ErrTimeout
		if de.PeerSilent {
			base = ErrPeerUnreachable
		}
		panic(&CommError{Rank: r.id, Peer: int(de.Dst), Op: de.Op, Attempts: de.Attempts, err: base})
	}
	panic(err)
}
