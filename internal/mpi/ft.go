package mpi

import (
	"fmt"
	"math"
	"sort"
	"time"

	"ovlp/internal/fabric"
	"ovlp/internal/trace"
	"ovlp/internal/vtime"
)

// This file implements ULFM-style fault tolerance for crash-stop rank
// failures, in four pieces mirroring MPI's User-Level Failure
// Mitigation proposal:
//
//   - Detection: every rank runs a heartbeat service on its progress
//     engine, pinging its ring successor with a sequenced size-0
//     message. A crashed node's NIC stops acknowledging, so the ping
//     (or any user traffic) exhausts its retry budget — the reliable
//     layer is the failure detector's primitive. Hardware acks are
//     generated at NIC delivery time, so a rank that is merely
//     computing (not polling) still acknowledges and is never falsely
//     suspected under crash-stop semantics.
//   - Revocation: the detecting rank broadcasts the failure to every
//     live peer; from then on library calls on affected ranks abort
//     with *ProcFailedError (wrapping ErrProcFailed) at well-defined
//     points (call entry, wait loops), never from inside a progress
//     sweep — so a dedicated progress thread can never crash the rank.
//   - Agreement: Rank.Agree is a virtual-time-safe consensus on the
//     set of failed ranks (plus the survivors' resume step). Votes
//     accumulate in a world-level pool keyed by generation; a vote
//     carries the voter's dead set, and every rank re-votes whenever
//     the union grows. Dead sets are monotone subsets of a finite
//     world, so the protocol terminates, and it tolerates further
//     failures during the round (missing voters are pinged and, on
//     exhaustion, folded into the round's dead set).
//   - Recovery: Rank.EpochCut abandons the failed epoch's in-flight
//     state (reliable-layer generation bump, queue clears, stale work
//     requests) and advances the message-context epoch so pre-failure
//     traffic can never match post-recovery operations; Rank.Shrink
//     then builds the surviving-ranks communicator with remapped ranks.
//
// The application drives recovery explicitly (cluster.RunFT does this
// for whole-machine runs): run work under Rank.Protect, and on
// ErrProcFailed call Agree, EpochCut, Shrink, then resume.

// FTConfig enables and parameterizes the fault-tolerance service.
// It requires Config.Reliable with a finite retry budget: detection
// latency is approximately HeartbeatPeriod plus the reliable layer's
// total retransmission budget. An unlimited budget never detects.
type FTConfig struct {
	// HeartbeatPeriod paces the liveness pings each rank sends to its
	// ring successor, and the watchdog tick that wakes a parked rank to
	// send them (default 200µs).
	HeartbeatPeriod time.Duration
}

func (c *FTConfig) fillDefaults() {
	if c.HeartbeatPeriod == 0 {
		c.HeartbeatPeriod = 200 * time.Microsecond
	}
}

// ctxEpochStride shifts message contexts by the recovery epoch:
// ctx = base + epoch*stride. Pre-failure traffic that straggles in
// after an EpochCut lands in a stale context and can never match a
// post-recovery receive.
const ctxEpochStride = 8

// ectx shifts a base message context into the rank's current recovery
// epoch. Identity when FT is off or before any failure.
func (r *Rank) ectx(base int) int {
	if r.ft == nil {
		return base
	}
	return base + r.ft.epoch*ctxEpochStride
}

// ftState is one rank's fault-tolerance state.
type ftState struct {
	cfg    FTConfig
	dead   map[int]bool // suspected/known failed world ranks
	agreed map[int]bool // dead set as of the last completed agreement

	failed     bool // revoked: raise ErrProcFailed at the next safe point
	recovering bool // inside Agree: suppress raising, widen pings
	retired    bool // finished its work: never raise, vote implicitly

	gen     int   // agreement generation (lockstep across survivors)
	epoch   int   // recovery epoch (message-context stride)
	rev     int   // bumped on every detection/merge; Agree's wait condition
	members []int // active survivors of the last agreement (world ids)

	nextPing vtime.Time
	tickStop func()
}

// Wire payloads of the fault-tolerance service. All are size-0
// sequenced control messages.

// ftMsg is a liveness ping; its hardware ack is the liveness proof.
type ftMsg struct{ src, gen int }

// revokeMsg announces suspected failures to a live peer.
type revokeMsg struct {
	src  int
	dead []int
}

// ftSyncMsg pokes a peer blocked in an agreement round: the arrival
// alone unparks it so it re-reads the vote pool.
type ftSyncMsg struct{ src, gen int }

// ftVote is one rank's contribution to an agreement round.
type ftVote struct {
	dead []int // the voter's dead set, ascending
	step int   // the voter's last completed application step
	done bool  // the voter has finished its workload
}

// ftRound collects votes for one agreement generation in the world's
// shared registry (the simulator's stand-in for the payload bytes a
// real consensus would carry; the synchronization is modelled by the
// sequenced poke messages).
type ftRound struct {
	votes   map[int]ftVote
	decided []int // the round's decision, set by the first rank to observe full agreement
	version int   // bumped on every (re-)deposit
	reads   int   // survivors that consumed the result; last one reclaims
}

func (w *World) ftRound(gen int) *ftRound {
	if w.ftRounds == nil {
		w.ftRounds = make(map[int]*ftRound)
	}
	rd := w.ftRounds[gen]
	if rd == nil {
		rd = &ftRound{votes: make(map[int]ftVote)}
		w.ftRounds[gen] = rd
	}
	return rd
}

// KillRank models the crash-stop failure of rank id at the current
// virtual instant: its progress thread stops, its retransmission
// timers are silenced, and err is delivered to its proc as a panic
// (recovered by the rank's abort handler into World.RankErrors).
// The fabric-side crash (dead NIC) is separate — cluster wires
// fabric.SetCrashes and this together. Must be called from simulation
// context after Start has spawned the ranks.
func (w *World) KillRank(id int, err error) {
	r := w.ranks[id]
	if r.proc == nil {
		// Crashed before its first dispatch: nothing ever ran.
		w.errs[id] = err
		return
	}
	r.ftStopTick()
	if r.eng != nil {
		r.eng.Stop()
	}
	if r.rel != nil {
		r.rel.Abandon()
	}
	r.proc.Kill(err)
}

// ftInit builds the rank's FT state at attach time.
func (r *Rank) ftInit() {
	fc := r.w.cfg.FT
	if fc == nil {
		return
	}
	if r.rel == nil {
		panic("mpi: Config.FT requires Config.Reliable (retry exhaustion is the failure detector)")
	}
	if mr := r.w.cfg.Reliable.MaxRetries; mr < 0 && mr != fabric.NoRetries {
		panic("mpi: Config.FT requires a finite retry budget (unlimited never detects a failure)")
	}
	cfg := *fc
	cfg.fillDefaults()
	r.ft = &ftState{cfg: cfg, dead: make(map[int]bool), agreed: make(map[int]bool)}
	r.ftArmTick()
}

// ftArmTick arms the self-rearming watchdog that unparks the rank
// every heartbeat period, so a rank parked in a wait loop still sends
// its pings (and notices due retransmissions) on schedule.
func (r *Rank) ftArmTick() {
	ft := r.ft
	var rearm func()
	rearm = func() {
		ft.tickStop = r.w.sim.AfterCancel(ft.cfg.HeartbeatPeriod, func() {
			r.proc.Unpark()
			rearm()
		})
	}
	rearm()
}

// ftStopTick cancels the watchdog; called at finalize, abort and kill
// so the timer chain cannot keep the simulation alive.
func (r *Rank) ftStopTick() {
	if r.ft != nil && r.ft.tickStop != nil {
		r.ft.tickStop()
		r.ft.tickStop = nil
	}
}

// deadList returns the rank's dead set, ascending.
func (ft *ftState) deadList() []int {
	out := make([]int, 0, len(ft.dead))
	for d := range ft.dead {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ftMaybePing sends due liveness pings; called from every progress
// sweep. Outside recovery each rank pings its ring successor among
// live ranks; during an agreement round it pings every expected voter
// that has not voted yet, so a rank that died mid-agreement is still
// detected and folded into the round.
func (r *Rank) ftMaybePing() {
	ft := r.ft
	now := r.proc.Now()
	if ft.nextPing != 0 && now < ft.nextPing {
		return
	}
	ft.nextPing = now.Add(ft.cfg.HeartbeatPeriod)
	for _, peer := range r.ftPingTargets() {
		r.rel.Send(r.driver, fabric.NodeID(peer), 0, 0, ftMsg{src: r.id, gen: ft.gen}, "ft-ping", nil)
	}
}

func (r *Rank) ftPingTargets() []int {
	ft := r.ft
	n := len(r.w.ranks)
	if ft.recovering {
		rd := r.w.ftRound(ft.gen)
		var out []int
		for id := 0; id < n; id++ {
			if id == r.id || ft.dead[id] || r.w.ftFin[id] {
				continue
			}
			if _, ok := rd.votes[id]; !ok {
				out = append(out, id)
			}
		}
		return out
	}
	for k := 1; k < n; k++ {
		s := (r.id + k) % n
		if !ft.dead[s] {
			return []int{s}
		}
	}
	return nil
}

// ftSuspect records a detected failure: mark the peer dead, broadcast
// the revocation to every live peer, and flag the rank to raise at its
// next safe point. Never panics — it runs inside progress sweeps,
// possibly on the progress thread's proc.
func (r *Rank) ftSuspect(peer int, op string) {
	ft := r.ft
	if peer == r.id || ft.dead[peer] {
		return
	}
	ft.dead[peer] = true
	ft.rev++
	if !ft.recovering && !ft.retired {
		ft.failed = true
	}
	if r.trk != nil {
		r.trk.Instant("ft", "suspect", r.proc.Now(),
			trace.Args{Peer: peer, Detail: op})
	}
	dead := ft.deadList()
	for id := range r.w.ranks {
		if id == r.id || ft.dead[id] {
			continue
		}
		r.rel.Send(r.driver, fabric.NodeID(id), 0, 0, revokeMsg{src: r.id, dead: dead}, "ft-revoke", nil)
	}
	r.proc.Unpark()
}

// ftRevoked merges a peer's failure announcement.
func (r *Rank) ftRevoked(m revokeMsg) {
	ft := r.ft
	if ft == nil {
		return
	}
	grew := false
	for _, d := range m.dead {
		if d != r.id && !ft.dead[d] {
			ft.dead[d] = true
			grew = true
		}
	}
	if grew {
		ft.rev++
		if !ft.recovering && !ft.retired {
			ft.failed = true
		}
		if r.trk != nil {
			r.trk.Instant("ft", "revoke", r.proc.Now(),
				trace.Args{Peer: m.src, Detail: fmt.Sprintf("dead=%v", ft.deadList())})
		}
	}
}

// deliveryFail routes a reliability-layer failure. Under fault
// tolerance, retry exhaustion against any peer is interpreted as that
// peer's crash-stop failure (hardware acks make false suspicion of a
// live peer impossible on a loss-free link, and merely improbable
// under loss with an adequate budget); the error is absorbed into
// detection state and raised later at a safe point. Without FT the
// rank aborts with the structured error, as before.
func (r *Rank) deliveryFail(err error) {
	if r.ft != nil {
		if de, ok := asDeliveryError(err); ok {
			r.ftSuspect(int(de.Dst), de.Op)
			return
		}
	}
	r.commFail(err)
}

// ftRaise aborts the current operation with *ProcFailedError once a
// failure has been revoked. Called only at safe points: public call
// entry and the head of wait loops — never inside a progress sweep.
func (r *Rank) ftRaise(op string) {
	ft := r.ft
	if ft == nil || !ft.failed || ft.recovering || ft.retired {
		return
	}
	// failed stays set: every subsequent operation keeps aborting until
	// the application runs an agreement (ULFM's revoked-communicator
	// semantics). Agree clears it.
	panic(&ProcFailedError{Rank: r.id, Failed: ft.deadList(), Op: op})
}

// Protect runs f, converting the library's fault-tolerance abort
// (*ProcFailedError, raised when a peer failure is revoked) into a
// returned error after unwinding the interrupted call's accounting.
// Other aborts — structured communication errors without FT, real
// panics — propagate unchanged. This is the boundary the application
// (or cluster.RunFT) wraps around each recoverable work segment.
func (r *Rank) Protect(f func()) (err error) {
	defer func() {
		v := recover()
		if v == nil {
			return
		}
		e, ok := v.(error)
		if !ok || !isProcFailed(e) {
			panic(v)
		}
		r.unwindCalls()
		err = e
	}()
	f()
	return nil
}

// unwindCalls closes the interrupted call's instrumentation and time
// accounting after an abort unwound through it, and pops any monitored
// regions the application left open on the way out.
func (r *Rank) unwindCalls() {
	if r.depth > 0 {
		for r.depth > 0 {
			r.mon.CallExit()
			r.depth--
		}
		d := r.proc.Now().Sub(r.enterAt)
		r.mpiTime += d
		r.callTimes[r.curOp] += d
	}
	r.mon.UnwindRegions()
}

// ftRetire deposits the rank's permanent "finished" standing in the
// world registry, called from finalize on fault-tolerant ranks. A
// retired rank is alive (its NIC keeps acknowledging) but will never
// vote in an agreement round; survivors recovering from a later
// failure treat it as implicitly agreeing and exclude it from the
// shrunken communicator. The retirement pokes every live peer so a
// rank already parked inside Agree re-evaluates its round.
func (r *Rank) ftRetire() {
	ft := r.ft
	if ft == nil || ft.retired {
		return
	}
	ft.retired = true
	ft.failed = false
	w := r.w
	if w.ftFin == nil {
		w.ftFin = make(map[int]bool)
	}
	w.ftFin[r.id] = true
	w.ftFinVer++
	for id := range w.ranks {
		if id == r.id || ft.dead[id] {
			continue
		}
		r.rel.Send(r.driver, fabric.NodeID(id), 0, 0, ftSyncMsg{src: r.id, gen: ft.gen}, "ft-retire", nil)
	}
}

// AgreeResult is the outcome of one agreement round.
type AgreeResult struct {
	// Failed is every rank agreed dead, ascending (cumulative across
	// rounds).
	Failed []int
	// NewlyFailed is the subset of Failed not present in the previous
	// agreement, ascending.
	NewlyFailed []int
	// Active is the set of world ranks that voted in this round and
	// survived it, ascending — the membership of the communicator
	// Shrink builds (live ranks that already finished their work are
	// excluded alongside the dead).
	Active []int
	// MinStep is the minimum Step voted by any active survivor: the
	// latest application step every survivor has completed, i.e. the
	// shrink-and-continue resume point.
	MinStep int
	// AllDone reports whether every active survivor voted done.
	AllDone bool
}

// Agree runs one round of the survivors' consensus on the failed-rank
// set, contributing the caller's view plus its application progress
// (step, done). It blocks until every expected voter — the world minus
// the dead and the retired — has deposited a matching vote; ranks that
// die during the round are detected (their silence exhausts ping
// retries) and folded in, and the first rank to observe full agreement
// records the decision so a voter that learns of yet another failure
// after the round closed still adopts the same result (and recovers
// again in the next generation for the remainder). All survivors
// return the same result, and the agreement generation advances in
// lockstep. Clears the revoked state when the decision covers
// everything the caller knows failed: after Agree the library is
// usable again (the caller should EpochCut and Shrink before
// communicating).
func (r *Rank) Agree(step int, done bool) AgreeResult {
	ft := r.ft
	if ft == nil {
		panic("mpi: Agree requires Config.FT")
	}
	ft.recovering = true
	defer func() { ft.recovering = false }()
	r.enterOp("Agree")
	defer r.exit()
	w := r.w
	rd := w.ftRound(ft.gen)
	for rd.decided == nil {
		// Merge the union of every deposited vote's dead set (set
		// union: iteration order does not matter).
		for _, v := range rd.votes {
			for _, d := range v.dead {
				if d != r.id && !ft.dead[d] {
					ft.dead[d] = true
					ft.rev++
				}
			}
		}
		mine := ftVote{dead: ft.deadList(), step: step, done: done}
		if cur, ok := rd.votes[r.id]; !ok || !equalInts(cur.dead, mine.dead) {
			rd.votes[r.id] = mine
			rd.version++
			// Poke every live peer: a parked voter re-reads the pool on
			// arrival, and the final deposit releases everyone.
			r.ftPoke()
		}
		if r.ftAgreed(rd) {
			rd.decided = mine.dead
			rd.version++
			r.ftPoke()
			break
		}
		ver, rev, fv := rd.version, ft.rev, w.ftFinVer
		r.waitUntil(func() bool {
			return rd.decided != nil || rd.version != ver || ft.rev != rev || w.ftFinVer != fv
		})
	}
	decided := rd.decided
	inDecided := make(map[int]bool, len(decided))
	for _, d := range decided {
		// Adopt the decision: a vote can name failures the caller has
		// not detected itself yet.
		if d != r.id && !ft.dead[d] {
			ft.dead[d] = true
			ft.rev++
		}
		inDecided[d] = true
	}
	res := AgreeResult{
		Failed:  append([]int(nil), decided...),
		MinStep: math.MaxInt,
		AllDone: true,
	}
	for id, v := range rd.votes {
		if inDecided[id] {
			continue
		}
		res.Active = append(res.Active, id)
		if v.step < res.MinStep {
			res.MinStep = v.step
		}
		if !v.done {
			res.AllDone = false
		}
	}
	sort.Ints(res.Active)
	for _, d := range res.Failed {
		if !ft.agreed[d] {
			res.NewlyFailed = append(res.NewlyFailed, d)
			ft.agreed[d] = true
		}
	}
	ft.members = res.Active
	// A failure detected after the round decided stays pending: the
	// next operation raises again and the next generation agrees on it.
	ft.failed = !equalInts(ft.deadList(), decided)
	rd.reads++
	if rd.reads >= len(res.Active) {
		delete(w.ftRounds, ft.gen)
	}
	ft.gen++
	if r.trk != nil {
		r.trk.Instant("ft", "agree", r.proc.Now(),
			trace.Args{Peer: trace.NoPeer, Size: int64(len(res.Failed)),
				Detail: fmt.Sprintf("gen=%d dead=%v min-step=%d", ft.gen, res.Failed, res.MinStep)})
	}
	return res
}

// ftPoke sends a size-0 sync message to every expected voter, so a
// peer parked inside Agree wakes and re-reads the vote pool.
func (r *Rank) ftPoke() {
	ft := r.ft
	for id := range r.w.ranks {
		if id == r.id || ft.dead[id] || r.w.ftFin[id] {
			continue
		}
		r.rel.Send(r.driver, fabric.NodeID(id), 0, 0, ftSyncMsg{src: r.id, gen: ft.gen}, "ft-agree", nil)
	}
}

// ftAgreed reports whether every expected voter (world minus the
// caller's dead set and the retired) has deposited a vote whose dead
// set equals the caller's — i.e. all active survivors see the same
// union.
func (r *Rank) ftAgreed(rd *ftRound) bool {
	mine := r.ft.deadList()
	for id := range r.w.ranks {
		if id == r.id || r.ft.dead[id] || r.w.ftFin[id] {
			continue
		}
		v, ok := rd.votes[id]
		if !ok || !equalInts(v.dead, mine) {
			return false
		}
	}
	return true
}

// EpochCut abandons the failed epoch's in-flight communication state
// and opens a new recovery epoch. Every survivor must call it exactly
// once after each agreement, before communicating again:
//
//   - the reliable layer moves to a new generation (outstanding sends
//     and retransmission timers are silently dropped; duplicate
//     suppression is kept so stragglers are still recognized),
//   - posted receives, rendezvous state and pipeline pumps are
//     cleared; nonblocking collectives in flight are cancelled,
//   - completions of abandoned work requests become inert,
//   - collective sequence numbers restart so survivors replaying from
//     an agreed step use identical tags, and
//   - the message-context epoch advances, isolating any pre-failure
//     traffic still in the network from post-recovery matching.
//     Arrivals already stamped with a future epoch (a fast survivor's
//     first post-cut messages) are retained.
//
// The cut is the epoch boundary the analysis layers key on: it is
// emitted as an "epoch" instant on the rank's trace track.
func (r *Rank) EpochCut() {
	ft := r.ft
	if ft == nil {
		panic("mpi: EpochCut requires Config.FT")
	}
	ft.epoch++
	if r.rel != nil {
		r.rel.Abandon()
	}
	r.recvQ = nil
	floor := ft.epoch * ctxEpochStride
	var keep []inbound
	for _, ib := range r.unexpQ {
		if ib.ctx >= floor {
			keep = append(keep, ib)
		}
	}
	r.unexpQ = keep
	r.ctsWaiters = make(map[uint64]*Request)
	r.rxActive = make(map[uint64]*Request)
	r.pump = nil
	for range r.colPending {
		r.eng.OpDone() // rebalance the engine's outstanding-work count
	}
	r.colPending = nil
	for wr := range r.wrMap {
		r.staleWR[wr] = true
	}
	r.wrMap = make(map[uint64]pendingWR)
	r.colSeq = 0
	if r.worldComm != nil {
		r.worldComm.colSeq = 0
	}
	if r.mon != nil {
		r.mon.EpochCut()
	}
	if r.trk != nil {
		r.trk.Instant("ft", "epoch", r.proc.Now(),
			trace.Args{Peer: trace.NoPeer, Size: int64(ft.epoch),
				Detail: fmt.Sprintf("dead=%v", ft.deadList())})
	}
}

// Epoch returns the rank's current recovery epoch (0 before any
// failure).
func (r *Rank) Epoch() int {
	if r.ft == nil {
		return 0
	}
	return r.ft.epoch
}

// Failed returns the rank's current view of the failed-rank set,
// ascending (agreed or merely suspected). Empty when FT is off.
func (r *Rank) Failed() []int {
	if r.ft == nil {
		return nil
	}
	return r.ft.deadList()
}

// Shrink builds the communicator of surviving ranks after an
// agreement: members are the active survivors of the last Agree round
// (live ranks that already finished are excluded alongside the dead),
// in ascending world order, remapped to dense communicator ranks. All
// survivors of the same agreement build the same communicator (the id
// is keyed by the agreement generation). Rank-level collectives
// (r.Barrier() etc.) still span the whole world including the dead —
// after a failure, communicate through the shrunken communicator.
func (r *Rank) Shrink() *Comm {
	ft := r.ft
	if ft == nil {
		panic("mpi: Shrink requires Config.FT")
	}
	members := ft.members
	if members == nil {
		for id := range r.w.ranks {
			if !ft.dead[id] {
				members = append(members, id)
			}
		}
	}
	myIdx := -1
	for i, m := range members {
		if m == r.id {
			myIdx = i
		}
	}
	if myIdx < 0 {
		panic("mpi: Shrink called by an excluded rank")
	}
	return &Comm{
		r:       r,
		id:      r.w.commID(commKey{parent: -1, seq: ft.gen, color: 0}),
		members: members,
		myIdx:   myIdx,
	}
}
