package mpi_test

import (
	"testing"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/mpi"
	"ovlp/internal/overlap"
)

// Tests for the hardware-time-stamp mode (mpi.Config.HWTimestamps) —
// the precise characterization the paper names as future work.

// hwWorkload is an Isend/Irecv exchange with computation sized so
// roughly half the 1 MiB transfer can overlap.
func hwWorkload(r *mpi.Rank) {
	peer := 1 - r.ID()
	for i := 0; i < 10; i++ {
		s := r.Isend(peer, 0, 1<<20)
		q := r.Irecv(peer, 0)
		r.Compute(300 * time.Microsecond)
		r.Iprobe(mpi.AnySource, mpi.AnyTag)
		r.Compute(300 * time.Microsecond)
		r.Waitall(s, q)
	}
	r.Barrier()
}

func runHW(t *testing.T, hw bool) cluster.Result {
	t.Helper()
	return cluster.Run(cluster.Config{
		Procs: 2,
		MPI: mpi.Config{
			Protocol:     mpi.DirectRDMARead,
			HWTimestamps: hw,
			Instrument:   &mpi.InstrumentConfig{},
		},
		RecordTruth: true,
	}, hwWorkload)
}

func TestHWTimestampsCollapseBounds(t *testing.T) {
	res := runHW(t, true)
	for rank, rep := range res.Reports {
		tot := rep.Total()
		if tot.Count == 0 {
			t.Fatalf("rank %d saw no transfers", rank)
		}
		if tot.Exact != tot.Count {
			t.Errorf("rank %d: %d of %d transfers not measured exactly", rank,
				tot.Count-tot.Exact, tot.Count)
		}
		if tot.MinOverlapped != tot.MaxOverlapped {
			t.Errorf("rank %d: precise mode should collapse the bounds, got min=%v max=%v",
				rank, tot.MinOverlapped, tot.MaxOverlapped)
		}
	}
}

func TestHWTimestampsWithinClassicalBounds(t *testing.T) {
	// The exact measurement must lie within (or at most marginally
	// outside, per the library-view approximations) the classical
	// bracket measured on the identical deterministic run.
	classic := runHW(t, false).Reports[0].Total()
	exact := runHW(t, true).Reports[0].Total()

	if classic.Count != exact.Count {
		t.Fatalf("transfer counts differ: %d vs %d", classic.Count, exact.Count)
	}
	// Compare percentages: data-transfer denominators differ slightly
	// (estimated vs measured interval).
	slack := 5.0
	if exact.MaxPercent() > classic.MaxPercent()+slack {
		t.Errorf("exact overlap %.1f%% far above the classical max bound %.1f%%",
			exact.MaxPercent(), classic.MaxPercent())
	}
	if exact.MinPercent() < classic.MinPercent()-slack {
		t.Errorf("exact overlap %.1f%% far below the classical min bound %.1f%%",
			exact.MinPercent(), classic.MinPercent())
	}
	// And it must actually narrow the bracket.
	if w := exact.MaxPercent() - exact.MinPercent(); w != 0 {
		t.Errorf("exact bracket width %.2f%%, want 0", w)
	}
}

func TestHWTimestampsMatchGroundTruth(t *testing.T) {
	// The receiver's exact overlap for the single rendezvous read must
	// equal the intersection of the true transfer interval with its
	// compute phases, which this workload makes easy to state: the
	// read happens entirely inside Wait, so overlap is zero.
	res := cluster.Run(cluster.Config{
		Procs: 2,
		MPI: mpi.Config{
			Protocol:     mpi.DirectRDMARead,
			HWTimestamps: true,
			Instrument:   &mpi.InstrumentConfig{},
		},
	}, func(r *mpi.Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, 1<<20)
			return
		}
		q := r.Irecv(0, 0)
		st := r.Wait(q) // no compute: read runs inside Wait
		if st.Size != 1<<20 {
			t.Errorf("size %d", st.Size)
		}
	})
	tot := res.Reports[1].Total()
	if tot.MaxOverlapped != 0 || tot.MinOverlapped != 0 {
		t.Errorf("receiver with zero compute shows overlap %v/%v",
			tot.MinOverlapped, tot.MaxOverlapped)
	}
}

func TestHWTimestampsEagerReceiverPrecision(t *testing.T) {
	// The classical framework can only say 0-100% for an eager
	// receiver (case 3). With hardware stamps the receiver measures
	// the real value: computation fully covers the transfer here, so
	// the exact overlap is ~100%.
	res := cluster.Run(cluster.Config{
		Procs: 2,
		MPI: mpi.Config{
			HWTimestamps: true,
			Instrument:   &mpi.InstrumentConfig{},
		},
	}, func(r *mpi.Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, 8<<10)
			return
		}
		q := r.Irecv(0, 0)
		r.Compute(2 * time.Millisecond) // transfer lands inside this
		r.Wait(q)
	})
	tot := res.Reports[1].Total()
	if tot.MinPercent() < 90 || tot.MinPercent() != tot.MaxPercent() {
		t.Errorf("eager receiver exact overlap %.1f/%.1f%%, want ~100/~100",
			tot.MinPercent(), tot.MaxPercent())
	}
}

func TestHWTimestampsBinnedLikeClassical(t *testing.T) {
	res := runHW(t, true)
	rep := res.Reports[0]
	var reg *overlap.RegionReport
	for i := range rep.Regions {
		if rep.Regions[i].Total.Count > 0 {
			reg = &rep.Regions[i]
		}
	}
	if reg == nil {
		t.Fatal("no populated region")
	}
	var n int
	for _, b := range reg.Bins {
		n += b.Count
	}
	if n != reg.Total.Count {
		t.Errorf("bins hold %d transfers, region total %d", n, reg.Total.Count)
	}
}
