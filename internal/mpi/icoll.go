package mpi

import (
	"fmt"

	"ovlp/internal/coll"
	"ovlp/internal/trace"
)

// This file implements the nonblocking collectives: each call builds a
// dataflow schedule (package coll) and registers it with the rank; the
// progress engine — whichever mode is configured — then starts ready
// actions and retires finished ones until the schedule drains. The
// initial ready wave is posted inside the call itself, so even manual
// mode gets round zero onto the wire before returning.

// maxSchedRound bounds a schedule's tag-round field; schedTag packs
// (sequence, round, chunk) into the message tag within the dedicated
// ctxSchedule context.
const maxSchedRound = 1 << 10

func schedTag(seq, round, chunk int) int {
	return seq<<16 | round<<6 | chunk
}

// CollRequest is a nonblocking collective handle, as returned by
// Ibcast, Ireduce, Iallreduce, Ialltoall and Ibarrier and consumed by
// WaitColl and TestColl.
type CollRequest struct {
	r     *Rank
	op    string
	label string // "Iallreduce[ring]": the schedule's site label
	seq   int
	acts  []schedAction
	nDone int
	done  bool
}

// schedAction is one schedule action plus its execution state.
type schedAction struct {
	coll.Action
	started bool
	fin     bool
	req     *Request // in-flight transfer (Send/Recv actions)
}

// Done reports completion without progressing; use TestColl to poll.
func (cr *CollRequest) Done() bool { return cr.done }

// Label returns the schedule's site label ("Iallreduce[ring]"), the
// name under which the profiler attributes its transfers.
func (cr *CollRequest) Label() string { return cr.label }

func (cr *CollRequest) String() string {
	return fmt.Sprintf("%s(seq=%d %d/%d done=%v)", cr.label, cr.seq, cr.nDone, len(cr.acts), cr.done)
}

// Ibcast starts a nonblocking broadcast of size bytes from root.
func (r *Rank) Ibcast(root, size int) *CollRequest {
	return r.startColl("Ibcast", coll.OpBcast, root, size)
}

// Ireduce starts a nonblocking reduction of size bytes to root.
func (r *Rank) Ireduce(root, size int) *CollRequest {
	return r.startColl("Ireduce", coll.OpReduce, root, size)
}

// Iallreduce starts a nonblocking all-reduce of size bytes.
func (r *Rank) Iallreduce(size int) *CollRequest {
	return r.startColl("Iallreduce", coll.OpAllreduce, 0, size)
}

// Ialltoall starts a nonblocking all-to-all of size bytes per pair.
func (r *Rank) Ialltoall(size int) *CollRequest {
	return r.startColl("Ialltoall", coll.OpAlltoall, 0, size)
}

// Ibarrier starts a nonblocking barrier.
func (r *Rank) Ibarrier() *CollRequest {
	return r.startColl("Ibarrier", coll.OpBarrier, 0, 0)
}

// WaitColl blocks until the collective completes, driving progress.
func (r *Rank) WaitColl(cr *CollRequest) {
	r.enterOp("WaitColl")
	defer r.exit()
	r.waitUntil(func() bool { return cr.done })
}

// TestColl polls progress once and reports whether the collective has
// completed — the manual-mode application's progress lever.
func (r *Rank) TestColl(cr *CollRequest) bool {
	r.enterOp("TestColl")
	defer r.exit()
	r.progress()
	return cr.done
}

// startColl builds the schedule and posts its initial ready wave.
func (r *Rank) startColl(opName string, op coll.Op, root, size int) *CollRequest {
	r.enterOp(opName)
	defer r.exit()
	cfg := &r.w.cfg
	sch, err := coll.Build(coll.Params{
		Op: op, Algo: cfg.CollAlgo, Rank: r.id, Procs: r.Size(),
		Root: root, Size: size, Chunk: cfg.CollChunk,
	})
	if err != nil {
		panic("mpi: " + err.Error())
	}
	if sch.Rounds > maxSchedRound {
		panic(fmt.Sprintf("mpi: %s schedule needs %d rounds (max %d)", opName, sch.Rounds, maxSchedRound))
	}
	cr := &CollRequest{
		r: r, op: opName, seq: r.nextColSeq(),
		label: opName + "[" + sch.Algo.String() + "]",
	}
	cr.acts = make([]schedAction, len(sch.Actions))
	for i, a := range sch.Actions {
		cr.acts[i].Action = a
	}
	if len(cr.acts) == 0 {
		cr.done = true
		return cr
	}
	r.colPending = append(r.colPending, cr)
	r.eng.OpStarted()
	// Post the initial wave through the guarded sweep rather than
	// advancing directly: if the progress thread is mid-sweep (it can
	// yield inside a protocol Compute), mutating its schedule list
	// under it would corrupt the sweep. The guard defers our posting
	// to the thread's next quantum in that case — deterministically.
	r.progress()
	return cr
}

// advanceColl runs every pending schedule's ready actions and retires
// completed schedules. It is part of the progress sweep: call it only
// from progress(), under the progressing guard.
func (r *Rank) advanceColl() bool {
	if len(r.colPending) == 0 {
		return false
	}
	did := false
	for _, cr := range r.colPending {
		if cr.advance() {
			did = true
		}
	}
	kept := r.colPending[:0]
	for _, cr := range r.colPending {
		if !cr.done {
			kept = append(kept, cr)
		}
	}
	for i := len(kept); i < len(r.colPending); i++ {
		r.colPending[i] = nil
	}
	r.colPending = kept
	return did
}

// advance starts every ready action and retires finished transfers,
// iterating to a fixpoint so freshly satisfied dependencies start in
// the same sweep. Local actions charge their CPU cost to the current
// driver — the rank inside a call, the progress thread during its
// sweeps — which is exactly how asynchronous progress steals cycles on
// real systems.
func (cr *CollRequest) advance() bool {
	if cr.done {
		return false
	}
	r := cr.r
	did := false
	for changed := true; changed; {
		changed = false
		for i := range cr.acts {
			a := &cr.acts[i]
			if a.fin {
				continue
			}
			if a.started {
				if a.req != nil && a.req.done {
					a.fin = true
					cr.nDone++
					changed, did = true, true
				}
				continue
			}
			ready := true
			for _, d := range a.Deps {
				if !cr.acts[d].fin {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			// Mark started before any Compute below: a Compute yields,
			// and a reentrant look at this action must not start it
			// twice.
			a.started = true
			changed, did = true, true
			tag := schedTag(cr.seq, a.Round, a.Chunk)
			switch a.Kind {
			case coll.Send:
				req := r.newReq(reqSend, a.Peer, tag, a.Size)
				req.schedLabel = cr.label
				r.startSend(req, ctxSchedule, false)
				a.req = req
			case coll.Recv:
				a.req = r.postRecvLabeled(a.Peer, tag, ctxSchedule, cr.label)
			case coll.Reduce:
				r.driver.Compute(r.reduceCost(a.Size))
				a.fin = true
				cr.nDone++
			case coll.Copy:
				r.driver.Compute(r.cost().Copy(a.Size))
				a.fin = true
				cr.nDone++
			}
		}
	}
	if !cr.done && cr.nDone == len(cr.acts) {
		cr.done = true
		r.eng.OpDone()
	}
	return did
}

// noteSchedXfer tags a transfer as belonging to a collective schedule:
// an instant on the rank's host track carrying the transfer id and the
// schedule label, which the profiler joins against the overlap events
// to attribute the transfer's bounds to the owning collective instead
// of to whichever call happened to observe it.
func (r *Rank) noteSchedXfer(label string, xid uint64) {
	if label == "" || r.trk == nil {
		return
	}
	r.trk.Instant("coll", "sched", r.driver.Now(),
		trace.Args{Peer: trace.NoPeer, ID: xid, Detail: label})
}
