package mpi_test

import (
	"fmt"
	"testing"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/coll"
	"ovlp/internal/mpi"
	"ovlp/internal/progress"
)

// runColl executes main on n ranks with the given collective algorithm
// and progress mode, instrumented, both protocols' default thresholds.
func runColl(t *testing.T, n int, algo coll.Algo, mode progress.Mode, proto mpi.LongProtocol, main func(*mpi.Rank)) cluster.Result {
	t.Helper()
	return cluster.Run(cluster.Config{
		Procs: n,
		MPI: mpi.Config{
			Protocol:   proto,
			CollAlgo:   algo,
			Progress:   progress.Config{Mode: mode},
			Instrument: &mpi.InstrumentConfig{},
		},
		RecordTruth: true,
	}, main)
}

var allModes = []progress.Mode{progress.Manual, progress.Piggyback, progress.Thread}
var allAlgos = []coll.Algo{coll.Binomial, coll.Ring, coll.RecDouble}

// TestNonblockingCollectivesComplete drives every collective through
// every algorithm and progress mode, with computation between start and
// wait, on both a power-of-two and a non-power-of-two world.
func TestNonblockingCollectivesComplete(t *testing.T) {
	ops := []struct {
		name  string
		start func(r *mpi.Rank) *mpi.CollRequest
	}{
		{"Ibcast", func(r *mpi.Rank) *mpi.CollRequest { return r.Ibcast(1, 32<<10) }},
		{"Ireduce", func(r *mpi.Rank) *mpi.CollRequest { return r.Ireduce(0, 32<<10) }},
		{"Iallreduce", func(r *mpi.Rank) *mpi.CollRequest { return r.Iallreduce(32 << 10) }},
		{"Ialltoall", func(r *mpi.Rank) *mpi.CollRequest { return r.Ialltoall(8 << 10) }},
		{"Ibarrier", func(r *mpi.Rank) *mpi.CollRequest { return r.Ibarrier() }},
	}
	for _, procs := range []int{4, 3} {
		for _, op := range ops {
			for _, algo := range allAlgos {
				for _, mode := range allModes {
					name := fmt.Sprintf("p%d/%s/%s/%s", procs, op.name, algo, mode)
					t.Run(name, func(t *testing.T) {
						res := runColl(t, procs, algo, mode, mpi.PipelinedRDMA, func(r *mpi.Rank) {
							cr := op.start(r)
							r.Compute(50 * time.Microsecond)
							r.WaitColl(cr)
							if !cr.Done() {
								t.Errorf("rank %d: not done after WaitColl", r.ID())
							}
						})
						if res.Duration <= 0 {
							t.Error("no virtual time elapsed")
						}
					})
				}
			}
		}
	}
}

// TestCollRequestTest checks manual-mode polling via TestColl and that
// Done performs no progress by itself.
func TestCollRequestTest(t *testing.T) {
	runColl(t, 4, coll.Ring, progress.Manual, mpi.PipelinedRDMA, func(r *mpi.Rank) {
		cr := r.Iallreduce(16 << 10)
		polls := 0
		for !cr.Done() {
			r.Compute(5 * time.Microsecond)
			r.TestColl(cr)
			polls++
			if polls > 10000 {
				t.Fatalf("rank %d: Iallreduce never completed", r.ID())
				return
			}
		}
		if polls == 0 {
			t.Errorf("rank %d: completed with zero polls — suspicious for manual mode", r.ID())
		}
	})
}

// TestSingleRankCollectives checks the degenerate one-process world:
// schedules are empty (or local-only) and complete inside the call.
func TestSingleRankCollectives(t *testing.T) {
	runColl(t, 1, coll.Auto, progress.Thread, mpi.PipelinedRDMA, func(r *mpi.Rank) {
		for _, cr := range []*mpi.CollRequest{
			r.Ibarrier(), r.Ibcast(0, 1024), r.Ireduce(0, 1024),
			r.Iallreduce(1024), r.Ialltoall(1024),
		} {
			if !cr.Done() && !r.TestColl(cr) {
				r.WaitColl(cr)
			}
			if !cr.Done() {
				t.Errorf("%v not done", cr)
			}
		}
	})
}

// TestConcurrentCollectives overlaps two in-flight collectives plus
// point-to-point traffic in the same window, under the thread engine,
// checking context/tag isolation.
func TestConcurrentCollectives(t *testing.T) {
	for _, proto := range []mpi.LongProtocol{mpi.PipelinedRDMA, mpi.DirectRDMARead} {
		t.Run(proto.String(), func(t *testing.T) {
			runColl(t, 4, coll.Auto, progress.Thread, proto, func(r *mpi.Rank) {
				a := r.Iallreduce(64 << 10) // rendezvous-sized
				b := r.Ibcast(2, 4<<10)     // eager-sized
				peer := r.ID() ^ 1
				sq := r.Isend(peer, 42, 2048)
				rq := r.Irecv(peer, 42)
				r.Compute(200 * time.Microsecond)
				r.WaitColl(a)
				r.WaitColl(b)
				r.Wait(sq)
				r.Wait(rq)
				// A blocking collective after the dust settles must still
				// line up across ranks.
				r.Barrier()
			})
		})
	}
}

// TestUnwaitedCollectiveDrainsAtFinalize leaves a collective un-waited;
// finalize must drive it to completion rather than deadlocking or
// abandoning peers.
func TestUnwaitedCollectiveDrainsAtFinalize(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			var reqs [4]*mpi.CollRequest
			runColl(t, 4, coll.RecDouble, mode, mpi.PipelinedRDMA, func(r *mpi.Rank) {
				reqs[r.ID()] = r.Iallreduce(8 << 10)
			})
			for i, cr := range reqs {
				if !cr.Done() {
					t.Errorf("rank %d: collective not drained at finalize", i)
				}
			}
		})
	}
}

// TestThreadModeProgressesWithoutPolls is the core of the subsystem's
// reason to exist: with a progress thread, a multi-round collective
// completes during a long compute with no application polls at all, so
// WaitColl afterwards is (nearly) free. In manual mode the same
// pattern has to run most rounds inside WaitColl.
func TestThreadModeProgressesWithoutPolls(t *testing.T) {
	waitTime := func(mode progress.Mode) time.Duration {
		var wt time.Duration
		runColl(t, 8, coll.Ring, mode, mpi.PipelinedRDMA, func(r *mpi.Rank) {
			cr := r.Iallreduce(32 << 10)
			r.Compute(2 * time.Millisecond)
			r.WaitColl(cr)
			if r.ID() == 0 {
				wt = r.CallTimes()["WaitColl"]
			}
		})
		return wt
	}
	manual := waitTime(progress.Manual)
	thread := waitTime(progress.Thread)
	if thread*2 >= manual {
		t.Errorf("thread-mode WaitColl %v not substantially below manual %v", thread, manual)
	}
}
