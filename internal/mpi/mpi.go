// Package mpi implements a message-passing library in the style of the
// MPI implementations the paper instruments (Open MPI 1.0.1 and
// MVAPICH2 0.6.5), running over the simulated RDMA fabric.
//
// The library reproduces the architectural properties that determine
// overlap behaviour on real systems:
//
//   - A single-threaded, polling-based progress engine: protocol state
//     machines advance only while the application is inside a library
//     call. An arrived rendezvous request or acknowledgment sits
//     unnoticed in the NIC queues until the next MPI call polls.
//   - An eager protocol for short messages (bounce-buffer copy, then a
//     one-sided write the receiver discovers by polling).
//   - Two long-message rendezvous protocols, selectable per-world like
//     Open MPI's mpi_leave_pinned parameter: PipelinedRDMA (fragmented
//     RDMA writes scheduled by the sender after an acknowledgment —
//     Open MPI's default) and DirectRDMARead (the receiver reads the
//     sender's buffer directly upon the request — Open MPI with
//     leave_pinned, and MVAPICH2's rendezvous).
//
// The library embeds the paper's instrumentation (package overlap):
// every call is bracketed by CALL_ENTER/CALL_EXIT and every user-data
// transfer posts XFER_BEGIN/XFER_END where the library can observe
// them, entirely within the library.
//
// Messages carry sizes and envelopes, not payload bytes: the package
// is a timing-faithful communication skeleton, which is exactly what
// overlap characterization requires.
package mpi

import (
	"fmt"
	"time"

	"ovlp/internal/calib"
	"ovlp/internal/coll"
	"ovlp/internal/fabric"
	"ovlp/internal/overlap"
	"ovlp/internal/progress"
	"ovlp/internal/trace"
	"ovlp/internal/vtime"
)

// LongProtocol selects the rendezvous protocol for messages above the
// eager threshold.
type LongProtocol int

const (
	// PipelinedRDMA fragments the message; the sender transmits a
	// request plus the first fragment, waits for an acknowledgment,
	// and then pipelines the remaining fragments — but only while the
	// application is inside the library (Open MPI v1.0 default).
	PipelinedRDMA LongProtocol = iota
	// DirectRDMARead has the receiver pull the whole message from the
	// sender's registered buffer with a single RDMA read upon seeing
	// the request (Open MPI mpi_leave_pinned; MVAPICH2 rendezvous).
	DirectRDMARead
)

func (p LongProtocol) String() string {
	switch p {
	case PipelinedRDMA:
		return "pipelined-rdma"
	case DirectRDMARead:
		return "direct-rdma-read"
	}
	return "invalid"
}

// Wildcards for Recv/Irecv/Probe matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// InstrumentConfig enables the overlap instrumentation inside the
// library.
type InstrumentConfig struct {
	// Table is the a-priori transfer-time table (required).
	Table *calib.Table
	// QueueSize and BinBounds configure each rank's Monitor
	// (zero-values select the overlap package defaults).
	QueueSize int
	BinBounds []int
	// ModelCost, when true, charges the modelled CPU cost of the
	// instrumentation itself to the rank (used by the overhead
	// experiment, Fig. 20).
	ModelCost bool
	// EventCost and DrainCostPerEvent override the modelled unit costs
	// when ModelCost is set; zero selects defaults (40ns, 25ns).
	EventCost         time.Duration
	DrainCostPerEvent time.Duration
	// TraceSinkFor, if non-nil, supplies a per-rank event sink for
	// validation against ground truth. Production configs leave it nil.
	TraceSinkFor func(rank int) func(overlap.Event)
}

// Config parameterizes a World.
type Config struct {
	// Protocol is the long-message protocol (default PipelinedRDMA).
	Protocol LongProtocol
	// EagerThreshold is the largest message sent eagerly, in bytes
	// (default 12 KiB, typical for InfiniBand MPIs of the era).
	EagerThreshold int
	// FragmentSize is the pipelined-protocol fragment size (default
	// 64 KiB). The first fragment, which travels with the request, is
	// EagerThreshold bytes.
	FragmentSize int
	// MaxOutstanding is the pipelined-protocol credit limit on
	// simultaneously posted fragments (default 4).
	MaxOutstanding int
	// LeavePinned enables the registration cache: buffers keyed by
	// (peer, tag, size) are pinned once and reused, as with Open MPI's
	// mpi_leave_pinned MRU cache. When false, rendezvous operations
	// pin on the fly every time (MVAPICH2 behaviour).
	LeavePinned bool
	// ReduceBandwidth models the reduction-operator cost in bytes per
	// second (default 2 GB/s).
	ReduceBandwidth float64
	// Reliable enables the software reliable-delivery layer: sequence
	// numbers, hardware acks, retransmission with exponential backoff
	// and duplicate suppression. Required when the fabric runs with an
	// active fault plan; nil keeps the pre-fault fast path. On retry
	// exhaustion library calls fail with a *CommError wrapping
	// ErrTimeout or ErrPeerUnreachable.
	Reliable *fabric.ReliableParams
	// CollAlgo selects the algorithm family for the nonblocking
	// collectives' dataflow schedules (default coll.Auto: the
	// customary per-operation choice).
	CollAlgo coll.Algo
	// CollChunk pipelines schedule transfers in chunks of at most this
	// many bytes where the algorithm supports it (0 = whole-message).
	CollChunk int
	// Progress configures who advances pending nonblocking-collective
	// schedules between library calls: nobody (manual, the default),
	// every call boundary (piggyback), or a dedicated per-rank
	// progress thread waking on a virtual-time quantum.
	Progress progress.Config
	// FT enables ULFM-style fault tolerance: heartbeat failure
	// detection on the progress engine, ErrProcFailed revocation,
	// survivor agreement (Rank.Agree), recovery epochs (Rank.EpochCut)
	// and communicator shrinking (Rank.Shrink). Requires Reliable with
	// a finite retry budget — retry exhaustion is the failure
	// detector's primitive.
	FT *FTConfig
	// HWTimestamps makes the library consume the NIC's hardware
	// transfer time-stamps, feeding the instrumentation's precise
	// XferExact path instead of the XFER_BEGIN/XFER_END bounds — the
	// refinement the paper names as future work. The HCAs of the
	// paper's era could not do this; the simulated fabric can.
	HWTimestamps bool
	// Instrument enables the overlap instrumentation; nil runs the
	// library uninstrumented.
	Instrument *InstrumentConfig
	// Tracer, if non-nil, receives structured trace records: one call
	// span per outermost library call (tagged with peer and message
	// size where the call has them) plus the overlap monitor's event
	// stream, all on the rank's host track. When Instrument.ModelCost
	// is also set, each call-span emission charges one EventCost to the
	// rank, so the tracer's overhead is modelled like the monitor's.
	Tracer *trace.Tracer
}

func (c *Config) fillDefaults() {
	if c.EagerThreshold == 0 {
		c.EagerThreshold = 12 << 10
	}
	if c.FragmentSize == 0 {
		c.FragmentSize = 64 << 10
	}
	if c.MaxOutstanding == 0 {
		c.MaxOutstanding = 4
	}
	if c.ReduceBandwidth == 0 {
		c.ReduceBandwidth = 2e9
	}
	if ic := c.Instrument; ic != nil && ic.ModelCost {
		if ic.EventCost == 0 {
			ic.EventCost = 40 * time.Nanosecond
		}
		if ic.DrainCostPerEvent == 0 {
			ic.DrainCostPerEvent = 25 * time.Nanosecond
		}
	}
}

// World is a set of communicating ranks over one fabric — the
// simulation analogue of MPI_COMM_WORLD.
type World struct {
	sim     *vtime.Sim
	fab     *fabric.Fabric
	cfg     Config
	ranks   []*Rank
	reports []*overlap.Report
	errs    []error

	// Communicator bookkeeping (accessed under the simulator's
	// coroutine discipline, so no locking is needed).
	commIDs    map[commKey]int
	nextCommID int
	splitBuf   map[commKey]*splitGather
	ftRounds   map[int]*ftRound
	ftFin      map[int]bool // ranks that finalized (implicit agreement votes)
	ftFinVer   int          // bumped on every retirement; Agree's wait condition
}

// NewWorld creates a world spanning every node of the fabric.
func NewWorld(sim *vtime.Sim, fab *fabric.Fabric, cfg Config) *World {
	cfg.fillDefaults()
	w := &World{
		sim:     sim,
		fab:     fab,
		cfg:     cfg,
		reports: make([]*overlap.Report, fab.Nodes()),
		errs:    make([]error, fab.Nodes()),
	}
	for i := 0; i < fab.Nodes(); i++ {
		w.ranks = append(w.ranks, newRank(w, i))
	}
	return w
}

// Config returns the world's (defaults-filled) configuration.
func (w *World) Config() Config { return w.cfg }

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Start spawns one proc per rank, each executing main. The simulation
// must be run (sim.Run) afterwards to execute them.
//
// A rank whose main (or finalization) aborts with an error value — the
// library's structured *CommError path — is recovered in place: the
// error is recorded (see RankErrors), the rank is torn down without
// quiescing, and the other ranks keep running, so simultaneous
// failures across the machine are all observable. Non-error panics are
// bugs and propagate.
func (w *World) Start(main func(r *Rank)) {
	for _, r := range w.ranks {
		r := r
		w.sim.Spawn(fmt.Sprintf("rank%d", r.id), func(p *vtime.Proc) {
			r.attach(p)
			defer r.recoverAbort()
			main(r)
			r.finalize()
		})
	}
}

// RankErrors returns each rank's recovered structured failure, nil
// entries for ranks that finished cleanly; valid after the simulation
// has run.
func (w *World) RankErrors() []error { return w.errs }

// Reports returns the per-rank instrumentation reports; valid after
// the simulation has run to completion, nil entries if uninstrumented.
func (w *World) Reports() []*overlap.Report { return w.reports }

// procClock adapts a vtime proc to the overlap.Clock interface.
type procClock struct{ p *vtime.Proc }

func (c procClock) Now() time.Duration { return c.p.Now().Duration() }

// Status describes a completed receive.
type Status struct {
	Source int
	Tag    int
	Size   int
}

// Rank is one process's handle to the library: the target of all
// communication calls. All methods must be called from the rank's own
// proc (the main function passed to Start).
type Rank struct {
	w    *World
	id   int
	proc *vtime.Proc
	// driver is the proc currently driving protocol code: normally the
	// rank's own proc, swapped to the progress thread's proc for the
	// duration of its sweeps so protocol CPU costs charge to whoever
	// actually runs them.
	driver *vtime.Proc
	nic    *fabric.NIC
	rel    *fabric.Reliable // reliable delivery, nil unless Config.Reliable
	mon    *overlap.Monitor
	eng    *progress.Engine

	recvQ  []*Request // posted, unmatched receives, in post order
	unexpQ []inbound  // arrived, unmatched messages, in arrival order

	wrMap      map[uint64]pendingWR // CQE routing
	staleWR    map[uint64]bool      // WRs abandoned at an epoch cut
	ctsWaiters map[uint64]*Request  // sender reqID -> rendezvous send
	rxActive   map[uint64]*Request  // receiver reqID -> rendezvous recv
	pump       []*Request           // pipelined sends with fragments to post

	ft *ftState // fault tolerance, nil unless Config.FT

	regCache  map[regKey]bool // leave_pinned registration cache
	worldComm *Comm

	colPending  []*CollRequest // nonblocking collectives in flight
	progressing bool           // a progress sweep is running (reentrancy guard)
	stalled     bool           // rank parked waiting for the thread's sweep to end

	reqSeq    uint64
	colSeq    int
	depth     int
	enterAt   vtime.Time
	curOp     string
	curPeer   int   // peer of the outermost call, -1 when none
	curSize   int64 // message size of the outermost call, -1 when none
	mpiTime   time.Duration
	callTimes map[string]time.Duration
	waiting   bool

	trk       *trace.Track  // nil when untraced
	traceCost time.Duration // modelled cost per call-span emission
}

type regKey struct {
	peer, tag, size int
}

func newRank(w *World, id int) *Rank {
	return &Rank{
		w:          w,
		id:         id,
		nic:        w.fab.NIC(fabric.NodeID(id)),
		wrMap:      make(map[uint64]pendingWR),
		staleWR:    make(map[uint64]bool),
		ctsWaiters: make(map[uint64]*Request),
		rxActive:   make(map[uint64]*Request),
		regCache:   make(map[regKey]bool),
		callTimes:  make(map[string]time.Duration),
	}
}

// attach binds the rank to its proc at spawn time and builds its
// monitor.
func (r *Rank) attach(p *vtime.Proc) {
	r.proc = p
	r.driver = p
	// Unpark unconditionally: a packet can land between the wait
	// loop's last empty poll and its Park (during a poll's own yield),
	// and the permit semantics turn the early notification into an
	// immediate wake instead of a lost one.
	r.nic.SetNotify(func() { r.proc.Unpark() })
	if rp := r.w.cfg.Reliable; rp != nil {
		r.rel = fabric.NewReliable(r.nic, *rp, func() { r.proc.Unpark() })
	}
	if tr := r.w.cfg.Tracer; tr != nil {
		r.trk = tr.Track(trace.GroupHost, p.ID(), p.Name())
		r.trk.Instant("mpi", "attach", p.Now(),
			trace.Args{Peer: trace.NoPeer, Detail: r.w.cfg.Protocol.String()})
	}
	if ic := r.w.cfg.Instrument; ic != nil {
		mc := overlap.Config{
			Clock:       procClock{p},
			Table:       ic.Table,
			QueueSize:   ic.QueueSize,
			BinBounds:   ic.BinBounds,
			ClockDomain: string(p.Sim().ClockDomain()),
		}
		if ic.ModelCost {
			// Charge instrumentation cost to whoever drives the event:
			// the rank normally, the progress thread during its sweeps.
			mc.Charge = func(d time.Duration) { r.driver.Compute(d) }
			mc.EventCost = ic.EventCost
			mc.DrainCostPerEvent = ic.DrainCostPerEvent
			if r.trk != nil {
				r.traceCost = ic.EventCost
			}
		}
		if ic.TraceSinkFor != nil {
			mc.TraceSink = ic.TraceSinkFor(r.id)
		}
		if r.trk != nil {
			// Overlap events ride on the same host track; the monitor's
			// Charge path already models their logging cost. The name
			// resolver reads r.mon lazily: it is set below, before any
			// region event can fire.
			mc.Sink = trace.OverlapSink(r.trk, 0, func(idx int32) string { return r.mon.RegionName(idx) })
			m := r.w.cfg.Tracer.Metrics()
			drains := m.Counter("overlap.drains")
			drained := m.Counter("overlap.drained_events")
			batch := m.Gauge("overlap.drain_batch")
			trk := r.trk
			mc.OnDrain = func(n int) {
				drains.Inc()
				drained.Add(int64(n))
				batch.Set(int64(n))
				// Size carries the batch size: how many queued events the
				// processing module just folded.
				trk.Instant("overlap", "queue-drain", p.Now(), trace.Args{Peer: trace.NoPeer, Size: int64(n)})
			}
		}
		r.mon = overlap.NewMonitor(mc)
	}
	r.eng = progress.New(r.w.sim, r.w.cfg.Progress, progress.Hooks{
		Poll: func(tp *vtime.Proc) bool {
			if r.depth > 0 && !r.waiting {
				// The application is mid-call and will drive progress
				// itself before returning; a concurrent sweep would
				// interleave with the call's own protocol actions.
				return false
			}
			old := r.driver
			r.driver = tp
			did := r.progress()
			r.driver = old
			return did
		},
		Wake: func() { r.proc.Unpark() },
	})
	r.eng.Start(fmt.Sprintf("rank%d.progress", r.id))
	r.ftInit()
}

// finalize produces the rank's report at the end of main.
func (r *Rank) finalize() {
	// Stop the heartbeat service first: its timer chain would keep the
	// simulation alive forever, and its pings are no longer needed —
	// a finalized rank's NIC still hardware-acks, so live peers that
	// probe it are never misled.
	r.ftStopTick()
	// Announce retirement so survivors recovering from a later failure
	// do not wait for this rank's vote (its sync pokes flush in the
	// quiesce below).
	r.ftRetire()
	if len(r.colPending) > 0 || r.rel != nil {
		// Quiesce outstanding work first: un-waited nonblocking
		// collectives must run to completion (their peers' schedules
		// depend on our sends), and a blocking eager send's buffered
		// fast path can return before the acknowledgment — exiting with
		// messages outstanding would strand their retransmission timers
		// with no progress engine to serve them. Like MPI_Finalize,
		// this blocks until delivery is settled — or panics with the
		// rank's structured error when a retry budget runs out.
		r.enterOp("Finalize")
		r.waitUntil(func() bool {
			return len(r.colPending) == 0 && (r.rel == nil || r.rel.Outstanding() == 0)
		})
		r.exit()
	}
	// Stop the progress thread before the simulation drains, or its
	// parked proc would read as a deadlock.
	r.eng.Stop()
	if r.mon != nil {
		rep := r.mon.Finalize()
		rep.Rank = r.id
		r.w.reports[r.id] = rep
	}
}

// recoverAbort intercepts the rank's structured failure panic (the
// *CommError path from a spent retry budget). The error is recorded
// for World.RankErrors, the interrupted call's accounting is unwound
// WITHOUT re-entering progress (the failure came from there, and the
// network is presumed broken — no quiescing), and the rank's report is
// still produced so the run's observations survive partial failure.
func (r *Rank) recoverAbort() {
	v := recover()
	if v == nil {
		return
	}
	err, ok := v.(error)
	if !ok {
		panic(v)
	}
	r.w.errs[r.id] = err
	r.ftStopTick()
	r.unwindCalls()
	r.eng.Stop()
	if r.mon != nil {
		rep := r.mon.Finalize()
		rep.Rank = r.id
		r.w.reports[r.id] = rep
	}
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Size returns the number of ranks in the world.
func (r *Rank) Size() int { return len(r.w.ranks) }

// Now returns the rank's current (virtual) time.
func (r *Rank) Now() time.Duration { return r.proc.Now().Duration() }

// Compute models d of user computation. The network makes progress in
// the background, but the library does not: arrivals are noticed only
// at the next library call — the defining property of polling-based
// progress.
func (r *Rank) Compute(d time.Duration) { r.proc.Compute(d) }

// PushRegion and PopRegion delimit a monitored code section (see
// overlap.Monitor.PushRegion). No-ops when uninstrumented.
func (r *Rank) PushRegion(name string) { r.mon.PushRegion(name) }

// PopRegion closes the innermost monitored section.
func (r *Rank) PopRegion() { r.mon.PopRegion() }

// Report returns the rank's finalized report (nil until main returns
// or when uninstrumented).
func (r *Rank) Report() *overlap.Report { return r.w.reports[r.id] }

// MPITime returns the aggregate time this rank has spent inside
// library calls, maintained independently of the instrumentation so
// uninstrumented runs can report it too.
func (r *Rank) MPITime() time.Duration { return r.mpiTime }

// CallTimes returns the rank's library time broken down by the
// outermost call type ("Wait", "Send", "Allreduce", ...) — the
// quantity the paper's microbenchmarks plot as "average time spent in
// MPI_Wait". The returned map is a copy.
func (r *Rank) CallTimes() map[string]time.Duration {
	out := make(map[string]time.Duration, len(r.callTimes))
	for k, v := range r.callTimes {
		out[k] = v
	}
	return out
}

// enterOp/exit bracket every public library call: they drive the
// monitor's CALL events and the rank's own MPI-time accounting —
// total and per call type — and nest so collectives built on
// point-to-point register once, under the outermost call's name.
func (r *Rank) enterOp(name string) {
	r.enterOpPS(name, -1, -1)
}

// enterOpPS is enterOp carrying the call's peer and message size for
// the trace span (point-to-point calls know both; collectives and
// completion calls pass -1).
func (r *Rank) enterOpPS(name string, peer int, size int64) {
	if r.depth == 0 {
		// A revoked failure aborts the call before it starts (a safe
		// point: no protocol state is in flux).
		r.ftRaise(name)
		// If a dedicated progress thread is mid-sweep, block until it
		// finishes before entering the library: call-path protocol
		// actions must not interleave with the sweep's. This is the
		// virtual-time analogue of contending on the library's
		// progress lock. (Parking, not yielding: the sweep's next step
		// lies at a future instant, and a same-instant yield loop
		// would never let time advance.)
		for r.progressing {
			r.stalled = true
			r.proc.Park("mpi.progressGate")
			r.stalled = false
		}
	}
	r.depth++
	if r.depth == 1 {
		r.enterAt = r.proc.Now()
		r.curOp = name
		r.curPeer = peer
		r.curSize = size
	}
	r.mon.CallEnter()
	if r.depth == 1 && r.eng.PollOnCall() {
		// Piggyback mode: poll on entry, after CallEnter so the sweep
		// counts as library time in the overlap bounds.
		r.progress()
	}
}

func (r *Rank) exit() {
	if r.depth == 1 && r.eng.PollOnCall() {
		// Piggyback mode: poll on exit, before CallExit for the same
		// accounting reason as the entry poll.
		r.progress()
	}
	r.mon.CallExit()
	r.depth--
	if r.depth == 0 {
		if r.trk != nil {
			// Charge the span's modelled emission cost before reading the
			// clock, so the span — like the monitor's events — includes
			// its own instrumentation overhead.
			if r.traceCost > 0 {
				r.proc.Compute(r.traceCost)
			}
			r.trk.Span("mpi", r.curOp, r.enterAt, r.proc.Now(),
				trace.Args{Peer: r.curPeer, Size: r.curSize})
		}
		d := r.proc.Now().Sub(r.enterAt)
		r.mpiTime += d
		r.callTimes[r.curOp] += d
	}
}

// RelStats returns the rank's reliable-delivery counters (zero value
// when the reliability layer is disabled).
func (r *Rank) RelStats() fabric.RelStats {
	if r.rel == nil {
		return fabric.RelStats{}
	}
	return r.rel.Stats()
}

// cost returns the fabric cost model.
func (r *Rank) cost() fabric.CostModel { return r.w.fab.Cost() }

// newReq allocates a request.
func (r *Rank) newReq(kind reqKind, peer, tag, size int) *Request {
	r.reqSeq++
	return &Request{rank: r, kind: kind, id: r.reqSeq, peer: peer, tag: tag, size: size}
}

// registerBuffer charges the cost of pinning a rendezvous buffer,
// honouring the leave_pinned registration cache.
func (r *Rank) registerBuffer(peer, tag, size int) {
	if r.w.cfg.LeavePinned {
		key := regKey{peer, tag, size}
		if r.regCache[key] {
			return
		}
		r.regCache[key] = true
	}
	r.driver.Compute(r.cost().RegCost(size))
}
