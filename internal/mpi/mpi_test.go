package mpi_test

import (
	"testing"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/mpi"
)

// run executes main on n ranks with the given protocol, instrumented.
func run(t *testing.T, n int, proto mpi.LongProtocol, main func(*mpi.Rank)) cluster.Result {
	t.Helper()
	return cluster.Run(cluster.Config{
		Procs: n,
		MPI: mpi.Config{
			Protocol:   proto,
			Instrument: &mpi.InstrumentConfig{},
		},
		RecordTruth: true,
	}, main)
}

func TestEagerSendRecv(t *testing.T) {
	res := run(t, 2, PipelinedForTest, func(r *mpi.Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 7, 1024)
		case 1:
			st := r.Recv(0, 7)
			if st.Source != 0 || st.Tag != 7 || st.Size != 1024 {
				t.Errorf("bad status %+v", st)
			}
		}
	})
	if res.Duration <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

const PipelinedForTest = mpi.PipelinedRDMA

func TestRendezvousBothProtocols(t *testing.T) {
	for _, proto := range []mpi.LongProtocol{mpi.PipelinedRDMA, mpi.DirectRDMARead} {
		t.Run(proto.String(), func(t *testing.T) {
			res := run(t, 2, proto, func(r *mpi.Rank) {
				switch r.ID() {
				case 0:
					r.Send(1, 3, 1<<20)
				case 1:
					st := r.Recv(0, 3)
					if st.Size != 1<<20 {
						t.Errorf("recv size %d, want %d", st.Size, 1<<20)
					}
				}
			})
			// 1 MiB at ~900 MB/s is >1.1 ms of wire time.
			if res.Duration < time.Millisecond {
				t.Errorf("1MiB rendezvous finished suspiciously fast: %v", res.Duration)
			}
		})
	}
}

func TestUnexpectedMessageBuffered(t *testing.T) {
	run(t, 2, mpi.DirectRDMARead, func(r *mpi.Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 1, 512)
			r.Send(1, 2, 256<<10) // rendezvous, unexpected
		case 1:
			r.Compute(5 * time.Millisecond) // both messages arrive first
			if st := r.Recv(0, 2); st.Size != 256<<10 {
				t.Errorf("tag 2 size = %d", st.Size)
			}
			if st := r.Recv(0, 1); st.Size != 512 {
				t.Errorf("tag 1 size = %d", st.Size)
			}
		}
	})
}

func TestWildcardRecv(t *testing.T) {
	run(t, 3, mpi.PipelinedRDMA, func(r *mpi.Rank) {
		switch r.ID() {
		case 0:
			r.Send(2, 10, 64)
		case 1:
			r.Send(2, 11, 64)
		case 2:
			got := map[int]bool{}
			for i := 0; i < 2; i++ {
				st := r.Recv(mpi.AnySource, mpi.AnyTag)
				got[st.Source] = true
			}
			if !got[0] || !got[1] {
				t.Errorf("wildcard recv missed a sender: %v", got)
			}
		}
	})
}

func TestIsendIrecvWait(t *testing.T) {
	run(t, 2, mpi.DirectRDMARead, func(r *mpi.Rank) {
		switch r.ID() {
		case 0:
			q := r.Isend(1, 0, 128<<10)
			r.Compute(2 * time.Millisecond)
			r.Wait(q)
		case 1:
			q := r.Irecv(0, 0)
			r.Compute(2 * time.Millisecond)
			st := r.Wait(q)
			if st.Size != 128<<10 {
				t.Errorf("size = %d", st.Size)
			}
		}
	})
}

func TestMessageOrderingSameEnvelope(t *testing.T) {
	const n = 20
	run(t, 2, mpi.PipelinedRDMA, func(r *mpi.Rank) {
		switch r.ID() {
		case 0:
			for i := 0; i < n; i++ {
				r.Send(1, 5, 100+i) // distinguish by size
			}
		case 1:
			for i := 0; i < n; i++ {
				st := r.Recv(0, 5)
				if st.Size != 100+i {
					t.Fatalf("message %d out of order: size %d", i, st.Size)
				}
			}
		}
	})
}

func TestSendrecvExchange(t *testing.T) {
	run(t, 2, mpi.PipelinedRDMA, func(r *mpi.Rank) {
		peer := 1 - r.ID()
		st := r.Sendrecv(peer, 0, 4096, peer, 0)
		if st.Size != 4096 || st.Source != peer {
			t.Errorf("sendrecv status %+v", st)
		}
	})
}

func TestProbeAndIprobe(t *testing.T) {
	run(t, 2, mpi.PipelinedRDMA, func(r *mpi.Rank) {
		switch r.ID() {
		case 0:
			r.Compute(time.Millisecond)
			r.Send(1, 9, 2048)
		case 1:
			if r.Iprobe(0, 9) {
				t.Error("Iprobe true before any send")
			}
			st := r.Probe(0, 9)
			if st.Size != 2048 {
				t.Errorf("probe size %d", st.Size)
			}
			if !r.Iprobe(0, 9) {
				t.Error("Iprobe false after Probe succeeded")
			}
			st = r.Recv(0, 9)
			if st.Size != 2048 {
				t.Errorf("recv size %d", st.Size)
			}
		}
	})
}

func TestCollectivesComplete(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7, 8} {
		res := run(t, n, mpi.PipelinedRDMA, func(r *mpi.Rank) {
			r.Barrier()
			r.Bcast(0, 4096)
			r.Reduce(0, 4096)
			r.Allreduce(8)
			r.Alltoall(1024)
			r.Allgather(512)
			r.Gather(0, 256)
			r.Scatter(0, 256)
			r.Barrier()
		})
		if res.Duration <= 0 {
			t.Fatalf("n=%d: no time elapsed", n)
		}
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	var after [3]time.Duration
	run(t, 3, mpi.PipelinedRDMA, func(r *mpi.Rank) {
		// Rank 2 is slow; nobody may leave before it arrives.
		if r.ID() == 2 {
			r.Compute(10 * time.Millisecond)
		}
		r.Barrier()
		after[r.ID()] = r.Now()
	})
	for i, ts := range after {
		if ts < 10*time.Millisecond {
			t.Errorf("rank %d left the barrier at %v, before the slow rank arrived", i, ts)
		}
	}
}

func TestAlltoallvAsymmetricSizes(t *testing.T) {
	run(t, 4, mpi.PipelinedRDMA, func(r *mpi.Rank) {
		sizes := make([]int, 4)
		for i := range sizes {
			sizes[i] = 1024 * (i + 1)
		}
		r.Alltoallv(sizes)
	})
}

func TestDeterministicRuns(t *testing.T) {
	one := run(t, 4, mpi.DirectRDMARead, exerciseAll)
	two := run(t, 4, mpi.DirectRDMARead, exerciseAll)
	if one.Duration != two.Duration {
		t.Fatalf("durations differ: %v vs %v", one.Duration, two.Duration)
	}
	for i := range one.MPITimes {
		if one.MPITimes[i] != two.MPITimes[i] {
			t.Fatalf("rank %d MPI time differs: %v vs %v", i, one.MPITimes[i], two.MPITimes[i])
		}
	}
}

func exerciseAll(r *mpi.Rank) {
	peer := r.ID() ^ 1
	q := r.Isend(peer, 0, 64<<10)
	p := r.Irecv(peer, 0)
	r.Compute(time.Millisecond)
	r.Waitall(q, p)
	r.Allreduce(8)
	r.Barrier()
}

func TestMPITimeAccounted(t *testing.T) {
	res := run(t, 2, mpi.PipelinedRDMA, func(r *mpi.Rank) {
		switch r.ID() {
		case 0:
			r.Compute(5 * time.Millisecond)
			r.Send(1, 0, 64)
		case 1:
			r.Recv(0, 0) // waits ~5ms for the sender
		}
	})
	if res.MPITimes[1] < 4*time.Millisecond {
		t.Errorf("rank 1 MPI (wait) time %v, want >=4ms", res.MPITimes[1])
	}
	if res.MPITimes[0] > time.Millisecond {
		t.Errorf("rank 0 MPI time %v, want well under 1ms", res.MPITimes[0])
	}
}

func TestGroundTruthRecorded(t *testing.T) {
	res := run(t, 2, mpi.DirectRDMARead, func(r *mpi.Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 0, 1<<20)
		case 1:
			r.Recv(0, 0)
		}
	})
	var found bool
	for _, tr := range res.Transfers {
		if tr.Size == 1<<20 {
			found = true
			if tr.End <= tr.Start {
				t.Errorf("transfer interval inverted: %+v", tr)
			}
		}
	}
	if !found {
		t.Fatal("1MiB transfer missing from ground truth")
	}
}

func TestCallTimesBreakdown(t *testing.T) {
	var calls map[string]time.Duration
	run(t, 2, mpi.DirectRDMARead, func(r *mpi.Rank) {
		if r.ID() == 0 {
			q := r.Isend(1, 0, 1<<20)
			r.Wait(q)
			r.Barrier()
			calls = r.CallTimes()
			return
		}
		r.Compute(2 * time.Millisecond)
		r.Recv(0, 0)
		r.Barrier()
	})
	if calls["Wait"] < time.Millisecond {
		t.Errorf("Wait time %v, want the bulk of the rendezvous", calls["Wait"])
	}
	for _, op := range []string{"Isend", "Barrier"} {
		if _, ok := calls[op]; !ok {
			t.Errorf("missing %s in call-time breakdown: %v", op, calls)
		}
	}
	if _, ok := calls["Recv"]; ok {
		t.Errorf("rank 0 never called Recv, but it appears: %v", calls)
	}
}
