package mpi

// Point-to-point operations. Every public call is bracketed by
// enter/exit, which drives the CALL_ENTER/CALL_EXIT instrumentation
// and the rank's MPI-time accounting.

// Send transmits size bytes to dst with the given tag and blocks until
// the library no longer needs the send buffer (eager: data copied out
// and on the wire; rendezvous: protocol complete).
func (r *Rank) Send(dst, tag, size int) {
	r.enterOpPS("Send", dst, int64(size))
	defer r.exit()
	req := r.newReq(reqSend, dst, tag, size)
	r.startSend(req, ctxUser, true)
	r.waitUntil(func() bool { return req.done })
}

// Isend starts a non-blocking send and returns its request handle.
func (r *Rank) Isend(dst, tag, size int) *Request {
	r.enterOpPS("Isend", dst, int64(size))
	defer r.exit()
	req := r.newReq(reqSend, dst, tag, size)
	r.startSend(req, ctxUser, false)
	return req
}

// Recv blocks until a message matching (src, tag) — either may be a
// wildcard — has been received, and returns its status.
func (r *Rank) Recv(src, tag int) Status {
	r.enterOpPS("Recv", src, -1)
	defer r.exit()
	req := r.postRecv(src, tag, ctxUser)
	r.waitUntil(func() bool { return req.done })
	return req.status
}

// Irecv posts a non-blocking receive and returns its request handle.
func (r *Rank) Irecv(src, tag int) *Request {
	r.enterOpPS("Irecv", src, -1)
	defer r.exit()
	return r.postRecv(src, tag, ctxUser)
}

// Wait blocks until the request completes and returns its status.
func (r *Rank) Wait(req *Request) Status {
	r.enterOp("Wait")
	defer r.exit()
	r.waitUntil(func() bool { return req.done })
	return req.status
}

// Waitall blocks until every request completes.
func (r *Rank) Waitall(reqs ...*Request) {
	r.enterOp("Waitall")
	defer r.exit()
	r.waitUntil(func() bool {
		for _, q := range reqs {
			if !q.done {
				return false
			}
		}
		return true
	})
}

// Test invokes the progress engine once and reports whether the
// request has completed.
func (r *Rank) Test(req *Request) bool {
	r.enterOp("Test")
	defer r.exit()
	r.progress()
	return req.done
}

// Iprobe invokes the progress engine and reports whether a message
// matching (src, tag) could be received now. Besides its query role,
// Iprobe is the classic polling-MPI idiom for forcing communication
// progress from inside a computation region — the code change the
// paper applies to NAS SP.
func (r *Rank) Iprobe(src, tag int) bool {
	r.enterOp("Iprobe")
	defer r.exit()
	r.progress()
	return r.findUnexpected(src, tag, r.ectx(ctxUser)) >= 0
}

// Probe blocks until a message matching (src, tag) is available and
// returns its envelope without consuming it.
func (r *Rank) Probe(src, tag int) Status {
	r.enterOp("Probe")
	defer r.exit()
	var idx int
	r.waitUntil(func() bool {
		idx = r.findUnexpected(src, tag, r.ectx(ctxUser))
		return idx >= 0
	})
	ib := r.unexpQ[idx]
	return Status{Source: ib.src, Tag: ib.tag, Size: ib.size}
}

// Sendrecv performs a simultaneous send to dst and receive from src,
// blocking until both complete; it returns the receive status.
func (r *Rank) Sendrecv(dst, sendTag, sendSize, src, recvTag int) Status {
	r.enterOpPS("Sendrecv", dst, int64(sendSize))
	defer r.exit()
	sreq := r.newReq(reqSend, dst, sendTag, sendSize)
	r.startSend(sreq, ctxUser, true)
	rreq := r.postRecv(src, recvTag, ctxUser)
	r.waitUntil(func() bool { return sreq.done && rreq.done })
	return rreq.status
}
