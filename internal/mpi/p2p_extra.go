package mpi

// Additional completion operations in the MPI style.

// Waitany blocks until at least one of the requests completes and
// returns the index of a completed request (the lowest-indexed one)
// and its status.
func (r *Rank) Waitany(reqs ...*Request) (int, Status) {
	if len(reqs) == 0 {
		panic("mpi: Waitany needs at least one request")
	}
	r.enterOp("Waitany")
	defer r.exit()
	idx := -1
	r.waitUntil(func() bool {
		for i, q := range reqs {
			if q.done {
				idx = i
				return true
			}
		}
		return false
	})
	return idx, reqs[idx].status
}

// Testall invokes the progress engine once and reports whether every
// request has completed.
func (r *Rank) Testall(reqs ...*Request) bool {
	r.enterOp("Testall")
	defer r.exit()
	r.progress()
	for _, q := range reqs {
		if !q.done {
			return false
		}
	}
	return true
}
