package mpi

// Synchronous and persistent point-to-point operations.

// Ssend is the synchronous-mode send: it always uses the rendezvous
// protocol and completes only once the receiver has matched, whatever
// the message size. (MPI_Ssend; useful to benchmark pure rendezvous
// behaviour below the eager threshold.)
func (r *Rank) Ssend(dst, tag, size int) {
	r.enterOpPS("Ssend", dst, int64(size))
	defer r.exit()
	req := r.newReq(reqSend, dst, tag, size)
	r.startSendSync(req, ctxUser)
	r.waitUntil(func() bool { return req.done })
}

// Issend starts a non-blocking synchronous send.
func (r *Rank) Issend(dst, tag, size int) *Request {
	r.enterOpPS("Issend", dst, int64(size))
	defer r.exit()
	req := r.newReq(reqSend, dst, tag, size)
	r.startSendSync(req, ctxUser)
	return req
}

// startSendSync forces the rendezvous path regardless of size.
func (r *Rank) startSendSync(req *Request, ctx int) {
	r.startSendWith(req, ctx, false, true)
}

// PersistentRequest is an MPI persistent communication request: the
// envelope is bound once with SendInit or RecvInit and the operation
// restarted any number of times with Start (MPI_Send_init and
// friends). NPB LU's pipelined exchanges are the classic use.
type PersistentRequest struct {
	rank   *Rank
	kind   reqKind
	peer   int
	tag    int
	size   int
	active *Request
}

// SendInit creates a persistent send of size bytes to dst.
func (r *Rank) SendInit(dst, tag, size int) *PersistentRequest {
	return &PersistentRequest{rank: r, kind: reqSend, peer: dst, tag: tag, size: size}
}

// RecvInit creates a persistent receive matching (src, tag).
func (r *Rank) RecvInit(src, tag int) *PersistentRequest {
	return &PersistentRequest{rank: r, kind: reqRecv, peer: src, tag: tag}
}

// Start activates the persistent operation; the returned Request is
// also retrievable via Active until the next Start.
func (p *PersistentRequest) Start() *Request {
	r := p.rank
	if p.active != nil && !p.active.done {
		panic("mpi: Start on a persistent request that is still active")
	}
	r.enterOp("Start")
	defer r.exit()
	if p.kind == reqSend {
		req := r.newReq(reqSend, p.peer, p.tag, p.size)
		r.startSend(req, ctxUser, false)
		p.active = req
	} else {
		p.active = r.postRecv(p.peer, p.tag, ctxUser)
	}
	return p.active
}

// Active returns the request from the most recent Start, or nil.
func (p *PersistentRequest) Active() *Request { return p.active }
