package mpi_test

import (
	"testing"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/mpi"
)

func TestSsendWaitsForMatchEvenWhenSmall(t *testing.T) {
	// A 1 KiB Ssend must not return until the receiver matches, unlike
	// the buffered eager Send.
	for _, proto := range []mpi.LongProtocol{mpi.PipelinedRDMA, mpi.DirectRDMARead} {
		var sendTime time.Duration
		cluster.Run(cluster.Config{
			Procs: 2,
			MPI:   mpi.Config{Protocol: proto},
		}, func(r *mpi.Rank) {
			if r.ID() == 0 {
				t0 := r.Now()
				r.Ssend(1, 0, 1024)
				sendTime = r.Now() - t0
				return
			}
			r.Compute(2 * time.Millisecond)
			st := r.Recv(0, 0)
			if st.Size != 1024 {
				t.Errorf("%v: size %d", proto, st.Size)
			}
		})
		if sendTime < 2*time.Millisecond {
			t.Errorf("%v: Ssend returned after %v, before the receiver matched", proto, sendTime)
		}
	}
}

func TestIssendNonblockingSynchronous(t *testing.T) {
	cluster.Run(cluster.Config{Procs: 2}, func(r *mpi.Rank) {
		if r.ID() == 0 {
			q := r.Issend(1, 0, 4096)
			if r.Test(q) {
				t.Error("Issend complete before any receiver activity")
			}
			r.Wait(q)
			return
		}
		r.Compute(time.Millisecond)
		r.Recv(0, 0)
	})
}

func TestSsendLargeMessage(t *testing.T) {
	cluster.Run(cluster.Config{Procs: 2, MPI: mpi.Config{Protocol: mpi.PipelinedRDMA}},
		func(r *mpi.Rank) {
			if r.ID() == 0 {
				r.Ssend(1, 0, 1<<20)
			} else {
				if st := r.Recv(0, 0); st.Size != 1<<20 {
					t.Errorf("size %d", st.Size)
				}
			}
		})
}

func TestPersistentRequestsReuse(t *testing.T) {
	const rounds = 15
	cluster.Run(cluster.Config{Procs: 2}, func(r *mpi.Rank) {
		peer := 1 - r.ID()
		ps := r.SendInit(peer, 3, 2048)
		pr := r.RecvInit(peer, 3)
		for i := 0; i < rounds; i++ {
			s := ps.Start()
			q := pr.Start()
			r.Compute(100 * time.Microsecond)
			r.Waitall(s, q)
			if q.Status().Size != 2048 {
				t.Errorf("round %d: size %d", i, q.Status().Size)
			}
		}
	})
}

func TestPersistentStartWhileActivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cluster.Run(cluster.Config{Procs: 2}, func(r *mpi.Rank) {
		if r.ID() == 0 {
			p := r.RecvInit(1, 0)
			p.Start()
			p.Start() // first never completed
		} else {
			r.Compute(time.Millisecond)
			r.Send(0, 0, 64)
			r.Send(0, 0, 64)
		}
	})
}
