package mpi

import (
	"fmt"

	"ovlp/internal/fabric"
	"ovlp/internal/vtime"
)

// The xfer* helpers route transfer observations to the right monitor
// entry point: the classic XFER_BEGIN/XFER_END pair normally, or the
// precise XferExact path when the world runs with hardware time-stamps
// (Config.HWTimestamps).

func (r *Rank) xferBegin(id uint64, size int) {
	if !r.w.cfg.HWTimestamps {
		r.mon.XferBegin(id, size)
	}
}

func (r *Rank) xferEnd(id uint64, size int) {
	if !r.w.cfg.HWTimestamps {
		r.mon.XferEnd(id, size)
	}
}

func (r *Rank) xferExact(id uint64, size int, start, end vtime.Time) {
	if r.w.cfg.HWTimestamps {
		r.mon.XferExact(id, size, start.Duration(), end.Duration())
	}
}

// Message contexts separate user point-to-point traffic from
// library-internal collective traffic, so wildcard receives never
// match collective packets. Nonblocking collective schedules use their
// own context so their tag space (sequence, round, chunk) never
// collides with the blocking collectives'.
const (
	ctxUser = iota
	ctxCollective
	ctxSchedule
)

// Wire payloads. Header bytes are folded into the fabric's per-packet
// overhead, so control packets travel with size 0 and data packets
// with exactly the user payload size — keeping the ground-truth
// transfer log aligned with the calibration table.

// eagerMsg carries a whole short message.
type eagerMsg struct {
	src, tag, ctx, size int
	xferID              uint64
}

// rtsMsg is the rendezvous request-to-send. Under PipelinedRDMA it
// carries the first fragment of user data (frag0 > 0); under
// DirectRDMARead it is a pure control packet advertising the pinned
// source buffer, and readXfer is the transfer id the receiver's RDMA
// read will use.
type rtsMsg struct {
	src, tag, ctx, size int
	sendReq             uint64
	frag0               int
	frag0Xfer           uint64
	readXfer            uint64
}

// ctsMsg is the receiver's clear-to-send acknowledging a pipelined
// rendezvous; recvReq keys subsequent fragments to the receive.
type ctsMsg struct {
	sendReq, recvReq uint64
}

// fragMsg is the immediate notification of one pipelined RDMA-write
// fragment landing in the receive buffer.
type fragMsg struct {
	recvReq uint64
	size    int
}

// finMsg tells the sender a direct RDMA read has drained its buffer.
// When hardware time-stamps are in use, the receiver echoes the read's
// physical interval so the sender can account the transfer precisely.
type finMsg struct {
	sendReq    uint64
	start, end vtime.Time
}

// inbound is an unexpected-queue entry: a message that arrived before
// a matching receive was posted.
type inbound struct {
	src, tag, ctx, size int
	eager               bool
	xferID              uint64 // eager data transfer id
	rts                 *rtsMsg
}

// wrKind routes completion-queue entries to protocol actions.
type wrKind int

const (
	wrControl wrKind = iota
	wrEager
	wrFrag0
	wrFrag
	wrRead
)

// pendingWR remembers what a posted work request was for.
type pendingWR struct {
	kind     wrKind
	req      *Request
	xferID   uint64
	size     int
	attempts int // failed completions so far (RDMA repost accounting)
}

// progress is the library's polling progress engine: drain arrived
// packets and completions, pump pipelined sends, then advance any
// pending nonblocking-collective schedules. Historically it ran only
// inside library calls — never while the application computes — which
// is the property that shapes every overlap result in the paper. With
// a progress engine configured (Config.Progress) it may also run
// driven by the dedicated progress thread, in which case r.driver is
// that thread's proc; the guard makes the two drivers mutually
// exclusive without locks (the simulator's coroutine discipline means
// only one runs at a time, but a Compute inside a sweep yields, and
// the other driver must not start a nested sweep in that window).
// It reports whether any protocol state advanced.
func (r *Rank) progress() bool {
	if r.progressing {
		return false
	}
	r.progressing = true
	defer func() {
		r.progressing = false
		if r.stalled {
			// The application parked on the progress gate while this
			// (thread-driven) sweep ran; release it.
			r.proc.Unpark()
		}
	}()
	did := false
	for {
		pkt := r.nic.PollInbox(r.driver)
		if pkt == nil {
			break
		}
		did = true
		if r.rel != nil {
			if a, ok := pkt.Payload.(fabric.Ack); ok {
				r.rel.HandleAck(a)
				continue
			}
			r.rel.NotePeerAlive(pkt.From)
			if r.rel.Duplicate(pkt) {
				continue
			}
		}
		r.handlePacket(pkt)
	}
	for {
		cqe := r.nic.PollCQ(r.driver)
		if cqe == nil {
			break
		}
		did = true
		if r.rel != nil && r.rel.TakeWR(cqe.WRID) {
			// Tracked reliable send: completion is acknowledgment-driven.
			continue
		}
		r.handleCQE(cqe)
	}
	if r.rel != nil {
		d, err := r.rel.RunDue(r.driver)
		if err != nil {
			r.deliveryFail(err)
		}
		if d {
			did = true
		}
	}
	if r.ft != nil {
		r.ftMaybePing()
	}
	if r.pumpPipelines() {
		did = true
	}
	if r.advanceColl() {
		did = true
	}
	return did
}

// waitUntil drives progress until cond holds. When nothing can
// advance, the rank parks until its NIC signals new work; the
// resulting detection time equals what a spinning poll loop would
// observe, without simulating each empty poll.
func (r *Rank) waitUntil(cond func() bool) {
	for !cond() {
		// Safe point: between sweeps, with no protocol state in flux, a
		// revoked failure aborts the interrupted call.
		r.ftRaise(r.curOp)
		if r.progress() {
			continue
		}
		if r.progressing {
			// The dedicated progress thread is mid-sweep (our progress
			// call guard-skipped); park until it finishes — its closing
			// unpark wakes us, possibly with cond now satisfied.
			r.stalled = true
			r.proc.Park("mpi.progressGate")
			r.stalled = false
			continue
		}
		if cond() || r.nic.Pending() || (r.rel != nil && r.rel.HasDue()) {
			continue
		}
		r.waiting = true
		r.proc.Park("mpi.waitUntil")
		r.waiting = false
	}
}

// sendCtl posts a control packet to dst — reliably (sequenced and
// acknowledged) when the reliability layer is on, as a bare send
// otherwise.
func (r *Rank) sendCtl(dst fabric.NodeID, payload any) {
	if r.rel != nil {
		r.rel.Send(r.driver, dst, 0, 0, payload, "send", nil)
		return
	}
	wr := r.nic.Send(r.driver, dst, 0, 0, payload)
	r.wrMap[wr] = pendingWR{kind: wrControl}
}

// startSend launches the protocol for a send request. Caller must be
// inside enter/exit. buffered marks a blocking-call fast path: an
// eager send is then considered complete once the data is copied out
// and posted (the user buffer is reusable), with the local completion
// reaped lazily by a later progress invocation — the behaviour of
// MPI_Send's short-message path on InfiniBand MPIs. Non-blocking sends
// complete at the local CQE, as in Open MPI.
func (r *Rank) startSend(req *Request, ctx int, buffered bool) {
	r.startSendWith(req, ctx, buffered, false)
}

// startSendWith adds the synchronous-mode option: sync forces the
// rendezvous protocol regardless of size (MPI_Ssend semantics).
func (r *Rank) startSendWith(req *Request, ctx int, buffered, sync bool) {
	ctx = r.ectx(ctx)
	c := r.cost()
	cfg := &r.w.cfg
	dst := fabric.NodeID(req.peer)
	if !sync && req.size <= cfg.EagerThreshold {
		// Eager: copy into a pre-registered bounce buffer and ship it.
		r.driver.Compute(c.Copy(req.size))
		xid := r.w.fab.NewXferID()
		r.w.fab.TagXfer(xid, "eager")
		r.xferBegin(xid, req.size)
		r.noteSchedXfer(req.schedLabel, xid)
		msg := eagerMsg{src: r.id, tag: req.tag, ctx: ctx, size: req.size, xferID: xid}
		if r.rel != nil {
			// Reliable: completion and the transfer-end observation are
			// driven by the delivering attempt's acknowledgment, so
			// retransmissions attribute to library time and never count
			// as extra transfers.
			r.rel.Send(r.driver, dst, req.size, xid, msg, "send", func(start, end vtime.Time) {
				r.xferEnd(xid, req.size)
				r.xferExact(xid, req.size, start, end)
				if !req.done {
					req.complete()
				}
			})
		} else {
			wr := r.nic.Send(r.driver, dst, req.size, xid, msg)
			r.wrMap[wr] = pendingWR{kind: wrEager, req: req, xferID: xid, size: req.size}
		}
		if buffered {
			req.complete()
		}
		return
	}
	switch cfg.Protocol {
	case PipelinedRDMA:
		// Request-to-send carries the first (eager-limit-sized)
		// fragment; the rest waits for the receiver's acknowledgment.
		frag0 := cfg.EagerThreshold
		if frag0 > req.size {
			frag0 = req.size // sync mode can rendezvous small messages
		}
		if frag0 < 1 {
			frag0 = 1
		}
		r.driver.Compute(c.Copy(frag0))
		xid := r.w.fab.NewXferID()
		r.w.fab.TagXfer(xid, "pipelined-frag0")
		r.xferBegin(xid, frag0)
		r.noteSchedXfer(req.schedLabel, xid)
		msg := rtsMsg{
			src: r.id, tag: req.tag, ctx: ctx, size: req.size,
			sendReq: req.id, frag0: frag0, frag0Xfer: xid,
		}
		if r.rel != nil {
			r.rel.Send(r.driver, dst, frag0, xid, msg, "send", func(start, end vtime.Time) {
				r.xferEnd(xid, frag0)
				r.xferExact(xid, frag0, start, end)
			})
		} else {
			wr := r.nic.Send(r.driver, dst, frag0, xid, msg)
			r.wrMap[wr] = pendingWR{kind: wrFrag0, req: req, xferID: xid, size: frag0}
		}
		req.nextOffset = frag0
		req.phase = sendRTSPosted
		r.ctsWaiters[req.id] = req
	case DirectRDMARead:
		// Pin the source buffer and advertise it; the receiver pulls.
		r.registerBuffer(req.peer, req.tag, req.size)
		xid := r.w.fab.NewXferID()
		r.w.fab.TagXfer(xid, "direct-read")
		req.dataXfer = xid
		r.xferBegin(xid, req.size)
		r.noteSchedXfer(req.schedLabel, xid)
		r.sendCtl(dst, rtsMsg{
			src: r.id, tag: req.tag, ctx: ctx, size: req.size,
			sendReq: req.id, readXfer: xid,
		})
		req.phase = sendRTSPosted
		r.ctsWaiters[req.id] = req
	default:
		panic(fmt.Sprintf("mpi: unknown protocol %v", cfg.Protocol))
	}
}

// postRecv posts a receive, matching the unexpected queue first.
func (r *Rank) postRecv(src, tag, ctx int) *Request {
	return r.postRecvLabeled(src, tag, ctx, "")
}

// postRecvLabeled is postRecv carrying a collective-schedule label for
// transfer attribution.
func (r *Rank) postRecvLabeled(src, tag, ctx int, label string) *Request {
	ctx = r.ectx(ctx)
	req := r.newReq(reqRecv, src, tag, 0)
	req.ctx = ctx
	req.schedLabel = label
	if i := r.findUnexpected(src, tag, ctx); i >= 0 {
		ib := r.unexpQ[i]
		r.unexpQ = append(r.unexpQ[:i], r.unexpQ[i+1:]...)
		if ib.eager {
			// Copy out of the unexpected buffer; the transfer-end
			// observation was already logged at arrival.
			req.peer, req.tag, req.size = ib.src, ib.tag, ib.size
			r.noteSchedXfer(label, ib.xferID)
			r.driver.Compute(r.cost().Copy(ib.size))
			req.complete()
		} else {
			r.handleMatchedRTS(req, ib.rts, true, nil)
		}
		return req
	}
	r.recvQ = append(r.recvQ, req)
	return req
}

// findUnexpected returns the index of the first unexpected message
// matching (src, tag, ctx), or -1.
func (r *Rank) findUnexpected(src, tag, ctx int) int {
	for i, ib := range r.unexpQ {
		if ib.ctx != ctx {
			continue
		}
		if (src == AnySource || src == ib.src) && (tag == AnyTag || tag == ib.tag) {
			return i
		}
	}
	return -1
}

// matchPostedRecv removes and returns the first posted receive
// matching an arrived envelope, or nil.
func (r *Rank) matchPostedRecv(src, tag, ctx int) *Request {
	for i, req := range r.recvQ {
		if req.ctx == ctx && req.matchesEnvelope(src, tag) {
			r.recvQ = append(r.recvQ[:i], r.recvQ[i+1:]...)
			return req
		}
	}
	return nil
}

// handlePacket dispatches one arrived packet through the protocol
// state machines.
func (r *Rank) handlePacket(pkt *fabric.Packet) {
	c := r.cost()
	switch msg := pkt.Payload.(type) {
	case eagerMsg:
		if req := r.matchPostedRecv(msg.src, msg.tag, msg.ctx); req != nil {
			req.peer, req.tag, req.size = msg.src, msg.tag, msg.size
			r.noteSchedXfer(req.schedLabel, msg.xferID)
			r.driver.Compute(c.Copy(msg.size)) // bounce buffer -> user buffer
			r.xferEnd(msg.xferID, msg.size)
			r.xferExact(msg.xferID, msg.size, pkt.Start, pkt.End)
			req.complete()
			return
		}
		// Unexpected: stash in a temporary buffer. The transfer has
		// ended as far as this process can ever know.
		r.driver.Compute(c.Copy(msg.size))
		r.xferEnd(msg.xferID, msg.size)
		r.xferExact(msg.xferID, msg.size, pkt.Start, pkt.End)
		r.unexpQ = append(r.unexpQ, inbound{
			src: msg.src, tag: msg.tag, ctx: msg.ctx, size: msg.size,
			eager: true, xferID: msg.xferID,
		})
	case rtsMsg:
		if req := r.matchPostedRecv(msg.src, msg.tag, msg.ctx); req != nil {
			r.handleMatchedRTS(req, &msg, false, pkt)
			return
		}
		if msg.frag0 > 0 {
			// Buffer the piggybacked first fragment.
			r.driver.Compute(c.Copy(msg.frag0))
			r.xferEnd(msg.frag0Xfer, msg.frag0)
			r.xferExact(msg.frag0Xfer, msg.frag0, pkt.Start, pkt.End)
		}
		m := msg
		r.unexpQ = append(r.unexpQ, inbound{
			src: msg.src, tag: msg.tag, ctx: msg.ctx, size: msg.size, rts: &m,
		})
	case ftMsg:
		// Liveness ping: the hardware ack it provoked is the answer;
		// NotePeerAlive already ran in the sweep.
	case ftSyncMsg:
		// Agreement poke: the arrival alone woke the rank, which
		// re-reads the vote pool from its wait condition.
	case revokeMsg:
		r.ftRevoked(msg)
	case ctsMsg:
		req := r.ctsWaiters[msg.sendReq]
		if req == nil {
			if r.ft != nil {
				return // straggler from an abandoned epoch
			}
			panic("mpi: CTS for unknown send request")
		}
		delete(r.ctsWaiters, msg.sendReq)
		req.ctsRecvReq = msg.recvReq
		req.phase = sendStreaming
		r.queuePump(req)
		r.checkSendDone(req)
	case fragMsg:
		req := r.rxActive[msg.recvReq]
		if req == nil {
			if r.ft != nil {
				return // straggler from an abandoned epoch
			}
			panic("mpi: fragment for unknown receive request")
		}
		req.arrivedBytes += msg.size
		if req.bulkStart == 0 || pkt.Start < req.bulkStart {
			req.bulkStart = pkt.Start
		}
		if req.arrivedBytes >= req.size {
			delete(r.rxActive, msg.recvReq)
			if req.bulkXfer != 0 {
				r.xferEnd(req.bulkXfer, req.bulkSize)
				r.xferExact(req.bulkXfer, req.bulkSize, req.bulkStart, pkt.End)
			}
			req.complete()
		}
	case finMsg:
		req := r.ctsWaiters[msg.sendReq]
		if req == nil {
			if r.ft != nil {
				return // straggler from an abandoned epoch
			}
			panic("mpi: FIN for unknown send request")
		}
		delete(r.ctsWaiters, msg.sendReq)
		r.xferEnd(req.dataXfer, req.size)
		r.xferExact(req.dataXfer, req.size, msg.start, msg.end)
		req.phase = sendDone
		req.complete()
	default:
		panic(fmt.Sprintf("mpi: unknown packet payload %T", pkt.Payload))
	}
}

// handleMatchedRTS continues a rendezvous once the receive is matched.
// frag0Buffered indicates the first fragment was already copied and
// accounted when the RTS sat in the unexpected queue; pkt is the
// just-arrived RTS packet (nil on the unexpected-queue path).
func (r *Rank) handleMatchedRTS(req *Request, rts *rtsMsg, frag0Buffered bool, pkt *fabric.Packet) {
	req.matched = true
	req.peer, req.tag, req.size = rts.src, rts.tag, rts.size
	req.rxPeerReq = rts.sendReq
	switch r.w.cfg.Protocol {
	case PipelinedRDMA:
		if rts.frag0 > 0 {
			r.noteSchedXfer(req.schedLabel, rts.frag0Xfer)
			r.driver.Compute(r.cost().Copy(rts.frag0)) // into user buffer
			if !frag0Buffered {
				r.xferEnd(rts.frag0Xfer, rts.frag0)
				r.xferExact(rts.frag0Xfer, rts.frag0, pkt.Start, pkt.End)
			}
			req.arrivedBytes += rts.frag0
		}
		r.registerBuffer(rts.src, rts.tag, rts.size)
		r.rxActive[req.id] = req
		// The receiver schedules the remaining fragments by
		// acknowledging; from its library's viewpoint the post-frag0
		// bulk is one data transfer beginning at the acknowledgment
		// and ending when the last fragment lands.
		if req.bulkSize = rts.size - rts.frag0; req.bulkSize > 0 {
			req.bulkXfer = r.w.fab.NewXferID()
			r.w.fab.TagXfer(req.bulkXfer, "pipelined-bulk")
			r.xferBegin(req.bulkXfer, req.bulkSize)
			r.noteSchedXfer(req.schedLabel, req.bulkXfer)
		}
		r.sendCtl(fabric.NodeID(rts.src), ctsMsg{sendReq: rts.sendReq, recvReq: req.id})
		if req.arrivedBytes >= req.size {
			delete(r.rxActive, req.id)
			req.complete()
		}
	case DirectRDMARead:
		r.registerBuffer(rts.src, rts.tag, rts.size)
		r.xferBegin(rts.readXfer, rts.size)
		r.noteSchedXfer(req.schedLabel, rts.readXfer)
		wr := r.nic.RDMARead(r.driver, fabric.NodeID(rts.src), rts.size, rts.readXfer)
		r.wrMap[wr] = pendingWR{kind: wrRead, req: req, xferID: rts.readXfer, size: rts.size}
	}
}

// handleCQE dispatches one local completion.
func (r *Rank) handleCQE(cqe *fabric.CQE) {
	pw, ok := r.wrMap[cqe.WRID]
	if !ok {
		if r.staleWR[cqe.WRID] {
			// Work request abandoned at an epoch cut: its completion
			// (success or failure) is inert.
			delete(r.staleWR, cqe.WRID)
			return
		}
		panic("mpi: completion for unknown work request")
	}
	delete(r.wrMap, cqe.WRID)
	if cqe.Status != fabric.StatusOK {
		r.handleFailedCQE(pw, cqe)
		return
	}
	switch pw.kind {
	case wrControl:
		// Control packet left the NIC; nothing to do.
	case wrEager:
		r.xferEnd(pw.xferID, pw.size)
		r.xferExact(pw.xferID, pw.size, cqe.Start, cqe.End)
		if !pw.req.done {
			pw.req.complete()
		}
	case wrFrag0:
		r.xferEnd(pw.xferID, pw.size)
		r.xferExact(pw.xferID, pw.size, cqe.Start, cqe.End)
	case wrFrag:
		r.xferEnd(pw.xferID, pw.size)
		r.xferExact(pw.xferID, pw.size, cqe.Start, cqe.End)
		pw.req.fragsInNet--
		r.queuePump(pw.req)
		r.checkSendDone(pw.req)
	case wrRead:
		// Receiver side of direct rendezvous: data is in place; the
		// FIN echoes the hardware stamps for the sender's accounting.
		r.xferEnd(pw.xferID, pw.size)
		r.xferExact(pw.xferID, pw.size, cqe.Start, cqe.End)
		r.sendCtl(fabric.NodeID(pw.req.peer),
			finMsg{sendReq: pw.req.rxPeerReq, start: cqe.Start, end: cqe.End})
		pw.req.complete()
	}
}

// handleFailedCQE reposts a failed RDMA data operation with backoff,
// or fails the rank with a structured error once the retry budget is
// spent (or when no reliability layer is configured to spend one).
func (r *Rank) handleFailedCQE(pw pendingWR, cqe *fabric.CQE) {
	attempts := pw.attempts + 1 // this completion was attempt #attempts
	fail := func(dst fabric.NodeID, op string) {
		r.commFail(&fabric.DeliveryError{Dst: dst, Op: op, Attempts: attempts})
	}
	switch pw.kind {
	case wrFrag:
		dst := fabric.NodeID(pw.req.peer)
		if r.rel == nil {
			fail(dst, cqe.Kind.String())
			return
		}
		req, xid, size := pw.req, pw.xferID, pw.size
		err := r.rel.Repost(dst, cqe.Kind.String(), xid, attempts, func(p *vtime.Proc) {
			wr := r.nic.RDMAWrite(p, dst, size, xid, fragMsg{recvReq: req.ctsRecvReq, size: size})
			r.wrMap[wr] = pendingWR{kind: wrFrag, req: req, xferID: xid, size: size, attempts: attempts}
		})
		if err != nil {
			r.deliveryFail(err)
		}
	case wrRead:
		src := fabric.NodeID(pw.req.peer)
		if r.rel == nil {
			fail(src, cqe.Kind.String())
			return
		}
		req, xid, size := pw.req, pw.xferID, pw.size
		err := r.rel.Repost(src, cqe.Kind.String(), xid, attempts, func(p *vtime.Proc) {
			wr := r.nic.RDMARead(p, src, size, xid)
			r.wrMap[wr] = pendingWR{kind: wrRead, req: req, xferID: xid, size: size, attempts: attempts}
		})
		if err != nil {
			r.deliveryFail(err)
		}
	default:
		// Send-class losses are silent (handled by retransmission); an
		// error completion here means a misconfigured fabric.
		panic(fmt.Sprintf("mpi: unexpected %v completion for %v work request", cqe.Status, pw.kind))
	}
}

// queuePump marks a streaming pipelined send as having work for the
// fragment pump.
func (r *Rank) queuePump(req *Request) {
	if req.fragsQueued || req.phase != sendStreaming {
		return
	}
	req.fragsQueued = true
	r.pump = append(r.pump, req)
}

// pumpPipelines posts pending fragments for streaming sends, limited
// by the credit window. Like every protocol action, it runs only from
// progress — i.e. only while the application is inside the library.
func (r *Rank) pumpPipelines() bool {
	cfg := &r.w.cfg
	did := false
	kept := r.pump[:0]
	for _, req := range r.pump {
		for req.nextOffset < req.size && req.fragsInNet < cfg.MaxOutstanding {
			fsize := cfg.FragmentSize
			if rem := req.size - req.nextOffset; fsize > rem {
				fsize = rem
			}
			xid := r.w.fab.NewXferID()
			r.w.fab.TagXfer(xid, "pipelined-frag")
			r.xferBegin(xid, fsize)
			wr := r.nic.RDMAWrite(r.driver, fabric.NodeID(req.peer), fsize, xid,
				fragMsg{recvReq: req.ctsRecvReq, size: fsize})
			r.wrMap[wr] = pendingWR{kind: wrFrag, req: req, xferID: xid, size: fsize}
			req.nextOffset += fsize
			req.fragsInNet++
			did = true
		}
		if req.nextOffset < req.size {
			kept = append(kept, req)
		} else {
			req.fragsQueued = false
		}
	}
	r.pump = kept
	return did
}

// checkSendDone completes a pipelined send once every fragment has
// been posted and locally completed.
func (r *Rank) checkSendDone(req *Request) {
	if req.phase == sendStreaming && req.nextOffset >= req.size && req.fragsInNet == 0 {
		req.phase = sendDone
		req.complete()
	}
}
