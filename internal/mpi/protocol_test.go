package mpi_test

import (
	"testing"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/mpi"
)

// Protocol edge cases and library semantics beyond the basic smoke
// tests in mpi_test.go.

func TestEagerThresholdBoundary(t *testing.T) {
	// size == threshold goes eager (one wire transfer); threshold+1
	// goes rendezvous, which under the pipelined protocol splits into
	// the first fragment plus the remainder. Either way the data bytes
	// on the wire equal the message size exactly (headers are out of
	// band).
	for _, tc := range []struct {
		size          int
		wantTransfers int
	}{
		{12 << 10, 1},
		{12<<10 + 1, 2},
	} {
		res := cluster.Run(cluster.Config{
			Procs:       2,
			MPI:         mpi.Config{Protocol: mpi.PipelinedRDMA},
			RecordTruth: true,
		}, func(r *mpi.Rank) {
			if r.ID() == 0 {
				r.Send(1, 0, tc.size)
			} else {
				r.Recv(0, 0)
			}
		})
		if len(res.Transfers) != tc.wantTransfers {
			t.Errorf("size %d: %d wire transfers, want %d",
				tc.size, len(res.Transfers), tc.wantTransfers)
		}
		var bytes int
		for _, tr := range res.Transfers {
			bytes += tr.Size
		}
		if bytes != tc.size {
			t.Errorf("size %d: %d bytes on the wire", tc.size, bytes)
		}
	}
}

func TestPipelinedFragmentation(t *testing.T) {
	// 1 MiB with 64 KiB fragments and a 12 KiB first fragment: the
	// ground truth must show 1 frag0 + ceil((1MiB-12KiB)/64KiB) bulk
	// fragments.
	res := cluster.Run(cluster.Config{
		Procs:       2,
		MPI:         mpi.Config{Protocol: mpi.PipelinedRDMA},
		RecordTruth: true,
	}, func(r *mpi.Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, 1<<20)
		} else {
			r.Recv(0, 0)
		}
	})
	frag0 := 12 << 10
	bulk := (1<<20 - frag0 + 64<<10 - 1) / (64 << 10)
	if want := 1 + bulk; len(res.Transfers) != want {
		t.Fatalf("%d transfers on the wire, want %d", len(res.Transfers), want)
	}
	var total int
	for _, tr := range res.Transfers {
		total += tr.Size
	}
	if total != 1<<20 {
		t.Fatalf("moved %d bytes, want %d", total, 1<<20)
	}
}

func TestPipelinedCreditLimit(t *testing.T) {
	// With MaxOutstanding=2 and 64 KiB fragments, no more than 2 bulk
	// fragments may be in flight from one NIC at any instant — visible
	// as at most 2 overlapping wire intervals.
	res := cluster.Run(cluster.Config{
		Procs: 2,
		MPI: mpi.Config{
			Protocol:       mpi.PipelinedRDMA,
			MaxOutstanding: 2,
		},
		RecordTruth: true,
	}, func(r *mpi.Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, 1<<20)
		} else {
			r.Recv(0, 0)
		}
	})
	for i, a := range res.Transfers {
		overlapping := 0
		for j, b := range res.Transfers {
			if i != j && a.Start < b.End && b.Start < a.End {
				overlapping++
			}
		}
		if overlapping > 2 {
			t.Fatalf("transfer %d overlaps %d others; credit limit is 2", i, overlapping)
		}
	}
}

func TestDirectReadMovesExactlyOneTransfer(t *testing.T) {
	res := cluster.Run(cluster.Config{
		Procs:       2,
		MPI:         mpi.Config{Protocol: mpi.DirectRDMARead},
		RecordTruth: true,
	}, func(r *mpi.Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, 1<<20)
		} else {
			r.Recv(0, 0)
		}
	})
	if len(res.Transfers) != 1 {
		t.Fatalf("%d transfers, want 1 (single zero-copy read)", len(res.Transfers))
	}
	tr := res.Transfers[0]
	if tr.Src != 0 || tr.Dst != 1 || tr.Size != 1<<20 {
		t.Fatalf("wrong transfer %+v", tr)
	}
}

func TestZeroByteMessage(t *testing.T) {
	cluster.Run(cluster.Config{Procs: 2}, func(r *mpi.Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, 0)
		} else {
			st := r.Recv(0, 0)
			if st.Size != 0 {
				t.Errorf("zero-byte recv size %d", st.Size)
			}
		}
	})
}

func TestSelfSend(t *testing.T) {
	cluster.Run(cluster.Config{Procs: 1}, func(r *mpi.Rank) {
		q := r.Isend(0, 7, 4096)
		st := r.Recv(0, 7)
		if st.Size != 4096 {
			t.Errorf("self recv size %d", st.Size)
		}
		r.Wait(q)
	})
}

func TestIprobeEnablesEarlyRendezvousRead(t *testing.T) {
	// The paper's SP mechanism in miniature: with Irecv posted and the
	// RTS arriving during computation, a single Iprobe lets the direct
	// protocol start the read early, cutting the receiver's wait.
	wait := func(probe bool) time.Duration {
		var waited time.Duration
		cluster.Run(cluster.Config{
			Procs: 2,
			MPI:   mpi.Config{Protocol: mpi.DirectRDMARead},
		}, func(r *mpi.Rank) {
			const size = 1 << 20
			if r.ID() == 0 {
				r.Send(1, 0, size)
				return
			}
			q := r.Irecv(0, 0)
			r.Compute(500 * time.Microsecond)
			if probe {
				r.Iprobe(mpi.AnySource, mpi.AnyTag)
			}
			r.Compute(1500 * time.Microsecond)
			t0 := r.Now()
			r.Wait(q)
			waited = r.Now() - t0
		})
		return waited
	}
	without, with := wait(false), wait(true)
	if with >= without/5 {
		t.Errorf("Iprobe should collapse the wait: %v -> %v", without, with)
	}
}

func TestTestEventuallyCompletes(t *testing.T) {
	cluster.Run(cluster.Config{Procs: 2}, func(r *mpi.Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, 64<<10)
			return
		}
		q := r.Irecv(0, 0)
		spins := 0
		for !r.Test(q) {
			r.Compute(50 * time.Microsecond)
			spins++
			if spins > 10000 {
				t.Fatal("Test never completed the request")
			}
		}
		if q.Status().Size != 64<<10 {
			t.Errorf("status %+v", q.Status())
		}
	})
}

func TestWaitany(t *testing.T) {
	cluster.Run(cluster.Config{Procs: 3}, func(r *mpi.Rank) {
		switch r.ID() {
		case 0:
			r.Compute(5 * time.Millisecond) // slow sender
			r.Send(2, 0, 1024)
		case 1:
			r.Send(2, 1, 1024) // fast sender
		case 2:
			slow := r.Irecv(0, 0)
			fast := r.Irecv(1, 1)
			idx, st := r.Waitany(slow, fast)
			if idx != 1 || st.Source != 1 {
				t.Errorf("Waitany returned %d (%+v), want the fast request", idx, st)
			}
			r.Wait(slow)
		}
	})
}

func TestTestall(t *testing.T) {
	cluster.Run(cluster.Config{Procs: 2}, func(r *mpi.Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, 128)
			r.Send(1, 1, 128)
			return
		}
		a := r.Irecv(0, 0)
		b := r.Irecv(0, 1)
		for !r.Testall(a, b) {
			r.Compute(20 * time.Microsecond)
		}
	})
}

func TestRegistrationCacheSpeedsRepeatedRendezvous(t *testing.T) {
	run := func(pinned bool) time.Duration {
		res := cluster.Run(cluster.Config{
			Procs: 2,
			MPI:   mpi.Config{Protocol: mpi.DirectRDMARead, LeavePinned: pinned},
		}, func(r *mpi.Rank) {
			for i := 0; i < 20; i++ {
				if r.ID() == 0 {
					r.Send(1, 0, 256<<10)
				} else {
					r.Recv(0, 0)
				}
			}
		})
		return res.Duration
	}
	cold, warm := run(false), run(true)
	if warm >= cold {
		t.Errorf("leave_pinned should be faster: %v vs %v", warm, cold)
	}
}

func TestMixedEagerRendezvousOrdering(t *testing.T) {
	// Alternating short (eager) and long (rendezvous) messages on one
	// envelope must still be received in send order.
	sizes := []int{100, 1 << 20, 200, 512 << 10, 300, 64 << 10}
	for _, proto := range []mpi.LongProtocol{mpi.PipelinedRDMA, mpi.DirectRDMARead} {
		cluster.Run(cluster.Config{
			Procs: 2,
			MPI:   mpi.Config{Protocol: proto},
		}, func(r *mpi.Rank) {
			if r.ID() == 0 {
				for _, s := range sizes {
					r.Send(1, 9, s)
				}
				return
			}
			for i, want := range sizes {
				st := r.Recv(0, 9)
				if st.Size != want {
					t.Errorf("%v: message %d has size %d, want %d", proto, i, st.Size, want)
				}
			}
		})
	}
}

func TestManyToOneWildcard(t *testing.T) {
	const senders = 7
	cluster.Run(cluster.Config{Procs: senders + 1}, func(r *mpi.Rank) {
		if r.ID() < senders {
			r.Send(senders, r.ID(), 1000+r.ID())
			return
		}
		seen := map[int]bool{}
		for i := 0; i < senders; i++ {
			st := r.Recv(mpi.AnySource, mpi.AnyTag)
			if seen[st.Source] {
				t.Errorf("duplicate source %d", st.Source)
			}
			seen[st.Source] = true
			if st.Size != 1000+st.Source || st.Tag != st.Source {
				t.Errorf("mismatched status %+v", st)
			}
		}
	})
}

func TestWildcardDoesNotMatchCollectives(t *testing.T) {
	// A wildcard receive posted across a barrier must match the user
	// message, never a collective token.
	cluster.Run(cluster.Config{Procs: 2}, func(r *mpi.Rank) {
		if r.ID() == 0 {
			r.Barrier()
			r.Send(1, 42, 512)
			r.Barrier()
			return
		}
		q := r.Irecv(mpi.AnySource, mpi.AnyTag)
		r.Barrier() // token traffic flows while the wildcard is posted
		st := r.Wait(q)
		if st.Tag != 42 || st.Size != 512 {
			t.Errorf("wildcard matched wrong message: %+v", st)
		}
		r.Barrier()
	})
}

func TestEagerBufferedSendCompletesImmediately(t *testing.T) {
	// A blocking eager Send must not wait for the receiver (buffered
	// fast path): it returns in well under the transfer time.
	var sendTime time.Duration
	cluster.Run(cluster.Config{Procs: 2}, func(r *mpi.Rank) {
		if r.ID() == 0 {
			t0 := r.Now()
			r.Send(1, 0, 8<<10)
			sendTime = r.Now() - t0
			return
		}
		r.Compute(time.Millisecond) // receiver not even looking
		r.Recv(0, 0)
	})
	if sendTime > 50*time.Microsecond {
		t.Errorf("blocking eager Send took %v; should return after copy+post", sendTime)
	}
}

func TestRendezvousSendWaitsForReceiver(t *testing.T) {
	// A blocking rendezvous Send must NOT complete before the receiver
	// participates.
	var sendTime time.Duration
	cluster.Run(cluster.Config{
		Procs: 2,
		MPI:   mpi.Config{Protocol: mpi.DirectRDMARead},
	}, func(r *mpi.Rank) {
		if r.ID() == 0 {
			t0 := r.Now()
			r.Send(1, 0, 1<<20)
			sendTime = r.Now() - t0
			return
		}
		r.Compute(3 * time.Millisecond)
		r.Recv(0, 0)
	})
	if sendTime < 3*time.Millisecond {
		t.Errorf("rendezvous Send returned after %v, before the receiver matched", sendTime)
	}
}
