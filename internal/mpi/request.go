package mpi

import (
	"fmt"

	"ovlp/internal/vtime"
)

// reqKind distinguishes send from receive requests.
type reqKind int

const (
	reqSend reqKind = iota
	reqRecv
)

// sendPhase tracks a rendezvous send's protocol position.
type sendPhase int

const (
	sendInit      sendPhase = iota
	sendRTSPosted           // request (and, pipelined, first fragment) on the wire
	sendStreaming           // pipelined: CTS received, fragments being pumped
	sendDone
)

// Request is a non-blocking operation handle, as returned by Isend and
// Irecv and consumed by Wait, Waitall and Test.
type Request struct {
	rank *Rank
	kind reqKind
	id   uint64

	peer int // destination (send) / source or AnySource (recv)
	tag  int
	ctx  int // ctxUser or ctxCollective
	size int // bytes (send); filled on match for recv

	done   bool
	status Status

	// schedLabel names the owning nonblocking-collective schedule
	// ("Iallreduce[ring]") for transfer attribution; empty for
	// point-to-point and blocking-collective traffic.
	schedLabel string

	// receive-side state
	matched      bool
	arrivedBytes int
	rxPeerReq    uint64 // sender's request id (rendezvous), for FIN
	bulkXfer     uint64 // pipelined: receiver-side id for the post-frag0 bulk
	bulkSize     int
	bulkStart    vtime.Time // earliest fragment hardware start stamp

	// send-side state
	dataXfer    uint64 // direct rendezvous: transfer id of the remote read
	phase       sendPhase
	ctsRecvReq  uint64 // receiver's request id from CTS (pipelined)
	nextOffset  int    // next fragment byte offset to post (pipelined)
	fragsInNet  int    // posted fragments not yet completed (pipelined)
	fragsQueued bool   // request is on the rank's pump list
}

// Done reports whether the operation has completed. It performs no
// progress; use Test to poll the progress engine.
func (q *Request) Done() bool { return q.done }

// Status returns the completion status; valid once Done.
func (q *Request) Status() Status { return q.status }

func (q *Request) String() string {
	k := "send"
	if q.kind == reqRecv {
		k = "recv"
	}
	return fmt.Sprintf("%s(req=%d peer=%d tag=%d size=%d done=%v)", k, q.id, q.peer, q.tag, q.size, q.done)
}

// complete marks the request finished and records its status.
func (q *Request) complete() {
	q.done = true
	q.status = Status{Source: q.peer, Tag: q.tag, Size: q.size}
}

// matchesEnvelope reports whether a posted receive accepts a message
// with the given source and tag.
func (q *Request) matchesEnvelope(src, tag int) bool {
	return (q.peer == AnySource || q.peer == src) && (q.tag == AnyTag || q.tag == tag)
}
