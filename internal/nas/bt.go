package nas

import (
	"time"

	"ovlp/internal/mpi"
)

// BT — block tridiagonal ADI solver on the multi-partition scheme.
//
// Structure per time step (NPB 3.2 bt.f):
//
//	copy_faces: exchange six ghost faces with the grid neighbours
//	            (large messages, immediate Waitall — no overlap
//	            attempted);
//	compute_rhs;
//	x_solve, y_solve, z_solve: q-stage sweeps, each stage receiving
//	            boundary blocks from the predecessor cell, eliminating
//	            locally, and forwarding to the successor (blocking
//	            calls — BT does not attempt overlap);
//	add.
//
// BT's traffic is dominated by long messages (the paper's explanation
// for its lower overlap than CG).

type btSpec struct {
	n     int // grid points per dimension
	iters int
}

var btSpecs = map[Class]btSpec{
	ClassS: {12, 60},
	ClassW: {24, 200},
	ClassA: {64, 200},
	ClassB: {102, 200},
}

// Approximate per-point flop counts per time step, from the NPB BT
// operation counts (~3000 flops/point/iteration total).
const (
	btRHSFlops   = 250
	btSolveFlops = 600 // per direction
	btAddFlops   = 25
)

// RunBT executes the BT skeleton on the calling rank. The number of
// ranks must be a perfect square.
func RunBT(r *mpi.Rank, p Params) {
	p.fill()
	spec, ok := btSpecs[p.Class]
	if !ok {
		panic("nas: BT has no class " + p.Class.String())
	}
	g := newSqGrid(r.ID(), r.Size())
	c := ceilDiv(spec.n, g.q)       // cell dimension
	pts := float64(g.q * c * c * c) // points per rank
	m := p.Machine

	// Message sizes: ghost faces carry 5 solution components over two
	// layers for each of the rank's q cells; solve stages forward the
	// 5x5 LHS block row plus the 5-component RHS for a cell face.
	faceBytes := 2 * 5 * doubleBytes * c * c * g.q
	stageBytes := 30 * doubleBytes * c * c

	const tagFace, tagSolve = 100, 200

	r.Bcast(0, 5*doubleBytes) // timestep parameters
	iters := p.iters(spec.iters)
	for it := 0; it < iters; it++ {
		copyFaces(r, g, faceBytes, tagFace, m.FlopTime(40*pts))
		r.Compute(m.FlopTime(btRHSFlops * pts))
		for dir := 0; dir < 3; dir++ {
			btSolve(r, g, dir, stageBytes, tagSolve+dir, p)
		}
		r.Compute(m.FlopTime(btAddFlops * pts))
	}
	r.Allreduce(5 * doubleBytes) // verification norms
}

// copyFaces performs the six-way ghost exchange shared by BT and SP:
// post all receives, post all sends, wait for everything, then unpack.
func copyFaces(r *mpi.Rank, g sqGrid, bytes, tag int, unpack time.Duration) {
	nbrs := g.faceNeighbors()
	reqs := make([]*mpi.Request, 0, 12)
	for _, nb := range nbrs {
		reqs = append(reqs, r.Irecv(nb, tag))
	}
	for _, nb := range nbrs {
		reqs = append(reqs, r.Isend(nb, tag, bytes))
	}
	r.Waitall(reqs...)
	r.Compute(unpack)
}

// btSolve runs one direction's sweep: forward elimination down the
// cell chain, then back substitution up it, with blocking
// communication at each stage.
func btSolve(r *mpi.Rank, g sqGrid, dir, stageBytes, tag int, p Params) {
	spec := btSpecs[p.Class]
	c := ceilDiv(spec.n, g.q)
	pts := float64(g.q * c * c * c)
	stageWork := p.Machine.FlopTime(btSolveFlops * pts / float64(2*g.q))

	var pred, succ int
	switch dir {
	case 0:
		pred, succ = g.xPred(), g.xSucc()
	case 1:
		pred, succ = g.yPred(), g.ySucc()
	default:
		pred, succ = g.zPred(), g.zSucc()
	}
	// Forward elimination. Sends are non-blocking (as in NPB's
	// send_solve_info): every rank transmits at stage 0, so blocking
	// sends would deadlock the chain.
	var sreq *mpi.Request
	for stage := 0; stage < g.q; stage++ {
		if stage > 0 {
			r.Recv(pred, tag)
		}
		r.Compute(stageWork)
		if sreq != nil {
			r.Wait(sreq)
			sreq = nil
		}
		if stage < g.q-1 {
			sreq = r.Isend(succ, tag, stageBytes)
		}
	}
	// Back substitution, reversed chain.
	for stage := g.q - 1; stage >= 0; stage-- {
		if stage < g.q-1 {
			r.Recv(succ, tag+10)
		}
		r.Compute(stageWork)
		if sreq != nil {
			r.Wait(sreq)
			sreq = nil
		}
		if stage > 0 {
			sreq = r.Isend(pred, tag+10, stageBytes)
		}
	}
	if sreq != nil {
		r.Wait(sreq)
	}
}
