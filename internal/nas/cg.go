package nas

import "ovlp/internal/mpi"

// CG — conjugate gradient with an irregular sparse matrix-vector
// product, on a 2-D (nprows x npcols) power-of-two process grid.
//
// Per CG iteration (25 inner iterations per outer power-method step):
// the local sparse matvec is followed by a log(npcols)-step pairwise
// sum-reduction of partial vectors across the process row, an exchange
// with the transpose partner, and two scalar dot-product reductions
// done with 8-byte pairwise exchanges. The mix is mid-sized vector
// segments plus many tiny messages — a larger share of short messages
// than BT, which is why the paper measures higher overlap for CG
// (Fig. 11).

type cgSpec struct {
	n      int
	nonzer int
	iters  int // outer power-method iterations
}

var cgSpecs = map[Class]cgSpec{
	ClassS: {1400, 7, 15},
	ClassW: {7000, 8, 15},
	ClassA: {14000, 11, 15},
	ClassB: {75000, 13, 75},
}

const cgInnerIters = 25

// RunCG executes the CG skeleton on the calling rank. The number of
// ranks must be a power of two.
func RunCG(r *mpi.Rank, p Params) {
	p.fill()
	spec, ok := cgSpecs[p.Class]
	if !ok {
		panic("nas: CG has no class " + p.Class.String())
	}
	procs := r.Size()
	if procs&(procs-1) != 0 {
		panic("nas: CG needs a power-of-two number of processes")
	}
	// npcols >= nprows, both powers of two (NPB's setup).
	k := log2(procs)
	nprows := 1 << (k / 2)
	npcols := procs / nprows
	procRow := r.ID() / npcols
	procCol := r.ID() % npcols
	l2npcols := log2(npcols)
	m := p.Machine

	// Estimated nonzeros of the full matrix and the per-process share.
	nnz := float64(spec.n) * float64(spec.nonzer+1) * float64(spec.nonzer+2)
	localMatvec := m.FlopTime(2 * nnz / float64(procs))
	localVec := m.FlopTime(12 * float64(spec.n/nprows))

	segBytes := doubleBytes * ceilDiv(spec.n, npcols)

	// Transpose partner for the matvec's distributed transpose; with a
	// rectangular grid the halves pair across the midpoint.
	transpose := procCol*npcols + procRow
	if nprows != npcols {
		transpose = (r.ID() + procs/2) % procs
	}

	const tagSum, tagTr, tagDot = 600, 610, 620

	r.Bcast(0, 2*doubleBytes)
	iters := p.iters(spec.iters)
	for outer := 0; outer < iters; outer++ {
		for inner := 0; inner < cgInnerIters; inner++ {
			// q = A.p: local matvec then row-wise partial-vector sum.
			r.Compute(localMatvec)
			for i := 0; i < l2npcols; i++ {
				partner := procRow*npcols + (procCol ^ (1 << i))
				r.Sendrecv(partner, tagSum+i, segBytes, partner, tagSum+i)
				r.Compute(m.FlopTime(float64(segBytes / doubleBytes)))
			}
			// Distributed transpose of q.
			if transpose != r.ID() {
				r.Sendrecv(transpose, tagTr, segBytes, transpose, tagTr)
			}
			// Two dot products, plus the local vector updates. The
			// blocking code does pairwise 8-byte reductions across the
			// row; the overlapped variant combines both dots into one
			// nonblocking allreduce that rides under the vector updates
			// (a world-wide reduction — rows are symmetric, and exact
			// when the grid degenerates to a single row).
			if p.Overlap {
				cr := r.Iallreduce(2 * doubleBytes)
				r.Compute(localVec)
				r.WaitColl(cr)
			} else {
				for d := 0; d < 2; d++ {
					for i := 0; i < l2npcols; i++ {
						partner := procRow*npcols + (procCol ^ (1 << i))
						r.Sendrecv(partner, tagDot+8*d+i, doubleBytes, partner, tagDot+8*d+i)
					}
				}
				r.Compute(localVec)
			}
		}
		// Residual norm of the outer step.
		if p.Overlap {
			cr := r.Iallreduce(doubleBytes)
			r.Compute(localVec)
			r.WaitColl(cr)
		} else {
			for i := 0; i < l2npcols; i++ {
				partner := procRow*npcols + (procCol ^ (1 << i))
				r.Sendrecv(partner, tagDot+100+i, doubleBytes, partner, tagDot+100+i)
			}
			r.Compute(localVec)
		}
	}
	r.Allreduce(doubleBytes)
}
