package nas

import (
	"math"

	"ovlp/internal/cluster"
	"ovlp/internal/mpi"
)

// fftCost is the per-rank flop count of one 3-D FFT (~5 N log2 N).
func fftCost(total, procs int) float64 {
	return 5 * float64(total) * math.Log2(float64(total)) / float64(procs)
}

// Fault-tolerant (Checkpointable) variants of the NAS kernels, for the
// crash-recovery experiments driven by cluster.RunFT. Each adapter
// expresses the kernel's outer iteration as one recoverable step over
// an arbitrary communicator: unlike the fixed-decomposition skeletons
// (RunCG requires a power-of-two grid), these rebuild their geometry
// from the communicator size in Init, so the same workload continues
// on the shrunken membership after a failure. Pairwise reduction
// ladders become communicator collectives for the same reason — the
// message mix stays representative (CG: mid-sized segments plus tiny
// dots; FT: long transposes; MG: medium ghost faces) even when the
// hypercube structure no longer exists.

// CGCkpt is the fault-tolerant CG workload: per outer step, 25 inner
// iterations of sparse matvec + partial-vector reduction + dot
// products. State is the rank's share of the three CG vectors.
type CGCkpt struct {
	p    Params
	spec cgSpec
}

// NewCGCkpt builds the workload; unlike RunCG it runs on any
// communicator size.
func NewCGCkpt(p Params) *CGCkpt {
	p.fill()
	spec, ok := cgSpecs[p.Class]
	if !ok {
		panic("nas: CG has no class " + p.Class.String())
	}
	return &CGCkpt{p: p, spec: spec}
}

func (w *CGCkpt) Name() string { return "cg" }
func (w *CGCkpt) Steps() int   { return w.p.iters(w.spec.iters) }

// StateBytes is the rank's share of the solution, direction and
// residual vectors.
func (w *CGCkpt) StateBytes(procs int) int {
	return 3 * doubleBytes * ceilDiv(w.spec.n, procs)
}

func (w *CGCkpt) Init(c *mpi.Comm) {
	c.Bcast(0, 2*doubleBytes)
}

func (w *CGCkpt) Step(c *mpi.Comm, step int) {
	r := c.Host()
	m := w.p.Machine
	procs := c.Size()
	nnz := float64(w.spec.n) * float64(w.spec.nonzer+1) * float64(w.spec.nonzer+2)
	localMatvec := m.FlopTime(2 * nnz / float64(procs))
	localVec := m.FlopTime(12 * float64(w.spec.n) / float64(procs))
	segBytes := doubleBytes * ceilDiv(w.spec.n, procs)

	for inner := 0; inner < cgInnerIters; inner++ {
		// q = A.p: local matvec, then the partial-vector reduction and
		// distributed transpose (as one segment-sized reduction).
		r.Compute(localMatvec)
		c.Allreduce(segBytes)
		// Two dot products under the local vector updates.
		c.Allreduce(2 * doubleBytes)
		r.Compute(localVec)
	}
	// Residual norm of the outer step.
	c.Allreduce(doubleBytes)
	r.Compute(localVec)
}

// FTCkpt is the fault-tolerant FT workload: per step, one
// evolve + inverse-3-D-FFT iteration around the distributed transpose.
// State is the rank's spectral slab.
type FTCkpt struct {
	p    Params
	spec ftSpec
}

// NewFTCkpt builds the workload.
func NewFTCkpt(p Params) *FTCkpt {
	p.fill()
	spec, ok := ftSpecs[p.Class]
	if !ok {
		panic("nas: FT has no class " + p.Class.String())
	}
	return &FTCkpt{p: p, spec: spec}
}

func (w *FTCkpt) Name() string { return "ft" }
func (w *FTCkpt) Steps() int   { return w.p.iters(w.spec.iters) }

func (w *FTCkpt) total() int { return w.spec.nx * w.spec.ny * w.spec.nz }

// StateBytes is the rank's slab of the complex spectral array.
func (w *FTCkpt) StateBytes(procs int) int {
	return ceilDiv(w.total(), procs) * complexBytes
}

// blockBytes is the per-pair transpose block at the given size.
func (w *FTCkpt) blockBytes(procs int) int {
	b := w.total() * complexBytes / (procs * procs)
	if b == 0 {
		b = complexBytes
	}
	return b
}

// Init distributes parameters and runs the forward FFT that seeds the
// iteration state.
func (w *FTCkpt) Init(c *mpi.Comm) {
	r := c.Host()
	m := w.p.Machine
	procs := c.Size()
	local := float64(w.total()) / float64(procs)
	fftFlops := fftCost(w.total(), procs)
	c.Bcast(0, 3*doubleBytes)
	r.Compute(m.FlopTime(30 * local)) // indexmap + initial conditions
	r.Compute(m.FlopTime(fftFlops * 2 / 3))
	c.Alltoall(w.blockBytes(procs))
	r.Compute(m.FlopTime(fftFlops / 3))
}

func (w *FTCkpt) Step(c *mpi.Comm, step int) {
	r := c.Host()
	m := w.p.Machine
	procs := c.Size()
	local := float64(w.total()) / float64(procs)
	fftFlops := fftCost(w.total(), procs)
	r.Compute(m.FlopTime(6 * local)) // evolve
	r.Compute(m.FlopTime(fftFlops * 2 / 3))
	c.Alltoall(w.blockBytes(procs))
	r.Compute(m.FlopTime(fftFlops / 3))
	r.Compute(m.FlopTime(10 * local / float64(procs)))
	c.Reduce(0, complexBytes) // checksum
	c.Bcast(0, complexBytes)
}

// MGCkpt is the fault-tolerant MG workload: per step, one V-cycle with
// comm3 ghost exchanges at every level. State is the rank's finest
// grid block.
type MGCkpt struct {
	p    Params
	spec mgSpec
}

// NewMGCkpt builds the workload.
func NewMGCkpt(p Params) *MGCkpt {
	p.fill()
	spec, ok := mgSpecs[p.Class]
	if !ok {
		panic("nas: MG has no class " + p.Class.String())
	}
	return &MGCkpt{p: p, spec: spec}
}

func (w *MGCkpt) Name() string { return "mg" }
func (w *MGCkpt) Steps() int   { return w.p.iters(w.spec.iters) }

// StateBytes is the rank's finest-level block.
func (w *MGCkpt) StateBytes(procs int) int {
	g := newMGGeom(0, procs)
	lx := max(1, w.spec.n/g.px)
	ly := max(1, w.spec.n/g.py)
	lz := max(1, w.spec.n/g.pz)
	return doubleBytes * lx * ly * lz
}

// mgComm3 is comm3 on a communicator: one-deep face swap with both
// neighbours along each axis.
func mgComm3(c *mpi.Comm, g mgGeom, lv mgLevel) {
	r := c.Host()
	const tag = 700
	for axis := 0; axis < 3; axis++ {
		lo, hi := g.neighbors(axis)
		rq1 := c.Irecv(lo, tag+axis)
		rq2 := c.Irecv(hi, tag+axis)
		s1 := c.Isend(lo, tag+axis, lv.faces[axis])
		s2 := c.Isend(hi, tag+axis, lv.faces[axis])
		r.Waitall(rq1, rq2, s1, s2)
	}
}

func (w *MGCkpt) Init(c *mpi.Comm) {
	g := newMGGeom(c.Rank(), c.Size())
	levels := mgLevels(w.spec, g)
	c.Bcast(0, 4*doubleBytes)
	mgComm3(c, g, levels[0]) // initial residual exchange
}

func (w *MGCkpt) Step(c *mpi.Comm, step int) {
	r := c.Host()
	m := w.p.Machine
	g := newMGGeom(c.Rank(), c.Size())
	levels := mgLevels(w.spec, g)
	// Down-cycle: restrict to coarser grids.
	for l := 0; l < len(levels)-1; l++ {
		lv := levels[l]
		r.Compute(m.FlopTime(mgResidFlops * lv.points))
		mgComm3(c, g, lv)
		r.Compute(m.FlopTime(mgTransferFlops * lv.points))
	}
	// Coarsest solve.
	r.Compute(m.FlopTime(mgSmoothFlops * levels[len(levels)-1].points))
	// Up-cycle: interpolate and smooth back to the finest grid.
	for l := len(levels) - 2; l >= 0; l-- {
		lv := levels[l]
		r.Compute(m.FlopTime(mgTransferFlops * lv.points))
		mgComm3(c, g, lv)
		r.Compute(m.FlopTime(mgSmoothFlops * lv.points))
	}
	// Residual norm.
	c.Allreduce(2 * doubleBytes)
}

// CheckpointableKernel returns the fault-tolerant variant of the named
// kernel ("cg", "ft", "mg"); ok is false for kernels without one.
func CheckpointableKernel(name string, p Params) (wl cluster.Checkpointable, ok bool) {
	switch name {
	case "cg", "CG":
		return NewCGCkpt(p), true
	case "ft", "FT":
		return NewFTCkpt(p), true
	case "mg", "MG":
		return NewMGCkpt(p), true
	}
	return nil, false
}
