package nas

import "ovlp/internal/mpi"

// EP — embarrassingly parallel random-number kernel.
//
// EP generates Gaussian deviate pairs independently on every rank and
// communicates only at the end: three small allreduces for the sums
// and the annulus counts. The paper measures EP but does not report
// it, "as it performs minimal communication"; the skeleton exists so
// the suite is complete and the instrumentation-overhead experiment
// can include a communication-free extreme.

type epSpec struct {
	samples float64 // 2^m pairs
}

var epSpecs = map[Class]epSpec{
	ClassS: {1 << 24},
	ClassW: {1 << 25},
	ClassA: {1 << 28},
	ClassB: {1 << 30},
}

// epFlopsPerPair approximates the cost of one accepted-or-rejected
// Gaussian pair (random generation, squares, logarithm).
const epFlopsPerPair = 60

// RunEP executes the EP skeleton on the calling rank.
func RunEP(r *mpi.Rank, p Params) {
	p.fill()
	spec, ok := epSpecs[p.Class]
	if !ok {
		panic("nas: EP has no class " + p.Class.String())
	}
	m := p.Machine

	// EP generates pairs in batches of 2^16 (NPB's nk blocking); the
	// iteration cap truncates batches for cheap experiment runs.
	const batch = 1 << 16
	batches := int(spec.samples) / batch / r.Size()
	if batches < 1 {
		batches = 1
	}
	batches = p.iters(batches)
	r.Compute(m.FlopTime(epFlopsPerPair * float64(batches*batch)))
	r.Allreduce(doubleBytes)      // sum X
	r.Allreduce(doubleBytes)      // sum Y
	r.Allreduce(10 * doubleBytes) // annulus counts
}
