package nas

import (
	"time"

	"ovlp/internal/armci"
	"ovlp/internal/cluster"
	"ovlp/internal/coll"
	"ovlp/internal/fabric"
	"ovlp/internal/mpi"
	"ovlp/internal/overlap"
	"ovlp/internal/progress"
	"ovlp/internal/trace"
)

// This file is the experiment harness behind the paper's Sec. 4
// figures: it runs a benchmark on a fresh simulated cluster and
// extracts the measures the figures plot. As in the paper, overlap
// percentages are reported for process 0.

// OverlapResult is one benchmark characterization — a bar of
// Figs. 10-13 / 19.
type OverlapResult struct {
	Benchmark string
	Class     Class
	Procs     int
	// MinPct and MaxPct are process 0's whole-run overlap bounds.
	MinPct, MaxPct float64
	// Transfers and DataTransferTime summarize process 0's traffic.
	Transfers        int
	DataTransferTime time.Duration
	// Duration is total virtual run time; MPITime is process 0's time
	// inside the library.
	Duration time.Duration
	MPITime  time.Duration
}

// Options refines a characterization run beyond the common case.
type Options struct {
	// Protocol selects the library flavour: the paper pairs BT and CG
	// with Open MPI (PipelinedRDMA) and LU, FT and SP with MVAPICH2
	// (DirectRDMARead).
	Protocol mpi.LongProtocol
	// MaxIters caps the benchmark's iterations (0 = full).
	MaxIters int
	// HWTimestamps enables the precise NIC-time-stamp mode.
	HWTimestamps bool
	// Faults, when non-nil and active, injects deterministic fabric
	// faults; the run then uses reliable delivery (see
	// cluster.Config.Faults).
	Faults *fabric.FaultPlan
	// Trace, when non-nil, traces the run (see cluster.Config.Trace).
	Trace *trace.Tracer
	// Overlap selects the overlapped-collective benchmark variants
	// (see Params.Overlap).
	Overlap bool
	// CollAlgo and CollChunk pick the collective schedule algorithm
	// and pipelining chunk (see mpi.Config).
	CollAlgo  coll.Algo
	CollChunk int
	// Progress configures the asynchronous progress engine driving
	// nonblocking collectives (see mpi.Config.Progress).
	Progress progress.Config
	// Backend selects the execution substrate (see
	// cluster.Config.Backend); the default is the virtual kernel.
	Backend cluster.Backend
}

// Characterize runs one MPI benchmark instrumented and returns process
// 0's overlap measures.
func Characterize(name string, class Class, procs int, proto mpi.LongProtocol, maxIters int) OverlapResult {
	_, res := CharacterizeReport(name, class, procs, Options{Protocol: proto, MaxIters: maxIters})
	return res
}

// CharacterizeReport is Characterize with full control and access to
// process 0's complete report (regions and per-size-bin breakdown).
func CharacterizeReport(name string, class Class, procs int, opt Options) (*overlap.Report, OverlapResult) {
	reports, res := CharacterizeAllReports(name, class, procs, opt)
	return reports[0], res
}

// CharacterizeAllReports additionally returns every rank's report, for
// cross-rank aggregation or saving per-process output files.
func CharacterizeAllReports(name string, class Class, procs int, opt Options) ([]*overlap.Report, OverlapResult) {
	res := cluster.Run(cluster.Config{
		Procs:   procs,
		Backend: opt.Backend,
		MPI: mpi.Config{
			Protocol:     opt.Protocol,
			HWTimestamps: opt.HWTimestamps,
			Instrument:   &mpi.InstrumentConfig{},
			CollAlgo:     opt.CollAlgo,
			CollChunk:    opt.CollChunk,
			Progress:     opt.Progress,
		},
		Faults: opt.Faults,
		Trace:  opt.Trace,
	}, func(r *mpi.Rank) {
		Run(name, r, Params{Class: class, MaxIters: opt.MaxIters, Overlap: opt.Overlap})
	})
	return res.Reports, summarize(name, class, procs, res.Reports[0], res.Duration, res.MPITimes[0])
}

func summarize(name string, class Class, procs int, rep *overlap.Report, dur, mpiTime time.Duration) OverlapResult {
	tot := rep.Total()
	return OverlapResult{
		Benchmark:        name,
		Class:            class,
		Procs:            procs,
		MinPct:           tot.MinPercent(),
		MaxPct:           tot.MaxPercent(),
		Transfers:        tot.Count,
		DataTransferTime: tot.DataTransferTime,
		Duration:         dur,
		MPITime:          mpiTime,
	}
}

// SPResult captures one SP run of the Sec. 4.3 case study: overlap
// bounds for the explicit overlapping section and for the complete
// code, plus the total MPI time — the ingredients of Figs. 14-18.
type SPResult struct {
	Class    Class
	Procs    int
	Modified bool
	// Section bounds: the x/y/z_solve sweeps only (Figs. 14-15).
	SectionMinPct, SectionMaxPct float64
	// Whole-code bounds (Figs. 16-17).
	TotalMinPct, TotalMaxPct float64
	// MPITime is process 0's aggregate library time (Fig. 18).
	MPITime  time.Duration
	Duration time.Duration
	// Reports holds every rank's instrumentation report, for offline
	// aggregation or profiling.
	Reports []*overlap.Report
}

// CharacterizeSP runs SP (original or Iprobe-modified) under the
// direct-RDMA-read library (MVAPICH2, as in the paper) and reports the
// case-study measures.
func CharacterizeSP(class Class, procs int, modified bool, maxIters int) SPResult {
	return CharacterizeSPOpts(class, procs, modified, Options{MaxIters: maxIters})
}

// CharacterizeSPOpts is CharacterizeSP with full Options (Protocol is
// fixed to direct RDMA read, as the case study prescribes).
func CharacterizeSPOpts(class Class, procs int, modified bool, opt Options) SPResult {
	res := cluster.Run(cluster.Config{
		Procs:   procs,
		Backend: opt.Backend,
		MPI: mpi.Config{
			Protocol:   mpi.DirectRDMARead,
			Instrument: &mpi.InstrumentConfig{},
		},
		Faults: opt.Faults,
		Trace:  opt.Trace,
	}, func(r *mpi.Rank) {
		RunSP(r, SPParams{
			Params:   Params{Class: class, MaxIters: opt.MaxIters},
			Modified: modified,
		})
	})
	rep := res.Reports[0]
	out := SPResult{
		Class:    class,
		Procs:    procs,
		Modified: modified,
		MPITime:  res.MPITimes[0],
		Duration: res.Duration,
		Reports:  res.Reports,
	}
	if sec := rep.Region(RegionSPOverlap); sec != nil {
		out.SectionMinPct = sec.Total.MinPercent()
		out.SectionMaxPct = sec.Total.MaxPercent()
	}
	tot := rep.Total()
	out.TotalMinPct = tot.MinPercent()
	out.TotalMaxPct = tot.MaxPercent()
	return out
}

// CharacterizeMGARMCI runs the one-sided MG variant and reports
// process 0's overlap measures (Fig. 19).
func CharacterizeMGARMCI(class Class, procs int, variant MGVariant, maxIters int) OverlapResult {
	return CharacterizeMGARMCIOpts(class, procs, variant, Options{MaxIters: maxIters})
}

// CharacterizeMGARMCIOpts is CharacterizeMGARMCI with full Options
// (only MaxIters and Faults apply to the one-sided library).
func CharacterizeMGARMCIOpts(class Class, procs int, variant MGVariant, opt Options) OverlapResult {
	res := cluster.RunARMCI(cluster.ARMCIConfig{
		Procs:   procs,
		Backend: opt.Backend,
		ARMCI:   armci.Config{Instrument: &armci.InstrumentConfig{}},
		Faults:  opt.Faults,
		Trace:   opt.Trace,
	}, func(pr *armci.Proc) {
		RunMGARMCI(pr, Params{Class: class, MaxIters: opt.MaxIters}, variant)
	})
	out := summarize("MG/"+variant.String(), class, procs, res.Reports[0], res.Duration, res.LibTimes[0])
	return out
}

// OverheadResult compares instrumented and uninstrumented run times of
// one benchmark (Fig. 20).
type OverheadResult struct {
	Benchmark    string
	Class        Class
	Procs        int
	Plain        time.Duration // uninstrumented virtual run time
	Instrumented time.Duration // with instrumentation costs modelled
	OverheadPct  float64
}

// MeasureOverhead runs a benchmark twice — uninstrumented, and with
// the instrumentation's modelled CPU costs charged to the ranks — and
// reports the run-time overhead percentage.
func MeasureOverhead(name string, class Class, procs int, proto mpi.LongProtocol, maxIters int) OverheadResult {
	return MeasureOverheadOpts(name, class, procs, maxIters, Options{Protocol: proto})
}

// MeasureOverheadOpts is MeasureOverhead with full Options — on the
// real backend the comparison is of actual wall-clock run times.
func MeasureOverheadOpts(name string, class Class, procs, maxIters int, opt Options) OverheadResult {
	run := func(instr *mpi.InstrumentConfig) time.Duration {
		res := cluster.Run(cluster.Config{
			Procs:   procs,
			Backend: opt.Backend,
			MPI:     mpi.Config{Protocol: opt.Protocol, Instrument: instr},
		}, func(r *mpi.Rank) {
			Run(name, r, Params{Class: class, MaxIters: maxIters})
		})
		return res.Duration
	}
	plain := run(nil)
	instrumented := run(&mpi.InstrumentConfig{ModelCost: true})
	return OverheadResult{
		Benchmark:    name,
		Class:        class,
		Procs:        procs,
		Plain:        plain,
		Instrumented: instrumented,
		OverheadPct:  100 * (float64(instrumented) - float64(plain)) / float64(plain),
	}
}
