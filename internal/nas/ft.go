package nas

import (
	"math"

	"ovlp/internal/mpi"
)

// FT — 3-D FFT PDE solver using the transpose algorithm with a 1-D
// (slab) decomposition.
//
// Nearly all of FT's communication is the Alltoall that implements the
// distributed transpose between the local FFT passes, moving long
// messages with no interleaved computation — which is why the paper
// measures little overlap for FT (Fig. 13); the small residue comes
// from the short messages in the checksum Reduce and setup Bcast.

type ftSpec struct {
	nx, ny, nz int
	iters      int
}

var ftSpecs = map[Class]ftSpec{
	ClassS: {64, 64, 64, 6},
	ClassW: {128, 128, 32, 6},
	ClassA: {256, 256, 128, 6},
	ClassB: {512, 256, 256, 20},
}

// complexBytes is the size of a double-precision complex value.
const complexBytes = 16

// RunFT executes the FT skeleton on the calling rank.
func RunFT(r *mpi.Rank, p Params) {
	p.fill()
	spec, ok := ftSpecs[p.Class]
	if !ok {
		panic("nas: FT has no class " + p.Class.String())
	}
	procs := r.Size()
	total := spec.nx * spec.ny * spec.nz
	local := float64(total) / float64(procs)
	m := p.Machine

	// Per-pair transpose block: the local slab sliced P ways.
	blockBytes := total * complexBytes / (procs * procs)
	if blockBytes == 0 {
		blockBytes = complexBytes
	}
	// One 3-D FFT costs ~5 N log2 N flops, split around the transpose.
	fftFlops := 5 * float64(total) * math.Log2(float64(total)) / float64(procs)

	r.Bcast(0, 3*doubleBytes)               // problem parameters
	r.Compute(m.FlopTime(30 * local))       // compute_indexmap + initial conditions
	r.Compute(m.FlopTime(fftFlops * 2 / 3)) // forward FFT, local dimensions
	r.Alltoall(blockBytes)                  // distributed transpose
	r.Compute(m.FlopTime(fftFlops * 1 / 3)) // forward FFT, remaining dimension

	iters := p.iters(spec.iters)
	for it := 0; it < iters; it++ {
		r.Compute(m.FlopTime(6 * local))        // evolve
		r.Compute(m.FlopTime(fftFlops * 2 / 3)) // inverse FFT, local dims
		r.Alltoall(blockBytes)                  // distributed transpose
		r.Compute(m.FlopTime(fftFlops * 1 / 3)) // inverse FFT, last dim
		r.Compute(m.FlopTime(10 * local / float64(procs)))
		r.Reduce(0, complexBytes) // checksum
		r.Bcast(0, complexBytes)
	}
	r.Barrier()
}
