package nas

import (
	"math"

	"ovlp/internal/mpi"
)

// FT — 3-D FFT PDE solver using the transpose algorithm with a 1-D
// (slab) decomposition.
//
// Nearly all of FT's communication is the Alltoall that implements the
// distributed transpose between the local FFT passes, moving long
// messages with no interleaved computation — which is why the paper
// measures little overlap for FT (Fig. 13); the small residue comes
// from the short messages in the checksum Reduce and setup Bcast.

type ftSpec struct {
	nx, ny, nz int
	iters      int
}

var ftSpecs = map[Class]ftSpec{
	ClassS: {64, 64, 64, 6},
	ClassW: {128, 128, 32, 6},
	ClassA: {256, 256, 128, 6},
	ClassB: {512, 256, 256, 20},
}

// complexBytes is the size of a double-precision complex value.
const complexBytes = 16

// RunFT executes the FT skeleton on the calling rank.
func RunFT(r *mpi.Rank, p Params) {
	p.fill()
	spec, ok := ftSpecs[p.Class]
	if !ok {
		panic("nas: FT has no class " + p.Class.String())
	}
	procs := r.Size()
	total := spec.nx * spec.ny * spec.nz
	local := float64(total) / float64(procs)
	m := p.Machine

	// Per-pair transpose block: the local slab sliced P ways.
	blockBytes := total * complexBytes / (procs * procs)
	if blockBytes == 0 {
		blockBytes = complexBytes
	}
	// One 3-D FFT costs ~5 N log2 N flops, split around the transpose.
	fftFlops := 5 * float64(total) * math.Log2(float64(total)) / float64(procs)

	// fftTranspose is one FFT + distributed transpose + FFT sequence:
	// pre flops of local passes, the alltoall, then post flops on the
	// transposed data. The overlapped variant splits the slab in half
	// and pipelines: each half's transpose is in flight while the other
	// half's FFT passes run, so the two nonblocking alltoalls overlap
	// computation (and, briefly, each other).
	fftTranspose := func(pre, post float64) {
		if !p.Overlap {
			r.Compute(m.FlopTime(pre))
			r.Alltoall(blockBytes)
			r.Compute(m.FlopTime(post))
			return
		}
		halfA := blockBytes / 2
		halfB := blockBytes - halfA
		r.Compute(m.FlopTime(pre / 2))
		crA := r.Ialltoall(halfA)
		r.Compute(m.FlopTime(pre / 2))
		crB := r.Ialltoall(halfB)
		r.WaitColl(crA)
		r.Compute(m.FlopTime(post / 2))
		r.WaitColl(crB)
		r.Compute(m.FlopTime(post / 2))
	}

	r.Bcast(0, 3*doubleBytes)         // problem parameters
	r.Compute(m.FlopTime(30 * local)) // compute_indexmap + initial conditions
	// Forward FFT: local dimensions, transpose, remaining dimension.
	fftTranspose(fftFlops*2/3, fftFlops*1/3)

	iters := p.iters(spec.iters)
	for it := 0; it < iters; it++ {
		r.Compute(m.FlopTime(6 * local)) // evolve
		// Inverse FFT: local dims, transpose, last dim.
		fftTranspose(fftFlops*2/3, fftFlops*1/3)
		r.Compute(m.FlopTime(10 * local / float64(procs)))
		r.Reduce(0, complexBytes) // checksum
		r.Bcast(0, complexBytes)
	}
	r.Barrier()
}
