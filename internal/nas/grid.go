package nas

// sqGrid is the q x q logical process grid BT and SP run on
// (multi-partition scheme: P = q*q, each rank owning q cells along the
// sweep diagonals).
type sqGrid struct {
	q        int
	row, col int
}

func newSqGrid(id, procs int) sqGrid {
	q := isqrt(procs)
	return sqGrid{q: q, row: id / q, col: id % q}
}

func (g sqGrid) rank(row, col int) int {
	return ((row+g.q)%g.q)*g.q + (col+g.q)%g.q
}

// Successor/predecessor ranks for sweeps in each direction. In the
// multi-partition scheme cell ownership rotates along diagonals; the
// x sweep moves along grid rows, the y sweep along columns, and the z
// sweep along the diagonal.
func (g sqGrid) xSucc() int { return g.rank(g.row, g.col+1) }
func (g sqGrid) xPred() int { return g.rank(g.row, g.col-1) }
func (g sqGrid) ySucc() int { return g.rank(g.row+1, g.col) }
func (g sqGrid) yPred() int { return g.rank(g.row-1, g.col) }
func (g sqGrid) zSucc() int { return g.rank(g.row+1, g.col+1) }
func (g sqGrid) zPred() int { return g.rank(g.row-1, g.col-1) }

// faceNeighbors returns the six copy_faces peers in a fixed order
// (each pair is mutual, so posting all receives before all sends is
// deadlock-free).
func (g sqGrid) faceNeighbors() [6]int {
	return [6]int{g.xSucc(), g.xPred(), g.ySucc(), g.yPred(), g.zSucc(), g.zPred()}
}
