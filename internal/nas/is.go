package nas

import "ovlp/internal/mpi"

// IS — integer bucket sort.
//
// Each iteration counts keys into buckets locally, combines the bucket
// totals with an Allreduce, exchanges per-destination counts with an
// Alltoall, and redistributes the keys themselves with an Alltoallv of
// long messages. The paper omits IS from its figures because its
// overlap behaviour duplicates FT's (collective-dominated, little
// overlap); the skeleton is included for completeness.

type isSpec struct {
	totalKeys int
	buckets   int
	iters     int
}

var isSpecs = map[Class]isSpec{
	ClassS: {1 << 16, 1 << 9, 10},
	ClassW: {1 << 20, 1 << 10, 10},
	ClassA: {1 << 23, 1 << 10, 10},
	ClassB: {1 << 25, 1 << 10, 10},
}

const intBytes = 4

// RunIS executes the IS skeleton on the calling rank.
func RunIS(r *mpi.Rank, p Params) {
	p.fill()
	spec, ok := isSpecs[p.Class]
	if !ok {
		panic("nas: IS has no class " + p.Class.String())
	}
	procs := r.Size()
	localKeys := spec.totalKeys / procs
	m := p.Machine

	keyBlock := localKeys * intBytes / procs
	if keyBlock == 0 {
		keyBlock = intBytes
	}

	r.Bcast(0, 2*intBytes)
	iters := p.iters(spec.iters)
	for it := 0; it < iters; it++ {
		r.Compute(m.FlopTime(8 * float64(localKeys)))  // bucket counting
		r.Allreduce(spec.buckets * intBytes)           // global bucket sizes
		r.Alltoall(procs * intBytes)                   // send/receive counts
		r.Alltoallv(uniform(procs, keyBlock))          // key redistribution
		r.Compute(m.FlopTime(12 * float64(localKeys))) // local ranking
	}
	// Full verification sort on the last iteration.
	r.Compute(m.FlopTime(20 * float64(localKeys)))
	r.Allreduce(intBytes)
}

// uniform returns a slice of n copies of v.
func uniform(n, v int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = v
	}
	return s
}
