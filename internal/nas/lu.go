package nas

import "ovlp/internal/mpi"

// LU — SSOR solver with a 2-D pipelined wavefront.
//
// The domain is partitioned over a px x py process grid in the x-y
// plane; each SSOR iteration sweeps the k-planes twice (lower then
// upper triangular systems), and each plane's wavefront passes small
// boundary pencils — 5 doubles per interior point of one row/column —
// between north/south and west/east neighbours (NPB's exchange_1).
// This makes LU's traffic dominated by short messages, the reason the
// paper measures its overlap above 70% and rising with processor
// count (Fig. 12).
//
// The right-hand-side update exchanges whole faces (exchange_3,
// larger messages) and the residual norms are small allreduces.

type luSpec struct {
	n     int
	iters int
}

var luSpecs = map[Class]luSpec{
	ClassS: {12, 50},
	ClassW: {33, 300},
	ClassA: {64, 250},
	ClassB: {102, 250},
}

// Approximate per-point flop counts per SSOR iteration (NPB LU ~1300
// flops/point/iteration total).
const (
	luPlaneFlops = 155 // blts or buts, per point of one k-plane
	luRHSFlops   = 230
	luNormEvery  = 10 // iterations between residual-norm allreduces
)

// RunLU executes the LU skeleton on the calling rank.
func RunLU(r *mpi.Rank, p Params) {
	p.fill()
	spec, ok := luSpecs[p.Class]
	if !ok {
		panic("nas: LU has no class " + p.Class.String())
	}
	px, py := grid2(r.Size())
	row, col := r.ID()/py, r.ID()%py
	nxl := ceilDiv(spec.n, px) // local x extent
	nyl := ceilDiv(spec.n, py) // local y extent
	nz := spec.n
	m := p.Machine

	// Wavefront pencils: 5 doubles per point of the plane's boundary
	// row/column. Face exchanges ship 5 doubles per point of a whole
	// x- or y-face.
	rowBytes := 5 * doubleBytes * nyl
	colBytes := 5 * doubleBytes * nxl
	faceXBytes := 5 * doubleBytes * nyl * nz
	faceYBytes := 5 * doubleBytes * nxl * nz
	planeWork := m.FlopTime(luPlaneFlops * float64(nxl*nyl))

	const tagLow, tagUp, tagFace = 500, 510, 520

	north, south := row > 0, row < px-1
	west, east := col > 0, col < py-1
	northR, southR := r.ID()-py, r.ID()+py
	westR, eastR := r.ID()-1, r.ID()+1

	r.Bcast(0, 10*doubleBytes)
	iters := p.iters(spec.iters)
	for it := 0; it < iters; it++ {
		// Lower-triangular sweep: wavefront from the north-west corner.
		for k := 0; k < nz; k++ {
			if north {
				r.Recv(northR, tagLow)
			}
			if west {
				r.Recv(westR, tagLow)
			}
			r.Compute(planeWork)
			if south {
				r.Send(southR, tagLow, colBytes)
			}
			if east {
				r.Send(eastR, tagLow, rowBytes)
			}
		}
		// Upper-triangular sweep: wavefront from the south-east corner.
		for k := nz - 1; k >= 0; k-- {
			if south {
				r.Recv(southR, tagUp)
			}
			if east {
				r.Recv(eastR, tagUp)
			}
			r.Compute(planeWork)
			if north {
				r.Send(northR, tagUp, colBytes)
			}
			if west {
				r.Send(westR, tagUp, rowBytes)
			}
		}
		// RHS update with whole-face ghost exchange (exchange_3).
		r.Compute(m.FlopTime(luRHSFlops * float64(nxl*nyl*nz)))
		luExchange3(r, north, south, west, east, northR, southR, westR, eastR,
			faceXBytes, faceYBytes, tagFace)
		if it%luNormEvery == luNormEvery-1 {
			r.Allreduce(5 * doubleBytes)
		}
	}
	r.Allreduce(5 * doubleBytes)
}

// luExchange3 swaps whole boundary faces with the existing neighbours
// in both grid dimensions.
func luExchange3(r *mpi.Rank, north, south, west, east bool,
	northR, southR, westR, eastR, faceX, faceY, tag int) {
	var reqs []*mpi.Request
	if north {
		reqs = append(reqs, r.Irecv(northR, tag), r.Isend(northR, tag, faceX))
	}
	if south {
		reqs = append(reqs, r.Irecv(southR, tag), r.Isend(southR, tag, faceX))
	}
	if west {
		reqs = append(reqs, r.Irecv(westR, tag), r.Isend(westR, tag, faceY))
	}
	if east {
		reqs = append(reqs, r.Irecv(eastR, tag), r.Isend(eastR, tag, faceY))
	}
	r.Waitall(reqs...)
}
