package nas

import (
	"time"

	"ovlp/internal/armci"
	"ovlp/internal/mpi"
)

// MG — V-cycle multigrid on a 3-D periodic grid with a 3-D process
// decomposition.
//
// Communication is the comm3 ghost exchange: at every grid level, each
// axis swaps one-deep faces with both neighbours (axis by axis, so
// edge and corner values propagate). RunMG is the NPB 3.2 MPI version;
// RunMGARMCI reproduces the paper's Sec. 4.4 study: the NPB 2.4 MG
// rewritten over ARMCI one-sided operations, in a blocking variant
// (puts completed in place — zero overlap by construction) and a
// non-blocking variant that issues the next exchange's puts before
// working on the current data, which the paper measures at up to 99%
// maximum overlap (Fig. 19).

type mgSpec struct {
	n     int
	iters int
}

var mgSpecs = map[Class]mgSpec{
	ClassS: {32, 4},
	ClassW: {128, 4},
	ClassA: {256, 4},
	ClassB: {256, 20},
}

// Approximate flops per grid point per V-cycle visit (resid + psinv +
// rprj3/interp shares).
const (
	mgSmoothFlops   = 25
	mgResidFlops    = 27
	mgTransferFlops = 12
)

// mgGeom captures one rank's place in the 3-D decomposition.
type mgGeom struct {
	px, py, pz int
	ix, iy, iz int
}

func newMGGeom(id, procs int) mgGeom {
	px, py, pz := grid3(procs)
	return mgGeom{
		px: px, py: py, pz: pz,
		ix: id % px,
		iy: (id / px) % py,
		iz: id / (px * py),
	}
}

func (g mgGeom) rank(ix, iy, iz int) int {
	ix = (ix + g.px) % g.px
	iy = (iy + g.py) % g.py
	iz = (iz + g.pz) % g.pz
	return (iz*g.py+iy)*g.px + ix
}

// neighbors returns the minus and plus neighbour along the axis.
func (g mgGeom) neighbors(axis int) (lo, hi int) {
	switch axis {
	case 0:
		return g.rank(g.ix-1, g.iy, g.iz), g.rank(g.ix+1, g.iy, g.iz)
	case 1:
		return g.rank(g.ix, g.iy-1, g.iz), g.rank(g.ix, g.iy+1, g.iz)
	default:
		return g.rank(g.ix, g.iy, g.iz-1), g.rank(g.ix, g.iy, g.iz+1)
	}
}

// level describes the local extents and face sizes at one grid level.
type mgLevel struct {
	lx, ly, lz int
	faces      [3]int // face bytes per axis
	points     float64
}

func mgLevels(spec mgSpec, g mgGeom) []mgLevel {
	var levels []mgLevel
	for n := spec.n; n >= 4; n /= 2 {
		lx := max(1, n/g.px)
		ly := max(1, n/g.py)
		lz := max(1, n/g.pz)
		levels = append(levels, mgLevel{
			lx: lx, ly: ly, lz: lz,
			faces: [3]int{
				doubleBytes * ly * lz,
				doubleBytes * lx * lz,
				doubleBytes * lx * ly,
			},
			points: float64(lx * ly * lz),
		})
	}
	return levels // levels[0] is the finest
}

// RunMG executes the MPI MG skeleton on the calling rank.
func RunMG(r *mpi.Rank, p Params) {
	p.fill()
	spec, ok := mgSpecs[p.Class]
	if !ok {
		panic("nas: MG has no class " + p.Class.String())
	}
	g := newMGGeom(r.ID(), r.Size())
	levels := mgLevels(spec, g)
	m := p.Machine
	const tag = 700

	comm3 := func(lv mgLevel) {
		for axis := 0; axis < 3; axis++ {
			lo, hi := g.neighbors(axis)
			rq1 := r.Irecv(lo, tag+axis)
			rq2 := r.Irecv(hi, tag+axis)
			s1 := r.Isend(lo, tag+axis, lv.faces[axis])
			s2 := r.Isend(hi, tag+axis, lv.faces[axis])
			r.Waitall(rq1, rq2, s1, s2)
		}
	}

	r.Bcast(0, 4*doubleBytes)
	comm3(levels[0]) // initial residual exchange
	iters := p.iters(spec.iters)
	// In the overlapped variant the residual-norm allreduce is issued
	// nonblockingly and the convergence check deferred one iteration,
	// so the reduction rides under the whole next V-cycle.
	var pending *mpi.CollRequest
	for it := 0; it < iters; it++ {
		// Down-cycle: restrict to coarser grids.
		for l := 0; l < len(levels)-1; l++ {
			lv := levels[l]
			r.Compute(m.FlopTime(mgResidFlops * lv.points))
			comm3(lv)
			r.Compute(m.FlopTime(mgTransferFlops * lv.points))
		}
		// Coarsest solve.
		r.Compute(m.FlopTime(mgSmoothFlops * levels[len(levels)-1].points))
		// Up-cycle: interpolate and smooth back to the finest grid.
		for l := len(levels) - 2; l >= 0; l-- {
			lv := levels[l]
			r.Compute(m.FlopTime(mgTransferFlops * lv.points))
			comm3(lv)
			r.Compute(m.FlopTime(mgSmoothFlops * lv.points))
		}
		// Residual norm.
		if p.Overlap {
			if pending != nil {
				r.WaitColl(pending)
			}
			pending = r.Iallreduce(2 * doubleBytes)
		} else {
			r.Allreduce(2 * doubleBytes)
		}
	}
	if pending != nil {
		r.WaitColl(pending)
	}
	r.Allreduce(2 * doubleBytes)
}

// MGVariant selects the ARMCI MG flavour of the paper's Sec. 4.4.
type MGVariant int

const (
	// MGBlocking completes each put inside the call — the baseline
	// whose overlap the instrumentation reports as (near) zero.
	MGBlocking MGVariant = iota
	// MGNonblocking issues the puts non-blockingly and computes on the
	// current dimension's data before waiting — the variant the paper
	// measures at up to 99% maximum overlap.
	MGNonblocking
)

func (v MGVariant) String() string {
	if v == MGBlocking {
		return "blocking"
	}
	return "non-blocking"
}

// RunMGARMCI executes the one-sided MG skeleton on the calling ARMCI
// process.
func RunMGARMCI(pr *armci.Proc, p Params, variant MGVariant) {
	p.fill()
	spec, ok := mgSpecs[p.Class]
	if !ok {
		panic("nas: MG has no class " + p.Class.String())
	}
	g := newMGGeom(pr.ID(), pr.Size())
	levels := mgLevels(spec, g)
	m := p.Machine

	// comm3 over one-sided puts. The compute argument is the work on
	// the current dimension's data; the non-blocking variant performs
	// it between issuing the puts and waiting for them.
	//
	// Face layout follows the usual row-major packing: the z-face is
	// contiguous, the y-face is put strided (lz segments of one x-row,
	// ARMCI_PutS), and the heavily strided x-face is packed by the
	// host into a contiguous buffer first.
	comm3 := func(lv mgLevel, work time.Duration) {
		perAxis := work / 3
		put := func(dst, axis int) *armci.Handle {
			if axis == 1 && lv.lz > 1 {
				return pr.NbPutStrided(dst, lv.lz, lv.faces[1]/lv.lz)
			}
			return pr.NbPut(dst, lv.faces[axis])
		}
		for axis := 0; axis < 3; axis++ {
			lo, hi := g.neighbors(axis)
			pack := m.FlopTime(2 * float64(lv.faces[axis]/doubleBytes))
			if axis == 0 {
				pack *= 2 // gather the strided x-face into a buffer
			}
			pr.Compute(pack)
			switch variant {
			case MGBlocking:
				h1, h2 := put(lo, axis), put(hi, axis)
				pr.WaitHandle(h1)
				pr.WaitHandle(h2)
				pr.Compute(perAxis)
			case MGNonblocking:
				h1, h2 := put(lo, axis), put(hi, axis)
				pr.Compute(perAxis)
				pr.WaitHandle(h1)
				pr.WaitHandle(h2)
			}
		}
		pr.Barrier() // notify/consume ghost updates
	}

	comm3(levels[0], m.FlopTime(mgResidFlops*levels[0].points))
	iters := p.iters(spec.iters)
	for it := 0; it < iters; it++ {
		for l := 0; l < len(levels)-1; l++ {
			lv := levels[l]
			comm3(lv, m.FlopTime(mgResidFlops*lv.points))
			pr.Compute(m.FlopTime(mgTransferFlops * lv.points))
		}
		pr.Compute(m.FlopTime(mgSmoothFlops * levels[len(levels)-1].points))
		for l := len(levels) - 2; l >= 0; l-- {
			lv := levels[l]
			pr.Compute(m.FlopTime(mgTransferFlops * lv.points))
			comm3(lv, m.FlopTime(mgSmoothFlops*lv.points))
		}
		pr.Barrier()
	}
	pr.Barrier()
}
