// Package nas implements communication-faithful skeletons of the NAS
// Parallel Benchmarks (NPB 3.2 for MPI, NPB 2.4 for the ARMCI MG
// variants) — the application workloads of the paper's Sec. 4.
//
// Each skeleton reproduces the benchmark's process topology,
// communication structure (which calls, in which order, with which
// neighbours), message sizes and message counts for the standard
// problem classes, with the numerical kernels replaced by virtual-time
// computation whose duration comes from the kernel's floating-point
// operation count over a machine model. Overlap characterization
// depends exactly on these properties — the message-size distribution,
// the placement of nonblocking calls relative to computation, and the
// compute-to-communication ratio — not on the arithmetic itself.
package nas

import (
	"fmt"
	"math"
	"time"

	"ovlp/internal/mpi"
)

// Class is an NPB problem class.
type Class byte

// The standard problem classes. (C and beyond are omitted: the paper
// evaluates S through B.)
const (
	ClassS Class = 'S'
	ClassW Class = 'W'
	ClassA Class = 'A'
	ClassB Class = 'B'
)

func (c Class) String() string { return string(c) }

// Classes lists the supported classes smallest-first.
func Classes() []Class { return []Class{ClassS, ClassW, ClassA, ClassB} }

// Machine models the compute node: the sustained floating-point rate
// that converts kernel flop counts into virtual computation time.
type Machine struct {
	// FlopRate is sustained flops per second.
	FlopRate float64
}

// DefaultMachine approximates the paper's 2.4 GHz Pentium 4 Xeon at a
// sustained 1 GFLOP/s.
func DefaultMachine() Machine { return Machine{FlopRate: 1e9} }

// FlopTime converts a flop count to computation time.
func (m Machine) FlopTime(flops float64) time.Duration {
	if m.FlopRate <= 0 {
		panic("nas: machine flop rate must be positive")
	}
	return time.Duration(flops / m.FlopRate * 1e9)
}

// Params configures one benchmark run.
type Params struct {
	Class Class
	// MaxIters caps the benchmark's iteration count (0 = the class's
	// standard count). Overlap percentages converge within a few
	// iterations, so experiments may truncate long benchmarks.
	MaxIters int
	// Machine supplies the compute model; the zero value selects
	// DefaultMachine.
	Machine Machine
	// Overlap selects the overlapped-collective variant of the
	// benchmarks that have one (CG, FT, MG): reductions and transposes
	// are issued as nonblocking collectives and advanced by the rank's
	// configured progress engine while independent computation runs.
	// Benchmarks without collective phases ignore it.
	Overlap bool
}

func (p *Params) fill() {
	if p.Machine.FlopRate == 0 {
		p.Machine = DefaultMachine()
	}
	if p.Class == 0 {
		p.Class = ClassS
	}
}

func (p *Params) iters(std int) int {
	if p.MaxIters > 0 && p.MaxIters < std {
		return p.MaxIters
	}
	return std
}

// doubleBytes is the size of the Fortran double precision word all
// NPB payloads are made of.
const doubleBytes = 8

// isqrt returns the integer square root of n, panicking unless n is a
// perfect square — BT and SP require square process grids.
func isqrt(n int) int {
	q := int(math.Round(math.Sqrt(float64(n))))
	if q*q != n {
		panic(fmt.Sprintf("nas: %d processes do not form a square grid", n))
	}
	return q
}

// grid2 factors p into the most square px*py decomposition with
// px >= py (as NPB's LU and CG do for powers of two, generalized).
func grid2(p int) (px, py int) {
	py = int(math.Sqrt(float64(p)))
	for p%py != 0 {
		py--
	}
	return p / py, py
}

// grid3 factors p into a near-cubic px*py*pz decomposition.
func grid3(p int) (px, py, pz int) {
	pz = int(math.Cbrt(float64(p)))
	for p%pz != 0 {
		pz--
	}
	px, py = grid2(p / pz)
	return px, py, pz
}

// ceilDiv returns ceil(a/b).
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// log2 returns floor(log2 n).
func log2(n int) int {
	k := 0
	for 1<<(k+1) <= n {
		k++
	}
	return k
}

// Benchmark names, as accepted by Run.
const (
	BT = "BT"
	CG = "CG"
	LU = "LU"
	FT = "FT"
	SP = "SP"
	MG = "MG"
	IS = "IS"
	EP = "EP"
)

// Names lists the MPI benchmarks in the order the paper discusses
// them.
func Names() []string { return []string{BT, CG, LU, FT, SP, MG, IS, EP} }

// Run dispatches a benchmark by name on the calling rank. SP runs the
// original (unmodified) code; use RunSP directly for the
// Iprobe-modified variant.
func Run(name string, r *mpi.Rank, p Params) {
	switch name {
	case BT:
		RunBT(r, p)
	case CG:
		RunCG(r, p)
	case LU:
		RunLU(r, p)
	case FT:
		RunFT(r, p)
	case SP:
		RunSP(r, SPParams{Params: p})
	case MG:
		RunMG(r, p)
	case IS:
		RunIS(r, p)
	case EP:
		RunEP(r, p)
	default:
		panic(fmt.Sprintf("nas: unknown benchmark %q", name))
	}
}
