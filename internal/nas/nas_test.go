package nas

import (
	"testing"

	"ovlp/internal/mpi"
)

// The assertions here encode the paper's Sec. 4 findings as trends, so
// a regression that breaks the qualitative reproduction fails loudly.

const probeIters = 3

func TestAllBenchmarksCompleteAllClasses(t *testing.T) {
	for _, name := range Names() {
		procs := 4
		if name == BT || name == SP {
			procs = 4 // square
		}
		for _, class := range []Class{ClassS, ClassW} {
			r := Characterize(name, class, procs, mpi.DirectRDMARead, 2)
			if r.Duration <= 0 {
				t.Errorf("%s class %s: no virtual time elapsed", name, class)
			}
			if name != EP && r.Transfers == 0 {
				t.Errorf("%s class %s: no transfers observed", name, class)
			}
		}
	}
}

func TestBenchmarksOnVariousProcCounts(t *testing.T) {
	cases := []struct {
		name  string
		procs []int
	}{
		{BT, []int{1, 4, 9, 16}},
		{SP, []int{1, 4, 9, 16}},
		{CG, []int{2, 4, 8, 16}},
		{LU, []int{2, 4, 6, 8, 12}},
		{FT, []int{2, 3, 4, 8}},
		{MG, []int{2, 4, 8}},
		{IS, []int{2, 4, 8}},
		{EP, []int{2, 5, 8}},
	}
	for _, c := range cases {
		for _, p := range c.procs {
			r := Characterize(c.name, ClassS, p, mpi.PipelinedRDMA, 2)
			if r.Duration <= 0 {
				t.Errorf("%s on %d procs: no time elapsed", c.name, p)
			}
		}
	}
}

func TestCGOverlapExceedsBT(t *testing.T) {
	// Paper Sec. 4.1: "the overlap results are higher for CG than for
	// BT" (both under Open MPI's pipelined protocol).
	bt := Characterize(BT, ClassA, 16, mpi.PipelinedRDMA, probeIters)
	cg := Characterize(CG, ClassA, 16, mpi.PipelinedRDMA, probeIters)
	if cg.MaxPct <= bt.MaxPct {
		t.Errorf("CG max overlap %.1f%% should exceed BT's %.1f%%", cg.MaxPct, bt.MaxPct)
	}
}

func TestBTOverlapDropsWithProblemSize(t *testing.T) {
	// Paper Sec. 4.1: larger problems mean longer messages and less
	// overlap.
	small := Characterize(BT, ClassS, 4, mpi.PipelinedRDMA, probeIters)
	large := Characterize(BT, ClassA, 4, mpi.PipelinedRDMA, probeIters)
	if large.MaxPct >= small.MaxPct {
		t.Errorf("BT max overlap should drop with problem size: S %.1f%% -> A %.1f%%",
			small.MaxPct, large.MaxPct)
	}
}

func TestLUHighOverlapRisingWithProcs(t *testing.T) {
	// Paper Sec. 4.2 / Fig. 12: LU's short-message traffic gives >70%
	// maximum overlap, increasing with processor count.
	var prev float64
	for i, procs := range []int{4, 8, 16} {
		r := Characterize(LU, ClassA, procs, mpi.DirectRDMARead, probeIters)
		if r.MaxPct < 70 {
			t.Errorf("LU A on %d procs: max overlap %.1f%%, paper reports >70%%", procs, r.MaxPct)
		}
		if i > 0 && r.MaxPct < prev-2 {
			t.Errorf("LU max overlap should rise with procs: %.1f%% -> %.1f%%", prev, r.MaxPct)
		}
		prev = r.MaxPct
	}
}

func TestFTLowOverlap(t *testing.T) {
	// Paper Sec. 4.2 / Fig. 13: FT's Alltoall-dominated traffic leaves
	// little scope for overlap.
	for _, procs := range []int{4, 8} {
		r := Characterize(FT, ClassA, procs, mpi.DirectRDMARead, probeIters)
		if r.MaxPct > 15 {
			t.Errorf("FT A on %d procs: max overlap %.1f%%, paper reports near zero", procs, r.MaxPct)
		}
	}
}

func TestSPModificationImprovesOverlapAndMPITime(t *testing.T) {
	// Paper Sec. 4.3 / Figs. 14-18: inserting Iprobes into SP's
	// overlap windows raises the overlapping-section bounds
	// substantially and cuts total MPI time.
	for _, procs := range []int{4, 9, 16} {
		orig := CharacterizeSP(ClassA, procs, false, probeIters)
		mod := CharacterizeSP(ClassA, procs, true, probeIters)
		if mod.SectionMaxPct < orig.SectionMaxPct+20 {
			t.Errorf("P=%d: section max overlap %.1f%% -> %.1f%%, want a large improvement",
				procs, orig.SectionMaxPct, mod.SectionMaxPct)
		}
		if mod.SectionMinPct < 40 {
			t.Errorf("P=%d: modified section min overlap %.1f%%, want substantial", procs, mod.SectionMinPct)
		}
		if mod.MPITime >= orig.MPITime {
			t.Errorf("P=%d: MPI time did not drop: %v -> %v", procs, orig.MPITime, mod.MPITime)
		}
		// Whole-code gains are limited by copy_faces (paper: gains
		// "limited by a substantial volume of data being communicated
		// in routine copy_faces with no computation to overlap").
		if mod.TotalMaxPct < orig.TotalMaxPct {
			t.Errorf("P=%d: whole-code max overlap regressed: %.1f%% -> %.1f%%",
				procs, orig.TotalMaxPct, mod.TotalMaxPct)
		}
	}
}

func TestMGARMCIBlockingVsNonblocking(t *testing.T) {
	// Paper Sec. 4.4 / Fig. 19: the non-blocking ARMCI MG shows very
	// high maximum overlap (99% reported for class B), the blocking
	// variant none.
	for _, procs := range []int{2, 4, 8} {
		b := CharacterizeMGARMCI(ClassA, procs, MGBlocking, 2)
		n := CharacterizeMGARMCI(ClassA, procs, MGNonblocking, 2)
		if b.MaxPct > 1 {
			t.Errorf("P=%d: blocking ARMCI MG max overlap %.1f%%, want ~0", procs, b.MaxPct)
		}
		if n.MaxPct < 90 {
			t.Errorf("P=%d: non-blocking ARMCI MG max overlap %.1f%%, want >90", procs, n.MaxPct)
		}
	}
}

func TestInstrumentationOverheadUnderOnePercent(t *testing.T) {
	// Paper Sec. 4.5 / Fig. 20: instrumentation overhead below 0.9% of
	// execution time for all test cases.
	for _, name := range []string{BT, CG, LU, FT} {
		procs := 4
		r := MeasureOverhead(name, ClassW, procs, mpi.DirectRDMARead, probeIters)
		if r.OverheadPct > 0.9 {
			t.Errorf("%s: instrumentation overhead %.2f%%, paper reports <0.9%%", name, r.OverheadPct)
		}
		if r.OverheadPct < 0 {
			t.Errorf("%s: negative overhead %.2f%% — instrumented run faster than plain?", name, r.OverheadPct)
		}
	}
}

func TestDeterministicCharacterization(t *testing.T) {
	a := Characterize(LU, ClassS, 4, mpi.DirectRDMARead, 2)
	b := Characterize(LU, ClassS, 4, mpi.DirectRDMARead, 2)
	if a != b {
		t.Errorf("characterization not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestGridHelpers(t *testing.T) {
	if q := isqrt(16); q != 4 {
		t.Errorf("isqrt(16) = %d", q)
	}
	px, py := grid2(12)
	if px*py != 12 || px < py {
		t.Errorf("grid2(12) = %d x %d", px, py)
	}
	x, y, z := grid3(8)
	if x*y*z != 8 || x != 2 || y != 2 || z != 2 {
		t.Errorf("grid3(8) = %d x %d x %d", x, y, z)
	}
	x, y, z = grid3(12)
	if x*y*z != 12 {
		t.Errorf("grid3(12) = %d x %d x %d", x, y, z)
	}
	if l := log2(1); l != 0 {
		t.Errorf("log2(1) = %d", l)
	}
	if l := log2(16); l != 4 {
		t.Errorf("log2(16) = %d", l)
	}
	if l := log2(17); l != 4 {
		t.Errorf("log2(17) = %d", l)
	}
}

func TestIsqrtRejectsNonSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-square proc count")
		}
	}()
	isqrt(5)
}

func TestUnknownBenchmarkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown benchmark")
		}
	}()
	Characterize("XX", ClassS, 4, mpi.PipelinedRDMA, 1)
}

func TestSqGridNeighborsMutual(t *testing.T) {
	for _, p := range []int{4, 9, 16, 25} {
		for id := 0; id < p; id++ {
			g := newSqGrid(id, p)
			// succ(pred) and pred(succ) must invert.
			if s := newSqGrid(g.xSucc(), p); s.xPred() != id {
				t.Fatalf("p=%d id=%d: xSucc/xPred not inverse", p, id)
			}
			if s := newSqGrid(g.ySucc(), p); s.yPred() != id {
				t.Fatalf("p=%d id=%d: ySucc/yPred not inverse", p, id)
			}
			if s := newSqGrid(g.zSucc(), p); s.zPred() != id {
				t.Fatalf("p=%d id=%d: zSucc/zPred not inverse", p, id)
			}
		}
	}
}

func TestMGGeomNeighborsMutual(t *testing.T) {
	for _, p := range []int{2, 4, 8, 16} {
		for id := 0; id < p; id++ {
			g := newMGGeom(id, p)
			for axis := 0; axis < 3; axis++ {
				lo, hi := g.neighbors(axis)
				glo := newMGGeom(lo, p)
				_, backHi := glo.neighbors(axis)
				if backHi != id {
					t.Fatalf("p=%d id=%d axis=%d: lo neighbour's hi is %d", p, id, axis, backHi)
				}
				ghi := newMGGeom(hi, p)
				backLo, _ := ghi.neighbors(axis)
				if backLo != id {
					t.Fatalf("p=%d id=%d axis=%d: hi neighbour's lo is %d", p, id, axis, backLo)
				}
			}
		}
	}
}
