package nas

import (
	"testing"

	"ovlp/internal/mpi"
	"ovlp/internal/progress"
)

// Tests for the overlapped-collective benchmark variants: they must
// complete under every progress mode, and with an asynchronous
// progress thread the instrumentation must certify more overlap than
// the corresponding blocking code achieves.

func TestOverlappedVariantsComplete(t *testing.T) {
	for _, name := range []string{CG, FT, MG} {
		for _, mode := range []progress.Mode{progress.Manual, progress.Piggyback, progress.Thread} {
			opt := Options{
				Protocol: mpi.PipelinedRDMA,
				MaxIters: 2,
				Overlap:  true,
				Progress: progress.Config{Mode: mode},
			}
			_, res := CharacterizeReport(name, ClassS, 4, opt)
			if res.Duration <= 0 {
				t.Errorf("%s overlapped (%v): no virtual time elapsed", name, mode)
			}
			if res.Transfers == 0 {
				t.Errorf("%s overlapped (%v): no transfers observed", name, mode)
			}
		}
	}
}

func TestOverlappedCGBeatsBlockingMinBound(t *testing.T) {
	// The blocking CG reductions are synchronous ladders — every
	// transfer completes inside the call that posted it, so the
	// certified minimum overlap of the reduction traffic is ~0. The
	// overlapped variant with a progress thread advances the allreduce
	// schedule during the vector updates, which the monitor must see
	// as a strictly higher whole-run minimum bound.
	blocking := Characterize(CG, ClassW, 4, mpi.PipelinedRDMA, probeIters)
	_, overlapped := CharacterizeReport(CG, ClassW, 4, Options{
		Protocol: mpi.PipelinedRDMA,
		MaxIters: probeIters,
		Overlap:  true,
		Progress: progress.Config{Mode: progress.Thread},
	})
	if overlapped.MinPct <= blocking.MinPct {
		t.Errorf("overlapped CG min bound %.1f%% not above blocking %.1f%%",
			overlapped.MinPct, blocking.MinPct)
	}
}

func TestOverlappedFTReducesNonOverlap(t *testing.T) {
	// FT's transpose dominates its communication; pipelining the two
	// slab halves must recover measurable overlap where the blocking
	// transpose has essentially none (paper Fig. 13).
	rep, _ := CharacterizeReport(FT, ClassS, 4, Options{
		Protocol: mpi.DirectRDMARead,
		MaxIters: probeIters,
	})
	repOv, _ := CharacterizeReport(FT, ClassS, 4, Options{
		Protocol: mpi.DirectRDMARead,
		MaxIters: probeIters,
		Overlap:  true,
		Progress: progress.Config{Mode: progress.Thread},
	})
	if got, base := repOv.Total().MaxOverlapped, rep.Total().MaxOverlapped; got <= base {
		t.Errorf("overlapped FT max overlap %v not above blocking %v", got, base)
	}
}
