package nas

import (
	"time"

	"ovlp/internal/mpi"
)

// SP — scalar pentadiagonal ADI solver (Thomas algorithm) on the
// multi-partition scheme; the benchmark of the paper's Sec. 4.3 case
// study.
//
// Unlike BT, SP explicitly attempts computation-communication overlap
// in x_solve, y_solve and z_solve: at two places per sweep (forward
// elimination and back substitution) it computes between posting an
// MPI_Irecv and waiting for it. The paper's instrumentation shows the
// attempt mostly fails under a polling library — the rendezvous
// request sits unnoticed while the application computes — and that
// inserting MPI_Iprobe calls into the computation region recovers the
// overlap (up to 98% for class A on 9 processors) and cuts total MPI
// time by up to ~23%.
//
// RunSP reproduces both variants: SPParams.Modified inserts
// SPParams.Iprobes progress-forcing probe calls into each overlap
// window. The solve sweeps are wrapped in the monitored region
// RegionSPOverlap, giving the paper's "overlapping section" numbers
// (Figs. 14, 15) alongside the whole-code numbers (Figs. 16, 17).

// RegionSPOverlap names the monitored region covering SP's solve
// sweeps, where the explicit overlap attempt lives.
const RegionSPOverlap = "sp-overlap-section"

type spSpec struct {
	n     int
	iters int
}

var spSpecs = map[Class]spSpec{
	ClassS: {12, 100},
	ClassW: {36, 400},
	ClassA: {64, 400},
	ClassB: {102, 400},
}

// Approximate per-point flop counts per time step (NPB SP ~1400
// flops/point/iteration total).
const (
	spRHSFlops   = 220
	spSolveFlops = 350 // per direction, split over the sweep stages
	spAddFlops   = 25
	// spLHSShare is the fraction of a stage's work that is the LHS
	// factorization — the computation SP places inside the overlap
	// window between Irecv and Wait.
	spLHSShare = 0.6
)

// SPParams configures an SP run.
type SPParams struct {
	Params
	// Modified inserts Iprobe calls into the overlap windows — the
	// paper's code change.
	Modified bool
	// Iprobes is the number of probe calls per window (default 4; the
	// paper experimented with different counts and positions).
	Iprobes int
}

// RunSP executes the SP skeleton on the calling rank. The number of
// ranks must be a perfect square.
func RunSP(r *mpi.Rank, p SPParams) {
	p.fill()
	if p.Iprobes == 0 {
		p.Iprobes = 4
	}
	spec, ok := spSpecs[p.Class]
	if !ok {
		panic("nas: SP has no class " + p.Class.String())
	}
	g := newSqGrid(r.ID(), r.Size())
	c := ceilDiv(spec.n, g.q)
	pts := float64(g.q * c * c * c)
	m := p.Machine

	// copy_faces moves two ghost layers of 5 components per cell —
	// the paper calls out its "substantial volume of data ... with no
	// computation to overlap". Solve stages forward 8 doubles per face
	// point (the 5-component RHS plus the pentadiagonal pivot
	// coefficients).
	faceBytes := 2 * 5 * doubleBytes * c * c * g.q
	stageBytes := 8 * doubleBytes * c * c

	const tagFace, tagSolve = 300, 400

	r.Bcast(0, 5*doubleBytes)
	iters := p.iters(spec.iters)
	for it := 0; it < iters; it++ {
		copyFaces(r, g, faceBytes, tagFace, m.FlopTime(40*pts))
		r.Compute(m.FlopTime(spRHSFlops * pts)) // compute_rhs + txinvr
		for dir := 0; dir < 3; dir++ {
			spSolve(r, g, dir, stageBytes, tagSolve+dir, p)
		}
		r.Compute(m.FlopTime(spAddFlops * pts))
	}
	r.Allreduce(5 * doubleBytes)
}

// spSolve runs one direction's Thomas-algorithm sweep: forward
// elimination then back substitution, each a q-stage chain with SP's
// Irecv / compute / Wait overlap structure.
func spSolve(r *mpi.Rank, g sqGrid, dir, stageBytes, tag int, p SPParams) {
	spec := spSpecs[p.Class]
	c := ceilDiv(spec.n, g.q)
	pts := float64(g.q * c * c * c)
	stageWork := spSolveFlops * pts / float64(2*g.q)
	lhsWork := p.Machine.FlopTime(stageWork * spLHSShare)
	elimWork := p.Machine.FlopTime(stageWork * (1 - spLHSShare))

	var pred, succ int
	switch dir {
	case 0:
		pred, succ = g.xPred(), g.xSucc()
	case 1:
		pred, succ = g.yPred(), g.ySucc()
	default:
		pred, succ = g.zPred(), g.zSucc()
	}

	sweep := func(from, to, tag int) {
		// Sends are non-blocking with the wait deferred one stage (as
		// in NPB): the multi-partition chain wraps around the process
		// grid, so blocking sends would deadlock at stage 0.
		var sq *mpi.Request
		for stage := 0; stage < g.q; stage++ {
			var rq *mpi.Request
			if stage > 0 {
				rq = r.Irecv(from, tag)
			}
			// Overlap window: LHS factorization between Irecv and
			// Wait, optionally sliced by progress-forcing Iprobes.
			spOverlapWindow(r, lhsWork, p)
			if rq != nil {
				r.Wait(rq)
			}
			r.Compute(elimWork)
			if sq != nil {
				r.Wait(sq)
				sq = nil
			}
			if stage < g.q-1 {
				sq = r.Isend(to, tag, stageBytes)
			}
		}
		if sq != nil {
			r.Wait(sq)
		}
	}

	r.PushRegion(RegionSPOverlap)
	sweep(pred, succ, tag)
	sweep(succ, pred, tag+10)
	r.PopRegion()
}

// spOverlapWindow models the LHS computation, optionally sliced by
// Iprobe calls (the paper's modification).
func spOverlapWindow(r *mpi.Rank, work time.Duration, p SPParams) {
	if !p.Modified {
		r.Compute(work)
		return
	}
	slices := p.Iprobes + 1
	chunk := work / time.Duration(slices)
	for i := 0; i < slices; i++ {
		r.Compute(chunk)
		if i < p.Iprobes {
			r.Iprobe(mpi.AnySource, mpi.AnyTag)
		}
	}
}
