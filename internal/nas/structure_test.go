package nas

import (
	"testing"

	"ovlp/internal/cluster"
	"ovlp/internal/fabric"
	"ovlp/internal/mpi"
)

// Structural fidelity tests: the skeletons must emit the message
// counts and sizes the NPB communication structures imply. Direct
// RDMA read keeps one wire transfer per user message, so the fabric's
// ground-truth log is directly comparable to closed-form expectations.

func runTruth(t *testing.T, name string, class Class, procs, iters int) []fabric.Transfer {
	t.Helper()
	res := cluster.Run(cluster.Config{
		Procs:       procs,
		MPI:         mpi.Config{Protocol: mpi.DirectRDMARead},
		RecordTruth: true,
	}, func(r *mpi.Rank) {
		Run(name, r, Params{Class: class, MaxIters: iters})
	})
	return res.Transfers
}

// countBySize tallies wire transfers of exactly the given size.
func countBySize(trs []fabric.Transfer, size int) int {
	n := 0
	for _, tr := range trs {
		if tr.Size == size {
			n++
		}
	}
	return n
}

// marginal returns the per-iteration difference in transfer counts
// between runs of a and b iterations (b > a), which cancels one-time
// setup traffic.
func marginal(t *testing.T, name string, class Class, procs, a, b int, size int) int {
	t.Helper()
	ta := runTruth(t, name, class, procs, a)
	tb := runTruth(t, name, class, procs, b)
	var ca, cb int
	if size > 0 {
		ca, cb = countBySize(ta, size), countBySize(tb, size)
	} else {
		ca, cb = len(ta), len(tb)
	}
	if (cb-ca)%(b-a) != 0 {
		t.Fatalf("%s: transfer count not linear in iterations: %d @%d vs %d @%d",
			name, ca, a, cb, b)
	}
	return (cb - ca) / (b - a)
}

func TestPerIterationMessageCountLinear(t *testing.T) {
	// Every time-stepped benchmark must add a fixed number of wire
	// transfers per iteration.
	cases := []struct {
		name  string
		procs int
	}{
		{BT, 4}, {SP, 4}, {LU, 4}, {FT, 4}, {MG, 8}, {IS, 4}, {CG, 4},
	}
	for _, c := range cases {
		m1 := marginal(t, c.name, ClassS, c.procs, 1, 2, 0)
		m2 := marginal(t, c.name, ClassS, c.procs, 2, 4, 0)
		if m1 != m2 {
			t.Errorf("%s: per-iteration transfer count drifts: %d then %d", c.name, m1, m2)
		}
		if m1 <= 0 && c.name != EP {
			t.Errorf("%s: no per-iteration communication (%d)", c.name, m1)
		}
	}
}

func TestBTCopyFacesCount(t *testing.T) {
	// BT copy_faces: every rank sends 6 faces per iteration; the face
	// size is 2*5*8*c^2*q bytes. (procs=4 keeps the face size distinct
	// from the solve-stage size; at q=3 the two collide.)
	const procs = 4
	q := 2
	c := ceilDiv(btSpecs[ClassS].n, q) // 12/2 = 6
	faceBytes := 2 * 5 * doubleBytes * c * c * q
	perIter := marginal(t, BT, ClassS, procs, 1, 4, faceBytes)
	if want := 6 * procs; perIter != want {
		t.Errorf("BT copy_faces: %d face messages per iteration, want %d", perIter, want)
	}
}

func TestBTSolveStageCount(t *testing.T) {
	// Each solve sweeps forward and backward over q stages: every rank
	// sends q-1 stage messages per phase, for 3 directions.
	const procs = 4
	q := 2
	c := ceilDiv(btSpecs[ClassS].n, q)
	stageBytes := 30 * doubleBytes * c * c
	perIter := marginal(t, BT, ClassS, procs, 1, 4, stageBytes)
	if want := procs * 3 * 2 * (q - 1); perIter != want {
		t.Errorf("BT solve stages: %d per iteration, want %d", perIter, want)
	}
}

func TestSPSolveStageCount(t *testing.T) {
	const procs = 4
	q := 2
	c := ceilDiv(spSpecs[ClassS].n, q) // 12/2 = 6
	stageBytes := 8 * doubleBytes * c * c
	perIter := marginal(t, SP, ClassS, procs, 1, 4, stageBytes)
	if want := procs * 3 * 2 * (q - 1); perIter != want {
		t.Errorf("SP solve stages: %d per iteration, want %d", perIter, want)
	}
}

func TestFTAlltoallBlocks(t *testing.T) {
	// One Alltoall per iteration: P(P-1) blocks of total*16/P^2 bytes
	// cross the wire.
	const procs = 4
	spec := ftSpecs[ClassS]
	block := spec.nx * spec.ny * spec.nz * complexBytes / (procs * procs)
	perIter := marginal(t, FT, ClassS, procs, 1, 4, block)
	if want := procs * (procs - 1); perIter != want {
		t.Errorf("FT alltoall: %d blocks per iteration, want %d", perIter, want)
	}
}

func TestLUPencilSizesPresent(t *testing.T) {
	// The wavefront pencils of 5 doubles per boundary point must
	// appear with both orientations' sizes.
	px, py := grid2(4)
	nxl := ceilDiv(luSpecs[ClassS].n, px)
	nyl := ceilDiv(luSpecs[ClassS].n, py)
	trs := runTruth(t, LU, ClassS, 4, 2)
	if n := countBySize(trs, 5*doubleBytes*nyl); n == 0 {
		t.Errorf("LU: no row pencils of %d bytes", 5*doubleBytes*nyl)
	}
	if n := countBySize(trs, 5*doubleBytes*nxl); n == 0 {
		t.Errorf("LU: no column pencils of %d bytes", 5*doubleBytes*nxl)
	}
}

func TestLUWavefrontCount(t *testing.T) {
	// Lower+upper sweeps: each sweep sends one pencil per existing
	// south/east (resp. north/west) link per plane. On a 4x2 grid
	// there are (px-1)*py = 6 north/south links and px*(py-1) = 4
	// east/west links, so 2 sweeps x nz planes x 10 pencils. (procs=8
	// keeps the row and column pencil sizes distinct; on a square grid
	// they coincide.)
	const procs = 8
	trs1 := runTruth(t, LU, ClassS, procs, 1)
	trs2 := runTruth(t, LU, ClassS, procs, 2)
	px, py := grid2(procs)
	nxl := ceilDiv(luSpecs[ClassS].n, px)
	nyl := ceilDiv(luSpecs[ClassS].n, py)
	if nxl == nyl {
		t.Fatal("test needs distinct pencil sizes")
	}
	pencils := func(trs []fabric.Transfer) int {
		return countBySize(trs, 5*doubleBytes*nxl) + countBySize(trs, 5*doubleBytes*nyl)
	}
	perIter := pencils(trs2) - pencils(trs1)
	nz := luSpecs[ClassS].n
	links := (px-1)*py + px*(py-1)
	if want := 2 * nz * links; perIter != want {
		t.Errorf("LU pencils per iteration: %d, want %d", perIter, want)
	}
}

func TestMGFaceSizesShrinkAcrossLevels(t *testing.T) {
	// comm3 at each level exchanges faces whose sizes halve (per
	// squared dimension) level to level; the truth log must contain
	// multiple distinct face sizes.
	trs := runTruth(t, MG, ClassS, 8, 1)
	sizes := map[int]bool{}
	for _, tr := range trs {
		sizes[tr.Size] = true
	}
	if len(sizes) < 3 {
		t.Errorf("MG: only %d distinct message sizes; expected several grid levels", len(sizes))
	}
}

func TestNoSelfWireTransfers(t *testing.T) {
	for _, name := range []string{BT, SP, LU, FT, MG, CG, IS} {
		procs := 4
		if name == MG {
			procs = 8
		}
		for _, tr := range runTruth(t, name, ClassS, procs, 1) {
			if tr.Src == tr.Dst {
				t.Errorf("%s: self-transfer on the wire: %+v", name, tr)
				break
			}
		}
	}
}
