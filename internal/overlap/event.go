// Package overlap implements the paper's contribution: a performance
// instrumentation framework that characterizes computation-
// communication overlap in message-passing systems by deriving
// minimum and maximum bounds on the overlapped fraction of data
// transfer time.
//
// The framework is embedded in a communication library (see the mpi
// and armci packages) and observes four events, in the spirit of the
// PERUSE specification:
//
//   - CALL ENTER / CALL EXIT: the application enters/leaves the
//     communication library, demarcating user computation from
//     communication call regions.
//   - XFER BEGIN / XFER END: the library's best approximation of the
//     start and completion of a user-message data transfer (e.g. the
//     posting of a work request and the detection of its completion by
//     polling a completion queue).
//
// Because the NIC initiates and progresses transfers, the host cannot
// know precise transfer times; the framework therefore brackets the
// achieved overlap between a lower and an upper bound, using an
// a-priori table of per-size transfer times (package calib).
//
// Events are logged into a fixed-size circular queue and folded into
// running per-process, per-region, per-message-size-bin measures when
// the queue fills — profiling, not tracing, so the memory footprint is
// constant and no interprocess communication is ever performed.
package overlap

import "time"

// Clock supplies time-stamps to a Monitor as durations since an
// arbitrary per-process origin. The vtime simulation clock and a
// wall-clock (WallClock) both satisfy it.
type Clock interface {
	Now() time.Duration
}

// WallClock is a Clock reading the host's monotonic clock, for
// instrumenting real (non-simulated) message-passing code.
type WallClock struct {
	origin time.Time
}

// NewWallClock returns a WallClock with origin now.
func NewWallClock() *WallClock { return &WallClock{origin: time.Now()} }

// Now returns the time elapsed since the clock's origin.
func (c *WallClock) Now() time.Duration { return time.Since(c.origin) }

// Kind enumerates the instrumentation event types.
type Kind uint8

const (
	// KindCallEnter marks the application entering the communication
	// library (outermost call only).
	KindCallEnter Kind = iota
	// KindCallExit marks the application leaving the library.
	KindCallExit
	// KindXferBegin marks the library initiating a user-data transfer
	// (e.g. posting a work request).
	KindXferBegin
	// KindXferEnd marks the library detecting completion of a transfer.
	KindXferEnd
	// KindRegionPush and KindRegionPop change the monitored region to
	// which subsequent activity is attributed.
	KindRegionPush
	KindRegionPop
	// KindXferExact records a transfer whose physical interval is
	// known from NIC hardware time-stamps (see Monitor.XferExact).
	KindXferExact
	// KindEpochCut closes the current recovery epoch: open transfers
	// are resolved as truncated and subsequent activity accumulates
	// into the next epoch (see Monitor.EpochCut).
	KindEpochCut
)

func (k Kind) String() string {
	switch k {
	case KindCallEnter:
		return "CALL_ENTER"
	case KindCallExit:
		return "CALL_EXIT"
	case KindXferBegin:
		return "XFER_BEGIN"
	case KindXferEnd:
		return "XFER_END"
	case KindRegionPush:
		return "REGION_PUSH"
	case KindRegionPop:
		return "REGION_POP"
	case KindXferExact:
		return "XFER_EXACT"
	case KindEpochCut:
		return "EPOCH_CUT"
	}
	return "INVALID"
}

// Event is one time-stamped instrumentation record. Events are fixed
// size so the circular queue never allocates after construction.
type Event struct {
	Kind   Kind
	Region int32         // region index, for KindRegionPush
	Size   int64         // message bytes, for transfer events
	ID     uint64        // transfer id, for transfer events
	Stamp  time.Duration // time since process origin
	// Start and End carry the physical transfer interval for
	// KindXferExact events (hardware time-stamps).
	Start, End time.Duration
}

// ring is the fixed-size circular event queue of the data collection
// module. The caller drains it completely when Push reports it full.
type ring struct {
	buf  []Event
	n    int // occupied
	head int // index of oldest
}

func newRing(capacity int) *ring {
	return &ring{buf: make([]Event, capacity)}
}

// full reports whether the queue has no room for another event.
func (r *ring) full() bool { return r.n == len(r.buf) }

// push appends an event and reports whether the queue is now full. The
// caller must drain a full queue before pushing again (Monitor.log
// does so automatically).
func (r *ring) push(e Event) bool {
	if r.full() {
		panic("overlap: event queue overflow (drain before pushing)")
	}
	r.buf[(r.head+r.n)%len(r.buf)] = e
	r.n++
	return r.full()
}

// drain invokes fn on every queued event in order and resets the
// queue. It returns the number of events processed.
func (r *ring) drain(fn func(*Event)) int {
	n := r.n
	for i := 0; i < n; i++ {
		fn(&r.buf[(r.head+i)%len(r.buf)])
	}
	r.head, r.n = 0, 0
	return n
}
