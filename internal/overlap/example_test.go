package overlap_test

import (
	"fmt"
	"time"

	"ovlp/internal/calib"
	"ovlp/internal/overlap"
)

// manualClock drives the example deterministically.
type manualClock struct{ t time.Duration }

func (c *manualClock) Now() time.Duration { return c.t }

// Example walks the full lifecycle: build a monitor from a calibration
// table, feed it the four PERUSE-style events for one non-blocking
// exchange, and read the derived bounds.
func Example() {
	table, _ := calib.NewTable([]calib.Point{
		{Size: 1, Time: 50 * time.Microsecond},
		{Size: 1 << 20, Time: 50 * time.Microsecond}, // flat for the demo
	})
	clock := &manualClock{}
	m := overlap.NewMonitor(overlap.Config{Clock: clock, Table: table})

	// A non-blocking send: initiation inside one call, completion
	// detected in a later Wait, 40µs of computation in between.
	m.CallEnter() // MPI_Isend
	m.XferBegin(1, 64<<10)
	clock.t = 5 * time.Microsecond
	m.CallExit()
	clock.t = 45 * time.Microsecond // application computes
	m.CallEnter()                   // MPI_Wait
	clock.t = 55 * time.Microsecond
	m.XferEnd(1, 0)
	m.CallExit()

	rep := m.Finalize()
	tot := rep.Total()
	fmt.Printf("transfer time %v, overlapped min %v max %v\n",
		tot.DataTransferTime, tot.MinOverlapped, tot.MaxOverlapped)
	fmt.Printf("computation %v, library %v\n",
		rep.UserComputeTime(), rep.CommCallTime())
	// Output:
	// transfer time 50µs, overlapped min 35µs max 40µs
	// computation 40µs, library 15µs
}

// ExampleMonitor_PushRegion shows application-controlled monitored
// sections: activity is attributed to the innermost region.
func ExampleMonitor_PushRegion() {
	table, _ := calib.NewTable([]calib.Point{{Size: 1, Time: 10 * time.Microsecond}})
	clock := &manualClock{}
	m := overlap.NewMonitor(overlap.Config{Clock: clock, Table: table})

	m.PushRegion("x_solve")
	m.CallEnter()
	m.XferEnd(7, 1024) // an eager arrival: end-only observation
	clock.t = 2 * time.Microsecond
	m.CallExit()
	m.PopRegion()

	rep := m.Finalize()
	reg := rep.Region("x_solve")
	fmt.Printf("%s: %d transfer, bounds [%v, %v]\n",
		reg.Name, reg.Total.Count, reg.Total.MinOverlapped, reg.Total.MaxOverlapped)
	// Output:
	// x_solve: 1 transfer, bounds [0s, 10µs]
}
