package overlap

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Machine-readable report serialization. The paper's implementation
// writes one output file per process at application termination; this
// is that file's structured form, suitable for post-processing across
// ranks and runs.

// EncodeJSON writes the report as indented JSON.
func (r *Report) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// DecodeJSON reads a report written by EncodeJSON.
func DecodeJSON(rd io.Reader) (*Report, error) {
	var rep Report
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("overlap: decoding report: %w", err)
	}
	return &rep, nil
}

// SaveJSON writes the report to the named file.
func (r *Report) SaveJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.EncodeJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadJSON reads a report file written by SaveJSON.
func LoadJSON(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeJSON(f)
}
