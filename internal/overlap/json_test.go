package overlap

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func sampleReport(t *testing.T) *Report {
	t.Helper()
	c := &fakeClock{}
	m := newTestMonitor(t, c, 50*us, 64)
	c.at(0)
	m.PushRegion("solve")
	m.CallEnter()
	m.XferBegin(1, 2000)
	c.at(5 * us)
	m.CallExit()
	c.at(60 * us)
	m.CallEnter()
	m.XferEnd(1, 0)
	m.XferEnd(2, 100000) // case 3
	c.at(65 * us)
	m.CallExit()
	m.PopRegion()
	rep := m.Finalize()
	rep.Rank = 5
	return rep
}

func TestJSONRoundTrip(t *testing.T) {
	rep := sampleReport(t)
	var buf bytes.Buffer
	if err := rep.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Fatalf("round trip changed report:\nout %+v\nin  %+v", rep, back)
	}
}

func TestJSONFileRoundTrip(t *testing.T) {
	rep := sampleReport(t)
	path := filepath.Join(t.TempDir(), "rank5.json")
	if err := rep.SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rank != 5 || back.Total() != rep.Total() {
		t.Fatalf("loaded report differs: %+v", back)
	}
	if back.Region("solve") == nil {
		t.Fatal("region lost in serialization")
	}
}

func TestJSONRejectsUnknownFields(t *testing.T) {
	if _, err := DecodeJSON(strings.NewReader(`{"Bogus": 1}`)); err == nil {
		t.Fatal("expected error for unknown field")
	}
}

func TestJSONDurationUnitsStable(t *testing.T) {
	// Durations serialize as integer nanoseconds — guard against
	// accidental format changes that would break downstream tooling.
	rep := &Report{Duration: 1500 * time.Nanosecond}
	var buf bytes.Buffer
	if err := rep.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"Duration": 1500`) {
		t.Fatalf("duration encoding changed:\n%s", buf.String())
	}
}
