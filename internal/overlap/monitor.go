package overlap

import (
	"fmt"
	"time"

	"ovlp/internal/calib"
)

// DefaultQueueSize is the default capacity of the circular event
// queue.
const DefaultQueueSize = 4096

// DefaultBinBounds are the default message-size bin upper bounds
// (inclusive), in bytes; messages larger than the last bound fall into
// a final open-ended bin. The first bins cover the "short" (eager)
// regime, the later ones the "long" (rendezvous) regime.
func DefaultBinBounds() []int {
	return []int{1 << 10, 8 << 10, 64 << 10, 512 << 10, 4 << 20}
}

// Sink receives a copy of every instrumentation event as it is
// logged, before it enters the circular queue. Implementations must
// not call back into the Monitor. The trace package's OverlapSink
// satisfies this interface.
type Sink interface {
	OverlapEvent(e Event)
}

// Config parameterizes a Monitor.
type Config struct {
	// Clock supplies time-stamps. Required.
	Clock Clock
	// Table is the a-priori transfer-time table. Required.
	Table *calib.Table
	// ClockDomain names the clock the stamps are read from ("virtual",
	// "real", "fake"); it is copied into the report so downstream
	// analysis knows whether the bounds are deterministic virtual-time
	// quantities or wall-clock measurements. Empty means virtual.
	ClockDomain string
	// QueueSize is the circular event queue capacity; 0 means
	// DefaultQueueSize.
	QueueSize int
	// BinBounds are inclusive upper bounds of the message-size bins,
	// ascending; nil means DefaultBinBounds().
	BinBounds []int
	// Charge, if non-nil, is invoked with the modelled host-CPU cost
	// of instrumentation work (event logging, queue draining), so a
	// simulation can account for the framework's own overhead. The
	// per-unit costs below are only used when Charge is set.
	Charge func(time.Duration)
	// EventCost is the modelled cost of logging one event.
	EventCost time.Duration
	// DrainCostPerEvent is the modelled cost of processing one queued
	// event in the data processing module.
	DrainCostPerEvent time.Duration
	// UserIntervalWindow is the number of recent user-computation
	// intervals retained for XferExact intersection; 0 means
	// DefaultUserIntervalWindow. Irrelevant unless the substrate
	// supplies hardware time-stamps.
	UserIntervalWindow int
	// Sink, if non-nil, additionally receives every event as it is
	// logged — the production tracing path (the trace package's
	// OverlapSink adapter turns events into timeline records). Sink
	// invocations are not charged by the monitor; a simulation that
	// models tracing cost charges it at the emission layer instead.
	Sink Sink
	// TraceSink is the legacy per-event callback, kept as an adapter
	// over the same stream Sink sees; both may be set. New code should
	// prefer Sink.
	TraceSink func(Event)
	// OnDrain, if non-nil, is invoked after the processing module
	// folds n queued events into the running measures (n > 0 only), so
	// an observer can record queue-drain activity.
	OnDrain func(n int)
	// StrictQueue restores the historical behaviour of panicking when
	// an event arrives at a full queue. By default the monitor drains
	// the queue through the processing module and keeps going —
	// profiling degrades gracefully instead of killing the run.
	StrictQueue bool
}

// Monitor is the per-process instrumentation instance: the data
// collection module (hot-path event logging into a circular queue) and
// the data processing module (the bounds algorithm) of the framework.
//
// A nil *Monitor is valid and ignores all calls, so libraries can be
// built with instrumentation unconditionally and run uninstrumented at
// zero cost beyond a nil check.
//
// Monitors are process-local and perform no interprocess
// communication; all methods must be called from the owning process's
// context (they are not safe for concurrent use).
type Monitor struct {
	cfg   Config
	q     *ring
	depth int // nesting depth of library calls

	regionIndex map[string]int32
	regionNames []string
	regionStack []int32

	st        procState
	finalized bool
}

// NewMonitor creates a Monitor. It panics if Clock or Table is
// missing, since a silently mis-configured instrument is worse than a
// crash at startup.
func NewMonitor(cfg Config) *Monitor {
	if cfg.Clock == nil {
		panic("overlap: Config.Clock is required")
	}
	if cfg.Table == nil {
		panic("overlap: Config.Table is required")
	}
	if cfg.QueueSize == 0 {
		cfg.QueueSize = DefaultQueueSize
	}
	if cfg.QueueSize < 2 {
		panic("overlap: queue size must be at least 2")
	}
	if cfg.BinBounds == nil {
		cfg.BinBounds = DefaultBinBounds()
	}
	if cfg.UserIntervalWindow == 0 {
		cfg.UserIntervalWindow = DefaultUserIntervalWindow
	}
	for i := 1; i < len(cfg.BinBounds); i++ {
		if cfg.BinBounds[i] <= cfg.BinBounds[i-1] {
			panic("overlap: bin bounds must be strictly ascending")
		}
	}
	m := &Monitor{
		cfg:         cfg,
		q:           newRing(cfg.QueueSize),
		regionIndex: map[string]int32{"": 0},
		regionNames: []string{""},
	}
	m.st.init(m)
	return m
}

// log records an event in the circular queue, draining the queue
// through the processing module first if it is full.
func (m *Monitor) log(e Event) {
	if m.finalized {
		panic("overlap: event after Finalize")
	}
	if m.cfg.Charge != nil && m.cfg.EventCost > 0 {
		m.cfg.Charge(m.cfg.EventCost)
	}
	if m.cfg.TraceSink != nil {
		m.cfg.TraceSink(e)
	}
	if m.cfg.Sink != nil {
		m.cfg.Sink.OverlapEvent(e)
	}
	if m.q.full() {
		// Normally drained at the push that fills the queue; re-entrant
		// logging (e.g. a Charge callback that triggers events) can
		// still find it full. Fold the backlog into the running
		// measures and continue, unless the caller opted into the
		// historical hard failure.
		if m.cfg.StrictQueue {
			panic("overlap: event queue overflow (drain before pushing)")
		}
		m.process()
	}
	if m.q.push(e) {
		m.process()
	}
}

// process drains the queue into the running measures.
func (m *Monitor) process() {
	n := m.q.drain(m.st.apply)
	if m.cfg.Charge != nil && m.cfg.DrainCostPerEvent > 0 {
		m.cfg.Charge(time.Duration(n) * m.cfg.DrainCostPerEvent)
	}
	if n > 0 && m.cfg.OnDrain != nil {
		m.cfg.OnDrain(n)
	}
}

// CallEnter marks entry into the communication library. Calls nest;
// only the outermost transition is time-stamped, so collectives built
// from point-to-point calls register as a single library visit.
func (m *Monitor) CallEnter() {
	if m == nil {
		return
	}
	m.depth++
	if m.depth == 1 {
		m.log(Event{Kind: KindCallEnter, Stamp: m.cfg.Clock.Now()})
	}
}

// CallExit marks the matching exit from the communication library.
func (m *Monitor) CallExit() {
	if m == nil {
		return
	}
	if m.depth == 0 {
		panic("overlap: CallExit without CallEnter")
	}
	m.depth--
	if m.depth == 0 {
		m.log(Event{Kind: KindCallExit, Stamp: m.cfg.Clock.Now()})
	}
}

// InCall reports whether the process is currently inside a library
// call (at any nesting depth).
func (m *Monitor) InCall() bool { return m != nil && m.depth > 0 }

// XferBegin marks the initiation of the data transfer identified by
// id, of size bytes. It must be called from within a library call.
func (m *Monitor) XferBegin(id uint64, size int) {
	if m == nil {
		return
	}
	m.log(Event{Kind: KindXferBegin, ID: id, Size: int64(size), Stamp: m.cfg.Clock.Now()})
}

// XferEnd marks the detected completion of transfer id. size is used
// only when the transfer's begin event was never observed (for
// example, the receive side of an eager transfer, where the initiation
// is invisible to the receiver).
func (m *Monitor) XferEnd(id uint64, size int) {
	if m == nil {
		return
	}
	m.log(Event{Kind: KindXferEnd, ID: id, Size: int64(size), Stamp: m.cfg.Clock.Now()})
}

// PushRegion directs subsequent activity to the named monitored
// region, giving the application-level control over monitored code
// sections described in the paper. Regions may nest; activity is
// attributed to the innermost region only, so aggregating all regions
// yields whole-program measures.
func (m *Monitor) PushRegion(name string) {
	if m == nil {
		return
	}
	idx, ok := m.regionIndex[name]
	if !ok {
		idx = int32(len(m.regionNames))
		m.regionIndex[name] = idx
		m.regionNames = append(m.regionNames, name)
	}
	m.regionStack = append(m.regionStack, idx)
	m.log(Event{Kind: KindRegionPush, Region: idx, Stamp: m.cfg.Clock.Now()})
}

// RegionName returns the registered name of a region index ("" for
// the root region or an unknown index). Safe to call from a Sink: a
// region's name is registered before its push event is logged.
func (m *Monitor) RegionName(idx int32) string {
	if m == nil || idx <= 0 || int(idx) >= len(m.regionNames) {
		return ""
	}
	return m.regionNames[idx]
}

// UnwindRegions pops every open monitored region, restoring the root
// region — used after an abort (a rank-failure panic) unwound the
// application mid-region, so post-recovery activity is not
// misattributed to a region that was never popped.
func (m *Monitor) UnwindRegions() {
	if m == nil {
		return
	}
	for len(m.regionStack) > 0 {
		m.PopRegion()
	}
}

// PopRegion leaves the current monitored region.
func (m *Monitor) PopRegion() {
	if m == nil {
		return
	}
	if len(m.regionStack) == 0 {
		panic("overlap: PopRegion without PushRegion")
	}
	m.regionStack = m.regionStack[:len(m.regionStack)-1]
	top := int32(0)
	if n := len(m.regionStack); n > 0 {
		top = m.regionStack[n-1]
	}
	m.log(Event{Kind: KindRegionPop, Region: top, Stamp: m.cfg.Clock.Now()})
}

// EpochCut closes the current recovery epoch at the present instant:
// transfers still open are resolved as truncated (single-stamped: zero
// minimum, full maximum overlap — charged to the epoch that started
// them, since their completion will never be observed), and subsequent
// activity accumulates into the next epoch. The final report then
// carries a per-epoch breakdown alongside the whole-run measures. The
// cut is an ordinary queued event, so it reaches any Sink (and thus
// exported traces) in stream order and offline replays reproduce the
// truncation exactly. Must be called outside any library call. A nil
// monitor ignores the call.
func (m *Monitor) EpochCut() {
	if m == nil {
		return
	}
	if m.finalized {
		panic("overlap: EpochCut after Finalize")
	}
	if m.depth != 0 {
		panic(fmt.Sprintf("overlap: EpochCut inside a library call (depth %d)", m.depth))
	}
	m.log(Event{Kind: KindEpochCut, Stamp: m.cfg.Clock.Now()})
}

// Finalize drains outstanding events, closes still-open transfers
// (single-stamped: zero minimum, full maximum overlap), and returns
// the process's report. The monitor rejects further events afterwards.
func (m *Monitor) Finalize() *Report {
	if m == nil {
		return nil
	}
	if m.finalized {
		panic("overlap: Finalize called twice")
	}
	if m.depth != 0 {
		panic(fmt.Sprintf("overlap: Finalize inside a library call (depth %d)", m.depth))
	}
	m.process()
	m.finalized = true
	return m.st.finish(m.cfg.Clock.Now())
}
