package overlap

import (
	"strings"
	"testing"
	"time"

	"ovlp/internal/calib"
)

// fakeClock is a manually advanced clock for deterministic unit tests.
type fakeClock struct{ t time.Duration }

func (c *fakeClock) Now() time.Duration { return c.t }
func (c *fakeClock) at(t time.Duration) { c.t = t }

// flatTable returns a calibration table where every size up to 1 MiB
// costs exactly xt — so expected bounds can be computed by hand.
func flatTable(t *testing.T, xt time.Duration) *calib.Table {
	t.Helper()
	tbl, err := calib.NewTable([]calib.Point{
		{Size: 1, Time: xt},
		{Size: 1 << 20, Time: xt},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func newTestMonitor(t *testing.T, clock Clock, xt time.Duration, queue int) *Monitor {
	t.Helper()
	return NewMonitor(Config{Clock: clock, Table: flatTable(t, xt), QueueSize: queue})
}

const us = time.Microsecond

func TestCase1SameCallZeroOverlap(t *testing.T) {
	c := &fakeClock{}
	m := newTestMonitor(t, c, 100*us, 64)

	c.at(0)
	m.CallEnter()
	c.at(10 * us)
	m.XferBegin(1, 1000)
	c.at(120 * us)
	m.XferEnd(1, 1000)
	c.at(130 * us)
	m.CallExit()

	c.at(200 * us)
	rep := m.Finalize()
	tot := rep.Total()
	if tot.Count != 1 || tot.SameCall != 1 {
		t.Fatalf("expected one same-call transfer, got %+v", tot)
	}
	if tot.MinOverlapped != 0 || tot.MaxOverlapped != 0 {
		t.Errorf("case 1 must give zero bounds, got min=%v max=%v",
			tot.MinOverlapped, tot.MaxOverlapped)
	}
	if tot.DataTransferTime != 100*us {
		t.Errorf("data transfer time %v, want 100µs", tot.DataTransferTime)
	}
}

func TestCase2BothStampsHandComputed(t *testing.T) {
	// xt = 100µs. Timeline:
	//   [0,10]    call 1: XferBegin at t=5
	//   [10,70]   user computation (60µs)
	//   [70,100]  call 2: XferEnd at t=90
	// computation_time = 60µs -> max = min(60,100) = 60µs
	// noncomputation_time = (10-5) + (90-70) = 25µs -> min = 100-25 = 75µs
	// min clamps to max: 60µs.
	c := &fakeClock{}
	m := newTestMonitor(t, c, 100*us, 64)

	c.at(0)
	m.CallEnter()
	c.at(5 * us)
	m.XferBegin(1, 1000)
	c.at(10 * us)
	m.CallExit()
	c.at(70 * us)
	m.CallEnter()
	c.at(90 * us)
	m.XferEnd(1, 1000)
	c.at(100 * us)
	m.CallExit()

	rep := m.Finalize()
	tot := rep.Total()
	if tot.BothStamps != 1 {
		t.Fatalf("expected one both-stamps transfer, got %+v", tot)
	}
	if tot.MaxOverlapped != 60*us {
		t.Errorf("max = %v, want 60µs", tot.MaxOverlapped)
	}
	if tot.MinOverlapped != 60*us {
		t.Errorf("min = %v, want 60µs (75µs clamped to max)", tot.MinOverlapped)
	}
}

func TestCase2InsufficientComputation(t *testing.T) {
	// xt = 100µs, only 30µs of computation between the stamps, and
	// 200µs inside the library: max = 30µs, min = max(0, 100-200) = 0.
	c := &fakeClock{}
	m := newTestMonitor(t, c, 100*us, 64)

	c.at(0)
	m.CallEnter()
	m.XferBegin(1, 1000)
	c.at(100 * us) // 100µs in-library after begin
	m.CallExit()
	c.at(130 * us) // 30µs computing
	m.CallEnter()
	c.at(230 * us) // another 100µs in-library
	m.XferEnd(1, 1000)
	m.CallExit()

	tot := m.Finalize().Total()
	if tot.MaxOverlapped != 30*us {
		t.Errorf("max = %v, want 30µs", tot.MaxOverlapped)
	}
	if tot.MinOverlapped != 0 {
		t.Errorf("min = %v, want 0", tot.MinOverlapped)
	}
}

func TestCase3EndOnly(t *testing.T) {
	c := &fakeClock{}
	m := newTestMonitor(t, c, 80*us, 64)

	c.at(0)
	m.CallEnter()
	m.XferEnd(7, 2048) // begin never observed
	c.at(10 * us)
	m.CallExit()

	tot := m.Finalize().Total()
	if tot.SingleStamp != 1 {
		t.Fatalf("expected a single-stamp transfer, got %+v", tot)
	}
	if tot.MinOverlapped != 0 || tot.MaxOverlapped != 80*us {
		t.Errorf("case 3 bounds = %v/%v, want 0/80µs", tot.MinOverlapped, tot.MaxOverlapped)
	}
}

func TestCase3BeginOnlyResolvedAtFinalize(t *testing.T) {
	c := &fakeClock{}
	m := newTestMonitor(t, c, 80*us, 64)

	c.at(0)
	m.CallEnter()
	m.XferBegin(9, 4096) // end never observed
	c.at(10 * us)
	m.CallExit()

	c.at(50 * us)
	tot := m.Finalize().Total()
	if tot.SingleStamp != 1 || tot.Count != 1 {
		t.Fatalf("open transfer not resolved at Finalize: %+v", tot)
	}
	if tot.MinOverlapped != 0 || tot.MaxOverlapped != 80*us {
		t.Errorf("bounds = %v/%v, want 0/80µs", tot.MinOverlapped, tot.MaxOverlapped)
	}
}

func TestUserAndLibraryTimeAccounting(t *testing.T) {
	c := &fakeClock{}
	m := newTestMonitor(t, c, 10*us, 64)

	c.at(10 * us) // 10µs of pre-call computation
	m.CallEnter()
	c.at(25 * us) // 15µs in library
	m.CallExit()
	c.at(40 * us) // 15µs computing
	m.CallEnter()
	c.at(45 * us)
	m.CallExit()
	c.at(50 * us) // 5µs trailing computation

	rep := m.Finalize()
	if got := rep.UserComputeTime(); got != 30*us {
		t.Errorf("user compute = %v, want 30µs", got)
	}
	if got := rep.CommCallTime(); got != 20*us {
		t.Errorf("comm call time = %v, want 20µs", got)
	}
	if rep.Duration != 50*us {
		t.Errorf("duration = %v, want 50µs", rep.Duration)
	}
}

func TestNestedCallsCountOnce(t *testing.T) {
	c := &fakeClock{}
	m := newTestMonitor(t, c, 10*us, 64)

	c.at(0)
	m.CallEnter() // collective
	c.at(5 * us)
	m.CallEnter() // nested point-to-point
	c.at(15 * us)
	m.CallExit()
	c.at(20 * us)
	m.CallExit()

	rep := m.Finalize()
	if got := rep.CommCallTime(); got != 20*us {
		t.Errorf("nested calls should count as one visit: lib time %v, want 20µs", got)
	}
	if got := rep.UserComputeTime(); got != 0 {
		t.Errorf("user compute = %v, want 0", got)
	}
}

func TestCase1AcrossNestedCallBoundary(t *testing.T) {
	// Begin and end both inside one outermost call, with nested
	// enters in between — still case 1.
	c := &fakeClock{}
	m := newTestMonitor(t, c, 10*us, 64)

	c.at(0)
	m.CallEnter()
	m.XferBegin(1, 100)
	m.CallEnter()
	c.at(5 * us)
	m.CallExit()
	m.XferEnd(1, 100)
	c.at(6 * us)
	m.CallExit()

	tot := m.Finalize().Total()
	if tot.SameCall != 1 || tot.MaxOverlapped != 0 {
		t.Errorf("nested-call transfer should be case 1: %+v", tot)
	}
}

func TestQueueDrainPreservesResults(t *testing.T) {
	// Identical event streams through a tiny queue (many drains) and a
	// huge queue (one drain) must produce identical measures.
	drive := func(queueSize int) Measures {
		c := &fakeClock{}
		m := newTestMonitor(t, c, 50*us, queueSize)
		tick := time.Duration(0)
		step := func(d time.Duration) { tick += d; c.at(tick) }
		for i := 0; i < 100; i++ {
			id := uint64(i + 1)
			m.CallEnter()
			step(3 * us)
			m.XferBegin(id, 1000*(i%5+1))
			step(2 * us)
			m.CallExit()
			step(time.Duration(i%7) * 10 * us)
			m.CallEnter()
			step(4 * us)
			m.XferEnd(id, 0)
			step(1 * us)
			m.CallExit()
			step(5 * us)
		}
		return m.Finalize().Total()
	}
	small := drive(4)
	big := drive(4096)
	if small != big {
		t.Fatalf("queue size changed results:\nsmall %+v\nbig   %+v", small, big)
	}
}

func TestRegionsAttribution(t *testing.T) {
	c := &fakeClock{}
	m := newTestMonitor(t, c, 100*us, 64)

	// One transfer inside region "solve", one outside.
	c.at(0)
	m.PushRegion("solve")
	m.CallEnter()
	m.XferBegin(1, 1000)
	c.at(10 * us)
	m.CallExit()
	c.at(60 * us)
	m.CallEnter()
	m.XferEnd(1, 0)
	c.at(70 * us)
	m.CallExit()
	m.PopRegion()

	c.at(100 * us)
	m.CallEnter()
	m.XferBegin(2, 1000)
	m.XferEnd(2, 0)
	c.at(110 * us)
	m.CallExit()

	rep := m.Finalize()
	solve := rep.Region("solve")
	if solve == nil {
		t.Fatal("region 'solve' missing from report")
	}
	if solve.Total.Count != 1 {
		t.Errorf("solve region has %d transfers, want 1", solve.Total.Count)
	}
	if solve.UserComputeTime != 50*us {
		t.Errorf("solve region user time %v, want 50µs", solve.UserComputeTime)
	}
	root := rep.Region("")
	if root.Total.Count != 1 || root.Total.SameCall != 1 {
		t.Errorf("root region should hold the case-1 transfer: %+v", root.Total)
	}
	if got := rep.Total().Count; got != 2 {
		t.Errorf("aggregate count %d, want 2", got)
	}
}

func TestNestedRegions(t *testing.T) {
	c := &fakeClock{}
	m := newTestMonitor(t, c, 10*us, 64)
	c.at(0)
	m.PushRegion("outer")
	c.at(10 * us)
	m.PushRegion("inner")
	c.at(30 * us) // 20µs of computation inside inner
	m.PopRegion()
	c.at(40 * us) // 10µs more in outer
	m.PopRegion()
	rep := m.Finalize()
	if got := rep.Region("inner").UserComputeTime; got != 20*us {
		t.Errorf("inner user time %v, want 20µs", got)
	}
	if got := rep.Region("outer").UserComputeTime; got != 20*us {
		t.Errorf("outer user time %v, want 20µs (10 before + 10 after inner)", got)
	}
}

func TestSizeBinning(t *testing.T) {
	c := &fakeClock{}
	m := NewMonitor(Config{
		Clock:     c,
		Table:     flatTable(t, 10*us),
		QueueSize: 64,
		BinBounds: []int{1000, 100000},
	})
	c.at(0)
	m.CallEnter()
	m.XferEnd(1, 500)    // bin 0
	m.XferEnd(2, 1000)   // bin 0 (inclusive bound)
	m.XferEnd(3, 1001)   // bin 1
	m.XferEnd(4, 500000) // bin 2 (open-ended)
	c.at(us)
	m.CallExit()
	rep := m.Finalize()
	bins := rep.Regions[0].Bins
	if bins[0].Count != 2 || bins[1].Count != 1 || bins[2].Count != 1 {
		t.Errorf("bin counts = %d/%d/%d, want 2/1/1", bins[0].Count, bins[1].Count, bins[2].Count)
	}
}

func TestNilMonitorIsNoop(t *testing.T) {
	var m *Monitor
	m.CallEnter()
	m.CallExit()
	m.XferBegin(1, 10)
	m.XferEnd(1, 10)
	m.PushRegion("x")
	m.PopRegion()
	if rep := m.Finalize(); rep != nil {
		t.Fatal("nil monitor should finalize to nil")
	}
}

func TestChargeAccounting(t *testing.T) {
	var charged time.Duration
	c := &fakeClock{}
	m := NewMonitor(Config{
		Clock:             c,
		Table:             flatTable(t, 10*us),
		QueueSize:         4,
		Charge:            func(d time.Duration) { charged += d },
		EventCost:         40 * time.Nanosecond,
		DrainCostPerEvent: 25 * time.Nanosecond,
	})
	for i := 0; i < 4; i++ { // exactly fills the queue once
		m.CallEnter()
		m.CallExit()
	}
	// 8 events logged at 40ns each; at push #4 the queue drained 4
	// events at 25ns, then 4 more events re-filled it and drained
	// again at #8.
	want := 8*40*time.Nanosecond + 8*25*time.Nanosecond
	if charged != want {
		t.Errorf("charged %v, want %v", charged, want)
	}
}

func TestMisusePanics(t *testing.T) {
	c := &fakeClock{}
	cases := map[string]func(){
		"exit without enter": func() { newTestMonitor(t, c, us, 8).CallExit() },
		"pop without push":   func() { newTestMonitor(t, c, us, 8).PopRegion() },
		"finalize in call": func() {
			m := newTestMonitor(t, c, us, 8)
			m.CallEnter()
			m.Finalize()
		},
		"double finalize": func() {
			m := newTestMonitor(t, c, us, 8)
			m.Finalize()
			m.Finalize()
		},
		"event after finalize": func() {
			m := newTestMonitor(t, c, us, 8)
			m.Finalize()
			m.CallEnter()
		},
		"missing clock": func() { NewMonitor(Config{Table: flatTable(t, us)}) },
		"missing table": func() { NewMonitor(Config{Clock: c}) },
		"bad bins": func() {
			NewMonitor(Config{Clock: c, Table: flatTable(t, us), BinBounds: []int{5, 5}})
		},
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestWallClockMonotone(t *testing.T) {
	c := NewWallClock()
	a := c.Now()
	b := c.Now()
	if b < a {
		t.Fatalf("wall clock went backwards: %v then %v", a, b)
	}
}

func TestReportWriteTo(t *testing.T) {
	c := &fakeClock{}
	m := newTestMonitor(t, c, 50*us, 64)
	c.at(0)
	m.PushRegion("phase1")
	m.CallEnter()
	m.XferBegin(1, 2000)
	c.at(5 * us)
	m.CallExit()
	c.at(60 * us)
	m.CallEnter()
	m.XferEnd(1, 0)
	c.at(65 * us)
	m.CallExit()
	m.PopRegion()
	rep := m.Finalize()
	rep.Rank = 3

	var b strings.Builder
	if _, err := rep.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"rank 3", "phase1", "data transfer time", "min", "max"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}
}

func TestAggregateAcrossRanks(t *testing.T) {
	mk := func(region string, minOv, maxOv time.Duration) *Report {
		return &Report{
			BinBounds: DefaultBinBounds(),
			Regions: []RegionReport{{
				Name:  region,
				Total: Measures{Count: 1, DataTransferTime: 100 * us, MinOverlapped: minOv, MaxOverlapped: maxOv},
				Bins:  make([]Measures, len(DefaultBinBounds())+1),
			}},
		}
	}
	agg := Aggregate([]*Report{
		mk("a", 10*us, 20*us),
		mk("a", 30*us, 40*us),
		mk("b", 5*us, 5*us),
	})
	a := agg.Region("a")
	if a == nil || a.Total.Count != 2 || a.Total.MinOverlapped != 40*us {
		t.Fatalf("aggregate region a wrong: %+v", a)
	}
	if tot := agg.Total(); tot.Count != 3 || tot.DataTransferTime != 300*us {
		t.Fatalf("aggregate total wrong: %+v", tot)
	}
}

// TestAggregateHeterogeneous exercises the documented merge rule:
// regions are unioned by name, nil reports are skipped, and a report
// with different bin bounds contributes totals but no per-bin detail
// (its bins measure different size intervals).
func TestAggregateHeterogeneous(t *testing.T) {
	mk := func(region string, bounds []int, bin0 Measures) *Report {
		bins := make([]Measures, len(bounds)+1)
		bins[0] = bin0
		var tot Measures
		tot.Add(bin0)
		return &Report{
			BinBounds: bounds,
			Regions:   []RegionReport{{Name: region, Total: tot, Bins: bins}},
		}
	}
	one := Measures{Count: 1, DataTransferTime: 100 * us, MinOverlapped: 10 * us, MaxOverlapped: 20 * us}
	agg := Aggregate([]*Report{
		nil, // dead rank: skipped, not dereferenced
		mk("a", []int{1 << 10, 1 << 20}, one),
		mk("a", []int{1 << 12}, one), // different bounds AND fewer bins than the aggregate
		mk("b", []int{1 << 10, 1 << 20}, one),
	})
	if len(agg.Regions) != 2 {
		t.Fatalf("want regions a and b, got %+v", agg.Regions)
	}
	if got := agg.BinBounds; len(got) != 2 || got[0] != 1<<10 {
		t.Fatalf("aggregate bounds must come from the first non-nil report, got %v", got)
	}
	a := agg.Region("a")
	if a.Total.Count != 2 || a.Total.DataTransferTime != 200*us {
		t.Errorf("region a totals must include the mismatched-bounds report: %+v", a.Total)
	}
	if len(a.Bins) != 3 || a.Bins[0].Count != 1 {
		t.Errorf("region a bin detail must count only matching-bounds reports: %+v", a.Bins)
	}
	if tot := agg.Total(); tot.Count != 3 {
		t.Errorf("aggregate total count = %d, want 3", tot.Count)
	}
}

func TestMeasuresHelpers(t *testing.T) {
	m := Measures{DataTransferTime: 200 * us, MinOverlapped: 50 * us, MaxOverlapped: 150 * us}
	if p := m.MinPercent(); p != 25 {
		t.Errorf("min%% = %v, want 25", p)
	}
	if p := m.MaxPercent(); p != 75 {
		t.Errorf("max%% = %v, want 75", p)
	}
	if n := m.NonOverlapped(); n != 50*us {
		t.Errorf("non-overlapped = %v, want 50µs", n)
	}
	var zero Measures
	if zero.MinPercent() != 0 || zero.MaxPercent() != 0 {
		t.Error("zero measures should give 0 percentages")
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := map[Kind]string{
		KindCallEnter:  "CALL_ENTER",
		KindCallExit:   "CALL_EXIT",
		KindXferBegin:  "XFER_BEGIN",
		KindXferEnd:    "XFER_END",
		KindRegionPush: "REGION_PUSH",
		KindRegionPop:  "REGION_POP",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestTraceSinkSeesAllEvents(t *testing.T) {
	var kinds []Kind
	c := &fakeClock{}
	m := NewMonitor(Config{
		Clock:     c,
		Table:     flatTable(t, us),
		QueueSize: 8,
		TraceSink: func(e Event) { kinds = append(kinds, e.Kind) },
	})
	m.CallEnter()
	m.XferBegin(1, 10)
	m.XferEnd(1, 10)
	m.CallExit()
	m.Finalize()
	want := []Kind{KindCallEnter, KindXferBegin, KindXferEnd, KindCallExit}
	if len(kinds) != len(want) {
		t.Fatalf("trace saw %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("trace saw %v, want %v", kinds, want)
		}
	}
}
