package overlap

import "testing"

// fillQueue stuffs the monitor's ring to capacity behind log's back,
// simulating the backlog that used to crash the run with an overflow
// panic when the next event arrived.
func fillQueue(m *Monitor, c *fakeClock) {
	id := uint64(1000)
	for !m.q.full() {
		c.t += us
		m.q.push(Event{Kind: KindXferBegin, ID: id, Size: 512, Stamp: c.t})
		if m.q.full() {
			return
		}
		c.t += us
		m.q.push(Event{Kind: KindXferEnd, ID: id, Size: 512, Stamp: c.t})
		id++
	}
}

// TestQueueOverflowAutoDrains is the regression test for the
// queue-overflow panic: a full queue must be folded into the running
// measures and the new event accepted, losing nothing.
func TestQueueOverflowAutoDrains(t *testing.T) {
	c := &fakeClock{}
	m := newTestMonitor(t, c, 100*us, 8)
	fillQueue(m, c)

	c.at(100 * us)
	m.CallEnter() // must not panic
	c.at(110 * us)
	m.XferBegin(1, 1000)
	c.at(220 * us)
	m.XferEnd(1, 1000)
	c.at(230 * us)
	m.CallExit()

	c.at(300 * us)
	rep := m.Finalize()
	// 4 queued begin/end pairs plus the post-overflow transfer.
	if got := rep.Total().Count; got != 5 {
		t.Fatalf("report counts %d transfers, want 5 (backlog lost in the drain?)", got)
	}
}

// TestQueueOverflowStrictPanics keeps the opt-in hard failure.
func TestQueueOverflowStrictPanics(t *testing.T) {
	c := &fakeClock{}
	m := NewMonitor(Config{Clock: c, Table: flatTable(t, 100*us), QueueSize: 8, StrictQueue: true})
	fillQueue(m, c)
	defer func() {
		if recover() == nil {
			t.Fatal("StrictQueue did not panic on overflow")
		}
	}()
	c.at(100 * us)
	m.CallEnter()
}
