package overlap

import "time"

// Precise characterization from NIC hardware time-stamps — the
// refinement the paper names as future work ("if it were possible to
// obtain time-stamps on data transfers from the network interface
// card, a more precise characterization of the overlap would be
// possible").
//
// When the communication substrate can report the physical transfer
// interval of an operation, the library calls XferExact instead of the
// XferBegin/XferEnd pair. The processing module then intersects the
// interval with the process's recent user-computation intervals and
// records the exact overlap: the minimum and maximum bounds coincide.
//
// To stay a profiler rather than a tracer, the module retains only a
// bounded window of recent computation intervals
// (Config.UserIntervalWindow). A transfer that began before the oldest
// retained interval — which requires a transfer outstanding across
// hundreds of library calls — degrades gracefully back to bounds: the
// unknown prefix counts as potentially-overlapped in the maximum and
// not at all in the minimum.

// DefaultUserIntervalWindow is the default number of recent
// user-computation intervals retained for precise intersection.
const DefaultUserIntervalWindow = 512

// XferExact records transfer id of size bytes whose physical interval
// [start, end) is known from hardware time-stamps. It must be called
// from within a library call, at the moment the completion carrying
// the stamps is detected.
func (m *Monitor) XferExact(id uint64, size int, start, end time.Duration) {
	if m == nil {
		return
	}
	if end < start {
		panic("overlap: exact transfer interval inverted")
	}
	m.log(Event{
		Kind:  KindXferExact,
		ID:    id,
		Size:  int64(size),
		Start: start,
		End:   end,
		Stamp: m.cfg.Clock.Now(),
	})
}

// userInterval is one closed computation interval [start, end).
type userInterval struct {
	start, end time.Duration
}

// recordUserInterval appends a closed computation interval, keeping at
// most the configured window and advancing the horizon past dropped
// entries.
func (st *procState) recordUserInterval(start, end time.Duration) {
	if end <= start {
		return
	}
	window := st.m.cfg.UserIntervalWindow
	if len(st.userIvals) >= window {
		drop := len(st.userIvals) - window + 1
		st.horizon = st.userIvals[drop-1].end
		st.userIvals = append(st.userIvals[:0], st.userIvals[drop:]...)
	}
	st.userIvals = append(st.userIvals, userInterval{start, end})
}

// applyExact folds one hardware-stamped transfer into the measures.
func (st *procState) applyExact(e *Event) {
	start, end := e.Start, e.End
	known := time.Duration(0)
	for _, iv := range st.userIvals {
		lo, hi := start, end
		if iv.start > lo {
			lo = iv.start
		}
		if iv.end < hi {
			hi = iv.end
		}
		if hi > lo {
			known += hi - lo
		}
	}
	// Prefix predating the retained window: unknowable, so it widens
	// the bracket instead of corrupting the point estimate.
	var unknown time.Duration
	if start < st.horizon {
		cut := end
		if st.horizon < cut {
			cut = st.horizon
		}
		unknown = cut - start
	}
	st.accountExact(st.curRegion, e.Size, end-start, known, known+unknown)
}

// accountExact adds a hardware-stamped transfer: data transfer time is
// the measured interval, and the bounds are exact (or nearly so, see
// applyExact).
func (st *procState) accountExact(region int32, size int64, data, minOv, maxOv time.Duration) {
	if maxOv > data {
		maxOv = data
	}
	if minOv > maxOv {
		minOv = maxOv
	}
	r := st.region(region)
	bin := st.binFor(size)
	for _, m := range []*Measures{&r.total, &r.bins[bin]} {
		m.Count++
		m.Exact++
		m.DataTransferTime += data
		m.MinOverlapped += minOv
		m.MaxOverlapped += maxOv
	}
}
