package overlap

import (
	"testing"
	"time"
)

func TestXferExactIntersectsUserIntervals(t *testing.T) {
	// User computes during [10,40] and [60,80]; transfer spans [20,70]
	// -> exact overlap = 20 (of [20,40]) + 10 (of [60,70]) = 30µs.
	c := &fakeClock{}
	m := newTestMonitor(t, c, 100*us, 64)

	c.at(0)
	m.CallEnter()
	c.at(10 * us)
	m.CallExit()
	c.at(40 * us)
	m.CallEnter()
	c.at(60 * us)
	m.CallExit()
	c.at(80 * us)
	m.CallEnter()
	m.XferExact(1, 1000, 20*us, 70*us)
	c.at(85 * us)
	m.CallExit()

	tot := m.Finalize().Total()
	if tot.Exact != 1 {
		t.Fatalf("expected one exact transfer: %+v", tot)
	}
	if tot.MinOverlapped != 30*us || tot.MaxOverlapped != 30*us {
		t.Errorf("exact overlap %v/%v, want 30µs/30µs", tot.MinOverlapped, tot.MaxOverlapped)
	}
	if tot.DataTransferTime != 50*us {
		t.Errorf("data transfer time %v, want the measured 50µs interval", tot.DataTransferTime)
	}
}

func TestXferExactFullyInsideLibrary(t *testing.T) {
	c := &fakeClock{}
	m := newTestMonitor(t, c, 100*us, 64)
	c.at(0)
	m.CallEnter()
	m.XferExact(1, 1000, 2*us, 8*us) // entirely within this call
	c.at(10 * us)
	m.CallExit()
	tot := m.Finalize().Total()
	if tot.MinOverlapped != 0 || tot.MaxOverlapped != 0 {
		t.Errorf("transfer inside library shows overlap %v/%v", tot.MinOverlapped, tot.MaxOverlapped)
	}
}

func TestXferExactWindowEvictionWidensBracket(t *testing.T) {
	// With a 4-interval window, a transfer reaching back past the
	// horizon gets the unknown prefix as bracket width instead of a
	// wrong point estimate.
	c := &fakeClock{}
	m := NewMonitor(Config{
		Clock:              c,
		Table:              flatTable(t, 100*us),
		QueueSize:          256,
		UserIntervalWindow: 4,
	})
	// 10 user intervals of 10µs each: [10k, 10k+10] for k=0..9 —
	// only the last 4 stay retained.
	now := time.Duration(0)
	for k := 0; k < 10; k++ {
		c.at(now)
		m.CallEnter()
		now += 10 * us
		c.at(now)
		m.CallExit()
		now += 10 * us
	}
	c.at(now)
	m.CallEnter()
	// Transfer spanning everything so far: true overlap would be
	// 10x10µs = 100µs, but only the last 4 intervals (40µs) are
	// retained; the unknown prefix is everything before the horizon.
	m.XferExact(1, 1000, 0, now)
	c.at(now + us)
	m.CallExit()

	tot := m.Finalize().Total()
	if tot.MinOverlapped >= tot.MaxOverlapped {
		t.Fatalf("eviction should widen the bracket: %v/%v", tot.MinOverlapped, tot.MaxOverlapped)
	}
	if tot.MinOverlapped != 40*us {
		t.Errorf("min (known part) = %v, want 40µs", tot.MinOverlapped)
	}
	if tot.MaxOverlapped < 100*us {
		t.Errorf("max = %v, must cover the true 100µs", tot.MaxOverlapped)
	}
	if tot.MaxOverlapped > tot.DataTransferTime {
		t.Errorf("max %v exceeds data %v", tot.MaxOverlapped, tot.DataTransferTime)
	}
}

func TestXferExactInvertedIntervalPanics(t *testing.T) {
	c := &fakeClock{}
	m := newTestMonitor(t, c, us, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.XferExact(1, 10, 50*us, 40*us)
}

func TestXferExactNilMonitor(t *testing.T) {
	var m *Monitor
	m.XferExact(1, 10, 0, us) // must not panic
}

func TestMixedExactAndBoundedTransfers(t *testing.T) {
	c := &fakeClock{}
	m := newTestMonitor(t, c, 50*us, 64)
	c.at(0)
	m.CallEnter()
	m.XferBegin(1, 1000)
	c.at(5 * us)
	m.CallExit()
	c.at(100 * us)
	m.CallEnter()
	m.XferEnd(1, 0)
	m.XferExact(2, 1000, 20*us, 80*us) // overlaps user [5,100] on [20,80): 60µs
	c.at(105 * us)
	m.CallExit()
	tot := m.Finalize().Total()
	if tot.Count != 2 || tot.Exact != 1 || tot.BothStamps != 1 {
		t.Fatalf("case mix wrong: %+v", tot)
	}
	// Bounded transfer: xt=50, comp=95, noncomp=5 -> min 45, max 50.
	// Exact transfer: 60 exactly.
	if tot.MinOverlapped != 105*us || tot.MaxOverlapped != 110*us {
		t.Errorf("mixed totals %v/%v, want 105µs/110µs", tot.MinOverlapped, tot.MaxOverlapped)
	}
}
