package overlap

import "time"

// openXfer is the compact record kept for a transfer whose XFER_BEGIN
// has been processed but whose XFER_END has not. Only cumulative-time
// snapshots are retained, so open transfers survive queue drains
// without tracing.
type openXfer struct {
	size           int64
	cumUserAtBegin time.Duration
	cumLibAtBegin  time.Duration
	callSeq        uint64 // outermost-call sequence number at begin
	region         int32
}

// procState is the data processing module: it replays queued events in
// order and folds each completed transfer into the running measures
// using the paper's three-case bounds algorithm (Sec. 2.2).
type procState struct {
	m *Monitor

	lastStamp time.Duration
	inLib     bool
	callSeq   uint64
	curRegion int32
	lastExit  time.Duration

	// Recent closed user-computation intervals, for precise
	// (hardware-stamped) transfers; horizon is the end of the last
	// dropped interval.
	userIvals []userInterval
	horizon   time.Duration

	cumUser time.Duration // total user computation time so far
	cumLib  time.Duration // total communication call time so far

	open    map[uint64]openXfer
	regions []*regionAcc
	cuts    []epochMark
}

// epochMark is the cumulative state snapshot taken at one EpochCut;
// consecutive marks delimit the per-epoch deltas reported as
// EpochReports.
type epochMark struct {
	stamp     time.Duration
	cumUser   time.Duration
	cumLib    time.Duration
	total     Measures
	truncated int
}

// regionAcc accumulates measures for one monitored region.
type regionAcc struct {
	userTime time.Duration
	libTime  time.Duration
	total    Measures
	bins     []Measures
}

func (st *procState) init(m *Monitor) {
	st.m = m
	st.open = make(map[uint64]openXfer)
	st.regions = []*regionAcc{st.newRegionAcc()}
}

func (st *procState) newRegionAcc() *regionAcc {
	return &regionAcc{bins: make([]Measures, len(st.m.cfg.BinBounds)+1)}
}

// region returns the accumulator for region index idx, growing the
// table as new regions appear in the event stream.
func (st *procState) region(idx int32) *regionAcc {
	for int32(len(st.regions)) <= idx {
		st.regions = append(st.regions, st.newRegionAcc())
	}
	return st.regions[idx]
}

// binFor maps a message size to its bin index.
func (st *procState) binFor(size int64) int {
	for i, b := range st.m.cfg.BinBounds {
		if size <= int64(b) {
			return i
		}
	}
	return len(st.m.cfg.BinBounds)
}

// advance accounts the wall segment ending at stamp to user or library
// time according to the current mode.
func (st *procState) advance(stamp time.Duration) {
	span := stamp - st.lastStamp
	if span < 0 {
		panic("overlap: non-monotonic event stamps")
	}
	if st.inLib {
		st.cumLib += span
		st.region(st.curRegion).libTime += span
	} else {
		st.cumUser += span
		st.region(st.curRegion).userTime += span
	}
	st.lastStamp = stamp
}

// apply processes one event in stream order.
func (st *procState) apply(e *Event) {
	st.advance(e.Stamp)
	switch e.Kind {
	case KindCallEnter:
		st.inLib = true
		st.callSeq++
		st.recordUserInterval(st.lastExit, e.Stamp)
	case KindCallExit:
		st.inLib = false
		st.lastExit = e.Stamp
	case KindXferExact:
		st.applyExact(e)
	case KindRegionPush, KindRegionPop:
		st.curRegion = e.Region
	case KindXferBegin:
		st.open[e.ID] = openXfer{
			size:           e.Size,
			cumUserAtBegin: st.cumUser,
			cumLibAtBegin:  st.cumLib,
			callSeq:        st.callSeq,
			region:         st.curRegion,
		}
	case KindXferEnd:
		st.completeXfer(e)
	case KindEpochCut:
		st.cut(e.Stamp)
	}
}

// completeXfer applies the three-case bounds computation for the
// transfer ending at event e.
func (st *procState) completeXfer(e *Event) {
	rec, seen := st.open[e.ID]
	if !seen {
		// Case 3: only XFER_END was time-stamped (e.g. the receiver of
		// an eager transfer, to whom initiation is invisible). Nothing
		// conclusive can be said: minimum zero, maximum the full
		// transfer time.
		st.account(st.curRegion, e.Size, 0, st.xferTime(e.Size), caseSingleStamp)
		return
	}
	delete(st.open, e.ID)
	xt := st.xferTime(rec.size)
	if rec.callSeq == st.callSeq && st.inLib {
		// Case 1: begin and end fell inside the same communication
		// call; the application could not compute meanwhile.
		st.account(rec.region, rec.size, 0, 0, caseSameCall)
		return
	}
	// Case 2: both stamped with interleaved user/library periods in
	// between.
	computation := st.cumUser - rec.cumUserAtBegin
	noncomputation := st.cumLib - rec.cumLibAtBegin
	maxOv := xt
	if computation < xt {
		maxOv = computation
	}
	minOv := xt - noncomputation
	if minOv < 0 {
		minOv = 0
	}
	// The library's completion events can fire before the physical
	// transfer ends (a sender's CQE precedes remote delivery), which
	// deflates noncomputation_time and can push the lower bound above
	// the upper one. Clamp so the bracket stays well-formed.
	if minOv > maxOv {
		minOv = maxOv
	}
	st.account(rec.region, rec.size, minOv, maxOv, caseBothStamps)
}

func (st *procState) xferTime(size int64) time.Duration {
	return st.m.cfg.Table.XferTime(int(size))
}

// account folds one transfer's bounds into its region and size bin.
func (st *procState) account(region int32, size int64, minOv, maxOv time.Duration, c caseKind) {
	xt := st.xferTime(size)
	r := st.region(region)
	bin := st.binFor(size)
	for _, m := range []*Measures{&r.total, &r.bins[bin]} {
		m.Count++
		m.DataTransferTime += xt
		m.MinOverlapped += minOv
		m.MaxOverlapped += maxOv
		switch c {
		case caseSameCall:
			m.SameCall++
		case caseBothStamps:
			m.BothStamps++
		case caseSingleStamp:
			m.SingleStamp++
		}
	}
}

type caseKind int

const (
	caseSameCall caseKind = iota
	caseBothStamps
	caseSingleStamp
)

// sumTotals aggregates every region's running total.
func (st *procState) sumTotals() Measures {
	var t Measures
	for _, acc := range st.regions {
		t.Add(acc.total)
	}
	return t
}

// cut closes the current epoch at stamp: the trailing wall segment is
// accounted, transfers still open are resolved as truncated
// single-stamp observations (their completion belongs to a failed
// epoch and will never arrive), and the cumulative state is
// snapshotted so finish can emit per-epoch deltas.
func (st *procState) cut(stamp time.Duration) {
	st.advance(stamp)
	trunc := 0
	for id, rec := range st.open {
		st.account(rec.region, rec.size, 0, st.xferTime(rec.size), caseSingleStamp)
		delete(st.open, id)
		trunc++
	}
	st.cuts = append(st.cuts, epochMark{
		stamp:     stamp,
		cumUser:   st.cumUser,
		cumLib:    st.cumLib,
		total:     st.sumTotals(),
		truncated: trunc,
	})
}

// epochReports converts the cut snapshots plus the final state into
// per-epoch deltas. Empty when no cut ever happened.
func (st *procState) epochReports(stamp time.Duration) []EpochReport {
	if len(st.cuts) == 0 {
		return nil
	}
	final := epochMark{stamp: stamp, cumUser: st.cumUser, cumLib: st.cumLib, total: st.sumTotals()}
	marks := append(append([]epochMark(nil), st.cuts...), final)
	var out []EpochReport
	prev := epochMark{}
	for i, mk := range marks {
		ep := EpochReport{
			Epoch:           i,
			Start:           prev.stamp,
			End:             mk.stamp,
			UserComputeTime: mk.cumUser - prev.cumUser,
			CommCallTime:    mk.cumLib - prev.cumLib,
			Truncated:       mk.truncated,
		}
		ep.Total = mk.total
		ep.Total.Sub(prev.total)
		out = append(out, ep)
		prev = mk
	}
	return out
}

// finish closes the stream at the given stamp: accounts the trailing
// segment, resolves still-open transfers as single-stamped (case 3),
// and builds the report.
func (st *procState) finish(stamp time.Duration) *Report {
	st.advance(stamp)
	for id, rec := range st.open {
		st.account(rec.region, rec.size, 0, st.xferTime(rec.size), caseSingleStamp)
		delete(st.open, id)
	}
	rep := &Report{
		Duration:  stamp,
		BinBounds: append([]int(nil), st.m.cfg.BinBounds...),
		Epochs:    st.epochReports(stamp),
	}
	if d := st.m.cfg.ClockDomain; d != "" && d != "virtual" {
		rep.ClockDomain = d
	}
	for i, acc := range st.regions {
		rep.Regions = append(rep.Regions, RegionReport{
			Name:            st.m.regionNames[i],
			UserComputeTime: acc.userTime,
			CommCallTime:    acc.libTime,
			Total:           acc.total,
			Bins:            append([]Measures(nil), acc.bins...),
		})
	}
	return rep
}
