package overlap

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"ovlp/internal/calib"
)

// Property: the circular queue delivers every pushed event exactly
// once, in order, across arbitrary interleavings of pushes and drains.
func TestQuickRingOrder(t *testing.T) {
	f := func(seed int64, cap8 uint8) bool {
		capacity := int(cap8)%30 + 2
		rng := rand.New(rand.NewSource(seed))
		r := newRing(capacity)
		var pushed, drained []uint64
		next := uint64(0)
		for op := 0; op < 200; op++ {
			if r.n < capacity && rng.Intn(3) > 0 {
				next++
				pushed = append(pushed, next)
				if r.push(Event{ID: next}) {
					r.drain(func(e *Event) { drained = append(drained, e.ID) })
				}
			} else {
				r.drain(func(e *Event) { drained = append(drained, e.ID) })
			}
		}
		r.drain(func(e *Event) { drained = append(drained, e.ID) })
		if len(drained) != len(pushed) {
			return false
		}
		for i := range pushed {
			if pushed[i] != drained[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: for any well-formed random event stream, the derived
// measures satisfy the structural invariants of the bounds algorithm:
// 0 <= min <= max <= data transfer time (per region and per bin), the
// case counts sum to the transfer count, and user + library time add
// up to the run duration.
func TestQuickBoundsInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := &fakeClock{}
		tbl, err := newRandomTable(rng)
		if err != nil {
			return false
		}
		m := NewMonitor(Config{Clock: c, Table: tbl, QueueSize: rng.Intn(30) + 2})

		now := time.Duration(0)
		advance := func() { now += time.Duration(rng.Intn(2000)) * time.Microsecond; c.at(now) }

		open := []uint64{}
		nextID := uint64(0)
		regions := 0
		for step := 0; step < rng.Intn(300); step++ {
			advance()
			m.CallEnter()
			for k := 0; k < rng.Intn(4); k++ {
				advance()
				switch rng.Intn(3) {
				case 0: // begin
					nextID++
					open = append(open, nextID)
					m.XferBegin(nextID, rng.Intn(1<<21)+1)
				case 1: // end an open transfer
					if len(open) > 0 {
						i := rng.Intn(len(open))
						m.XferEnd(open[i], rng.Intn(1<<21)+1)
						open = append(open[:i], open[i+1:]...)
					}
				case 2: // end-only observation
					nextID++
					m.XferEnd(nextID, rng.Intn(1<<21)+1)
				}
			}
			advance()
			m.CallExit()
			if rng.Intn(5) == 0 {
				if regions > 0 && rng.Intn(2) == 0 {
					m.PopRegion()
					regions--
				} else {
					m.PushRegion(string(rune('a' + rng.Intn(4))))
					regions++
				}
			}
		}
		for regions > 0 {
			m.PopRegion()
			regions--
		}
		advance()
		rep := m.Finalize()

		var user, lib time.Duration
		for _, reg := range rep.Regions {
			user += reg.UserComputeTime
			lib += reg.CommCallTime
			all := append([]Measures{reg.Total}, reg.Bins...)
			for _, ms := range all {
				if ms.MinOverlapped < 0 || ms.MinOverlapped > ms.MaxOverlapped {
					return false
				}
				if ms.MaxOverlapped > ms.DataTransferTime {
					return false
				}
			}
			if reg.Total.SameCall+reg.Total.BothStamps+reg.Total.SingleStamp != reg.Total.Count {
				return false
			}
			var binCount int
			for _, b := range reg.Bins {
				binCount += b.Count
			}
			if binCount != reg.Total.Count {
				return false
			}
		}
		return user+lib == rep.Duration
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func newRandomTable(rng *rand.Rand) (*calib.Table, error) {
	points := []calib.Point{{Size: 1, Time: time.Duration(rng.Intn(5000)+1) * time.Nanosecond}}
	size := 1
	last := points[0].Time
	for size < 4<<20 {
		size *= 2 + rng.Intn(3)
		last += time.Duration(rng.Intn(100000)) * time.Nanosecond
		points = append(points, calib.Point{Size: size, Time: last})
	}
	return calib.NewTable(points)
}
