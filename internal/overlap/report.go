package overlap

import (
	"fmt"
	"io"
	"time"
)

// Measures are the framework's derived quantities for a set of
// transfers, per the paper's Sec. 2.2: total (estimated) data transfer
// time, and lower/upper bounds on how much of it was overlapped with
// user computation.
type Measures struct {
	// Count is the number of transfers observed.
	Count int
	// DataTransferTime is the summed a-priori transfer time of all
	// observed transfers.
	DataTransferTime time.Duration
	// MinOverlapped and MaxOverlapped are the summed lower and upper
	// bounds on overlapped transfer time.
	MinOverlapped time.Duration
	MaxOverlapped time.Duration
	// SameCall, BothStamps and SingleStamp count transfers that fell
	// into each case of the bounds algorithm; Exact counts transfers
	// measured precisely from hardware time-stamps (diagnostics).
	SameCall    int
	BothStamps  int
	SingleStamp int
	Exact       int
}

// Add accumulates o into m.
func (m *Measures) Add(o Measures) {
	m.Count += o.Count
	m.DataTransferTime += o.DataTransferTime
	m.MinOverlapped += o.MinOverlapped
	m.MaxOverlapped += o.MaxOverlapped
	m.SameCall += o.SameCall
	m.BothStamps += o.BothStamps
	m.SingleStamp += o.SingleStamp
	m.Exact += o.Exact
}

// Sub removes o from m (the inverse of Add), used to turn cumulative
// snapshots into per-epoch deltas.
func (m *Measures) Sub(o Measures) {
	m.Count -= o.Count
	m.DataTransferTime -= o.DataTransferTime
	m.MinOverlapped -= o.MinOverlapped
	m.MaxOverlapped -= o.MaxOverlapped
	m.SameCall -= o.SameCall
	m.BothStamps -= o.BothStamps
	m.SingleStamp -= o.SingleStamp
	m.Exact -= o.Exact
}

// MinPercent returns the lower overlap bound as a percentage of data
// transfer time (0 when nothing was transferred).
func (m Measures) MinPercent() float64 { return pct(m.MinOverlapped, m.DataTransferTime) }

// MaxPercent returns the upper overlap bound as a percentage of data
// transfer time.
func (m Measures) MaxPercent() float64 { return pct(m.MaxOverlapped, m.DataTransferTime) }

// NonOverlapped returns the minimum duration of communication that was
// not usefully overlapped with computation — the paper's primary
// indicator of performance loss (data transfer time minus the maximum
// overlapped transfer time).
func (m Measures) NonOverlapped() time.Duration {
	return m.DataTransferTime - m.MaxOverlapped
}

func pct(part, whole time.Duration) float64 {
	if whole <= 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// RegionReport holds one monitored region's measures, with a
// per-message-size-bin breakdown.
type RegionReport struct {
	Name            string
	UserComputeTime time.Duration
	CommCallTime    time.Duration
	Total           Measures
	// Bins[i] covers sizes in (BinBounds[i-1], BinBounds[i]]; the last
	// bin is open-ended.
	Bins []Measures
}

// Report is the per-process output of the framework, produced by
// Monitor.Finalize — the in-memory form of the output file the paper's
// implementation writes per process at application termination.
type Report struct {
	Rank      int // set by the harness
	Duration  time.Duration
	BinBounds []int
	Regions   []RegionReport // index 0 is the root (unnamed) region
	// Epochs breaks the run into recovery epochs delimited by
	// Monitor.EpochCut calls (fault-tolerant runs); empty when no cut
	// ever happened. Epoch totals sum to the whole-run measures. The
	// field is omitted from JSON when empty so failure-free reports are
	// byte-identical to prior releases.
	Epochs []EpochReport `json:",omitempty"`
	// ClockDomain names the clock the report's stamps were read from
	// ("real", "fake"); empty — omitted from JSON, so virtual reports
	// are byte-identical to prior releases — means virtual.
	ClockDomain string `json:",omitempty"`
}

// EpochReport is one recovery epoch's slice of the run: the interval
// between consecutive EpochCut calls (epoch 0 starts at time zero; the
// last epoch ends at Finalize). Transfers still open at a cut are
// resolved as truncated single-stamp observations inside the epoch
// that started them, so summing epoch measures reproduces the
// whole-run totals exactly.
type EpochReport struct {
	Epoch           int
	Start, End      time.Duration
	UserComputeTime time.Duration
	CommCallTime    time.Duration
	Total           Measures
	// Truncated counts transfers forcibly closed at this epoch's
	// terminating cut (in-flight when the failure was agreed).
	Truncated int
}

// Region returns the report for the named region, or nil if the
// region never appeared.
func (r *Report) Region(name string) *RegionReport {
	for i := range r.Regions {
		if r.Regions[i].Name == name {
			return &r.Regions[i]
		}
	}
	return nil
}

// Total aggregates all regions into whole-program measures.
func (r *Report) Total() Measures {
	var t Measures
	for i := range r.Regions {
		t.Add(r.Regions[i].Total)
	}
	return t
}

// UserComputeTime returns the whole-program user computation time.
func (r *Report) UserComputeTime() time.Duration {
	var t time.Duration
	for i := range r.Regions {
		t += r.Regions[i].UserComputeTime
	}
	return t
}

// CommCallTime returns the whole-program aggregate time spent
// executing communication calls.
func (r *Report) CommCallTime() time.Duration {
	var t time.Duration
	for i := range r.Regions {
		t += r.Regions[i].CommCallTime
	}
	return t
}

// BinLabel renders the half-open size interval of bin i for the given
// bounds — the canonical bin naming shared by reports, benchmark
// tables and metrics.
func BinLabel(bounds []int, i int) string {
	switch {
	case i == 0:
		return fmt.Sprintf("<=%s", sizeLabel(bounds[0]))
	case i < len(bounds):
		return fmt.Sprintf("%s-%s", sizeLabel(bounds[i-1]), sizeLabel(bounds[i]))
	default:
		return fmt.Sprintf(">%s", sizeLabel(bounds[len(bounds)-1]))
	}
}

func sizeLabel(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// WriteTo writes the human-readable per-process report — the analogue
// of the output file the instrumented libraries produce at
// MPI_Finalize.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	fmt.Fprintf(cw, "overlap report: rank %d, run time %v\n", r.Rank, r.Duration)
	tot := r.Total()
	fmt.Fprintf(cw, "  user computation time:   %v\n", r.UserComputeTime())
	fmt.Fprintf(cw, "  communication call time: %v\n", r.CommCallTime())
	fmt.Fprintf(cw, "  data transfer time:      %v over %d transfers\n", tot.DataTransferTime, tot.Count)
	fmt.Fprintf(cw, "  overlapped transfer:     min %v (%.1f%%)  max %v (%.1f%%)\n",
		tot.MinOverlapped, tot.MinPercent(), tot.MaxOverlapped, tot.MaxPercent())
	fmt.Fprintf(cw, "  non-overlapped (min):    %v\n", tot.NonOverlapped())
	for _, reg := range r.Regions {
		name := reg.Name
		if name == "" {
			name = "(root)"
		}
		if reg.Total.Count == 0 && reg.UserComputeTime == 0 && reg.CommCallTime == 0 {
			continue
		}
		fmt.Fprintf(cw, "  region %-18s xfers %6d  data %12v  min %6.1f%%  max %6.1f%%\n",
			name, reg.Total.Count, reg.Total.DataTransferTime,
			reg.Total.MinPercent(), reg.Total.MaxPercent())
		for i, b := range reg.Bins {
			if b.Count == 0 {
				continue
			}
			fmt.Fprintf(cw, "    %-12s xfers %6d  data %12v  min %6.1f%%  max %6.1f%%\n",
				BinLabel(r.BinBounds, i), b.Count, b.DataTransferTime,
				b.MinPercent(), b.MaxPercent())
		}
	}
	return cw.n, cw.err
}

type countWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}

// Aggregate sums measures across per-rank reports: whole-job totals
// for each region present in any report, with regions unioned by name
// and nil reports skipped.
//
// Merge rule for heterogeneous inputs: the aggregate adopts the first
// non-nil report's bin bounds. A report whose bounds differ still
// contributes its region and whole-job totals — those are
// bound-independent — but none of its per-bin detail, because its
// bins measure different size intervals and summing them cell-wise
// would mislabel every row.
func Aggregate(reports []*Report) *Report {
	agg := &Report{Rank: -1}
	haveBounds := false
	index := map[string]int{}
	for _, rep := range reports {
		if rep == nil {
			continue
		}
		if !haveBounds {
			agg.BinBounds = append([]int(nil), rep.BinBounds...)
			haveBounds = true
		}
		if rep.Duration > agg.Duration {
			agg.Duration = rep.Duration
		}
		for i := range rep.Epochs {
			ep := &rep.Epochs[i]
			for len(agg.Epochs) <= i {
				agg.Epochs = append(agg.Epochs, EpochReport{Epoch: len(agg.Epochs), Start: -1})
			}
			dst := &agg.Epochs[i]
			// Ranks cut at slightly different instants; the job-level
			// epoch spans the earliest start to the latest end.
			if dst.Start < 0 || ep.Start < dst.Start {
				dst.Start = ep.Start
			}
			if ep.End > dst.End {
				dst.End = ep.End
			}
			dst.UserComputeTime += ep.UserComputeTime
			dst.CommCallTime += ep.CommCallTime
			dst.Total.Add(ep.Total)
			dst.Truncated += ep.Truncated
		}
		binsMatch := equalBounds(rep.BinBounds, agg.BinBounds)
		for _, reg := range rep.Regions {
			i, ok := index[reg.Name]
			if !ok {
				i = len(agg.Regions)
				index[reg.Name] = i
				agg.Regions = append(agg.Regions, RegionReport{
					Name: reg.Name,
					Bins: make([]Measures, len(agg.BinBounds)+1),
				})
			}
			dst := &agg.Regions[i]
			dst.UserComputeTime += reg.UserComputeTime
			dst.CommCallTime += reg.CommCallTime
			dst.Total.Add(reg.Total)
			if !binsMatch {
				continue
			}
			for b := range reg.Bins {
				if b < len(dst.Bins) {
					dst.Bins[b].Add(reg.Bins[b])
				}
			}
		}
	}
	return agg
}

func equalBounds(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
