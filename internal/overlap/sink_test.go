package overlap

import (
	"testing"
	"time"
)

// collectSink records every event it is handed, asserting the Sink
// interface contract.
type collectSink struct{ events []Event }

func (s *collectSink) OverlapEvent(e Event) { s.events = append(s.events, e) }

func TestSinkReceivesEveryEvent(t *testing.T) {
	sink := &collectSink{}
	var legacy []Event
	c := &fakeClock{}
	m := NewMonitor(Config{
		Clock:     c,
		Table:     flatTable(t, 10*us),
		QueueSize: 16,
		Sink:      sink,
		TraceSink: CollectTrace(&legacy), // both paths may be set
	})
	c.at(0)
	m.CallEnter()
	m.XferBegin(1, 1024)
	c.at(5 * us)
	m.XferEnd(1, 0)
	m.CallExit()
	m.Finalize()

	if len(sink.events) != 4 {
		t.Fatalf("sink got %d events, want 4", len(sink.events))
	}
	want := []Kind{KindCallEnter, KindXferBegin, KindXferEnd, KindCallExit}
	for i, e := range sink.events {
		if e.Kind != want[i] {
			t.Fatalf("event %d kind %v, want %v", i, e.Kind, want[i])
		}
	}
	// The legacy TraceSink sees the identical stream.
	if len(legacy) != len(sink.events) {
		t.Fatalf("legacy sink got %d events, sink got %d", len(legacy), len(sink.events))
	}
	for i := range legacy {
		if legacy[i] != sink.events[i] {
			t.Fatalf("event %d differs between sinks: %+v vs %+v", i, legacy[i], sink.events[i])
		}
	}
}

func TestOnDrainBatches(t *testing.T) {
	var drains []int
	c := &fakeClock{}
	m := NewMonitor(Config{
		Clock:     c,
		Table:     flatTable(t, 10*us),
		QueueSize: 4,
		OnDrain:   func(n int) { drains = append(drains, n) },
	})
	// Each exchange logs 4 events; the queue drains when it fills.
	for i := 0; i < 3; i++ {
		c.at(time.Duration(i) * 20 * us)
		m.CallEnter()
		m.XferBegin(uint64(i+1), 64)
		c.at(time.Duration(i)*20*us + 5*us)
		m.XferEnd(uint64(i+1), 0)
		m.CallExit()
	}
	m.Finalize()

	total := 0
	for _, n := range drains {
		if n <= 0 {
			t.Fatalf("OnDrain called with non-positive batch %d", n)
		}
		total += n
	}
	if total != 12 {
		t.Errorf("drained %d events in total, want 12 (batches %v)", total, drains)
	}
}
