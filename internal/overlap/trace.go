package overlap

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Trace formatting: a human-readable rendering of an event stream
// captured through Config.TraceSink, for debugging instrumented
// libraries and inspecting how the bounds algorithm will see a run.
// Production tracing goes through Config.Sink into the trace
// package's per-rank rings and Chrome export; this text rendering
// remains the quick single-stream view.

// FormatTrace writes one line per event, with a gutter marking
// library (|) versus computation (.) periods and transfer intervals.
func FormatTrace(w io.Writer, events []Event) error {
	inLib := false
	var last time.Duration
	for i, e := range events {
		gap := e.Stamp - last
		mode := "."
		if inLib {
			mode = "|"
		}
		var desc string
		switch e.Kind {
		case KindCallEnter:
			inLib = true
			desc = "CALL_ENTER"
		case KindCallExit:
			inLib = false
			desc = "CALL_EXIT"
		case KindXferBegin:
			desc = fmt.Sprintf("XFER_BEGIN  id=%d size=%s", e.ID, formatSize(e.Size))
		case KindXferEnd:
			desc = fmt.Sprintf("XFER_END    id=%d", e.ID)
		case KindXferExact:
			desc = fmt.Sprintf("XFER_EXACT  id=%d size=%s interval=[%v, %v]",
				e.ID, formatSize(e.Size), e.Start, e.End)
		case KindRegionPush:
			desc = fmt.Sprintf("REGION_PUSH -> %d", e.Region)
		case KindRegionPop:
			desc = fmt.Sprintf("REGION_POP  -> %d", e.Region)
		default:
			desc = "?"
		}
		if _, err := fmt.Fprintf(w, "%6d  %12v  %s +%-12v %s\n",
			i, e.Stamp, mode, gap, desc); err != nil {
			return err
		}
		last = e.Stamp
	}
	return nil
}

// TraceString renders events via FormatTrace into a string.
func TraceString(events []Event) string {
	var b strings.Builder
	if err := FormatTrace(&b, events); err != nil {
		panic(err) // strings.Builder never errors
	}
	return b.String()
}

func formatSize(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// CollectTrace returns a TraceSink that appends events to the given
// slice — the common test/debug wiring in one place.
func CollectTrace(dst *[]Event) func(Event) {
	return func(e Event) { *dst = append(*dst, e) }
}
