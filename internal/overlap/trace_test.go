package overlap

import (
	"strings"
	"testing"
	"time"
)

func TestFormatTrace(t *testing.T) {
	var events []Event
	c := &fakeClock{}
	m := NewMonitor(Config{
		Clock:     c,
		Table:     flatTable(t, 10*us),
		QueueSize: 16,
		TraceSink: CollectTrace(&events),
	})
	c.at(0)
	m.PushRegion("x")
	m.CallEnter()
	m.XferBegin(1, 2<<20)
	c.at(5 * us)
	m.CallExit()
	c.at(20 * us)
	m.CallEnter()
	m.XferEnd(1, 0)
	m.XferExact(2, 512, 3*us, 9*us)
	c.at(25 * us)
	m.CallExit()
	m.PopRegion()
	m.Finalize()

	out := TraceString(events)
	for _, want := range []string{
		"CALL_ENTER", "CALL_EXIT", "XFER_BEGIN", "XFER_END", "XFER_EXACT",
		"REGION_PUSH", "REGION_POP", "2.0MiB", "512B", "id=1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	// Eight events, eight lines.
	if got := strings.Count(out, "\n"); got != len(events) {
		t.Errorf("%d lines for %d events", got, len(events))
	}
}

func TestFormatSizeUnits(t *testing.T) {
	cases := map[int64]string{
		100:     "100B",
		2048:    "2.0KiB",
		3 << 20: "3.0MiB",
	}
	for n, want := range cases {
		if got := formatSize(n); got != want {
			t.Errorf("formatSize(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestCollectTraceAppends(t *testing.T) {
	var events []Event
	sink := CollectTrace(&events)
	sink(Event{Kind: KindCallEnter, Stamp: time.Microsecond})
	sink(Event{Kind: KindCallExit, Stamp: 2 * time.Microsecond})
	if len(events) != 2 || events[0].Kind != KindCallEnter {
		t.Fatalf("collected %+v", events)
	}
}
