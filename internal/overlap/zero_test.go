package overlap_test

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/mpi"
	"ovlp/internal/overlap"
	"ovlp/internal/progress"
)

// A single-process Ibarrier is the degenerate collective: the schedule
// is empty, so the monitor observes library calls but zero transfers.
// The report machinery — percentages, text rendering, JSON round-trip
// and cross-rank aggregation — must all treat that window as zero, not
// NaN, and must survive serialization unchanged.
func TestZeroTransferReport(t *testing.T) {
	run := func(procs int, body func(r *mpi.Rank)) []*overlap.Report {
		res := cluster.Run(cluster.Config{
			Procs: procs,
			MPI: mpi.Config{
				Progress:   progress.Config{Mode: progress.Thread},
				Instrument: &mpi.InstrumentConfig{},
			},
		}, body)
		return res.Reports
	}

	rep := run(1, func(r *mpi.Rank) {
		cr := r.Ibarrier()
		r.Compute(100 * time.Microsecond)
		r.WaitColl(cr)
	})[0]

	tot := rep.Total()
	if tot.Count != 0 || tot.DataTransferTime != 0 || tot.MinOverlapped != 0 || tot.MaxOverlapped != 0 {
		t.Fatalf("1-proc Ibarrier recorded transfers: %+v", tot)
	}
	if tot.MinPercent() != 0 || tot.MaxPercent() != 0 {
		t.Fatalf("zero-transfer percentages must be 0, got %v/%v", tot.MinPercent(), tot.MaxPercent())
	}
	if rep.Duration <= 0 {
		t.Fatalf("report duration %v", rep.Duration)
	}
	if rep.CommCallTime() < 0 || rep.UserComputeTime() <= 0 {
		t.Fatalf("time accounting broken: call %v compute %v", rep.CommCallTime(), rep.UserComputeTime())
	}
	if _, err := rep.WriteTo(&bytes.Buffer{}); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}

	// JSON round-trip of the empty-window report.
	var b bytes.Buffer
	if err := rep.EncodeJSON(&b); err != nil {
		t.Fatalf("EncodeJSON: %v", err)
	}
	back, err := overlap.DecodeJSON(&b)
	if err != nil {
		t.Fatalf("DecodeJSON: %v", err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Fatalf("round-trip changed the report:\n got %+v\nwant %+v", back, rep)
	}

	// Aggregating a zero-transfer report with a busy one must add the
	// empty rank's time but none of its (nonexistent) transfers, and
	// skip nils without counting them.
	busy := run(2, func(r *mpi.Rank) {
		cr := r.Iallreduce(64 << 10)
		r.Compute(200 * time.Microsecond)
		r.WaitColl(cr)
	})
	agg := overlap.Aggregate([]*overlap.Report{rep, nil, busy[0], busy[1]})
	want := busy[0].Total()
	want.Add(busy[1].Total())
	if got := agg.Total(); got != want {
		t.Fatalf("aggregate totals %+v, want %+v", got, want)
	}
	wantCompute := rep.UserComputeTime() + busy[0].UserComputeTime() + busy[1].UserComputeTime()
	if got := agg.UserComputeTime(); got != wantCompute {
		t.Fatalf("aggregate compute %v, want %v", got, wantCompute)
	}

	// And the aggregate itself round-trips.
	b.Reset()
	if err := agg.EncodeJSON(&b); err != nil {
		t.Fatalf("EncodeJSON(agg): %v", err)
	}
	aggBack, err := overlap.DecodeJSON(&b)
	if err != nil {
		t.Fatalf("DecodeJSON(agg): %v", err)
	}
	if !reflect.DeepEqual(agg, aggBack) {
		t.Fatalf("aggregate round-trip changed the report")
	}
}
