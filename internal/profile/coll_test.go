package profile

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/coll"
	"ovlp/internal/mpi"
	"ovlp/internal/progress"
)

// Transfers issued by a nonblocking-collective schedule must be
// attributed to the owning schedule's site label, with progress
// starvation blamed there — not to whichever call (or "(outside)",
// for progress-thread polls) the protocol happened to run under.

func collProfileConfig(mode progress.Mode) cluster.Config {
	return cluster.Config{
		Procs: 4,
		MPI: mpi.Config{
			CollAlgo:   coll.Ring,
			Progress:   progress.Config{Mode: mode},
			Instrument: &mpi.InstrumentConfig{},
		},
	}
}

// collProfileBody under-polls an eager-sized ring Iallreduce, so the
// schedule starves between TestColl calls and the replay has progress
// gaps to attribute.
func collProfileBody(r *mpi.Rank) {
	for i := 0; i < 5; i++ {
		cr := r.Iallreduce(8 << 10)
		for k := 0; k < 4; k++ {
			r.Compute(50 * time.Microsecond)
			r.TestColl(cr)
		}
		r.WaitColl(cr)
	}
}

func TestCollectiveScheduleAttribution(t *testing.T) {
	for _, mode := range []progress.Mode{progress.Manual, progress.Thread} {
		t.Run(mode.String(), func(t *testing.T) {
			p, res, _ := runProfiled(t, collProfileConfig(mode), collProfileBody)
			checkConservation(t, p, res.Reports, res.Duration)
			var sched *Site
			for i := range p.Sites {
				s := &p.Sites[i]
				switch s.Op {
				case "Iallreduce[ring]":
					sched = s
				case "(outside)", "WaitColl", "TestColl", "Iallreduce":
					// Every transfer in this workload belongs to the
					// schedule; none may leak to the raw call sites.
					if s.Count > 0 {
						t.Errorf("%d schedule transfers attributed to site %q", s.Count, s.Op)
					}
				}
			}
			if sched == nil {
				t.Fatal("no site labeled Iallreduce[ring]")
			}
			if sched.Count != p.Totals.Transfers {
				t.Errorf("schedule site owns %d of %d transfers", sched.Count, p.Totals.Transfers)
			}
		})
	}
	// Starvation blame must appear on the under-polled manual run.
	p, _, _ := runProfiled(t, collProfileConfig(progress.Manual), collProfileBody)
	if p.Totals.Blame.Progress == 0 {
		t.Error("under-polled manual run attributed no progress-starvation time")
	}
}

// TestCollectiveProfileGolden locks the rendered profile of the
// starved-collective workload. Regenerate with:
//
//	go test ./internal/profile -run CollectiveProfileGolden -update
func TestCollectiveProfileGolden(t *testing.T) {
	p, _, _ := runProfiled(t, collProfileConfig(progress.Manual), collProfileBody)
	var buf bytes.Buffer
	if err := p.WriteText(&buf, 10); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, "Iallreduce[ring]") {
		t.Fatalf("profile text lacks the schedule site:\n%s", got)
	}

	golden := filepath.Join("testdata", "profile_coll.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("profile text output changed; run with -update if intentional.\ngot:\n%s\nwant:\n%s", got, want)
	}
}
