package profile

import (
	"sort"
	"time"
)

// Critical-path extraction: a backward walk from the end of the run
// through the happens-before graph the traces record. On a rank, time
// only advances inside kernel "compute" and "park" spans, so a rank's
// spans tile its lifetime and the walk always has a span to consume.
// The cross-timeline edges are (a) wire arrivals — a park that ends
// exactly when a ground-truth transfer lands was released by that
// delivery, so the walk crosses onto the wire and then onto the
// sending rank — and (b) unpark instants naming the proc that released
// the sleeper. Everything else (control packets, timers) stays on-rank
// as "wait". Each step emits a segment [new cursor, cursor], so the
// segments tile [0, duration] and the path length equals the run's
// virtual wall time by construction.

type rankTimeline struct {
	rank    int
	name    string
	spans   []tlSpan              // compute/park, sorted by start
	unparks map[time.Duration]int // wake stamp -> waker proc id
}

type tlSpan struct {
	start, end time.Duration
	park       bool
	label      string
}

func criticalPath(in *Input, duration time.Duration) CriticalPath {
	lines := make(map[int]*rankTimeline)
	for i := range in.Ranks {
		rs := &in.Ranks[i]
		tl := &rankTimeline{rank: rs.Rank, name: rs.Name, unparks: make(map[time.Duration]int)}
		for _, rec := range rs.Recs {
			if rec.Cat != "kernel" {
				continue
			}
			switch rec.Name {
			case "compute", "park":
				if rec.Dur == 0 {
					continue
				}
				tl.spans = append(tl.spans, tlSpan{
					start: rec.Start.Duration(),
					end:   rec.End().Duration(),
					park:  rec.Name == "park",
					label: rec.Args.Detail,
				})
			case "unpark":
				if rec.Args.Peer >= 0 {
					tl.unparks[rec.Start.Duration()] = rec.Args.Peer
				}
			}
		}
		sort.SliceStable(tl.spans, func(a, b int) bool { return tl.spans[a].start < tl.spans[b].start })
		lines[rs.Rank] = tl
	}

	// Arrival index: (dst, end) -> transfer, preferring the latest
	// start (the most recently departed, hence binding, dependency) and
	// then the largest id for determinism.
	type arrKey struct {
		dst int
		end time.Duration
	}
	arrivals := make(map[arrKey]*WireSpan)
	for i := range in.Wire {
		w := &in.Wire[i]
		k := arrKey{w.Dst, w.End}
		if cur, ok := arrivals[k]; !ok || w.Start > cur.Start ||
			(w.Start == cur.Start && w.ID > cur.ID) {
			arrivals[k] = w
		}
	}

	cp := CriticalPath{}
	if duration <= 0 || len(lines) == 0 {
		return cp
	}

	// Start on the rank that finished last.
	rank, last := -1, time.Duration(-1)
	for id, tl := range lines {
		if n := len(tl.spans); n > 0 {
			if e := tl.spans[n-1].end; e > last || (e == last && id < rank) {
				rank, last = id, e
			}
		}
	}
	if rank < 0 {
		return cp
	}

	var segs []PathSegment
	push := func(s PathSegment) {
		if s.End > s.Start {
			segs = append(segs, s)
		}
	}
	cursor := duration
	hops := 0
	for cursor > 0 {
		tl := lines[rank]
		if tl == nil {
			push(PathSegment{Rank: rank, Kind: "idle", Start: 0, End: cursor})
			cursor = 0
			break
		}
		// Last span starting strictly before the cursor.
		i := sort.Search(len(tl.spans), func(i int) bool { return tl.spans[i].start >= cursor }) - 1
		if i < 0 {
			push(PathSegment{Rank: rank, Kind: "idle", Label: tl.name, Start: 0, End: cursor})
			cursor = 0
			break
		}
		sp := tl.spans[i]
		if sp.end < cursor {
			// The rank was done (or between lifetimes) here: idle filler.
			push(PathSegment{Rank: rank, Kind: "idle", Label: tl.name, Start: sp.end, End: cursor})
			cursor = sp.end
			hops = 0
			continue
		}
		if !sp.park {
			push(PathSegment{Rank: rank, Kind: "compute", Start: sp.start, End: cursor})
			cursor = sp.start
			hops = 0
			continue
		}
		// Parked. If the park ended exactly at the cursor with a wire
		// arrival, the delivery released it: cross onto the wire.
		if cursor == sp.end {
			if w := arrivals[arrKey{rank, cursor}]; w != nil && w.Start < cursor {
				label := w.Phase
				if label == "" {
					label = "wire"
				}
				push(PathSegment{Rank: -1, Kind: "wire", Label: label, Start: w.Start, End: cursor})
				cursor = w.Start
				rank = w.Src
				hops = 0
				continue
			}
			if by, ok := tl.unparks[cursor]; ok && by != rank && hops < len(lines) {
				// A proc released the sleeper at this instant: follow the
				// edge without consuming time (bounded to rule out
				// same-instant wake cycles).
				rank = by
				hops++
				continue
			}
		}
		push(PathSegment{Rank: rank, Kind: "wait", Label: sp.label, Start: sp.start, End: cursor})
		cursor = sp.start
		hops = 0
	}

	// The walk emitted segments newest-first; report them in time order.
	for l, r := 0, len(segs)-1; l < r; l, r = l+1, r-1 {
		segs[l], segs[r] = segs[r], segs[l]
	}
	cp.Segments = segs
	totals := map[string]time.Duration{}
	for _, s := range segs {
		cp.Length += s.End - s.Start
		totals[s.Kind] += s.End - s.Start
	}
	for _, kind := range []string{"compute", "wait", "wire", "idle"} {
		if t, ok := totals[kind]; ok {
			cp.ByKind = append(cp.ByKind, KindTotal{Kind: kind, Time: t})
		}
	}
	return cp
}
