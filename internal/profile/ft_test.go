package profile

import (
	"testing"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/fabric"
	"ovlp/internal/mpi"
	"ovlp/internal/trace"
	"ovlp/internal/vtime"
)

// crashRingWL is a Checkpointable ring exchange used to exercise the
// profiler's epoch-aware replay.
type crashRingWL struct {
	steps   int
	bytes   int
	compute time.Duration
}

func (w *crashRingWL) Name() string             { return "ring" }
func (w *crashRingWL) Steps() int               { return w.steps }
func (w *crashRingWL) StateBytes(procs int) int { return w.bytes }
func (w *crashRingWL) Init(c *mpi.Comm)         { c.Bcast(0, 8) }
func (w *crashRingWL) Step(c *mpi.Comm, step int) {
	r := c.Host()
	if n := c.Size(); n > 1 {
		next, prev := (c.Rank()+1)%n, (c.Rank()+n-1)%n
		c.Sendrecv(next, 5, w.bytes, prev, 5)
	}
	r.Compute(w.compute)
	c.Allreduce(8)
}

func runCrashProfiled(t *testing.T, mode cluster.RecoveryMode) (*Profile, cluster.FTResult) {
	t.Helper()
	tr := trace.New(trace.Options{})
	cfg := cluster.Config{
		Procs: 4,
		MPI:   mpi.Config{Instrument: &mpi.InstrumentConfig{}},
		Crashes: &fabric.CrashPlan{Crashes: []fabric.Crash{
			{Node: 2, At: vtime.Time(800 * time.Microsecond)},
		}},
		Deadline: 10 * time.Second,
		Trace:    tr,
	}
	wl := &crashRingWL{steps: 8, bytes: 512 << 10, compute: 200 * time.Microsecond}
	res, err := cluster.RunFT(cfg, cluster.FTOptions{
		Mode:                mode,
		CheckpointBandwidth: 1 << 30,
	}, wl)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if !res.Completed || res.Epochs == 0 {
		t.Fatalf("recovery did not happen: completed=%v epochs=%d", res.Completed, res.Epochs)
	}
	in := FromTracer(tr, res.Calib, res.Reports)
	p, err := Analyze(in)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return p, res
}

// TestConservationCrashRecovery: the conservation invariant holds
// through a crash and recovery, the profile carries a per-epoch
// breakdown whose rows each conserve (gap == blamed time, summing to
// the whole-run totals), and the recovery blame causes show up.
func TestConservationCrashRecovery(t *testing.T) {
	for _, mode := range []cluster.RecoveryMode{cluster.ShrinkContinue, cluster.CheckpointRestart} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			p, res := runCrashProfiled(t, mode)
			checkConservation(t, p, res.Reports, res.Duration)

			if len(p.Epochs) != res.Epochs+1 {
				t.Fatalf("profile has %d epoch rows, run entered %d epochs", len(p.Epochs), res.Epochs)
			}
			var transfers int
			var data, minOv, maxOv, gap, blame time.Duration
			for _, e := range p.Epochs {
				if e.Blame.Total() != e.Gap {
					t.Errorf("epoch %d: blamed time %v does not partition the gap %v", e.Epoch, e.Blame.Total(), e.Gap)
				}
				if e.Gap != e.MaxOverlapped-e.MinOverlapped {
					t.Errorf("epoch %d: gap %v != max-min %v", e.Epoch, e.Gap, e.MaxOverlapped-e.MinOverlapped)
				}
				transfers += e.Transfers
				data += e.DataTransferTime
				minOv += e.MinOverlapped
				maxOv += e.MaxOverlapped
				gap += e.Gap
				blame += e.Blame.Total()
			}
			if transfers != p.Totals.Transfers || data != p.Totals.DataTransferTime ||
				minOv != p.Totals.MinOverlapped || maxOv != p.Totals.MaxOverlapped || gap != p.Totals.Gap {
				t.Errorf("epoch rows (n=%d data=%v min=%v max=%v gap=%v) do not sum to totals (n=%d data=%v min=%v max=%v gap=%v)",
					transfers, data, minOv, maxOv, gap,
					p.Totals.Transfers, p.Totals.DataTransferTime, p.Totals.MinOverlapped,
					p.Totals.MaxOverlapped, p.Totals.Gap)
			}
			if blame != p.Totals.Blame.Total() {
				t.Errorf("epoch blame sums to %v, totals blame %v", blame, p.Totals.Blame.Total())
			}

			// The crash truncated in-flight transfers: detection blame.
			if p.Totals.Blame.Detect == 0 {
				t.Error("no detect blame despite truncated in-flight transfers")
			}
			if mode == cluster.CheckpointRestart {
				// Rollback restore traffic and replayed steps are blamed to
				// the recovery causes.
				if p.Totals.Blame.Rollback == 0 && p.Totals.Blame.Recompute == 0 {
					t.Error("checkpoint-restart run attributed no rollback/recompute blame")
				}
			}
		})
	}
}

// TestFailureFreeProfileHasNoEpochs: without cuts the profile omits
// the epoch table entirely, keeping pre-FT outputs byte-stable.
func TestFailureFreeProfileHasNoEpochs(t *testing.T) {
	w := workloads()[0]
	p, _, _ := runProfiled(t, w.cfg, w.body)
	if len(p.Epochs) != 0 {
		t.Fatalf("failure-free profile has %d epoch rows", len(p.Epochs))
	}
	b := p.Totals.Blame
	if b.Detect != 0 || b.Agree != 0 || b.Rollback != 0 || b.Recompute != 0 {
		t.Fatalf("failure-free profile has recovery blame: %+v", b)
	}
}
