package profile

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/fabric"
)

// FuzzFromChromeJSON drives the trace-file ingester with arbitrary
// bytes: garbage must come back as an error, never a panic, and any
// stream it accepts must also survive the analyzer (which may still
// reject it with an error of its own). The main seed is a committed
// trace exported from a real faulted run.
//
// Run long with: go test -fuzz=FuzzFromChromeJSON -fuzzminimizetime 5s ./internal/profile
// (cap minimization: shrinking interesting mutants of the 46 KiB seed
// can otherwise eat the default 60s budget per input and make the
// exec counter look stalled).
func FuzzFromChromeJSON(f *testing.F) {
	if seed, err := os.ReadFile(filepath.Join("testdata", "fuzz-seed-trace.json")); err == nil {
		f.Add(seed)
	} else {
		f.Errorf("committed seed trace missing: %v", err)
	}
	for _, s := range []string{
		``,
		`not json`,
		`{}`,
		`{"traceEvents":[]}`,
		`{"traceEvents":[{"ph":"X","pid":1,"tid":0,"ts":0,"dur":5,"name":"compute"}]}`,
		`{"traceEvents":[{"ph":"i","pid":1,"tid":0,"ts":-3,"name":"xfer-post","args":{"detail":"id=1 size=-9"}}]}`,
		`{"traceEvents":[{"ph":"M","name":"process_name","pid":7,"args":{"name":"nic9"}}],"metrics":{"a":1}}`,
	} {
		f.Add([]byte(s))
	}
	f.Add([]byte(hostileRegionID))
	table := cluster.Calibrate(fabric.CostModel{}, nil, 0)
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := FromChromeJSON(bytes.NewReader(data), table)
		if err != nil {
			return
		}
		_, _ = Analyze(in)
	})
}

// hostileRegionID is a reproducer the fuzzer found: a region-push
// instant whose id is absurdly large. Before harvestRegionNames was
// bounded, ingesting it tried to grow the region-name table to four
// billion entries — a multi-gigabyte allocation that stalled the
// process for minutes.
const hostileRegionID = `{"traceEvents":[` +
	`{"ph":"i","pid":1,"tid":1,"ts":0,"cat":"overlap","name":"region-push","args":{"id":4000000000,"detail":"bogus"}},` +
	`{"ph":"i","pid":1,"tid":1,"ts":1,"cat":"overlap","name":"region-push","args":{"id":0,"detail":"main"}}]}`

// TestHostileRegionIDBounded pins the fix: the hostile id is ignored,
// the sane one still names its region, and ingestion finishes
// immediately instead of allocating billions of slots.
func TestHostileRegionIDBounded(t *testing.T) {
	done := make(chan Input, 1)
	go func() {
		in, err := FromChromeJSON(bytes.NewReader([]byte(hostileRegionID)), nil)
		if err != nil {
			t.Errorf("FromChromeJSON: %v", err)
		}
		done <- in
	}()
	select {
	case in := <-done:
		if len(in.RegionNames) != 1 || in.RegionNames[0] != "main" {
			t.Fatalf("RegionNames = %q, want [\"main\"] (hostile id ignored)", in.RegionNames)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ingestion hung on hostile region id")
	}
}
