package profile

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestProfileJSONRoundTrip locks the on-disk profile format: a decoded
// profile re-encodes to the same bytes (field order is declaration
// order, so this also guards against accidental field reshuffles), and
// the decoder rejects documents with fields this version doesn't know.
func TestProfileJSONRoundTrip(t *testing.T) {
	w := workloads()[0]
	p, _, _ := runProfiled(t, w.cfg, w.body)

	var a bytes.Buffer
	if err := p.EncodeJSON(&a); err != nil {
		t.Fatal(err)
	}
	p2, err := DecodeJSON(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatalf("DecodeJSON: %v", err)
	}
	var b bytes.Buffer
	if err := p2.EncodeJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("round trip changed the profile:\nbefore: %s\nafter:  %s", a.String(), b.String())
	}
	if p2.Schema != 1 {
		t.Errorf("schema = %d, want 1", p2.Schema)
	}

	doc := strings.Replace(a.String(), `"schema"`, `"surprise": 1, "schema"`, 1)
	if _, err := DecodeJSON(strings.NewReader(doc)); err == nil {
		t.Error("DecodeJSON accepted a document with an unknown field")
	}
}

// TestProfileTextGolden locks ovlprof's text table on a fixed workload:
// the simulation is deterministic, so the rendered profile is a stable
// artifact. Regenerate with:
//
//	go test ./internal/profile -run Golden -update
func TestProfileTextGolden(t *testing.T) {
	w := workloads()[0]
	p, _, _ := runProfiled(t, w.cfg, w.body)

	var buf bytes.Buffer
	if err := p.WriteText(&buf, 10); err != nil {
		t.Fatal(err)
	}
	got := buf.String()

	golden := filepath.Join("testdata", "profile_eager.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("profile text output changed; run with -update if intentional.\ngot:\n%s\nwant:\n%s", got, want)
	}
}
