package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"ovlp/internal/calib"
	"ovlp/internal/overlap"
	"ovlp/internal/trace"
	"ovlp/internal/vtime"
)

// FromTracer builds an Input from a live tracer after an in-process
// run. table is the run's a-priori transfer-time table (see
// cluster.Result.Calib); reports, when available, supply the region
// names (pass nil to fall back to "region#N" labels).
func FromTracer(tr *trace.Tracer, table *calib.Table, reports []*overlap.Report) Input {
	in := Input{Table: table, RegionNames: regionNamesFrom(reports)}
	if d := tr.ClockDomain(); d != "" && d != "virtual" {
		in.ClockDomain = d
	}
	for _, tk := range tr.Tracks() {
		switch tk.Group() {
		case trace.GroupHost:
			in.Ranks = append(in.Ranks, RankStream{Rank: tk.ID(), Name: tk.Name(), Recs: tk.Recs()})
		case trace.GroupNIC:
			for _, rec := range tk.Recs() {
				ingestNICRec(&in, tk.ID(), rec)
			}
		}
	}
	if in.RegionNames == nil {
		harvestRegionNames(&in)
	}
	if g := findGauge(tr.Metrics().Snapshot(), "run.duration_ns"); g > 0 {
		in.Duration = time.Duration(g)
	}
	return in
}

// maxRegionIndex bounds the region table an untrusted trace can make
// harvestRegionNames allocate. Real runs declare a handful of regions;
// anything past the cap is a corrupt or hostile id and is ignored (the
// analyzer falls back to "region#N" labels for unnamed indices).
const maxRegionIndex = 1 << 16

// harvestRegionNames recovers the region index → name mapping from the
// region-push instants' detail field, for inputs with no reports
// attached (offline ingestion, metrics-less runs).
func harvestRegionNames(in *Input) {
	for i := range in.Ranks {
		for _, rec := range in.Ranks[i].Recs {
			if rec.Cat != "overlap" || rec.Name != "region-push" || rec.Args.Detail == "" {
				continue
			}
			if rec.Args.ID >= maxRegionIndex {
				continue
			}
			idx := int(rec.Args.ID)
			for len(in.RegionNames) <= idx {
				in.RegionNames = append(in.RegionNames, "")
			}
			in.RegionNames[idx] = rec.Args.Detail
		}
	}
}

func ingestNICRec(in *Input, node int, rec trace.Rec) {
	switch {
	case rec.Cat == "wire" && rec.Name == "xfer":
		in.Wire = append(in.Wire, WireSpan{
			ID:    rec.Args.ID,
			Src:   node,
			Dst:   rec.Args.Peer,
			Size:  rec.Args.Size,
			Start: rec.Start.Duration(),
			End:   rec.End().Duration(),
			Phase: rec.Args.Phase,
		})
	case rec.Cat == "rel" && (rec.Name == "retransmit" || rec.Name == "repost") && rec.Args.ID != 0:
		if in.Retrans == nil {
			in.Retrans = make(map[uint64]int)
		}
		in.Retrans[rec.Args.ID]++
	}
}

func regionNamesFrom(reports []*overlap.Report) []string {
	for _, rep := range reports {
		if rep == nil {
			continue
		}
		names := make([]string, len(rep.Regions))
		for i := range rep.Regions {
			names[i] = rep.Regions[i].Name
		}
		return names
	}
	return nil
}

func findGauge(s *trace.Snapshot, name string) int64 {
	if s == nil {
		return 0
	}
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// FromChromeJSON rebuilds an Input from a Chrome trace-event file the
// exporter (or cmd/tracecat) wrote. The caller supplies the
// calibration table the run was instrumented with — the file does not
// embed it. Only files produced by this repo's exporter round-trip:
// the reader keys on its category/name vocabulary and pid/tid layout.
func FromChromeJSON(r io.Reader, table *calib.Table) (Input, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return Input{}, err
	}
	var raw struct {
		TraceEvents []chromeEvent   `json:"traceEvents"`
		Metrics     json.RawMessage `json:"metrics"`
		ClockDomain string          `json:"clockDomain"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return Input{}, fmt.Errorf("profile: not a trace-event file: %v", err)
	}
	if raw.TraceEvents == nil {
		return Input{}, fmt.Errorf("profile: no traceEvents array in input")
	}
	traceDomain := raw.ClockDomain
	if traceDomain == "" {
		traceDomain = "virtual"
	}
	if table != nil && table.Domain() != traceDomain {
		// A virtual-clock table replayed against wall-clock stamps (or
		// vice versa) yields nonsense bounds; refuse rather than mislead.
		return Input{}, fmt.Errorf("profile: calibration table is %s-clock but the trace is %s-clock; use a table calibrated with the matching backend", table.Domain(), traceDomain)
	}

	in := Input{Table: table}
	if traceDomain != "virtual" {
		in.ClockDomain = traceDomain
	}
	type key struct{ pid, tid int }
	hosts := make(map[key]*RankStream)
	order := []key{}
	names := make(map[key]string)
	for _, e := range raw.TraceEvents {
		k := key{e.Pid, e.Tid}
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				var a struct {
					Name string `json:"name"`
				}
				_ = json.Unmarshal(e.Args, &a)
				names[k] = a.Name
			}
			continue
		case "X", "i":
		default:
			continue
		}
		rec, args := e.toRec()
		switch trace.Group(e.Pid) {
		case trace.GroupHost:
			rs, ok := hosts[k]
			if !ok {
				rs = &RankStream{Rank: e.Tid - 1, Name: names[k]}
				hosts[k] = rs
				order = append(order, k)
			}
			rec.Args = args
			rs.Recs = append(rs.Recs, rec)
		case trace.GroupNIC:
			rec.Args = args
			ingestNICRec(&in, e.Tid-1, rec)
		}
	}
	for _, k := range order {
		rs := hosts[k]
		if rs.Name == "" {
			rs.Name = names[k]
		}
		in.Ranks = append(in.Ranks, *rs)
	}
	harvestRegionNames(&in)
	if len(raw.Metrics) > 0 {
		var snap trace.Snapshot
		if err := json.Unmarshal(raw.Metrics, &snap); err == nil {
			if g := findGauge(&snap, "run.duration_ns"); g > 0 {
				in.Duration = time.Duration(g)
			}
		}
	}
	return in, nil
}

// chromeEvent mirrors the exporter's record layout; ts/dur stay
// json.Number so the exact decimal microseconds convert back to
// integer nanoseconds without a float round trip.
type chromeEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat"`
	Ph   string          `json:"ph"`
	Ts   json.Number     `json:"ts"`
	Dur  json.Number     `json:"dur"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	Args json.RawMessage `json:"args"`
}

func (e *chromeEvent) toRec() (trace.Rec, trace.Args) {
	start := vtime.Time(parseUsec(e.Ts))
	rec := trace.Rec{Cat: e.Cat, Name: e.Name, Start: start}
	if e.Ph == "X" {
		rec.Dur = time.Duration(parseUsec(e.Dur))
	}
	args := trace.Args{Peer: trace.NoPeer}
	if len(e.Args) > 0 {
		var a struct {
			Peer   *int   `json:"peer"`
			Size   int64  `json:"size"`
			ID     uint64 `json:"id"`
			Detail string `json:"detail"`
			Phase  string `json:"phase"`
		}
		if err := json.Unmarshal(e.Args, &a); err == nil {
			if a.Peer != nil {
				args.Peer = *a.Peer
			}
			args.Size = a.Size
			args.ID = a.ID
			args.Detail = a.Detail
			args.Phase = a.Phase
		}
	}
	return rec, args
}

// parseUsec converts the spec's decimal-microsecond timestamp to
// integer nanoseconds without a float round trip, truncating past the
// third fractional digit (the exporter never emits more).
func parseUsec(n json.Number) int64 {
	s := string(n)
	if s == "" {
		return 0
	}
	neg := false
	if s[0] == '-' {
		neg, s = true, s[1:]
	}
	whole, frac, _ := strings.Cut(s, ".")
	var ns int64
	for i := 0; i < len(whole); i++ {
		if whole[i] < '0' || whole[i] > '9' {
			return 0
		}
		ns = ns*10 + int64(whole[i]-'0')
	}
	ns *= 1000
	scale := int64(100)
	for i := 0; i < len(frac) && i < 3; i++ {
		if frac[i] < '0' || frac[i] > '9' {
			return 0
		}
		ns += int64(frac[i]-'0') * scale
		scale /= 10
	}
	if neg {
		return -ns
	}
	return ns
}
