package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Profile serialization, mirroring overlap's report files: indented,
// struct-ordered JSON (encoding/json field order is declaration order,
// so a given profile always encodes to the same bytes).

// EncodeJSON writes the profile as indented JSON.
func (p *Profile) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// DecodeJSON reads a profile written by EncodeJSON.
func DecodeJSON(r io.Reader) (*Profile, error) {
	var p Profile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("profile: decoding profile: %w", err)
	}
	return &p, nil
}

// SaveJSON writes the profile to the named file.
func (p *Profile) SaveJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.EncodeJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadJSON reads a profile file written by SaveJSON.
func LoadJSON(path string) (*Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeJSON(f)
}
