package profile

import (
	"fmt"
	"io"
	"time"

	"ovlp/internal/report"
)

// WriteText renders the profile as human-readable tables: totals, the
// top-N offender sites with their blame breakdown, the slack
// distribution, and the critical-path composition. topN <= 0 prints
// every site.
func (p *Profile) WriteText(w io.Writer, topN int) error {
	cw := &countWriter{w: w}
	if p.ClockDomain != "" {
		fmt.Fprintf(cw, "profile: %d rank(s), run time %v (%s clock)\n", p.Ranks, p.Duration, p.ClockDomain)
	} else {
		fmt.Fprintf(cw, "profile: %d rank(s), run time %v\n", p.Ranks, p.Duration)
	}
	t := p.Totals
	fmt.Fprintf(cw, "  transfers %d  data %v  min %v  max %v  bound gap %v\n",
		t.Transfers, t.DataTransferTime, t.MinOverlapped, t.MaxOverlapped, t.Gap)
	names, vals := t.Blame.Columns()
	fmt.Fprintf(cw, "  blame:")
	for i, n := range names {
		if vals[i] > 0 {
			fmt.Fprintf(cw, " %s %v", n, vals[i])
		}
	}
	fmt.Fprintln(cw)

	sites := report.NewTable("top offender call sites (by bound gap)",
		"region", "op", "xfers", "data", "gap", "worst xfer", "dominant blame")
	for _, s := range p.TopSites(topN) {
		sites.AddRow(s.Region, s.Op, s.Count,
			s.DataTransferTime.Round(time.Microsecond),
			s.Gap.Round(time.Microsecond),
			s.MaxXferGap.Round(time.Microsecond),
			dominantBlame(s.Blame))
	}
	sites.Render(cw)
	fmt.Fprintln(cw)

	slack := report.NewTable("slack distribution (per-transfer bound gap)", "bucket", "xfers")
	for i := range p.Slack.Buckets {
		slack.AddRow(slackLabel(p.Slack.Bounds, i), p.Slack.Buckets[i])
	}
	slack.Render(cw)
	fmt.Fprintln(cw)

	crit := report.NewTable(fmt.Sprintf("critical path (%v over %d segments)", p.Critical.Length, len(p.Critical.Segments)),
		"kind", "time", "share%")
	for _, k := range p.Critical.ByKind {
		share := 0.0
		if p.Critical.Length > 0 {
			share = 100 * float64(k.Time) / float64(p.Critical.Length)
		}
		crit.AddRow(k.Kind, k.Time.Round(time.Microsecond), fmt.Sprintf("%.1f", share))
	}
	crit.Render(cw)
	return cw.err
}

func dominantBlame(b Blame) string {
	names, vals := b.Columns()
	best, at := time.Duration(0), -1
	for i, v := range vals {
		if v > best {
			best, at = v, i
		}
	}
	if at < 0 {
		return "-"
	}
	return names[at]
}

func slackLabel(bounds []time.Duration, i int) string {
	switch {
	case i == 0:
		return fmt.Sprintf("<=%v", bounds[0])
	case i < len(bounds):
		return fmt.Sprintf("%v-%v", bounds[i-1], bounds[i])
	default:
		return fmt.Sprintf(">%v", bounds[len(bounds)-1])
	}
}

// WriteCSV emits one row per site with the full blame breakdown, in
// the profile's sort order. Durations are integer nanoseconds.
func (p *Profile) WriteCSV(w io.Writer) error {
	cw := &countWriter{w: w}
	names, _ := Blame{}.Columns()
	fmt.Fprintf(cw, "region,op,xfers,data_ns,min_ns,max_ns,gap_ns,worst_xfer_ns")
	for _, n := range names {
		fmt.Fprintf(cw, ",%s_ns", n)
	}
	fmt.Fprintln(cw)
	for _, s := range p.Sites {
		fmt.Fprintf(cw, "%s,%s,%d,%d,%d,%d,%d,%d",
			csvField(s.Region), csvField(s.Op), s.Count,
			s.DataTransferTime.Nanoseconds(), s.MinOverlapped.Nanoseconds(),
			s.MaxOverlapped.Nanoseconds(), s.Gap.Nanoseconds(), s.MaxXferGap.Nanoseconds())
		_, vals := s.Blame.Columns()
		for _, v := range vals {
			fmt.Fprintf(cw, ",%d", v.Nanoseconds())
		}
		fmt.Fprintln(cw)
	}
	return cw.err
}

func csvField(s string) string {
	for _, c := range s {
		if c == ',' || c == '"' || c == '\n' {
			return fmt.Sprintf("%q", s)
		}
	}
	return s
}

// WriteFolded emits folded-stack lines (the flamegraph.pl input
// format): semicolon-separated frames and a microsecond weight. Two
// stack families are produced — "blame;<region>;<op>;<category>" from
// the attribution and "critical;<kind>;<label>" from the path — so one
// flame graph shows both where the bound gap lives and what the run's
// wall time was made of.
func (p *Profile) WriteFolded(w io.Writer) error {
	cw := &countWriter{w: w}
	for _, s := range p.Sites {
		names, vals := s.Blame.Columns()
		for i, v := range vals {
			if v > 0 {
				fmt.Fprintf(cw, "blame;%s;%s;%s %d\n",
					foldedFrame(s.Region), foldedFrame(s.Op), names[i], v.Microseconds())
			}
		}
	}
	// Fold critical-path segments by (kind, label) so repeated park
	// sites aggregate rather than emitting thousands of lines.
	type ck struct{ kind, label string }
	totals := map[ck]time.Duration{}
	var order []ck
	for _, s := range p.Critical.Segments {
		k := ck{s.Kind, s.Label}
		if _, ok := totals[k]; !ok {
			order = append(order, k)
		}
		totals[k] += s.End - s.Start
	}
	for _, k := range order {
		if k.label == "" {
			fmt.Fprintf(cw, "critical;%s %d\n", k.kind, totals[k].Microseconds())
		} else {
			fmt.Fprintf(cw, "critical;%s;%s %d\n", k.kind, foldedFrame(k.label), totals[k].Microseconds())
		}
	}
	return cw.err
}

func foldedFrame(s string) string {
	out := []rune(s)
	for i, c := range out {
		if c == ';' || c == ' ' || c == '\n' {
			out[i] = '_'
		}
	}
	return string(out)
}

type countWriter struct {
	w   io.Writer
	err error
}

func (c *countWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.err = err
	return n, err
}
