// Package profile is the offline analysis engine over the event
// streams the tracing subsystem records: it replays each rank's
// deterministic trace — library call spans, overlap instants, kernel
// scheduling spans, ground-truth wire spans — and turns the paper's
// per-region min/max overlap bounds into *attributed* profiles:
//
//   - blame attribution: every nanosecond of bound gap (the max−min
//     overlap uncertainty of a transfer) is charged to one cause —
//     late initiation, early wait, protocol choice, progress
//     starvation, fault retransmits, stream truncation — per call
//     site (region × library call);
//   - the critical path: a backward walk through the per-rank
//     happens-before graph (compute spans, park spans, wire arrival
//     edges, unpark edges) whose segments tile the whole virtual run
//     time, so its length always equals the run's wall time and its
//     composition says where that wall time went;
//   - cross-rank aggregation: per-site totals, a slack (per-transfer
//     gap) distribution, and top-N offenders.
//
// The replay uses the exact arithmetic of overlap/process.go, so the
// per-site gaps sum — by construction, and verified by tests — to the
// overlap report's max−min bound gap: attribution conserves the
// quantity it explains.
package profile

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"ovlp/internal/calib"
	"ovlp/internal/trace"
)

// ErrEmptyTrace marks an input with no span records in any host
// stream — nothing to replay, so analysis tools should fail loudly
// (exit non-zero) instead of emitting a vacuous report. Test with
// errors.Is.
var ErrEmptyTrace = errors.New("empty trace: no span records in any host stream")

// CheckNonEmpty returns ErrEmptyTrace when every host stream is
// missing or span-free (instants alone cannot anchor a replay).
func (in *Input) CheckNonEmpty() error {
	for i := range in.Ranks {
		for _, r := range in.Ranks[i].Recs {
			if !r.Instant() {
				return nil
			}
		}
	}
	return ErrEmptyTrace
}

// Schema is the profile JSON schema version.
const Schema = 1

// Blame is non-overlapped-uncertainty time attributed by cause. Each
// field is the summed bound gap (max−min overlap) of the transfers
// charged to that cause.
type Blame struct {
	// FaultRetransmit: the transfer needed at least one retransmission,
	// so its window was stretched by the recovery protocol.
	FaultRetransmit time.Duration `json:"fault_retransmit"`
	// LateInit: only the transfer's completion was observable (the
	// paper's single-stamp case) — initiation happened elsewhere or too
	// late to see, so nothing conclusive separates overlap from waste.
	LateInit time.Duration `json:"late_init"`
	// EarlyWait: the rank spent most of the transfer's in-library window
	// parked in a blocking call — it stopped computing before the wire
	// was done.
	EarlyWait time.Duration `json:"early_wait"`
	// Protocol: the transfer moved under a pipelined rendezvous phase,
	// whose fragment scheduling (not the application's call timing)
	// bounds the achievable overlap.
	Protocol time.Duration `json:"protocol"`
	// Progress: the library only progresses inside calls; the window's
	// gap is dominated by compute periods during which nobody polled.
	Progress time.Duration `json:"progress"`
	// Truncated: the transfer was still open when the stream ended, so
	// the monitor downgraded it to a single-stamp observation.
	Truncated time.Duration `json:"truncated"`
	// Detect: the transfer was in flight when a rank failure was agreed
	// and an epoch cut truncated it — its gap is the price of failure
	// detection interrupting the exchange.
	Detect time.Duration `json:"detect,omitempty"`
	// Agree: the transfer moved inside the recovery agreement phase
	// (region "ft-agree": the survivors' consensus and resynchronization
	// after a failure).
	Agree time.Duration `json:"agree,omitempty"`
	// Rollback: the transfer moved while restoring state — checkpoint
	// writes and restores (regions "ft-checkpoint" and "ft-rollback").
	Rollback time.Duration `json:"rollback,omitempty"`
	// Recompute: the transfer belongs to work replayed after a rollback
	// (region "ft-recompute": steps the survivors had already completed
	// once).
	Recompute time.Duration `json:"recompute,omitempty"`
	// Unknown: residual gap (e.g. the hardware-stamp path's evicted
	// user-interval window) that no cause above explains.
	Unknown time.Duration `json:"unknown"`
}

// Add accumulates o into b.
func (b *Blame) Add(o Blame) {
	b.FaultRetransmit += o.FaultRetransmit
	b.LateInit += o.LateInit
	b.EarlyWait += o.EarlyWait
	b.Protocol += o.Protocol
	b.Progress += o.Progress
	b.Truncated += o.Truncated
	b.Detect += o.Detect
	b.Agree += o.Agree
	b.Rollback += o.Rollback
	b.Recompute += o.Recompute
	b.Unknown += o.Unknown
}

// Total returns the summed attributed time.
func (b Blame) Total() time.Duration {
	return b.FaultRetransmit + b.LateInit + b.EarlyWait + b.Protocol +
		b.Progress + b.Truncated + b.Detect + b.Agree + b.Rollback +
		b.Recompute + b.Unknown
}

// Columns returns the category names and values in fixed order, for
// tables and folded output.
func (b Blame) Columns() ([]string, []time.Duration) {
	return []string{"fault-retransmit", "late-init", "early-wait", "protocol", "progress", "truncated",
			"detect", "agree", "rollback", "recompute", "unknown"},
		[]time.Duration{b.FaultRetransmit, b.LateInit, b.EarlyWait, b.Protocol, b.Progress, b.Truncated,
			b.Detect, b.Agree, b.Rollback, b.Recompute, b.Unknown}
}

// Site aggregates the transfers initiated at one call site — a
// monitored region crossed with the outermost library call that
// initiated (or, for end-only observations, completed) the transfer —
// across all ranks.
type Site struct {
	Region string `json:"region"`
	Op     string `json:"op"`
	Count  int    `json:"count"`
	// DataTransferTime, MinOverlapped and MaxOverlapped mirror the
	// overlap report's measures for this site's transfers.
	DataTransferTime time.Duration `json:"data_transfer_time"`
	MinOverlapped    time.Duration `json:"min_overlapped"`
	MaxOverlapped    time.Duration `json:"max_overlapped"`
	// Gap is MaxOverlapped − MinOverlapped: the uncertainty this site
	// contributes to the report's bounds, fully attributed in Blame.
	Gap time.Duration `json:"gap"`
	// MaxXferGap is the largest single-transfer gap at this site.
	MaxXferGap time.Duration `json:"max_xfer_gap"`
	Blame      Blame         `json:"blame"`
}

// Totals are the profile-wide sums over all sites.
type Totals struct {
	Transfers        int           `json:"transfers"`
	DataTransferTime time.Duration `json:"data_transfer_time"`
	MinOverlapped    time.Duration `json:"min_overlapped"`
	MaxOverlapped    time.Duration `json:"max_overlapped"`
	Gap              time.Duration `json:"gap"`
	Blame            Blame         `json:"blame"`
}

// SlackHist is the distribution of per-transfer bound gaps.
// Buckets[i] counts transfers with gap <= Bounds[i] (and greater than
// the previous bound); the last bucket is open-ended.
type SlackHist struct {
	Bounds  []time.Duration `json:"bounds"`
	Buckets []int64         `json:"buckets"`
}

func slackBounds() []time.Duration {
	return []time.Duration{
		10 * time.Microsecond, 100 * time.Microsecond,
		time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond,
	}
}

func (h *SlackHist) observe(gap time.Duration) {
	for i, b := range h.Bounds {
		if gap <= b {
			h.Buckets[i]++
			return
		}
	}
	h.Buckets[len(h.Bounds)]++
}

// PathSegment is one link of the critical path. Segments are reported
// in increasing time order and tile [0, Duration] exactly.
type PathSegment struct {
	// Rank is the proc id the segment runs on; -1 for wire segments.
	Rank int `json:"rank"`
	// Kind is "compute", "wait", "wire" or "idle".
	Kind string `json:"kind"`
	// Label carries the park site, wire phase, or proc name.
	Label string        `json:"label,omitempty"`
	Start time.Duration `json:"start"`
	End   time.Duration `json:"end"`
}

// KindTotal sums critical-path time by segment kind.
type KindTotal struct {
	Kind string        `json:"kind"`
	Time time.Duration `json:"time"`
}

// CriticalPath is the longest dependency chain of the run. Length
// equals the virtual wall time by construction (the walk tiles the
// whole run), which tests assert.
type CriticalPath struct {
	Length   time.Duration `json:"length"`
	ByKind   []KindTotal   `json:"by_kind"`
	Segments []PathSegment `json:"segments"`
}

// EpochTotals are one recovery epoch's slice of the profile-wide
// sums. Summing all epochs reproduces Totals exactly (attribution
// conserves per epoch, not just whole-run).
type EpochTotals struct {
	Epoch            int           `json:"epoch"`
	Transfers        int           `json:"transfers"`
	DataTransferTime time.Duration `json:"data_transfer_time"`
	MinOverlapped    time.Duration `json:"min_overlapped"`
	MaxOverlapped    time.Duration `json:"max_overlapped"`
	Gap              time.Duration `json:"gap"`
	Blame            Blame         `json:"blame"`
}

// Profile is the complete analysis result.
type Profile struct {
	Schema   int           `json:"schema"`
	Ranks    int           `json:"ranks"`
	Duration time.Duration `json:"duration"`
	Totals   Totals        `json:"totals"`
	// Epochs breaks Totals down by recovery epoch (fault-tolerant runs
	// whose streams carry epoch-cut events); empty otherwise.
	Epochs []EpochTotals `json:"epochs,omitempty"`
	// Sites are sorted by Gap descending (the top offenders first),
	// ties broken by region then op.
	Sites    []Site       `json:"sites"`
	Slack    SlackHist    `json:"slack"`
	Critical CriticalPath `json:"critical"`
	// ClockDomain names the clock of the analyzed run's timestamps
	// ("real", "fake"); omitted for virtual runs, keeping their JSON
	// byte-identical to prior releases.
	ClockDomain string `json:"clockDomain,omitempty"`
}

// TopSites returns the first n sites (all when n <= 0 or beyond the
// end) — the top offenders, given the sort order.
func (p *Profile) TopSites(n int) []Site {
	if n <= 0 || n > len(p.Sites) {
		n = len(p.Sites)
	}
	return p.Sites[:n]
}

// Input is the evidence Analyze consumes. Build it with FromTracer
// after an in-process run, or FromChromeJSON from an exported trace
// file.
type Input struct {
	// Ranks holds each host track's records in emission order.
	Ranks []RankStream
	// Wire holds the ground-truth wire intervals (NIC tracks).
	Wire []WireSpan
	// Retrans counts retransmissions per transfer id.
	Retrans map[uint64]int
	// Duration is the virtual wall time; 0 derives it from the streams.
	Duration time.Duration
	// Table is the a-priori transfer-time table the run's
	// instrumentation used; required when the streams contain overlap
	// events, because the bounds replay needs the same xfer-time
	// estimates.
	Table *calib.Table
	// RegionNames maps region indices to names (index 0 is the root
	// region); missing entries render as "region#N".
	RegionNames []string
	// Window is the user-interval window for hardware-stamped replays;
	// 0 selects overlap.DefaultUserIntervalWindow.
	Window int
	// ClockDomain names the clock the trace's timestamps were read
	// from ("real", "fake"); empty means virtual. Recovered from the
	// trace file's top-level "clockDomain" key (absent in virtual
	// exports) so the replay knows whether bounds are deterministic or
	// wall-clock measurements.
	ClockDomain string
}

// RankStream is one simulated proc's host-track records.
type RankStream struct {
	Rank     int
	Name     string
	Protocol string // from the library's attach instant ("" when none)
	Recs     []trace.Rec
}

// WireSpan is one ground-truth wire interval.
type WireSpan struct {
	ID         uint64
	Src, Dst   int
	Size       int64
	Start, End time.Duration
	Phase      string
}

// Analyze replays the input streams and produces the profile.
func Analyze(in Input) (*Profile, error) {
	if len(in.Ranks) == 0 {
		return nil, fmt.Errorf("profile: no host streams in input")
	}
	p := &Profile{
		Schema:      Schema,
		Ranks:       len(in.Ranks),
		Slack:       SlackHist{Bounds: slackBounds(), Buckets: make([]int64, len(slackBounds())+1)},
		ClockDomain: in.ClockDomain,
	}

	sites := make(map[siteKey]*Site)
	var epochs []EpochTotals
	maxEpoch := 0
	for i := range in.Ranks {
		rs := &in.Ranks[i]
		obs, rankEpochs, err := replayRank(rs, &in)
		if err != nil {
			return nil, fmt.Errorf("profile: rank %d (%s): %w", rs.Rank, rs.Name, err)
		}
		if rankEpochs > maxEpoch {
			maxEpoch = rankEpochs
		}
		for _, x := range obs {
			k := siteKey{region: regionName(in.RegionNames, x.region), op: x.op}
			s, ok := sites[k]
			if !ok {
				s = &Site{Region: k.region, Op: k.op}
				sites[k] = s
			}
			gap := x.maxOv - x.minOv
			s.Count++
			s.DataTransferTime += x.xt
			s.MinOverlapped += x.minOv
			s.MaxOverlapped += x.maxOv
			s.Gap += gap
			if gap > s.MaxXferGap {
				s.MaxXferGap = gap
			}
			s.Blame.Add(x.blame)
			p.Slack.observe(gap)

			p.Totals.Transfers++
			p.Totals.DataTransferTime += x.xt
			p.Totals.MinOverlapped += x.minOv
			p.Totals.MaxOverlapped += x.maxOv
			p.Totals.Gap += gap
			p.Totals.Blame.Add(x.blame)

			for len(epochs) <= x.epoch {
				epochs = append(epochs, EpochTotals{Epoch: len(epochs)})
			}
			et := &epochs[x.epoch]
			et.Transfers++
			et.DataTransferTime += x.xt
			et.MinOverlapped += x.minOv
			et.MaxOverlapped += x.maxOv
			et.Gap += gap
			et.Blame.Add(x.blame)
		}
	}
	if maxEpoch > 0 {
		for len(epochs) <= maxEpoch {
			epochs = append(epochs, EpochTotals{Epoch: len(epochs)})
		}
		p.Epochs = epochs
	}

	p.Sites = make([]Site, 0, len(sites))
	for _, s := range sites {
		p.Sites = append(p.Sites, *s)
	}
	sort.Slice(p.Sites, func(i, j int) bool {
		a, b := &p.Sites[i], &p.Sites[j]
		if a.Gap != b.Gap {
			return a.Gap > b.Gap
		}
		if a.Region != b.Region {
			return a.Region < b.Region
		}
		return a.Op < b.Op
	})

	p.Duration = in.Duration
	if p.Duration == 0 {
		p.Duration = maxStreamEnd(&in)
	}
	p.Critical = criticalPath(&in, p.Duration)
	return p, nil
}

type siteKey struct{ region, op string }

func regionName(names []string, idx int32) string {
	if idx == 0 {
		return "(root)"
	}
	if int(idx) < len(names) && names[idx] != "" {
		return names[idx]
	}
	return fmt.Sprintf("region#%d", idx)
}

func maxStreamEnd(in *Input) time.Duration {
	var end time.Duration
	for i := range in.Ranks {
		for _, r := range in.Ranks[i].Recs {
			if e := r.End().Duration(); e > end {
				end = e
			}
		}
	}
	for _, w := range in.Wire {
		if w.End > end {
			end = w.End
		}
	}
	return end
}
