package profile

import (
	"bytes"
	"testing"
	"time"

	"ovlp/internal/cluster"
	"ovlp/internal/fabric"
	"ovlp/internal/mpi"
	"ovlp/internal/nas"
	"ovlp/internal/overlap"
	"ovlp/internal/trace"
)

// workload is one traced run the conservation tests replay.
type workload struct {
	name string
	cfg  cluster.Config
	body func(r *mpi.Rank)
}

func exchange(pair string, size int, reps int, compute time.Duration) func(r *mpi.Rank) {
	return func(r *mpi.Rank) {
		peer := 1 - r.ID()
		for i := 0; i < reps; i++ {
			r.PushRegion("exchange")
			switch {
			case pair == "isend-irecv":
				var q *mpi.Request
				if r.ID() == 0 {
					q = r.Isend(peer, 0, size)
				} else {
					q = r.Irecv(peer, 0)
				}
				r.Compute(compute)
				r.Wait(q)
			case r.ID() == 0: // isend-recv
				q := r.Isend(peer, 0, size)
				r.Compute(compute)
				r.Wait(q)
			default:
				r.Recv(peer, 0)
			}
			r.PopRegion()
			r.Compute(10 * time.Microsecond) // pacing outside the region
		}
	}
}

func workloads() []workload {
	mk := func(proto mpi.LongProtocol, hw bool, faults *fabric.FaultPlan) cluster.Config {
		return cluster.Config{
			Procs: 2,
			MPI: mpi.Config{
				Protocol:     proto,
				HWTimestamps: hw,
				Instrument:   &mpi.InstrumentConfig{},
			},
			Faults: faults,
		}
	}
	return []workload{
		{"eager-pipelined", mk(mpi.PipelinedRDMA, false, nil),
			exchange("isend-irecv", 10<<10, 40, 20*time.Microsecond)},
		{"rendezvous-pipelined", mk(mpi.PipelinedRDMA, false, nil),
			exchange("isend-recv", 1<<20, 10, 500*time.Microsecond)},
		{"rendezvous-direct", mk(mpi.DirectRDMARead, false, nil),
			exchange("isend-irecv", 1<<20, 10, 500*time.Microsecond)},
		{"direct-faulted", mk(mpi.DirectRDMARead, false,
			&fabric.FaultPlan{Seed: 7, Default: fabric.LinkFaults{DropRate: 0.1}}),
			exchange("isend-irecv", 64<<10, 20, 100*time.Microsecond)},
		{"hw-exact", mk(mpi.DirectRDMARead, true, nil),
			exchange("isend-irecv", 1<<20, 10, 500*time.Microsecond)},
	}
}

func runProfiled(t *testing.T, cfg cluster.Config, body func(r *mpi.Rank)) (*Profile, cluster.Result, *trace.Tracer) {
	t.Helper()
	tr := trace.New(trace.Options{})
	cfg.Trace = tr
	res := cluster.Run(cfg, body)
	in := FromTracer(tr, res.Calib, res.Reports)
	p, err := Analyze(in)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return p, res, tr
}

// checkConservation asserts the bound-gap conservation invariant: the
// profiler's per-site totals reproduce the instrumentation reports'
// measures exactly, the blamed time partitions the gap, and the
// critical path tiles the run's virtual wall time.
func checkConservation(t *testing.T, p *Profile, reports []*overlap.Report, duration time.Duration) {
	t.Helper()
	var want overlap.Measures
	for _, rep := range reports {
		if rep != nil {
			want.Add(rep.Total())
		}
	}
	if want.Count == 0 {
		t.Fatal("reports carry no transfers; workload broken")
	}
	if p.Totals.Transfers != want.Count {
		t.Errorf("transfers: profiled %d, reports %d", p.Totals.Transfers, want.Count)
	}
	if p.Totals.DataTransferTime != want.DataTransferTime {
		t.Errorf("data transfer time: profiled %v, reports %v",
			p.Totals.DataTransferTime, want.DataTransferTime)
	}
	if p.Totals.MinOverlapped != want.MinOverlapped || p.Totals.MaxOverlapped != want.MaxOverlapped {
		t.Errorf("bounds: profiled [%v,%v], reports [%v,%v]",
			p.Totals.MinOverlapped, p.Totals.MaxOverlapped,
			want.MinOverlapped, want.MaxOverlapped)
	}
	gap := want.MaxOverlapped - want.MinOverlapped
	if p.Totals.Gap != gap {
		t.Errorf("bound gap: profiled %v, reports %v", p.Totals.Gap, gap)
	}
	if got := p.Totals.Blame.Total(); got != gap {
		t.Errorf("blamed time %v does not partition the bound gap %v", got, gap)
	}
	var siteGap time.Duration
	var siteBlame time.Duration
	for _, s := range p.Sites {
		siteGap += s.Gap
		siteBlame += s.Blame.Total()
		if s.Blame.Total() != s.Gap {
			t.Errorf("site %s/%s: blame %v != gap %v", s.Region, s.Op, s.Blame.Total(), s.Gap)
		}
	}
	if siteGap != gap {
		t.Errorf("per-site gaps sum to %v, reports gap %v", siteGap, gap)
	}
	if p.Critical.Length != duration {
		t.Errorf("critical path length %v, run time %v", p.Critical.Length, duration)
	}
	var segSum time.Duration
	for _, s := range p.Critical.Segments {
		if s.End <= s.Start {
			t.Errorf("empty or inverted segment %+v", s)
		}
		segSum += s.End - s.Start
	}
	if segSum != duration {
		t.Errorf("segments sum to %v, run time %v", segSum, duration)
	}
}

// TestConservationMicro replays the microbenchmark-style workloads —
// eager, pipelined rendezvous, direct rendezvous, a faulted link and
// the hardware-timestamp mode — and checks the conservation invariant
// on each.
func TestConservationMicro(t *testing.T) {
	for _, w := range workloads() {
		t.Run(w.name, func(t *testing.T) {
			p, res, _ := runProfiled(t, w.cfg, w.body)
			checkConservation(t, p, res.Reports, res.Duration)
			if w.name == "direct-faulted" && p.Totals.Blame.FaultRetransmit == 0 {
				t.Error("faulted run attributed no fault-retransmit time")
			}
		})
	}
}

// TestConservationNAS checks the invariant on a real kernel: LU class
// S on four ranks, two iterations.
func TestConservationNAS(t *testing.T) {
	cfg := cluster.Config{
		Procs: 4,
		MPI: mpi.Config{
			Protocol:   mpi.DirectRDMARead,
			Instrument: &mpi.InstrumentConfig{},
		},
	}
	p, res, _ := runProfiled(t, cfg, func(r *mpi.Rank) {
		nas.Run(nas.LU, r, nas.Params{Class: nas.ClassS, MaxIters: 2})
	})
	checkConservation(t, p, res.Reports, res.Duration)
}

// TestChromeRoundTrip re-ingests an exported trace file and checks the
// profile it yields is identical to the live-tracer one.
func TestChromeRoundTrip(t *testing.T) {
	w := workloads()[0]
	p, res, tr := runProfiled(t, w.cfg, w.body)
	var file bytes.Buffer
	if err := tr.WriteChrome(&file); err != nil {
		t.Fatal(err)
	}
	// No RegionNames fix-up: the exported file must be self-describing
	// (region-push instants carry the name in detail).
	in, err := FromChromeJSON(&file, res.Calib)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Analyze(in)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := p.EncodeJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := p2.EncodeJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("re-ingested profile differs from live profile:\nlive: %s\nfile: %s", a.String(), b.String())
	}
}

// TestAnalyzeEmpty rejects inputs with no rank streams.
func TestAnalyzeEmpty(t *testing.T) {
	if _, err := Analyze(Input{}); err == nil {
		t.Error("Analyze accepted an empty input")
	}
}
