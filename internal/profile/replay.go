package profile

import (
	"fmt"
	"strings"
	"time"

	"ovlp/internal/overlap"
)

// The replay reconstructs, per rank, the exact event sequence the
// overlap monitor processed — from the trace's call spans (emitted at
// call exit, so each span record follows the overlap instants that
// fired inside it) and overlap instants (emitted in true order) — and
// re-runs the bounds algorithm of overlap/process.go at per-transfer
// granularity. Matching the monitor's arithmetic operation-for-
// operation is what makes attribution conservative: the per-transfer
// gaps sum to the report's max−min bound gap exactly.

// xferObs is one replayed transfer with its bounds and blame.
type xferObs struct {
	id     uint64
	size   int64
	region int32
	op     string
	xt     time.Duration
	minOv  time.Duration
	maxOv  time.Duration
	blame  Blame
}

// replayCase mirrors the monitor's case taxonomy, plus the replay-only
// truncated and exact outcomes.
type replayCase int

const (
	caseSameCall replayCase = iota
	caseBothStamps
	caseSingleStamp
	caseTruncated
	caseExact
)

// rkEvent is one reconstructed monitor event.
type rkEvent struct {
	kind       overlap.Kind
	at         time.Duration // stamp on the shared virtual timeline
	id         uint64
	size       int64
	region     int32
	op         string        // call name (enter/exit events)
	start, end time.Duration // exact transfer interval (KindXferExact)
}

// replayRank rebuilds rank rs's monitor event stream and replays it.
func replayRank(rs *RankStream, in *Input) ([]xferObs, error) {
	events, parks, labels, done := reconstruct(rs)
	if len(events) == 0 {
		return nil, nil
	}
	if in.Table == nil {
		return nil, fmt.Errorf("overlap events present but no calibration table to replay bounds with")
	}
	r := &replayer{in: in, rs: rs, parks: parks, open: make(map[uint64]openX)}
	window := in.Window
	if window <= 0 {
		window = overlap.DefaultUserIntervalWindow
	}
	r.window = window
	for i := range events {
		if err := r.apply(&events[i]); err != nil {
			return nil, err
		}
	}
	r.finish(done)
	// Transfers issued by a nonblocking-collective schedule are owned
	// by the schedule, not by whichever call (or progress-thread poll,
	// rendered "(outside)") happened to be active when the protocol
	// moved them: rename their site so starvation blame lands on e.g.
	// "Iallreduce[ring]".
	for i := range r.out {
		if lbl, ok := labels[r.out[i].id]; ok {
			r.out[i].op = lbl
		}
	}
	return r.out, nil
}

// reconstruct turns the host-track records into monitor-order events,
// and collects the kernel park spans (for the early-wait test), the
// collective-schedule ownership labels keyed by transfer id, and the
// stream's end stamp.
func reconstruct(rs *RankStream) (events []rkEvent, parks []parkSpan, labels map[uint64]string, done time.Duration) {
	var pending []rkEvent
	flush := func(upto time.Duration, all bool) {
		n := 0
		for _, ev := range pending {
			// An exact span's coordinates are the transfer's physical
			// interval, which can predate the call that detected it; it
			// was logged inside that call, so it is never an outside
			// event (and everything logged after it is inside too).
			if !all && (ev.kind == overlap.KindXferExact || ev.at >= upto) {
				break
			}
			events = append(events, ev)
			n++
		}
		pending = pending[n:]
	}
	for _, rec := range rs.Recs {
		end := rec.End().Duration()
		if end > done {
			done = end
		}
		switch rec.Cat {
		case "mpi", "armci":
			if rec.Name == "attach" {
				if rs.Protocol == "" {
					rs.Protocol = rec.Args.Detail
				}
				continue
			}
			// A call span record is emitted at call exit, after every
			// overlap instant that fired inside it; pending instants
			// stamped before the call began happened in user code.
			start := rec.Start.Duration()
			flush(start, false)
			events = append(events, rkEvent{kind: overlap.KindCallEnter, at: start, op: rec.Name})
			flush(0, true)
			events = append(events, rkEvent{kind: overlap.KindCallExit, at: end, op: rec.Name})
		case "overlap":
			ev := rkEvent{at: rec.Start.Duration(), id: rec.Args.ID, size: rec.Args.Size}
			switch rec.Name {
			case "xfer-begin":
				ev.kind = overlap.KindXferBegin
			case "xfer-end":
				ev.kind = overlap.KindXferEnd
			case "xfer-exact":
				ev.kind = overlap.KindXferExact
				ev.start, ev.end = rec.Start.Duration(), rec.End().Duration()
			case "region-push":
				ev.kind = overlap.KindRegionPush
				ev.region = int32(rec.Args.ID)
			case "region-pop":
				ev.kind = overlap.KindRegionPop
				ev.region = int32(rec.Args.ID)
			default:
				continue
			}
			pending = append(pending, ev)
		case "kernel":
			if rec.Name == "park" && rec.Dur > 0 {
				parks = append(parks, parkSpan{start: rec.Start.Duration(), end: end})
			}
		case "coll":
			if rec.Name == "sched" && rec.Args.Detail != "" {
				if labels == nil {
					labels = make(map[uint64]string)
				}
				labels[rec.Args.ID] = rec.Args.Detail
			}
		}
	}
	flush(0, true)
	return events, parks, labels, done
}

type parkSpan struct{ start, end time.Duration }

// openX is the monitor's open-transfer record plus what blame needs.
type openX struct {
	size           int64
	cumUserAtBegin time.Duration
	cumLibAtBegin  time.Duration
	callSeq        uint64
	region         int32
	op             string
	beginAt        time.Duration
}

// replayer mirrors overlap.procState field-for-field, with per-
// transfer output instead of folded measures.
type replayer struct {
	in    *Input
	rs    *RankStream
	parks []parkSpan

	lastStamp time.Duration
	inLib     bool
	callSeq   uint64
	curRegion int32
	curOp     string
	lastExit  time.Duration

	userIvals []struct{ start, end time.Duration }
	horizon   time.Duration
	window    int

	cumUser time.Duration
	cumLib  time.Duration

	open map[uint64]openX
	out  []xferObs
}

func (r *replayer) advance(stamp time.Duration) error {
	span := stamp - r.lastStamp
	if span < 0 {
		return fmt.Errorf("non-monotonic reconstructed stamps (%v after %v)", stamp, r.lastStamp)
	}
	if r.inLib {
		r.cumLib += span
	} else {
		r.cumUser += span
	}
	r.lastStamp = stamp
	return nil
}

func (r *replayer) apply(e *rkEvent) error {
	if e.kind == overlap.KindXferExact {
		// The event's stamps are the physical interval, not the
		// detection time the monitor's clock advanced on. Exact mode
		// never reads the cumulative clocks, so skip advancing them.
		r.applyExact(e)
		return nil
	}
	if err := r.advance(e.at); err != nil {
		return err
	}
	switch e.kind {
	case overlap.KindCallEnter:
		r.inLib = true
		r.callSeq++
		r.curOp = e.op
		r.recordUserInterval(r.lastExit, e.at)
	case overlap.KindCallExit:
		r.inLib = false
		r.lastExit = e.at
	case overlap.KindRegionPush, overlap.KindRegionPop:
		r.curRegion = e.region
	case overlap.KindXferBegin:
		r.open[e.id] = openX{
			size:           e.size,
			cumUserAtBegin: r.cumUser,
			cumLibAtBegin:  r.cumLib,
			callSeq:        r.callSeq,
			region:         r.curRegion,
			op:             r.curOp,
			beginAt:        e.at,
		}
	case overlap.KindXferEnd:
		r.completeXfer(e)
	}
	return nil
}

// completeXfer is overlap.procState.completeXfer with blame attached.
func (r *replayer) completeXfer(e *rkEvent) {
	rec, seen := r.open[e.id]
	if !seen {
		// Single-stamp: initiation was invisible to this rank.
		xt := r.xferTime(e.size)
		op := r.curOp
		if !r.inLib {
			op = "(outside)"
		}
		r.emit(e.id, e.size, r.curRegion, op, xt, 0, xt, caseSingleStamp, 0)
		return
	}
	delete(r.open, e.id)
	xt := r.xferTime(rec.size)
	if rec.callSeq == r.callSeq && r.inLib {
		r.emit(e.id, rec.size, rec.region, rec.op, xt, 0, 0, caseSameCall, 0)
		return
	}
	computation := r.cumUser - rec.cumUserAtBegin
	noncomputation := r.cumLib - rec.cumLibAtBegin
	maxOv := xt
	if computation < xt {
		maxOv = computation
	}
	minOv := xt - noncomputation
	if minOv < 0 {
		minOv = 0
	}
	if minOv > maxOv {
		minOv = maxOv
	}
	r.emitWindow(e.id, rec, xt, minOv, maxOv, e.at, noncomputation)
}

func (r *replayer) xferTime(size int64) time.Duration {
	return r.in.Table.XferTime(int(size))
}

func (r *replayer) recordUserInterval(start, end time.Duration) {
	if end <= start {
		return
	}
	if len(r.userIvals) >= r.window {
		drop := len(r.userIvals) - r.window + 1
		r.horizon = r.userIvals[drop-1].end
		r.userIvals = append(r.userIvals[:0], r.userIvals[drop:]...)
	}
	r.userIvals = append(r.userIvals, struct{ start, end time.Duration }{start, end})
}

// applyExact mirrors overlap.procState.applyExact: the only gap an
// exact transfer can carry is the unknowable prefix predating the
// retained user-interval window.
func (r *replayer) applyExact(e *rkEvent) {
	start, end := e.start, e.end
	known := time.Duration(0)
	for _, iv := range r.userIvals {
		lo, hi := start, end
		if iv.start > lo {
			lo = iv.start
		}
		if iv.end < hi {
			hi = iv.end
		}
		if hi > lo {
			known += hi - lo
		}
	}
	var unknown time.Duration
	if start < r.horizon {
		cut := end
		if r.horizon < cut {
			cut = r.horizon
		}
		unknown = cut - start
	}
	data := end - start
	minOv, maxOv := known, known+unknown
	if maxOv > data {
		maxOv = data
	}
	if minOv > maxOv {
		minOv = maxOv
	}
	op := r.curOp
	if !r.inLib {
		op = "(outside)"
	}
	x := xferObs{id: e.id, size: e.size, region: r.curRegion, op: op,
		xt: data, minOv: minOv, maxOv: maxOv}
	x.blame.Unknown = maxOv - minOv
	r.out = append(r.out, x)
}

// emitWindow classifies a both-stamps transfer and emits it.
func (r *replayer) emitWindow(id uint64, rec openX, xt, minOv, maxOv, endAt time.Duration, noncomp time.Duration) {
	gap := maxOv - minOv
	var blamed Blame
	switch {
	case gap == 0:
		// Nothing to attribute.
	case r.in.Retrans[id] > 0:
		blamed.FaultRetransmit = gap
	case noncomp > 0 && 2*r.parkTime(rec.beginAt, endAt) >= noncomp:
		blamed.EarlyWait = gap
	case r.isPipelined(id):
		blamed.Protocol = gap
	default:
		blamed.Progress = gap
	}
	r.out = append(r.out, xferObs{id: id, size: rec.size, region: rec.region, op: rec.op,
		xt: xt, minOv: minOv, maxOv: maxOv, blame: blamed})
}

// emit records a transfer whose blame follows directly from its case.
func (r *replayer) emit(id uint64, size int64, region int32, op string, xt, minOv, maxOv time.Duration, kase replayCase, _ time.Duration) {
	gap := maxOv - minOv
	var blamed Blame
	if gap > 0 {
		switch {
		case r.in.Retrans[id] > 0:
			blamed.FaultRetransmit = gap
		case kase == caseTruncated:
			blamed.Truncated = gap
		case kase == caseSingleStamp:
			blamed.LateInit = gap
		default:
			blamed.Unknown = gap
		}
	}
	r.out = append(r.out, xferObs{id: id, size: size, region: region, op: op,
		xt: xt, minOv: minOv, maxOv: maxOv, blame: blamed})
}

// parkTime sums the rank's parked time inside [from, to].
func (r *replayer) parkTime(from, to time.Duration) time.Duration {
	var total time.Duration
	for _, p := range r.parks {
		if p.end <= from {
			continue
		}
		if p.start >= to {
			break
		}
		lo, hi := p.start, p.end
		if from > lo {
			lo = from
		}
		if to < hi {
			hi = to
		}
		if hi > lo {
			total += hi - lo
		}
	}
	return total
}

// isPipelined reports whether transfer id moved under a pipelined
// phase — by wire tag when the id reached the wire, by the rank's
// protocol otherwise (a receiver's virtual bulk transfer never does).
func (r *replayer) isPipelined(id uint64) bool {
	for i := range r.in.Wire {
		if r.in.Wire[i].ID == id {
			return strings.HasPrefix(r.in.Wire[i].Phase, "pipelined")
		}
	}
	return strings.Contains(r.rs.Protocol, "Pipelined")
}

// finish resolves still-open transfers as the monitor does at
// Finalize: downgraded to single-stamp bounds, blamed on truncation.
func (r *replayer) finish(stamp time.Duration) {
	// Deterministic order for map iteration: ids ascend.
	ids := make([]uint64, 0, len(r.open))
	for id := range r.open {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
	for _, id := range ids {
		rec := r.open[id]
		xt := r.xferTime(rec.size)
		r.emit(id, rec.size, rec.region, rec.op, xt, 0, xt, caseTruncated, 0)
		delete(r.open, id)
	}
	_ = stamp
}
