package profile

import (
	"fmt"
	"strings"
	"time"

	"ovlp/internal/overlap"
)

// The replay reconstructs, per rank, the exact event sequence the
// overlap monitor processed — from the trace's call spans (emitted at
// call exit, so each span record follows the overlap instants that
// fired inside it) and overlap instants (emitted in true order) — and
// re-runs the bounds algorithm of overlap/process.go at per-transfer
// granularity. Matching the monitor's arithmetic operation-for-
// operation is what makes attribution conservative: the per-transfer
// gaps sum to the report's max−min bound gap exactly.
//
// The state machine itself lives in stream.go (RankReplay), shared
// with the live time-resolved analyzer; this file is the offline
// driver that prices samples against the calibration table and
// classifies blame.

// xferObs is one replayed transfer with its bounds and blame.
type xferObs struct {
	id     uint64
	size   int64
	region int32
	op     string
	epoch  int
	xt     time.Duration
	minOv  time.Duration
	maxOv  time.Duration
	blame  Blame
}

// rkEvent is one reconstructed monitor event.
type rkEvent struct {
	kind       overlap.Kind
	at         time.Duration // stamp on the shared virtual timeline
	id         uint64
	size       int64
	region     int32
	op         string        // call name (enter/exit events)
	start, end time.Duration // exact transfer interval (KindXferExact)
}

type parkSpan struct{ start, end time.Duration }

// openX is the monitor's open-transfer record plus what blame needs.
type openX struct {
	size           int64
	cumUserAtBegin time.Duration
	cumLibAtBegin  time.Duration
	callSeq        uint64
	region         int32
	op             string
	beginAt        time.Duration
}

// replayRank rebuilds rank rs's monitor event stream and replays it.
// The second result is the rank's final recovery epoch (the number of
// epoch cuts seen).
func replayRank(rs *RankStream, in *Input) ([]xferObs, int, error) {
	var samples []XferSample
	rr := NewRankReplay(in.Window, func(x XferSample) { samples = append(samples, x) })
	for _, rec := range rs.Recs {
		rr.Feed(rec)
	}
	rr.Finish()
	if err := rr.Err(); err != nil {
		return nil, 0, err
	}
	if rs.Protocol == "" {
		rs.Protocol = rr.Protocol()
	}
	if rr.Events() == 0 {
		return nil, rr.epoch, nil
	}
	if in.Table == nil {
		return nil, 0, fmt.Errorf("overlap events present but no calibration table to replay bounds with")
	}
	// Transfers issued by a nonblocking-collective schedule are owned
	// by the schedule, not by whichever call (or progress-thread poll,
	// rendered "(outside)") happened to be active when the protocol
	// moved them: rename their site so starvation blame lands on e.g.
	// "Iallreduce[ring]".
	labels := rr.Labels()
	out := make([]xferObs, 0, len(samples))
	for i := range samples {
		x := &samples[i]
		if lbl, ok := labels[x.ID]; ok {
			x.Op = lbl
		}
		xt, minOv, maxOv := x.Bounds(in.Table)
		out = append(out, xferObs{id: x.ID, size: x.Size, region: x.Region, op: x.Op,
			epoch: x.Epoch, xt: xt, minOv: minOv, maxOv: maxOv,
			blame: classify(x, minOv, maxOv, in, rs.Protocol, rr)})
	}
	return out, rr.epoch, nil
}

// Recovery-phase region names the cluster FT runner brackets its
// recovery protocol with; transfers initiated inside them carry the
// corresponding recovery blame instead of the healthy-run taxonomy.
const (
	RegionAgree      = "ft-agree"
	RegionRollback   = "ft-rollback"
	RegionRecompute  = "ft-recompute"
	RegionCheckpoint = "ft-checkpoint"
)

// recoveryBlame attributes a sample's gap to a recovery cause, or
// false when the sample is ordinary (healthy-run) traffic.
func recoveryBlame(x *XferSample, gap time.Duration, in *Input) (Blame, bool) {
	var b Blame
	if x.Cut {
		// In flight when the failure was agreed: the epoch cut truncated
		// it, so its whole uncertainty is the price of detection.
		b.Detect = gap
		return b, true
	}
	switch regionName(in.RegionNames, x.Region) {
	case RegionAgree:
		b.Agree = gap
	case RegionRollback, RegionCheckpoint:
		b.Rollback = gap
	case RegionRecompute:
		b.Recompute = gap
	default:
		return Blame{}, false
	}
	return b, true
}

// classify attributes a sample's bound gap to one cause, preserving
// the monitor-era taxonomy per case.
func classify(x *XferSample, minOv, maxOv time.Duration, in *Input, protocol string, rr *RankReplay) Blame {
	gap := maxOv - minOv
	var b Blame
	if gap == 0 {
		// Nothing to attribute.
		return b
	}
	if rb, ok := recoveryBlame(x, gap, in); ok {
		return rb
	}
	switch x.Case {
	case CaseExact:
		// The only exact-case gap is the evicted user-interval window.
		b.Unknown = gap
	case CaseBothStamps:
		switch {
		case in.Retrans[x.ID] > 0:
			b.FaultRetransmit = gap
		case x.Noncomputation > 0 && 2*rr.ParkTime(x.BeginAt, x.At) >= x.Noncomputation:
			b.EarlyWait = gap
		case isPipelined(in, protocol, x.ID):
			b.Protocol = gap
		default:
			b.Progress = gap
		}
	default:
		switch {
		case in.Retrans[x.ID] > 0:
			b.FaultRetransmit = gap
		case x.Case == CaseTruncated:
			b.Truncated = gap
		case x.Case == CaseSingleStamp:
			b.LateInit = gap
		default:
			b.Unknown = gap
		}
	}
	return b
}

// isPipelined reports whether transfer id moved under a pipelined
// phase — by wire tag when the id reached the wire, by the rank's
// protocol otherwise (a receiver's virtual bulk transfer never does).
func isPipelined(in *Input, protocol string, id uint64) bool {
	for i := range in.Wire {
		if in.Wire[i].ID == id {
			return strings.HasPrefix(in.Wire[i].Phase, "pipelined")
		}
	}
	return strings.Contains(protocol, "Pipelined")
}
